// external_consumer: proof that the *installed* plrupart package is usable by
// a downstream project through the public API alone.
//
// Runs the paper's headline comparison in miniature — unpartitioned NRU
// (NOPART-L) against MinMisses-partitioned binary-tree pseudo-LRU (M-BT) on a
// two-benchmark mix — through the runner layer, writes the sweep CSV, and
// re-reads it to verify shape and sanity. Exits 0 only if every check passes,
// so CI can use it as the end-to-end gate for the install tree.
//
// Everything here comes from <prefix>/include/plrupart; if this file compiles
// and links against an installed package, the public API boundary holds.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/version.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace {

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

int fail(const char* what) {
  std::fprintf(stderr, "external_consumer: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_path = argc > 1 ? argv[1] : "consumer_sweep.csv";
  std::printf("external_consumer: linked against plrupart %s\n",
              plrupart::kVersionString);

  // A 2-core mix straight from the benchmark catalog: one cache-hungry
  // benchmark, one streaming one, so partitioning has something to decide.
  plrupart::workloads::Workload mix;
  mix.id = "consumer_mix";
  mix.benchmarks = {"twolf", "art"};
  for (const auto& name : mix.benchmarks)
    if (!plrupart::workloads::has_benchmark(name)) return fail("catalog benchmark missing");

  plrupart::runner::RunMatrix matrix;
  matrix.configs = {"NOPART-L", "M-BT"};
  matrix.workloads = {mix};
  matrix.l2_kb = {256};
  matrix.instr = 20'000;
  matrix.warmup = 10'000;
  matrix.interval_cycles = 40'000;
  matrix.seed = 7;
  matrix.validate();

  const auto results =
      plrupart::runner::SweepExecutor({.threads = 1}).run(matrix.expand());
  if (results.size() != matrix.size()) return fail("job count mismatch");

  {
    std::ofstream out(csv_path);
    if (!out) return fail("cannot open output CSV");
    plrupart::runner::write_csv(out, results);
  }

  // Re-read the CSV the way a results pipeline would and check its shape.
  std::ifstream in(csv_path);
  std::string line;
  if (!std::getline(in, line)) return fail("CSV has no header");
  const auto& header = plrupart::runner::sweep_csv_header();
  std::string expected_header;
  for (std::size_t i = 0; i < header.size(); ++i)
    expected_header += (i ? "," : "") + header[i];
  if (line != expected_header) return fail("CSV header does not match sweep schema");

  std::size_t ipc_col = header.size(), config_col = header.size();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "ipc") ipc_col = i;
    if (header[i] == "config") config_col = i;
  }
  if (ipc_col == header.size() || config_col == header.size())
    return fail("sweep schema lost the ipc/config columns");

  std::size_t rows = 0, nopart_rows = 0, mbt_rows = 0;
  while (std::getline(in, line)) {
    const auto fields = split_csv_row(line);
    if (fields.size() != header.size()) return fail("CSV row has wrong field count");
    if (std::stod(fields[ipc_col]) <= 0.0) return fail("non-positive IPC");
    if (fields[config_col] == "NOPART-L") ++nopart_rows;
    if (fields[config_col] == "M-BT") ++mbt_rows;
    ++rows;
  }
  // 2 configs x 1 workload x 1 size, one row per core.
  if (rows != matrix.size() * mix.benchmarks.size())
    return fail("CSV row count mismatch");
  if (nopart_rows != mix.benchmarks.size() || mbt_rows != mix.benchmarks.size())
    return fail("missing rows for a config");

  std::printf("external_consumer: OK (%zu CSV rows, NOPART-L vs M-BT at %llu KB)\n",
              rows, static_cast<unsigned long long>(matrix.l2_kb[0]));
  return 0;
}
