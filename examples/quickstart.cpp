// quickstart: the smallest end-to-end use of the library.
//
// Builds the paper's baseline CMP (2 cores, private 32KB L1Ds, shared 2MB
// 16-way L2 with the M-0.75N pseudo-LRU partitioning configuration), runs a
// cache-sensitive thread against a streaming thread, and prints what the
// dynamic CPA decided and what it bought.
//
//   $ quickstart [--config M-0.75N] [--instr 1000000]
#include <cstdio>

#include "common/cli.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

using namespace plrupart;

namespace {

sim::SimResult simulate(const std::string& config, std::uint64_t instr) {
  // 1. Describe the machine. CpaConfig::from_acronym covers every
  //    configuration evaluated in the paper; the fields can also be set
  //    individually (see core/partitioned_cache.hpp).
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  // A 512KB L2 keeps the two threads genuinely contending (at the paper's
  // full 2MB both fit and partitioning has little left to do — see Fig. 8).
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      config, /*num_cores=*/2,
      cache::Geometry{.size_bytes = 512 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.instr_limit = instr;
  cfg.warmup_instr = instr / 2;

  // 2. Attach one trace per core. The catalog ships 25 SPEC CPU 2000
  //    personality profiles; real traces can be plugged in through the
  //    sim::TraceSource interface.
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t core = 0; core < 2; ++core) {
    const auto& profile = workloads::benchmark(core == 0 ? "twolf" : "art");
    cfg.cores.push_back(profile.core);
    traces.push_back(workloads::make_trace(profile, core, /*seed=*/1));
  }

  // 3. Run.
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto config = cli.get_string("--config", "M-0.75N");
  const auto instr = static_cast<std::uint64_t>(cli.get_int("--instr", 1'000'000));

  std::printf("twolf (cache-sensitive) + art (streaming) on a shared 512KB L2\n\n");

  const auto base = simulate("NOPART-" + std::string(config.back() == 'N'   ? "N"
                                                     : config == "M-BT"     ? "BT"
                                                                            : "L"),
                             instr);
  const auto part = simulate(config, instr);

  std::printf("%-22s %12s %12s %12s\n", "configuration", "twolf IPC", "art IPC",
              "throughput");
  std::printf("%-22s %12.3f %12.3f %12.3f\n", base.l2_config.c_str(),
              base.threads[0].ipc, base.threads[1].ipc, base.throughput());
  std::printf("%-22s %12.3f %12.3f %12.3f\n", part.l2_config.c_str(),
              part.threads[0].ipc, part.threads[1].ipc, part.throughput());
  std::printf("\npartitioning changed throughput by %+.1f%% (repartitions: %llu)\n",
              100.0 * (part.throughput() / base.throughput() - 1.0),
              static_cast<unsigned long long>(part.repartitions));
  std::printf("\nNext steps: examples/miss_curve_studio dumps the profiling state;\n"
              "examples/policy_explorer compares every replacement policy;\n"
              "bench/ regenerates the paper's tables and figures.\n");
  return 0;
}
