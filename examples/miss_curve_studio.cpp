// miss_curve_studio: inspect what the profiling logic sees.
//
// Runs one Table II workload (or an ad-hoc benchmark list) under a chosen
// L2 configuration and dumps, per core: the final (e)SDH registers, the miss
// curve, the partition history, and the achieved performance. The tool of
// choice for understanding why MinMisses decided what it decided.
//
// Usage:
//   miss_curve_studio [--workload 2T_04 | --benchmarks vpr,art]
//                     [--config M-0.75N] [--instr 2000000] [--l2-kb 2048]
//                     [--interval 500000] [--sampling 32] [--csv curves.csv]
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "plrupart/workloads/workload_table.hpp"

using namespace plrupart;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  std::vector<std::string> names;
  if (const auto wl = cli.value("--workload")) {
    for (const auto& w : workloads::all_workloads()) {
      if (w.id == *wl) names = w.benchmarks;
    }
    if (names.empty()) {
      std::fprintf(stderr, "unknown workload id %s\n", wl->c_str());
      return 1;
    }
  } else {
    names = split_list(cli.get_string("--benchmarks", "vpr,art"));
  }
  const auto config = cli.get_string("--config", "M-L");
  const auto l2_kb = static_cast<std::uint64_t>(cli.get_int("--l2-kb", 2048));

  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      config, static_cast<std::uint32_t>(names.size()),
      cache::Geometry{.size_bytes = l2_kb * 1024, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.interval_cycles =
      static_cast<std::uint64_t>(cli.get_int("--interval", 500'000));
  cfg.hierarchy.l2.sampling_ratio =
      static_cast<std::uint32_t>(cli.get_int("--sampling", 32));
  cfg.instr_limit = static_cast<std::uint64_t>(cli.get_int("--instr", 2'000'000));
  cfg.warmup_instr = static_cast<std::uint64_t>(
      cli.get_int("--warmup", static_cast<std::int64_t>(cfg.instr_limit / 2)));

  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    const auto& prof = workloads::benchmark(names[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i, 42));
  }

  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  const auto result = sim.run();
  const auto& l2 = sim.hierarchy().l2();

  std::printf("=== %s on %s, %lluKB 16-way shared L2 ===\n\n", config.c_str(),
              [&] {
                std::string s;
                for (const auto& n : names) s += n + " ";
                return s;
              }()
                  .c_str(),
              static_cast<unsigned long long>(l2_kb));

  std::printf("%-4s %-10s %10s %12s %12s %12s %10s\n", "core", "bench", "IPC",
              "L1 misses", "L2 accesses", "L2 misses", "L2 miss%");
  for (std::size_t i = 0; i < result.threads.size(); ++i) {
    const auto& t = result.threads[i];
    std::printf("%-4zu %-10s %10.3f %12llu %12llu %12llu %9.1f%%\n", i,
                t.benchmark.c_str(), t.ipc,
                static_cast<unsigned long long>(t.mem.l1_misses),
                static_cast<unsigned long long>(t.mem.l2_accesses),
                static_cast<unsigned long long>(t.mem.l2_misses),
                t.mem.l2_accesses
                    ? 100.0 * static_cast<double>(t.mem.l2_misses) /
                          static_cast<double>(t.mem.l2_accesses)
                    : 0.0);
  }
  std::printf("throughput: %.3f   wall cycles: %.0f   repartitions: %llu\n\n",
              result.throughput(), result.wall_cycles,
              static_cast<unsigned long long>(result.repartitions));

  if (!l2.config().partitioned()) {
    std::printf("(unpartitioned configuration: no profiling logic to dump)\n");
    return 0;
  }

  const std::uint32_t assoc = l2.config().geometry.associativity;
  std::printf("--- final (e)SDH registers (r1..r%u | miss register) ---\n", assoc);
  for (std::uint32_t c = 0; c < names.size(); ++c) {
    const auto& sdh = l2.profiler(c).sdh();
    std::printf("core %u [%s]: ", c, l2.profiler(c).name().c_str());
    for (std::uint32_t r = 1; r <= assoc; ++r)
      std::printf("%llu ", static_cast<unsigned long long>(sdh.reg(r)));
    std::printf("| %llu\n", static_cast<unsigned long long>(sdh.reg(assoc + 1)));
  }

  std::printf("\n--- miss curves (misses at w ways, profiled units) ---\n");
  std::printf("%-6s", "ways");
  for (std::uint32_t c = 0; c < names.size(); ++c) std::printf(" %10s", names[c].c_str());
  std::printf("\n");
  std::vector<core::MissCurve> curves;
  for (std::uint32_t c = 0; c < names.size(); ++c) curves.push_back(l2.profiler(c).curve());
  for (std::uint32_t w = 0; w <= assoc; ++w) {
    std::printf("%-6u", w);
    for (const auto& curve : curves) std::printf(" %10.0f", curve.misses(w));
    std::printf("\n");
  }

  const auto* ctrl = l2.controller();
  const auto& hist = ctrl->history();
  std::printf("\n--- partition history (%zu intervals, run-length encoded) ---\n",
              hist.size());
  std::size_t i = 0;
  std::size_t changes = 0;
  while (i < hist.size()) {
    std::size_t j = i;
    while (j < hist.size() && hist[j].partition == hist[i].partition) ++j;
    std::printf("x%-4zu [", j - i);
    for (const auto w : hist[i].partition) std::printf(" %u", w);
    std::printf(" ]\n");
    if (i > 0) ++changes;
    i = j;
  }
  std::printf("partition changes: %zu\n", changes);

  if (const auto path = cli.value("--csv")) {
    std::ofstream out(*path);
    CsvWriter csv(out, {"core", "benchmark", "ways", "misses"});
    for (std::uint32_t c = 0; c < names.size(); ++c) {
      for (std::uint32_t w = 0; w <= assoc; ++w) {
        csv.row_of(c, names[c], w, curves[c].misses(w));
      }
    }
    std::printf("\ncurves written to %s\n", path->c_str());
  }
  return 0;
}
