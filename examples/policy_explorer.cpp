// policy_explorer: compare every replacement policy on a configurable
// workload, partitioned and unpartitioned, across cache sizes.
//
//   $ policy_explorer [--benchmarks twolf,art] [--sizes 512,1024,2048]
//                     [--instr 1000000] [--partitioned]
//
// Useful for answering "which replacement policy should my cache use, and
// does partitioning change the answer?" for a given workload mix.
#include <cstdio>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

using namespace plrupart;

namespace {

double run_mix(const std::vector<std::string>& names, const std::string& acronym,
               std::uint64_t l2_kb, std::uint64_t instr) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      acronym, static_cast<std::uint32_t>(names.size()),
      cache::Geometry{.size_bytes = l2_kb * 1024, .associativity = 16,
                      .line_bytes = 128});
  cfg.instr_limit = instr;
  cfg.warmup_instr = instr / 2;
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    const auto& prof = workloads::benchmark(names[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i, 21));
  }
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run().throughput();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto names = split_list(cli.get_string("--benchmarks", "twolf,art"));
  const auto instr = static_cast<std::uint64_t>(cli.get_int("--instr", 1'000'000));
  std::vector<std::uint64_t> sizes;
  for (const auto& s : split_list(cli.get_string("--sizes", "512,1024,2048")))
    sizes.push_back(std::stoull(s));

  const std::vector<std::pair<std::string, std::string>> rows{
      {"LRU, unpartitioned", "NOPART-L"},
      {"NRU, unpartitioned", "NOPART-N"},
      {"BT,  unpartitioned", "NOPART-BT"},
      {"random, unpartitioned", "NOPART-R"},
      {"LRU + MinMisses (C-L)", "C-L"},
      {"LRU + MinMisses (M-L)", "M-L"},
      {"NRU + MinMisses (M-0.75N)", "M-0.75N"},
      {"BT  + MinMisses (M-BT)", "M-BT"},
  };

  std::printf("workload:");
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("   (%llu measured instructions/thread)\n\n",
              static_cast<unsigned long long>(instr));

  std::printf("%-28s", "configuration");
  for (const auto kb : sizes)
    std::printf(" %9lluKB", static_cast<unsigned long long>(kb));
  std::printf("   <- total IPC throughput\n");

  // All (row, size) cells run in parallel.
  std::vector<double> cells(rows.size() * sizes.size());
  parallel_for(cells.size(), [&](std::size_t idx) {
    const auto& acr = rows[idx / sizes.size()].second;
    const auto kb = sizes[idx % sizes.size()];
    cells[idx] = run_mix(names, acr, kb, instr);
  });

  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("%-28s", rows[r].first.c_str());
    for (std::size_t si = 0; si < sizes.size(); ++si)
      std::printf(" %11.3f", cells[r * sizes.size() + si]);
    std::printf("\n");
    if (r == 3) std::printf("%-28s\n", "---");
  }

  std::printf("\nreading guide: compare within a column; the gap between the top\n"
              "block (no partitioning) and the bottom block is what the dynamic\n"
              "CPA buys for this mix at each cache size.\n");
  return 0;
}
