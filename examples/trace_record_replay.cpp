// trace_record_replay: the trace file workflow.
//
// 1. Record N operations of a synthetic benchmark to a portable trace file
//    (text v1 or compact binary v2).
// 2. Replay the file through the full CMP simulator next to the original
//    generator and show that the results agree exactly.
//
// The same streaming FileTraceSource path is how externally captured traces
// (PIN, ChampSim via plrupart-trace-convert, other simulators) drive this
// library with O(buffer) memory; the formats are documented in
// src/sim/trace_codec.hpp.
//
//   $ trace_record_replay [--benchmark twolf] [--ops 200000] [--out /tmp/x.trace]
//                         [--format v2]
#include <cstdio>

#include "common/cli.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/sim/trace_convert.hpp"
#include "plrupart/sim/trace_file.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

using namespace plrupart;

namespace {

sim::SimResult simulate(std::unique_ptr<sim::TraceSource> trace,
                        const sim::CoreParams& core_params, std::uint64_t instr_limit) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      "NOPART-N", 1,
      cache::Geometry{.size_bytes = 512 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.cores.push_back(core_params);
  cfg.instr_limit = instr_limit;
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  traces.push_back(std::move(trace));
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto name = cli.get_string("--benchmark", "twolf");
  const auto ops = static_cast<std::size_t>(cli.get_int("--ops", 200'000));
  const auto out = cli.get_string("--out", "/tmp/plrupart_demo.trace");
  const auto format = sim::trace_format_from_name(cli.get_string("--format", "v2"));

  const auto& profile = workloads::benchmark(name);

  // Record.
  auto recorder = workloads::make_trace(profile, 0, 123);
  const auto recorded = sim::record_trace(*recorder, ops);
  sim::write_trace_file(out, recorded, format);
  std::printf("recorded %zu ops of '%s' to %s (%s format)\n", recorded.size(),
              name.c_str(), out.c_str(),
              std::string(sim::trace_format_name(format)).c_str());

  // Replay both through the simulator. The instruction quota is sized so the
  // run stays inside the recorded window (a FileTraceSource wraps at the end
  // of its file; the generator keeps producing fresh operations).
  const auto instr_limit = static_cast<std::uint64_t>(
      0.8 * static_cast<double>(ops) / profile.mem_fraction);
  auto original = workloads::make_trace(profile, 0, 123);
  const auto ref = simulate(std::move(original), profile.core, instr_limit);
  const auto rep =
      simulate(std::make_unique<sim::FileTraceSource>(out), profile.core, instr_limit);

  std::printf("\n%-12s %10s %12s %12s\n", "source", "IPC", "L2 accesses", "L2 misses");
  std::printf("%-12s %10.4f %12llu %12llu\n", "generator", ref.threads[0].ipc,
              static_cast<unsigned long long>(ref.threads[0].mem.l2_accesses),
              static_cast<unsigned long long>(ref.threads[0].mem.l2_misses));
  std::printf("%-12s %10.4f %12llu %12llu\n", "trace file", rep.threads[0].ipc,
              static_cast<unsigned long long>(rep.threads[0].mem.l2_accesses),
              static_cast<unsigned long long>(rep.threads[0].mem.l2_misses));

  const bool match = ref.threads[0].mem.l2_misses == rep.threads[0].mem.l2_misses &&
                     ref.threads[0].instructions == rep.threads[0].instructions;
  std::printf("\nreplay %s the generator run\n", match ? "MATCHES" : "DIVERGES FROM");
  return match ? 0 : 1;
}
