// qos_colocation: protecting a latency-critical tenant with the QoS policy.
//
// Scenario from the paper's QoS discussion (§VI, FlexDCP/VPC line of work):
// a latency-critical service (cache-sensitive) is co-located with batch jobs
// (streaming/thrashing). Compare three L2 managements:
//
//   1. unpartitioned pseudo-LRU  — batch traffic tramples the service;
//   2. MinMisses                 — best total throughput, no guarantees;
//   3. QoS(core 0, factor f)     — the service's misses are capped at f x its
//                                  full-cache miss count, the rest is
//                                  MinMisses-distributed among the batch jobs.
//
//   $ qos_colocation [--factor 1.1] [--instr 1000000] [--service twolf]
#include <cstdio>

#include "common/cli.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

using namespace plrupart;

namespace {

struct Setup {
  std::string service = "twolf";
  std::vector<std::string> batch{"art", "mcf", "swim"};
  std::uint64_t instr = 1'000'000;
  double factor = 1.1;
};

sim::SimResult run_one(const Setup& s, const char* label, core::PolicyKind policy,
                       bool partitioned) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(partitioned ? "M-0.75N" : "NOPART-N",
                                                   static_cast<std::uint32_t>(
                                                       1 + s.batch.size()),
                                                   cache::paper_l2_geometry());
  cfg.hierarchy.l2.policy = policy;
  if (policy == core::PolicyKind::kQos)
    cfg.hierarchy.l2.qos = core::QosTarget{.core = 0, .factor = s.factor};
  cfg.instr_limit = s.instr;
  cfg.warmup_instr = s.instr / 2;

  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  const auto& svc = workloads::benchmark(s.service);
  cfg.cores.push_back(svc.core);
  traces.push_back(workloads::make_trace(svc, 0, 11));
  for (std::uint32_t i = 0; i < s.batch.size(); ++i) {
    const auto& prof = workloads::benchmark(s.batch[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i + 1, 11));
  }

  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  const auto r = sim.run();

  double batch_ipc = 0.0;
  for (std::size_t i = 1; i < r.threads.size(); ++i) batch_ipc += r.threads[i].ipc;
  std::printf("%-24s %13.3f %15.2f%% %12.3f %12.3f\n", label, r.threads[0].ipc,
              100.0 * static_cast<double>(r.threads[0].mem.l2_misses) /
                  static_cast<double>(std::max<std::uint64_t>(1,
                                                              r.threads[0].mem.l2_accesses)),
              batch_ipc, r.throughput());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Setup s;
  s.service = cli.get_string("--service", "twolf");
  s.instr = static_cast<std::uint64_t>(cli.get_int("--instr", 1'000'000));
  s.factor = cli.get_double("--factor", 1.1);

  std::printf("QoS co-location: %s (service, core 0) vs %zu batch thrashers on a\n"
              "shared 2MB L2 with NRU replacement (M-0.75N substrate)\n\n",
              s.service.c_str(), s.batch.size());
  std::printf("%-24s %13s %16s %12s %12s\n", "policy", "service IPC",
              "service L2 miss", "batch IPC", "throughput");

  const auto unprotected =
      run_one(s, "unpartitioned", core::PolicyKind::kMinMissesOptimal, false);
  const auto minmisses =
      run_one(s, "MinMisses", core::PolicyKind::kMinMissesOptimal, true);
  char qos_label[64];
  std::snprintf(qos_label, sizeof qos_label, "QoS(factor %.2f)", s.factor);
  const auto qos = run_one(s, qos_label, core::PolicyKind::kQos, true);

  std::printf("\nservice speedup vs unpartitioned: MinMisses %+.1f%%, QoS %+.1f%%\n",
              100.0 * (minmisses.threads[0].ipc / unprotected.threads[0].ipc - 1.0),
              100.0 * (qos.threads[0].ipc / unprotected.threads[0].ipc - 1.0));
  return 0;
}
