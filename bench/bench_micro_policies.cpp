// google-benchmark microbenchmarks: per-access cost of the replacement-policy
// state machines (the software analogue of Table I(b)'s update costs) and of
// the full L2/ATD access paths that dominate every figure reproduction.
//
// The access benchmarks replay pre-generated address streams so the timed
// loop measures the cache datapath itself, not the RNG that feeds it.
#include <benchmark/benchmark.h>

#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/cache/replacement.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/core/atd.hpp"

using namespace plrupart;
using cache::Geometry;
using cache::ReplacementKind;

namespace {

Geometry bench_geo(std::uint32_t ways) {
  return Geometry{.size_bytes = 1024ULL * ways * 128, .associativity = ways,
                  .line_bytes = 128};
}

ReplacementKind kind_of(std::int64_t i) {
  switch (i) {
    case 0:
      return ReplacementKind::kLru;
    case 1:
      return ReplacementKind::kNru;
    case 2:
      return ReplacementKind::kTreePlru;
    case 3:
      return ReplacementKind::kRandom;
    default:
      return ReplacementKind::kSrrip;
  }
}

/// Power-of-two-sized byte-address stream spanning `span_lines` cache lines
/// of `geo`, replayed circularly by the access benchmarks.
std::vector<cache::Addr> make_addr_stream(const Geometry& geo, std::uint64_t span_lines,
                                          std::uint64_t seed) {
  constexpr std::size_t kStream = 1 << 16;
  std::vector<cache::Addr> addrs(kStream);
  Rng rng(seed);
  for (auto& a : addrs) a = rng.next_below(span_lines) * geo.line_bytes;
  return addrs;
}

void BM_PolicyHitUpdate(benchmark::State& state) {
  const auto geo = bench_geo(static_cast<std::uint32_t>(state.range(1)));
  const auto policy = cache::make_policy(kind_of(state.range(0)), geo);
  Rng rng(1);
  std::uint64_t set = 0;
  std::uint32_t way = 0;
  for (auto _ : state) {
    policy->on_hit(set, way, policy->all_ways());
    set = (set + 1) & (geo.sets() - 1);
    way = static_cast<std::uint32_t>(rng.next_below(geo.associativity));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "way");
}

void BM_PolicyVictimSelection(benchmark::State& state) {
  const auto geo = bench_geo(static_cast<std::uint32_t>(state.range(1)));
  const auto policy = cache::make_policy(kind_of(state.range(0)), geo);
  // Realistic state: a warm cache with mixed recency.
  Rng warm(7);
  for (int i = 0; i < 100000; ++i) {
    policy->on_hit(warm.next_below(geo.sets()),
                   static_cast<std::uint32_t>(warm.next_below(geo.associativity)),
                   policy->all_ways());
  }
  std::uint64_t set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose_victim(set, policy->all_ways()));
    set = (set + 1) & (geo.sets() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "way");
}

void BM_PolicyMaskedVictim(benchmark::State& state) {
  const auto geo = bench_geo(16);
  const auto policy = cache::make_policy(kind_of(state.range(0)), geo);
  const WayMask mask = way_range_mask(4, 4);  // a 4-way partition
  std::uint64_t set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose_victim(set, mask));
    set = (set + 1) & (geo.sets() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))));
}

/// Full SetAssocCache::access path: policy × associativity × enforcement.
/// Two cores split the cache evenly; the address span is 32× the cache so the
/// stream exercises both the hit scan and the miss/victim path.
void BM_CacheAccess(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto ways = static_cast<std::uint32_t>(state.range(1));
  const auto enf = static_cast<cache::EnforcementMode>(state.range(2));
  const auto geo = bench_geo(ways);
  cache::SetAssocCache c(geo, kind, 2, enf);
  if (enf == cache::EnforcementMode::kWayMasks) {
    c.set_way_mask(0, way_range_mask(0, ways / 2));
    c.set_way_mask(1, way_range_mask(ways / 2, ways / 2));
  } else if (enf == cache::EnforcementMode::kOwnerCounters) {
    c.set_way_quota(0, ways / 2);
    c.set_way_quota(1, ways / 2);
  }
  const auto addrs = make_addr_stream(geo, 32 * geo.lines(), 3);
  const std::size_t mask = addrs.size() - 1;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto core = static_cast<cache::CoreId>(i & 1);
    benchmark::DoNotOptimize(c.access(core, addrs[i & mask], false));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind) + "/" + std::to_string(ways) + "way/" +
                 to_string(enf));
}

/// Serial access path under an explicitly forced dispatch tier
/// (0 = scalar, 1 = swar, 2 = avx2, 3 = avx512; see cache/dispatch.hpp).
/// Narrower policy axis than BM_CacheAccess -- NRU (the paper's pointer-scan
/// policy) and SRRIP (the tier's biggest winner: the distant-line scan
/// vectorizes) -- under way-mask enforcement. Tiers the build/host cannot
/// run are skipped, so snapshot name sets vary by host; the ratchet
/// comparator treats one-sided names as notes, not failures.
void BM_CacheAccessDispatch(benchmark::State& state) {
  const auto tier = static_cast<cache::DispatchTier>(state.range(0));
  if (!cache::dispatch_tier_available(tier)) {
    state.SkipWithError("dispatch tier unavailable on this build/host");
    return;
  }
  const auto kind = kind_of(state.range(1));
  const auto ways = static_cast<std::uint32_t>(state.range(2));
  const auto geo = bench_geo(ways);
  const auto prev = cache::active_dispatch_tier();
  cache::set_active_dispatch_tier(tier);
  cache::SetAssocCache c(geo, kind, 2, cache::EnforcementMode::kWayMasks);
  cache::set_active_dispatch_tier(prev);
  c.set_way_mask(0, way_range_mask(0, ways / 2));
  c.set_way_mask(1, way_range_mask(ways / 2, ways / 2));
  const auto addrs = make_addr_stream(geo, 32 * geo.lines(), 3);
  const std::size_t mask = addrs.size() - 1;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto core = static_cast<cache::CoreId>(i & 1);
    benchmark::DoNotOptimize(c.access(core, addrs[i & mask], false));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(tier) + "/" + to_string(kind) + "/" +
                 std::to_string(ways) + "way");
}

/// Batched access path (SetAssocCache::access_batch) on the default runtime
/// tier: same stream/partitioning as BM_CacheAccess, fed in 256-op chunks so
/// the prefetch window has room to work. Per-op semantics are identical to
/// the serial path (bit-identity is CI-enforced), so this series isolates
/// the batching + prefetch win.
void BM_CacheAccessBatch(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto ways = static_cast<std::uint32_t>(state.range(1));
  const auto enf = static_cast<cache::EnforcementMode>(state.range(2));
  const auto geo = bench_geo(ways);
  cache::SetAssocCache c(geo, kind, 2, enf);
  if (enf == cache::EnforcementMode::kWayMasks) {
    c.set_way_mask(0, way_range_mask(0, ways / 2));
    c.set_way_mask(1, way_range_mask(ways / 2, ways / 2));
  } else if (enf == cache::EnforcementMode::kOwnerCounters) {
    c.set_way_quota(0, ways / 2);
    c.set_way_quota(1, ways / 2);
  }
  const auto addrs = make_addr_stream(geo, 32 * geo.lines(), 3);
  std::vector<cache::SetAssocCache::BatchOp> ops(addrs.size());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    ops[i] = {addrs[i], static_cast<cache::CoreId>(i & 1), false};
  }
  std::vector<cache::AccessOutcome> out(ops.size());
  constexpr std::size_t kChunk = 256;
  const std::size_t chunks = ops.size() / kChunk;
  std::size_t chunk = 0;
  while (state.KeepRunningBatch(kChunk)) {
    c.access_batch(ops.data() + chunk * kChunk, kChunk, out.data());
    benchmark::DoNotOptimize(out.data());
    chunk = (chunk + 1) % chunks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind) + "/" + std::to_string(ways) + "way/" +
                 to_string(enf));
}

/// ATD probe path on sampled accesses only (the stream is pre-filtered to
/// sampled sets, as the hardware filter would before the ATD sees a probe).
void BM_AtdSampledAccess(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto ways = static_cast<std::uint32_t>(state.range(1));
  const Geometry l2 = bench_geo(ways);
  constexpr std::uint32_t kSampling = 32;
  core::Atd atd(l2, kind, kSampling);
  constexpr std::size_t kStream = 1 << 16;
  std::vector<cache::Addr> lines(kStream);
  Rng rng(5);
  for (auto& a : lines) {
    cache::Addr la;
    do {
      la = rng.next_below(32 * l2.lines());
    } while (!atd.is_sampled(la));
    a = la;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(atd.access(lines[i & (kStream - 1)]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind) + "/" + std::to_string(ways) + "way");
}

}  // namespace

BENCHMARK(BM_PolicyHitUpdate)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 16, 64}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_PolicyVictimSelection)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 16, 64}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_PolicyMaskedVictim)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);
// The headline matrix: every policy at 16/32 ways under all three
// enforcement modes (0 = none, 1 = way masks, 2 = owner counters).
BENCHMARK(BM_CacheAccess)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {16, 32}, {0, 1, 2}})
    ->Unit(benchmark::kNanosecond);
// Dispatch tiers: scalar/swar always run; avx2/avx512 self-skip when the
// build or host lacks them.
BENCHMARK(BM_CacheAccessDispatch)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}, {16, 32}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_CacheAccessBatch)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {16, 32}, {0, 1, 2}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_AtdSampledAccess)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {16, 32}})
    ->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
