// google-benchmark microbenchmarks: per-access cost of the replacement-policy
// state machines (the software analogue of Table I(b)'s update costs).
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "cache/replacement.hpp"
#include "common/rng.hpp"

using namespace plrupart;
using cache::Geometry;
using cache::ReplacementKind;

namespace {

Geometry bench_geo(std::uint32_t ways) {
  return Geometry{.size_bytes = 1024ULL * ways * 128, .associativity = ways,
                  .line_bytes = 128};
}

ReplacementKind kind_of(std::int64_t i) {
  switch (i) {
    case 0:
      return ReplacementKind::kLru;
    case 1:
      return ReplacementKind::kNru;
    case 2:
      return ReplacementKind::kTreePlru;
    default:
      return ReplacementKind::kRandom;
  }
}

void BM_PolicyHitUpdate(benchmark::State& state) {
  const auto geo = bench_geo(static_cast<std::uint32_t>(state.range(1)));
  const auto policy = cache::make_policy(kind_of(state.range(0)), geo);
  Rng rng(1);
  std::uint64_t set = 0;
  std::uint32_t way = 0;
  for (auto _ : state) {
    policy->on_hit(set, way, policy->all_ways());
    set = (set + 1) & (geo.sets() - 1);
    way = static_cast<std::uint32_t>(rng.next_below(geo.associativity));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "way");
}

void BM_PolicyVictimSelection(benchmark::State& state) {
  const auto geo = bench_geo(static_cast<std::uint32_t>(state.range(1)));
  const auto policy = cache::make_policy(kind_of(state.range(0)), geo);
  // Realistic state: a warm cache with mixed recency.
  Rng warm(7);
  for (int i = 0; i < 100000; ++i) {
    policy->on_hit(warm.next_below(geo.sets()),
                   static_cast<std::uint32_t>(warm.next_below(geo.associativity)),
                   policy->all_ways());
  }
  std::uint64_t set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose_victim(set, policy->all_ways()));
    set = (set + 1) & (geo.sets() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "way");
}

void BM_PolicyMaskedVictim(benchmark::State& state) {
  const auto geo = bench_geo(16);
  const auto policy = cache::make_policy(kind_of(state.range(0)), geo);
  const WayMask mask = way_range_mask(4, 4);  // a 4-way partition
  std::uint64_t set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose_victim(set, mask));
    set = (set + 1) & (geo.sets() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))));
}

void BM_CacheAccessThroughput(benchmark::State& state) {
  const auto geo = cache::paper_l2_geometry();
  cache::SetAssocCache c(geo, kind_of(state.range(0)), 2,
                         cache::EnforcementMode::kWayMasks);
  c.set_way_mask(0, way_range_mask(0, 8));
  c.set_way_mask(1, way_range_mask(8, 8));
  Rng rng(3);
  for (auto _ : state) {
    const auto core = static_cast<cache::CoreId>(rng.next_below(2));
    benchmark::DoNotOptimize(c.access(core, rng.next_below(64 * 1024 * 1024), false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(kind_of(state.range(0))));
}

}  // namespace

BENCHMARK(BM_PolicyHitUpdate)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 16, 64}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_PolicyVictimSelection)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 16, 64}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_PolicyMaskedVictim)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_CacheAccessThroughput)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
