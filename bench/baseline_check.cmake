# Tier-1 benchmark-baseline gate, run as a CTest test (see bench/CMakeLists).
#
# Reruns one figure/table bench with the pinned reference flags and compares
# its CSV against the checked-in baseline under bench/baselines/ with
# csv_compare's relative tolerance — so an accuracy regression in the
# simulated metrics fails tier-1 instead of waiting for someone to re-read
# the figures.
#
# Usage: cmake -DBENCH_BIN=<bench> -DBENCH_ARGS=<;-list> -DCOMPARE_BIN=<csv_compare>
#              -DBASELINE=<expected.csv> -DOUT_CSV=<scratch.csv> [-DREL_TOL=0.02]
#              -P baseline_check.cmake
foreach(var BENCH_BIN COMPARE_BIN BASELINE OUT_CSV)
  if(NOT ${var})
    message(FATAL_ERROR "${var} must be set")
  endif()
endforeach()
if(NOT REL_TOL)
  set(REL_TOL 0.02)
endif()

separate_arguments(bench_args UNIX_COMMAND "${BENCH_ARGS}")
execute_process(
  COMMAND ${BENCH_BIN} ${bench_args} --csv ${OUT_CSV}
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} ${BENCH_ARGS} failed (rc=${bench_rc}):\n${bench_err}")
endif()

execute_process(
  COMMAND ${COMPARE_BIN} ${BASELINE} ${OUT_CSV} ${REL_TOL}
  RESULT_VARIABLE cmp_rc
  ERROR_VARIABLE cmp_err)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "benchmark output drifted from its checked-in baseline (${BASELINE}):\n${cmp_err}")
endif()
message(STATUS "baseline OK: ${OUT_CSV} matches ${BASELINE} within rel tol ${REL_TOL}")
