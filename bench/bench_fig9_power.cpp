// Figure 9 reproduction: power and energy of the Fig. 7 configurations.
//
//   (a) total power and energy (CPI x Power) relative to C-L, 2/4/8 cores;
//   (b) per-component power breakdown for the 2-core CMP.
//
// Paper reference points: power/energy track the performance numbers (misses
// drive off-chip accesses, each costing 150x an L2 access); the profiling
// logic never exceeds 0.3% of total power.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "plrupart/power/power_model.hpp"

using namespace plrupart;
using namespace plrupart::bench;

namespace {

struct PowerResult {
  power::PowerBreakdown breakdown;
  double energy = 0.0;
};

PowerResult evaluate_run(const sim::SimResult& r, const std::string& acronym,
                         const RunOptions& opt, std::uint32_t cores) {
  const auto cfg = core::CpaConfig::from_acronym(acronym, cores, opt.l2);
  power::PowerModel model(power::PowerParams{}, opt.l2, cfg.replacement,
                          cfg.partitioned(), cores);
  power::ActivityCounters a;
  a.instructions = r.total_instructions();
  a.l2_accesses = r.total_l2_accesses();
  a.l2_misses = r.total_l2_misses();
  a.wall_cycles = r.wall_cycles;
  a.cores = cores;
  a.atds = cfg.partitioned() ? cores : 0;
  a.sampling_ratio = opt.sampling_ratio;
  PowerResult out;
  out.breakdown = model.evaluate(a);
  out.energy = out.breakdown.energy_metric(power::PowerModel::aggregate_cpi(a));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::uint32_t> core_counts =
      quick ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 4, 8};
  const std::vector<std::string> configs{"C-L",     "M-L",    "M-1.0N",
                                         "M-0.75N", "M-0.5N", "M-BT"};

  std::printf("=== Figure 9(a): relative power and energy (CPI x Power) vs C-L ===\n\n");
  std::printf("%-7s %-11s %12s %12s\n", "cores", "config", "rel.power", "rel.energy");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file,
                std::vector<std::string>{"cores", "config", "rel_power", "rel_energy",
                                         "cores_w", "l2_w", "repl_w", "prof_w", "mem_w"});
  }

  for (const auto cores : core_counts) {
    auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick);

    // One workloads × configs RunMatrix per core count (C-L first: baseline).
    const auto matrix = matrix_for(opt, configs, ws);
    const auto runs = run_matrix(matrix);
    std::vector<PowerResult> results(runs.size());
    for (std::size_t wi = 0; wi < ws.size(); ++wi)
      for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const auto idx = matrix.index_of(wi, ci);
        results[idx] = evaluate_run(runs[idx].result, configs[ci], opt, cores);
      }

    // Figure 9(b) companion: average component breakdown at 2 cores.
    std::vector<power::PowerBreakdown> avg_breakdown(configs.size());

    // Paper-style aggregation: relative value of the workload-averaged
    // power/energy against the C-L average.
    for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
      double power_sum = 0.0, energy_sum = 0.0, base_power = 0.0, base_energy = 0.0;
      power::PowerBreakdown sum;
      for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        const auto& base = results[wi * configs.size() + 0];
        const auto& mine = results[wi * configs.size() + cfg];
        power_sum += mine.breakdown.total_w();
        energy_sum += mine.energy;
        base_power += base.breakdown.total_w();
        base_energy += base.energy;
        sum.cores_w += mine.breakdown.cores_w;
        sum.l2_w += mine.breakdown.l2_w;
        sum.replacement_w += mine.breakdown.replacement_w;
        sum.profiling_w += mine.breakdown.profiling_w;
        sum.memory_w += mine.breakdown.memory_w;
      }
      const auto n = static_cast<double>(ws.size());
      avg_breakdown[cfg] = power::PowerBreakdown{.cores_w = sum.cores_w / n,
                                                 .l2_w = sum.l2_w / n,
                                                 .replacement_w = sum.replacement_w / n,
                                                 .profiling_w = sum.profiling_w / n,
                                                 .memory_w = sum.memory_w / n};
      const double rel_power = power_sum / base_power;
      const double rel_energy = energy_sum / base_energy;
      std::printf("%-7u %-11s %12.4f %12.4f\n", cores, configs[cfg].c_str(), rel_power,
                  rel_energy);
      if (csv) {
        const auto& b = avg_breakdown[cfg];
        csv->row_of(cores, configs[cfg], rel_power, rel_energy, b.cores_w, b.l2_w,
                    b.replacement_w, b.profiling_w, b.memory_w);
      }
    }

    if (cores == 2) {
      std::printf("\n=== Figure 9(b): component power breakdown, 2-core CMP (W) ===\n\n");
      std::printf("%-11s %10s %10s %12s %12s %10s %12s\n", "config", "cores", "L2",
                  "replacement", "profiling", "memory", "prof.share");
      for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
        const auto& b = avg_breakdown[cfg];
        std::printf("%-11s %10.3f %10.3f %12.5f %12.5f %10.3f %11.3f%%\n",
                    configs[cfg].c_str(), b.cores_w, b.l2_w, b.replacement_w,
                    b.profiling_w, b.memory_w, 100.0 * b.profiling_w / b.total_w());
      }
      std::printf("\n");
    }
  }

  std::printf("paper: relative power/energy mirror the performance ordering; the\n"
              "       profiling logic stays below 0.3%% of total power.\n");
  return 0;
}
