// Ablation: NRU eSDH scaling factor S swept beyond the paper's three points
// (1.0 / 0.75 / 0.5). The paper argues S=1.0 overestimates stack distances
// and S=0.5 underestimates, making 0.75 the sweet spot; this bench maps the
// whole curve.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<double> scales{0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
  const auto ws = maybe_quick(workloads::workloads_2t(), quick, 6);

  std::printf("=== Ablation: NRU eSDH scaling factor sweep (2-core, M-*N) ===\n");
  std::printf("(geomean throughput relative to the M-L LRU partitioned cache)\n\n");

  // Baseline runs (M-L) once per workload.
  std::vector<double> baseline(ws.size());
  parallel_for(ws.size(), [&](std::size_t wi) {
    baseline[wi] = run_workload(ws[wi], "M-L", opt).throughput();
  });

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"scale", "rel_throughput"});
  }

  std::printf("%-8s %16s\n", "S", "rel.throughput");
  std::vector<double> ratios(ws.size());
  for (const double s : scales) {
    parallel_for(ws.size(), [&](std::size_t wi) {
      const auto r = run_workload(ws[wi], "M-1.0N", opt, [&](core::CpaConfig& cfg) {
        cfg.esdh_scale = s;
      });
      ratios[wi] = r.throughput() / baseline[wi];
    });
    GeoMean g;
    for (const double r : ratios) g.add(r);
    std::printf("%-8.3f %16.4f\n", s, g.value());
    if (csv) csv->row_of(s, g.value());
  }

  std::printf("\npaper: S=0.75 presents the best results among {1.0, 0.75, 0.5}.\n");
  return 0;
}
