// Ablation: repartition hysteresis (an implementation lever this repo adds on
// top of the paper's controller — see DESIGN.md).
//
// Mask-based enforcement pays a working-set rebuild every time the partition
// moves, so oscillating MinMisses decisions are costly; quota-based
// enforcement barely notices. The sweep shows how much damping the mask
// scheme needs and confirms the quota scheme is insensitive.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<double> levels{0.0, 0.02, 0.05, 0.10, 0.20, 0.40};
  const std::vector<std::string> configs{"M-L", "C-L"};
  const auto ws = maybe_quick(workloads::workloads_2t(), quick, 6);

  std::printf("=== Ablation: repartition hysteresis (2-core, MinMisses) ===\n");
  std::printf("(absolute mean throughput per hysteresis level)\n\n");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"config", "hysteresis",
                                                    "mean_throughput", "repartitions"});
  }

  std::printf("%-8s %12s %18s %16s\n", "config", "hysteresis", "mean throughput",
              "avg repartitions");
  for (const auto& config : configs) {
    for (const double h : levels) {
      std::vector<double> thr(ws.size());
      std::vector<double> reps(ws.size());
      parallel_for(ws.size(), [&](std::size_t wi) {
        const auto r = run_workload(ws[wi], config, opt, [&](core::CpaConfig& cfg) {
          cfg.repartition_hysteresis = h;
        });
        thr[wi] = r.throughput();
        // Count distinct partition switches, not interval firings.
        reps[wi] = static_cast<double>(r.repartitions);
      });
      double mean = 0.0, mean_reps = 0.0;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        mean += thr[i];
        mean_reps += reps[i];
      }
      mean /= static_cast<double>(ws.size());
      mean_reps /= static_cast<double>(ws.size());
      std::printf("%-8s %12.2f %18.4f %16.1f\n", config.c_str(), h, mean, mean_reps);
      if (csv) csv->row_of(config, h, mean, mean_reps);
    }
  }

  std::printf("\nexpectation: M-L gains from moderate damping; C-L is largely flat.\n");
  return 0;
}
