// google-benchmark microbenchmarks for the timed-simulation overlay: the
// event-queue heap ops that every bank service rides on, the MSHR
// allocate/fill/retire transaction that every L2 miss pays, and the end-to-end
// per-instruction cost of `--timing timed` relative to the functional replay.
//
// The last series is the one the snapshot ratchet watches: the timed overlay
// is opt-in precisely because it is slower, and this pins down by how much.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plrupart/cache/geometry.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/sim/event_queue.hpp"
#include "plrupart/sim/timed_memory.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

using namespace plrupart;

namespace {

cache::Geometry bench_l2_geo() {
  return cache::Geometry{.size_bytes = 256 * 1024, .associativity = 16,
                         .line_bytes = 128};
}

/// Steady-state heap cycle at a held queue depth: one schedule + one pop per
/// iteration against `depth` resident events. This is the per-event floor of
/// the whole timed mode — every DRAM bank service is at least two of these.
void BM_EventQueueCycle(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  sim::EventQueue q;
  std::uint64_t tick = 0;
  for (std::uint64_t i = 0; i < depth; ++i)
    q.schedule(tick + 1 + i, sim::EventKind::kUser, 0, i);
  for (auto _ : state) {
    const sim::TimedEvent ev = q.pop();
    tick = ev.tick;
    q.schedule(tick + depth + 1, sim::EventKind::kUser, 0, ev.payload);
    benchmark::DoNotOptimize(ev.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::to_string(depth) + "deep");
}

/// Full miss transaction — MSHR allocate, bank enqueue/service, retire — on a
/// unique-line stream (no coalescing), across the banked DRAM. Per-item cost
/// here multiplies every L2 miss of a timed run.
void BM_TimedMemoryMissRetire(benchmark::State& state) {
  sim::TimedParams params;
  params.dram_banks = static_cast<std::uint32_t>(state.range(0));
  const auto geo = bench_l2_geo();
  sim::TimedMemory mem(params, geo);
  std::uint64_t t = 0;
  cache::Addr line = 0;
  std::uint32_t way = 0;
  for (auto _ : state) {
    const auto ticket = mem.miss(t, line, way, false, false, 0);
    t = mem.retire(ticket);
    line += 7;  // coprime stride: walks banks, rows, and sets
    way = (way + 1) & (geo.associativity - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::to_string(params.dram_banks) + "bank");
}

/// The coalescing window: a second miss to a line whose fill is in flight
/// merges into the pending MSHR instead of issuing a new DRAM read. Each
/// iteration is one miss + one coalesced merge + two retires.
void BM_TimedMemoryCoalescedMiss(benchmark::State& state) {
  const sim::TimedParams params;
  const auto geo = bench_l2_geo();
  sim::TimedMemory mem(params, geo);
  std::uint64_t t = 0;
  cache::Addr line = 0;
  for (auto _ : state) {
    const auto first = mem.miss(t, line, 0, false, false, 0);
    const auto merged = mem.miss(t, line, 0, false, false, 0);
    (void)mem.retire(merged);
    t = mem.retire(first);
    line += 7;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (mem.stats().mshr_coalesced !=
      static_cast<std::uint64_t>(state.iterations()))
    state.SkipWithError("coalescing did not engage");
}

/// End-to-end replay cost per simulated instruction, functional vs timed, on
/// one Table II two-thread workload. The ratio of these two series is the
/// price of `--timing timed`.
void BM_ReplayPerInstruction(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? sim::TimingMode::kFunctional
                                        : sim::TimingMode::kTimed;
  constexpr std::uint64_t kInstr = 40'000;
  const std::vector<std::string> benchmarks{"twolf", "art"};
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.hierarchy.l1d =
        cache::Geometry{.size_bytes = 4 * 1024, .associativity = 2, .line_bytes = 128};
    cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
        "M-BT", static_cast<std::uint32_t>(benchmarks.size()), bench_l2_geo());
    cfg.hierarchy.l2.interval_cycles = 25'000;
    cfg.hierarchy.l2.sampling_ratio = 8;
    cfg.hierarchy.l2.seed = 42;
    cfg.instr_limit = kInstr;
    cfg.warmup_instr = kInstr / 4;
    cfg.timing_mode = mode;
    std::vector<std::unique_ptr<sim::TraceSource>> traces;
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
      const auto& prof = workloads::benchmark(benchmarks[i]);
      cfg.cores.push_back(prof.core);
      traces.push_back(workloads::make_trace(prof, static_cast<std::uint32_t>(i), 42));
    }
    sim::CmpSimulator sim(std::move(cfg), std::move(traces));
    const auto result = sim.run();
    instructions += result.total_instructions();
    benchmark::DoNotOptimize(result.wall_cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
  state.SetLabel(to_string(mode));
}

}  // namespace

BENCHMARK(BM_EventQueueCycle)->Arg(4)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_TimedMemoryMissRetire)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_TimedMemoryCoalescedMiss)->Unit(benchmark::kNanosecond);
// 0 = functional baseline, 1 = timed overlay; compare items/s across the two.
BENCHMARK(BM_ReplayPerInstruction)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
