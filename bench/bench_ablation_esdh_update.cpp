// Ablation: how the NRU eSDH turns interval estimates into register updates.
//
//   range          — the paper's rule ("increase both r1 and r2"): increment
//                    every register up to ceil(S*U); nothing on used-bit-0 hits.
//   point          — one increment at ceil(S*U) only.
//   record-unused  — range, plus record distance A when the used bit is 0.
//   smear          — idealized fractional update of every admissible register.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::pair<std::string, core::NruUpdateMode>> modes{
      {"range (paper)", core::NruUpdateMode::kRange},
      {"point", core::NruUpdateMode::kPoint},
      {"record-unused", core::NruUpdateMode::kPointRecordUnused},
      {"smear", core::NruUpdateMode::kSmear},
  };
  const auto ws = maybe_quick(workloads::workloads_2t(), quick, 6);

  std::printf("=== Ablation: NRU eSDH update rule (2-core, M-0.75N base) ===\n");
  std::printf("(geomean throughput relative to the M-L LRU partitioned cache)\n\n");

  std::vector<double> baseline(ws.size());
  parallel_for(ws.size(), [&](std::size_t wi) {
    baseline[wi] = run_workload(ws[wi], "M-L", opt).throughput();
  });

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"mode", "rel_throughput"});
  }

  std::printf("%-16s %16s\n", "update rule", "rel.throughput");
  std::vector<double> ratios(ws.size());
  for (const auto& [name, mode] : modes) {
    parallel_for(ws.size(), [&](std::size_t wi) {
      const auto r = run_workload(ws[wi], "M-0.75N", opt, [&](core::CpaConfig& cfg) {
        cfg.nru_update = mode;
        if (mode == core::NruUpdateMode::kSmear) cfg.esdh_scale = 1.0;
      });
      ratios[wi] = r.throughput() / baseline[wi];
    });
    GeoMean g;
    for (const double r : ratios) g.add(r);
    std::printf("%-16s %16.4f\n", name.c_str(), g.value());
    if (csv) csv->row_of(name, g.value());
  }

  std::printf("\nnote: 'smear' needs fractional registers (not implementable with the\n"
              "      paper's integer SDH hardware); it bounds what point updates lose.\n");
  return 0;
}
