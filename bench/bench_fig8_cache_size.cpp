// Figure 8 reproduction: throughput of the dynamic CPA relative to the
// NON-partitioned cache using the same replacement policy, per two-thread
// workload, for L2 sizes 512KB / 1MB / 2MB.
//
//   (a) M-L     vs NOPART-L   — paper averages: +8.0% / +2.4% / +0.2%
//   (b) M-0.75N vs NOPART-N   — paper: <= ~2% at every size
//   (c) M-BT    vs NOPART-BT  — paper: +8.1% / +4.7% / +0.5%
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto base_opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");
  const bool per_workload = !cli.has("--summary-only");

  const std::vector<std::uint64_t> sizes_kb{512, 1024, 2048};
  const std::vector<std::pair<std::string, std::string>> pairs{
      {"M-L", "NOPART-L"}, {"M-0.75N", "NOPART-N"}, {"M-BT", "NOPART-BT"}};

  const auto ws = maybe_quick(workloads::workloads_2t(), quick, 6);

  std::printf("=== Figure 8: partitioned vs non-partitioned throughput, 2-core CMP ===\n");
  std::printf("(relative throughput per workload; L2 = 512KB / 1MB / 2MB, 16-way)\n\n");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"scheme", "workload", "l2_kb",
                                                    "rel_throughput"});
  }

  for (const auto& [part_cfg, nopart_cfg] : pairs) {
    std::printf("--- %s vs %s ---\n", part_cfg.c_str(), nopart_cfg.c_str());
    std::printf("%-28s", "workload");
    for (const auto kb : sizes_kb)
      std::printf(" %8lluKB", static_cast<unsigned long long>(kb));
    std::printf("\n");

    // One {partitioned, unpartitioned} × workloads × L2-size matrix per
    // scheme; both sides of a ratio share a workload row, hence a trace seed.
    const auto matrix = matrix_for(base_opt, {part_cfg, nopart_cfg}, ws, sizes_kb);
    const auto runs = run_matrix(matrix);

    std::vector<GeoMean> avg(sizes_kb.size());
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      if (per_workload) {
        std::printf("%-28s",
                    (ws[wi].id + " (" + ws[wi].benchmarks[0] + "+" + ws[wi].benchmarks[1] + ")")
                        .c_str());
      }
      for (std::size_t si = 0; si < sizes_kb.size(); ++si) {
        const double part = runs[matrix.index_of(wi, 0, si)].result.throughput();
        const double nopart = runs[matrix.index_of(wi, 1, si)].result.throughput();
        const double r = part / nopart;
        avg[si].add(r);
        if (per_workload) std::printf(" %10.3f", r);
        if (csv) csv->row_of(part_cfg, ws[wi].id, sizes_kb[si], r);
      }
      if (per_workload) std::printf("\n");
    }
    std::printf("%-28s", "AVG (geomean)");
    for (auto& a : avg) std::printf(" %10.3f", a.value());
    std::printf("\n\n");
  }

  std::printf("paper averages: LRU +8.0/+2.4/+0.2%%; NRU <= ~2%% everywhere;\n"
              "                BT +8.1/+4.7/+0.5%% at 512KB/1MB/2MB.\n");
  return 0;
}
