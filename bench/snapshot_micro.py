#!/usr/bin/env python3
"""Capture a merged JSON snapshot of the bench_micro_* google-benchmark suites.

Usage:
    snapshot_micro.py --bench-dir build/bench --out bench/BENCH_PR6.json

Runs each micro-bench binary with --benchmark_out_format=json and merges the
per-binary reports into one document keyed by binary name. The merged file is
what bench/compare_bench_json.py consumes: commit one per perf-relevant PR
(BENCH_PR6.json is the first) and ratchet new work against it.

Numbers are only comparable on the same machine and build flags: the snapshot
records the reporting context (host, CPU, build type) so a cross-machine
comparison can at least be flagged for what it is.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

MICRO_BENCHES = (
    "bench_micro_policies",
    "bench_micro_profiling",
    "bench_micro_shard",
    "bench_micro_timed",
    "bench_micro_trace",
)


def run_bench(exe: pathlib.Path, extra_args: list[str]) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", mode="r") as tmp:
        cmd = [
            str(exe),
            f"--benchmark_out={tmp.name}",
            "--benchmark_out_format=json",
            "--benchmark_format=console",
            *extra_args,
        ]
        print(f"snapshot_micro: running {exe.name}", flush=True)
        subprocess.run(cmd, check=True, stdout=sys.stderr)
        return json.load(open(tmp.name))


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench-dir", required=True, type=pathlib.Path)
    ap.add_argument("--out", required=True, type=pathlib.Path)
    ap.add_argument(
        "--min-time",
        default=None,
        help="forwarded as --benchmark_min_time (e.g. 0.1s for a quick pass)",
    )
    ap.add_argument(
        "--best-of",
        type=int,
        default=1,
        help="run each suite N times and keep the per-benchmark minimum "
        "cpu_time sample. The minimum is the least noise-contaminated "
        "estimator on shared/virtualized hosts, where scheduling and "
        "frequency drift only ever inflate timings; capture baselines and "
        "candidates with the same N so they stay comparable.",
    )
    args = ap.parse_args()

    extra = [f"--benchmark_min_time={args.min_time}"] if args.min_time else []
    merged: dict = {"schema": "plrupart-bench-snapshot-v1", "suites": {}}
    for name in MICRO_BENCHES:
        exe = args.bench_dir / name
        if not exe.is_file():
            sys.exit(f"snapshot_micro: {exe} not built (enable PLRUPART_BUILD_BENCH)")
        report = run_bench(exe, extra)
        best = {b["name"]: b for b in report.get("benchmarks", [])}
        for _ in range(max(args.best_of, 1) - 1):
            rerun = run_bench(exe, extra)
            for b in rerun.get("benchmarks", []):
                cur = best.get(b["name"])
                if cur is None or b.get("cpu_time", 0) < cur.get("cpu_time", 0):
                    best[b["name"]] = b
        merged["suites"][name] = {
            "context": report.get("context", {}),
            "benchmarks": [
                b for b in best.values() if b.get("run_type") != "aggregate"
            ],
        }

    args.out.write_text(json.dumps(merged, indent=2) + "\n")
    total = sum(len(s["benchmarks"]) for s in merged["suites"].values())
    print(f"snapshot_micro: wrote {total} benchmarks to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
