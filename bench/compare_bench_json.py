#!/usr/bin/env python3
"""Ratchet two bench snapshots (bench/snapshot_micro.py output) against each
other.

Usage:
    compare_bench_json.py <baseline.json> <candidate.json> [--max-regress 0.15]
                          [--min-ns 5] [--filter REGEX]

Compares per-benchmark cpu_time and exits 1 if any benchmark in the candidate
regressed by more than --max-regress (relative, default 15%) versus the
baseline. Benchmarks present in only one snapshot are reported but do not
fail the run (suites legitimately grow and shrink); sub---min-ns benchmarks
are skipped since timer noise dominates there.

Exits 2 (usage/setup error, distinct from a measured regression) when a
snapshot is missing or unparsable, or when the comparison is vacuous -- no
benchmark name survives the intersection and --filter. A ratchet that
compares zero benchmarks and reports success would certify nothing; this
happened silently before the check (e.g. a typo'd --filter, or a baseline
captured from a different suite set).

This is a same-machine ratchet: comparing snapshots from different hosts or
build flags is meaningless, and the tool warns (but proceeds) when the
recorded contexts disagree on CPU or mhz_per_cpu.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys


def fail(msg: str) -> None:
    """Setup/usage error: exit 2, distinct from exit 1 (measured regression)."""
    print(f"compare_bench_json: error: {msg}", file=sys.stderr)
    raise SystemExit(2)


def load_times(path: pathlib.Path) -> tuple[dict[str, float], dict]:
    try:
        text = path.read_text()
    except OSError as e:
        fail(f"cannot read snapshot {path}: {e}")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if doc.get("schema") != "plrupart-bench-snapshot-v1":
        fail(f"{path} is not a snapshot_micro.py report")
    times: dict[str, float] = {}
    context: dict = {}
    for suite, body in doc["suites"].items():
        context = body.get("context", context)
        for bench in body["benchmarks"]:
            times[f"{suite}/{bench['name']}"] = float(bench["cpu_time"])
    return times, context


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", type=pathlib.Path)
    ap.add_argument("candidate", type=pathlib.Path)
    ap.add_argument("--max-regress", type=float, default=0.15)
    ap.add_argument("--min-ns", type=float, default=5.0)
    ap.add_argument("--filter", default=None)
    args = ap.parse_args()

    base, base_ctx = load_times(args.baseline)
    cand, cand_ctx = load_times(args.candidate)
    for key in ("num_cpus", "mhz_per_cpu"):
        if base_ctx.get(key) != cand_ctx.get(key):
            print(
                f"compare_bench_json: WARNING context mismatch on {key}: "
                f"{base_ctx.get(key)} vs {cand_ctx.get(key)} — ratios are suspect"
            )

    pattern = re.compile(args.filter) if args.filter else None
    regressions: list[tuple[str, float, float, float]] = []
    compared = improved = same = skipped = 0
    for name in sorted(base.keys() & cand.keys()):
        if pattern and not pattern.search(name):
            continue
        compared += 1
        b, c = base[name], cand[name]
        if b < args.min_ns:
            skipped += 1
            continue
        ratio = c / b
        if ratio > 1.0 + args.max_regress:
            regressions.append((name, b, c, ratio))
        elif ratio < 1.0:
            improved += 1
        else:
            same += 1

    if compared == 0:
        fail(
            "vacuous comparison: no benchmark name is in both snapshots"
            + (f" and matches --filter {args.filter!r}" if args.filter else "")
            + f" ({len(base)} baseline, {len(cand)} candidate names); "
            "a ratchet over zero benchmarks certifies nothing"
        )

    for name in sorted(base.keys() - cand.keys()):
        print(f"compare_bench_json: note: dropped from candidate: {name}")
    for name in sorted(cand.keys() - base.keys()):
        print(f"compare_bench_json: note: new in candidate: {name}")

    for name, b, c, ratio in sorted(regressions, key=lambda r: -r[3]):
        print(
            f"compare_bench_json: REGRESSION {name}: {b:.1f}ns -> {c:.1f}ns "
            f"({(ratio - 1) * 100:+.1f}%, limit {args.max_regress * 100:.0f}%)"
        )
    print(
        f"compare_bench_json: {compared} compared, "
        f"{improved} improved, {same} within limit, {skipped} below {args.min_ns}ns, "
        f"{len(regressions)} regressed"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
