// Figure 7 reproduction: dynamic cache partitioning across enforcement and
// profiling schemes — configurations C-L, M-L, M-1.0N, M-0.75N, M-0.5N and
// M-BT on 2-, 4- and 8-core CMPs, all relative to the C-L baseline.
//
// Paper reference points: M-L tracks C-L within 0.5%; M-0.75N loses
// 0.3/3.6/7.3% throughput at 2/4/8 cores; M-BT loses 1.4/3.4/9.7%; S=0.75 is
// the best NRU scaling factor.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::uint32_t> core_counts =
      quick ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 4, 8};
  const std::vector<std::string> configs{"C-L",     "M-L",    "M-1.0N",
                                         "M-0.75N", "M-0.5N", "M-BT"};

  std::printf("=== Figure 7: dynamic CPA configurations relative to C-L ===\n");
  std::printf("(MinMisses, %lluk-cycle intervals, 1/%u set sampling, "
              "%llu instr/thread)\n\n",
              static_cast<unsigned long long>(opt.interval_cycles / 1000),
              opt.sampling_ratio, static_cast<unsigned long long>(opt.instr));

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"cores", "config", "rel_throughput",
                                                    "rel_hmean", "rel_wspeedup"});
  }

  std::printf("%-7s %-11s %14s %14s %16s\n", "cores", "config", "rel.throughput",
              "rel.hmean", "rel.wspeedup");

  IsolationCache iso(opt);

  for (const auto cores : core_counts) {
    auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick);
    iso.warm(ws, {cache::ReplacementKind::kLru, cache::ReplacementKind::kNru,
                  cache::ReplacementKind::kTreePlru});

    // One workloads × configs RunMatrix per core count (C-L first: baseline).
    const auto matrix = matrix_for(opt, configs, ws);
    const auto runs = run_matrix(matrix);
    std::vector<metrics::PerfMetrics> results(runs.size());
    for (std::size_t wi = 0; wi < ws.size(); ++wi)
      for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const auto idx = matrix.index_of(wi, ci);
        results[idx] = workload_metrics(runs[idx].result, replacement_of(configs[ci]), iso);
      }

    // Paper-style aggregation: average each absolute metric over the workload
    // set per configuration, then report relative to the baseline's average.
    for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
      metrics::PerfMetrics mine{}, base{};
      for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        const auto& b = results[wi * configs.size() + 0];  // C-L
        const auto& m = results[wi * configs.size() + cfg];
        base.throughput += b.throughput;
        base.harmonic_mean += b.harmonic_mean;
        base.weighted_speedup += b.weighted_speedup;
        mine.throughput += m.throughput;
        mine.harmonic_mean += m.harmonic_mean;
        mine.weighted_speedup += m.weighted_speedup;
      }
      const double thr = mine.throughput / base.throughput;
      const double hm = mine.harmonic_mean / base.harmonic_mean;
      const double wsp = mine.weighted_speedup / base.weighted_speedup;
      std::printf("%-7u %-11s %14.4f %14.4f %16.4f\n", cores, configs[cfg].c_str(),
                  thr, hm, wsp);
      if (csv) csv->row_of(cores, configs[cfg], thr, hm, wsp);
    }
  }

  std::printf("\npaper: M-L within 0.5%% of C-L; M-0.75N -0.3/-3.6/-7.3%% at 2/4/8\n"
              "       cores; M-BT -1.4/-3.4/-9.7%%; S=0.75 beats 1.0 and 0.5.\n");
  return 0;
}
