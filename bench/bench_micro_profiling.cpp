// google-benchmark microbenchmarks: profiling and partition-selection
// datapaths — ATD probes, SDH updates, miss-curve builds, MinMisses solvers.
#include <benchmark/benchmark.h>

#include "plrupart/common/rng.hpp"
#include "plrupart/core/min_misses.hpp"
#include "plrupart/core/profiler.hpp"
#include "plrupart/core/tree_rounding.hpp"

using namespace plrupart;
using namespace plrupart::core;

namespace {

void BM_SdhRecord(benchmark::State& state) {
  Sdh sdh(16);
  Rng rng(1);
  for (auto _ : state) {
    sdh.record_hit(static_cast<std::uint32_t>(rng.next_in(1, 16)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ProfilerRecordAccess(benchmark::State& state) {
  const auto geo = cache::paper_l2_geometry();
  std::unique_ptr<Profiler> prof;
  switch (state.range(0)) {
    case 0:
      prof = std::make_unique<LruProfiler>(geo, 32);
      break;
    case 1:
      prof = std::make_unique<NruProfiler>(geo, 32, 0.75);
      break;
    default:
      prof = std::make_unique<BtProfiler>(geo, 32);
      break;
  }
  Rng rng(2);
  for (auto _ : state) {
    prof->record_access(rng.next_below(1 << 22));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(prof->name());
}

void BM_MissCurveBuild(benchmark::State& state) {
  Sdh sdh(16);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i)
    sdh.record_hit(static_cast<std::uint32_t>(rng.next_in(1, 16)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MissCurve::from_sdh(sdh));
  }
}

std::vector<MissCurve> solver_curves(std::uint32_t n, std::uint32_t ways) {
  Rng rng(4);
  std::vector<MissCurve> curves;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<double> v(ways + 1);
    v[0] = 10000.0;
    for (std::uint32_t w = 1; w <= ways; ++w)
      v[w] = v[w - 1] * (0.75 + rng.next_double() * 0.25);
    curves.emplace_back(std::move(v));
  }
  return curves;
}

void BM_MinMissesOptimal(benchmark::State& state) {
  const auto curves = solver_curves(static_cast<std::uint32_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_misses_optimal(curves, 16));
  }
  state.SetLabel(std::to_string(state.range(0)) + " cores");
}

void BM_MinMissesGreedy(benchmark::State& state) {
  const auto curves = solver_curves(static_cast<std::uint32_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_misses_greedy(curves, 16));
  }
  state.SetLabel(std::to_string(state.range(0)) + " cores");
}

void BM_MinMissesLookahead(benchmark::State& state) {
  const auto curves = solver_curves(static_cast<std::uint32_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_misses_lookahead(curves, 16));
  }
  state.SetLabel(std::to_string(state.range(0)) + " cores");
}

void BM_MinMissesTreeDp(benchmark::State& state) {
  const auto curves = solver_curves(static_cast<std::uint32_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_misses_tree(curves, 16));
  }
  state.SetLabel(std::to_string(state.range(0)) + " cores");
}

}  // namespace

BENCHMARK(BM_SdhRecord)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ProfilerRecordAccess)->DenseRange(0, 2)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MissCurveBuild)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_MinMissesOptimal)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinMissesGreedy)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinMissesLookahead)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinMissesTreeDp)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
