// Figure 6 reproduction: performance of NRU and BT relative to LRU on a
// NON-partitioned shared L2, for 1-, 2-, 4- and 8-core CMPs.
//
// Paper reference points (100M-instruction traces): NRU loses at most 2.1%
// throughput at any core count; BT loses 2.2/1.6/1.9/5.3% at 1/2/4/8 cores.
// The sub-figures (a,b,c) are throughput, harmonic mean and weighted speedup.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::uint32_t> core_counts = quick
                                                     ? std::vector<std::uint32_t>{1, 2}
                                                     : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<std::string> configs{"NOPART-L", "NOPART-N", "NOPART-BT"};

  std::printf("=== Figure 6: NRU and BT vs LRU, non-partitioned %lluKB %u-way L2 ===\n",
              static_cast<unsigned long long>(opt.l2.size_bytes / 1024),
              opt.l2.associativity);
  std::printf("(geometric means over Table II workloads; values relative to LRU;\n"
              " %llu instr/thread — see EXPERIMENTS.md for scale notes)\n\n",
              static_cast<unsigned long long>(opt.instr));

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"cores", "config", "rel_throughput",
                                                    "rel_hmean", "rel_wspeedup"});
  }

  std::printf("%-7s %-11s %14s %14s %16s\n", "cores", "config", "rel.throughput",
              "rel.hmean", "rel.wspeedup");

  IsolationCache iso(opt);

  for (const auto cores : core_counts) {
    auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick);
    iso.warm(ws, {cache::ReplacementKind::kLru, cache::ReplacementKind::kNru,
                  cache::ReplacementKind::kTreePlru});

    // One workloads × configs RunMatrix per core count; baseline metrics per
    // workload come from the NOPART-L runs.
    const auto matrix = matrix_for(opt, configs, ws);
    const auto runs = run_matrix(matrix);
    std::vector<metrics::PerfMetrics> results(runs.size());
    for (std::size_t wi = 0; wi < ws.size(); ++wi)
      for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const auto idx = matrix.index_of(wi, ci);
        results[idx] = workload_metrics(runs[idx].result, replacement_of(configs[ci]), iso);
      }

    // Paper-style aggregation: average each absolute metric over the workload
    // set per configuration, then report relative to LRU's average.
    for (std::size_t cfg_idx = 0; cfg_idx < configs.size(); ++cfg_idx) {
      metrics::PerfMetrics mine{}, base{};
      for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        const auto& b = results[wi * configs.size() + 0];
        const auto& m = results[wi * configs.size() + cfg_idx];
        base.throughput += b.throughput;
        base.harmonic_mean += b.harmonic_mean;
        base.weighted_speedup += b.weighted_speedup;
        mine.throughput += m.throughput;
        mine.harmonic_mean += m.harmonic_mean;
        mine.weighted_speedup += m.weighted_speedup;
      }
      const double thr = mine.throughput / base.throughput;
      const double ht = cores > 1 ? mine.harmonic_mean / base.harmonic_mean : 1.0;
      const double wt = cores > 1 ? mine.weighted_speedup / base.weighted_speedup : 1.0;
      std::printf("%-7u %-11s %14.4f %14.4f %16.4f\n", cores, configs[cfg_idx].c_str(),
                  thr, ht, wt);
      if (csv) csv->row_of(cores, configs[cfg_idx], thr, ht, wt);
    }
  }

  std::printf("\npaper: NRU <= 2.1%% throughput loss at any core count;\n"
              "       BT loses 2.2/1.6/1.9/5.3%% at 1/2/4/8 cores.\n");
  return 0;
}
