// Extension bench: does the paper's recipe generalize to SRRIP?
//
// The paper adapts cache partitioning to NRU and BT. This repo additionally
// implements 2-bit SRRIP with an RRPV-quartile eSDH (see cache/srrip.hpp).
// The bench replays the Fig. 6 + Fig. 7 protocol with SRRIP added: if the
// framework generalizes, M-RRIP should track the other partitioned
// configurations the way M-BT and M-0.75N do.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::uint32_t> core_counts =
      quick ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 4};

  std::printf("=== Extension: SRRIP under the paper's partitioning recipe ===\n\n");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file,
                std::vector<std::string>{"cores", "config", "rel_throughput"});
  }

  // Part 1 (Fig. 6 protocol): unpartitioned SRRIP vs LRU.
  {
    std::printf("--- unpartitioned, relative to NOPART-L ---\n");
    std::printf("%-7s %-13s %16s\n", "cores", "config", "rel.throughput");
    const std::vector<std::string> configs{"NOPART-L", "NOPART-N", "NOPART-BT",
                                           "NOPART-RRIP"};
    for (const auto cores : core_counts) {
      auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick);
      std::vector<double> thr(ws.size() * configs.size());
      parallel_for(thr.size(), [&](std::size_t idx) {
        thr[idx] = run_workload(ws[idx / configs.size()],
                                configs[idx % configs.size()], opt)
                       .throughput();
      });
      for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
        double mine = 0.0, base = 0.0;
        for (std::size_t wi = 0; wi < ws.size(); ++wi) {
          mine += thr[wi * configs.size() + cfg];
          base += thr[wi * configs.size() + 0];
        }
        std::printf("%-7u %-13s %16.4f\n", cores, configs[cfg].c_str(), mine / base);
        if (csv) csv->row_of(cores, configs[cfg], mine / base);
      }
    }
  }

  // Part 2 (Fig. 7 protocol): partitioned SRRIP vs C-L.
  {
    std::printf("\n--- dynamic CPA, relative to C-L ---\n");
    std::printf("%-7s %-13s %16s\n", "cores", "config", "rel.throughput");
    const std::vector<std::string> configs{"C-L", "M-L", "M-0.75N", "M-BT", "M-RRIP"};
    for (const auto cores : core_counts) {
      auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick);
      std::vector<double> thr(ws.size() * configs.size());
      parallel_for(thr.size(), [&](std::size_t idx) {
        thr[idx] = run_workload(ws[idx / configs.size()],
                                configs[idx % configs.size()], opt)
                       .throughput();
      });
      for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
        double mine = 0.0, base = 0.0;
        for (std::size_t wi = 0; wi < ws.size(); ++wi) {
          mine += thr[wi * configs.size() + cfg];
          base += thr[wi * configs.size() + 0];
        }
        std::printf("%-7u %-13s %16.4f\n", cores, configs[cfg].c_str(), mine / base);
        if (csv) csv->row_of(cores, configs[cfg], mine / base);
      }
    }
  }

  std::printf("\nSRRIP partitioning hardware: 2A bits/set RRPV + A-bit owner masks\n"
              "per core (Table I extension printed by bench_table1_complexity).\n");
  return 0;
}
