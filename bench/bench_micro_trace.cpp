// Micro-benchmarks of the trace codec hot paths: encode/decode throughput of
// the v1 text and v2 binary formats, and the effect of the streaming buffer
// size on replay speed. Trace-backed sweeps are bounded by TraceReader::next()
// the way synthetic sweeps are bounded by SetAssocCache::access, so decode
// throughput (ops/s and bytes/s) is the number to watch here.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "plrupart/common/rng.hpp"
#include "plrupart/sim/trace_file.hpp"

namespace {

using namespace plrupart;

/// A capture-shaped op stream: mostly small strides with occasional jumps.
std::vector<sim::MemOp> make_ops(std::size_t n) {
  Rng rng(7);
  std::vector<sim::MemOp> ops;
  ops.reserve(n);
  cache::Addr addr = 0x7f00'0000'0000;
  for (std::size_t i = 0; i < n; ++i) {
    addr += rng.next_bool(0.9) ? 64 * rng.next_below(8)
                               : (rng.next_u64() & 0xfff'ffff);
    ops.push_back(sim::MemOp{.addr = addr, .write = rng.next_bool(0.3),
                             .gap_instrs = static_cast<std::uint32_t>(rng.next_below(16))});
  }
  return ops;
}

std::string temp_trace_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("plrupart_bench_" + std::to_string(::getpid()) + "_" + tag + ".trace"))
      .string();
}

constexpr std::size_t kOps = 200'000;

void BM_TraceWrite(benchmark::State& state) {
  const auto format = static_cast<sim::TraceFormat>(state.range(0));
  const auto ops = make_ops(kOps);
  const auto path = temp_trace_path("w");
  for (auto _ : state) {
    sim::TraceWriter writer(path, format);
    for (const auto& op : ops) writer.append(op);
    writer.close();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kOps));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceWrite)
    ->Arg(static_cast<int>(sim::TraceFormat::kTextV1))
    ->Arg(static_cast<int>(sim::TraceFormat::kBinaryV2))
    ->ArgName("format");

void BM_TraceRead(benchmark::State& state) {
  const auto format = static_cast<sim::TraceFormat>(state.range(0));
  const auto buffer = static_cast<std::size_t>(state.range(1));
  const auto ops = make_ops(kOps);
  const auto path = temp_trace_path("r");
  sim::write_trace_file(path, ops, format);
  for (auto _ : state) {
    sim::TraceReader reader(path, buffer);
    while (auto op = reader.next()) benchmark::DoNotOptimize(op->addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kOps));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceRead)
    ->ArgsProduct({{static_cast<int>(sim::TraceFormat::kTextV1),
                    static_cast<int>(sim::TraceFormat::kBinaryV2)},
                   {4 * 1024, 64 * 1024, 1024 * 1024}})
    ->ArgNames({"format", "buffer"});

/// End-to-end looping replay through FileTraceSource — what a trace-backed
/// simulation core actually pays per memory operation.
void BM_FileTraceSourceReplay(benchmark::State& state) {
  const auto format = static_cast<sim::TraceFormat>(state.range(0));
  const auto ops = make_ops(kOps);
  const auto path = temp_trace_path("s");
  sim::write_trace_file(path, ops, format);
  sim::FileTraceSource src(path);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kOps; ++i) benchmark::DoNotOptimize(src.next().addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kOps));
  std::filesystem::remove(path);
}
BENCHMARK(BM_FileTraceSourceReplay)
    ->Arg(static_cast<int>(sim::TraceFormat::kTextV1))
    ->Arg(static_cast<int>(sim::TraceFormat::kBinaryV2))
    ->ArgName("format");

}  // namespace

BENCHMARK_MAIN();
