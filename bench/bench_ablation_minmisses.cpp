// Ablation: partition-selection algorithm — exact DP vs greedy vs UCP-style
// lookahead — plus the fairness and QoS policies, all on the same M-L
// hardware substrate.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  struct PolicySpec {
    std::string name;
    core::PolicyKind kind;
    core::IpcObjective objective = core::IpcObjective::kThroughput;
  };
  const std::vector<PolicySpec> policies{
      {"optimal", core::PolicyKind::kMinMissesOptimal},
      {"greedy", core::PolicyKind::kMinMissesGreedy},
      {"lookahead", core::PolicyKind::kMinMissesLookahead},
      {"fair", core::PolicyKind::kFair},
      {"qos(core0,1.1x)", core::PolicyKind::kQos},
      {"ipc-throughput", core::PolicyKind::kIpc, core::IpcObjective::kThroughput},
      {"ipc-hmean", core::PolicyKind::kIpc, core::IpcObjective::kHarmonicMean},
      {"static-even", core::PolicyKind::kStaticEven},
  };
  const std::vector<std::uint32_t> core_counts =
      quick ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 4};

  std::printf("=== Ablation: partition-selection policy (M-L substrate) ===\n");
  std::printf("(geomean throughput and harmonic mean relative to MinMisses-optimal)\n\n");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"cores", "policy", "rel_throughput",
                                                    "rel_hmean"});
  }

  IsolationCache iso(opt);
  std::printf("%-7s %-17s %16s %12s\n", "cores", "policy", "rel.throughput",
              "rel.hmean");
  for (const auto cores : core_counts) {
    auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick, 6);
    iso.warm(ws, {cache::ReplacementKind::kLru});

    std::vector<metrics::PerfMetrics> results(ws.size() * policies.size());
    parallel_for(results.size(), [&](std::size_t idx) {
      const auto& w = ws[idx / policies.size()];
      const auto& pol = policies[idx % policies.size()];
      const auto r = run_workload(w, "M-L", opt, [&](core::CpaConfig& cfg) {
        cfg.policy = pol.kind;
        if (pol.kind == core::PolicyKind::kQos)
          cfg.qos = core::QosTarget{.core = 0, .factor = 1.1};
        if (pol.kind == core::PolicyKind::kIpc) {
          cfg.ipc_objective = pol.objective;
          for (const auto& bench_name : w.benchmarks) {
            const auto& prof = workloads::benchmark(bench_name);
            // Rough per-benchmark timing personality; the L1 filter passes
            // ~20-50% of memory ops at these working sets, estimate 30%.
            cfg.ipc_models.push_back(core::IpcModel{
                .instr_per_l2_access = 1.0 / (prof.mem_fraction * 0.3),
                .base_ipc = prof.core.base_ipc,
                .l2_hit_penalty = prof.core.l2_hit_penalty,
                .mem_penalty = prof.core.mem_penalty,
                .stall_fraction = prof.core.stall_fraction});
          }
        }
      });
      results[idx] = workload_metrics(r, cache::ReplacementKind::kLru, iso);
    });

    for (std::size_t p = 0; p < policies.size(); ++p) {
      GeoMean thr, hm;
      for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        const auto& base = results[wi * policies.size() + 0];
        const auto& mine = results[wi * policies.size() + p];
        thr.add(mine.throughput / base.throughput);
        hm.add(mine.harmonic_mean / base.harmonic_mean);
      }
      std::printf("%-7u %-17s %16.4f %12.4f\n", cores, policies[p].name.c_str(),
                  thr.value(), hm.value());
      if (csv) csv->row_of(cores, policies[p].name, thr.value(), hm.value());
    }
  }

  std::printf("\nexpectation: greedy ~= optimal on mostly-convex curves; fair trades\n"
              "throughput for harmonic mean; static-even trails every dynamic policy.\n");
  return 0;
}
