// Table I reproduction: complexity of the LRU, NRU and BT replacement
// schemes. Purely analytical — prints the paper's two sub-tables with the
// bracketed numbers for the baseline configuration (16-way 2MB L2, 128B
// lines, 2 cores, 64-bit architecture with 47 tag bits).
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "plrupart/power/complexity.hpp"

using namespace plrupart;
using power::ComplexityParams;
using power::event_costs;
using power::replacement_storage;
using cache::ReplacementKind;

namespace {

constexpr ReplacementKind kKinds[] = {ReplacementKind::kLru, ReplacementKind::kNru,
                                      ReplacementKind::kTreePlru};

void print_storage(const ComplexityParams& p) {
  std::printf("Table I(a): storage bits of the replacement logic\n");
  std::printf("%-22s %12s %14s %14s %10s\n", "scheme", "bits/set", "global bits",
              "total bits", "KiB");
  for (const bool partitioned : {false, true}) {
    std::printf("  -- %s --\n", partitioned ? "with global masks / vectors"
                                            : "no partitioning");
    for (const auto kind : kKinds) {
      const auto s = replacement_storage(kind, p, partitioned);
      std::printf("%-22s %12llu %14llu %14llu %10.3f\n", to_string(kind).c_str(),
                  static_cast<unsigned long long>(s.per_set_bits),
                  static_cast<unsigned long long>(s.global_bits),
                  static_cast<unsigned long long>(s.total_bits), s.total_kib());
    }
  }
  std::printf("owner-counter scheme (C-*): %llu extra bits per set "
              "(A*log2(N) + N*log2(A))\n\n",
              static_cast<unsigned long long>(
                  power::owner_counter_bits_per_set(p.associativity, p.cores)));
}

void print_events(const ComplexityParams& p) {
  std::printf("Table I(b): bits read/updated per event\n");
  std::printf("%-34s %10s %10s %10s\n", "event", "LRU", "NRU", "BT");
  const auto lru = event_costs(ReplacementKind::kLru, p);
  const auto nru = event_costs(ReplacementKind::kNru, p);
  const auto bt = event_costs(ReplacementKind::kTreePlru, p);
  auto row = [](const char* name, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    std::printf("%-34s %10llu %10llu %10llu\n", name, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), static_cast<unsigned long long>(c));
  };
  row("TAG comparison", lru.tag_comparison, nru.tag_comparison, bt.tag_comparison);
  row("update, no partitioning (worst)", lru.update_unpartitioned,
      nru.update_unpartitioned, bt.update_unpartitioned);
  row("find owned lines", lru.find_owned_lines, nru.find_owned_lines,
      bt.find_owned_lines);
  row("find victim in owned (worst)", lru.find_victim_in_owned,
      nru.find_victim_in_owned, bt.find_victim_in_owned);
  row("profiling: read/estimate dist.", lru.profiling_read, nru.profiling_read,
      bt.profiling_read);
  row("get data (hit)", lru.data_read, nru.data_read, bt.data_read);
  std::printf("note: paper prints 52 for LRU find-victim-in-owned; its own formula\n"
              "      (A-1)*log2(A) gives 60 at A=16 — we report the formula.\n\n");
}

void print_atd(const ComplexityParams& p) {
  std::printf("Profiling-logic storage (per core, 1/32 set sampling):\n");
  for (const auto kind : kKinds) {
    const auto bits = power::atd_storage_bits(kind, p, 32);
    std::printf("  ATD under %-4s: %8llu bits = %7.3f KiB\n", to_string(kind).c_str(),
                static_cast<unsigned long long>(bits),
                static_cast<double>(bits) / 8.0 / 1024.0);
  }
  std::printf("  (paper: 3.25KB for the LRU ATD)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto p = ComplexityParams::from_geometry(
      cache::paper_l2_geometry(), static_cast<std::uint32_t>(cli.get_int("--cores", 2)),
      static_cast<std::uint32_t>(cli.get_int("--tag-bits", 47)));

  std::printf("=== Table I: complexity of LRU, NRU and BT (A=%u, sets=%llu, N=%u, "
              "tag=%u bits) ===\n\n",
              p.associativity, static_cast<unsigned long long>(p.sets), p.cores,
              p.tag_bits);
  print_storage(p);
  print_events(p);
  print_atd(p);

  if (const auto csv_path = cli.value("--csv")) {
    std::ofstream out(*csv_path);
    CsvWriter csv(out, {"scheme", "partitioned", "bits_per_set", "global_bits",
                        "total_bits", "kib"});
    for (const bool part : {false, true}) {
      for (const auto kind : kKinds) {
        const auto s = replacement_storage(kind, p, part);
        csv.row_of(to_string(kind), part ? 1 : 0, s.per_set_bits, s.global_bits,
                   s.total_bits, s.total_kib());
      }
    }
  }
  return 0;
}
