// google-benchmark microbenchmarks for the set-sharded execution primitives
// (src/sim/shard_sync.hpp): the per-op cost of the demux broadcast ring as
// the consumer count grows, and the cost of an interval-boundary barrier
// round-trip at the shard counts --sim-threads realistically uses.
//
// These are the two overheads that bound intra-run scaling: every decoded
// trace op crosses one BroadcastRing (so its per-op cost is paid ~K times per
// access), and every controller interval costs one full-barrier round-trip.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sim/shard_sync.hpp"

using plrupart::sim::internal::AbortFlag;
using plrupart::sim::internal::BroadcastRing;
using plrupart::sim::internal::ShardBarrier;

namespace {

/// Payload shaped like the demux's OpRecord (16 bytes).
struct Op {
  std::uint64_t addr = 0;
  std::uint32_t gap = 0;
  std::uint8_t write = 0;
  std::uint8_t l1_hit = 0;
};

/// Single-threaded ring cycle: one push fanned out to K consumers, all pops
/// on the calling thread. Measures the pure bookkeeping cost of the
/// broadcast (slot write, head publish, K cursor advances, min-tail scan)
/// with no scheduler noise — the stable number the snapshot series tracks.
void BM_RingBroadcastCycle(benchmark::State& state) {
  const auto consumers = static_cast<std::uint32_t>(state.range(0));
  AbortFlag abort;
  BroadcastRing<Op> ring(1 << 12, consumers);
  Op op;
  std::uint64_t i = 0;
  for (auto _ : state) {
    op.addr = i++;
    ring.push(op, abort);
    for (std::uint32_t c = 0; c < consumers; ++c)
      benchmark::DoNotOptimize(ring.pop(c, abort).addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::to_string(consumers) + "consumer");
}

/// Contended demux: a real producer thread streams ops while K consumer
/// threads drain their cursors, exactly the sharded replay's topology.
/// Items/second here is the demux throughput ceiling for K shards.
void BM_DemuxThroughput(benchmark::State& state) {
  const auto consumers = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint64_t kOps = 1 << 14;
  for (auto _ : state) {
    AbortFlag abort;
    BroadcastRing<Op> ring(1 << 12, consumers);
    std::vector<std::thread> threads;
    threads.emplace_back([&] {
      Op op;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        op.addr = i;
        ring.push(op, abort);
      }
    });
    for (std::uint32_t c = 0; c < consumers; ++c) {
      threads.emplace_back([&, c] {
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < kOps; ++i) sum += ring.pop(c, abort).addr;
        benchmark::DoNotOptimize(sum);
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kOps));
  state.SetLabel(std::to_string(consumers) + "consumer");
}

/// Full-barrier round-trip at K parties: the per-interval synchronization
/// cost of the sharded replay (one critical section, everyone released).
/// Thread spawn/join is amortized over kRounds round-trips per iteration.
void BM_BarrierRoundTrip(benchmark::State& state) {
  const auto parties = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint64_t kRounds = 512;
  for (auto _ : state) {
    AbortFlag abort;
    ShardBarrier barrier(parties);
    std::uint64_t merged = 0;
    std::vector<std::thread> threads;
    for (std::uint32_t p = 0; p < parties; ++p) {
      threads.emplace_back([&] {
        for (std::uint64_t r = 0; r < kRounds; ++r)
          barrier.arrive_and_wait(abort, [&] { ++merged; });
      });
    }
    for (auto& t : threads) t.join();
    if (merged != kRounds) state.SkipWithError("barrier critical section miscount");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kRounds));
  state.SetLabel(std::to_string(parties) + "party");
}

}  // namespace

BENCHMARK(BM_RingBroadcastCycle)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_DemuxThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BarrierRoundTrip)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
