// Ablation: BT partition enforcement flavors.
//
//   mask-guided  — contiguous arbitrary-size masks, tree traversal forced
//                  toward the only populated subtree (library default).
//   strict+round — paper-faithful up/down force vectors: MinMisses decisions
//                  rounded to aligned power-of-two blocks.
//   strict+tree  — force vectors with the tree-restricted MinMisses DP, which
//                  optimizes within the power-of-two class directly.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  struct Mode {
    std::string name;
    bool strict;
    core::PolicyKind policy;
  };
  const std::vector<Mode> modes{
      {"mask-guided", false, core::PolicyKind::kMinMissesOptimal},
      {"strict+round", true, core::PolicyKind::kMinMissesOptimal},
      {"strict+tree", true, core::PolicyKind::kMinMissesTree},
  };

  const std::vector<std::uint32_t> core_counts =
      quick ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 4, 8};

  std::printf("=== Ablation: BT enforcement expressiveness (M-BT variants) ===\n");
  std::printf("(geomean throughput relative to mask-guided, per core count)\n\n");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"cores", "mode", "rel_throughput"});
  }

  std::printf("%-7s %-14s %16s\n", "cores", "mode", "rel.throughput");
  for (const auto cores : core_counts) {
    auto ws = maybe_quick(workloads::workloads_for_threads(cores), quick);

    std::vector<double> thr(ws.size() * modes.size());
    parallel_for(thr.size(), [&](std::size_t idx) {
      const auto& w = ws[idx / modes.size()];
      const auto& mode = modes[idx % modes.size()];
      const auto r = run_workload(w, "M-BT", opt, [&](core::CpaConfig& cfg) {
        cfg.bt_strict_pow2 = mode.strict;
        cfg.policy = mode.policy;
      });
      thr[idx] = r.throughput();
    });

    for (std::size_t m = 0; m < modes.size(); ++m) {
      GeoMean g;
      for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        g.add(thr[wi * modes.size() + m] / thr[wi * modes.size() + 0]);
      }
      std::printf("%-7u %-14s %16.4f\n", cores, modes[m].name.c_str(), g.value());
      if (csv) csv->row_of(cores, modes[m].name, g.value());
    }
  }

  std::printf("\nexpectation: strict vector enforcement pays for power-of-two\n"
              "rounding, most visibly at higher core counts; the tree DP recovers\n"
              "part of that loss within the same hardware.\n");
  return 0;
}
