// Shared harness for the table/figure reproduction benches.
//
// Scale note: the paper simulates 100M instructions per thread on a
// cycle-accurate simulator; these benches default to 1M instructions per
// thread with a proportionally shortened repartition interval (200k cycles vs
// the paper's 1M on 100x longer runs). Every binary accepts
//   --instr N       instructions per thread
//   --interval N    repartition interval in cycles
//   --seed N        RNG root seed
//   --quick         a reduced workload subset for smoke runs
//   --csv FILE      machine-readable copy of the printed table
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "plrupart/metrics/metrics.hpp"
#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart::bench {

struct RunOptions {
  std::uint64_t instr = 2'000'000;
  std::uint64_t warmup = 1'000'000;
  std::uint64_t interval_cycles = 200'000;
  std::uint32_t sampling_ratio = 32;
  std::uint64_t seed = 42;
  cache::Geometry l2 = cache::paper_l2_geometry();
  cache::Geometry l1d{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};

  [[nodiscard]] static RunOptions from_cli(const Cli& cli) {
    RunOptions o;
    o.instr = static_cast<std::uint64_t>(cli.get_int("--instr", 2'000'000));
    o.warmup = static_cast<std::uint64_t>(
        cli.get_int("--warmup", static_cast<std::int64_t>(o.instr / 2)));
    o.interval_cycles = static_cast<std::uint64_t>(cli.get_int("--interval", 200'000));
    o.seed = static_cast<std::uint64_t>(cli.get_int("--seed", 42));
    return o;
  }
};

/// Bridge RunOptions into the sweep engine: a configs × workloads × L2-size
/// RunMatrix sharing this harness's simulation parameters. The figure benches
/// build their sweeps through this (canonical order: workload > config > size;
/// use RunMatrix::index_of to address results) instead of private loops.
///
/// Seed note: the engine derives one trace seed per workload row, so every
/// config/size cell of a workload replays identical access streams, while the
/// IsolationCache baselines below keep using the root seed — baselines stay
/// common to all configurations, which is what the relative metrics need.
[[nodiscard]] inline runner::RunMatrix matrix_for(const RunOptions& opt,
                                                  std::vector<std::string> configs,
                                                  std::vector<workloads::Workload> ws,
                                                  std::vector<std::uint64_t> l2_kb = {}) {
  runner::RunMatrix m;
  m.configs = std::move(configs);
  m.workloads = std::move(ws);
  m.l2_kb = l2_kb.empty() ? std::vector<std::uint64_t>{opt.l2.size_bytes / 1024}
                          : std::move(l2_kb);
  m.assoc = opt.l2.associativity;
  m.line = opt.l2.line_bytes;
  m.l1d = opt.l1d;
  m.instr = opt.instr;
  m.warmup = opt.warmup;
  m.interval_cycles = opt.interval_cycles;
  m.sampling_ratio = opt.sampling_ratio;
  m.seed = opt.seed;
  return m;
}

/// Expand + execute a matrix with the process-default thread count.
[[nodiscard]] inline std::vector<runner::JobResult> run_matrix(const runner::RunMatrix& m) {
  return runner::SweepExecutor{}.run(m.expand());
}

/// Run one Table II workload under one L2 configuration acronym.
inline sim::SimResult run_workload(
    const workloads::Workload& w, const std::string& acronym, const RunOptions& opt,
    const std::function<void(core::CpaConfig&)>& tweak = {}) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d = opt.l1d;
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(acronym, w.threads(), opt.l2);
  cfg.hierarchy.l2.interval_cycles = opt.interval_cycles;
  cfg.hierarchy.l2.sampling_ratio = opt.sampling_ratio;
  cfg.hierarchy.l2.seed = opt.seed;
  if (tweak) tweak(cfg.hierarchy.l2);
  cfg.instr_limit = opt.instr;
  cfg.warmup_instr = opt.warmup;
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t i = 0; i < w.threads(); ++i) {
    const auto& prof = workloads::benchmark(w.benchmarks[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i, opt.seed));
  }
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

/// Memoized isolation IPCs: each benchmark alone on the full (unpartitioned)
/// L2 with the same replacement policy — the weighted-speedup baseline.
class IsolationCache {
 public:
  explicit IsolationCache(RunOptions opt) : opt_(std::move(opt)) {}

  double ipc(const std::string& benchmark_name, cache::ReplacementKind kind) {
    const Key key{benchmark_name, kind, opt_.l2.size_bytes};
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    const workloads::Workload solo{"ISO_" + benchmark_name, {benchmark_name}};
    const auto result = run_workload(solo, nopart_acronym(kind), opt_);
    const double value = result.threads[0].ipc;
    const std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(key, value);
    return value;
  }

  /// Precompute every (benchmark, kind) pair in parallel so later lookups are
  /// pure cache hits (avoids recomputation storms inside parallel sweeps).
  void warm(const std::vector<workloads::Workload>& workloads,
            const std::vector<cache::ReplacementKind>& kinds) {
    std::vector<std::pair<std::string, cache::ReplacementKind>> todo;
    for (const auto& w : workloads)
      for (const auto& b : w.benchmarks)
        for (const auto k : kinds) todo.emplace_back(b, k);
    std::sort(todo.begin(), todo.end());
    todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
    parallel_for(todo.size(), [&](std::size_t i) { (void)ipc(todo[i].first, todo[i].second); });
  }

  [[nodiscard]] static std::string nopart_acronym(cache::ReplacementKind kind) {
    switch (kind) {
      case cache::ReplacementKind::kLru:
        return "NOPART-L";
      case cache::ReplacementKind::kNru:
        return "NOPART-N";
      case cache::ReplacementKind::kTreePlru:
        return "NOPART-BT";
      case cache::ReplacementKind::kRandom:
        return "NOPART-R";
      case cache::ReplacementKind::kSrrip:
        return "NOPART-RRIP";
    }
    return "NOPART-L";
  }

 private:
  using Key = std::tuple<std::string, cache::ReplacementKind, std::uint64_t>;
  RunOptions opt_;
  std::mutex mutex_;
  std::map<Key, double> cache_;
};

/// The paper's three metrics for one finished run.
inline metrics::PerfMetrics workload_metrics(const sim::SimResult& result,
                                             cache::ReplacementKind kind,
                                             IsolationCache& iso) {
  std::vector<double> ipcs, iso_ipcs;
  for (const auto& t : result.threads) {
    ipcs.push_back(t.ipc);
    iso_ipcs.push_back(iso.ipc(t.benchmark, kind));
  }
  return metrics::compute(ipcs, iso_ipcs);
}

[[nodiscard]] inline cache::ReplacementKind replacement_of(const std::string& acronym) {
  return core::CpaConfig::from_acronym(acronym, 2, cache::paper_l2_geometry()).replacement;
}

/// Reduce a workload list for --quick smoke runs.
[[nodiscard]] inline std::vector<workloads::Workload> maybe_quick(
    std::vector<workloads::Workload> ws, bool quick, std::size_t keep = 4) {
  if (quick && ws.size() > keep) ws.resize(keep);
  return ws;
}

}  // namespace plrupart::bench
