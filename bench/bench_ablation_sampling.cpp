// Ablation: ATD set-sampling ratio. The paper adopts 1-in-32 from [22]
// (3.25KB per core); this bench sweeps the ratio and reports both the
// performance of the resulting CPA and the profiling storage it costs.
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "plrupart/power/complexity.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::uint32_t> ratios{1, 4, 8, 16, 32, 64, 128};
  const auto ws = maybe_quick(workloads::workloads_2t(), quick, 6);

  std::printf("=== Ablation: ATD set-sampling ratio (2-core, M-L) ===\n");
  std::printf("(geomean throughput relative to ratio 1 = full profiling)\n\n");

  const auto params = power::ComplexityParams::from_geometry(opt.l2, 2, 47);

  // Full-profiling baseline.
  std::vector<double> baseline(ws.size());
  {
    auto full = opt;
    full.sampling_ratio = 1;
    parallel_for(ws.size(), [&](std::size_t wi) {
      baseline[wi] = run_workload(ws[wi], "M-L", full).throughput();
    });
  }

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file,
                std::vector<std::string>{"ratio", "rel_throughput", "atd_kib_per_core"});
  }

  std::printf("%-8s %16s %20s\n", "1-in-N", "rel.throughput", "ATD KiB per core");
  std::vector<double> rel(ws.size());
  for (const auto ratio : ratios) {
    auto o = opt;
    o.sampling_ratio = ratio;
    parallel_for(ws.size(), [&](std::size_t wi) {
      rel[wi] = run_workload(ws[wi], "M-L", o).throughput() / baseline[wi];
    });
    GeoMean g;
    for (const double r : rel) g.add(r);
    const auto bits = power::atd_storage_bits(cache::ReplacementKind::kLru, params, ratio);
    const double kib = static_cast<double>(bits) / 8.0 / 1024.0;
    std::printf("%-8u %16.4f %20.3f\n", ratio, g.value(), kib);
    if (csv) csv->row_of(ratio, g.value(), kib);
  }

  std::printf("\npaper setting: 1-in-32 (3.25 KiB per core under LRU).\n");
  return 0;
}
