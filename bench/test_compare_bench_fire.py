#!/usr/bin/env python3
"""Self-test: prove the bench ratchet (compare_bench_json.py) actually fires.

A ratchet that exits 0 on garbage input certifies nothing -- and this one
historically did: a missing baseline died with a raw traceback, and two
snapshots with no benchmark names in common "compared" zero benchmarks and
passed. This script runs the comparator against small synthetic snapshots and
asserts every outcome: the pass, the regression failure (exit 1), and each
setup failure (exit 2, with a diagnostic naming the cause).

Registered as the `bench_compare_fire` CTest gate, mirroring
tools/lint/test_lints_fire.py.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
COMPARE = HERE / "compare_bench_json.py"

failures: list[str] = []


def snapshot(benches: dict[str, float], num_cpus: int = 4) -> dict:
    return {
        "schema": "plrupart-bench-snapshot-v1",
        "suites": {
            "bench_micro_policies": {
                "context": {"num_cpus": num_cpus, "mhz_per_cpu": 3000},
                "benchmarks": [
                    {"name": n, "cpu_time": t} for n, t in benches.items()
                ],
            }
        },
    }


def run(workdir: Path, base: dict | str | None, cand: dict, *extra: str
        ) -> subprocess.CompletedProcess:
    base_path = workdir / "base.json"
    cand_path = workdir / "cand.json"
    if isinstance(base, dict):
        base_path.write_text(json.dumps(base))
    elif isinstance(base, str):
        base_path.write_text(base)
    else:
        base_path.unlink(missing_ok=True)
    cand_path.write_text(json.dumps(cand))
    return subprocess.run(
        [sys.executable, str(COMPARE), str(base_path), str(cand_path), *extra],
        capture_output=True,
        text=True,
    )


def expect(proc: subprocess.CompletedProcess, name: str, code: int,
           substrings: list[str]) -> None:
    out = proc.stdout + proc.stderr
    if proc.returncode != code:
        failures.append(
            f"{name}: expected exit {code}, got {proc.returncode}. Output:\n{out}")
        return
    for s in substrings:
        if s not in out:
            failures.append(f"{name}: expected '{s}' in output. Output:\n{out}")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="bench_compare_fire.") as td:
        work = Path(td)

        # Clean pass: identical snapshots, nothing regresses.
        expect(run(work, snapshot({"BM_A/16": 100.0, "BM_B/32": 50.0}),
                   snapshot({"BM_A/16": 100.0, "BM_B/32": 50.0})),
               "identical", 0, ["2 compared", "0 regressed"])

        # A >15% regression must fail with exit 1 and name the benchmark.
        expect(run(work, snapshot({"BM_A/16": 100.0}),
                   snapshot({"BM_A/16": 200.0})),
               "regression", 1,
               ["REGRESSION", "bench_micro_policies/BM_A/16", "1 regressed"])

        # Grown/shrunk suites are notes, not failures.
        expect(run(work, snapshot({"BM_A/16": 100.0, "BM_OLD": 70.0}),
                   snapshot({"BM_A/16": 101.0, "BM_NEW": 40.0})),
               "renamed", 0,
               ["note: dropped from candidate: bench_micro_policies/BM_OLD",
                "note: new in candidate: bench_micro_policies/BM_NEW",
                "1 compared"])

        # Sub-min-ns benchmarks are timer noise: a 3x "regression" there is
        # skipped, not failed.
        expect(run(work, snapshot({"BM_TINY": 2.0}), snapshot({"BM_TINY": 6.0})),
               "below-min-ns", 0, ["1 below 5.0ns", "0 regressed"])

        # Context mismatch warns but still compares.
        expect(run(work, snapshot({"BM_A/16": 100.0}, num_cpus=4),
                   snapshot({"BM_A/16": 100.0}, num_cpus=64)),
               "context-mismatch", 0, ["WARNING context mismatch on num_cpus"])

        # Missing baseline: a clean exit-2 diagnostic, not a traceback.
        proc = run(work, None, snapshot({"BM_A/16": 100.0}))
        expect(proc, "missing-baseline", 2, ["cannot read snapshot"])
        if "Traceback" in proc.stdout + proc.stderr:
            failures.append(f"missing-baseline: raw traceback leaked:\n{proc.stderr}")

        # Corrupt JSON and wrong schema: exit 2, cause named.
        expect(run(work, "{not json", snapshot({"BM_A/16": 100.0})),
               "corrupt-json", 2, ["is not valid JSON"])
        expect(run(work, json.dumps({"schema": "something-else", "suites": {}}),
                   snapshot({"BM_A/16": 100.0})),
               "wrong-schema", 2, ["is not a snapshot_micro.py report"])

        # Disjoint name sets: zero benchmarks compared must NOT pass.
        expect(run(work, snapshot({"BM_ONLY_OLD": 100.0}),
                   snapshot({"BM_ONLY_NEW": 100.0})),
               "disjoint", 2, ["vacuous comparison"])

        # A --filter that matches nothing is the same trap.
        expect(run(work, snapshot({"BM_A/16": 100.0}),
                   snapshot({"BM_A/16": 100.0}), "--filter", "TYPO"),
               "filter-matches-nothing", 2, ["vacuous comparison", "TYPO"])

    if failures:
        print("bench_compare_fire: FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench_compare_fire: the ratchet fires on every broken input")
    return 0


if __name__ == "__main__":
    sys.exit(main())
