// Ablation: repartition interval length. The paper fixes 1M cycles on
// 100M-instruction traces; this sweep maps the trade-off between reaction
// speed (short intervals adapt quickly but decide on noisy, heavily-decayed
// SDHs) and stability (long intervals starve adaptation).
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace plrupart;
using namespace plrupart::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  auto opt = RunOptions::from_cli(cli);
  const bool quick = cli.has("--quick");

  const std::vector<std::uint64_t> intervals{25'000,  50'000,    100'000,  200'000,
                                             400'000, 1'000'000, 4'000'000};
  const auto ws = maybe_quick(workloads::workloads_2t(), quick, 6);

  std::printf("=== Ablation: repartition interval (2-core, M-L) ===\n");
  std::printf("(mean throughput relative to the 200k-cycle default)\n\n");

  std::optional<std::ofstream> csv_file;
  std::optional<CsvWriter> csv;
  if (const auto path = cli.value("--csv")) {
    csv_file.emplace(*path);
    csv.emplace(*csv_file, std::vector<std::string>{"interval_cycles", "rel_throughput"});
  }

  // Baseline at the default interval.
  std::vector<double> base(ws.size());
  parallel_for(ws.size(), [&](std::size_t wi) {
    base[wi] = run_workload(ws[wi], "M-L", opt).throughput();
  });
  double base_mean = 0.0;
  for (const double b : base) base_mean += b;

  std::printf("%-16s %16s\n", "interval", "rel.throughput");
  for (const auto iv : intervals) {
    auto o = opt;
    o.interval_cycles = iv;
    std::vector<double> thr(ws.size());
    parallel_for(ws.size(), [&](std::size_t wi) {
      thr[wi] = run_workload(ws[wi], "M-L", o).throughput();
    });
    double mean = 0.0;
    for (const double t : thr) mean += t;
    std::printf("%-16llu %16.4f\n", static_cast<unsigned long long>(iv),
                mean / base_mean);
    if (csv) csv->row_of(iv, mean / base_mean);
  }

  std::printf("\npaper setting: 1M cycles on 100M-instruction traces (their windows\n"
              "span ~hundreds of intervals; scale the interval with trace length).\n");
  return 0;
}
