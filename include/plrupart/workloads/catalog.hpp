// SPEC CPU 2000 benchmark catalog (synthetic substitutes).
//
// 25 profiles covering every benchmark named in the paper's Table II. The
// parameters are not measurements; they encode each benchmark's published
// qualitative cache personality (working-set size, streaming vs. reuse,
// latency sensitivity) so that partitioning decisions face the same kinds of
// miss curves the paper's traces produced. See DESIGN.md "Substitutions".
#pragma once

#include "plrupart/export.hpp"

#include <string>
#include <vector>

#include "plrupart/workloads/generators.hpp"

namespace plrupart::workloads {

/// All catalog entries, alphabetical by name.
[[nodiscard]] PLRUPART_EXPORT const std::vector<BenchmarkProfile>& catalog();

/// Look up one benchmark by Table II name ("perl" aliases "perlbmk").
/// Throws InvariantError for unknown names.
[[nodiscard]] PLRUPART_EXPORT const BenchmarkProfile& benchmark(const std::string& name);

[[nodiscard]] PLRUPART_EXPORT bool has_benchmark(const std::string& name);

}  // namespace plrupart::workloads
