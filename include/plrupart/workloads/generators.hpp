// Synthetic trace generation.
//
// The repo's substitute for SPEC CPU 2000 SimPoint traces (see DESIGN.md):
// each benchmark is modeled as a weighted mixture of access components with
// characteristic working-set sizes and reuse patterns, plus an optional phase
// schedule that rotates the mixture over time (what the dynamic CPA adapts
// to). Generation is deterministic per (profile, seed).
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plrupart/common/rng.hpp"
#include "plrupart/sim/core_model.hpp"
#include "plrupart/sim/mem_op.hpp"

namespace plrupart::workloads {

enum class PatternKind : std::uint8_t {
  kSequentialStream,  ///< linear scan over the region, wrapping (no temporal reuse)
  kStridedLoop,       ///< strided scan with wraparound (vector-code style)
  kRandomRegion,      ///< uniform random lines within the region (hot-set reuse)
  kPointerChase,      ///< dependent random walk (same locality as kRandomRegion;
                      ///< its latency sensitivity lives in CoreParams.stall_fraction)
};

struct PLRUPART_EXPORT ComponentSpec {
  PatternKind kind = PatternKind::kRandomRegion;
  std::uint64_t region_bytes = 256 * 1024;
  std::uint32_t stride_bytes = 128;  ///< kStridedLoop only
  double weight = 1.0;               ///< relative selection probability
  /// Locality skew for kRandomRegion / kPointerChase: line index is drawn as
  /// floor(lines * u^skew). 1.0 = uniform (a hard working-set cliff in the
  /// miss curve); larger values concentrate reuse at the region's head the
  /// way real program footprints do, smoothing the curve.
  double skew = 1.0;
};

struct PLRUPART_EXPORT BenchmarkProfile {
  std::string name;
  double mem_fraction = 0.3;    ///< memory ops per committed instruction
  double write_fraction = 0.3;  ///< stores among memory ops
  sim::CoreParams core;         ///< timing personality of the benchmark
  std::vector<ComponentSpec> components;
  /// Rotate component weights every `phase_period_ops` memory operations
  /// (0 = stationary behavior).
  std::uint64_t phase_period_ops = 0;
  /// Short-term locality: this fraction of memory operations targets a small
  /// L1-resident scratch region (stack/registers-spill/top-of-heap traffic).
  /// Real codes satisfy 85-99% of accesses in L1; without this the L2 sees
  /// an unrealistically large share of the instruction stream.
  double l1_fraction = 0.0;
  std::uint64_t l1_region_bytes = 16 * 1024;
};

class PLRUPART_EXPORT SyntheticTrace final : public sim::TraceSource {
 public:
  SyntheticTrace(BenchmarkProfile profile, std::uint64_t base_addr, std::uint64_t seed);

  sim::MemOp next() override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return profile_.name; }

  [[nodiscard]] const BenchmarkProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t ops_emitted() const noexcept { return ops_; }
  /// Current phase index (component-weight rotation count).
  [[nodiscard]] std::uint64_t phase() const noexcept {
    return profile_.phase_period_ops ? ops_ / profile_.phase_period_ops : 0;
  }

 private:
  [[nodiscard]] std::size_t pick_component();
  [[nodiscard]] cache::Addr component_address(std::size_t idx);

  BenchmarkProfile profile_;
  std::uint64_t base_addr_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<std::uint64_t> bases_;    // absolute base address per component
  std::vector<std::uint64_t> cursors_;  // scan position per component
  std::uint64_t ops_ = 0;
  double gap_carry_ = 0.0;
  double total_weight_ = 0.0;
};

/// Build the trace for one benchmark instance running on `core_id` (the id
/// keys a disjoint address space so threads never share data in the L2).
[[nodiscard]] PLRUPART_EXPORT std::unique_ptr<SyntheticTrace> make_trace(const BenchmarkProfile& profile,
                                                         std::uint32_t core_id,
                                                         std::uint64_t seed);

}  // namespace plrupart::workloads
