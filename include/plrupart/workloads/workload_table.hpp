// The paper's Table II workload list, encoded verbatim: 24 two-thread, 14
// four-thread and 11 eight-thread random SPEC CPU 2000 combinations.
#pragma once

#include "plrupart/export.hpp"

#include <string>
#include <vector>

namespace plrupart::workloads {

struct PLRUPART_EXPORT Workload {
  std::string id;                       ///< e.g. "2T_07"
  std::vector<std::string> benchmarks;  ///< catalog names, one per core (for
                                        ///< trace-backed workloads: display
                                        ///< names, the trace file basenames)
  /// Trace-backed workloads: one captured-trace path per core, parallel to
  /// `benchmarks`. Empty = synthetic (catalog generators). Built via
  /// workloads::workload_from_traces(). (The default member initializer keeps
  /// the Table II aggregate initializers warning-clean.)
  std::vector<std::string> traces = {};

  [[nodiscard]] bool trace_backed() const noexcept { return !traces.empty(); }

  [[nodiscard]] std::uint32_t threads() const {
    return static_cast<std::uint32_t>(benchmarks.size());
  }
};

[[nodiscard]] PLRUPART_EXPORT const std::vector<Workload>& workloads_2t();
[[nodiscard]] PLRUPART_EXPORT const std::vector<Workload>& workloads_4t();
[[nodiscard]] PLRUPART_EXPORT const std::vector<Workload>& workloads_8t();

/// All 49 workloads in Table II order.
[[nodiscard]] PLRUPART_EXPORT const std::vector<Workload>& all_workloads();

/// Workloads with the given thread count (1 returns one single-thread
/// workload per catalog benchmark, used by the paper's 1-core Fig. 6 column).
[[nodiscard]] PLRUPART_EXPORT std::vector<Workload> workloads_for_threads(std::uint32_t threads);

}  // namespace plrupart::workloads
