// Trace-backed workload construction: captured trace files as first-class
// workloads, composing with the sweep engine exactly like catalog entries.
#pragma once

#include "plrupart/export.hpp"

#include <string>
#include <vector>

#include "plrupart/sim/core_model.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart::workloads {

/// Timing personality applied to every trace-backed core. Captured address
/// traces carry no catalog profile, so a neutral out-of-order core (the
/// CoreParams defaults) is assumed; the cache behavior comes entirely from
/// the recorded stream.
[[nodiscard]] PLRUPART_EXPORT sim::CoreParams trace_core_params() noexcept;

/// Build a Workload that replays one captured trace per core. `benchmarks`
/// holds the trace basenames (the CSV display names) and the id is
/// "trace:<base>+<base>+...". A basename that appears under two different
/// paths in one list gets an "@<core>" suffix, so per-core names stay
/// unambiguous; repeating the SAME path (co-running copies of one capture)
/// keeps the plain name. Paths are kept verbatim; existence/format are
/// validated by RunMatrix::validate().
[[nodiscard]] PLRUPART_EXPORT Workload workload_from_traces(const std::vector<std::string>& paths);

}  // namespace plrupart::workloads
