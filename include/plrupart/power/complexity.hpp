// Hardware complexity model: the formulas of the paper's Table I.
//
// Storage (Table I(a)): replacement-supporting bits per set for LRU, NRU and
// BT, without partitioning and with the partitioning extensions (global
// replacement masks / owner counters / BT up-down vectors).
//
// Event costs (Table I(b)): bits read or updated per cache event — tag
// comparison, position update, partitioned victim search, profiling-logic
// stack-distance estimation, data readout.
//
// Known paper inconsistency: Table I(b) prints "A−1 × log2(A) (52 bits)" for
// LRU find-LRU-in-owned-lines; (16−1)·4 = 60. We implement the formula and
// surface both numbers (see EXPERIMENTS.md).
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>

#include "plrupart/cache/geometry.hpp"
#include "plrupart/cache/replacement.hpp"

namespace plrupart::power {

/// Parameters the Table I bracketed numbers assume: 16-way 2MB L2, 128B
/// lines, 2 cores, 64-bit architecture with 47 tag bits.
struct PLRUPART_EXPORT ComplexityParams {
  std::uint32_t associativity = 16;
  std::uint64_t sets = 1024;
  std::uint32_t cores = 2;
  std::uint32_t tag_bits = 47;
  std::uint32_t line_bytes = 128;

  [[nodiscard]] static ComplexityParams from_geometry(const cache::Geometry& g,
                                                      std::uint32_t cores,
                                                      std::uint32_t tag_bits = 47);
};

// --- Table I(a): storage ---------------------------------------------------

/// Replacement bits per set, no partitioning.
[[nodiscard]] PLRUPART_EXPORT std::uint64_t replacement_bits_per_set(cache::ReplacementKind kind,
                                                     std::uint32_t associativity);

/// Cache-global replacement state outside the sets (NRU replacement pointer).
[[nodiscard]] PLRUPART_EXPORT std::uint64_t replacement_global_bits(cache::ReplacementKind kind,
                                                    std::uint32_t associativity);

/// Cache-global partitioning state with the mask/vector schemes: per-core
/// owner masks (LRU/NRU: A bits per core) or BT up/down vectors (2·log2(A)
/// bits per core).
[[nodiscard]] PLRUPART_EXPORT std::uint64_t partitioning_global_bits(cache::ReplacementKind kind,
                                                     std::uint32_t associativity,
                                                     std::uint32_t cores);

/// Per-set partitioning state of the owner-counter scheme (paper §II-B.1):
/// A·log2(N) owner bits + N·log2(A) counter bits.
[[nodiscard]] PLRUPART_EXPORT std::uint64_t owner_counter_bits_per_set(std::uint32_t associativity,
                                                       std::uint32_t cores);

struct PLRUPART_EXPORT StorageBreakdown {
  std::uint64_t per_set_bits = 0;      ///< replacement bits in every set
  std::uint64_t global_bits = 0;       ///< pointer / masks / vectors
  std::uint64_t total_bits = 0;        ///< per_set * sets + global
  [[nodiscard]] double total_kib() const {
    return static_cast<double>(total_bits) / 8.0 / 1024.0;
  }
};

/// Full Table I(a) row: storage for a replacement scheme, with or without
/// mask-based partitioning.
[[nodiscard]] PLRUPART_EXPORT StorageBreakdown replacement_storage(cache::ReplacementKind kind,
                                                   const ComplexityParams& p,
                                                   bool with_partitioning);

// --- Table I(b): bits touched per event ------------------------------------

struct PLRUPART_EXPORT EventCosts {
  std::uint64_t tag_comparison = 0;          ///< A x TAG bits
  std::uint64_t update_unpartitioned = 0;    ///< worst-case position update
  std::uint64_t find_owned_lines = 0;        ///< N x A (0 where not needed)
  std::uint64_t find_victim_in_owned = 0;    ///< worst-case partitioned search
  std::uint64_t profiling_read = 0;          ///< stack-distance estimation
  std::uint64_t data_read = 0;               ///< line size in bits
};

[[nodiscard]] PLRUPART_EXPORT EventCosts event_costs(cache::ReplacementKind kind, const ComplexityParams& p);

/// The paper's ATD area figure: per-core sampled ATD storage in bits
/// (tag + valid + per-entry replacement share). 3.25KB for the baseline
/// LRU setup with 1/32 sampling.
[[nodiscard]] PLRUPART_EXPORT std::uint64_t atd_storage_bits(cache::ReplacementKind kind,
                                             const ComplexityParams& p,
                                             std::uint32_t sampling_ratio);

}  // namespace plrupart::power
