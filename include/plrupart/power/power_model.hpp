// Analytical power and energy model (paper §V-C / Fig. 9).
//
// Components: core leakage + dynamic (energy per instruction), L2 leakage
// (per MB) + dynamic (energy per access), replacement + partitioning logic
// (leakage per storage bit, dynamic per updated bit), profiling logic (ATD
// leakage + per-probe dynamic, SDH updates), and main-memory dynamic power —
// an off-chip access costs `mem_energy_factor` (150, after Borkar [3]) times
// an L2 access.
//
// The absolute constants are documented engineering estimates (the paper
// reports only relative numbers); every Fig. 9 conclusion rests on ratios:
// miss-driven memory power dominates differences, and profiling power stays
// below a fraction of a percent.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <string>

#include "plrupart/cache/geometry.hpp"
#include "plrupart/power/complexity.hpp"

namespace plrupart::power {

struct PLRUPART_EXPORT PowerParams {
  double clock_ghz = 2.0;
  double core_epi_nj = 0.4;          ///< core dynamic energy per instruction
  double core_leakage_w = 1.5;       ///< static power per core
  double l2_access_energy_nj = 1.0;  ///< dynamic energy per L2 access
  double l2_leakage_w_per_mib = 0.5;
  double mem_energy_factor = 150.0;  ///< memory access vs. L2 access energy
  double repl_leakage_w_per_bit = 5e-8;
  double repl_update_energy_pj_per_bit = 0.5;
  double atd_probe_energy_nj = 0.05;  ///< per sampled ATD access (tag compare)
  double sdh_update_energy_pj = 2.0;  ///< per SDH register increment
};

/// Activity counters for one simulation run.
struct PLRUPART_EXPORT ActivityCounters {
  std::uint64_t instructions = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  double wall_cycles = 0.0;
  std::uint32_t cores = 1;
  std::uint32_t atds = 0;              ///< number of ATDs (0 when unpartitioned)
  std::uint32_t sampling_ratio = 32;   ///< ATD set-sampling divisor
};

struct PLRUPART_EXPORT PowerBreakdown {
  double cores_w = 0.0;
  double l2_w = 0.0;
  double replacement_w = 0.0;
  double profiling_w = 0.0;
  double memory_w = 0.0;

  [[nodiscard]] double total_w() const {
    return cores_w + l2_w + replacement_w + profiling_w + memory_w;
  }
  /// The paper's relative-energy metric: CPI x Power.
  [[nodiscard]] double energy_metric(double cpi) const { return cpi * total_w(); }
};

class PLRUPART_EXPORT PowerModel {
 public:
  PowerModel(PowerParams params, cache::Geometry l2_geometry,
             cache::ReplacementKind replacement, bool partitioned, std::uint32_t cores);

  [[nodiscard]] PowerBreakdown evaluate(const ActivityCounters& activity) const;

  /// Aggregate CPI of a run: core-cycles spent per committed instruction.
  [[nodiscard]] static double aggregate_cpi(const ActivityCounters& activity);

  [[nodiscard]] const PowerParams& params() const noexcept { return params_; }

 private:
  PowerParams params_;
  cache::Geometry geo_;
  cache::ReplacementKind replacement_;
  bool partitioned_;
  std::uint32_t cores_;
  StorageBreakdown repl_storage_;
  EventCosts event_costs_;
};

}  // namespace plrupart::power
