// Fixed-size counting histogram used by the profiling logic and by tests.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// Histogram over bins [0, size). Counters are saturating-free uint64; the SDH
/// decay mechanism (halving) keeps them far from overflow in practice.
class PLRUPART_EXPORT Histogram {
 public:
  explicit Histogram(std::size_t size) : counts_(size, 0) { PLRUPART_ASSERT(size > 0); }

  void record(std::size_t bin, std::uint64_t weight = 1) {
    PLRUPART_ASSERT(bin < counts_.size());
    counts_[bin] += weight;
  }

  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    PLRUPART_ASSERT(bin < counts_.size());
    return counts_[bin];
  }

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
  }

  /// Sum of counts over bins [from, size).
  [[nodiscard]] std::uint64_t tail_sum(std::size_t from) const {
    PLRUPART_ASSERT(from <= counts_.size());
    return std::accumulate(counts_.begin() + static_cast<std::ptrdiff_t>(from),
                           counts_.end(), std::uint64_t{0});
  }

  /// Element-wise accumulate `other` into this histogram. Counter addition is
  /// exact and commutative, so shard-local histograms merged in any order give
  /// the same counts as a single serial histogram over the combined stream.
  void add(const Histogram& other) {
    PLRUPART_ASSERT_MSG(other.counts_.size() == counts_.size(),
                        "histogram size mismatch in add");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }

  /// Halve every counter (right shift): the SDH anti-saturation decay.
  void decay_halve() noexcept {
    for (auto& c : counts_) c >>= 1;
  }

  void clear() noexcept {
    for (auto& c : counts_) c = 0;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace plrupart
