// Deterministic pseudo-random number generation.
//
// Simulations must be reproducible run-to-run and machine-to-machine, so we ship
// our own small generators (SplitMix64 for seeding, xoshiro256** for streams)
// instead of relying on the unspecified std::default_random_engine.
#pragma once

#include "plrupart/export.hpp"

#include <array>
#include <cstdint>

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// SplitMix64: tiny, fast, passes BigCrush when used as a seeder/stream splitter.
class PLRUPART_EXPORT SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the main workhorse stream generator.
class PLRUPART_EXPORT Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    PLRUPART_ASSERT(bound > 0);
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = next_u64();
    u128 m = static_cast<u128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<u128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    PLRUPART_ASSERT(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derive a child seed from (root seed, stream index) so parallel entities get
/// decorrelated, reproducible streams.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) noexcept {
  SplitMix64 sm(root ^ (0xa5a5a5a5a5a5a5a5ULL + stream * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return sm.next();
}

}  // namespace plrupart
