// Deterministic fault injection: make every recovery path a first-class,
// replayable scenario.
//
// A FaultSpec names per-site failure probabilities (parsed from the CLI
// --fault-inject grammar or the PLRUPART_FAULT_INJECT environment variable);
// a FaultPlan binds a spec to a seed and answers, statelessly, whether the
// counter-th opportunity at a site fails. Decisions are pure functions of
// (seed, site, lane, counter), so a given (root seed, job, attempt) replays
// the exact same fault sequence on any machine and at any thread count —
// failures found in the field reproduce under a debugger, and CI can assert
// recovery behavior byte-for-byte.
//
// Sites:
//   read    ByteReader::fill() — a trace-stream read fails mid-run
//   write   journal/CSV record commit (AtomicFile) — a result write fails
//   worker  a set-shard worker dies at an owned L2 access (sharded runs)
//
// Injected faults throw InjectedFault, a TransientError: the SweepExecutor
// retry budget (--job-retries) treats them exactly like real I/O failures.
// Retries are salted with the attempt number (see SweepExecutor), so a retry
// replays a DIFFERENT fault sequence and recovery can be proven to converge.
#pragma once

#include "plrupart/export.hpp"

#include <array>
#include <cstdint>
#include <string>

#include "plrupart/common/error.hpp"
#include "plrupart/common/rng.hpp"

namespace plrupart {

/// Thrown at an injected fault site. Transient by construction: the whole
/// point of injecting is to exercise the retry/resume machinery.
class PLRUPART_EXPORT InjectedFault : public TransientError {
 public:
  using TransientError::TransientError;
};

enum class FaultSite : std::uint8_t { kRead = 0, kWrite = 1, kWorker = 2 };

[[nodiscard]] constexpr const char* fault_site_name(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kRead: return "read";
    case FaultSite::kWrite: return "write";
    case FaultSite::kWorker: return "worker";
  }
  return "?";
}

/// Per-site failure probabilities. Value type; all-zero means "no injection".
struct PLRUPART_EXPORT FaultSpec {
  std::array<double, 3> probability{};  ///< indexed by FaultSite

  [[nodiscard]] double of(FaultSite s) const noexcept {
    return probability[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool any() const noexcept {
    for (const double p : probability)
      if (p > 0.0) return true;
    return false;
  }

  /// Parse the --fault-inject grammar: a comma-separated list of
  /// `<site>:<probability>` items, site in {read, write, worker}, probability
  /// a decimal in [0, 1]. Example: "read:0.002,worker:1e-5". Repeated sites,
  /// unknown sites, and out-of-range probabilities throw InvariantError.
  static FaultSpec parse(const std::string& text);
};

/// A spec bound to a seed: the deterministic oracle every instrumented site
/// consults. Immutable and stateless — safe to share across threads; callers
/// supply their own opportunity counters (and a lane id when several actors
/// of the same site run concurrently, e.g. shard workers).
class PLRUPART_EXPORT FaultPlan {
 public:
  FaultPlan(FaultSpec spec, std::uint64_t seed) noexcept : spec_(spec), seed_(seed) {}

  [[nodiscard]] bool armed(FaultSite s) const noexcept { return spec_.of(s) > 0.0; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Does the `counter`-th opportunity at `site` (on `lane`) fail? Pure
  /// function of (seed, site, lane, counter): replayable anywhere.
  [[nodiscard]] bool should_fire(FaultSite site, std::uint64_t counter,
                                 std::uint64_t lane = 0) const noexcept {
    const double p = spec_.of(site);
    if (p <= 0.0) return false;
    const std::uint64_t h = derive_seed(
        derive_seed(seed_, (static_cast<std::uint64_t>(site) << 32) ^ lane), counter);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
  }

  /// should_fire, but throws InjectedFault naming the site and `context` when
  /// it fires. The one-liner instrumented sites call.
  void maybe_throw(FaultSite site, std::uint64_t counter, std::uint64_t lane,
                   const std::string& context) const;

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
};

}  // namespace plrupart
