// Library invariant checking.
//
// PLRUPART_ASSERT is enabled in all build types: the checks guard state-machine
// invariants (victim inside allowed mask, partition sums, histogram bounds) whose
// cost is negligible next to the simulation work they protect, and a violated
// invariant in a simulator silently corrupts every downstream number.
#pragma once

#include "plrupart/export.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

namespace plrupart {

/// Thrown when a library invariant is violated. Catching it is only useful in
/// tests; production code should treat it as a bug.
class PLRUPART_EXPORT InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace plrupart

#define PLRUPART_ASSERT(expr)                                                   \
  do {                                                                          \
    if (!(expr)) ::plrupart::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define PLRUPART_ASSERT_MSG(expr, msg)                                            \
  do {                                                                            \
    if (!(expr)) ::plrupart::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
