// Bit-manipulation helpers shared by the replacement-policy and profiling logic.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>
#include <type_traits>

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// FNV-1a offset basis — the seed for fnv1a64 chains.
inline constexpr std::uint64_t kFnv1a64Init = 0xcbf29ce484222325ULL;

/// Fold `bytes` into a running FNV-1a 64-bit hash. Not cryptographic; used
/// for stable content fingerprints (journal records, run-matrix identity)
/// that must agree across platforms and runs.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                              std::uint64_t h = kFnv1a64Init) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// True iff x is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x > 0.
[[nodiscard]] constexpr std::uint32_t ilog2(std::uint64_t x) {
  PLRUPART_ASSERT(x > 0);
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// Exact log2; requires x to be a power of two.
[[nodiscard]] constexpr std::uint32_t ilog2_exact(std::uint64_t x) {
  PLRUPART_ASSERT(is_pow2(x));
  return ilog2(x);
}

/// Smallest power of two >= x (x > 0).
[[nodiscard]] constexpr std::uint64_t ceil_pow2(std::uint64_t x) {
  PLRUPART_ASSERT(x > 0);
  return std::bit_ceil(x);
}

/// Largest power of two <= x (x > 0).
[[nodiscard]] constexpr std::uint64_t floor_pow2(std::uint64_t x) {
  PLRUPART_ASSERT(x > 0);
  return std::bit_floor(x);
}

/// A set of cache ways encoded as a bit mask. Way i is in the set iff bit i is 1.
/// 64 bits bounds the supported associativity at 64, far above the paper's 16.
using WayMask = std::uint64_t;

inline constexpr std::uint32_t kMaxAssociativity = 64;

/// Mask with the low `ways` bits set (all ways of an A-way set).
[[nodiscard]] constexpr WayMask full_way_mask(std::uint32_t ways) {
  PLRUPART_ASSERT(ways >= 1 && ways <= kMaxAssociativity);
  return ways == kMaxAssociativity ? ~WayMask{0} : ((WayMask{1} << ways) - 1);
}

/// Mask covering the contiguous way range [first, first + count).
[[nodiscard]] constexpr WayMask way_range_mask(std::uint32_t first, std::uint32_t count) {
  PLRUPART_ASSERT(first + count <= kMaxAssociativity);
  return count == 0 ? WayMask{0} : full_way_mask(count) << first;
}

[[nodiscard]] constexpr bool mask_test(WayMask m, std::uint32_t way) noexcept {
  return (m >> way) & 1U;
}

[[nodiscard]] constexpr std::uint32_t mask_count(WayMask m) noexcept {
  return static_cast<std::uint32_t>(std::popcount(m));
}

/// Lowest set way; requires a non-empty mask. The precondition is a hard
/// invariant, not a debug check: PLRUPART_ASSERT is enabled in every build
/// type (see common/assert.hpp), so a violation throws InvariantError instead
/// of producing an out-of-range way (countr_zero(0) == 64) that would index
/// past every per-set array downstream.
[[nodiscard]] constexpr std::uint32_t mask_first(WayMask m) {
  PLRUPART_ASSERT(m != 0);
  return static_cast<std::uint32_t>(std::countr_zero(m));
}

/// Bitmask of the ways in values[0..ways) equal to `needle`. The shared
/// per-way equality scan of the lookup and victim paths (ATD tag compare,
/// SRRIP distant-line scan): chunks of four fixed-offset compares keep the
/// loop branch-light and give the compiler independent compare chains (and
/// vectorizable code under -march flags) instead of a serial variable-shift
/// reduction. The SIMD dispatch tiers (src/cache/simd) reimplement exactly
/// this function with vector compares; test_simd_dispatch pins them to it.
///
/// Shift/width contract: `ways` must not exceed kMaxAssociativity (asserted —
/// in every build type). Within that bound every shift is by at most
/// ways - 1 <= 63 < CHAR_BIT * sizeof(WayMask): the chunked loop runs while
/// w + 4 <= ways, so its largest `<< w` is ways - 4, the lane bits add at
/// most 3, and the tail loop shifts by at most ways - 1. Each lane flag is
/// widened to WayMask *before* shifting, so no shift happens in a promoted
/// (signed) int. When T is narrower than int (uint8_t RRPVs), the `==`
/// compares integer-promoted values — exact for unsigned sources, hence the
/// static_assert.
template <class T>
[[nodiscard]] inline WayMask tag_match_mask(const T* values, std::uint32_t ways,
                                            T needle) {
  static_assert(std::is_unsigned_v<T>);
  PLRUPART_ASSERT(ways <= kMaxAssociativity);
  WayMask match = 0;
  std::uint32_t w = 0;
  for (; w + 4 <= ways; w += 4) {
    const WayMask m0 = static_cast<WayMask>(values[w + 0] == needle ? 1U : 0U);
    const WayMask m1 = static_cast<WayMask>(values[w + 1] == needle ? 1U : 0U) << 1;
    const WayMask m2 = static_cast<WayMask>(values[w + 2] == needle ? 1U : 0U) << 2;
    const WayMask m3 = static_cast<WayMask>(values[w + 3] == needle ? 1U : 0U) << 3;
    match |= (m0 | m1 | m2 | m3) << w;
  }
  for (; w < ways; ++w)
    match |= static_cast<WayMask>(values[w] == needle ? 1U : 0U) << w;
  return match;
}

/// First set way at or after `start`, searching circularly within an A-way set.
/// Models the NRU replacement pointer scan. Requires m restricted to [0, ways)
/// to be non-empty and start < ways; both preconditions are asserted in every
/// build type (violations throw InvariantError — the scan cannot silently
/// return a way outside the set, even after invalidate() storms empty a set;
/// callers guarantee non-emptiness by construction, see Nru::choose_victim).
[[nodiscard]] constexpr std::uint32_t mask_next_circular(WayMask m, std::uint32_t start,
                                                         std::uint32_t ways) {
  const WayMask in_range = m & full_way_mask(ways);
  PLRUPART_ASSERT(in_range != 0);
  PLRUPART_ASSERT(start < ways);
  const WayMask at_or_after = in_range & ~((WayMask{1} << start) - 1);
  if (at_or_after != 0) return mask_first(at_or_after);
  return mask_first(in_range);
}

}  // namespace plrupart
