// Error taxonomy for the resilience layer.
//
// InvariantError (common/assert.hpp) marks bugs and permanently-bad input.
// This header carves out the failures a supervisor is ALLOWED to handle
// differently: TransientError for conditions that may succeed on a retry
// (mid-stream I/O failures, injected faults), and TimeoutError for a run
// that blew its watchdog deadline. SweepExecutor's --job-retries budget
// re-runs jobs that fail with a TransientError and nothing else; a
// TimeoutError is deliberately NOT transient — a wedged job is wedged for a
// reason, and silently re-running it would hide that from the fleet.
#pragma once

#include "plrupart/export.hpp"

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// A failure that may succeed if the operation is retried: interrupted or
/// failed I/O mid-stream, injected faults. Derives from InvariantError so
/// existing catch sites keep working; supervisors catch this type to decide
/// retry eligibility.
class PLRUPART_EXPORT TransientError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

/// A run exceeded its watchdog deadline (SimConfig::timeout_s, CLI
/// --job-timeout). Not transient: a wedged job will wedge again, so the
/// supervisor surfaces it instead of burning the retry budget on it.
class PLRUPART_EXPORT TimeoutError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

}  // namespace plrupart
