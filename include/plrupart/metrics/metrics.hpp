// The paper's three performance metrics (§IV):
//   IPC throughput    sum_i IPC_i
//   weighted speedup  sum_i IPC_i^CMP / IPC_i^isolation      (Snavely/Tullsen)
//   harmonic mean     N / sum_i (IPC_i^isolation / IPC_i^CMP) (Luo et al.)
#pragma once

#include "plrupart/export.hpp"

#include <vector>

#include "plrupart/common/assert.hpp"

namespace plrupart::metrics {

struct PLRUPART_EXPORT PerfMetrics {
  double throughput = 0.0;
  double weighted_speedup = 0.0;
  double harmonic_mean = 0.0;
};

[[nodiscard]] PLRUPART_EXPORT double throughput(const std::vector<double>& ipcs);

[[nodiscard]] PLRUPART_EXPORT double weighted_speedup(const std::vector<double>& ipcs,
                                      const std::vector<double>& isolation_ipcs);

[[nodiscard]] PLRUPART_EXPORT double harmonic_mean_speedup(const std::vector<double>& ipcs,
                                           const std::vector<double>& isolation_ipcs);

[[nodiscard]] PLRUPART_EXPORT PerfMetrics compute(const std::vector<double>& ipcs,
                                  const std::vector<double>& isolation_ipcs);

}  // namespace plrupart::metrics
