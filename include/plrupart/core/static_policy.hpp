// Static even split: the no-profiling baseline partition.
#pragma once

#include "plrupart/export.hpp"

#include "plrupart/core/partition.hpp"

namespace plrupart::core {

class PLRUPART_EXPORT StaticEvenPolicy final : public PartitionPolicy {
 public:
  [[nodiscard]] Partition decide(const std::vector<MissCurve>& curves,
                                 std::uint32_t total_ways) override;
  [[nodiscard]] std::string name() const override { return "StaticEven"; }

  /// Even split of `total_ways` among n cores, remainder to the lowest ids.
  [[nodiscard]] static Partition even_split(std::uint32_t n, std::uint32_t total_ways);
};

}  // namespace plrupart::core
