// Way partitions and the partition-selection policy interface.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/bits.hpp"
#include "plrupart/core/miss_curve.hpp"

namespace plrupart::core {

/// ways[i] = number of L2 ways assigned to core i. A valid partition gives
/// every core at least one way and distributes exactly the associativity.
using Partition = std::vector<std::uint32_t>;

inline void validate_partition(const Partition& p, std::uint32_t total_ways) {
  PLRUPART_ASSERT_MSG(!p.empty(), "empty partition");
  std::uint32_t sum = 0;
  for (const std::uint32_t w : p) {
    PLRUPART_ASSERT_MSG(w >= 1, "every core needs at least one way");
    sum += w;
  }
  PLRUPART_ASSERT_MSG(sum == total_ways, "partition must distribute all ways");
}

/// Contiguous mask placement in core order: core 0 gets ways [0, p[0]),
/// core 1 the next p[1] ways, and so on. Contiguity keeps the masks
/// BT-traversal friendly (see cache::TreePlru).
[[nodiscard]] inline std::vector<WayMask> contiguous_masks(const Partition& p) {
  std::vector<WayMask> masks;
  masks.reserve(p.size());
  std::uint32_t first = 0;
  for (const std::uint32_t w : p) {
    masks.push_back(way_range_mask(first, w));
    first += w;
  }
  return masks;
}

/// Predicted total misses of a partition under the given curves.
[[nodiscard]] inline double partition_cost(const std::vector<MissCurve>& curves,
                                           const Partition& p) {
  PLRUPART_ASSERT(curves.size() == p.size());
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) total += curves[i].misses(p[i]);
  return total;
}

/// Interval-boundary decision logic: consumes one miss curve per core and
/// produces the next partition.
class PLRUPART_EXPORT PartitionPolicy {
 public:
  virtual ~PartitionPolicy() = default;
  [[nodiscard]] virtual Partition decide(const std::vector<MissCurve>& curves,
                                         std::uint32_t total_ways) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace plrupart::core
