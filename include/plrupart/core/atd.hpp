// Auxiliary Tag Directory (paper §II-A, §III).
//
// A per-thread copy of the tag directory with the same associativity as the
// L2, so the profiling logic observes how the thread would behave running
// alone. Set sampling (paper: 1 in 32) keeps the area at ~3.25KB per core for
// the baseline L2: an L2 access probes the ATD only when its set is sampled.
//
// The ATD runs its own instance of the cache's replacement policy; the
// pre-update StackEstimate it reports is exactly what the three profilers
// (LRU/NRU/BT) consume.
//
// Like SetAssocCache, the probe path uses a structure-of-arrays layout
// (contiguous per-set tags + a valid bitmask) and static policy dispatch, so
// a sampled access costs a vectorizable tag scan plus an inlined policy
// update rather than an entry-struct walk and 2-3 virtual calls.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "plrupart/cache/dispatch.hpp"
#include "plrupart/cache/geometry.hpp"
#include "plrupart/cache/replacement.hpp"

namespace plrupart::core {

/// What the ATD observed for one sampled access, captured *before* the
/// replacement state was updated by that access.
struct PLRUPART_EXPORT AtdObservation {
  bool hit = false;
  std::uint32_t way = 0;
  /// Valid only on hits: recency estimate for the line that was accessed.
  cache::StackEstimate estimate{};
};

class PLRUPART_EXPORT Atd {
 public:
  /// `l2_geometry` is the shape of the cache being profiled; the ATD keeps
  /// l2_sets / sampling_ratio sets (sampling_ratio == 1 disables sampling).
  Atd(const cache::Geometry& l2_geometry, cache::ReplacementKind replacement,
      std::uint32_t sampling_ratio, std::uint64_t seed = 0x5eed);

  /// Probe the ATD with an L2 line address. Returns nullopt when the set is
  /// not sampled; otherwise the observation (the ATD state is updated, and a
  /// missing line is installed over the policy's victim).
  std::optional<AtdObservation> access(cache::Addr line_addr);

  [[nodiscard]] bool is_sampled(cache::Addr line_addr) const {
    // Sample every `ratio`-th L2 set. Keeping the decision on the L2 set index
    // (not a separate hash) mirrors the hardware wiring in [22]. The ratio
    // divides the L2 set count, so masking the line address directly is the
    // set-index test without the full decomposition.
    return (line_addr & (sampling_ratio_ - 1)) == 0;
  }

  [[nodiscard]] std::uint32_t sampling_ratio() const noexcept { return sampling_ratio_; }
  [[nodiscard]] std::uint32_t associativity() const noexcept {
    return atd_geo_.associativity;
  }
  [[nodiscard]] std::uint64_t sets() const noexcept { return atd_geo_.sets(); }
  [[nodiscard]] const cache::ReplacementPolicy& policy() const noexcept { return *policy_; }

  /// Storage cost of this ATD in bits: per entry one tag + valid bit + the
  /// replacement metadata share (see power/complexity.hpp for the formulas).
  [[nodiscard]] std::uint64_t storage_bits(std::uint32_t tag_bits) const;

  void reset();

 private:
  static constexpr std::uint32_t kNoWay = ~std::uint32_t{0};

  /// Shared tag scan of the probe path (same shape as SetAssocCache::find_way,
  /// on full tag words): the full-tag equality scan runs through the kernel of
  /// the dispatch tier sampled at construction — vpcmpeqq compares 4-8 tags
  /// per instruction on the AVX tiers, with the same match mask (and thus the
  /// same result) on every tier. Out-of-line in atd.cpp because the kernels
  /// are internal to src/cache/simd.
  [[nodiscard]] std::uint32_t find_way(std::uint64_t set, std::uint64_t tag) const;

  template <class Policy>
  AtdObservation access_impl(Policy& pol, std::uint64_t set, std::uint64_t tag);

  cache::Geometry l2_geo_;
  cache::Geometry atd_geo_;
  std::uint32_t sampling_ratio_;
  cache::DispatchTier dispatch_;
  cache::ReplacementKind kind_;
  std::unique_ptr<cache::ReplacementPolicy> policy_;

  // Precomputed address decomposition (all powers of two).
  std::uint32_t ways_ = 0;
  std::uint32_t sample_shift_ = 0;  ///< log2(sampling_ratio)
  std::uint32_t l2_tag_shift_ = 0;  ///< log2(L2 sets)
  std::uint64_t l2_set_mask_ = 0;
  WayMask all_ways_ = 0;

  // SoA entry state. tags_ carries 64 bytes of padding for the AVX kernels'
  // whole-block loads (the padded-buffer contract of src/cache/simd).
  std::vector<std::uint64_t> tags_;  ///< [set * A + way]
  std::vector<WayMask> valid_;       ///< per-set valid bitmask
};

}  // namespace plrupart::core
