// Fairness-oriented partition selection (after Kim/Chandra/Solihin [11] and
// FlexDCP [14], which the paper cites as alternative target metrics).
//
// The policy equalizes the predicted slowdown proxy of every thread: the ratio
// of misses with its assigned ways to misses with the full cache. It greedily
// hands the next way to the currently worst-off thread.
#pragma once

#include "plrupart/export.hpp"

#include "plrupart/core/partition.hpp"

namespace plrupart::core {

class PLRUPART_EXPORT FairPolicy final : public PartitionPolicy {
 public:
  [[nodiscard]] Partition decide(const std::vector<MissCurve>& curves,
                                 std::uint32_t total_ways) override;
  [[nodiscard]] std::string name() const override { return "Fair"; }

  /// Slowdown proxy for one thread at w ways: misses(w) relative to the best
  /// it could do with the whole cache (+1 smoothing keeps zero-miss threads
  /// comparable).
  [[nodiscard]] static double slowdown_proxy(const MissCurve& c, std::uint32_t ways) {
    return (c.misses(ways) + 1.0) / (c.misses(c.max_ways()) + 1.0);
  }
};

}  // namespace plrupart::core
