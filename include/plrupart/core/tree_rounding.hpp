// Tree-feasible partitions for strict BT force-vector enforcement.
//
// A per-core up/down vector pair (paper Fig. 5) confines a core to a single
// aligned power-of-two block of ways. A partition is *strictly* enforceable
// with vectors only when every allocation is a power of two and the multiset
// of allocations tiles the associativity (Kraft equality: sum 2^{q_i} = A).
//
// This module provides
//   * round_to_pow2_partition — snap an arbitrary MinMisses partition to the
//     nearest feasible power-of-two partition (floor, then double the largest
//     deficits until the budget is exactly consumed);
//   * place_pow2_blocks       — buddy-style aligned placement of the blocks;
//   * min_misses_tree         — MinMisses restricted to power-of-two
//     allocations (exact DP), the "native tree" alternative to rounding.
//
// The default M-BT configuration instead uses contiguous masks with
// mask-guided traversal (see cache::TreePlru), which needs none of this;
// strict mode exists for the faithful-hardware ablation.
#pragma once

#include "plrupart/export.hpp"

#include "plrupart/cache/tree_plru.hpp"
#include "plrupart/core/partition.hpp"

namespace plrupart::core {

[[nodiscard]] PLRUPART_EXPORT Partition round_to_pow2_partition(const Partition& ideal,
                                                std::uint32_t total_ways);

/// Place power-of-two allocations as disjoint aligned blocks covering
/// [0, total_ways). Returns per-core way masks in core order.
[[nodiscard]] PLRUPART_EXPORT std::vector<WayMask> place_pow2_blocks(const Partition& pow2_sizes,
                                                     std::uint32_t total_ways);

[[nodiscard]] PLRUPART_EXPORT Partition min_misses_tree(const std::vector<MissCurve>& curves,
                                        std::uint32_t total_ways);

/// MinMisses restricted to vector-expressible allocations, as a policy: the
/// "native tree" alternative to rounding an unrestricted decision.
class PLRUPART_EXPORT TreeMinMissesPolicy final : public PartitionPolicy {
 public:
  [[nodiscard]] Partition decide(const std::vector<MissCurve>& curves,
                                 std::uint32_t total_ways) override {
    return min_misses_tree(curves, total_ways);
  }
  [[nodiscard]] std::string name() const override { return "MinMisses(tree)"; }
};

/// Convenience: masks + force vectors for a strict-BT partition.
struct PLRUPART_EXPORT TreeEnforcement {
  std::vector<WayMask> masks;
  std::vector<cache::ForceVectors> vectors;
};

[[nodiscard]] PLRUPART_EXPORT TreeEnforcement make_tree_enforcement(const cache::TreePlru& tree,
                                                    const Partition& pow2_sizes,
                                                    std::uint32_t total_ways);

}  // namespace plrupart::core
