// Miss curve: predicted misses as a function of assigned ways, derived from a
// thread's (e)SDH. The unit the partition-selection policies optimize over.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/core/sdh.hpp"

namespace plrupart::core {

class PLRUPART_EXPORT MissCurve {
 public:
  /// misses_by_ways[w] = predicted misses with w ways, w in [0, A].
  /// Must be non-increasing; misses_by_ways[0] is the access total.
  explicit MissCurve(std::vector<double> misses_by_ways);

  /// Build from an SDH; `scale` un-does ATD set sampling (×32 by default
  /// profile hardware) when absolute counts matter. Relative decisions are
  /// scale-invariant.
  [[nodiscard]] static MissCurve from_sdh(const Sdh& sdh, double scale = 1.0);

  /// Predicted misses with w ways (w in [0, A]).
  [[nodiscard]] double misses(std::uint32_t ways) const {
    PLRUPART_ASSERT(ways < curve_.size());
    return curve_[ways];
  }

  /// Associativity A the curve covers.
  [[nodiscard]] std::uint32_t max_ways() const noexcept {
    return static_cast<std::uint32_t>(curve_.size() - 1);
  }

  /// Misses avoided by going from w to w+1 ways (>= 0 by monotonicity).
  [[nodiscard]] double marginal_gain(std::uint32_t ways) const {
    PLRUPART_ASSERT(ways + 1 < curve_.size());
    return curve_[ways] - curve_[ways + 1];
  }

  /// Total profiled accesses (== misses with zero ways).
  [[nodiscard]] double accesses() const noexcept { return curve_.front(); }

  /// True if marginal gains are non-increasing (greedy == optimal then).
  [[nodiscard]] bool is_convex() const;

  [[nodiscard]] const std::vector<double>& values() const noexcept { return curve_; }

 private:
  std::vector<double> curve_;
};

}  // namespace plrupart::core
