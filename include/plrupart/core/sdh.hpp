// Stack Distance Histogram (paper §II-A).
//
// A+1 hardware registers: r1..rA count accesses hitting at each LRU stack
// position (1 = MRU), r_{A+1} counts ATD misses. With the LRU stack property,
// a thread given w ways misses exactly sum(r_{w+1} .. r_{A+1}) of its past
// accesses — the miss curve the partitioning policy consumes.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>

#include "plrupart/common/histogram.hpp"

namespace plrupart::core {

class PLRUPART_EXPORT Sdh {
 public:
  explicit Sdh(std::uint32_t associativity)
      : assoc_(associativity), hist_(associativity + 1) {
    PLRUPART_ASSERT(associativity >= 1);
  }

  /// Record a hit at stack distance d (1 = MRU .. A = LRU).
  void record_hit(std::uint32_t distance) {
    PLRUPART_ASSERT_MSG(distance >= 1 && distance <= assoc_,
                        "stack distance out of [1, A]");
    hist_.record(distance - 1);
  }

  /// Record an access that misses even with the full associativity
  /// (the paper's "position A+1").
  void record_miss() { hist_.record(assoc_); }

  /// Register value r_i, i in [1, A+1].
  [[nodiscard]] std::uint64_t reg(std::uint32_t i) const {
    PLRUPART_ASSERT(i >= 1 && i <= assoc_ + 1);
    return hist_.count(i - 1);
  }

  /// Hits the thread would see with w ways: sum(r_1 .. r_w). w in [0, A].
  [[nodiscard]] std::uint64_t hits_with_ways(std::uint32_t w) const {
    PLRUPART_ASSERT(w <= assoc_);
    std::uint64_t sum = 0;
    for (std::uint32_t i = 1; i <= w; ++i) sum += reg(i);
    return sum;
  }

  /// Misses the thread would see with w ways: sum(r_{w+1} .. r_{A+1}).
  [[nodiscard]] std::uint64_t misses_with_ways(std::uint32_t w) const {
    PLRUPART_ASSERT(w <= assoc_);
    return hist_.tail_sum(w);
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return hist_.total(); }
  [[nodiscard]] std::uint32_t associativity() const noexcept { return assoc_; }

  /// Accumulate another SDH's registers into this one (exact uint64 sums).
  /// This is the interval-boundary merge of the set-sharded execution mode:
  /// each shard profiles a disjoint slice of the set space, and summing the
  /// per-shard registers reproduces the serial SDH bit-for-bit.
  void add(const Sdh& other) {
    PLRUPART_ASSERT_MSG(other.assoc_ == assoc_, "SDH associativity mismatch in add");
    hist_.add(other.hist_);
  }

  /// Interval-boundary decay: right-shift every register by one (divide by 2),
  /// keeping a fair ratio between past and future intervals (paper §II-A).
  void decay_halve() noexcept { hist_.decay_halve(); }

  void clear() noexcept { hist_.clear(); }

 private:
  std::uint32_t assoc_;
  Histogram hist_;
};

}  // namespace plrupart::core
