// Per-thread profiling logic: ATD + (e)SDH.
//
// One Profiler instance exists per core. On every L2 access by that core the
// simulator calls record_access(); if the set is sampled the ATD reports a hit
// estimate or a miss, and the policy-specific subclass updates the SDH:
//
//   LruProfiler — exact stack distances (the classical scheme of [22]).
//   NruProfiler — the paper's §III-A eSDH with scaling factor S.
//   BtProfiler  — the paper's §III-B eSDH from ID/XOR/SUB on the tree bits.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <string>

#include "plrupart/core/atd.hpp"
#include "plrupart/core/miss_curve.hpp"
#include "plrupart/core/sdh.hpp"

namespace plrupart::core {

class PLRUPART_EXPORT Profiler {
 public:
  Profiler(const cache::Geometry& l2_geometry, cache::ReplacementKind atd_replacement,
           std::uint32_t sampling_ratio, std::uint64_t seed)
      : atd_(l2_geometry, atd_replacement, sampling_ratio, seed),
        sdh_(l2_geometry.associativity) {}
  virtual ~Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Feed one L2 access (line-granular address) from the owner thread.
  void record_access(cache::Addr line_addr) {
    const auto obs = atd_.access(line_addr);
    if (!obs) return;  // set not sampled
    if (obs->hit)
      on_atd_hit(obs->estimate);
    else
      sdh_.record_miss();
  }

  /// Miss curve in profiled-access units; multiply by sampling_scale() for
  /// absolute L2-access units.
  [[nodiscard]] virtual MissCurve curve() const { return MissCurve::from_sdh(sdh_); }

  [[nodiscard]] double sampling_scale() const noexcept {
    return static_cast<double>(atd_.sampling_ratio());
  }

  /// Interval-boundary decay (divide every SDH register by two).
  virtual void decay() { sdh_.decay_halve(); }

  /// Fold a shard-replica profiler's SDH registers into this one and zero the
  /// replica, the merge step of the set-sharded simulator's interval barrier.
  /// Sound because ATD state is strictly per-ATD-set and every ATD set is fed
  /// by exactly one L2 set, so replicas over disjoint L2 set ranges observe
  /// exactly the serial per-set streams and their SDHs sum to the serial SDH.
  /// Only SDH registers move: the NRU kSmear fractional side histogram has no
  /// merge story, which is one reason NRU profiling is never sharded.
  void absorb_shard(Profiler& shard) {
    sdh_.add(shard.sdh_);
    shard.sdh_.clear();
  }

  [[nodiscard]] const Sdh& sdh() const noexcept { return sdh_; }
  [[nodiscard]] const Atd& atd() const noexcept { return atd_; }
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void reset() {
    atd_.reset();
    sdh_.clear();
  }

 protected:
  /// Policy-specific SDH update for a sampled ATD hit.
  virtual void on_atd_hit(const cache::StackEstimate& est) = 0;

  Atd atd_;
  Sdh sdh_;
};

/// Exact profiling on a true-LRU ATD: record the precise stack distance.
class PLRUPART_EXPORT LruProfiler final : public Profiler {
 public:
  LruProfiler(const cache::Geometry& geo, std::uint32_t sampling_ratio,
              std::uint64_t seed = 0x5eed)
      : Profiler(geo, cache::ReplacementKind::kLru, sampling_ratio, seed) {}

  [[nodiscard]] std::string name() const override { return "SDH-LRU"; }

 private:
  void on_atd_hit(const cache::StackEstimate& est) override {
    sdh_.record_hit(est.point);
  }
};

/// How the NRU eSDH turns the [1, U] estimate interval into register updates.
enum class NruUpdateMode : std::uint8_t {
  /// Paper rule ("we increase both SDH registers r1 and r2, assuming the
  /// stack distance to be 2"): increment every register r1..r_ceil(S*U).
  /// Viewed through misses_with_ways, this spreads one unit of marginal
  /// utility across each of the first ceil(S*U) ways.
  kRange,
  /// Ablation: one increment at ceil(S * U) only — concentrates the entire
  /// utility at the interval's endpoint.
  kPoint,
  /// Ablation: spread 1/U weight over r1..rU (kept in an idealized
  /// fractional side histogram; see DESIGN.md).
  kSmear,
  /// Ablation for the used-bit==0 case: like kRange, but also record
  /// distance A when the used bit is 0 (the paper records nothing).
  kPointRecordUnused,
};

class PLRUPART_EXPORT NruProfiler final : public Profiler {
 public:
  NruProfiler(const cache::Geometry& geo, std::uint32_t sampling_ratio, double scale,
              NruUpdateMode mode = NruUpdateMode::kRange, std::uint64_t seed = 0x5eed);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double scale() const noexcept { return scale_; }

  [[nodiscard]] MissCurve smear_curve() const;  // only meaningful in kSmear mode
  /// In kSmear mode the decision curve is the fractional one.
  [[nodiscard]] MissCurve curve() const override {
    return mode_ == NruUpdateMode::kSmear ? smear_curve() : Profiler::curve();
  }
  void decay() override;
  void reset() override;

 private:
  void on_atd_hit(const cache::StackEstimate& est) override;

  double scale_;
  NruUpdateMode mode_;
  std::vector<double> smear_;  // fractional registers, kSmear mode only
};

/// BT eSDH: estimate = A - (ID xor path-bits); the estimate arrives fully
/// formed in StackEstimate::point from TreePlru::estimate_position.
class PLRUPART_EXPORT BtProfiler final : public Profiler {
 public:
  BtProfiler(const cache::Geometry& geo, std::uint32_t sampling_ratio,
             std::uint64_t seed = 0x5eed)
      : Profiler(geo, cache::ReplacementKind::kTreePlru, sampling_ratio, seed) {}

  [[nodiscard]] std::string name() const override { return "eSDH-BT"; }

 private:
  void on_atd_hit(const cache::StackEstimate& est) override {
    sdh_.record_hit(est.point);
  }
};

/// SRRIP eSDH (extension): the RRPV quartile estimate arrives in
/// StackEstimate::point from cache::Srrip::estimate_position; recording its
/// far edge mirrors the NRU estimator's upper-bound convention.
class PLRUPART_EXPORT SrripProfiler final : public Profiler {
 public:
  SrripProfiler(const cache::Geometry& geo, std::uint32_t sampling_ratio,
                std::uint64_t seed = 0x5eed)
      : Profiler(geo, cache::ReplacementKind::kSrrip, sampling_ratio, seed) {}

  [[nodiscard]] std::string name() const override { return "eSDH-SRRIP"; }

 private:
  void on_atd_hit(const cache::StackEstimate& est) override {
    sdh_.record_hit(est.point);
  }
};

/// Which profiler variant a partitioned-cache configuration uses.
enum class ProfilerKind : std::uint8_t {
  kAuto,      ///< match the L2 replacement policy (the paper's setups)
  kLruExact,  ///< idealized: exact LRU ATD regardless of the L2 policy
  kNru,
  kBt,
  kSrrip,     ///< extension: RRPV-quartile estimates
};

[[nodiscard]] PLRUPART_EXPORT std::unique_ptr<Profiler> make_profiler(
    ProfilerKind kind, cache::ReplacementKind l2_replacement,
    const cache::Geometry& geo, std::uint32_t sampling_ratio, double esdh_scale,
    NruUpdateMode nru_mode, std::uint64_t seed);

}  // namespace plrupart::core
