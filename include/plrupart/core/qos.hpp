// QoS-oriented partition selection (after the QoS frameworks the paper cites:
// Iyer et al., Nesbit et al., FlexDCP).
//
// One thread is designated latency-critical with a miss budget expressed as a
// multiple of its full-cache miss count. The policy reserves the minimum
// number of ways meeting that budget, then distributes the rest among the
// remaining threads with MinMisses.
#pragma once

#include "plrupart/export.hpp"

#include "plrupart/core/partition.hpp"

namespace plrupart::core {

struct PLRUPART_EXPORT QosTarget {
  std::uint32_t core = 0;
  /// Allowed miss inflation: misses(w) <= factor * misses(A). 1.0 demands the
  /// full-cache miss count; larger values relax the guarantee.
  double factor = 1.1;
};

class PLRUPART_EXPORT QosPolicy final : public PartitionPolicy {
 public:
  explicit QosPolicy(QosTarget target) : target_(target) {
    PLRUPART_ASSERT(target.factor >= 1.0);
  }

  [[nodiscard]] Partition decide(const std::vector<MissCurve>& curves,
                                 std::uint32_t total_ways) override;
  [[nodiscard]] std::string name() const override { return "QoS"; }

  /// Fewest ways meeting the budget (capped so every other core keeps >= 1).
  [[nodiscard]] static std::uint32_t ways_for_budget(const MissCurve& c, double factor,
                                                     std::uint32_t cap);

 private:
  QosTarget target_;
};

}  // namespace plrupart::core
