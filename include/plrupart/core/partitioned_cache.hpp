// PartitionedCacheSystem: the library's main entry point.
//
// Bundles the shared L2, per-core profiling logic (ATD + (e)SDH), the interval
// controller and the enforcement wiring into one object the simulator (or an
// application) drives with time-stamped accesses.
//
// Configurations are named with the paper's acronym scheme:
//   <enforcement>-<esdh scale><replacement>
//   C-L     owner counters + LRU           (the paper's baseline)
//   M-L     way masks + LRU
//   M-1.0N  way masks + NRU, eSDH scale 1.0
//   M-0.75N way masks + NRU, eSDH scale 0.75
//   M-0.5N  way masks + NRU, eSDH scale 0.5
//   M-BT    way masks + binary-tree pseudo-LRU
// plus NOPART-L / NOPART-N / NOPART-BT / NOPART-R for unpartitioned caches.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/core/controller.hpp"
#include "plrupart/core/ipc_policy.hpp"
#include "plrupart/core/min_misses.hpp"
#include "plrupart/core/profiler.hpp"
#include "plrupart/core/qos.hpp"

namespace plrupart::core {

enum class PolicyKind : std::uint8_t {
  kMinMissesOptimal,
  kMinMissesGreedy,
  kMinMissesLookahead,
  kMinMissesTree,  ///< restricted to power-of-two allocations (strict BT)
  kFair,
  kQos,
  kIpc,  ///< IPC-objective DP (extension; needs CpaConfig::ipc_models)
  kStaticEven,
};

struct PLRUPART_EXPORT CpaConfig {
  cache::Geometry geometry = cache::paper_l2_geometry();
  std::uint32_t num_cores = 2;
  cache::ReplacementKind replacement = cache::ReplacementKind::kLru;

  /// kNone disables partitioning entirely (no ATDs, no controller).
  cache::EnforcementMode enforcement = cache::EnforcementMode::kWayMasks;

  ProfilerKind profiler = ProfilerKind::kAuto;
  double esdh_scale = 1.0;                       // NRU profiling only
  NruUpdateMode nru_update = NruUpdateMode::kRange;
  PolicyKind policy = PolicyKind::kMinMissesOptimal;
  std::optional<QosTarget> qos;                  // PolicyKind::kQos only
  std::vector<IpcModel> ipc_models;              // PolicyKind::kIpc: one per core
  IpcObjective ipc_objective = IpcObjective::kThroughput;
  std::uint64_t interval_cycles = 1'000'000;     // paper: 1M cycles
  std::uint32_t sampling_ratio = 32;             // paper: 1 in 32 sets
  /// Repartition damping (see IntervalController): a new partition is applied
  /// only when its predicted misses beat the standing one by this fraction.
  double repartition_hysteresis = 0.05;
  /// Strict BT enforcement: round partitions to power-of-two blocks
  /// expressible with up/down force vectors (ablation; default mask-guided).
  bool bt_strict_pow2 = false;
  std::uint64_t seed = 0x5eed;

  [[nodiscard]] bool partitioned() const noexcept {
    return enforcement != cache::EnforcementMode::kNone;
  }

  /// Parse a paper acronym (see file header). Throws InvariantError on
  /// unknown names.
  [[nodiscard]] static CpaConfig from_acronym(const std::string& name,
                                              std::uint32_t num_cores,
                                              cache::Geometry geometry);

  /// Every acronym from_acronym accepts, in the paper's order.
  [[nodiscard]] static const std::vector<std::string>& known_acronyms();

  [[nodiscard]] std::string acronym() const;
};

class PLRUPART_EXPORT PartitionedCacheSystem {
 public:
  explicit PartitionedCacheSystem(CpaConfig config);

  /// One L2 access by `core` at byte address `addr`, at time `now_cycles`.
  /// Probes the core's ATD, fires the interval controller when a boundary
  /// passed, then performs the real access.
  cache::AccessOutcome access(cache::CoreId core, cache::Addr addr, bool write,
                              std::uint64_t now_cycles);

  [[nodiscard]] const CpaConfig& config() const noexcept { return config_; }
  [[nodiscard]] cache::SetAssocCache& l2() noexcept { return *l2_; }
  [[nodiscard]] const cache::SetAssocCache& l2() const noexcept { return *l2_; }
  [[nodiscard]] const Profiler& profiler(cache::CoreId core) const;
  [[nodiscard]] const IntervalController* controller() const noexcept {
    return controller_.get();
  }
  /// Mutable profiler/controller access for the set-sharded simulator's
  /// interval barrier: shard-replica SDHs are absorbed into the canonical
  /// profilers, then the controller is ticked from the merged curves.
  [[nodiscard]] Profiler& profiler_mut(cache::CoreId core);
  [[nodiscard]] IntervalController* controller_mut() noexcept {
    return controller_.get();
  }
  [[nodiscard]] Partition current_partition() const;

  /// Hardware-cost summary of the configuration (storage bits; see
  /// power/complexity.hpp for the event costs).
  [[nodiscard]] std::uint64_t profiling_storage_bits(std::uint32_t tag_bits) const;

  void reset();

 private:
  void apply_partition(const Partition& p);
  [[nodiscard]] std::unique_ptr<PartitionPolicy> make_partition_policy() const;

  CpaConfig config_;
  std::unique_ptr<cache::SetAssocCache> l2_;
  std::vector<std::unique_ptr<Profiler>> profilers_;
  std::unique_ptr<IntervalController> controller_;
};

}  // namespace plrupart::core
