// IPC-objective partition selection (extension, after FlexDCP [Moreto et
// al.], which the paper cites as the QoS framework built on these CPAs).
//
// MinMisses optimizes a proxy — total predicted misses — but misses are not
// worth the same cycles to every thread: a pointer chaser exposes the full
// memory latency while a streaming thread hides most of it. This policy
// converts each thread's miss curve into a predicted-IPC curve through a
// small analytical model and optimizes a performance metric directly:
//
//   kThroughput      maximize  sum_i IPC_i(w_i)
//   kWeightedSpeedup maximize  sum_i IPC_i(w_i) / IPC_i(A)
//   kHarmonicMean    maximize  N / sum_i (IPC_i(A) / IPC_i(w_i))
//
// All three are separable per thread, so the same exact DP used by
// min_misses_optimal applies.
#pragma once

#include "plrupart/export.hpp"

#include <vector>

#include "plrupart/core/partition.hpp"

namespace plrupart::core {

/// Per-thread analytical timing model: mirrors sim::CoreParams plus the
/// trace-dependent density of L2 accesses.
struct PLRUPART_EXPORT IpcModel {
  double instr_per_l2_access = 12.0;  ///< committed instructions per L2 access
  double base_ipc = 2.0;
  double l2_hit_penalty = 11.0;
  double mem_penalty = 250.0;
  double stall_fraction = 0.7;

  void validate() const;

  /// Predicted IPC of the thread when it owns `ways` ways, given its
  /// profiled miss curve (in profiled-access units; units cancel).
  [[nodiscard]] double predicted_ipc(const MissCurve& curve, std::uint32_t ways) const;
};

enum class IpcObjective : std::uint8_t {
  kThroughput,
  kWeightedSpeedup,
  kHarmonicMean,
};

[[nodiscard]] PLRUPART_EXPORT std::string to_string(IpcObjective o);

class PLRUPART_EXPORT IpcPolicy final : public PartitionPolicy {
 public:
  /// One model per core, in core order.
  IpcPolicy(std::vector<IpcModel> models, IpcObjective objective);

  [[nodiscard]] Partition decide(const std::vector<MissCurve>& curves,
                                 std::uint32_t total_ways) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] IpcObjective objective() const noexcept { return objective_; }

 private:
  /// The additive per-thread cost the DP minimizes (lower = better).
  [[nodiscard]] double cost(std::size_t core, const MissCurve& curve,
                            std::uint32_t ways) const;

  std::vector<IpcModel> models_;
  IpcObjective objective_;
};

}  // namespace plrupart::core
