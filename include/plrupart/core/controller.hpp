// Interval controller: the dynamic half of a dynamic CPA.
//
// Divides execution into fixed cycle intervals (paper: 1M cycles). At each
// boundary it reads every thread's (e)SDH into a miss curve, asks the
// partition policy for the next partition, hands it to the enforcement
// callback, and decays the SDHs.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "plrupart/core/partition.hpp"
#include "plrupart/core/profiler.hpp"

namespace plrupart::core {

struct PLRUPART_EXPORT RepartitionEvent {
  std::uint64_t cycle = 0;
  Partition partition;
};

class PLRUPART_EXPORT IntervalController {
 public:
  using ApplyFn = std::function<void(const Partition&)>;

  /// `hysteresis` damps repartition oscillation: a candidate partition
  /// replaces the current one only when its predicted miss total undercuts
  /// the current partition's (under the same fresh curves) by more than this
  /// fraction. Mask-based enforcement pays a working-set rebuild on every
  /// partition change, so flip-flopping decisions are costly; quota-based
  /// enforcement is naturally lazy and barely notices. 0 disables damping.
  IntervalController(std::uint64_t interval_cycles, std::uint32_t total_ways,
                     std::unique_ptr<PartitionPolicy> policy,
                     std::vector<Profiler*> profilers, ApplyFn apply,
                     double hysteresis = 0.0);

  /// Advance controller time. Fires at most one repartition per call (the
  /// simulator's cycle stream advances in sub-interval steps). Returns true
  /// if a repartition happened.
  bool tick(std::uint64_t now_cycles);

  [[nodiscard]] const Partition& current() const noexcept { return current_; }
  [[nodiscard]] const std::vector<RepartitionEvent>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] std::uint64_t interval_cycles() const noexcept { return interval_; }
  [[nodiscard]] const PartitionPolicy& policy() const noexcept { return *policy_; }

  /// Immediate repartition, regardless of the boundary (used at time zero and
  /// by tests).
  void repartition_now(std::uint64_t now_cycles);

 private:
  std::uint64_t interval_;
  std::uint32_t total_ways_;
  std::unique_ptr<PartitionPolicy> policy_;
  std::vector<Profiler*> profilers_;
  ApplyFn apply_;
  double hysteresis_;
  std::uint64_t next_boundary_;
  Partition current_;
  std::vector<RepartitionEvent> history_;
};

}  // namespace plrupart::core
