// MinMisses partition selection (paper §II-B, after Qureshi & Patt [22]):
// assign ways to minimize the total predicted miss count, at least one way per
// thread. Three interchangeable solvers:
//
//   * optimal  — exact dynamic program, O(N * A^2); cheap at hardware scales
//                (N <= 8, A <= 64) and the library default.
//   * greedy   — classical marginal-utility hill climb; equals the optimum on
//                convex curves, may lose on non-convex ones.
//   * lookahead— UCP's fix for non-convexity: award the block of ways with the
//                highest average marginal utility each round.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>

#include "plrupart/core/partition.hpp"

namespace plrupart::core {

[[nodiscard]] PLRUPART_EXPORT Partition min_misses_optimal(const std::vector<MissCurve>& curves,
                                           std::uint32_t total_ways);
[[nodiscard]] PLRUPART_EXPORT Partition min_misses_greedy(const std::vector<MissCurve>& curves,
                                          std::uint32_t total_ways);
[[nodiscard]] PLRUPART_EXPORT Partition min_misses_lookahead(const std::vector<MissCurve>& curves,
                                             std::uint32_t total_ways);

enum class MinMissesAlgorithm : std::uint8_t { kOptimal, kGreedy, kLookahead };

class PLRUPART_EXPORT MinMissesPolicy final : public PartitionPolicy {
 public:
  explicit MinMissesPolicy(MinMissesAlgorithm algo = MinMissesAlgorithm::kOptimal)
      : algo_(algo) {}

  [[nodiscard]] Partition decide(const std::vector<MissCurve>& curves,
                                 std::uint32_t total_ways) override;
  [[nodiscard]] std::string name() const override;

 private:
  MinMissesAlgorithm algo_;
};

}  // namespace plrupart::core
