// Trace file I/O: stream recorded traces of any size and write new ones.
//
// This is the bridge to real workloads: anything that can emit
// (gap-instructions, address, read/write) tuples — a PIN tool, a ChampSim
// trace (see sim/trace_convert.hpp), another simulator — can drive this
// library. Two native formats exist, auto-detected by their header line:
// text v1 and the compact binary v2 (format details in sim/trace_codec.hpp).
//
// Everything here STREAMS: readers hold O(buffer) memory regardless of file
// size (multi-GB traces are the design point), and TraceWriter appends
// records without materializing the trace. Reading back a whole trace into a
// vector is the caller's (test's) business, not the API's.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plrupart/sim/mem_op.hpp"
#include "plrupart/sim/trace_codec.hpp"

namespace plrupart::sim {

/// One forward pass over a trace file, decoding records on the fly from a
/// fixed-size chunk buffer. Detects v1/v2 by the header line. Malformed
/// input raises TraceError at the offending record, never later and never UB.
class PLRUPART_EXPORT TraceReader {
 public:
  static constexpr std::size_t kDefaultBufferBytes = std::size_t{1} << 20;

  explicit TraceReader(const std::string& path,
                       std::size_t buffer_bytes = kDefaultBufferBytes);

  /// Decode the next record; nullopt at (clean) end of file. EOF inside a
  /// record is an error, not an end.
  [[nodiscard]] std::optional<MemOp> next();

  /// Rewind to the first record (same stream again, like a fresh reader).
  void rewind();

  /// Forward a fault plan to the underlying ByteReader (FaultSite::kRead at
  /// every buffer refill); `lane` distinguishes concurrent readers.
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan, std::uint64_t lane = 0) noexcept {
    in_.set_fault_plan(std::move(plan), lane);
  }

  [[nodiscard]] TraceFormat format() const noexcept { return format_; }
  [[nodiscard]] const std::string& path() const noexcept { return in_.path(); }
  /// Records decoded since construction or the last rewind().
  [[nodiscard]] std::uint64_t ops_read() const noexcept { return ops_; }
  /// Actual chunk-buffer size — what "O(buffer) memory" refers to.
  [[nodiscard]] std::size_t buffer_capacity() const noexcept {
    return in_.buffer_capacity();
  }

 private:
  [[nodiscard]] std::optional<MemOp> next_text();
  [[nodiscard]] std::optional<MemOp> next_binary();
  [[noreturn]] void fail_line(const std::string& what) const;

  ByteReader in_;
  TraceFormat format_ = TraceFormat::kTextV1;
  std::uint64_t data_start_ = 0;  ///< file offset of the first record
  std::uint64_t line_ = 1;        ///< v1: current line number (header = line 1)
  cache::Addr prev_addr_ = 0;     ///< v2: delta-decoding state
  std::uint64_t ops_ = 0;
};

/// TraceSource over a trace file: streams records with O(buffer) memory and
/// loops back to the first record at end-of-file, so the simulator can run
/// past the recorded length (matching SyntheticTrace semantics). reset()
/// restarts the stream from the first record; replays are byte-identical.
///
/// Construction validates the header and the first record, so an unreadable
/// or empty trace fails fast, before any simulation starts.
class PLRUPART_EXPORT FileTraceSource final : public TraceSource {
 public:
  static constexpr std::size_t kDefaultBufferBytes = TraceReader::kDefaultBufferBytes;

  explicit FileTraceSource(const std::string& path,
                           std::size_t buffer_bytes = kDefaultBufferBytes);

  MemOp next() override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// See TraceReader::set_fault_plan.
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan, std::uint64_t lane = 0) noexcept {
    reader_.set_fault_plan(std::move(plan), lane);
  }

  [[nodiscard]] TraceFormat format() const noexcept { return reader_.format(); }
  /// Operations handed out since construction (across loops and resets).
  [[nodiscard]] std::uint64_t ops_delivered() const noexcept { return delivered_; }
  /// Times the source wrapped from end-of-file back to the first record.
  [[nodiscard]] std::uint64_t loops_completed() const noexcept { return loops_; }
  [[nodiscard]] std::size_t buffer_capacity() const noexcept {
    return reader_.buffer_capacity();
  }

 private:
  TraceReader reader_;
  std::string name_;
  std::uint64_t delivered_ = 0;
  std::uint64_t loops_ = 0;
};

/// Streaming trace writer: append records one at a time in either format,
/// buffered in ~64 KiB chunks. close() flushes and verifies the file is
/// healthy and non-empty; the destructor flushes too but cannot report
/// errors, so call close() whenever the file matters.
class PLRUPART_EXPORT TraceWriter {
 public:
  TraceWriter(const std::string& path, TraceFormat format);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const MemOp& op);
  void close();

  [[nodiscard]] std::uint64_t ops_written() const noexcept { return ops_; }
  [[nodiscard]] TraceFormat format() const noexcept { return format_; }

 private:
  void flush_chunk();

  std::string path_;
  std::ofstream out_;
  TraceFormat format_;
  std::string chunk_;
  cache::Addr prev_addr_ = 0;
  std::uint64_t ops_ = 0;
  bool closed_ = false;
};

/// Write `ops` to `path` in the given format (default: text v1).
PLRUPART_EXPORT void write_trace_file(const std::string& path, const std::vector<MemOp>& ops,
                      TraceFormat format = TraceFormat::kTextV1);

/// Open `path`, validate the header and the first record, and report the
/// detected format. Cheap (one small buffer) — the fail-fast check run on
/// every --trace file before a sweep starts.
PLRUPART_EXPORT TraceFormat probe_trace_file(const std::string& path);

/// Capture the first `count` operations of any source into a vector (the
/// source is advanced; reset it afterwards if order matters). Loads all
/// `count` ops into memory — a recording convenience for tests and examples,
/// not an ingestion path; large traces should flow TraceReader→TraceWriter.
[[nodiscard]] PLRUPART_EXPORT std::vector<MemOp> record_trace(TraceSource& source, std::size_t count);

}  // namespace plrupart::sim
