// Trace ingestion: convert externally captured address traces into the
// native plrupart-trace formats (and between v1 and v2).
//
// Supported inputs:
//  - native   : plrupart-trace v1/v2 (auto-detected by header); re-encoding
//               between v1 and v2 is lossless — the decoded op stream is
//               identical.
//  - champsim : ChampSim's uncompressed binary instruction format — 64-byte
//               little-endian `input_instr` records (ip, branch info, 2+4
//               register ids, 2 destination + 4 source memory addresses).
//               Every record is one committed instruction; records without
//               memory operands accumulate into the next memory op's
//               gap_instrs (loads are emitted before stores within one
//               instruction). Decompress .xz/.gz traces first.
//  - pin      : PIN "pinatrace"-style text — `<ip>: <R|W> <addr>` per line,
//               '#' comment lines ignored, CRLF tolerated. PIN traces carry
//               no instruction counts, so gap_instrs is 0 (a pure memory
//               stream).
//
// Conversion streams record-by-record in O(buffer) memory at both ends.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <string>

#include "plrupart/sim/trace_codec.hpp"

namespace plrupart::sim {

enum class ExternalTraceKind : std::uint8_t {
  kAuto,      ///< native if the header matches; anything else must be named
  kNative,    ///< plrupart-trace v1/v2
  kChampSim,  ///< ChampSim binary input_instr records
  kPin,       ///< PIN-style text address trace
};

struct PLRUPART_EXPORT ConvertStats {
  std::uint64_t ops_out = 0;     ///< MemOps written to the output trace
  std::uint64_t records_in = 0;  ///< input units: native ops / ChampSim instrs / PIN lines
  ExternalTraceKind kind = ExternalTraceKind::kAuto;  ///< resolved input kind
  TraceFormat out_format = TraceFormat::kBinaryV2;
};

/// Convert `in_path` into a native trace at `out_path`. `max_ops` (0 = no
/// limit) caps the number of emitted operations, for cutting SimPoint-sized
/// windows out of long captures. Throws TraceError on unreadable or
/// malformed input, or when the input yields no memory operations.
PLRUPART_EXPORT ConvertStats convert_trace(const std::string& in_path, const std::string& out_path,
                           ExternalTraceKind kind, TraceFormat out_format,
                           std::uint64_t max_ops = 0);

/// "auto" | "native" | "champsim" | "pin" -> kind; throws TraceError otherwise.
[[nodiscard]] PLRUPART_EXPORT ExternalTraceKind trace_kind_from_name(const std::string& name);

/// "v1" | "v2" -> format; throws TraceError otherwise.
[[nodiscard]] PLRUPART_EXPORT TraceFormat trace_format_from_name(const std::string& name);

}  // namespace plrupart::sim
