// CMP simulator: N trace-driven cores over a shared partitioned L2.
//
// Scheduling follows local core time: at every step the core with the
// smallest accumulated cycle count executes its next operation, which
// interleaves threads the way their relative progress would on real hardware
// and keeps the L2 access stream monotone in time (the interval controller
// relies on that).
//
// Per the paper's methodology, simulation ends when every thread has
// committed its instruction quota; threads that finish early keep running
// (wrapping their trace) to keep pressure on the cache, but their statistics
// freeze at the quota boundary.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "plrupart/common/fault_inject.hpp"
#include "plrupart/sim/memory_hierarchy.hpp"
#include "plrupart/sim/mem_op.hpp"
#include "plrupart/sim/timed_memory.hpp"

namespace plrupart::sim {

struct PLRUPART_EXPORT SimConfig {
  HierarchyConfig hierarchy;
  std::vector<CoreParams> cores;          ///< one per core (benchmark-specific)
  std::uint64_t instr_limit = 2'000'000;  ///< per-thread MEASURED instructions
  /// Intra-run parallelism: number of set-shard workers for this run. 1 (the
  /// default) runs the classic serial loop; 0 means hardware concurrency;
  /// K > 1 partitions the L2 set space into K shards replayed by K workers
  /// plus one trace-demux thread, synchronizing only at interval-controller
  /// boundaries. Results are byte-identical to the serial path at any value.
  /// Configurations whose replacement policy or profiler carries cache-global
  /// state (NRU, Random) silently fall back to serial; SimResult::sim_shards
  /// reports what actually ran.
  std::uint32_t sim_threads = 1;
  /// Warmup: measurement windows open for ALL cores at the same wall-cycle
  /// instant — the moment the slowest core has committed this many
  /// instructions. Until then caches and the partition controller warm up
  /// uncounted. Aligning the windows matters: a per-core instruction warmup
  /// would let fast cores start measuring while the controller is still
  /// converging, polluting steady-state comparisons. The paper's 100M
  /// SimPoint windows make warmup negligible; at this repo's trace lengths an
  /// explicit warmup is required.
  std::uint64_t warmup_instr = 0;
  /// Watchdog: abort with TimeoutError once the run has consumed this many
  /// wall-clock seconds (0 disables it). The serial loop polls every few
  /// thousand ops; the sharded path latches the deadline into the AbortFlag
  /// that every blocking loop already polls, so a wedged worker aborts and
  /// joins cleanly instead of hanging the fleet. Wall time never feeds
  /// simulation state — a timeout kills the run, it cannot skew its numbers.
  double timeout_s = 0.0;
  /// Deterministic fault plan for instrumented sites inside the simulator
  /// (FaultSite::kWorker at owned L2 accesses of shard workers). Trace-read
  /// faults are armed by the caller on each TraceSource; see
  /// FileTraceSource::set_fault_plan.
  std::shared_ptr<const FaultPlan> faults;
  /// Timed mode (opt-in): overlay the functional replay with the event-driven
  /// MSHR/writeback/banked-DRAM model. The L2 access stream — and with it
  /// every per-interval partition decision — is identical to functional mode
  /// by construction; only the cycle accounting (and the extra TimedStats)
  /// differ. Timed runs are always serial (sim_threads is ignored).
  TimingMode timing_mode = TimingMode::kFunctional;
  TimedParams timed;  ///< knobs of the timed overlay (timing_mode == kTimed)
};

struct PLRUPART_EXPORT ThreadResult {
  std::string benchmark;
  std::uint64_t instructions = 0;  ///< measured window only (post-warmup)
  double cycles = 0.0;             ///< cycles spent in the measured window
  double ipc = 0.0;
  HierarchyCounters mem;  ///< memory events within the measured window
};

struct PLRUPART_EXPORT SimResult {
  std::vector<ThreadResult> threads;
  double wall_cycles = 0.0;        ///< cycle count of the last thread to finish
  std::uint64_t repartitions = 0;  ///< interval-controller activations
  std::string l2_config;           ///< acronym of the L2 configuration
  std::uint32_t sim_shards = 1;    ///< set-shard workers the run actually used
  TimingMode timing = TimingMode::kFunctional;  ///< mode that produced this result
  TimedStats timed;  ///< measured-window deltas; all-zero in functional mode

  [[nodiscard]] double throughput() const {
    double t = 0.0;
    for (const auto& th : threads) t += th.ipc;
    return t;
  }
  [[nodiscard]] std::uint64_t total_l2_accesses() const {
    std::uint64_t n = 0;
    for (const auto& th : threads) n += th.mem.l2_accesses;
    return n;
  }
  [[nodiscard]] std::uint64_t total_l2_misses() const {
    std::uint64_t n = 0;
    for (const auto& th : threads) n += th.mem.l2_misses;
    return n;
  }
  [[nodiscard]] std::uint64_t total_instructions() const {
    std::uint64_t n = 0;
    for (const auto& th : threads) n += th.instructions;
    return n;
  }
};

class PLRUPART_EXPORT CmpSimulator {
 public:
  /// `traces.size()` must equal the hierarchy's core count; `config.cores`
  /// may be a single entry (applied to all) or one entry per core.
  CmpSimulator(SimConfig config, std::vector<std::unique_ptr<TraceSource>> traces);

  /// Run to completion and return per-thread results — serially or
  /// set-sharded per SimConfig::sim_threads, with identical results either
  /// way. Call once: a second call throws InvariantError (the hierarchy's
  /// warmed-up state cannot be re-run meaningfully).
  [[nodiscard]] SimResult run();

  [[nodiscard]] const MemoryHierarchy& hierarchy() const noexcept { return *hierarchy_; }

 private:
  [[nodiscard]] SimResult run_serial();
  [[nodiscard]] SimResult run_timed();

  SimConfig config_;
  std::vector<std::unique_ptr<TraceSource>> traces_;
  std::unique_ptr<MemoryHierarchy> hierarchy_;
  bool ran_ = false;
};

}  // namespace plrupart::sim
