// Trace records and trace sources.
//
// The simulator is trace-driven (the repo's substitute for the paper's
// cycle-accurate Turandot/PTCMP): a trace is a stream of memory operations,
// each carrying the number of non-memory instructions the core commits before
// it. Sources generate records on the fly (deterministically seeded), so no
// trace storage is needed.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <string>

#include "plrupart/cache/geometry.hpp"

namespace plrupart::sim {

struct PLRUPART_EXPORT MemOp {
  cache::Addr addr = 0;          ///< byte address
  bool write = false;
  std::uint32_t gap_instrs = 0;  ///< non-memory instructions committed first
};

class PLRUPART_EXPORT TraceSource {
 public:
  virtual ~TraceSource() = default;
  TraceSource() = default;
  TraceSource(const TraceSource&) = delete;
  TraceSource& operator=(const TraceSource&) = delete;

  /// Produce the next operation. Sources are infinite (synthetic generators
  /// loop); the simulator bounds execution by instruction count.
  virtual MemOp next() = 0;

  /// Restart the stream from the beginning (same seed, same sequence).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace plrupart::sim
