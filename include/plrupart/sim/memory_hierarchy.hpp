// Two-level memory hierarchy: private per-core L1 data caches in front of the
// shared, partitioned L2 (the paper's baseline: 32KB 2-way L1D, 2MB 16-way
// shared L2).
//
// Instruction fetch is not modeled: SPEC CPU 2000 code footprints fit the 64KB
// L1I, so instruction traffic contributes negligibly to L2 contention — the
// phenomenon under study (see DESIGN.md substitutions).
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/core/partitioned_cache.hpp"
#include "plrupart/sim/core_model.hpp"

namespace plrupart::sim {

struct PLRUPART_EXPORT HierarchyConfig {
  cache::Geometry l1d{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  core::CpaConfig l2;  // num_cores inside governs the hierarchy width

  void validate() const {
    l1d.validate();
    l2.geometry.validate();
  }
};

struct PLRUPART_EXPORT HierarchyCounters {
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
};

/// What the shared L2 saw during one hierarchy access — everything the timed
/// overlay needs to charge cycles without re-deriving cache state. Filled only
/// when the access misses L1 (reached_l2); line/way/eviction fields mirror the
/// L2's AccessOutcome at line granularity.
struct PLRUPART_EXPORT L2Echo {
  bool reached_l2 = false;  ///< the access missed L1 and probed the L2
  bool hit = false;         ///< L2 hit (reached_l2 only)
  std::uint32_t way = 0;    ///< way touched or filled
  bool evicted_valid = false;
  cache::Addr evicted_line = 0;  ///< line-granular victim address
};

class PLRUPART_EXPORT MemoryHierarchy {
 public:
  explicit MemoryHierarchy(HierarchyConfig config);

  /// One data access by `core`; returns the level that satisfied it.
  AccessLevel access(cache::CoreId core, cache::Addr addr, bool write,
                     std::uint64_t now_cycles);

  /// Same access, echoing the L2 outcome for the timed overlay. The
  /// functional side effects are identical to the plain overload (this IS the
  /// plain overload plus an out-parameter).
  AccessLevel access(cache::CoreId core, cache::Addr addr, bool write,
                     std::uint64_t now_cycles, L2Echo& echo);

  [[nodiscard]] const HierarchyConfig& config() const noexcept { return config_; }
  [[nodiscard]] core::PartitionedCacheSystem& l2() noexcept { return *l2_; }
  [[nodiscard]] const core::PartitionedCacheSystem& l2() const noexcept { return *l2_; }
  [[nodiscard]] const cache::SetAssocCache& l1d(cache::CoreId core) const;
  [[nodiscard]] const HierarchyCounters& counters(cache::CoreId core) const;
  /// Mutable L1/counter access for the set-sharded simulator: its demux
  /// thread drives the private L1s directly (they filter the streams the
  /// shard workers consume), and the driver installs the replicated counters
  /// when the workers join.
  [[nodiscard]] cache::SetAssocCache& l1d_mut(cache::CoreId core);
  void set_counters(cache::CoreId core, const HierarchyCounters& ctr);
  [[nodiscard]] std::uint32_t num_cores() const noexcept { return config_.l2.num_cores; }

  void reset();

 private:
  HierarchyConfig config_;
  std::vector<std::unique_ptr<cache::SetAssocCache>> l1d_;
  std::unique_ptr<core::PartitionedCacheSystem> l2_;
  std::vector<HierarchyCounters> counters_;
};

}  // namespace plrupart::sim
