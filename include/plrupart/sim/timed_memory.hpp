// Timed backing-memory model behind the shared L2: MSHRs with miss
// coalescing, a bounded writeback queue, and a banked DRAM with open-row
// timing and a simple FR-FCFS scheduler, all driven through the monotone
// EventQueue.
//
// The timed mode is an overlay on the functional replay: the global memory
// access stream (and therefore every profiler observation and every interval
// partition decision) is EXACTLY the functional one; this model only decides
// how many cycles that stream costs. An L2 miss allocates an MSHR (stalling
// when all are pending), possibly enqueues a victim writeback (stalling when
// the bounded writeback queue is full), and issues a read to its DRAM bank,
// which serves requests row-hit-first (FR-FCFS, reads before writebacks,
// oldest first within a class). Completions propagate back as events; the
// issuing core learns its fill time via retire() and charges the exposed
// fraction of the latency. Everything is integer arithmetic over a
// deterministic event order — identical inputs give identical cycle counts on
// every platform.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "plrupart/cache/geometry.hpp"
#include "plrupart/sim/event_queue.hpp"

namespace plrupart::sim {

/// How CmpSimulator accounts time. kFunctional is the fast fixed-latency IPC
/// approximation (the default, byte-identical to earlier releases); kTimed
/// runs the event-driven MSHR/DRAM overlay. Partition decisions are identical
/// between the modes by construction — see timed_replay.cpp.
enum class TimingMode : std::uint8_t { kFunctional, kTimed };

[[nodiscard]] PLRUPART_EXPORT std::string to_string(TimingMode mode);
/// Parse "functional" or "timed" (the --timing spellings); throws
/// InvariantError on anything else.
[[nodiscard]] PLRUPART_EXPORT TimingMode timing_mode_from_string(const std::string& text);

/// Knobs of the timed overlay. All latencies are in core cycles. The
/// defaults follow the paper's Table II memory system (11-cycle L2, 250-cycle
/// memory round trip split into controller traversal + DRAM service).
struct PLRUPART_EXPORT TimedParams {
  std::uint32_t l2_hit_cycles = 11;  ///< L1-miss-L2-hit service latency
  std::uint32_t l2_miss_to_dram_cycles = 30;  ///< L2 miss -> DRAM controller traversal
  std::uint32_t mshrs = 16;            ///< max outstanding L2 misses
  std::uint32_t writeback_queue = 8;   ///< max in-flight victim writebacks
  std::uint32_t dram_banks = 8;        ///< independent DRAM banks
  std::uint32_t row_bytes = 2048;      ///< row-buffer span per bank
  std::uint32_t t_row_hit = 100;       ///< open-row access (CAS + burst)
  std::uint32_t t_row_miss = 160;      ///< closed bank (activate + CAS + burst)
  std::uint32_t t_row_conflict = 220;  ///< other row open (precharge + act + CAS)
  void validate() const;
};

/// Event counters of the timed overlay. Counter fields are monotonically
/// increasing totals; windowed reporting subtracts a snapshot (delta_since).
struct PLRUPART_EXPORT TimedStats {
  std::uint64_t dram_reads = 0;        ///< demand fills serviced by a bank
  std::uint64_t dram_writebacks = 0;   ///< victim writebacks serviced by a bank
  std::uint64_t row_hits = 0;          ///< bank services that hit the open row
  std::uint64_t row_misses = 0;        ///< bank services against a closed bank
  std::uint64_t bank_conflicts = 0;    ///< bank services that closed another row
  std::uint64_t mshr_coalesced = 0;    ///< misses/hits merged into a pending MSHR
  std::uint64_t mshr_full_stalls = 0;  ///< issues that waited for a free MSHR
  std::uint64_t wb_full_stalls = 0;    ///< issues that waited on the writeback queue
  std::uint64_t dram_bytes = 0;        ///< line-sized transfers, fills + writebacks
  std::uint32_t mshr_peak = 0;         ///< peak pending MSHRs since mark()

  /// Counter-wise difference (peak carries over unchanged; pair with mark()).
  [[nodiscard]] TimedStats delta_since(const TimedStats& base) const;
};

class PLRUPART_EXPORT TimedMemory {
 public:
  /// `l2_geo` supplies the line size (transfer granularity, DRAM interleave)
  /// and the set/way shape backing the dirty-line table.
  TimedMemory(const TimedParams& params, const cache::Geometry& l2_geo);

  /// Handle to an in-flight miss; retire() redeems it for the fill time.
  struct PLRUPART_EXPORT Ticket {
    std::uint32_t slot = 0;
    bool valid = false;
  };

  /// An L2 demand miss at tick `t_issue` for line-granular address `line`,
  /// filling into `way` (evicting `evicted_line` if `evicted_valid`).
  /// `write` marks the freshly installed line dirty. May advance simulated
  /// time past `t_issue` while draining a full MSHR file or writeback queue.
  /// Returns the ticket of the (new or coalesced-into) MSHR.
  Ticket miss(std::uint64_t t_issue, cache::Addr line, std::uint32_t way, bool write,
              bool evicted_valid, cache::Addr evicted_line);

  /// An L2 hit at `t_issue`. Updates the dirty table; when the line's fill is
  /// still in flight (a coalescing window the functional cache cannot see),
  /// returns that MSHR's ticket so the caller waits on the fill instead of
  /// charging a plain hit. Otherwise returns an invalid ticket.
  Ticket hit(std::uint64_t t_issue, cache::Addr line, std::uint32_t way, bool write);

  /// Block until `ticket`'s fill completes; returns the completion tick and
  /// releases the caller's reference on the MSHR slot.
  std::uint64_t retire(Ticket ticket);

  /// Currently pending (unfilled) MSHRs.
  [[nodiscard]] std::uint32_t mshrs_pending() const noexcept { return pending_; }
  /// In-flight victim writebacks occupying the bounded queue.
  [[nodiscard]] std::uint32_t writebacks_in_flight() const noexcept { return wb_used_; }

  [[nodiscard]] const TimedStats& stats() const noexcept { return stats_; }
  /// Restart peak-occupancy tracking (measurement-window open).
  void mark() noexcept { stats_.mshr_peak = pending_; }

  /// Process every remaining event (end of run): all banks drain, every
  /// pending fill completes.
  void drain();

 private:
  struct Mshr {
    cache::Addr line = 0;
    std::uint64_t done_at = 0;
    std::uint32_t refs = 0;  ///< outstanding retire() claims; 0 = slot free
    bool done = false;
  };
  struct DramRequest {
    cache::Addr line = 0;
    std::uint64_t row = 0;
    std::uint64_t order = 0;  ///< global arrival stamp; the FCFS tie-break
    std::uint32_t mshr = 0;   ///< fill target (reads only)
    bool writeback = false;
  };
  struct Bank {
    std::uint64_t open_row = 0;
    bool row_valid = false;   ///< false = precharged/idle bank
    bool in_service = false;  ///< a request occupies the bank right now
    DramRequest in_service_req;  ///< the occupying request (in_service only)
    std::vector<DramRequest> pending;
  };

  void process_until(std::uint64_t t);
  void handle(const TimedEvent& ev);
  void enqueue_dram(std::uint64_t t, DramRequest req);
  void start_service(std::uint32_t bank_idx, std::uint64_t t);
  [[nodiscard]] std::uint32_t bank_of(cache::Addr line) const noexcept;
  [[nodiscard]] std::uint64_t row_of(cache::Addr line) const noexcept;
  [[nodiscard]] std::uint32_t alloc_mshr(std::uint64_t& t);
  [[nodiscard]] std::size_t dirty_index(cache::Addr line, std::uint32_t way) const;

  TimedParams params_;
  cache::Geometry geo_;
  EventQueue queue_;
  std::vector<Mshr> mshrs_;
  std::vector<Bank> banks_;
  std::vector<bool> dirty_;  ///< per (set, way): would eviction write back?
  std::uint32_t pending_ = 0;
  std::uint32_t wb_used_ = 0;
  std::uint64_t next_order_ = 0;
  TimedStats stats_;
};

}  // namespace plrupart::sim
