// Low-level trace-format machinery shared by the streaming reader, the
// writer, and the format converter: the chunk-buffered byte reader, the
// varint/zigzag codec of the binary v2 format, and the format constants.
//
// Native trace formats (both start with a one-line text header):
//   v1 (text):    "# plrupart-trace v1\n" then one "<gap> <addr-hex> <R|W>"
//                 record per line; blank lines and '#' comments are ignored.
//   v2 (binary):  "# plrupart-trace v2\n" then back-to-back records of
//                 varint((gap << 1) | write) ++ varint(zigzag(addr - prev)),
//                 LEB128 varints, addresses delta-encoded against the
//                 previous record (prev = 0 at the first record).
// Both formats are strict: anything malformed — truncated header or record,
// bad digits, negative gaps, CR/CRLF line endings, varint overflow — raises
// TraceError with the file, position, and defect spelled out.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/error.hpp"
#include "plrupart/common/fault_inject.hpp"

namespace plrupart::sim {

/// Thrown for unreadable or malformed trace files. Derives from
/// InvariantError so existing catch sites keep working, but lets callers
/// (CLI, converter) distinguish input-data problems from library bugs.
class PLRUPART_EXPORT TraceError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

/// A trace read failed mid-stream (fread error that is not EINTR, or an
/// injected read fault). Unlike TraceError — malformed data stays malformed —
/// a failed read may well succeed on a retry, so this is TransientError and
/// eligible for the --job-retries budget.
class PLRUPART_EXPORT TraceIoError : public TransientError {
 public:
  using TransientError::TransientError;
};

namespace detail {
struct PLRUPART_EXPORT FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace detail

enum class TraceFormat : std::uint8_t {
  kTextV1,    ///< line-oriented text, human-editable
  kBinaryV2,  ///< varint gap + delta-encoded addresses, ~4 bytes/record
};

inline constexpr std::string_view kTraceHeaderV1 = "# plrupart-trace v1";
inline constexpr std::string_view kTraceHeaderV2 = "# plrupart-trace v2";

/// LEB128 varints are capped at 10 bytes (ceil(64/7)); the 10th byte may
/// carry only the top bit of a 64-bit value.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Chunk-buffered file reader: memory stays O(buffer) however large the file
/// is. The buffer size is honored exactly (down to 1 byte) so decoders must
/// not assume a whole record is ever contiguous in memory.
class PLRUPART_EXPORT ByteReader {
 public:
  static constexpr int kEof = -1;

  ByteReader(std::string path, std::size_t buffer_bytes);

  /// Consult `plan` at every buffer refill (FaultSite::kRead); `lane`
  /// distinguishes concurrent readers (e.g. per-core trace streams). The
  /// opportunity counter is this reader's refill count, so a given plan
  /// fails the same refill on every replay.
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan, std::uint64_t lane = 0) noexcept {
    faults_ = std::move(plan);
    fault_lane_ = lane;
  }

  /// Next byte as 0..255, or kEof at end of file. Throws TraceIoError on an
  /// I/O error (distinct from EOF); interrupted reads (EINTR) are retried.
  int get() {
    if (pos_ == len_ && !fill()) return kEof;
    return static_cast<unsigned char>(buf_[pos_++]);
  }

  /// Like get() without consuming.
  int peek() {
    if (pos_ == len_ && !fill()) return kEof;
    return static_cast<unsigned char>(buf_[pos_]);
  }

  /// Reposition to an absolute file offset (drops buffered bytes).
  void seek(std::uint64_t file_offset);

  /// File offset of the next byte get() would return.
  [[nodiscard]] std::uint64_t offset() const noexcept {
    return base_ + static_cast<std::uint64_t>(pos_);
  }

  [[nodiscard]] std::size_t buffer_capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  [[nodiscard]] bool fill();

  std::string path_;
  std::unique_ptr<std::FILE, detail::FileCloser> in_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;   ///< next unread byte in buf_
  std::size_t len_ = 0;   ///< valid bytes in buf_
  std::uint64_t base_ = 0;  ///< file offset of buf_[0]
  bool eof_ = false;        ///< a refill already hit end of file
  std::shared_ptr<const FaultPlan> faults_;
  std::uint64_t fault_lane_ = 0;
  std::uint64_t fills_ = 0;  ///< refill count == fault opportunity counter
};

/// Append `v` to `out` as an LEB128 varint (1-10 bytes).
inline void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(static_cast<unsigned char>(v) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<char>(static_cast<unsigned char>(v)));
}

/// Decode one LEB128 varint. Throws TraceError on EOF inside the varint and
/// on overflow (more than 10 bytes, or value bits beyond 64).
[[nodiscard]] PLRUPART_EXPORT std::uint64_t read_varint(ByteReader& in);

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

[[nodiscard]] constexpr std::string_view trace_format_name(TraceFormat f) noexcept {
  return f == TraceFormat::kTextV1 ? "v1" : "v2";
}

/// Header line (without the newline) that opens a file of format `f`.
[[nodiscard]] constexpr std::string_view trace_format_header(TraceFormat f) noexcept {
  return f == TraceFormat::kTextV1 ? kTraceHeaderV1 : kTraceHeaderV2;
}

}  // namespace plrupart::sim
