// Analytical core timing model.
//
// Substitutes the paper's out-of-order Turandot cores with cycle accounting:
// non-memory instructions retire at a sustained base IPC; a memory operation
// adds a stall charge when it misses a cache level. `stall_fraction` scales
// the raw miss penalty down to the portion an out-of-order window cannot hide
// (1.0 = fully exposed pointer chase, small values = high MLP streaming).
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>

#include "plrupart/common/assert.hpp"

namespace plrupart::sim {

/// Where an access was satisfied.
enum class AccessLevel : std::uint8_t { kL1, kL2, kMemory };

struct PLRUPART_EXPORT CoreParams {
  double base_ipc = 2.0;        ///< sustained non-memory IPC of the 8-wide core
  double l2_hit_penalty = 11;   ///< cycles: L1 miss that hits L2 (paper Table II)
  double mem_penalty = 250;     ///< cycles: L2 miss to memory (paper Table II)
  double stall_fraction = 0.7;  ///< exposed fraction of miss penalties

  void validate() const {
    PLRUPART_ASSERT(base_ipc > 0.0);
    PLRUPART_ASSERT(l2_hit_penalty >= 0.0 && mem_penalty >= 0.0);
    PLRUPART_ASSERT(stall_fraction >= 0.0 && stall_fraction <= 1.0);
  }
};

class PLRUPART_EXPORT CoreModel {
 public:
  explicit CoreModel(const CoreParams& params) : params_(params) { params.validate(); }

  /// Commit `n` non-memory instructions.
  void commit_gap(std::uint32_t n) noexcept {
    cycles_ += static_cast<double>(n) / params_.base_ipc;
    instructions_ += n;
  }

  /// Commit one memory instruction satisfied at `level`.
  void commit_mem(AccessLevel level) noexcept {
    cycles_ += 1.0 / params_.base_ipc;
    switch (level) {
      case AccessLevel::kL1:
        break;  // pipelined L1 hit
      case AccessLevel::kL2:
        cycles_ += params_.l2_hit_penalty * params_.stall_fraction;
        break;
      case AccessLevel::kMemory:
        cycles_ += params_.mem_penalty * params_.stall_fraction;
        break;
    }
    ++instructions_;
  }

  [[nodiscard]] double cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t instructions() const noexcept { return instructions_; }
  [[nodiscard]] double ipc() const noexcept {
    return cycles_ > 0.0 ? static_cast<double>(instructions_) / cycles_ : 0.0;
  }
  [[nodiscard]] const CoreParams& params() const noexcept { return params_; }

  void reset() noexcept {
    cycles_ = 0.0;
    instructions_ = 0;
  }

 private:
  CoreParams params_;
  double cycles_ = 0.0;
  std::uint64_t instructions_ = 0;
};

}  // namespace plrupart::sim
