// Monotone discrete-event queue: the spine of the timed simulation mode.
//
// A binary min-heap ordered by (tick, sequence). The sequence number is
// assigned at schedule time, so events sharing a tick pop in exactly the
// order they were scheduled — a deterministic FIFO tie-break that does not
// depend on heap internals, pointer values, or anything else the platform
// could vary. Popping is monotone: a pop never yields a tick smaller than an
// already-popped one (enforced, not assumed), which is what lets the timed
// memory model treat "process everything up to t" as a watertight phase.
#pragma once

#include "plrupart/export.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plrupart::sim {

/// What a scheduled event means to the timed memory model. The queue itself
/// is payload-agnostic; these kinds exist so one queue can serve every
/// subsystem without type erasure.
enum class EventKind : std::uint8_t {
  kBankService,     ///< a DRAM bank finished its in-service request
  kMshrComplete,    ///< an L2 miss's fill data arrived (MSHR releases)
  kWritebackDrain,  ///< a writeback left the bounded writeback queue
  kUser,            ///< free for tests and future subsystems
};

struct PLRUPART_EXPORT TimedEvent {
  std::uint64_t tick = 0;  ///< simulated cycle the event fires at
  std::uint64_t seq = 0;   ///< schedule order; the FIFO tie-break within a tick
  EventKind kind = EventKind::kUser;
  std::uint32_t lane = 0;     ///< subsystem index (bank id, MSHR slot, ...)
  std::uint64_t payload = 0;  ///< kind-specific argument
};

class PLRUPART_EXPORT EventQueue {
 public:
  EventQueue() = default;

  /// Schedule an event. `tick` may not precede the monotone floor (the tick
  /// of the latest pop): an event in the popped past could never fire.
  void schedule(std::uint64_t tick, EventKind kind, std::uint32_t lane,
                std::uint64_t payload = 0);

  /// The earliest pending event (by (tick, seq)). Queue must be non-empty.
  [[nodiscard]] const TimedEvent& peek() const;

  /// Remove and return the earliest pending event; advances the monotone
  /// floor to its tick.
  TimedEvent pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Tick of the most recently popped event: the time before which nothing
  /// can be scheduled anymore. Starts at 0.
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// Total events scheduled over the queue's lifetime (also the next seq).
  [[nodiscard]] std::uint64_t scheduled() const noexcept { return next_seq_; }

 private:
  std::vector<TimedEvent> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_ = 0;
};

}  // namespace plrupart::sim
