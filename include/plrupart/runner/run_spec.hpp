// Declarative run-matrix description: the input language of the sweep engine.
//
// A RunMatrix is the cartesian product of three axes — configuration acronyms,
// workloads, and L2 sizes — over one set of shared simulation parameters.
// expand() flattens it into RunSpecs in *canonical order* (workload-major,
// then config, then L2 size), and shard(i, n) carves the same flat list into
// n disjoint slices whose union is exactly the full matrix. Every RunSpec
// carries its canonical position (`job_index`) and a seed derived from the
// matrix position, so a job simulates identically whether it runs alone, in a
// thread pool, or on shard 7 of 32.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "plrupart/cache/geometry.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart::runner {

/// One fully-resolved simulation job. Value type: cheap to copy into shard
/// slices and across thread boundaries.
struct PLRUPART_EXPORT RunSpec {
  std::uint64_t job_index = 0;   ///< canonical position in the FULL matrix
  std::string config;            ///< L2 configuration acronym (CpaConfig)
  workloads::Workload workload;  ///< id + one benchmark per core
  cache::Geometry l1d{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  cache::Geometry l2;
  std::uint64_t instr = 1'000'000;
  std::uint64_t warmup = 500'000;
  std::uint64_t interval_cycles = 1'000'000;
  std::uint32_t sampling_ratio = 32;
  /// Per-job deterministic seed (feeds trace generation and the L2's RNG).
  /// Derived from the matrix position — see RunMatrix::job_seed().
  std::uint64_t seed = 1;
  /// Intra-run set-shard workers (SimConfig::sim_threads): 1 = serial,
  /// 0 = hardware concurrency. Results are identical at any value, so this is
  /// a performance knob, not part of the job's identity (key() ignores it).
  std::uint32_t sim_threads = 1;
  /// Timing mode (SimConfig::timing_mode). Unlike sim_threads this IS part of
  /// the job's identity — timed results carry extra columns and different
  /// cycle counts — so jobs_fingerprint folds it in (timed jobs only, keeping
  /// every pre-timed functional journal fingerprint unchanged).
  sim::TimingMode timing = sim::TimingMode::kFunctional;

  /// Human-readable job key, unique within one matrix:
  /// "<workload>|<config>|<l2 KB>".
  [[nodiscard]] std::string key() const;
};

/// Run one job to completion. Deterministic: identical RunSpecs produce
/// bit-identical SimResults on any machine, single-threaded or set-sharded
/// (sim_threads).
[[nodiscard]] PLRUPART_EXPORT sim::SimResult execute(const RunSpec& spec);

/// Supervision knobs threaded into a single job's execution. Like
/// RunSpec::sim_threads these are NOT part of the job's identity: they decide
/// whether a run survives, never what it computes, so key()/fingerprints
/// ignore them.
struct PLRUPART_EXPORT ExecuteControls {
  double timeout_s = 0.0;  ///< watchdog deadline (0 = none); see SimConfig
  /// Fault plan armed on this job's trace readers (FaultSite::kRead, lane =
  /// core) and shard workers (FaultSite::kWorker, lane = shard).
  std::shared_ptr<const FaultPlan> faults;
};

/// execute() with a watchdog and/or fault plan attached.
[[nodiscard]] PLRUPART_EXPORT sim::SimResult execute(const RunSpec& spec,
                                                     const ExecuteControls& controls);

/// Content fingerprint of a job list: folds every identity field of every
/// job (position, config, workload, geometries, quotas, seed — but NOT
/// sim_threads, which is a performance knob) into one stable 64-bit value.
/// The journal stamps this into every record so --resume can prove the
/// on-disk state belongs to THIS matrix and not a stale or edited one.
[[nodiscard]] PLRUPART_EXPORT std::uint64_t jobs_fingerprint(const std::vector<RunSpec>& jobs);

/// The declarative sweep: axes × shared parameters.
struct PLRUPART_EXPORT RunMatrix {
  std::vector<std::string> configs;               ///< CpaConfig acronyms
  std::vector<workloads::Workload> workloads;     ///< Table II ids, ad-hoc mixes, or
                                                  ///< trace-backed workloads
                                                  ///< (workload_from_traces)
  std::vector<std::uint64_t> l2_kb{1024};         ///< L2 sizes to sweep
  std::uint32_t assoc = 16;
  std::uint32_t line = 128;
  cache::Geometry l1d{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = 128};
  std::uint64_t instr = 1'000'000;
  std::uint64_t warmup = 500'000;
  std::uint64_t interval_cycles = 1'000'000;
  std::uint32_t sampling_ratio = 32;
  std::uint64_t seed = 1;  ///< root seed; per-job seeds derive from it
  std::uint32_t sim_threads = 1;  ///< intra-run set-shard workers per job
  sim::TimingMode timing = sim::TimingMode::kFunctional;  ///< all jobs' timing mode

  /// Number of jobs in the full matrix.
  [[nodiscard]] std::size_t size() const noexcept {
    return configs.size() * workloads.size() * l2_kb.size();
  }

  /// Canonical position of (workload wi, config ci, size li). The workload
  /// axis is outermost so that a single-config single-size matrix lists jobs
  /// in plain workload order.
  [[nodiscard]] std::size_t index_of(std::size_t wi, std::size_t ci,
                                     std::size_t li = 0) const noexcept {
    return (wi * configs.size() + ci) * l2_kb.size() + li;
  }

  /// Seed for every job in workload row `wi`. Only the workload coordinate
  /// participates: all configs and L2 sizes of one workload replay identical
  /// trace streams, so the config and size axes stay paired comparisons,
  /// while distinct workloads get decorrelated streams. Independent of thread
  /// count and of any shard split by construction.
  [[nodiscard]] std::uint64_t job_seed(std::size_t wi) const noexcept;

  /// Flatten into jobs in canonical order; result[k].job_index == k.
  /// Calls validate() first.
  [[nodiscard]] std::vector<RunSpec> expand() const;

  /// Shard i of n: every n-th job of the canonical expansion starting at i
  /// (striped, so shards stay balanced even when one axis dominates runtime).
  /// The n shards are pairwise disjoint and their union is exactly expand();
  /// job_index and seed are preserved from the full matrix.
  [[nodiscard]] std::vector<RunSpec> shard(std::size_t i, std::size_t n) const;

  /// Fail loudly on an unrunnable matrix: empty axes, bad geometry, unknown
  /// acronyms, or a workload with more threads than the L2 has ways.
  void validate() const;
};

}  // namespace plrupart::runner
