// SweepExecutor: fans RunSpecs out over the process thread pool and puts the
// results back in canonical job order, plus the CSV side of large-scale runs
// (canonical emission, shard-output merge/validation).
//
// Determinism contract: each job is a single-threaded deterministic
// simulation and every result lands at its own index, so the CSV written for
// a job list is byte-identical at any --threads value, and the merge of a
// full set of shard CSVs is byte-identical to the unsharded run.
#pragma once

#include "plrupart/export.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "plrupart/runner/run_spec.hpp"

namespace plrupart::runner {

struct PLRUPART_EXPORT SweepOptions {
  std::size_t threads = 0;  ///< worker threads; 0 = one per hardware thread
  bool progress = false;    ///< per-job completion lines on stderr
};

struct PLRUPART_EXPORT JobResult {
  RunSpec spec;
  sim::SimResult result;
};

class PLRUPART_EXPORT SweepExecutor {
 public:
  explicit SweepExecutor(SweepOptions opts = {}) : opts_(opts) {}

  /// Run every job; results come back in the order of `jobs` (canonical order
  /// when the list came from RunMatrix::expand()/shard()), regardless of which
  /// worker finished when.
  [[nodiscard]] std::vector<JobResult> run(std::vector<RunSpec> jobs) const;

 private:
  SweepOptions opts_;
};

/// Column names of the sweep CSV. Leading "job" column carries the canonical
/// full-matrix index — the job key the merge step sorts and dedups on.
[[nodiscard]] PLRUPART_EXPORT const std::vector<std::string>& sweep_csv_header();

/// Emit one row per (job, core) in the given order.
PLRUPART_EXPORT void write_csv(std::ostream& os, const std::vector<JobResult>& results);

/// Merge shard CSVs (written by write_csv) into `os`: headers must match the
/// sweep schema exactly, job keys must not repeat across inputs, and rows are
/// re-sorted to canonical job order. Throws InvariantError on any violation.
PLRUPART_EXPORT void merge_csv(const std::vector<std::string>& shard_paths, std::ostream& os);

/// Stream-level core of merge_csv, separated for tests. `names` labels each
/// stream in error messages (parallel to `shards`).
PLRUPART_EXPORT void merge_csv_streams(const std::vector<std::istream*>& shards,
                       const std::vector<std::string>& names, std::ostream& os);

}  // namespace plrupart::runner
