// SweepExecutor: fans RunSpecs out over the process thread pool and puts the
// results back in canonical job order, plus the CSV side of large-scale runs
// (canonical emission, shard-output merge/validation) and the resilience
// layer: per-job retry/timeout supervision, deterministic fault injection,
// and the crash-safe journal behind --journal/--resume.
//
// Determinism contract: each job is a single-threaded deterministic
// simulation and every result lands at its own index, so the CSV written for
// a job list is byte-identical at any --threads value, and the merge of a
// full set of shard CSVs is byte-identical to the unsharded run. The
// resilience layer preserves it: a journaled sweep killed at any instant and
// resumed produces a final CSV byte-identical to an uninterrupted run, and a
// retried job re-executes from scratch (same spec, same seed), so recovery
// never changes a number.
#pragma once

#include "plrupart/export.hpp"

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "plrupart/common/fault_inject.hpp"
#include "plrupart/runner/run_spec.hpp"

namespace plrupart::runner {

class RunJournal;

struct PLRUPART_EXPORT SweepOptions {
  std::size_t threads = 0;  ///< worker threads; 0 = one per hardware thread
  bool progress = false;    ///< per-job completion lines on stderr
  /// Extra attempts for jobs failing with TransientError (I/O failures,
  /// injected faults). 0 = fail on first error. Attempts beyond the budget
  /// surface the last error, annotated with the attempt count.
  std::uint32_t job_retries = 0;
  /// Base of the capped exponential backoff between attempts: attempt k
  /// sleeps base << min(k, 5) milliseconds. 0 disables sleeping (tests).
  std::uint32_t retry_backoff_ms = 100;
  /// Per-job watchdog (--job-timeout): a job exceeding this many wall seconds
  /// aborts with TimeoutError — which is NOT transient, so it is surfaced
  /// immediately rather than burning the retry budget. 0 = no deadline.
  double job_timeout_s = 0.0;
  /// Journal directory (--journal); empty = no journal. See RunJournal.
  std::string journal_dir;
  /// Resume an existing journal (--resume): skip jobs already recorded.
  bool resume = false;
  /// Fault-injection probabilities (--fault-inject); all-zero = none.
  FaultSpec faults;
  /// Root seed for fault plans. Each (job, attempt) derives its own plan
  /// seed, so fault sequences are replayable AND a retry sees different
  /// faults than the attempt it is recovering from (otherwise an injected
  /// fault would recur forever and no retry could ever succeed).
  std::uint64_t fault_seed = 1;
};

struct PLRUPART_EXPORT JobResult {
  RunSpec spec;
  sim::SimResult result;
};

class PLRUPART_EXPORT SweepExecutor {
 public:
  explicit SweepExecutor(SweepOptions opts = {}) : opts_(opts) {}

  /// Run every job; results come back in the order of `jobs` (canonical order
  /// when the list came from RunMatrix::expand()/shard()), regardless of which
  /// worker finished when. Supervision (retries, timeout, fault plans)
  /// applies; the journal does not (use run_csv for journaled sweeps — a
  /// resumed job has durable CSV bytes but no in-memory SimResult).
  [[nodiscard]] std::vector<JobResult> run(std::vector<RunSpec> jobs) const;

  /// Run the sweep and write the final CSV to `os`. Without a journal_dir
  /// this is run() + write_csv(). With one, each completed job is durably
  /// recorded as it finishes, already-recorded jobs are skipped on --resume,
  /// and the final CSV is assembled from the journal — byte-identical to an
  /// uninterrupted, unjournaled run.
  void run_csv(std::vector<RunSpec> jobs, std::ostream& os) const;

 private:
  [[nodiscard]] sim::SimResult run_supervised(const RunSpec& spec, RunJournal* journal,
                                              std::size_t pos) const;

  SweepOptions opts_;
};

/// Column names of the sweep CSV. Leading "job" column carries the canonical
/// full-matrix index — the job key the merge step sorts and dedups on.
[[nodiscard]] PLRUPART_EXPORT const std::vector<std::string>& sweep_csv_header();

/// Mode-aware schema: functional mode is the exact classic header above
/// (byte-identical output guarantee); timed mode appends the timed-overlay
/// columns (DRAM traffic, row-buffer outcomes, MSHR occupancy/stalls, and
/// bytes-per-cycle DRAM bandwidth — job-global, repeated on each core row).
[[nodiscard]] PLRUPART_EXPORT const std::vector<std::string>& sweep_csv_header(
    sim::TimingMode mode);

/// Emit one row per (job, core) in the given order.
PLRUPART_EXPORT void write_csv(std::ostream& os, const std::vector<JobResult>& results);

/// One job's CSV rows (no header), newline-terminated — the exact bytes
/// write_csv would emit for this job. The unit of journal persistence: the
/// final CSV of a resumed sweep is header + these fragments concatenated, so
/// sharing the formatting path IS the byte-identity argument.
[[nodiscard]] PLRUPART_EXPORT std::string sweep_csv_rows(const JobResult& result);

/// Merge shard CSVs (written by write_csv) into `os`: headers must match the
/// sweep schema exactly, job keys must not repeat across inputs, and rows are
/// re-sorted to canonical job order. Throws InvariantError on any violation.
PLRUPART_EXPORT void merge_csv(const std::vector<std::string>& shard_paths, std::ostream& os);

/// Stream-level core of merge_csv, separated for tests. `names` labels each
/// stream in error messages (parallel to `shards`).
PLRUPART_EXPORT void merge_csv_streams(const std::vector<std::istream*>& shards,
                       const std::vector<std::string>& names, std::ostream& os);

}  // namespace plrupart::runner
