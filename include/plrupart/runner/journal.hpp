// Crash-safe run journal: durable per-job progress for resumable sweeps.
//
// Layout of a journal directory (--journal <dir>):
//
//   MANIFEST            "plrupart-journal v1" + the job-list fingerprint and
//                       job count, written atomically before any job runs
//   job-<index>.rec     one record per completed job: a header (fingerprint,
//                       job index, key, payload byte count, FNV-1a checksum)
//                       followed by the job's verbatim CSV row bytes
//   *.tmp.<pid>         in-flight writes; a crash leaves at most these, and
//                       they are ignored on resume
//
// Every record is published with AtomicFile (tmp + fsync + rename), so at any
// kill point each job is either durably complete or absent — never truncated.
// On --resume the manifest and every present record are validated against the
// fingerprint of THIS run's job list (configs × workloads × sizes × seed; see
// jobs_fingerprint), completed jobs are skipped, and the final CSV is
// assembled from the journal in canonical order — byte-identical to an
// uninterrupted run, because records hold the exact bytes write_csv would
// have emitted.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "plrupart/common/fault_inject.hpp"
#include "plrupart/runner/run_spec.hpp"

namespace plrupart::runner {

class PLRUPART_EXPORT RunJournal {
 public:
  /// Open the journal at `dir` (created if missing) for this job list.
  /// Fresh mode (resume == false) refuses a directory that already holds a
  /// manifest — resuming must be explicit. Resume mode requires a manifest
  /// whose fingerprint matches `jobs`, validates every present record, and
  /// marks the corresponding jobs complete. Throws InvariantError with an
  /// actionable message on any mismatch, stale journal, or corrupt record.
  RunJournal(std::filesystem::path dir, const std::vector<RunSpec>& jobs, bool resume);

  [[nodiscard]] std::size_t size() const noexcept { return complete_.size(); }
  [[nodiscard]] bool complete(std::size_t pos) const { return complete_.at(pos); }
  [[nodiscard]] std::size_t num_complete() const noexcept;
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Durably record job `pos`'s CSV row bytes (as produced by
  /// sweep_csv_rows). Thread-safe: jobs may record concurrently from sweep
  /// workers. `write_faults`, if non-null, may fail the commit
  /// (FaultSite::kWrite, counter = the job's canonical index); the record is
  /// then absent and the caller's retry/resume machinery takes over.
  void record(std::size_t pos, const std::string& rows,
              const FaultPlan* write_faults = nullptr);

  /// Read back and re-validate job `pos`'s recorded row bytes.
  [[nodiscard]] std::string rows(std::size_t pos) const;

  /// Assemble the final CSV (header + every job's rows in list order) from
  /// the durable records; every job must be complete. Reading from disk —
  /// not from memory — makes the output provably reconstructible by a later
  /// resume.
  void write_final_csv(std::ostream& os) const;

  /// Path of job `pos`'s record file (exposed for tests and tooling).
  [[nodiscard]] std::filesystem::path record_path(std::size_t pos) const;

 private:
  void load_manifest_or_fail(std::size_t num_jobs) const;
  void write_manifest(std::size_t num_jobs) const;
  [[nodiscard]] std::string read_record_or_fail(std::size_t pos) const;

  std::filesystem::path dir_;
  std::uint64_t fingerprint_ = 0;
  /// Timing mode of the job list (uniform across a matrix): picks the final
  /// CSV's schema. Also folded into fingerprint_, so a functional journal can
  /// never be resumed as a timed sweep or vice versa.
  sim::TimingMode timing_ = sim::TimingMode::kFunctional;
  std::vector<std::uint64_t> job_indices_;  ///< canonical index per position
  std::vector<std::string> keys_;           ///< RunSpec::key per position
  std::vector<bool> complete_;
  mutable std::mutex mutex_;  ///< guards complete_ during concurrent record()
};

}  // namespace plrupart::runner
