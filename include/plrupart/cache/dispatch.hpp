// SIMD dispatch tiers for the batched tag-filtering hot paths.
//
// The per-access cost of the L2/ATD lookup is dominated by equality scans over
// small arrays: the packed 1-byte partial-tag filter of SetAssocCache, the
// full-tag compare of the sampled ATD, and the SRRIP distant-line scan. All
// three are the exact shape x86 `vpcmpeqb`/`vpcmpeqq` + movemask batching
// wants: 32-64 lanes compared per instruction instead of 4-8 per SWAR word.
//
// The library ships the kernels in four tiers:
//
//   kScalar  — plain per-way loops. The reference semantics every other tier
//              must reproduce bit-for-bit; also the portable floor.
//   kSwar    — SWAR over uint64_t words (the PR 3 hot path). Always available.
//   kAvx2    — 256-bit vpcmpeqb/vpcmpeqq + movemask. Requires the build to
//              enable PLRUPART_SIMD (on by default on x86-64 GCC/Clang) and
//              the CPU to report AVX2.
//   kAvx512  — 512-bit compares producing k-masks directly. Requires
//              PLRUPART_SIMD and AVX-512BW.
//
// Selection is runtime (cpuid), once per process: `best_dispatch_tier()` is
// the preferred available tier (AVX2 when it can run — see the function) and
// seeds `active_dispatch_tier()`, which every cache/ATD/policy instance
// samples at construction. The environment variable
// `PLRUPART_FORCE_DISPATCH=scalar|swar|avx2|avx512` overrides the choice
// process-wide (it is how CI pins each path deterministically); forcing a
// tier the build or CPU cannot run fails loudly instead of silently degrading.
//
// Bit-identity contract: every tier computes the same function — the caches'
// replacement decisions, statistics, and CSV output are byte-identical across
// tiers (proven by the GoldenEquivalence replay suite and the forced-dispatch
// CI leg), so the tier is purely a throughput knob.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace plrupart::cache {

enum class DispatchTier : std::uint8_t {
  kScalar = 0,
  kSwar = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

[[nodiscard]] PLRUPART_EXPORT std::string to_string(DispatchTier t);

/// Parse "scalar" / "swar" / "avx2" / "avx512" (the PLRUPART_FORCE_DISPATCH
/// spellings); nullopt for anything else.
[[nodiscard]] PLRUPART_EXPORT std::optional<DispatchTier> parse_dispatch_tier(
    std::string_view name);

/// True iff this build carries the tier's kernels AND the running CPU can
/// execute them. kScalar and kSwar are always available.
[[nodiscard]] PLRUPART_EXPORT bool dispatch_tier_available(DispatchTier t) noexcept;

/// Preferred available tier on this machine (>= kSwar). Prefers kAvx2 over
/// kAvx512 when both can run: the kernels are byte-compare + movemask over
/// at-most-64-byte blocks, where 512-bit lanes save no memory trips while the
/// k-mask extraction and downclock risk cost a little on most parts (measured
/// equal-or-slower across the BM_CacheAccessDispatch matrix). kAvx512 stays a
/// first-class tier via PLRUPART_FORCE_DISPATCH / set_active_dispatch_tier.
[[nodiscard]] PLRUPART_EXPORT DispatchTier best_dispatch_tier() noexcept;

/// The tier new cache/ATD/policy instances adopt. Defaults to
/// best_dispatch_tier(); PLRUPART_FORCE_DISPATCH (checked once, on first use)
/// overrides it, and set_active_dispatch_tier() overrides both. Throws
/// InvariantError if the forced tier is not available.
[[nodiscard]] PLRUPART_EXPORT DispatchTier active_dispatch_tier();

/// Force the process-wide tier (tests, benchmarks). Throws InvariantError when
/// the tier is unavailable. Only instances constructed afterwards see it.
PLRUPART_EXPORT void set_active_dispatch_tier(DispatchTier t);

}  // namespace plrupart::cache
