// Not-Recently-Used replacement as implemented in the Sun UltraSPARC T2 L2:
// one used bit per line, plus a single replacement pointer shared by every set
// of the cache (which is what makes victim choice behave randomly — the pointer
// position is uncorrelated with any particular set's history).
//
// Semantics (paper §III-A):
//  * On any access (hit or fill) the line's used bit is set. If that would make
//    every used bit in the access scope 1, all other scope bits reset to 0.
//  * On a miss, scan ways circularly from the replacement pointer for a line
//    with used bit 0, restricted to the enforcement mask; afterwards the
//    pointer advances one way past the victim.
//  * Partitioned operation scopes the saturation reset to the accessing core's
//    allowed ways (∪ the accessed line), which reduces to the base rule when
//    the mask is full (see DESIGN.md "Interpretation decisions").
//
// Every per-access method is a handful of mask operations, defined inline (the
// class is final) so the cache's statically-dispatched access path inlines
// them without LTO.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <vector>

#include "plrupart/cache/replacement.hpp"

namespace plrupart::cache {

class PLRUPART_EXPORT Nru final : public ReplacementPolicy {
 public:
  explicit Nru(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kNru;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) override {
    mark_used(set, way, allowed);
  }
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) override {
    mark_used(set, way, allowed);
  }

  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override {
    allowed &= all_ways();
    PLRUPART_ASSERT(allowed != 0);
    WayMask& used = used_[set];

    WayMask candidates = allowed & ~used;
    if (candidates == 0) {
      // Every allowed line is marked used: reset the allowed scope and retry.
      // The base (unpartitioned) policy never reaches this state because the
      // access-side saturation reset guarantees at least one clear bit, but a
      // partition-restricted scan can.
      used &= ~allowed;
      candidates = allowed;
    }

    // Circular scan from the replacement pointer (mask_next_circular, inlined
    // without its redundant range re-masking: candidates ⊆ all_ways already).
    const WayMask at_or_after = candidates & ~((WayMask{1} << pointer_) - 1);
    const std::uint32_t victim = mask_first(at_or_after != 0 ? at_or_after : candidates);
    // ways_ is a power of two (Geometry::validate), so the circular advance is
    // a mask instead of a division.
    pointer_ = (victim + 1) & (ways_ - 1);
    return victim;
  }

  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override {
    const WayMask used = used_[set] & all_ways();
    const std::uint32_t u = mask_count(used);
    if (mask_test(used, way)) {
      // Accessed line recently used: somewhere within the U most-recent lines.
      return StackEstimate{.lo = 1, .hi = u, .point = u};
    }
    // Not recently used: deeper than every used line.
    return StackEstimate{.lo = u + 1, .hi = ways_, .point = ways_};
  }

  void reset() override;

  /// Test/profiler hooks.
  [[nodiscard]] bool used_bit(std::uint64_t set, std::uint32_t way) const;
  [[nodiscard]] std::uint32_t used_count(std::uint64_t set) const;
  [[nodiscard]] std::uint32_t replacement_pointer() const noexcept { return pointer_; }

 private:
  void mark_used(std::uint64_t set, std::uint32_t way, WayMask allowed) {
    WayMask& used = used_[set];
    const WayMask line = WayMask{1} << way;
    // The saturation scope: the accessing core's ways plus the line it touched
    // (hits are allowed to land outside the core's partition).
    const WayMask scope = (allowed | line) & all_ways();
    used |= line;
    if ((used & scope) == scope) {
      used &= ~scope;
      used |= line;
    }
  }

  std::vector<WayMask> used_;   // one used-bit vector per set
  std::uint32_t pointer_ = 0;   // cache-global replacement pointer
};

}  // namespace plrupart::cache
