// Per-core and aggregate cache statistics.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <vector>

#include "plrupart/common/assert.hpp"

namespace plrupart::cache {

struct PLRUPART_EXPORT CoreCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  /// Misses that evicted a valid line belonging to a *different* core —
  /// the inter-thread interference the partitioning logic exists to control.
  std::uint64_t cross_evictions = 0;
  /// Misses that evicted one of the core's own valid lines.
  std::uint64_t self_evictions = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }

  void reset() { *this = CoreCacheStats{}; }
};

struct PLRUPART_EXPORT CacheStatsBundle {
  explicit CacheStatsBundle(std::uint32_t cores) : per_core(cores) {}

  std::vector<CoreCacheStats> per_core;

  [[nodiscard]] CoreCacheStats total() const {
    CoreCacheStats t;
    for (const auto& c : per_core) {
      t.accesses += c.accesses;
      t.hits += c.hits;
      t.misses += c.misses;
      t.writes += c.writes;
      t.cross_evictions += c.cross_evictions;
      t.self_evictions += c.self_evictions;
    }
    return t;
  }

  void reset() {
    for (auto& c : per_core) c.reset();
  }

  /// Accumulate another bundle's counters into this one (exact uint64 sums).
  /// Used by the set-sharded simulator to fold per-shard stat deltas back
  /// into the cache's canonical bundle after the workers join.
  void absorb(const CacheStatsBundle& other) {
    PLRUPART_ASSERT_MSG(other.per_core.size() == per_core.size(),
                        "stats bundle core-count mismatch in absorb");
    for (std::size_t c = 0; c < per_core.size(); ++c) {
      per_core[c].accesses += other.per_core[c].accesses;
      per_core[c].hits += other.per_core[c].hits;
      per_core[c].misses += other.per_core[c].misses;
      per_core[c].writes += other.per_core[c].writes;
      per_core[c].cross_evictions += other.per_core[c].cross_evictions;
      per_core[c].self_evictions += other.per_core[c].self_evictions;
    }
  }
};

}  // namespace plrupart::cache
