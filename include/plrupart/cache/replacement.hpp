// Replacement policy interface.
//
// A policy owns the per-set replacement metadata for an entire cache (LRU bits,
// NRU used bits + the cache-global replacement pointer, or BT tree bits) and is
// driven by the cache on hits and fills. Victim selection takes an `allowed`
// way mask so the same policy object serves both unpartitioned caches
// (allowed == all ways) and the paper's mask-based enforcement.
//
// `estimate_position` exposes what the profiling logic can read from the
// replacement state *before* the access updates it: exact stack positions for
// true LRU, the paper's estimated positions for NRU and BT.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <memory>
#include <string>

#include "plrupart/cache/geometry.hpp"
#include "plrupart/common/bits.hpp"

namespace plrupart::cache {

enum class ReplacementKind : std::uint8_t {
  kLru,      ///< true LRU (A*log2(A) bits per set)
  kNru,      ///< UltraSPARC T2 Not-Recently-Used (A used bits + global pointer)
  kTreePlru, ///< IBM binary-tree pseudo-LRU (A-1 bits per set)
  kRandom,   ///< uniform random victim (reference baseline)
  kSrrip,    ///< 2-bit static RRIP (extension beyond the paper; 2A bits/set)
};

[[nodiscard]] PLRUPART_EXPORT std::string to_string(ReplacementKind k);

/// Range of stack positions (1 = MRU .. A = LRU) the replacement state admits
/// for a line, plus the point value the paper's profiling logic would record.
/// For true LRU, lo == hi == point.
struct PLRUPART_EXPORT StackEstimate {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::uint32_t point = 0;
};

class PLRUPART_EXPORT ReplacementPolicy {
 public:
  ReplacementPolicy(const Geometry& geo)
      : sets_(geo.sets()),
        ways_(geo.associativity),
        all_mask_(full_way_mask(geo.associativity)) {}
  virtual ~ReplacementPolicy() = default;

  ReplacementPolicy(const ReplacementPolicy&) = delete;
  ReplacementPolicy& operator=(const ReplacementPolicy&) = delete;

  [[nodiscard]] virtual ReplacementKind kind() const noexcept = 0;

  /// A line was re-referenced. `allowed` is the accessing core's enforcement
  /// mask (full mask when unpartitioned); NRU scopes its used-bit saturation
  /// reset to it.
  virtual void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) = 0;

  /// A line was just installed into `way` (miss path, after victim eviction).
  virtual void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) = 0;

  /// Choose a victim among the valid lines selected by `allowed` (non-empty).
  /// The cache fills invalid ways first, so every allowed way holds live data.
  [[nodiscard]] virtual std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) = 0;

  /// Profiling-logic view of the line's stack position, computed from the
  /// replacement metadata as it stands *before* the access is applied.
  [[nodiscard]] virtual StackEstimate estimate_position(std::uint64_t set,
                                                        std::uint32_t way) const = 0;

  /// Reset all metadata to the post-power-on state.
  virtual void reset() = 0;

  [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  /// Cached full mask: the policies re-mask `allowed` with this on every
  /// access, so it must not re-derive (and re-assert) the mask each call.
  [[nodiscard]] WayMask all_ways() const noexcept { return all_mask_; }

 protected:
  std::uint64_t sets_;
  std::uint32_t ways_;
  WayMask all_mask_;
};

/// Factory covering every policy the library ships.
[[nodiscard]] PLRUPART_EXPORT std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind,
                                                             const Geometry& geo,
                                                             std::uint64_t seed = 0x5eed);

}  // namespace plrupart::cache
