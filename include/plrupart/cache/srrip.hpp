// Static RRIP (SRRIP, Jaleel et al., ISCA 2010) — an extension beyond the
// paper: a third pseudo-LRU-class policy to demonstrate that the library's
// partitioning/profiling framework generalizes past NRU and BT.
//
// Each line carries a 2-bit re-reference prediction value (RRPV). Fills
// insert at RRPV 2 ("long"), hits promote to 0 ("near-immediate"), victims
// are lines with RRPV 3 ("distant"); when none exists within the victim scope
// every scoped RRPV ages by one and the scan retries. The RRPV quartile also
// yields a natural eSDH estimate for the profiling logic.
//
// The per-access methods are defined inline (and the class is final) so the
// cache's statically-dispatched access path inlines them without LTO.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <vector>

#include "plrupart/cache/replacement.hpp"

namespace plrupart::cache {

class PLRUPART_EXPORT Srrip final : public ReplacementPolicy {
 public:
  static constexpr std::uint8_t kMaxRrpv = 3;       ///< 2-bit RRPV
  static constexpr std::uint8_t kInsertRrpv = 2;    ///< SRRIP "long" insertion
  static constexpr std::uint8_t kHitRrpv = 0;

  explicit Srrip(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kSrrip;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) override {
    rrpv_[set * ways_ + way] = kHitRrpv;
  }
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) override {
    rrpv_[set * ways_ + way] = kInsertRrpv;
  }

  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override {
    return choose_victim_scan(
        set, allowed, [](const std::uint8_t* v, std::uint32_t n, std::uint8_t needle) {
          return tag_match_mask(v, n, needle);
        });
  }

  /// choose_victim with a pluggable distant-line scan: `scan(rrpv, ways,
  /// kMaxRrpv)` must return the bitmask of ways whose RRPV equals kMaxRrpv
  /// (exactly tag_match_mask's contract — the SIMD dispatch tiers substitute
  /// their vpcmpeqb kernels here, which read up to 64 bytes past the set's
  /// RRPV block; rrpv_ is padded accordingly). Same victim for every
  /// conforming scan, so the dispatch tier never changes a decision.
  template <class Scan>
  [[nodiscard]] std::uint32_t choose_victim_scan(std::uint64_t set, WayMask allowed,
                                                 Scan&& scan) {
    allowed &= all_ways();
    PLRUPART_ASSERT(allowed != 0);
    std::uint8_t* rrpv = rrpv_.data() + set * ways_;
    for (;;) {
      // Branch-light scan: collect the mask of distant lines, then take the
      // lowest allowed one.
      const WayMask distant = scan(rrpv, ways_, kMaxRrpv) & allowed;
      if (distant != 0) return mask_first(distant);
      // Age only the victim scope: lines of other partitions keep their
      // RRPVs, mirroring how the paper scopes the NRU used-bit reset.
      for (std::uint32_t a = 0; a < ways_; ++a)
        rrpv[a] = static_cast<std::uint8_t>(rrpv[a] + ((allowed >> a) & 1U));
    }
  }

  /// RRPV quartile estimate: RRPV r maps to stack positions
  /// [r*A/4 + 1, (r+1)*A/4], recorded at the quartile's far edge — the same
  /// "upper bound" convention the paper's NRU estimator uses.
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override {
    const std::uint32_t r = rrpv(set, way);
    // Quartile width; associativities below 4 collapse to coarse buckets.
    const std::uint32_t span = ways_ >= 4 ? ways_ / 4 : 1;
    std::uint32_t lo = r * span + 1;
    std::uint32_t hi = (r + 1) * span;
    if (lo > ways_) lo = ways_;
    if (hi > ways_) hi = ways_;
    if (r == kMaxRrpv) hi = ways_;  // the distant quartile always reaches A
    return StackEstimate{.lo = lo, .hi = hi, .point = hi};
  }

  void reset() override;

  [[nodiscard]] std::uint8_t rrpv(std::uint64_t set, std::uint32_t way) const {
    return rrpv_[set * ways_ + way];
  }

 private:
  std::vector<std::uint8_t> rrpv_;
};

}  // namespace plrupart::cache
