// True LRU replacement: each line carries an exact stack position
// (A * log2(A) bits per set in hardware; see power/complexity.hpp).
//
// The per-access methods are defined inline (and the class is final) so the
// cache's statically-dispatched access path inlines them without LTO.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <vector>

#include "plrupart/cache/replacement.hpp"

namespace plrupart::cache {

class PLRUPART_EXPORT TrueLru final : public ReplacementPolicy {
 public:
  explicit TrueLru(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kLru;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) override {
    promote(set, way);
  }
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) override {
    promote(set, way);
  }

  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override {
    PLRUPART_ASSERT((allowed & all_ways()) != 0);
    std::uint32_t victim = 0;
    std::uint8_t deepest = 0;
    bool found = false;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (!mask_test(allowed, w)) continue;
      if (!found || pos(set, w) > deepest) {
        victim = w;
        deepest = pos(set, w);
        found = true;
      }
    }
    return victim;
  }

  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override {
    const auto p = static_cast<std::uint32_t>(pos(set, way)) + 1;  // 1-based
    return StackEstimate{.lo = p, .hi = p, .point = p};
  }

  void reset() override;

  /// Exact 0-based stack position (0 = MRU, A-1 = LRU) — test/profiler hook.
  [[nodiscard]] std::uint32_t stack_position(std::uint64_t set, std::uint32_t way) const;

 private:
  /// Branchless promotion: every line above `way`'s old position ages by one.
  void promote(std::uint64_t set, std::uint32_t way) {
    std::uint8_t* p = pos_.data() + set * ways_;
    const std::uint8_t old = p[way];
    for (std::uint32_t w = 0; w < ways_; ++w)
      p[w] = static_cast<std::uint8_t>(p[w] + (p[w] < old ? 1 : 0));
    p[way] = 0;
  }
  [[nodiscard]] std::uint8_t& pos(std::uint64_t set, std::uint32_t way) {
    return pos_[set * ways_ + way];
  }
  [[nodiscard]] std::uint8_t pos(std::uint64_t set, std::uint32_t way) const {
    return pos_[set * ways_ + way];
  }

  // pos_[set*A + way] = 0-based recency (0 = MRU). Initialized so that way i
  // starts at position i, matching hardware reset of the LRU bits.
  std::vector<std::uint8_t> pos_;
};

}  // namespace plrupart::cache
