// Uniform-random replacement: the reference point the paper compares NRU's
// pointer-driven behavior against ("guarantees a random-like replacement").
//
// The per-access methods are defined inline (and the class is final) so the
// cache's statically-dispatched access path inlines them without LTO.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>

#include "plrupart/cache/replacement.hpp"
#include "plrupart/common/rng.hpp"

namespace plrupart::cache {

class PLRUPART_EXPORT RandomRepl final : public ReplacementPolicy {
 public:
  RandomRepl(const Geometry& geo, std::uint64_t seed);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kRandom;
  }

  void on_hit(std::uint64_t, std::uint32_t, WayMask) override {}
  void on_fill(std::uint64_t, std::uint32_t, WayMask) override {}

  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t /*set*/, WayMask allowed) override {
    allowed &= all_ways();
    PLRUPART_ASSERT(allowed != 0);
    const std::uint32_t n = mask_count(allowed);
    std::uint32_t k = static_cast<std::uint32_t>(rng_.next_below(n));
    // Select the k-th set bit by clearing the k lowest ones.
    for (; k > 0; --k) allowed &= allowed - 1;
    return mask_first(allowed);
  }

  [[nodiscard]] StackEstimate estimate_position(std::uint64_t, std::uint32_t) const override {
    // Random replacement keeps no recency state: the profiling logic can bound
    // the position only by the full stack.
    return StackEstimate{.lo = 1, .hi = ways_, .point = ways_};
  }

  void reset() override;

 private:
  Rng rng_;
  std::uint64_t seed_;
};

}  // namespace plrupart::cache
