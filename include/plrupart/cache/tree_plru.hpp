// Binary-Tree pseudo-LRU (the IBM scheme of the paper / US patent 7,069,390).
//
// Each set carries A-1 tree bits laid out as an implicit heap: node 0 is the
// root, node i has children 2i+1 ("upper" subtree = lower way indices) and
// 2i+2 ("lower" subtree = higher way indices). A node bit of 1 means the MRU
// line is in the upper subtree, so victim search descends toward the *other*
// side: bit 0 -> upper child, bit 1 -> lower child.
//
// Partition enforcement (paper Fig. 5) adds per-core up/down force vectors of
// log2(A) bits each: at tree level l, up[l] overrides the node bit with 0
// (search the upper subtree), down[l] overrides it with 1. A force-vector pair
// confines a core to one aligned power-of-two block of ways. The library also
// provides mask-guided traversal — at each node, if only one subtree
// intersects the allowed mask, descend there — which is equivalent to the
// vectors whenever the mask is an aligned power-of-two block (tested), and
// generalizes them to arbitrary contiguous masks.
//
// The per-access methods are defined inline (and the class is final) so the
// cache's statically-dispatched access path inlines them without LTO; the
// unconstrained victim walk is a branchless descent over the packed tree word.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>
#include <optional>
#include <vector>

#include "plrupart/cache/replacement.hpp"

namespace plrupart::cache {

/// Per-core force vectors for BT partition enforcement. Bit l (from the root,
/// l = 0) of `up`/`down` forces traversal at level l. up and down must never
/// both be set at a level.
struct PLRUPART_EXPORT ForceVectors {
  std::uint32_t up = 0;
  std::uint32_t down = 0;

  [[nodiscard]] bool forces_up(std::uint32_t level) const noexcept {
    return (up >> level) & 1U;
  }
  [[nodiscard]] bool forces_down(std::uint32_t level) const noexcept {
    return (down >> level) & 1U;
  }

  friend constexpr bool operator==(const ForceVectors&, const ForceVectors&) = default;
};

class PLRUPART_EXPORT TreePlru final : public ReplacementPolicy {
 public:
  explicit TreePlru(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kTreePlru;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) override {
    promote(set, way);
  }
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) override {
    promote(set, way);
  }

  /// Mask-guided traversal (see file comment). The full-mask case — every
  /// access of an unpartitioned cache and every ATD probe — is a branchless
  /// walk steered only by the tree bits.
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override {
    allowed &= all_ways();
    PLRUPART_ASSERT(allowed != 0);
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t span = ways_;
    if (allowed == all_ways()) {
      // Both subtrees always intersect a full mask, so the walk reduces to
      // reading one tree bit per level.
      const std::uint64_t tree = tree_[set];
      for (std::uint32_t level = 0; level < levels_; ++level) {
        const auto dir = static_cast<std::uint32_t>((tree >> node) & 1U);
        node = 2 * node + 1 + dir;
        span /= 2;
        lo += dir * span;
      }
      return lo;
    }
    for (std::uint32_t level = 0; level < levels_; ++level) {
      const std::uint32_t half = span / 2;
      const WayMask upper = way_range_mask(lo, half) & allowed;
      const WayMask lower = way_range_mask(lo + half, half) & allowed;
      std::uint32_t dir;
      if (upper == 0) {
        dir = 1;  // nothing allowed above: forced down
      } else if (lower == 0) {
        dir = 0;  // forced up
      } else {
        dir = node_bit(set, node) ? 1U : 0U;
      }
      node = 2 * node + 1 + dir;
      lo += dir * half;
      span = half;
    }
    PLRUPART_ASSERT(mask_test(allowed, lo));
    return lo;
  }

  /// Faithful paper enforcement: traversal steered only by the force vectors.
  [[nodiscard]] std::uint32_t choose_victim_with_vectors(std::uint64_t set,
                                                         const ForceVectors& force);

  /// Paper §III-B profiling: estimated stack position
  ///   A − numeric_value(ID(way) XOR path-bits(way)),
  /// where ID(way) is produced by the way-number decoder (way bits MSB-first).
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override {
    const std::uint32_t x = id_bits(way) ^ path_bits(set, way);
    const std::uint32_t est = ways_ - x;  // 1 = MRU .. A = pseudo-LRU victim
    return StackEstimate{.lo = est, .hi = est, .point = est};
  }

  void reset() override;

  /// The decoder of paper Fig. 4(c): ID bits for `way`, packed with the root
  /// level in the most significant of log2(A) bits.
  [[nodiscard]] std::uint32_t id_bits(std::uint32_t way) const {
    // The bit values that would make `way` the victim: traversal follows
    // bit==0 upward and bit==1 downward, so the required bit at each level is
    // exactly the way's direction bit. Packed root-first means this is just
    // the way number itself — the decoder of Fig. 4(c).
    PLRUPART_ASSERT(way < ways_);
    return way;
  }

  /// Current tree-path bits of `way`, packed root-first (test/profiler hook).
  [[nodiscard]] std::uint32_t path_bits(std::uint64_t set, std::uint32_t way) const {
    PLRUPART_ASSERT(way < ways_);
    const std::uint64_t tree = tree_[set];
    std::uint32_t bits = 0;
    std::uint32_t node = 0;
    for (std::uint32_t level = 0; level < levels_; ++level) {
      bits = (bits << 1) | static_cast<std::uint32_t>((tree >> node) & 1U);
      const std::uint32_t dir = direction_bit(way, level);
      node = 2 * node + 1 + dir;
    }
    return bits;
  }

  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }

  /// Force vectors confining a core to `mask`, when expressible: the mask must
  /// be one aligned power-of-two block of ways. Returns nullopt otherwise.
  [[nodiscard]] std::optional<ForceVectors> derive_force_vectors(WayMask mask) const;

  /// The set of ways reachable by vector-steered traversal (the core's block).
  [[nodiscard]] WayMask reachable_ways(const ForceVectors& force) const;

 private:
  // Direction of `way` at tree level l (0 = root): 0 = upper child, 1 = lower.
  // Way indices are consumed MSB-first along the path.
  [[nodiscard]] std::uint32_t direction_bit(std::uint32_t way,
                                            std::uint32_t level) const noexcept {
    return (way >> (levels_ - 1 - level)) & 1U;
  }

  /// Point victim search *away* from `way` at every level of its path:
  /// traversal follows bit==0 to the upper child, so a line in the upper
  /// subtree sets the bit to 1. The nodes along a way's path and the values
  /// they take are fixed per way (independent of the tree state), so the
  /// whole walk collapses to two bitwise ops over precomputed per-way tables.
  void promote(std::uint64_t set, std::uint32_t way) {
    tree_[set] = (tree_[set] & ~path_node_mask_[way]) | path_node_value_[way];
  }

  [[nodiscard]] bool node_bit(std::uint64_t set, std::uint32_t node) const {
    return (tree_[set] >> node) & 1ULL;
  }

  std::vector<std::uint64_t> tree_;  // A-1 node bits per set
  std::uint32_t levels_;
  // promote() tables: the tree nodes on `way`'s root-to-leaf path, and the
  // values promote(way) writes into them (1 where the way sits in the upper
  // subtree). Shared by every set; A entries of 8 bytes each.
  std::vector<std::uint64_t> path_node_mask_;
  std::vector<std::uint64_t> path_node_value_;
};

}  // namespace plrupart::cache
