// Cache geometry and address decomposition.
#pragma once

#include "plrupart/export.hpp"

#include <cstdint>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/bits.hpp"

namespace plrupart::cache {

using Addr = std::uint64_t;
using CoreId = std::uint32_t;

/// Physical shape of a set-associative cache. All three fields must be powers
/// of two so that address decomposition is pure bit slicing, as in hardware.
struct PLRUPART_EXPORT Geometry {
  std::uint64_t size_bytes = 2ULL * 1024 * 1024;
  std::uint32_t associativity = 16;
  std::uint32_t line_bytes = 128;

  [[nodiscard]] constexpr std::uint64_t lines() const {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] constexpr std::uint64_t sets() const {
    return lines() / associativity;
  }

  void validate() const {
    PLRUPART_ASSERT_MSG(is_pow2(size_bytes), "cache size must be a power of two");
    PLRUPART_ASSERT_MSG(is_pow2(line_bytes), "line size must be a power of two");
    PLRUPART_ASSERT_MSG(is_pow2(associativity), "associativity must be a power of two");
    PLRUPART_ASSERT(associativity >= 1 && associativity <= kMaxAssociativity);
    PLRUPART_ASSERT_MSG(size_bytes >= static_cast<std::uint64_t>(line_bytes) * associativity,
                        "cache smaller than one set");
  }

  /// Byte address -> line-granular address.
  [[nodiscard]] constexpr Addr line_addr(Addr byte_addr) const {
    return byte_addr / line_bytes;
  }
  /// Line address -> set index.
  [[nodiscard]] constexpr std::uint64_t set_index(Addr line) const {
    return line & (sets() - 1);
  }
  /// Line address -> tag.
  [[nodiscard]] constexpr std::uint64_t tag(Addr line) const {
    return line >> ilog2_exact(sets());
  }

  friend constexpr bool operator==(const Geometry&, const Geometry&) = default;
};

/// Geometry of the paper's baseline shared L2: 2MB, 16-way, 128B lines.
[[nodiscard]] constexpr Geometry paper_l2_geometry() {
  return Geometry{.size_bytes = 2ULL * 1024 * 1024, .associativity = 16, .line_bytes = 128};
}

}  // namespace plrupart::cache
