// Set-associative cache with pluggable replacement policy and the three
// partition-enforcement mechanisms discussed in the paper:
//
//  * kNone          — no partitioning; every core may evict anywhere.
//  * kWayMasks      — global per-core replacement masks (paper §II-B.2): a core
//                     hits anywhere but selects victims only inside its mask.
//                     This mode also carries the BT up/down-vector enforcement,
//                     whose vector-steered traversal is equivalent to
//                     mask-guided traversal on the masks the partitioner emits
//                     (see TreePlru and core/tree_rounding).
//  * kOwnerCounters — per-set owner counters (paper §II-B.1, Qureshi-style):
//                     each line is tagged with its owner core; a core under its
//                     quota steals the victim from other cores' lines, a core
//                     at/over quota evicts among its own.
//
// Hot-path layout (the simulator replays hundreds of millions of accesses
// through here, so throughput bounds every figure reproduction):
//  * Structure-of-arrays set state: contiguous per-set tag words plus one
//    per-set block of bitmasks — [valid, owned-by-core-0, .., owned-by-core-
//    N-1] — so the hit scan is a branch-light tag-compare loop, invalid-way
//    search is a single count-trailing-zeros, and the owner-counter
//    enforcement mask is two bitwise ops (the bitmasks are maintained
//    incrementally on fill/evict/invalidate; owner *counts* are popcounts,
//    and a line's owner is recovered from the owner masks on eviction).
//    Keeping valid and ownership in one block means all per-set mask state
//    shares one cache line for up to 7 cores.
//  * Static policy dispatch: the per-access path is templated over the
//    concrete replacement policy (selected once per access by a switch on the
//    construction-time ReplacementKind — see policy_visit.hpp), so the policy
//    update inlines instead of paying 2-3 virtual calls per access. The
//    virtual `policy()` seam remains for tests, tools and profilers.
//  * Address decomposition constants (line shift, set mask, tag shift) are
//    precomputed, eliminating the per-access divisions hidden in Geometry.
#pragma once

#include "plrupart/export.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "plrupart/cache/cache_stats.hpp"
#include "plrupart/cache/dispatch.hpp"
#include "plrupart/cache/geometry.hpp"
#include "plrupart/cache/replacement.hpp"

namespace plrupart::cache {

enum class EnforcementMode : std::uint8_t {
  kNone,
  kWayMasks,
  kOwnerCounters,
};

[[nodiscard]] PLRUPART_EXPORT std::string to_string(EnforcementMode m);

/// Result of one cache access, including eviction information the simulator
/// and the tests use (a writeback model would hook evicted lines here too).
struct PLRUPART_EXPORT AccessOutcome {
  bool hit = false;
  std::uint32_t way = 0;
  bool evicted_valid = false;
  Addr evicted_line = 0;
  CoreId evicted_owner = 0;
};

class PLRUPART_EXPORT SetAssocCache {
 public:
  SetAssocCache(const Geometry& geo, ReplacementKind repl, std::uint32_t num_cores,
                EnforcementMode enforcement, std::uint64_t seed = 0x5eed);

  /// Perform one access for `core` at byte address `addr`. Misses allocate.
  AccessOutcome access(CoreId core, Addr addr, bool write = false);

  /// Same access, but the per-core counters land in `stats` instead of the
  /// cache's own bundle. The set-sharded simulator runs each shard worker
  /// with a private bundle (per-set state is disjoint across shards, the
  /// counters are not) and folds the deltas back via absorb_stats().
  AccessOutcome access(CoreId core, Addr addr, bool write, CacheStatsBundle& stats);

  /// One element of a batched replay (see access_batch).
  struct BatchOp {
    Addr addr = 0;
    CoreId core = 0;
    bool write = false;
  };

  /// Replay `n` accesses in order, writing one AccessOutcome per op into
  /// `out`. Semantically identical to calling access() n times — same state,
  /// same statistics, same outcomes — but the driver prefetches the set
  /// metadata of a small window of upcoming ops, overlapping the dependent
  /// set-lookup chains that serialize the one-at-a-time path. Callers with
  /// naturally batched independent accesses (trace replay between interval
  /// boundaries, the micro benches) get the dependency-hiding for free; the
  /// set-sharded engine keeps per-op access() because its argmin interleave
  /// makes each op's issue depend on the previous op's outcome.
  void access_batch(const BatchOp* ops, std::size_t n, AccessOutcome* out);
  /// Batched replay with externalized statistics (see the 4-arg access()).
  void access_batch(const BatchOp* ops, std::size_t n, AccessOutcome* out,
                    CacheStatsBundle& stats);

  /// Non-mutating lookup: would this access hit, and in which way?
  [[nodiscard]] AccessOutcome probe(Addr addr) const;

  /// Drop a line if present (no replacement-state update; mirrors an external
  /// invalidation message).
  bool invalidate(Addr addr);

  // --- Partition control -------------------------------------------------
  /// kWayMasks: set the ways `core` may search for victims (non-empty).
  void set_way_mask(CoreId core, WayMask mask);
  [[nodiscard]] WayMask way_mask(CoreId core) const;

  /// kOwnerCounters: set the number of ways `core` is entitled to.
  void set_way_quota(CoreId core, std::uint32_t ways);
  [[nodiscard]] std::uint32_t way_quota(CoreId core) const;

  /// Number of lines `core` currently holds in `set` (owner-counter state).
  [[nodiscard]] std::uint32_t owned_in_set(std::uint64_t set, CoreId core) const;

  // --- Introspection ------------------------------------------------------
  [[nodiscard]] const Geometry& geometry() const noexcept { return geo_; }
  /// The SIMD dispatch tier this instance's access path runs on (sampled from
  /// active_dispatch_tier() at construction; see plrupart/cache/dispatch.hpp).
  [[nodiscard]] DispatchTier dispatch_tier() const noexcept { return dispatch_; }
  [[nodiscard]] EnforcementMode enforcement() const noexcept { return enforcement_; }
  [[nodiscard]] std::uint32_t num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] ReplacementKind replacement() const noexcept { return kind_; }
  [[nodiscard]] ReplacementPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const ReplacementPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const CacheStatsBundle& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }
  /// Fold externally-accumulated counters (see the stats-taking access
  /// overload) into the cache's canonical bundle.
  void absorb_stats(const CacheStatsBundle& delta) { stats_.absorb(delta); }

  /// Clear all contents, replacement state and statistics.
  void reset();

 private:
  static constexpr std::uint32_t kNoWay = ~std::uint32_t{0};

  /// The one tag-scan everybody shares (access hit path, probe, invalidate).
  /// Two-phase, like a hardware way predictor: a SWAR compare over the set's
  /// packed 1-byte partial tags (A bytes — one or two words, a single cache
  /// line) nominates candidate ways, and only candidates load the full tag
  /// word for exact verification. A miss usually touches no tag line at all;
  /// a hit usually verifies exactly one way. Returns the way or kNoWay.
  [[nodiscard]] std::uint32_t find_way(std::uint64_t set, std::uint64_t tag) const {
    const std::uint64_t needle = (tag & 0xff) * 0x0101010101010101ULL;
    const std::uint64_t* pw = set_meta_.data() + set * meta_stride_ + partial_off_;
    WayMask candidates = 0;
    for (std::uint32_t j = 0; j < partial_words_; ++j) {
      // Zero-byte finder on pw[j] ^ needle: 0x80 marks each matching byte;
      // the movemask multiply packs those marks into 8 way bits, branchlessly.
      const std::uint64_t x = pw[j] ^ needle;
      const std::uint64_t hit_bytes =
          (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
      candidates |= ((hit_bytes * 0x0002040810204081ULL) >> 56) << (j * 8);
    }
    candidates &= valid_mask(set);
    const std::uint64_t* tags = tags_.data() + set * ways_;
    while (candidates != 0) {
      const std::uint32_t w = mask_first(candidates);
      if (tags[w] == tag) return w;
      candidates &= candidates - 1;
    }
    return kNoWay;
  }

  /// Write `way`'s 1-byte partial tag (the low tag byte) into the filter.
  void set_partial(std::uint64_t set, std::uint32_t way, std::uint64_t tag) {
    std::uint64_t& word = set_meta_[set * meta_stride_ + partial_off_ + way / 8];
    const std::uint32_t shift = (way % 8) * 8;
    word = (word & ~(std::uint64_t{0xff} << shift)) | ((tag & 0xff) << shift);
  }

  /// The statically-dispatched access core; `Policy` is the concrete (final)
  /// replacement class, so every policy hook inlines, `E` is the enforcement
  /// mode, so the unpartitioned path carries no enforcement branches and the
  /// mask/quota paths fold their scope selection, and `D` is the SIMD
  /// dispatch tier, selecting the tag-scan kernels (find_way_dispatch and the
  /// SRRIP distant-line scan). Every (E, D, Policy) combination computes the
  /// same function — D only changes how many lanes one instruction compares.
  template <EnforcementMode E, DispatchTier D, class Policy>
  AccessOutcome access_impl(Policy& pol, CoreId core, Addr addr, bool write,
                            CacheStatsBundle& stats);

  /// Batched counterpart of access_impl: per-op serial semantics plus a
  /// prefetch window over upcoming ops' set metadata.
  template <EnforcementMode E, DispatchTier D, class Policy>
  void access_batch_impl(Policy& pol, const BatchOp* ops, std::size_t n,
                         AccessOutcome* out, CacheStatsBundle& stats);

  /// find_way with the tag-filter scan of tier `D` (kSwar delegates to
  /// find_way above; the AVX tiers compare all partial bytes in 1-2 ops).
  /// Defined in access_impl.ipp; AVX instantiations exist only in the
  /// src/cache/simd/access_*.cpp TUs compiled with the matching -m flags.
  template <DispatchTier D>
  [[nodiscard]] std::uint32_t find_way_dispatch(std::uint64_t set,
                                                std::uint64_t tag) const;

  /// Tier-pinned full access / batch drivers: the policy x enforcement
  /// dispatch around access_impl, templated so each tier's TU instantiates
  /// exactly its own matrix (one tier per TU — see access_impl.ipp for why
  /// that isolation matters to codegen). Defined in access_impl.ipp.
  template <DispatchTier D>
  AccessOutcome access_host(CoreId core, Addr addr, bool write,
                            CacheStatsBundle& stats);
  template <DispatchTier D>
  void access_batch_host(const BatchOp* ops, std::size_t n, AccessOutcome* out,
                         CacheStatsBundle& stats);

  // Entry point into the kScalar reference TU (src/cache/access_scalar.cpp).
  // The byte-loop tier is for bit-identity proofs, not throughput; keeping
  // its instantiation out of the hot TUs preserves their inlining budget.
  AccessOutcome access_scalar(CoreId core, Addr addr, bool write,
                              CacheStatsBundle& stats);
  void access_batch_scalar(const BatchOp* ops, std::size_t n, AccessOutcome* out,
                           CacheStatsBundle& stats);

  // Entry points into the AVX translation units (src/cache/simd/access_*.cpp,
  // compiled with the matching target flags). Only called when the active
  // tier says so, which implies the build carries them.
  AccessOutcome access_avx2(CoreId core, Addr addr, bool write,
                            CacheStatsBundle& stats);
  AccessOutcome access_avx512(CoreId core, Addr addr, bool write,
                              CacheStatsBundle& stats);
  void access_batch_avx2(const BatchOp* ops, std::size_t n, AccessOutcome* out,
                         CacheStatsBundle& stats);
  void access_batch_avx512(const BatchOp* ops, std::size_t n, AccessOutcome* out,
                           CacheStatsBundle& stats);

  /// The ways `core` may search for a victim in `set` under kOwnerCounters
  /// enforcement (always non-empty). kNone/kWayMasks scopes come straight
  /// from `all_ways_`/`masks_` in the statically-dispatched access core.
  [[nodiscard]] WayMask eviction_mask(std::uint64_t set, CoreId core) const;

  [[nodiscard]] WayMask& valid_mask(std::uint64_t set) {
    return set_meta_[set * meta_stride_];
  }
  [[nodiscard]] WayMask valid_mask(std::uint64_t set) const {
    return set_meta_[set * meta_stride_];
  }
  [[nodiscard]] WayMask& owner_ways(std::uint64_t set, CoreId core) {
    return set_meta_[set * meta_stride_ + 1 + core];
  }
  [[nodiscard]] WayMask owner_ways(std::uint64_t set, CoreId core) const {
    return set_meta_[set * meta_stride_ + 1 + core];
  }

  /// Owner of the valid line in `way` of `set`, recovered from the ownership
  /// bitmasks (they partition the valid mask, so exactly one core matches).
  [[nodiscard]] CoreId owner_of(std::uint64_t set, std::uint32_t way) const {
    const WayMask bit = WayMask{1} << way;
    const WayMask* owned = set_meta_.data() + set * meta_stride_ + 1;
    for (CoreId c = 0; c + 1 < num_cores_; ++c) {
      if ((owned[c] & bit) != 0) return c;
    }
    PLRUPART_ASSERT((owned[num_cores_ - 1] & bit) != 0);
    return num_cores_ - 1;
  }

  Geometry geo_;
  std::uint32_t num_cores_;
  EnforcementMode enforcement_;
  DispatchTier dispatch_;
  ReplacementKind kind_;
  std::unique_ptr<ReplacementPolicy> policy_;

  // Address decomposition, precomputed from geo_ (all powers of two).
  std::uint32_t ways_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint32_t tag_shift_ = 0;  ///< log2(sets)
  std::uint64_t set_mask_ = 0;
  WayMask all_ways_ = 0;

  // SoA set state.
  std::vector<std::uint64_t> tags_;  ///< [set * A + way]
  /// Per-set metadata block of `meta_stride_` words, laid out so that all the
  /// mask state an access touches shares one or two adjacent cache lines:
  ///   [0]                      valid bitmask
  ///   [1 + c]                  ways owned by core c (partitions the valid mask)
  ///   [partial_off_ + j]       packed 1-byte partial tags (byte w%8 of word
  ///                            w/8 holds way w's low tag byte) — find_way's filter
  /// Both tags_ and set_meta_ are over-allocated by 64 bytes: the AVX tiers'
  /// kernels load whole 32/64-byte blocks past the scanned range and mask the
  /// overhang away (the padded-buffer contract of src/cache/simd).
  std::vector<WayMask> set_meta_;
  std::uint32_t meta_stride_ = 0;   ///< (1 + num_cores) + ceil(A / 8)
  std::uint32_t partial_off_ = 0;   ///< 1 + num_cores
  std::uint32_t partial_words_ = 0; ///< ceil(A / 8)

  std::vector<WayMask> masks_;          // kWayMasks: per-core eviction masks
  std::vector<std::uint32_t> quotas_;   // kOwnerCounters: per-core way quotas
  CacheStatsBundle stats_;
};

}  // namespace plrupart::cache
