# Static-analysis driver target. `cmake --build build --target tidy` runs
# clang-tidy (with the committed .clang-tidy profile, WarningsAsErrors: '*')
# over every first-party TU in the exported compile_commands.json.
#
# The target only exists when clang-tidy is installed: local boxes without
# LLVM tooling still configure and build everything else; CI's `tidy` job
# installs clang-tidy and fails the build on any finding.

find_program(PLRUPART_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
                                           clang-tidy-16 clang-tidy-15 clang-tidy-14)

find_package(Python3 COMPONENTS Interpreter QUIET)

if(PLRUPART_CLANG_TIDY_EXE AND Python3_Interpreter_FOUND)
  include(ProcessorCount)
  ProcessorCount(PLRUPART_TIDY_JOBS)
  if(PLRUPART_TIDY_JOBS EQUAL 0)
    set(PLRUPART_TIDY_JOBS 1)
  endif()
  add_custom_target(tidy
    COMMAND ${Python3_EXECUTABLE} ${PROJECT_SOURCE_DIR}/tools/lint/run_tidy.py
            --build-dir ${PROJECT_BINARY_DIR}
            --clang-tidy ${PLRUPART_CLANG_TIDY_EXE}
            --jobs ${PLRUPART_TIDY_JOBS}
    WORKING_DIRECTORY ${PROJECT_SOURCE_DIR}
    COMMENT "clang-tidy over first-party translation units"
    VERBATIM
    USES_TERMINAL)
else()
  message(STATUS "plrupart: clang-tidy not found; `tidy` target unavailable")
endif()
