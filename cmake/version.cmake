# Single source of truth for the plrupart semantic version.
#
# Everything else derives from these four values:
#   - project(plrupart VERSION ...) in the top-level CMakeLists
#   - the generated include/plrupart/version.hpp (cmake/version.hpp.in)
#   - the `--version` output of the installed tools
#   - plrupartConfigVersion.cmake and plrupart.pc in the install tree
#
# Version policy (pre-1.0): the MINOR number is the compatibility line.
# Breaking changes to the public headers under include/plrupart/ bump MINOR;
# additive or bugfix-only releases bump PATCH. plrupartConfigVersion.cmake is
# generated with SameMinorVersion to match, and PLRUPART_SOVERSION tracks the
# compatibility line for shared builds.
set(PLRUPART_VERSION_MAJOR 0)
set(PLRUPART_VERSION_MINOR 5)
set(PLRUPART_VERSION_PATCH 0)
set(PLRUPART_VERSION
    "${PLRUPART_VERSION_MAJOR}.${PLRUPART_VERSION_MINOR}.${PLRUPART_VERSION_PATCH}")
set(PLRUPART_SOVERSION "${PLRUPART_VERSION_MAJOR}.${PLRUPART_VERSION_MINOR}")
