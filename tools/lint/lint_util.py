"""Shared helpers for the plrupart project lints.

Each lint is a standalone script (run `python3 tools/lint/<name>.py --help`),
registered as a CTest gate and as a CI step. They report every violation as

    <file>:<line>: <rule>: <message>

and exit 1 if anything fired, 0 on a clean tree. The deliberately-broken
sources under tools/lint/fixtures/ prove each rule actually fires; the
test_lints_fire.py self-test runs them as part of the suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple


class Violation(NamedTuple):
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def report(violations: Iterable[Violation], label: str) -> int:
    """Print violations and return the process exit code."""
    violations = list(violations)
    for v in violations:
        print(v.render())
    if violations:
        print(f"{label}: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"{label}: clean")
    return 0


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string literals, and char literals, preserving
    newlines so line numbers survive. Keeps the lint focused on code: a banned
    token inside a comment or a log message is not a violation."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments only, preserving newlines AND string
    literals. For scanners that must still see quoted text (e.g. the
    #include "..." path scanner)."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def source_files(roots: Iterable[Path], suffixes: Iterable[str] = (".hpp", ".cpp")) -> List[Path]:
    files: List[Path] = []
    for root in roots:
        for suffix in suffixes:
            files.extend(sorted(root.rglob(f"*{suffix}")))
    return files


QUOTE_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
ANGLE_INCLUDE_RE = re.compile(r"^\s*#\s*include\s+<([^>]+)>", re.MULTILINE)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1
