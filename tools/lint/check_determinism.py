#!/usr/bin/env python3
"""Determinism lint.

The reproduction's headline guarantee is byte-identical CSV output for a given
(trace, seed, matrix) at any thread count and shard split. That dies the day a
code path consults wall-clock time, libc/global randomness, or an iteration
order the standard leaves unspecified. This lint bans those constructs from
src/ and include/ outright:

  libc-rand       rand()/srand(): one hidden global stream, not replayable
  wall-clock      time()/clock()/gettimeofday(): wall-clock state in sim code
                  (std::chrono is fine -- it feeds --progress rates on stderr,
                  never simulation state or CSV)
  std-random      std::random_device / engines / distributions: unseeded or
                  implementation-defined sequences; use common/rng.hpp
  unordered-iter  std::unordered_{map,set,multimap,multiset}: iteration order
                  is unspecified and WILL eventually feed a CSV/report loop;
                  use std::map/std::vector or sort before emitting
  atomic-file     raw std::rename/std::remove/std::filesystem::{rename,remove}
                  and fopen in a write mode: output published outside the
                  blessed AtomicFile utility (src/common/atomic_file.hpp) can
                  be left truncated-but-plausible by a crash; route file
                  publication and deletion through AtomicFile

include/plrupart/common/rng.hpp is the one sanctioned randomness source and is
exempt; src/common/atomic_file.{hpp,cpp} is the one sanctioned rename/remove
site and is exempt from the atomic-file rule. A justified exception elsewhere
(e.g. an unordered container that is provably never iterated for output) must
carry the marker comment

    // determinism-lint: allow(<why>)

on the offending line, which this script honors and reports as a notice.
Exit 1 on any unmarked violation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List

from lint_util import (Violation, report, source_files, strip_comments,
                       strip_comments_and_strings)

ALLOW_MARKER = "determinism-lint: allow"

RULES = [
    ("libc-rand", re.compile(r"\bstd::s?rand\b|(?<!_)\bs?rand\s*\("),
     "libc rand()/srand() is a hidden global stream; use common/rng.hpp"),
    ("wall-clock", re.compile(r"(?<!_)\btime\s*\(|\bclock\s*\(\s*\)|\bgettimeofday\b"),
     "wall-clock time in simulation code breaks replay; derive from the sim clock"),
    ("std-random", re.compile(
        r"\bstd::(random_device|mt19937(_64)?|minstd_rand0?|default_random_engine|"
        r"ranlux\w+|knuth_b|(uniform_int|uniform_real|normal|bernoulli|poisson|"
        r"geometric|binomial|exponential|discrete)_distribution)\b"),
     "std <random> engines/distributions are unseeded or implementation-defined; "
     "use common/rng.hpp"),
    ("unordered-iter", re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b"),
     "unordered container iteration order is unspecified and must never feed "
     "CSV/report output; use std::map/std::vector or sort before emitting"),
    ("atomic-file",
     re.compile(r"\bstd::(filesystem::)?(rename|remove|remove_all)\s*\("),
     "raw rename/remove bypasses crash-safe output publication; route file "
     "publication and deletion through AtomicFile (src/common/atomic_file.hpp)"),
]

# Rules that must see string literals (fopen's mode argument lives in one):
# matched against comment-stripped but string-PRESERVING lines.
STRING_RULES = [
    ("atomic-file",
     re.compile(r'\bfopen\s*\([^;]*,\s*"(?:[wa]|r[bt]*\+)[^"]*"'),
     "fopen in a write mode bypasses crash-safe output publication; write "
     "through AtomicFile (src/common/atomic_file.hpp)"),
]

EXEMPT_SUFFIX = "include/plrupart/common/rng.hpp"

# Per-rule sanctioned implementation sites.
RULE_EXEMPT_SUFFIXES = {
    "atomic-file": ("src/common/atomic_file.hpp", "src/common/atomic_file.cpp"),
}


def check_file(path: Path) -> List[Violation]:
    text = path.read_text()
    raw_lines = text.splitlines()
    clean_lines = strip_comments_and_strings(text).splitlines()
    string_lines = strip_comments(text).splitlines()
    violations: List[Violation] = []
    for idx, raw in enumerate(raw_lines):
        for lines, rules in ((clean_lines, RULES), (string_lines, STRING_RULES)):
            line = lines[idx] if idx < len(lines) else ""
            for rule, pattern, message in rules:
                if not pattern.search(line):
                    continue
                if any(str(path).endswith(s)
                       for s in RULE_EXEMPT_SUFFIXES.get(rule, ())):
                    continue
                if ALLOW_MARKER in raw:
                    print(f"{path}:{idx + 1}: notice: {rule} suppressed by allow marker")
                    continue
                violations.append(Violation(path, idx + 1, rule, message))
    return violations


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("roots", nargs="+", type=Path,
                    help="directories to scan (typically src/ and include/)")
    args = ap.parse_args()
    violations: List[Violation] = []
    for path in source_files([r.resolve() for r in args.roots]):
        if str(path).endswith(EXEMPT_SUFFIX):
            continue
        violations += check_file(path)
    return report(violations, "check_determinism")


if __name__ == "__main__":
    sys.exit(main())
