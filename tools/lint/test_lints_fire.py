#!/usr/bin/env python3
"""Self-test: prove every project lint actually fires.

A lint that silently passes on everything is worse than no lint -- it reads
as certification. This script runs each tools/lint/ check against the
deliberately-broken sources in fixtures/ and asserts (a) a failing exit code
and (b) that every expected rule fired on the expected file, plus (c) that the
allow-marker escape hatch suppresses without hiding.

Registered as the `lint_fixtures_fire` CTest gate and run by the CI lint job.

Usage: test_lints_fire.py [--cxx <compiler>]   (compiler enables the
standalone-compile leg of the header lint fixture)
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"

failures = []


def run_lint(script: str, args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(HERE / script), *args], capture_output=True, text=True
    )


def expect(proc: subprocess.CompletedProcess, name: str, substrings: list[str]) -> None:
    out = proc.stdout + proc.stderr
    if proc.returncode == 0:
        failures.append(f"{name}: expected a failing exit code, got 0. Output:\n{out}")
        return
    for s in substrings:
        if s not in out:
            failures.append(f"{name}: expected '{s}' in output. Output:\n{out}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cxx", default="",
                    help="compiler for the standalone-compile fixture leg (empty: skip)")
    args = ap.parse_args()

    det = run_lint("check_determinism.py", [str(FIXTURES)])
    expect(det, "check_determinism", [
        "libc-rand", "wall-clock", "std-random", "unordered-iter", "atomic-file",
        "determinism_violations.cpp",
    ])
    # The allow marker must suppress (not a violation) but stay visible.
    for notice in ["notice: unordered-iter suppressed", "notice: atomic-file suppressed"]:
        if notice not in det.stdout:
            failures.append(f"check_determinism: allow marker notice missing "
                            f"('{notice}'):\n{det.stdout}")
    # Comment/string mentions and read-mode fopen must not fire: exactly 9
    # violations are planted.
    fired = [l for l in det.stdout.splitlines() if ": libc-rand:" in l or
             ": wall-clock:" in l or ": std-random:" in l or
             ": unordered-iter:" in l or ": atomic-file:" in l]
    if len(fired) != 9:
        failures.append(
            f"check_determinism: expected exactly 9 violations, got {len(fired)}:\n"
            + "\n".join(fired))

    hygiene_args = ["--include-dir", str(FIXTURES / "bad_include" / "plrupart"),
                    "--src-dir", str(HERE.parent.parent / "src")]
    if args.cxx:
        hygiene_args += ["--cxx", args.cxx]
    hyg = run_lint("check_public_headers.py", hygiene_args)
    expected_hyg = ["include-path", "common/cli.hpp", "does_not_exist.hpp",
                    "src/-internal"]
    if args.cxx:
        expected_hyg += ["standalone", "not_standalone.hpp"]
    expect(hyg, "check_public_headers", expected_hyg)

    exp = run_lint("check_export_coverage.py",
                   ["--include-dir", str(FIXTURES / "bad_export" / "plrupart")])
    expect(exp, "check_export_coverage", [
        "export-coverage", "MissingExport", "missing_export_function",
    ])
    # The exempt shapes must stay quiet.
    for quiet in ["ExemptTemplate", "ExemptEnum", "ForwardDeclared", "exempt_inline"]:
        if quiet in exp.stdout:
            failures.append(f"check_export_coverage: exempt shape '{quiet}' fired:\n"
                            f"{exp.stdout}")

    if failures:
        print("\n\n".join(failures), file=sys.stderr)
        print(f"test_lints_fire: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("test_lints_fire: all lints fire on their fixtures and stay quiet on "
          "exempt shapes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
