#!/usr/bin/env python3
"""Run clang-tidy over every first-party TU in compile_commands.json.

Usage:
    run_tidy.py --build-dir <dir> [--clang-tidy <exe>] [--jobs N]

Reads <build-dir>/compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is on
by default in this project), keeps only translation units that live under the
repository's first-party directories (include/, src/, tests/, bench/,
examples/), and runs clang-tidy on each with the repo's committed .clang-tidy
profile. Headers are covered via HeaderFilterRegex. Exits non-zero on the
first tool failure after draining all TUs, so one run reports everything.

Third-party sources pulled in by FetchContent (googletest, benchmark) appear
in compile_commands.json too; they are filtered out here rather than silenced
with NOLINT, keeping the committed profile strict.
"""
from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import shutil
import subprocess
import sys

FIRST_PARTY_DIRS = ("include", "src", "tests", "bench", "examples")


def repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent.parent


def first_party_sources(build_dir: pathlib.Path) -> list[pathlib.Path]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        sys.exit(
            f"run_tidy: {db_path} not found — configure with CMake first "
            "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
        )
    root = repo_root()
    roots = tuple((root / d).resolve() for d in FIRST_PARTY_DIRS)
    seen: set[pathlib.Path] = set()
    for entry in json.loads(db_path.read_text()):
        src = pathlib.Path(entry["file"])
        if not src.is_absolute():
            src = pathlib.Path(entry["directory"]) / src
        src = src.resolve()
        if any(src.is_relative_to(r) for r in roots):
            seen.add(src)
    return sorted(seen)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True, type=pathlib.Path)
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("--jobs", type=int, default=1)
    args = ap.parse_args()

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if not tidy:
        sys.exit("run_tidy: clang-tidy not found on PATH (pass --clang-tidy)")

    sources = first_party_sources(args.build_dir)
    if not sources:
        sys.exit("run_tidy: no first-party sources in compile_commands.json")
    print(f"run_tidy: {len(sources)} translation units, jobs={args.jobs}")

    failures = 0

    def run_one(src: pathlib.Path) -> tuple[pathlib.Path, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", str(src)],
            capture_output=True,
            text=True,
        )
        return src, proc.returncode, proc.stdout + proc.stderr

    with concurrent.futures.ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        for src, rc, output in pool.map(run_one, sources):
            rel = src.relative_to(repo_root()) if src.is_relative_to(repo_root()) else src
            if rc != 0:
                failures += 1
                print(f"run_tidy: FAIL {rel}\n{output}", flush=True)
            else:
                print(f"run_tidy: ok   {rel}", flush=True)

    if failures:
        print(f"run_tidy: {failures}/{len(sources)} translation units failed")
        return 1
    print(f"run_tidy: all {len(sources)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
