#!/usr/bin/env python3
"""Public-header hygiene lint (promoted from PR 5's inline CI shell check).

Rules, over every header in include/plrupart/ (plus the generated headers in
the build tree when --gen-include-dir is given):

  include-path   every quote-include must name a "plrupart/..." path that
                 resolves inside the installed include set. Internal src/
                 headers (common/cli.hpp, cache/policy_visit.hpp, ...) are
                 reachable in-tree through the plrupart::internal target only;
                 an installed header that mentions one ships a broken include.
  shadow         no installed header may share its plrupart-relative path with
                 a src/ internal header -- such a pair silently resolves to
                 different files for internal and external builds.
  standalone     every installed header must compile on its own against the
                 installed include set only (-I include dirs, nothing else).
                 Skipped when --cxx is omitted or empty.

Exit 1 on any violation. See tools/lint/lint_util.py for the output format.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List

from lint_util import QUOTE_INCLUDE_RE, Violation, line_of, report, strip_comments


def check_includes(
    headers: List[Path], include_dir: Path, gen_include_dir: Path | None, src_dir: Path | None
) -> List[Violation]:
    violations: List[Violation] = []
    internal_rel = set()
    if src_dir and src_dir.is_dir():
        internal_rel = {str(p.relative_to(src_dir)) for p in src_dir.rglob("*.hpp")}

    for header in headers:
        text = strip_comments(header.read_text())
        for m in QUOTE_INCLUDE_RE.finditer(text):
            inc, line = m.group(1), line_of(text, m.start())
            if not inc.startswith("plrupart/"):
                hint = " (this is a src/-internal header)" if inc in internal_rel else ""
                violations.append(
                    Violation(
                        header,
                        line,
                        "include-path",
                        f'quote-include "{inc}" does not name an installed '
                        f"plrupart/ header{hint}",
                    )
                )
                continue
            candidates = [include_dir.parent / inc]
            if gen_include_dir is not None:
                candidates.append(gen_include_dir / inc)
            if not any(c.is_file() for c in candidates):
                violations.append(
                    Violation(
                        header,
                        line,
                        "include-path",
                        f'quote-include "{inc}" does not resolve inside the '
                        "installed include set",
                    )
                )

    for rel in sorted(internal_rel):
        if (include_dir / rel).is_file():
            violations.append(
                Violation(
                    include_dir / rel,
                    1,
                    "shadow",
                    f"installed header shadows src/-internal header src/{rel}",
                )
            )
    return violations


def check_standalone(
    headers: List[Path], include_dir: Path, gen_include_dir: Path | None, cxx: str
) -> List[Violation]:
    violations: List[Violation] = []
    include_flags = ["-I", str(include_dir.parent)]
    if gen_include_dir is not None:
        include_flags += ["-I", str(gen_include_dir)]
    for header in headers:
        cmd = [
            cxx,
            "-std=c++20",
            "-x",
            "c++-header",
            "-fsyntax-only",
            "-DPLRUPART_STATIC_DEFINE",
            *include_flags,
            str(header),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            lines = proc.stderr.strip().splitlines()
            errors = [l for l in lines if "error" in l]
            detail = (errors or lines or [f"{cxx} exited {proc.returncode}"])[0]
            violations.append(
                Violation(header, 1, "standalone", f"does not compile standalone: {detail}")
            )
    return violations


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--include-dir", type=Path, required=True,
                    help="the checked-in include/plrupart directory")
    ap.add_argument("--gen-include-dir", type=Path, default=None,
                    help="build-tree include dir holding generated plrupart/ headers")
    ap.add_argument("--src-dir", type=Path, default=None,
                    help="src/ directory holding the internal-only headers")
    ap.add_argument("--cxx", default="",
                    help="compiler for the standalone-compile rule (empty: skip)")
    args = ap.parse_args()

    include_dir = args.include_dir.resolve()
    if not include_dir.is_dir() or include_dir.name != "plrupart":
        print(f"--include-dir must point at .../include/plrupart, got {include_dir}",
              file=sys.stderr)
        return 2
    gen_dir = args.gen_include_dir.resolve() if args.gen_include_dir else None

    headers = sorted(include_dir.rglob("*.hpp"))
    if gen_dir is not None:
        headers += sorted((gen_dir / "plrupart").rglob("*.hpp"))
    if not headers:
        print("no headers found", file=sys.stderr)
        return 2

    violations = check_includes(headers, include_dir, gen_dir, args.src_dir)
    if args.cxx:
        violations += check_standalone(headers, include_dir, gen_dir, args.cxx)
    return report(violations, "check_public_headers")


if __name__ == "__main__":
    sys.exit(main())
