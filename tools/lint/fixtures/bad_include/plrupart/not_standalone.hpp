// Deliberately-broken fixture for check_public_headers.py's standalone rule:
// uses std::string without including <string>, so compiling this header on
// its own must fail. (In a real include set another header may paper over the
// missing include by coincidence of inclusion order -- exactly the rot the
// standalone compile catches.)
#pragma once

namespace plrupart {
inline std::string not_standalone_fixture() { return "broken"; }
}  // namespace plrupart
