// Deliberately-broken fixture for check_public_headers.py's include-path
// rule: an "installed" header reaching into the src/-internal header set and
// into a non-existent plrupart/ path. Never compiled.
#pragma once

#include "common/cli.hpp"               // include-path: src/-internal header
#include "plrupart/does_not_exist.hpp"  // include-path: unresolvable

namespace plrupart {
inline int bad_hygiene_fixture() { return 0; }
}  // namespace plrupart
