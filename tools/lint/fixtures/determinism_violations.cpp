// Deliberately-broken fixture for check_determinism.py: every rule must fire
// on this file, and the allow-marker line must be reported as a notice, not a
// violation. Never compiled; exists so test_lints_fire.py can prove the lint
// bites.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <random>
#include <string>
#include <unordered_map>

namespace fixture {

// NOTE: a banned token in a comment must NOT fire: rand(), time(), and
// std::unordered_map are fine right here.
inline int comment_only_mentions_are_fine() { return 0; }

inline unsigned libc_rand_violation() {
  return static_cast<unsigned>(rand());  // libc-rand
}

inline void libc_srand_violation() { srand(42); }  // libc-rand

inline long wall_clock_violation() { return time(nullptr); }  // wall-clock

inline unsigned std_random_violation() {
  std::mt19937 gen(std::random_device{}());  // std-random (twice)
  std::uniform_int_distribution<unsigned> dist(0, 10);  // std-random
  return dist(gen);
}

inline std::unordered_map<int, int> unordered_iter_violation() {  // unordered-iter
  return {};
}

// Marked exception: reported as a notice, does not fail the lint.
inline std::size_t allowed_use(
    const std::unordered_map<std::string, int>& index,  // determinism-lint: allow(count only, never iterated)
    const std::string& key) {
  return index.count(key);
}

inline int string_mentions_are_fine() {
  return static_cast<int>(std::string("call rand() at time()").size());
}

inline void raw_rename_violation() {
  std::rename("sweep.csv.tmp", "sweep.csv");  // atomic-file
}

inline bool raw_remove_violation(const std::filesystem::path& p) {
  return std::filesystem::remove(p);  // atomic-file
}

inline std::FILE* fopen_write_violation() {
  return std::fopen("out.csv", "wb");  // atomic-file
}

// Read-only fopen must NOT fire: only write/append/update modes are banned.
inline std::FILE* fopen_read_only_is_fine() { return std::fopen("in.trace", "rb"); }

// Marked exception: best-effort cleanup in a catch block must not throw.
inline void allowed_cleanup(const std::filesystem::path& p) {
  std::error_code ec;
  std::filesystem::remove(p, ec);  // determinism-lint: allow(best-effort, may not throw)
}

}  // namespace fixture
