// Deliberately-broken fixture for check_export_coverage.py: a namespace-scope
// class definition and a free-function prototype, both destined for .cpp
// definitions, with no PLRUPART_EXPORT. Exempt shapes (template, enum,
// forward declaration, inline function) ride along to prove they stay quiet.
#pragma once

#include <cstdint>

namespace plrupart::fixture {

class ForwardDeclared;  // exempt: forward declaration

enum class ExemptEnum : std::uint8_t { kA, kB };  // exempt: enum

template <typename T>
class ExemptTemplate {  // exempt: template
 public:
  T value{};
};

inline int exempt_inline() { return 1; }  // exempt: header-defined

class MissingExport {  // export-coverage: must fire
 public:
  explicit MissingExport(std::uint32_t ways);
  [[nodiscard]] std::uint32_t ways() const;

 private:
  std::uint32_t ways_;
};

[[nodiscard]] std::uint64_t missing_export_function(std::uint64_t x);  // export-coverage: must fire

}  // namespace plrupart::fixture
