#!/usr/bin/env python3
"""Export-coverage lint.

libplrupart builds with default-hidden symbol visibility; a class or free
function that is declared in an installed header and defined in a .cpp is
unusable from the shared library unless the declaration carries
PLRUPART_EXPORT. The repo convention (PR 5) is stricter and simpler to check:
*every* namespace-scope class/struct definition in an installed header carries
PLRUPART_EXPORT (header-only ones included -- it is a no-op for them and keeps
the rule mechanical), and every namespace-scope non-inline, non-template free
function declaration does too.

Exempt by construction: templates (instantiated in the consumer), enums,
forward declarations, `inline`/`constexpr`/`consteval` functions (defined in
the header), and everything nested inside a class (covered by the class's own
export attribute).

Exit 1 on any violation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Tuple

from lint_util import Violation, report, strip_comments_and_strings

FUNCTION_EXEMPT_RE = re.compile(
    r"\b(inline|constexpr|consteval|template|friend|typedef|operator\s*\"\")\b"
)
NOT_A_FUNCTION_RE = re.compile(r"^\s*(using|typedef|static_assert|extern\s+\"C\")\b")
CLASS_RE = re.compile(r"^\s*(?:\[\[[^\]]*\]\]\s*)*(class|struct)\b")


def blank_preprocessor_lines(text: str) -> str:
    return "\n".join(
        "" if line.lstrip().startswith("#") else line for line in text.splitlines()
    )


def namespace_scope_statements(text: str) -> List[Tuple[int, str, str]]:
    """Split `text` into (line, statement, opener) triples for statements at
    namespace scope. `opener` is ';' for declarations and '{' for definitions
    whose body was skipped (class bodies, inline function bodies)."""
    statements: List[Tuple[int, str, str]] = []
    scope_stack: List[str] = []  # "ns" | "type" | "other" per open brace
    buf: List[str] = []
    line = 1
    stmt_line = 1
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
        at_ns_scope = all(kind == "ns" for kind in scope_stack)
        if c == "{":
            stmt = " ".join("".join(buf).split())
            if at_ns_scope:
                if stmt:
                    statements.append((stmt_line, stmt, "{"))
                if re.search(r"\bnamespace\b", stmt) or stmt == "extern \"C\"":
                    scope_stack.append("ns")
                elif re.search(r"\b(class|struct|union|enum)\b", stmt):
                    scope_stack.append("type")
                else:
                    scope_stack.append("other")
            else:
                scope_stack.append("other")
            buf = []
            stmt_line = line
        elif c == "}":
            if scope_stack:
                scope_stack.pop()
            buf = []
            stmt_line = line
        elif c == ";":
            if at_ns_scope:
                stmt = " ".join("".join(buf).split())
                if stmt:
                    statements.append((stmt_line, stmt, ";"))
            buf = []
            stmt_line = line
        else:
            if not buf:
                if c.isspace():
                    i += 1
                    continue
                stmt_line = line
            buf.append(c)
        i += 1
    return statements


def check_header(header: Path) -> List[Violation]:
    text = blank_preprocessor_lines(strip_comments_and_strings(header.read_text()))
    violations: List[Violation] = []
    for line, stmt, opener in namespace_scope_statements(text):
        if "PLRUPART_EXPORT" in stmt or "template" in stmt.split():
            continue
        if opener == "{":
            # Definitions: only class/struct bodies need the attribute; inline
            # function bodies and enum definitions are header-complete.
            if CLASS_RE.match(stmt) and not re.search(r"\benum\b", stmt):
                violations.append(
                    Violation(header, line, "export-coverage",
                              f"class/struct definition lacks PLRUPART_EXPORT: '{stmt}'"))
            continue
        # Declarations ending in ';'.
        if CLASS_RE.match(stmt) and "(" not in stmt:
            continue  # forward declaration: the definition carries the export
        if re.search(r"\benum\b", stmt) or NOT_A_FUNCTION_RE.match(stmt):
            continue
        if "(" in stmt and stmt.endswith(")") or "(" in stmt and ")" in stmt:
            if FUNCTION_EXEMPT_RE.search(stmt):
                continue
            # Prototype at namespace scope with a .cpp definition somewhere.
            violations.append(
                Violation(header, line, "export-coverage",
                          f"free-function declaration lacks PLRUPART_EXPORT: '{stmt}'"))
    return violations


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--include-dir", type=Path, required=True,
                    help="the checked-in include/plrupart directory")
    args = ap.parse_args()
    include_dir = args.include_dir.resolve()
    if not include_dir.is_dir():
        print(f"not a directory: {include_dir}", file=sys.stderr)
        return 2
    violations: List[Violation] = []
    for header in sorted(include_dir.rglob("*.hpp")):
        violations += check_header(header)
    return report(violations, "check_export_coverage")


if __name__ == "__main__":
    sys.exit(main())
