// Stack Distance Histogram: register semantics, miss-curve identity, decay.
#include "plrupart/core/sdh.hpp"

#include <gtest/gtest.h>

namespace plrupart::core {
namespace {

TEST(Sdh, PaperFigure2MissArithmetic) {
  // Fig. 2(c): with 2 ways the thread suffers r3 + r4 + r5 misses.
  Sdh sdh(4);
  const std::uint64_t r[5] = {7, 5, 3, 2, 9};  // r1..r4 + miss register r5
  for (std::uint32_t d = 1; d <= 4; ++d)
    for (std::uint64_t i = 0; i < r[d - 1]; ++i) sdh.record_hit(d);
  for (std::uint64_t i = 0; i < r[4]; ++i) sdh.record_miss();

  EXPECT_EQ(sdh.misses_with_ways(2), r[2] + r[3] + r[4]);
  EXPECT_EQ(sdh.hits_with_ways(2), r[0] + r[1]);
  EXPECT_EQ(sdh.misses_with_ways(0), sdh.total());
  EXPECT_EQ(sdh.misses_with_ways(4), r[4]);
  EXPECT_EQ(sdh.hits_with_ways(4) + sdh.misses_with_ways(4), sdh.total());
}

TEST(Sdh, RegistersAreOneIndexed) {
  Sdh sdh(4);
  sdh.record_hit(1);
  sdh.record_hit(4);
  sdh.record_miss();
  EXPECT_EQ(sdh.reg(1), 1ULL);
  EXPECT_EQ(sdh.reg(4), 1ULL);
  EXPECT_EQ(sdh.reg(5), 1ULL);  // the A+1 miss register
  EXPECT_EQ(sdh.reg(2), 0ULL);
}

TEST(Sdh, RejectsOutOfRangeDistances) {
  Sdh sdh(4);
  EXPECT_THROW(sdh.record_hit(0), InvariantError);
  EXPECT_THROW(sdh.record_hit(5), InvariantError);
  EXPECT_THROW((void)sdh.reg(0), InvariantError);
  EXPECT_THROW((void)sdh.reg(6), InvariantError);
  EXPECT_THROW((void)sdh.misses_with_ways(5), InvariantError);
}

TEST(Sdh, DecayHalvesEveryRegister) {
  Sdh sdh(2);
  for (int i = 0; i < 9; ++i) sdh.record_hit(1);
  for (int i = 0; i < 4; ++i) sdh.record_hit(2);
  for (int i = 0; i < 3; ++i) sdh.record_miss();
  sdh.decay_halve();
  EXPECT_EQ(sdh.reg(1), 4ULL);
  EXPECT_EQ(sdh.reg(2), 2ULL);
  EXPECT_EQ(sdh.reg(3), 1ULL);
}

TEST(Sdh, MissCurveIsMonotoneNonIncreasing) {
  Sdh sdh(8);
  for (std::uint32_t d = 1; d <= 8; ++d)
    for (std::uint32_t i = 0; i < d * 3; ++i) sdh.record_hit(d);
  for (int i = 0; i < 11; ++i) sdh.record_miss();
  for (std::uint32_t w = 0; w < 8; ++w) {
    EXPECT_GE(sdh.misses_with_ways(w), sdh.misses_with_ways(w + 1));
  }
}

TEST(Sdh, ClearZeroesEverything) {
  Sdh sdh(4);
  sdh.record_hit(2);
  sdh.record_miss();
  sdh.clear();
  EXPECT_EQ(sdh.total(), 0ULL);
}

}  // namespace
}  // namespace plrupart::core
