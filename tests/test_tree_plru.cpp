// Binary-tree pseudo-LRU: promotion/victim duality, the ID-decoder profiling
// estimate (paper Fig. 4), force-vector enforcement (paper Fig. 5) and its
// equivalence with mask-guided traversal.
#include "plrupart/cache/tree_plru.hpp"

#include <gtest/gtest.h>

#include "plrupart/common/rng.hpp"

namespace plrupart::cache {
namespace {

Geometry small_geo(std::uint32_t ways, std::uint64_t sets = 4) {
  return Geometry{.size_bytes = sets * ways * 64, .associativity = ways, .line_bytes = 64};
}

TEST(TreePlru, FreshStateVictimIsWayZero) {
  TreePlru bt(small_geo(4));
  EXPECT_EQ(bt.choose_victim(0, bt.all_ways()), 0U);
}

TEST(TreePlru, PromotedLineBecomesMru) {
  TreePlru bt(small_geo(8));
  for (std::uint32_t w = 0; w < 8; ++w) {
    bt.on_hit(0, w, bt.all_ways());
    const auto est = bt.estimate_position(0, w);
    EXPECT_EQ(est.point, 1U) << "way " << w << " must estimate as MRU";
    EXPECT_NE(bt.choose_victim(0, bt.all_ways()), w)
        << "freshly promoted line must not be the victim";
  }
}

TEST(TreePlru, VictimEstimatesAsLru) {
  TreePlru bt(small_geo(16));
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    bt.on_hit(0, static_cast<std::uint32_t>(rng.next_below(16)), bt.all_ways());
    const auto victim = bt.choose_victim(0, bt.all_ways());
    const auto est = bt.estimate_position(0, victim);
    ASSERT_EQ(est.point, 16U) << "the traversal victim is the estimate's LRU";
  }
}

TEST(TreePlru, PaperFig4aVictimAfterFill) {
  // Fig. 4(a): victim A (way 0) is replaced by E and promoted to MRU: both
  // path bits flip to point away from it; the next victim is in the lower
  // half.
  TreePlru bt(small_geo(4));
  const auto victim = bt.choose_victim(0, bt.all_ways());
  EXPECT_EQ(victim, 0U);
  bt.on_fill(0, victim, bt.all_ways());
  EXPECT_EQ(bt.estimate_position(0, 0).point, 1U);
  const auto next = bt.choose_victim(0, bt.all_ways());
  EXPECT_GE(next, 2U) << "next victim must come from the other subtree";
}

TEST(TreePlru, IdBitsAreTheWayNumberDecoder) {
  // Paper Fig. 4(c): for a 4-way cache, ID0 = W1 and ID1 = W0 — i.e. the ID
  // bits, packed root-first, spell the way number.
  TreePlru bt(small_geo(4));
  EXPECT_EQ(bt.id_bits(0), 0U);
  EXPECT_EQ(bt.id_bits(1), 1U);  // W0=1, W1=0 -> ID0=0, ID1=1
  EXPECT_EQ(bt.id_bits(3), 3U);  // line D: ID = 11
}

TEST(TreePlru, PaperFig4bEstimate) {
  // Reconstruct the Fig. 4(b) state: way-3 path bits 10, ID 11, XOR 01 = 1,
  // estimated position 4 - 1 = 3.
  TreePlru bt(small_geo(4));
  // Promote D (way 3): its path becomes 00. Then promote B (way 1): root
  // stays pointing at the lower half? Work with explicit states instead:
  // promote way 0 -> root=1 (MRU upper), node1=1.
  bt.on_hit(0, 0, bt.all_ways());
  // Way 3's path: root (1) then node2 (0): bits "10"; ID(3) = 11; XOR = 01.
  EXPECT_EQ(bt.path_bits(0, 3), 0b10U);
  EXPECT_EQ(bt.estimate_position(0, 3).point, 3U);
}

TEST(TreePlru, EstimateAlwaysWithinStack) {
  TreePlru bt(small_geo(16, 2));
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const auto set = rng.next_below(2);
    const auto way = static_cast<std::uint32_t>(rng.next_below(16));
    const auto est = bt.estimate_position(set, way);
    ASSERT_GE(est.point, 1U);
    ASSERT_LE(est.point, 16U);
    ASSERT_EQ(est.lo, est.hi) << "BT profiling produces a point estimate";
    bt.on_hit(set, way, bt.all_ways());
  }
}

TEST(TreePlru, EstimatesAreAPermutationPerSet) {
  // The XOR construction maps the A ways to A distinct estimated positions:
  // path bits differ between sibling subtrees at the deepest divergence.
  TreePlru bt(small_geo(8));
  Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    bt.on_hit(0, static_cast<std::uint32_t>(rng.next_below(8)), bt.all_ways());
    std::uint32_t seen = 0;
    for (std::uint32_t w = 0; w < 8; ++w) {
      const auto p = bt.estimate_position(0, w).point;
      ASSERT_GE(p, 1U);
      ASSERT_LE(p, 8U);
      seen |= (1U << (p - 1));
    }
    ASSERT_EQ(seen, 0xFFU) << "positions 1..8 must all appear exactly once";
  }
}

TEST(TreePlru, MaskGuidedVictimStaysInMask) {
  TreePlru bt(small_geo(16));
  Rng rng(23);
  for (int i = 0; i < 3000; ++i) {
    bt.on_hit(0, static_cast<std::uint32_t>(rng.next_below(16)), bt.all_ways());
    const WayMask allowed = rng.next_below(full_way_mask(16)) + 1;
    const auto victim = bt.choose_victim(0, allowed);
    ASSERT_TRUE(mask_test(allowed, victim));
  }
}

// --- Force vectors (paper Fig. 5) ------------------------------------------

TEST(TreePlru, DeriveForceVectorsForAlignedBlocks) {
  TreePlru bt(small_geo(16));
  // Upper half: force level 0 up.
  auto fv = bt.derive_force_vectors(way_range_mask(0, 8));
  ASSERT_TRUE(fv.has_value());
  EXPECT_TRUE(fv->forces_up(0));
  EXPECT_FALSE(fv->forces_down(0));
  EXPECT_EQ(bt.reachable_ways(*fv), way_range_mask(0, 8));

  // Third quarter (ways 8..11): down at root, up at level 1.
  fv = bt.derive_force_vectors(way_range_mask(8, 4));
  ASSERT_TRUE(fv.has_value());
  EXPECT_TRUE(fv->forces_down(0));
  EXPECT_TRUE(fv->forces_up(1));
  EXPECT_EQ(bt.reachable_ways(*fv), way_range_mask(8, 4));

  // Single way 13 = 0b1101: down, down, up, down.
  fv = bt.derive_force_vectors(way_range_mask(13, 1));
  ASSERT_TRUE(fv.has_value());
  EXPECT_EQ(bt.reachable_ways(*fv), way_range_mask(13, 1));
}

TEST(TreePlru, DeriveForceVectorsRejectsInexpressibleMasks) {
  TreePlru bt(small_geo(16));
  EXPECT_FALSE(bt.derive_force_vectors(way_range_mask(0, 3)).has_value());  // not pow2
  EXPECT_FALSE(bt.derive_force_vectors(way_range_mask(2, 4)).has_value());  // misaligned
  EXPECT_FALSE(bt.derive_force_vectors(0b101).has_value());                 // not contiguous
  EXPECT_FALSE(bt.derive_force_vectors(0).has_value());
}

TEST(TreePlru, VectorsAndMaskGuidedTraversalAgree) {
  // On any aligned power-of-two block, the paper's up/down enforcement and
  // the library's mask-guided traversal pick the same victim.
  TreePlru bt(small_geo(16));
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    bt.on_hit(0, static_cast<std::uint32_t>(rng.next_below(16)), bt.all_ways());
    const std::uint32_t size = 1U << rng.next_below(5);             // 1..16
    const std::uint32_t first =
        static_cast<std::uint32_t>(rng.next_below(16 / size)) * size;
    const WayMask block = way_range_mask(first, size);
    const auto fv = bt.derive_force_vectors(block);
    ASSERT_TRUE(fv.has_value());
    ASSERT_EQ(bt.choose_victim(0, block), bt.choose_victim_with_vectors(0, *fv));
  }
}

TEST(TreePlru, Fig5TruthTable) {
  // up=1 overwrites the BT decision with "search upper", down=1 with "search
  // lower", both-zero follows the stored bit.
  TreePlru bt(small_geo(4));
  bt.on_hit(0, 0, bt.all_ways());  // root bit now sends victims to the lower half
  EXPECT_GE(bt.choose_victim_with_vectors(0, ForceVectors{}), 2U);
  EXPECT_LT(bt.choose_victim_with_vectors(0, ForceVectors{.up = 1, .down = 0}), 2U);
  EXPECT_GE(bt.choose_victim_with_vectors(0, ForceVectors{.up = 0, .down = 1}), 2U);
  EXPECT_THROW(
      (void)bt.choose_victim_with_vectors(0, ForceVectors{.up = 1, .down = 1}),
      InvariantError);
}

TEST(TreePlru, ResetClearsTreeBits) {
  TreePlru bt(small_geo(8));
  bt.on_hit(0, 5, bt.all_ways());
  bt.reset();
  EXPECT_EQ(bt.choose_victim(0, bt.all_ways()), 0U);
  for (std::uint32_t w = 0; w < 8; ++w) EXPECT_EQ(bt.path_bits(0, w) , 0U);
}

}  // namespace
}  // namespace plrupart::cache
