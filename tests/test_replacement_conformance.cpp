// Parameterized conformance suite: every replacement policy must satisfy the
// contract SetAssocCache relies on, across geometries.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "plrupart/cache/replacement.hpp"
#include "plrupart/common/rng.hpp"

namespace plrupart::cache {
namespace {

using Param = std::tuple<ReplacementKind, std::uint32_t /*ways*/, std::uint64_t /*sets*/>;

class ReplacementConformance : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [kind, ways, sets] = GetParam();
    geo_ = Geometry{.size_bytes = sets * ways * 64,
                    .associativity = ways,
                    .line_bytes = 64};
    policy_ = make_policy(kind, geo_, /*seed=*/77);
  }

  Geometry geo_{};
  std::unique_ptr<ReplacementPolicy> policy_;
};

TEST_P(ReplacementConformance, ReportsItsKindAndShape) {
  EXPECT_EQ(policy_->kind(), std::get<0>(GetParam()));
  EXPECT_EQ(policy_->ways(), geo_.associativity);
  EXPECT_EQ(policy_->sets(), geo_.sets());
}

TEST_P(ReplacementConformance, VictimAlwaysInsideAllowedMask) {
  Rng rng(123);
  for (int i = 0; i < 4000; ++i) {
    const auto set = rng.next_below(geo_.sets());
    const WayMask allowed =
        rng.next_below(full_way_mask(geo_.associativity)) + 1;
    const auto victim = policy_->choose_victim(set, allowed);
    ASSERT_LT(victim, geo_.associativity);
    ASSERT_TRUE(mask_test(allowed, victim));
  }
}

TEST_P(ReplacementConformance, SingletonMaskForcesTheWay) {
  Rng rng(5);
  for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
    const auto set = rng.next_below(geo_.sets());
    EXPECT_EQ(policy_->choose_victim(set, WayMask{1} << w), w);
  }
}

TEST_P(ReplacementConformance, EstimateWithinStackBounds) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto set = rng.next_below(geo_.sets());
    const auto way = static_cast<std::uint32_t>(rng.next_below(geo_.associativity));
    const auto est = policy_->estimate_position(set, way);
    ASSERT_GE(est.lo, 1U);
    ASSERT_LE(est.hi, geo_.associativity);
    ASSERT_LE(est.lo, est.hi);
    ASSERT_GE(est.point, est.lo);
    ASSERT_LE(est.point, est.hi);
    if (rng.next_bool(0.5))
      policy_->on_hit(set, way, policy_->all_ways());
    else
      policy_->on_fill(set, way, policy_->all_ways());
  }
}

TEST_P(ReplacementConformance, DeterministicAcrossInstances) {
  auto other = make_policy(std::get<0>(GetParam()), geo_, /*seed=*/77);
  Rng ops(321);
  for (int i = 0; i < 3000; ++i) {
    const auto set = ops.next_below(geo_.sets());
    if (ops.next_bool(0.6)) {
      const auto way = static_cast<std::uint32_t>(ops.next_below(geo_.associativity));
      policy_->on_hit(set, way, policy_->all_ways());
      other->on_hit(set, way, other->all_ways());
    } else {
      const WayMask allowed = ops.next_below(full_way_mask(geo_.associativity)) + 1;
      ASSERT_EQ(policy_->choose_victim(set, allowed), other->choose_victim(set, allowed));
    }
  }
}

TEST_P(ReplacementConformance, ResetRestoresDeterminism) {
  Rng warm(55);
  for (int i = 0; i < 500; ++i) {
    policy_->on_hit(warm.next_below(geo_.sets()),
                    static_cast<std::uint32_t>(warm.next_below(geo_.associativity)),
                    policy_->all_ways());
  }
  policy_->reset();
  auto fresh = make_policy(std::get<0>(GetParam()), geo_, /*seed=*/77);
  Rng ops(66);
  for (int i = 0; i < 1000; ++i) {
    const auto set = ops.next_below(geo_.sets());
    const WayMask allowed = ops.next_below(full_way_mask(geo_.associativity)) + 1;
    ASSERT_EQ(policy_->choose_victim(set, allowed), fresh->choose_victim(set, allowed));
    const auto way = static_cast<std::uint32_t>(ops.next_below(geo_.associativity));
    policy_->on_fill(set, way, policy_->all_ways());
    fresh->on_fill(set, way, fresh->all_ways());
  }
}

TEST_P(ReplacementConformance, EmptyMaskIsRejected) {
  EXPECT_THROW((void)policy_->choose_victim(0, WayMask{0}), InvariantError);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return to_string(std::get<0>(info.param)) + "_w" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndShapes, ReplacementConformance,
    ::testing::Combine(::testing::Values(ReplacementKind::kLru, ReplacementKind::kNru,
                                         ReplacementKind::kTreePlru,
                                         ReplacementKind::kRandom,
                                         ReplacementKind::kSrrip),
                       ::testing::Values(2U, 4U, 16U),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{64})),
    param_name);

}  // namespace
}  // namespace plrupart::cache
