// Timed simulation mode: the decision-match gate and the MSHR/writeback/DRAM
// edge cases.
//
// The load-bearing contract of the timed overlay is that it changes cycle
// accounting and NOTHING else: the L2 sees the exact same access stream as
// the functional replay, so the interval controller takes identical partition
// decisions at identical tick positions in both modes, for every
// configuration and workload. DecisionMatchGate pins that — the CI `timed`
// job runs this suite as the gate.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/sim/timed_memory.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

namespace plrupart::sim {
namespace {

using workloads::benchmark;
using workloads::make_trace;

SimConfig small_config(const std::vector<std::string>& names, const char* acronym,
                       TimingMode mode, std::uint64_t instr = 30'000,
                       std::uint64_t warmup = 8'000) {
  SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      acronym, static_cast<std::uint32_t>(names.size()),
      cache::Geometry{.size_bytes = 256 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.interval_cycles = 25'000;
  cfg.hierarchy.l2.sampling_ratio = 8;
  cfg.instr_limit = instr;
  cfg.warmup_instr = warmup;
  cfg.timing_mode = mode;
  for (const auto& name : names) cfg.cores.push_back(benchmark(name).core);
  return cfg;
}

std::vector<std::unique_ptr<TraceSource>> traces_for(
    const std::vector<std::string>& names, std::uint64_t seed = 7) {
  std::vector<std::unique_ptr<TraceSource>> traces;
  for (std::uint32_t i = 0; i < names.size(); ++i)
    traces.push_back(make_trace(benchmark(names[i]), i, seed));
  return traces;
}

/// Run one config in `mode` and return (result, controller history).
std::pair<SimResult, std::vector<core::RepartitionEvent>> run_with_history(
    const std::vector<std::string>& names, const char* acronym, TimingMode mode,
    const SimConfig* override_cfg = nullptr) {
  SimConfig cfg = override_cfg ? *override_cfg : small_config(names, acronym, mode);
  CmpSimulator sim(std::move(cfg), traces_for(names));
  SimResult result = sim.run();
  const auto* ctrl = sim.hierarchy().l2().controller();
  std::vector<core::RepartitionEvent> history;
  if (ctrl != nullptr) history = ctrl->history();
  return {std::move(result), std::move(history)};
}

/// The gate: every repartition decision — position AND chosen allocation —
/// must be identical between the modes, and so must every functional-side
/// counter (same stream ⇒ same hit/miss record).
void expect_decisions_match(const std::vector<std::string>& names, const char* acronym) {
  const auto [functional, fh] =
      run_with_history(names, acronym, TimingMode::kFunctional);
  const auto [timed, th] = run_with_history(names, acronym, TimingMode::kTimed);
  const std::string ctx = std::string(acronym) + " (" + names[0] + "+...)";

  ASSERT_EQ(fh.size(), th.size()) << ctx << ": repartition count diverged";
  for (std::size_t i = 0; i < fh.size(); ++i) {
    EXPECT_EQ(fh[i].cycle, th[i].cycle) << ctx << ": decision " << i << " tick";
    EXPECT_EQ(fh[i].partition, th[i].partition)
        << ctx << ": decision " << i << " allocation";
  }
  EXPECT_EQ(functional.repartitions, timed.repartitions) << ctx;

  ASSERT_EQ(functional.threads.size(), timed.threads.size()) << ctx;
  for (std::size_t i = 0; i < functional.threads.size(); ++i) {
    const auto& f = functional.threads[i];
    const auto& t = timed.threads[i];
    EXPECT_EQ(f.instructions, t.instructions) << ctx << " core " << i;
    EXPECT_EQ(f.mem.l1_accesses, t.mem.l1_accesses) << ctx << " core " << i;
    EXPECT_EQ(f.mem.l1_misses, t.mem.l1_misses) << ctx << " core " << i;
    EXPECT_EQ(f.mem.l2_accesses, t.mem.l2_accesses) << ctx << " core " << i;
    EXPECT_EQ(f.mem.l2_misses, t.mem.l2_misses) << ctx << " core " << i;
  }
  EXPECT_EQ(timed.timing, TimingMode::kTimed) << ctx;
  EXPECT_EQ(timed.sim_shards, 1u) << ctx;
}

TEST(TimedSim, DecisionMatchGateAllConfigsTwoWorkloads) {
  // Every acronym the project knows — partitioned (decision histories compared
  // entry by entry) and unpartitioned (histories empty in both modes, counters
  // still compared) — across two distinct workloads.
  const std::vector<std::vector<std::string>> mixes{{"twolf", "art"}, {"mcf", "gzip"}};
  for (const auto& names : mixes) {
    for (const auto& acronym : core::CpaConfig::known_acronyms()) {
      expect_decisions_match(names, acronym.c_str());
    }
  }
}

TEST(TimedSim, DecisionMatchFourCores) {
  expect_decisions_match({"twolf", "art", "mcf", "gzip"}, "M-BT");
}

TEST(TimedSim, ZeroLatencyDegenerateStillMatchesFunctionalDecisions) {
  // All latencies zero: every fill completes on its issue tick. The overlay
  // charges nothing, yet the decision stream must STILL be identical — the
  // gate is about stream identity, not about latency magnitude.
  const std::vector<std::string> names{"twolf", "art"};
  SimConfig zero = small_config(names, "M-0.75N", TimingMode::kTimed);
  zero.timed.l2_hit_cycles = 0;
  zero.timed.l2_miss_to_dram_cycles = 0;
  zero.timed.t_row_hit = 0;
  zero.timed.t_row_miss = 0;
  zero.timed.t_row_conflict = 0;

  const auto [functional, fh] =
      run_with_history(names, "M-0.75N", TimingMode::kFunctional);
  const auto [timed, th] =
      run_with_history(names, "M-0.75N", TimingMode::kTimed, &zero);
  ASSERT_EQ(fh.size(), th.size());
  for (std::size_t i = 0; i < fh.size(); ++i) {
    EXPECT_EQ(fh[i].cycle, th[i].cycle);
    EXPECT_EQ(fh[i].partition, th[i].partition);
  }
  for (std::size_t i = 0; i < functional.threads.size(); ++i) {
    EXPECT_EQ(functional.threads[i].mem.l2_misses, timed.threads[i].mem.l2_misses);
  }
  // With zero memory latency a thread can only be FASTER than functional mode
  // (which still charges its fixed penalties).
  for (std::size_t i = 0; i < timed.threads.size(); ++i) {
    EXPECT_LE(timed.threads[i].cycles, functional.threads[i].cycles);
  }
}

TEST(TimedSim, TimedIgnoresSimThreadsAndStaysDeterministic) {
  const std::vector<std::string> names{"twolf", "art"};
  SimConfig a = small_config(names, "M-BT", TimingMode::kTimed);
  SimConfig b = a;
  b.sim_threads = 8;  // must silently run serial with identical results
  CmpSimulator sim_a(std::move(a), traces_for(names));
  CmpSimulator sim_b(std::move(b), traces_for(names));
  const SimResult ra = sim_a.run();
  const SimResult rb = sim_b.run();
  EXPECT_EQ(rb.sim_shards, 1u);
  ASSERT_EQ(ra.threads.size(), rb.threads.size());
  for (std::size_t i = 0; i < ra.threads.size(); ++i) {
    EXPECT_EQ(ra.threads[i].cycles, rb.threads[i].cycles);
    EXPECT_EQ(ra.threads[i].ipc, rb.threads[i].ipc);
  }
  EXPECT_EQ(ra.timed.dram_reads, rb.timed.dram_reads);
  EXPECT_EQ(ra.timed.dram_bytes, rb.timed.dram_bytes);
  EXPECT_EQ(ra.timed.bank_conflicts, rb.timed.bank_conflicts);
}

TEST(TimedSim, TimedCountersAreCoherent) {
  const std::vector<std::string> names{"mcf", "art"};
  SimConfig cfg = small_config(names, "M-L", TimingMode::kTimed);
  CmpSimulator sim(std::move(cfg), traces_for(names));
  const SimResult r = sim.run();
  EXPECT_EQ(r.timing, TimingMode::kTimed);
  EXPECT_GT(r.timed.dram_reads, 0u);
  EXPECT_GT(r.timed.dram_bytes, 0u);
  EXPECT_GE(r.timed.mshr_peak, 1u);
  EXPECT_LE(r.timed.mshr_peak, SimConfig{}.timed.mshrs);
  // Every DRAM service resolves to exactly one row-buffer outcome.
  EXPECT_GT(r.timed.row_hits + r.timed.row_misses + r.timed.bank_conflicts, 0u);
  EXPECT_GT(r.wall_cycles, 0.0);
}

// ---------------------------------------------------------------------------
// TimedMemory unit tests: MSHR-full stall, coalescing, writeback backpressure.
// A tiny one-set geometry (512 B, 4-way, 128 B lines) makes dirty-victim
// bookkeeping trivially addressable: every line maps to set 0.
// ---------------------------------------------------------------------------

cache::Geometry one_set_geo() {
  return cache::Geometry{.size_bytes = 512, .associativity = 4, .line_bytes = 128};
}

TEST(TimedMemory, MshrFullStallBlocksUntilAFillFrees) {
  TimedParams p;
  p.mshrs = 2;
  TimedMemory mem(p, one_set_geo());

  const auto t1 = mem.miss(0, 0x100, 0, false, false, 0);
  const auto t2 = mem.miss(0, 0x200, 1, false, false, 0);
  ASSERT_TRUE(t1.valid && t2.valid);
  EXPECT_EQ(mem.mshrs_pending(), 2u);
  EXPECT_EQ(mem.stats().mshr_full_stalls, 0u);

  // Third distinct-line miss at the same tick: the file is full, so the issue
  // must stall until one of the in-flight fills completes.
  const auto t3 = mem.miss(0, 0x300, 2, false, false, 0);
  ASSERT_TRUE(t3.valid);
  EXPECT_EQ(mem.stats().mshr_full_stalls, 1u);
  EXPECT_LE(mem.mshrs_pending(), 2u);
  EXPECT_EQ(mem.stats().mshr_peak, 2u);

  (void)mem.retire(t1);
  (void)mem.retire(t2);
  const std::uint64_t done3 = mem.retire(t3);
  EXPECT_GT(done3, 0u);
  EXPECT_EQ(mem.mshrs_pending(), 0u);
  EXPECT_EQ(mem.stats().dram_reads, 3u);
}

TEST(TimedMemory, SameLineMissCoalescesIntoThePendingFill) {
  TimedMemory mem(TimedParams{}, one_set_geo());
  const auto a = mem.miss(0, 0x100, 0, false, false, 0);
  // The functional cache evicted and re-missed the same line inside the fill
  // window (or another core missed it): one DRAM read, two waiters.
  const auto b = mem.miss(1, 0x100, 0, false, false, 0);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(mem.stats().mshr_coalesced, 1u);
  EXPECT_EQ(mem.stats().dram_reads, 1u);
  EXPECT_EQ(mem.mshrs_pending(), 1u);

  const std::uint64_t done_a = mem.retire(a);
  const std::uint64_t done_b = mem.retire(b);
  EXPECT_EQ(done_a, done_b);  // both waiters see the same fill
}

TEST(TimedMemory, HitOnLineWithFillInFlightReturnsTheFillTicket) {
  TimedMemory mem(TimedParams{}, one_set_geo());
  const auto fill = mem.miss(0, 0x100, 0, false, false, 0);
  // Functionally this is an L2 hit (the line installed instantly), but the
  // timed fill has not arrived: the "hit" must wait on the MSHR.
  const auto hit = mem.hit(1, 0x100, 0, false);
  ASSERT_TRUE(hit.valid);
  EXPECT_EQ(hit.slot, fill.slot);
  EXPECT_EQ(mem.stats().mshr_coalesced, 1u);
  (void)mem.retire(fill);
  (void)mem.retire(hit);

  // After the fill lands, hits on the line are plain hits: invalid ticket.
  const auto late = mem.hit(100'000, 0x100, 0, false);
  EXPECT_FALSE(late.valid);
}

TEST(TimedMemory, DirtyVictimWritebackAndQueueBackpressure) {
  TimedParams p;
  p.writeback_queue = 1;
  TimedMemory mem(p, one_set_geo());

  // Dirty two ways of set 0 with write misses, waiting each fill out.
  auto w0 = mem.miss(0, 0x100, 0, true, false, 0);
  auto w1 = mem.miss(0, 0x200, 1, true, false, 0);
  (void)mem.retire(w0);
  (void)mem.retire(w1);
  EXPECT_EQ(mem.stats().dram_writebacks, 0u);

  // Evicting the dirty line in way 0 enqueues a writeback.
  const std::uint64_t t = 10'000;
  auto e0 = mem.miss(t, 0x300, 0, false, true, 0x100);
  EXPECT_EQ(mem.stats().dram_writebacks, 1u);
  EXPECT_EQ(mem.writebacks_in_flight(), 1u);

  // Evicting the second dirty line immediately after: the 1-deep writeback
  // queue is still occupied, so the miss must stall until it drains.
  auto e1 = mem.miss(t + 1, 0x400, 1, false, true, 0x200);
  EXPECT_EQ(mem.stats().wb_full_stalls, 1u);
  EXPECT_EQ(mem.stats().dram_writebacks, 2u);

  (void)mem.retire(e0);
  (void)mem.retire(e1);
  mem.drain();
  EXPECT_EQ(mem.writebacks_in_flight(), 0u);
  // A clean victim (way 2 was never written) produces no writeback.
  auto e2 = mem.miss(50'000, 0x500, 2, false, true, 0x180);
  (void)mem.retire(e2);
  EXPECT_EQ(mem.stats().dram_writebacks, 2u);
}

TEST(TimedMemory, ZeroLatencyFillsCompleteOnTheIssueTick) {
  TimedParams p;
  p.l2_miss_to_dram_cycles = 0;
  p.t_row_hit = 0;
  p.t_row_miss = 0;
  p.t_row_conflict = 0;
  TimedMemory mem(p, one_set_geo());
  const auto tk = mem.miss(42, 0x100, 0, false, false, 0);
  EXPECT_EQ(mem.retire(tk), 42u);
}

TEST(TimedMemory, RowBufferOutcomesFollowTheOpenRow) {
  TimedParams p;
  p.dram_banks = 1;
  p.row_bytes = 256;  // 2 lines per row
  TimedMemory mem(p, one_set_geo());

  // Lines 0 and 1 share row 0; line 2 lives in row 1 (single bank).
  auto a = mem.miss(0, 0, 0, false, false, 0);
  (void)mem.retire(a);
  EXPECT_EQ(mem.stats().row_misses, 1u);  // cold bank
  auto b = mem.miss(1'000, 1, 1, false, false, 0);
  (void)mem.retire(b);
  EXPECT_EQ(mem.stats().row_hits, 1u);  // same row still open
  auto c = mem.miss(2'000, 2, 2, false, false, 0);
  (void)mem.retire(c);
  EXPECT_EQ(mem.stats().bank_conflicts, 1u);  // different row: precharge first
}

TEST(TimedMemory, ValidateRejectsDegenerateParams) {
  TimedParams p;
  p.mshrs = 0;
  EXPECT_THROW(p.validate(), InvariantError);
  p = TimedParams{};
  p.dram_banks = 0;
  EXPECT_THROW(p.validate(), InvariantError);
  p = TimedParams{};
  p.writeback_queue = 0;
  EXPECT_THROW(p.validate(), InvariantError);
}

TEST(TimedMemory, TimingModeStringsRoundTrip) {
  EXPECT_EQ(to_string(TimingMode::kFunctional), "functional");
  EXPECT_EQ(to_string(TimingMode::kTimed), "timed");
  EXPECT_EQ(timing_mode_from_string("functional"), TimingMode::kFunctional);
  EXPECT_EQ(timing_mode_from_string("timed"), TimingMode::kTimed);
  EXPECT_THROW((void)timing_mode_from_string("cycle-accurate"), InvariantError);
}

}  // namespace
}  // namespace plrupart::sim
