# CTest script: install the already-built tree into a scratch prefix and
# require the resulting file set to match tests/support/install_manifest.txt
# EXACTLY. A new public header, a leaked internal (src/-only) header, a
# renamed tool, or a dropped package file all fail here until the manifest is
# deliberately updated alongside the change.
#
# Manifest placeholders: @BINDIR@, @LIBDIR@, @INCLUDEDIR@ (GNUInstallDirs
# values) and @CONFIG@ (lower-case build configuration). The library file
# entries are computed, not listed: libplrupart.a for static builds;
# libplrupart.so + .so.<soversion> + .so.<version> for shared ones.
cmake_minimum_required(VERSION 3.20)  # script mode: enables IN_LIST et al.

foreach(var BUILD_DIR MANIFEST WORK_DIR INSTALL_BINDIR INSTALL_LIBDIR
            INSTALL_INCLUDEDIR LIB_VERSION LIB_SOVERSION BUILD_CONFIG)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "install_manifest.cmake: missing -D${var}=")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
set(prefix "${WORK_DIR}/prefix")
execute_process(
  COMMAND ${CMAKE_COMMAND} --install "${BUILD_DIR}" --prefix "${prefix}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE install_out
  ERROR_VARIABLE install_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cmake --install failed (${rc}):\n${install_out}")
endif()

# ---- expected set -----------------------------------------------------------
file(STRINGS "${MANIFEST}" manifest_lines)
set(expected "")
foreach(line IN LISTS manifest_lines)
  if(line STREQUAL "" OR line MATCHES "^#")
    continue()
  endif()
  string(REPLACE "@BINDIR@" "${INSTALL_BINDIR}" line "${line}")
  string(REPLACE "@LIBDIR@" "${INSTALL_LIBDIR}" line "${line}")
  string(REPLACE "@INCLUDEDIR@" "${INSTALL_INCLUDEDIR}" line "${line}")
  string(REPLACE "@CONFIG@" "${BUILD_CONFIG}" line "${line}")
  list(APPEND expected "${line}")
endforeach()
if(BUILD_SHARED_LIBS)
  list(APPEND expected
       "${INSTALL_LIBDIR}/libplrupart.so"
       "${INSTALL_LIBDIR}/libplrupart.so.${LIB_SOVERSION}"
       "${INSTALL_LIBDIR}/libplrupart.so.${LIB_VERSION}")
else()
  list(APPEND expected "${INSTALL_LIBDIR}/libplrupart.a")
endif()

# ---- actual set -------------------------------------------------------------
file(GLOB_RECURSE actual LIST_DIRECTORIES false RELATIVE "${prefix}" "${prefix}/*")

list(SORT expected)
list(SORT actual)
list(REMOVE_DUPLICATES expected)

set(missing "")
foreach(f IN LISTS expected)
  if(NOT f IN_LIST actual)
    list(APPEND missing "${f}")
  endif()
endforeach()
set(unexpected "")
foreach(f IN LISTS actual)
  if(NOT f IN_LIST expected)
    list(APPEND unexpected "${f}")
  endif()
endforeach()

if(missing OR unexpected)
  string(REPLACE ";" "\n  " missing_str "${missing}")
  string(REPLACE ";" "\n  " unexpected_str "${unexpected}")
  message(FATAL_ERROR "installed file set differs from tests/support/"
          "install_manifest.txt\nmissing from install:\n  ${missing_str}\n"
          "not in manifest:\n  ${unexpected_str}\n"
          "If this change is intentional, update the manifest.")
endif()

list(LENGTH actual n)
message(STATUS "install manifest exact: ${n} files match (ok)")
