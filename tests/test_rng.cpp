#include "plrupart/common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace plrupart {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(13), 13U);
  }
  EXPECT_EQ(r.next_below(1), 0U);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[r.next_below(8)];
  for (int bucket = 0; bucket < 8; ++bucket) {
    // 1000 expected per bucket; allow generous slack.
    EXPECT_GT(seen[static_cast<std::size_t>(bucket)], 700) << "bucket " << bucket;
    EXPECT_LT(seen[static_cast<std::size_t>(bucket)], 1300) << "bucket " << bucket;
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(5, 9);
    EXPECT_GE(v, 5U);
    EXPECT_LE(v, 9U);
  }
  EXPECT_EQ(r.next_in(4, 4), 4U);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(99);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng r(5);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
  Rng r2(5);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r2.next_bool(0.0));
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  const auto s0 = derive_seed(123, 0);
  const auto s1 = derive_seed(123, 1);
  const auto s0_again = derive_seed(123, 0);
  EXPECT_EQ(s0, s0_again);
  EXPECT_NE(s0, s1);
  EXPECT_NE(derive_seed(124, 0), s0);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression pin: the seeding path must never silently change, or every
  // simulation in the repo changes results.
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace plrupart
