// Profiler correctness: the LRU profiler is exact against a full-trace
// oracle; the NRU/BT estimated-SDH profilers obey the paper's update rules.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "plrupart/common/rng.hpp"
#include "plrupart/core/profiler.hpp"

namespace plrupart::core {
namespace {

cache::Geometry small_l2() {
  // 32 sets x 4 ways x 64B.
  return cache::Geometry{.size_bytes = 8192, .associativity = 4, .line_bytes = 64};
}

cache::Addr line_in_set(const cache::Geometry& g, std::uint64_t set, std::uint64_t tag) {
  return (tag << ilog2_exact(g.sets())) | set;
}

/// Oracle: exact per-set LRU stacks over the full (sampled) trace.
class StackOracle {
 public:
  explicit StackOracle(std::uint32_t assoc) : assoc_(assoc), sdh_(assoc) {}

  void access(std::uint64_t set, std::uint64_t tag) {
    auto& stack = stacks_[set];
    std::uint32_t depth = 1;
    for (auto it = stack.begin(); it != stack.end(); ++it, ++depth) {
      if (*it == tag) {
        if (depth <= assoc_)
          sdh_.record_hit(depth);
        else
          sdh_.record_miss();
        stack.erase(it);
        stack.push_front(tag);
        return;
      }
    }
    sdh_.record_miss();
    stack.push_front(tag);
    if (stack.size() > assoc_) stack.pop_back();  // bounded directory
  }

  [[nodiscard]] const Sdh& sdh() const { return sdh_; }

 private:
  std::uint32_t assoc_;
  std::map<std::uint64_t, std::deque<std::uint64_t>> stacks_;
  Sdh sdh_;
};

TEST(LruProfiler, ExactAgainstOracleOnRandomTrace) {
  const auto g = small_l2();
  LruProfiler prof(g, /*sampling_ratio=*/4);
  StackOracle oracle(g.associativity);
  Rng rng(2718);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t set = rng.next_below(g.sets());
    const std::uint64_t tag = rng.next_below(10);
    const cache::Addr line = line_in_set(g, set, tag);
    prof.record_access(line);
    if (prof.atd().is_sampled(line)) oracle.access(set, tag);
  }
  for (std::uint32_t i = 1; i <= g.associativity + 1; ++i) {
    EXPECT_EQ(prof.sdh().reg(i), oracle.sdh().reg(i)) << "register r" << i;
  }
}

TEST(LruProfiler, MissCurvePredictsIsolatedMissesExactly) {
  // Cyclic access to 3 distinct lines in a 4-way set: after warmup every
  // access hits at distance 3.
  const auto g = small_l2();
  LruProfiler prof(g, 1);
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t t = 0; t < 3; ++t)
      prof.record_access(line_in_set(g, 0, t));
  const auto curve = prof.curve();
  EXPECT_DOUBLE_EQ(curve.misses(3), 3.0);  // only the 3 cold misses
  EXPECT_DOUBLE_EQ(curve.misses(2), 30.0); // 2 ways: everything misses
}

// --- NRU profiler -----------------------------------------------------------

TEST(NruProfiler, Fig3ScenarioScaleOne) {
  // 4-way set with lines {A,B,C,D} resident and C, D recently used. A new
  // access to D has U=2: per the paper, "we increase both SDH registers r1
  // and r2, assuming the stack distance to be 2".
  const auto g = small_l2();
  NruProfiler prof(g, 1, /*scale=*/1.0);
  for (std::uint64_t t = 0; t < 4; ++t) prof.record_access(line_in_set(g, 0, t));
  // Fill saturation left only tag 3 used; touch tag 2 then tag 3.
  prof.record_access(line_in_set(g, 0, 2));
  const auto r1_before = prof.sdh().reg(1);
  const auto r2_before = prof.sdh().reg(2);
  const auto r3_before = prof.sdh().reg(3);
  prof.record_access(line_in_set(g, 0, 3));  // used bit already 1, U = 2
  EXPECT_EQ(prof.sdh().reg(1), r1_before + 1);
  EXPECT_EQ(prof.sdh().reg(2), r2_before + 1);
  EXPECT_EQ(prof.sdh().reg(3), r3_before) << "nothing beyond the scaled endpoint";
}

TEST(NruProfiler, PointModeRecordsOnlyTheEndpoint) {
  const auto g = small_l2();
  NruProfiler prof(g, 1, 1.0, NruUpdateMode::kPoint);
  for (std::uint64_t t = 0; t < 4; ++t) prof.record_access(line_in_set(g, 0, t));
  prof.record_access(line_in_set(g, 0, 2));
  prof.record_access(line_in_set(g, 0, 3));  // U = 2
  EXPECT_EQ(prof.sdh().reg(1), 0ULL);
  EXPECT_EQ(prof.sdh().reg(2), 1ULL);
}

TEST(NruProfiler, ScalingFactorsRoundUp) {
  // With U = 2: S=0.75 -> ceil(1.5) = 2; S=0.5 -> ceil(1.0) = 1.
  const auto g = small_l2();
  for (const auto& [scale, expected_reg] :
       std::vector<std::pair<double, std::uint32_t>>{{0.75, 2U}, {0.5, 1U}}) {
    NruProfiler prof(g, 1, scale);
    for (std::uint64_t t = 0; t < 4; ++t) prof.record_access(line_in_set(g, 0, t));
    prof.record_access(line_in_set(g, 0, 2));
    prof.record_access(line_in_set(g, 0, 3));
    EXPECT_EQ(prof.sdh().reg(expected_reg), 1ULL) << "S=" << scale;
  }
}

TEST(NruProfiler, UnusedBitHitRecordsNothingByDefault) {
  // Fill 4 lines (saturation leaves only tag 3 used), touch tags 0 and 1,
  // then hit tag 2 whose used bit is 0: the paper records nothing.
  const auto g = small_l2();
  NruProfiler prof(g, 1, 1.0);
  for (std::uint64_t t = 0; t < 4; ++t) prof.record_access(line_in_set(g, 0, t));
  prof.record_access(line_in_set(g, 0, 0));
  prof.record_access(line_in_set(g, 0, 1));
  const auto total_before = prof.sdh().total();
  prof.record_access(line_in_set(g, 0, 2));  // used bit 0
  EXPECT_EQ(prof.sdh().total(), total_before);
}

TEST(NruProfiler, RecordUnusedAblationRecordsAssociativity) {
  const auto g = small_l2();
  NruProfiler prof(g, 1, 1.0, NruUpdateMode::kPointRecordUnused);
  for (std::uint64_t t = 0; t < 4; ++t) prof.record_access(line_in_set(g, 0, t));
  prof.record_access(line_in_set(g, 0, 0));
  prof.record_access(line_in_set(g, 0, 1));
  const auto r4_before = prof.sdh().reg(4);
  prof.record_access(line_in_set(g, 0, 2));
  EXPECT_EQ(prof.sdh().reg(4), r4_before + 1);
}

TEST(NruProfiler, AtdMissGoesToMissRegister) {
  const auto g = small_l2();
  NruProfiler prof(g, 1, 0.75);
  for (std::uint64_t t = 0; t < 6; ++t) prof.record_access(line_in_set(g, 0, t));
  EXPECT_EQ(prof.sdh().reg(g.associativity + 1), 6ULL) << "all cold accesses miss";
}

TEST(NruProfiler, SmearModeSpreadsFractionalWeight) {
  const auto g = small_l2();
  NruProfiler prof(g, 1, 1.0, NruUpdateMode::kSmear);
  for (std::uint64_t t = 0; t < 4; ++t) prof.record_access(line_in_set(g, 0, t));
  prof.record_access(line_in_set(g, 0, 2));
  prof.record_access(line_in_set(g, 0, 3));  // hit with U=2: +0.5 to d=1 and d=2
  const auto curve = prof.curve();
  // Mass at distance 2: 0.5 from the used-bit hit (U=2) plus 1/3 from the
  // earlier unused-bit hit smeared over [2,4]. misses(1) counts it, misses(2)
  // does not.
  EXPECT_GT(curve.misses(1), curve.misses(2));
  EXPECT_NEAR(curve.misses(1) - curve.misses(2), 0.5 + 1.0 / 3.0, 1e-9);
}

TEST(NruProfiler, RejectsBadScale) {
  EXPECT_THROW(NruProfiler(small_l2(), 1, 0.0), InvariantError);
  EXPECT_THROW(NruProfiler(small_l2(), 1, 1.5), InvariantError);
}

// --- BT profiler ------------------------------------------------------------

TEST(BtProfiler, ImmediateReReferenceRecordsMru) {
  const auto g = small_l2();
  BtProfiler prof(g, 1);
  prof.record_access(line_in_set(g, 0, 7));
  prof.record_access(line_in_set(g, 0, 7));
  EXPECT_EQ(prof.sdh().reg(1), 1ULL);
}

TEST(BtProfiler, EstimatesStayWithinStack) {
  const auto g = small_l2();
  BtProfiler prof(g, 1);
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    prof.record_access(line_in_set(g, rng.next_below(g.sets()), rng.next_below(6)));
  }
  std::uint64_t hits = 0;
  for (std::uint32_t d = 1; d <= g.associativity; ++d) hits += prof.sdh().reg(d);
  EXPECT_GT(hits, 0ULL);
  EXPECT_EQ(hits + prof.sdh().reg(g.associativity + 1), prof.sdh().total());
}

TEST(BtProfiler, AlternatingPairEstimatesDistanceTwo) {
  // X, Y, X, Y... in a 4-way set. The two lines fill adjacent ways (invalid
  // ways are taken in order), sharing the deepest tree node: the XOR estimate
  // then reproduces the true LRU stack distance of 2 on every re-reference.
  const auto g = small_l2();
  BtProfiler prof(g, 1);
  for (int i = 0; i < 10; ++i) {
    prof.record_access(line_in_set(g, 0, 0));
    prof.record_access(line_in_set(g, 0, 1));
  }
  EXPECT_EQ(prof.sdh().reg(2), 18ULL);
  EXPECT_EQ(prof.sdh().reg(4), 0ULL);
}

// --- Factory ----------------------------------------------------------------

TEST(ProfilerFactory, AutoMatchesReplacement) {
  const auto g = small_l2();
  const auto lru = make_profiler(ProfilerKind::kAuto, cache::ReplacementKind::kLru, g, 1,
                                 1.0, NruUpdateMode::kPoint, 1);
  EXPECT_EQ(lru->name(), "SDH-LRU");
  const auto nru = make_profiler(ProfilerKind::kAuto, cache::ReplacementKind::kNru, g, 1,
                                 0.75, NruUpdateMode::kPoint, 1);
  EXPECT_EQ(nru->name(), "eSDH-NRU(S=0.75)");
  const auto bt = make_profiler(ProfilerKind::kAuto, cache::ReplacementKind::kTreePlru, g,
                                1, 1.0, NruUpdateMode::kPoint, 1);
  EXPECT_EQ(bt->name(), "eSDH-BT");
}

TEST(ProfilerFactory, ExplicitOverrideIgnoresReplacement) {
  const auto g = small_l2();
  const auto p = make_profiler(ProfilerKind::kLruExact, cache::ReplacementKind::kNru, g, 1,
                               1.0, NruUpdateMode::kPoint, 1);
  EXPECT_EQ(p->name(), "SDH-LRU");
}

TEST(Profiler, DecayHalvesSdh) {
  const auto g = small_l2();
  LruProfiler prof(g, 1);
  for (int i = 0; i < 8; ++i) prof.record_access(line_in_set(g, 0, 0));
  EXPECT_EQ(prof.sdh().reg(1), 7ULL);
  prof.decay();
  EXPECT_EQ(prof.sdh().reg(1), 3ULL);
}

}  // namespace
}  // namespace plrupart::core
