// Partition enforcement: way masks and owner counters. The central invariant
// (paper §II-B): a thread may HIT anywhere but may only EVICT within its
// assigned ways/quota.
#include <gtest/gtest.h>

#include "plrupart/cache/cache.hpp"
#include "plrupart/common/rng.hpp"

namespace plrupart::cache {
namespace {

Geometry tiny() {
  return Geometry{.size_bytes = 2048, .associativity = 8, .line_bytes = 64};
}

Addr addr_of(const Geometry& g, std::uint64_t set, std::uint64_t tag) {
  return ((tag << ilog2_exact(g.sets())) | set) * g.line_bytes;
}

class WayMaskEnforcement : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(WayMaskEnforcement, MissesOnlyFillAssignedWays) {
  const auto g = tiny();
  SetAssocCache c(g, GetParam(), 2, EnforcementMode::kWayMasks, 3);
  c.set_way_mask(0, way_range_mask(0, 3));
  c.set_way_mask(1, way_range_mask(3, 5));
  Rng rng(9);
  for (int i = 0; i < 8000; ++i) {
    const CoreId core = rng.next_bool(0.5) ? 1U : 0U;
    const Addr a = addr_of(g, rng.next_below(g.sets()), rng.next_below(32));
    const auto out = c.access(core, a, false);
    if (!out.hit) {
      ASSERT_TRUE(mask_test(c.way_mask(core), out.way))
          << to_string(GetParam()) << ": core " << core << " filled way " << out.way;
    }
  }
}

TEST_P(WayMaskEnforcement, HitsAllowedOutsideOwnMask) {
  const auto g = tiny();
  SetAssocCache c(g, GetParam(), 2, EnforcementMode::kWayMasks, 3);
  c.set_way_mask(0, way_range_mask(0, 4));
  c.set_way_mask(1, way_range_mask(4, 4));
  const Addr a = addr_of(g, 0, 7);
  const auto fill = c.access(0, a, false);
  ASSERT_FALSE(fill.hit);
  ASSERT_LT(fill.way, 4U);
  // Core 1 touches the same line: must hit in core 0's territory.
  const auto hit = c.access(1, a, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.way, fill.way);
}

TEST_P(WayMaskEnforcement, RepartitioningTakesEffectForNewMisses) {
  const auto g = tiny();
  SetAssocCache c(g, GetParam(), 2, EnforcementMode::kWayMasks, 3);
  c.set_way_mask(0, way_range_mask(0, 4));
  c.set_way_mask(1, way_range_mask(4, 4));
  c.access(0, addr_of(g, 0, 1), false);
  // Shrink core 0 to a single way.
  c.set_way_mask(0, way_range_mask(0, 1));
  c.set_way_mask(1, way_range_mask(1, 7));
  for (std::uint64_t t = 10; t < 20; ++t) {
    const auto out = c.access(0, addr_of(g, 0, t), false);
    if (!out.hit) {
      ASSERT_EQ(out.way, 0U);
    }
  }
}

std::string enforcement_param_name(
    const ::testing::TestParamInfo<ReplacementKind>& param_info) {
  return to_string(param_info.param);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WayMaskEnforcement,
                         ::testing::Values(ReplacementKind::kLru, ReplacementKind::kNru,
                                           ReplacementKind::kTreePlru,
                                           ReplacementKind::kRandom,
                                           ReplacementKind::kSrrip),
                         enforcement_param_name);

TEST(WayMasks, RejectEmptyMaskAndWrongMode) {
  SetAssocCache masked(tiny(), ReplacementKind::kLru, 2, EnforcementMode::kWayMasks);
  EXPECT_THROW(masked.set_way_mask(0, 0), InvariantError);
  SetAssocCache counters(tiny(), ReplacementKind::kLru, 2, EnforcementMode::kOwnerCounters);
  EXPECT_THROW(counters.set_way_mask(0, 1), InvariantError);
  EXPECT_THROW(masked.set_way_quota(0, 4), InvariantError);
}

// --- Owner counters (paper §II-B.1) ----------------------------------------

TEST(OwnerCounters, CountsNeverExceedTheSet) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 2, EnforcementMode::kOwnerCounters);
  c.set_way_quota(0, 5);
  c.set_way_quota(1, 3);
  Rng rng(17);
  for (int i = 0; i < 6000; ++i) {
    const CoreId core = rng.next_bool(0.5) ? 1U : 0U;
    c.access(core, addr_of(g, rng.next_below(g.sets()), rng.next_below(24)), false);
    if (i % 100 == 0) {
      for (std::uint64_t s = 0; s < g.sets(); ++s) {
        ASSERT_LE(c.owned_in_set(s, 0) + c.owned_in_set(s, 1), g.associativity);
      }
    }
  }
}

TEST(OwnerCounters, QuotasConvergeToSteadyState) {
  // Two cores hammer the same sets with disjoint data; with quotas 6/2 the
  // per-set occupancy must settle at (or around) the quota split.
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 2, EnforcementMode::kOwnerCounters);
  c.set_way_quota(0, 6);
  c.set_way_quota(1, 2);
  Rng rng(3);
  for (int i = 0; i < 40000; ++i) {
    const CoreId core = rng.next_bool(0.5) ? 1U : 0U;
    const std::uint64_t tag = (core == 0 ? 100 : 200) + rng.next_below(16);
    c.access(core, addr_of(g, rng.next_below(g.sets()), tag), false);
  }
  for (std::uint64_t s = 0; s < g.sets(); ++s) {
    EXPECT_LE(c.owned_in_set(s, 1), 3U) << "core 1 exceeded its 2-way quota in set " << s;
    EXPECT_GE(c.owned_in_set(s, 0), 5U) << "core 0 starved below its 6-way quota in set " << s;
  }
}

TEST(OwnerCounters, UnderQuotaCoreStealsFromOthers) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 2, EnforcementMode::kOwnerCounters);
  c.set_way_quota(0, 4);
  c.set_way_quota(1, 4);
  // Core 0 fills the whole set.
  for (std::uint64_t t = 0; t < 8; ++t) c.access(0, addr_of(g, 0, t), false);
  EXPECT_EQ(c.owned_in_set(0, 0), 8U);
  // Core 1's first miss must evict a core-0 line (it is under quota).
  const auto out = c.access(1, addr_of(g, 0, 50), false);
  ASSERT_TRUE(out.evicted_valid);
  EXPECT_EQ(out.evicted_owner, 0U);
  EXPECT_EQ(c.owned_in_set(0, 1), 1U);
  EXPECT_EQ(c.owned_in_set(0, 0), 7U);
}

TEST(OwnerCounters, AtQuotaCoreEvictsItself) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 2, EnforcementMode::kOwnerCounters);
  c.set_way_quota(0, 4);
  c.set_way_quota(1, 4);
  for (std::uint64_t t = 0; t < 4; ++t) c.access(0, addr_of(g, 0, t), false);
  for (std::uint64_t t = 10; t < 14; ++t) c.access(1, addr_of(g, 0, t), false);
  // Core 1 is exactly at quota: its next miss evicts one of its own lines.
  const auto out = c.access(1, addr_of(g, 0, 99), false);
  ASSERT_TRUE(out.evicted_valid);
  EXPECT_EQ(out.evicted_owner, 1U);
  EXPECT_EQ(c.owned_in_set(0, 1), 4U);
}

TEST(OwnerCounters, InvalidateDecrementsCounters) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 2, EnforcementMode::kOwnerCounters);
  c.set_way_quota(0, 4);
  c.set_way_quota(1, 4);
  c.access(0, addr_of(g, 0, 1), false);
  EXPECT_EQ(c.owned_in_set(0, 0), 1U);
  c.invalidate(addr_of(g, 0, 1));
  EXPECT_EQ(c.owned_in_set(0, 0), 0U);
}

}  // namespace
}  // namespace plrupart::cache
