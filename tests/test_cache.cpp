// SetAssocCache behavior: hits, misses, fills, eviction bookkeeping, stats.
#include "plrupart/cache/cache.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "plrupart/common/rng.hpp"

namespace plrupart::cache {
namespace {

Geometry tiny() {
  // 4 sets x 4 ways x 64B lines.
  return Geometry{.size_bytes = 1024, .associativity = 4, .line_bytes = 64};
}

Addr addr_of(const Geometry& g, std::uint64_t set, std::uint64_t tag) {
  return ((tag << ilog2_exact(g.sets())) | set) * g.line_bytes;
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(tiny(), ReplacementKind::kLru, 1, EnforcementMode::kNone);
  const auto first = c.access(0, 0x100, false);
  EXPECT_FALSE(first.hit);
  EXPECT_FALSE(first.evicted_valid);
  const auto second = c.access(0, 0x100, false);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.way, first.way);
  EXPECT_EQ(c.stats().per_core[0].accesses, 2ULL);
  EXPECT_EQ(c.stats().per_core[0].hits, 1ULL);
  EXPECT_EQ(c.stats().per_core[0].misses, 1ULL);
}

TEST(Cache, SameLineDifferentByteOffsetsHit) {
  SetAssocCache c(tiny(), ReplacementKind::kLru, 1, EnforcementMode::kNone);
  c.access(0, 0x100, false);
  EXPECT_TRUE(c.access(0, 0x13F, false).hit);  // same 64B line
  EXPECT_FALSE(c.access(0, 0x140, false).hit); // next line
}

TEST(Cache, FillsAllWaysBeforeEvicting) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  std::set<std::uint32_t> ways;
  for (std::uint64_t t = 0; t < 4; ++t) {
    const auto out = c.access(0, addr_of(g, 0, t), false);
    EXPECT_FALSE(out.hit);
    EXPECT_FALSE(out.evicted_valid) << "no eviction while invalid ways remain";
    ways.insert(out.way);
  }
  EXPECT_EQ(ways.size(), 4U);
  // Fifth distinct tag evicts the LRU line (tag 0).
  const auto out = c.access(0, addr_of(g, 0, 4), false);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.evicted_valid);
  EXPECT_EQ(g.set_index(out.evicted_line), 0ULL);
  EXPECT_EQ(g.tag(out.evicted_line), 0ULL);
  EXPECT_FALSE(c.access(0, addr_of(g, 0, 0), false).hit) << "evicted line is gone";
}

TEST(Cache, EvictedLineAddressRoundTrips) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = rng.next_below(1 << 20) * g.line_bytes;
    const auto out = c.access(0, a, false);
    if (out.evicted_valid) {
      // The evicted line must have lived in the same set as the new one.
      ASSERT_EQ(g.set_index(out.evicted_line), g.set_index(g.line_addr(a)));
      ASSERT_FALSE(c.probe(out.evicted_line * g.line_bytes).hit);
    }
  }
}

TEST(Cache, ProbeDoesNotMutate) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  c.access(0, addr_of(g, 1, 1), false);
  const auto s0 = c.stats().per_core[0];
  EXPECT_TRUE(c.probe(addr_of(g, 1, 1)).hit);
  EXPECT_FALSE(c.probe(addr_of(g, 1, 2)).hit);
  EXPECT_EQ(c.stats().per_core[0].accesses, s0.accesses) << "probe must not count";
}

TEST(Cache, InvalidateRemovesLine) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  c.access(0, addr_of(g, 2, 3), false);
  EXPECT_TRUE(c.invalidate(addr_of(g, 2, 3)));
  EXPECT_FALSE(c.probe(addr_of(g, 2, 3)).hit);
  EXPECT_FALSE(c.invalidate(addr_of(g, 2, 3))) << "double invalidate is a no-op";
}

TEST(Cache, WriteStatsTracked) {
  SetAssocCache c(tiny(), ReplacementKind::kLru, 1, EnforcementMode::kNone);
  c.access(0, 0x0, true);
  c.access(0, 0x0, false);
  c.access(0, 0x0, true);
  EXPECT_EQ(c.stats().per_core[0].writes, 2ULL);
}

TEST(Cache, PerCoreStatsSeparated) {
  SetAssocCache c(tiny(), ReplacementKind::kLru, 2, EnforcementMode::kNone);
  c.access(0, 0x0, false);
  c.access(1, 0x0, false);  // same line: core 1 hits what core 0 fetched
  EXPECT_EQ(c.stats().per_core[0].misses, 1ULL);
  EXPECT_EQ(c.stats().per_core[1].hits, 1ULL);
  const auto total = c.stats().total();
  EXPECT_EQ(total.accesses, 2ULL);
  EXPECT_EQ(total.hits, 1ULL);
}

TEST(Cache, CrossAndSelfEvictionsAttributed) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 2, EnforcementMode::kNone);
  // Core 0 fills set 0 completely.
  for (std::uint64_t t = 0; t < 4; ++t) c.access(0, addr_of(g, 0, t), false);
  // Core 1 misses into the same set: evicts core 0's line.
  c.access(1, addr_of(g, 0, 10), false);
  EXPECT_EQ(c.stats().per_core[1].cross_evictions, 1ULL);
  EXPECT_EQ(c.stats().per_core[1].self_evictions, 0ULL);
  // Core 0 misses again: with LRU the victim is its own oldest line.
  c.access(0, addr_of(g, 0, 11), false);
  EXPECT_EQ(c.stats().per_core[0].self_evictions, 1ULL);
}

TEST(Cache, LruReplacementOrderObserved) {
  const auto g = tiny();
  SetAssocCache c(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  for (std::uint64_t t = 0; t < 4; ++t) c.access(0, addr_of(g, 0, t), false);
  c.access(0, addr_of(g, 0, 0), false);  // refresh tag 0 -> tag 1 is now LRU
  const auto out = c.access(0, addr_of(g, 0, 9), false);
  EXPECT_TRUE(out.evicted_valid);
  EXPECT_EQ(g.tag(out.evicted_line), 1ULL);
}

TEST(Cache, ResetClearsEverything) {
  SetAssocCache c(tiny(), ReplacementKind::kNru, 1, EnforcementMode::kNone);
  c.access(0, 0x0, false);
  c.reset();
  EXPECT_EQ(c.stats().per_core[0].accesses, 0ULL);
  EXPECT_FALSE(c.probe(0x0).hit);
}

TEST(Cache, DistinctReplacementKindsDiverge) {
  // Drive identical conflict-heavy streams through LRU and Random caches;
  // they must disagree somewhere in their miss totals.
  const auto g = tiny();
  SetAssocCache lru(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  SetAssocCache rnd(g, ReplacementKind::kRandom, 1, EnforcementMode::kNone, 7);
  Rng rng(1);
  for (int i = 0; i < 4000; ++i) {
    const Addr a = addr_of(g, rng.next_below(4), rng.next_below(6));
    lru.access(0, a, false);
    rnd.access(0, a, false);
  }
  EXPECT_NE(lru.stats().per_core[0].misses, rnd.stats().per_core[0].misses);
}

// Invalidate storm: empty out whole sets (including every line the NRU
// replacement pointer could be aimed at) and keep accessing. The replacement
// policies retain their metadata for invalidated ways (used bits, RRPVs,
// tree state), so the fill path must route refills through the invalid-way
// mask and never hand a policy an empty candidate scan --
// mask_next_circular/mask_first assert non-emptiness in every build type
// (common/bits.hpp), so a violation would throw InvariantError here instead
// of silently indexing out of range.
TEST(Cache, InvalidateStormThenRefillIsWellDefined) {
  const auto g = tiny();
  for (const auto kind : {ReplacementKind::kLru, ReplacementKind::kNru,
                          ReplacementKind::kTreePlru, ReplacementKind::kRandom,
                          ReplacementKind::kSrrip}) {
    SetAssocCache c(g, kind, 2, EnforcementMode::kWayMasks, 11);
    c.set_way_mask(0, way_range_mask(0, 2));
    c.set_way_mask(1, way_range_mask(2, 2));
    Rng rng(3);
    std::vector<Addr> resident;
    for (int round = 0; round < 200; ++round) {
      // Fill phase: enough conflicting accesses to saturate NRU used bits
      // and age SRRIP lines.
      resident.clear();
      for (int i = 0; i < 64; ++i) {
        const Addr a = addr_of(g, rng.next_below(4), rng.next_below(8));
        c.access(static_cast<CoreId>(i & 1), a, false);
        resident.push_back(a);
      }
      // Storm phase: tear every remembered line out (some already evicted).
      for (const Addr a : resident) c.invalidate(a);
      // Refill: every set now has invalid ways; the next misses must fill
      // them without consulting the victim scan on stale metadata.
      for (int i = 0; i < 16; ++i) {
        const Addr a = addr_of(g, rng.next_below(4), rng.next_below(8));
        const auto out = c.access(static_cast<CoreId>(i & 1), a, false);
        EXPECT_LT(out.way, g.associativity);
      }
    }
  }
}

}  // namespace
}  // namespace plrupart::cache
