#!/usr/bin/env bash
# Crash/recovery gate for the resilience layer, run as the cli_kill_resume
# CTest test (Linux/macOS only; see src/tools/CMakeLists.txt).
#
# Proves, with a real SIGKILL and real processes, the headline guarantees:
#
#   1. A journaled sweep killed mid-flight leaves only durable per-job records
#      (no partial CSV), and --resume replays exactly the missing jobs to a
#      final CSV byte-identical to an uninterrupted run.
#   2. Journal misuse fails loudly: fresh run over an existing journal,
#      resume with a different matrix.
#   3. Injected faults (read/write/worker sites, --fault-inject) plus
#      --job-retries recover to byte-identical CSVs; an exhausted retry
#      budget surfaces the last error; PLRUPART_FAULT_INJECT is honored and
#      the flag overrides it.
#
# Usage: kill_resume.sh <plrupart-cli> <work-dir>
set -u

CLI=$1
WORK=$2

die() { echo "kill_resume: FAIL: $*" >&2; exit 1; }

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || die "cannot enter $WORK"

# Two sweeps over the same matrix axes: a slow one (jobs take long enough for
# a SIGKILL to land mid-flight) and a quick one for the fault-injection legs.
# Three L2 sizes make 12 jobs: the kill poll below triggers after the second
# durable record, leaving ten-plus jobs of runway, so the SIGKILL landing
# mid-flight is deterministic on any host fast or slow (a 2-of-12 prefix
# cannot outrun the kill the way a 2-of-8 one occasionally did).
AXES=(--workload 2T_01,2T_02 --configs NOPART-L,M-BT --l2-kb-sweep 128,256,512
      --interval 40000 --threads 1)
NJOBS=12
SLOW=("${AXES[@]}" --seed 7 --instr 2000000)
QUICK=("${AXES[@]}" --seed 7 --instr 200000)

# --- 1. Kill/resume round-trip -------------------------------------------

"$CLI" "${SLOW[@]}" --csv base_slow.csv || die "baseline (slow) run failed"
[ -s base_slow.csv ] || die "baseline CSV missing or empty"

"$CLI" "${SLOW[@]}" --journal j_full --csv full.csv || die "journaled run failed"
cmp -s base_slow.csv full.csv || die "journaled CSV differs from the plain run"

# Wall-clock-bounded poll: wait (up to DEADLINE seconds, generous for
# sanitizer builds) for two durable records, then SIGKILL while at least ten
# jobs are still unwritten. The kill landing mid-flight is asserted, not
# best-effort: a resume leg that silently degraded to replaying 0 missing
# jobs would prove nothing about crash recovery.
"$CLI" "${SLOW[@]}" --journal j_kill --csv kill.csv &
pid=$!
DEADLINE=$((SECONDS + 120))
while [ "$SECONDS" -lt "$DEADLINE" ]; do
  n=$(ls j_kill/job-*.rec 2>/dev/null | wc -l)
  [ "$n" -ge 2 ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.02
done
kill -0 "$pid" 2>/dev/null || die "the sweep finished (or died) before the kill \
could land mid-flight; the resume leg would prove nothing"
kill -KILL "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
n=$(ls j_kill/job-*.rec 2>/dev/null | wc -l)
[ "$n" -ge 1 ] || die "no durable journal records before the kill; nothing to resume"
[ "$n" -lt "$NJOBS" ] || die "every job was journaled before the kill; nothing left to resume"
[ -e kill.csv ] && die "a SIGKILLed sweep published a CSV (atomic output broken)"

"$CLI" "${SLOW[@]}" --journal j_kill --resume --progress --csv resumed.csv \
    2>resume.err || { cat resume.err >&2; die "resume failed"; }
cmp -s base_slow.csv resumed.csv || die "resumed CSV is not byte-identical to baseline"
grep -q "resuming:" resume.err || die "resume did not report already-journaled jobs"

# --- 2. Journal misuse must fail loudly ----------------------------------

"$CLI" "${SLOW[@]}" --journal j_kill --csv nope.csv 2>fresh.err &&
  die "fresh run over an existing journal must be refused"
grep -q -- "--resume" fresh.err || die "journal-reuse error does not mention --resume"

"$CLI" "${AXES[@]}" --seed 8 --instr 2000000 --journal j_kill --resume \
    --csv nope.csv 2>stale.err && die "resume with a different matrix must be refused"
grep -q "fingerprint" stale.err || die "matrix-mismatch error does not name fingerprints"

# --- 3. Fault injection + retries: byte-identical recovery ---------------

"$CLI" "${QUICK[@]}" --csv base_quick.csv || die "baseline (quick) run failed"

for spec in read:0.05 write:0.5 read:0.02,write:0.3; do
  out="fault_$(echo "$spec" | tr ':,' '__').csv"
  "$CLI" "${QUICK[@]}" --fault-inject "$spec" --job-retries 12 --retry-backoff-ms 0 \
      --journal "j_$out" --csv "$out" || die "fault run '$spec' did not recover"
  cmp -s base_quick.csv "$out" || die "fault run '$spec' changed the CSV"
done

"$CLI" "${QUICK[@]}" --sim-threads 2 --fault-inject worker:0.0000005 --job-retries 12 \
    --retry-backoff-ms 0 --csv worker_fault.csv || die "worker-fault run did not recover"
cmp -s base_quick.csv worker_fault.csv || die "worker-fault run changed the CSV"

# Write faults hit the supervised (retryable) journal-record commits, so the
# exhaustion and env legs run journaled.
"$CLI" "${QUICK[@]}" --fault-inject write:1 --job-retries 2 --retry-backoff-ms 0 \
    --journal j_exhaust --csv never.csv 2>exhaust.err &&
  die "p=1 write faults must exhaust the retry budget"
grep -q "failed after 3 attempt(s)" exhaust.err ||
  die "retry exhaustion does not surface the attempt count"
grep -q "injected write fault" exhaust.err ||
  die "retry exhaustion does not surface the last error"
[ -e never.csv ] && die "a failed sweep published a CSV"

PLRUPART_FAULT_INJECT=write:1 "$CLI" "${QUICK[@]}" --journal j_env --csv env.csv \
    2>/dev/null && die "PLRUPART_FAULT_INJECT was ignored"
PLRUPART_FAULT_INJECT=write:1 "$CLI" "${QUICK[@]}" --fault-inject read:0 \
    --csv flag_wins.csv || die "--fault-inject must override PLRUPART_FAULT_INJECT"
cmp -s base_quick.csv flag_wins.csv || die "flag-override run changed the CSV"

# --- 4. --progress under --job-retries: no double-counted reporting -------
# Write faults force several failed attempts per job; the [n/total] done
# counter must still tick exactly once per job (run() increments it outside
# the retry loop, and the throughput numerator is the final attempt's access
# count only), and the CSV must stay byte-identical to the clean baseline.
"$CLI" "${QUICK[@]}" --progress --fault-inject write:0.5 --job-retries 12 \
    --retry-backoff-ms 0 --journal j_prog --csv prog.csv 2>prog.err ||
  { cat prog.err >&2; die "progress fault run did not recover"; }
cmp -s base_quick.csv prog.csv || die "progress fault run changed the CSV"
grep -q "failed (injected write fault" prog.err ||
  die "no retry lines under --progress: the fault leg exercised nothing"
done_lines=$(grep -c " done (" prog.err)
[ "$done_lines" -eq "$NJOBS" ] ||
  die "expected $NJOBS done lines under retries, saw $done_lines (double-counted?)"
for n in $(seq 1 "$NJOBS"); do
  c=$(grep -c "\[$n/$NJOBS\]" prog.err)
  [ "$c" -eq 1 ] || die "done counter [$n/$NJOBS] reported $c times"
done
grep -q "\[$((NJOBS + 1))/$NJOBS\]" prog.err &&
  die "done counter overran the job total (retries double-counted)"

echo "kill_resume: all resilience gates passed"
