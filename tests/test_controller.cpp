// IntervalController: boundary firing, decay, history, partition application.
#include "plrupart/core/controller.hpp"

#include <gtest/gtest.h>

#include "plrupart/core/min_misses.hpp"

namespace plrupart::core {
namespace {

cache::Geometry small_l2() {
  return cache::Geometry{.size_bytes = 8192, .associativity = 4, .line_bytes = 64};
}

struct ControllerRig {
  explicit ControllerRig(std::uint64_t interval = 1000, double hysteresis = 0.0) {
    profilers.push_back(std::make_unique<LruProfiler>(small_l2(), 1));
    profilers.push_back(std::make_unique<LruProfiler>(small_l2(), 1));
    std::vector<Profiler*> raw{profilers[0].get(), profilers[1].get()};
    controller = std::make_unique<IntervalController>(
        interval, 4, std::make_unique<MinMissesPolicy>(), std::move(raw),
        [this](const Partition& p) {
          applied.push_back(p);
        },
        hysteresis);
  }

  std::vector<std::unique_ptr<Profiler>> profilers;
  std::unique_ptr<IntervalController> controller;
  std::vector<Partition> applied;
};

TEST(Controller, StartsWithEvenSplitApplied) {
  ControllerRig rig;
  ASSERT_EQ(rig.applied.size(), 1U);
  EXPECT_EQ(rig.applied[0], (Partition{2, 2}));
  EXPECT_EQ(rig.controller->current(), (Partition{2, 2}));
  EXPECT_TRUE(rig.controller->history().empty()) << "initial split is not an interval";
}

TEST(Controller, NoFiringBeforeBoundary) {
  ControllerRig rig(1000);
  EXPECT_FALSE(rig.controller->tick(0));
  EXPECT_FALSE(rig.controller->tick(999));
  EXPECT_EQ(rig.applied.size(), 1U);
}

TEST(Controller, FiresAtEachBoundaryOnce) {
  ControllerRig rig(1000);
  EXPECT_TRUE(rig.controller->tick(1000));
  EXPECT_FALSE(rig.controller->tick(1500));
  EXPECT_TRUE(rig.controller->tick(2100));
  EXPECT_EQ(rig.controller->history().size(), 2U);
  EXPECT_EQ(rig.applied.size(), 3U);  // initial + two intervals
}

TEST(Controller, SkippedBoundariesCollapseToOneFiring) {
  ControllerRig rig(1000);
  EXPECT_TRUE(rig.controller->tick(5500));  // jumped 5 boundaries
  EXPECT_EQ(rig.controller->history().size(), 1U);
  // Next boundary re-arms after the jump.
  EXPECT_FALSE(rig.controller->tick(5900));
  EXPECT_TRUE(rig.controller->tick(6001));
}

TEST(Controller, DecaysProfilersOnRepartition) {
  ControllerRig rig(1000);
  for (int i = 0; i < 8; ++i) rig.profilers[0]->record_access(0);
  EXPECT_EQ(rig.profilers[0]->sdh().reg(1), 7ULL);
  rig.controller->tick(1000);
  EXPECT_EQ(rig.profilers[0]->sdh().reg(1), 3ULL) << "SDH halved at the boundary";
}

TEST(Controller, PartitionFollowsTheProfiles) {
  ControllerRig rig(1000);
  // Core 0 shows strong reuse at distance <= 3 (needs 3 ways); core 1 only
  // ever misses.
  const auto g = small_l2();
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t t = 0; t < 3; ++t)
      rig.profilers[0]->record_access((t << ilog2_exact(g.sets())) | 0);
  }
  for (std::uint64_t t = 0; t < 100; ++t)
    rig.profilers[1]->record_access(((t + 100) << ilog2_exact(g.sets())) | 0);
  rig.controller->tick(1000);
  const auto& p = rig.controller->current();
  EXPECT_EQ(p[0], 3U);
  EXPECT_EQ(p[1], 1U);
}

TEST(Controller, HistoryRecordsCycleStamps) {
  ControllerRig rig(500);
  rig.controller->tick(700);
  rig.controller->tick(1200);
  ASSERT_EQ(rig.controller->history().size(), 2U);
  EXPECT_EQ(rig.controller->history()[0].cycle, 700ULL);
  EXPECT_EQ(rig.controller->history()[1].cycle, 1200ULL);
}

TEST(Controller, HysteresisKeepsStandingPartitionOnMarginalGains) {
  // Core 0's profile justifies a 3/1 split, but only barely: with strong
  // damping the controller sticks to the even split.
  ControllerRig rig(1000, /*hysteresis=*/0.9);
  const auto g = small_l2();
  for (int round = 0; round < 30; ++round) {
    for (std::uint64_t t = 0; t < 3; ++t)
      rig.profilers[0]->record_access((t << ilog2_exact(g.sets())) | 0);
  }
  for (std::uint64_t t = 0; t < 30; ++t)
    rig.profilers[1]->record_access(((t + 100) << ilog2_exact(g.sets())) | 0);
  rig.controller->tick(1000);
  EXPECT_EQ(rig.controller->current(), (Partition{2, 2}))
      << "marginal improvement must not flip the partition under damping";
}

TEST(Controller, HysteresisYieldsToDecisiveGains) {
  ControllerRig rig(1000, /*hysteresis=*/0.10);
  const auto g = small_l2();
  // Core 0 hits at distance 3 on nearly every access; keeping it at 2 ways
  // would forfeit almost everything.
  for (int round = 0; round < 500; ++round) {
    for (std::uint64_t t = 0; t < 3; ++t)
      rig.profilers[0]->record_access((t << ilog2_exact(g.sets())) | 0);
  }
  for (std::uint64_t t = 0; t < 20; ++t)
    rig.profilers[1]->record_access(((t + 100) << ilog2_exact(g.sets())) | 0);
  rig.controller->tick(1000);
  EXPECT_EQ(rig.controller->current(), (Partition{3, 1}));
}

TEST(Controller, HysteresisStillRecordsHistory) {
  ControllerRig rig(1000, /*hysteresis=*/0.9);
  rig.controller->tick(1000);
  rig.controller->tick(2000);
  EXPECT_EQ(rig.controller->history().size(), 2U);
}

TEST(Controller, RejectsBadHysteresis) {
  std::vector<std::unique_ptr<Profiler>> profs;
  profs.push_back(std::make_unique<LruProfiler>(small_l2(), 1));
  std::vector<Profiler*> raw{profs[0].get()};
  EXPECT_THROW(IntervalController(100, 4, std::make_unique<MinMissesPolicy>(), raw,
                                  [](const Partition&) {}, 1.0),
               InvariantError);
  EXPECT_THROW(IntervalController(100, 4, std::make_unique<MinMissesPolicy>(), raw,
                                  [](const Partition&) {}, -0.1),
               InvariantError);
}

TEST(Controller, RejectsDegenerateConstruction) {
  std::vector<std::unique_ptr<Profiler>> profs;
  profs.push_back(std::make_unique<LruProfiler>(small_l2(), 1));
  std::vector<Profiler*> raw{profs[0].get()};
  EXPECT_THROW(IntervalController(0, 4, std::make_unique<MinMissesPolicy>(), raw,
                                  [](const Partition&) {}),
               InvariantError);
  EXPECT_THROW(
      IntervalController(100, 4, nullptr, raw, [](const Partition&) {}),
      InvariantError);
  EXPECT_THROW(IntervalController(100, 4, std::make_unique<MinMissesPolicy>(),
                                  std::vector<Profiler*>{}, [](const Partition&) {}),
               InvariantError);
}

}  // namespace
}  // namespace plrupart::core
