// Benchmark catalog + Table II workload list integrity.
#include <gtest/gtest.h>

#include <set>

#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart::workloads {
namespace {

TEST(Catalog, HasTwentyFiveUniqueSortedEntries) {
  const auto& cat = catalog();
  EXPECT_EQ(cat.size(), 25U);
  std::set<std::string> names;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    names.insert(cat[i].name);
    if (i > 0) {
      EXPECT_LT(cat[i - 1].name, cat[i].name);
    }
  }
  EXPECT_EQ(names.size(), cat.size());
}

TEST(Catalog, EveryProfileIsWellFormed) {
  for (const auto& b : catalog()) {
    EXPECT_FALSE(b.components.empty()) << b.name;
    EXPECT_GT(b.mem_fraction, 0.0) << b.name;
    EXPECT_LE(b.mem_fraction, 0.5) << b.name;
    EXPECT_GE(b.write_fraction, 0.0) << b.name;
    EXPECT_LE(b.write_fraction, 1.0) << b.name;
    b.core.validate();
    for (const auto& c : b.components) {
      EXPECT_GE(c.region_bytes, 1024ULL) << b.name;
      EXPECT_GT(c.weight, 0.0) << b.name;
    }
  }
}

TEST(Catalog, PerlAliasesPerlbmk) {
  EXPECT_EQ(benchmark("perl").name, "perlbmk");
  EXPECT_TRUE(has_benchmark("perl"));
}

TEST(Catalog, UnknownBenchmarkThrows) {
  EXPECT_FALSE(has_benchmark("doom"));
  EXPECT_THROW((void)benchmark("doom"), InvariantError);
}

TEST(Catalog, PersonalityClassesAreDistinct) {
  // The catalog must span the classes the paper's effects rely on:
  // thrashers (mcf: huge working set) vs cache-insensitive (eon: tiny).
  std::uint64_t mcf_ws = 0, eon_ws = 0;
  for (const auto& c : benchmark("mcf").components) mcf_ws += c.region_bytes;
  for (const auto& c : benchmark("eon").components) eon_ws += c.region_bytes;
  EXPECT_GT(mcf_ws, 4ULL * 1024 * 1024);
  EXPECT_LT(eon_ws, 512ULL * 1024);
  EXPECT_GT(benchmark("mcf").core.stall_fraction, benchmark("eon").core.stall_fraction);
}

TEST(Catalog, SomeBenchmarksHavePhases) {
  int phased = 0;
  for (const auto& b : catalog()) phased += b.phase_period_ops > 0 ? 1 : 0;
  EXPECT_GE(phased, 3) << "dynamic CPAs need phase behavior to adapt to";
}

TEST(WorkloadTable, CountsMatchThePaper) {
  EXPECT_EQ(workloads_2t().size(), 24U);
  EXPECT_EQ(workloads_4t().size(), 14U);
  EXPECT_EQ(workloads_8t().size(), 11U);
  EXPECT_EQ(all_workloads().size(), 49U);
}

TEST(WorkloadTable, ThreadCountsAreConsistent) {
  for (const auto& w : workloads_2t()) EXPECT_EQ(w.threads(), 2U) << w.id;
  for (const auto& w : workloads_4t()) EXPECT_EQ(w.threads(), 4U) << w.id;
  for (const auto& w : workloads_8t()) EXPECT_EQ(w.threads(), 8U) << w.id;
}

TEST(WorkloadTable, AllBenchmarksResolvable) {
  for (const auto& w : all_workloads()) {
    for (const auto& b : w.benchmarks) {
      EXPECT_TRUE(has_benchmark(b)) << w.id << " references " << b;
    }
  }
}

TEST(WorkloadTable, SpotCheckAgainstPaperRows) {
  EXPECT_EQ(workloads_2t()[0].id, "2T_01");
  EXPECT_EQ(workloads_2t()[0].benchmarks, (std::vector<std::string>{"apsi", "bzip2"}));
  EXPECT_EQ(workloads_2t()[23].benchmarks,
            (std::vector<std::string>{"equake", "mgrid"}));
  EXPECT_EQ(workloads_4t()[9].benchmarks,
            (std::vector<std::string>{"fma3d", "swim", "mcf", "applu"}));
  EXPECT_EQ(workloads_8t()[10].benchmarks,
            (std::vector<std::string>{"crafty", "eon", "gcc", "gzip", "mesa", "perl",
                                      "equake", "mgrid"}));
}

TEST(WorkloadTable, DuplicateBenchmarksAllowedWithinWorkload) {
  // 8T_04 and 8T_10 list facerec twice, exactly as in the paper.
  const auto& w = workloads_8t()[3];
  EXPECT_EQ(w.id, "8T_04");
  int facerec = 0;
  for (const auto& b : w.benchmarks) facerec += (b == "facerec") ? 1 : 0;
  EXPECT_EQ(facerec, 2);
}

TEST(WorkloadTable, ForThreadsSelector) {
  EXPECT_EQ(workloads_for_threads(2).size(), 24U);
  EXPECT_EQ(workloads_for_threads(4).size(), 14U);
  EXPECT_EQ(workloads_for_threads(8).size(), 11U);
  const auto singles = workloads_for_threads(1);
  EXPECT_EQ(singles.size(), catalog().size());
  EXPECT_EQ(singles[0].threads(), 1U);
  EXPECT_THROW((void)workloads_for_threads(3), InvariantError);
}

}  // namespace
}  // namespace plrupart::workloads
