#include "plrupart/sim/memory_hierarchy.hpp"

#include <gtest/gtest.h>

namespace plrupart::sim {
namespace {

HierarchyConfig small_config(std::uint32_t cores, const char* acronym = "NOPART-L") {
  HierarchyConfig cfg;
  cfg.l1d = cache::Geometry{.size_bytes = 1024, .associativity = 2, .line_bytes = 64};
  cfg.l2 = core::CpaConfig::from_acronym(
      acronym, cores,
      cache::Geometry{.size_bytes = 16384, .associativity = 8, .line_bytes = 64});
  return cfg;
}

TEST(MemoryHierarchy, L1HitNeverReachesL2) {
  MemoryHierarchy mh(small_config(1));
  EXPECT_EQ(mh.access(0, 0x40, false, 0), AccessLevel::kMemory);  // cold
  EXPECT_EQ(mh.access(0, 0x40, false, 0), AccessLevel::kL1);
  EXPECT_EQ(mh.counters(0).l1_accesses, 2ULL);
  EXPECT_EQ(mh.counters(0).l1_misses, 1ULL);
  EXPECT_EQ(mh.counters(0).l2_accesses, 1ULL);
}

TEST(MemoryHierarchy, L1EvictionFallsBackToL2) {
  // Three lines mapping to the same L1 set (2-way) but distinct L2 sets keep
  // bouncing out of L1 while staying resident in L2.
  MemoryHierarchy mh(small_config(1));
  const cache::Addr a = 0x0;
  const cache::Addr b = 0x400;   // 1KB apart: same L1 set (8 sets x 64B)
  const cache::Addr c = 0x800;
  mh.access(0, a, false, 0);
  mh.access(0, b, false, 0);
  mh.access(0, c, false, 0);  // evicts a from L1
  EXPECT_EQ(mh.access(0, a, false, 0), AccessLevel::kL2) << "L1 miss, L2 hit";
}

TEST(MemoryHierarchy, PrivateL1sDoNotInterfere) {
  MemoryHierarchy mh(small_config(2));
  mh.access(0, 0x40, false, 0);
  // Core 1 misses its own L1 even though core 0 has the line in L1 —
  // but hits the shared L2.
  EXPECT_EQ(mh.access(1, 0x40, false, 0), AccessLevel::kL2);
  EXPECT_EQ(mh.counters(1).l1_misses, 1ULL);
}

TEST(MemoryHierarchy, SharedL2SeesAllCores) {
  MemoryHierarchy mh(small_config(2));
  mh.access(0, 0x1000, false, 0);
  mh.access(1, 0x2000, false, 0);
  EXPECT_EQ(mh.l2().l2().stats().per_core[0].accesses, 1ULL);
  EXPECT_EQ(mh.l2().l2().stats().per_core[1].accesses, 1ULL);
}

TEST(MemoryHierarchy, PartitionedL2Wired) {
  MemoryHierarchy mh(small_config(2, "M-L"));
  for (int i = 0; i < 100; ++i)
    mh.access(0, static_cast<cache::Addr>(0x40000 + i * 0x1000), false, 0);
  EXPECT_GT(mh.l2().profiler(0).sdh().total(), 0ULL)
      << "L2 accesses must feed the profiling logic";
}

TEST(MemoryHierarchy, ResetClearsCountersAndContents) {
  MemoryHierarchy mh(small_config(1));
  mh.access(0, 0x40, false, 0);
  mh.reset();
  EXPECT_EQ(mh.counters(0).l1_accesses, 0ULL);
  EXPECT_EQ(mh.access(0, 0x40, false, 0), AccessLevel::kMemory) << "cold again";
}

}  // namespace
}  // namespace plrupart::sim
