#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace plrupart {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(
      10, [&](std::size_t i) { order.push_back(i); }, /*threads=*/1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(
      3, [&](std::size_t i) { sum += static_cast<int>(i); }, /*threads=*/64);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelFor, ZeroItemsIgnoresExplicitThreadCount) {
  // n == 0 must return before any pool is built, whatever `threads` says.
  parallel_for(
      0, [](std::size_t) { FAIL() << "body must not run"; }, /*threads=*/64);
}

TEST(ParallelFor, TemplatedOverloadAcceptsMoveOnlyCallable) {
  // A move-only closure cannot convert to std::function, so this exercises
  // exactly the templated (non-type-erased) overload.
  std::atomic<int> sum{0};
  auto step = std::make_unique<int>(1);
  parallel_for(
      100, [&sum, owned = std::move(step)](std::size_t) { sum.fetch_add(*owned); },
      /*threads=*/4);
  EXPECT_EQ(sum.load(), 100);
}

TEST(ParallelFor, TypeErasedOverloadCoversEveryIndex) {
  // An lvalue std::function selects the non-template overload (exact match
  // beats the template); the wrapper must forward every index exactly once.
  constexpr std::size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  const std::function<void(std::size_t)> body = [&](std::size_t i) {
    hits[i].fetch_add(1);
  };
  parallel_for(n, body);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, TypeErasedOverloadPropagatesExceptions) {
  const std::function<void(std::size_t)> body = [](std::size_t i) {
    if (i == 11) throw std::out_of_range("type-erased boom");
  };
  EXPECT_THROW(parallel_for(64, body, /*threads=*/4), std::out_of_range);
}

TEST(ParallelFor, MoreThreadsThanItemsRunsEachItemOnce) {
  constexpr std::size_t n = 5;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*threads=*/32);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, WorkerExceptionDoesNotLoseCompletedWork) {
  // Indices that ran before the failure was observed must have fully
  // completed (joined) by the time the exception reaches the caller.
  constexpr std::size_t n = 300;
  std::atomic<std::size_t> completed{0};
  try {
    parallel_for(
        n,
        [&](std::size_t i) {
          if (i == 150) throw std::runtime_error("halt");
          completed.fetch_add(1, std::memory_order_relaxed);
        },
        /*threads=*/4);
    FAIL() << "exception must propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LE(completed.load(), n - 1);
}

TEST(ParallelMap, ProducesOrderedResults) {
  const auto squares =
      parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, PropagatesWorkerException) {
  EXPECT_THROW(static_cast<void>(parallel_map<int>(
                   50,
                   [](std::size_t i) -> int {
                     if (i == 7) throw std::runtime_error("map boom");
                     return static_cast<int>(i);
                   },
                   /*threads=*/4)),
               std::runtime_error);
}

TEST(ParallelMap, ZeroItemsYieldsEmptyVector) {
  const auto out = parallel_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(DefaultParallelism, AtLeastOne) { EXPECT_GE(default_parallelism(), 1U); }

}  // namespace
}  // namespace plrupart
