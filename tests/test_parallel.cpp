#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace plrupart {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(
      10, [&](std::size_t i) { order.push_back(i); }, /*threads=*/1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for(
      3, [&](std::size_t i) { sum += static_cast<int>(i); }, /*threads=*/64);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelMap, ProducesOrderedResults) {
  const auto squares =
      parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(DefaultParallelism, AtLeastOne) { EXPECT_GE(default_parallelism(), 1U); }

}  // namespace
}  // namespace plrupart
