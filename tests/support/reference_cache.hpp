// Reference implementation of SetAssocCache, frozen at the pre-SoA /
// virtual-dispatch design: an array-of-structs line store, per-access virtual
// policy calls through the ReplacementPolicy seam, owner *counters* instead
// of ownership bitmasks, and an O(A) per-miss rebuild of the owner-counter
// eviction mask.
//
// It exists for two tier-1 checks:
//  * test_golden_equivalence.cpp replays long random traces through this model
//    and the production cache, asserting identical AccessOutcome sequences and
//    statistics for every ReplacementKind × EnforcementMode combination — the
//    hot-path refactor must be bit-invisible.
//  * perf_smoke.cpp uses it as the in-process throughput baseline the
//    optimized access path must beat.
//
// Deliberately NOT deduplicated with src/cache/cache.cpp: sharing code would
// let a bug in the optimized path hide in the reference.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/cache/cache_stats.hpp"
#include "plrupart/cache/geometry.hpp"
#include "plrupart/cache/replacement.hpp"

namespace plrupart::testing {

class ReferenceCache {
 public:
  ReferenceCache(const cache::Geometry& geo, cache::ReplacementKind repl,
                 std::uint32_t num_cores, cache::EnforcementMode enforcement,
                 std::uint64_t seed = 0x5eed)
      : geo_(geo),
        num_cores_(num_cores),
        enforcement_(enforcement),
        policy_(cache::make_policy(repl, geo, seed)),
        lines_(geo.sets() * geo.associativity),
        masks_(num_cores, full_way_mask(geo.associativity)),
        quotas_(num_cores, geo.associativity),
        owner_counts_(enforcement == cache::EnforcementMode::kOwnerCounters
                          ? geo.sets() * num_cores
                          : 0,
                      0),
        stats_(num_cores) {
    geo_.validate();
  }

  cache::AccessOutcome access(cache::CoreId core, cache::Addr addr, bool write = false) {
    const cache::Addr la = geo_.line_addr(addr);
    const std::uint64_t set = geo_.set_index(la);
    const std::uint64_t tag = geo_.tag(la);

    cache::CoreCacheStats& cs = stats_.per_core[core];
    ++cs.accesses;
    if (write) ++cs.writes;

    const WayMask policy_scope = enforcement_ == cache::EnforcementMode::kWayMasks
                                     ? masks_[core]
                                     : full_way_mask(geo_.associativity);
    cache::AccessOutcome out;

    for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
      Line& l = line(set, w);
      if (l.valid && l.tag == tag) {
        ++cs.hits;
        policy_->on_hit(set, w, policy_scope);
        out.hit = true;
        out.way = w;
        return out;
      }
    }

    ++cs.misses;

    std::uint32_t victim = geo_.associativity;  // sentinel
    for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
      if (mask_test(policy_scope, w) && !line(set, w).valid) {
        victim = w;
        break;
      }
    }
    if (victim == geo_.associativity) {
      const WayMask victim_scope =
          enforcement_ == cache::EnforcementMode::kOwnerCounters
              ? eviction_mask(set, core)
              : policy_scope;
      victim = policy_->choose_victim(set, victim_scope);
    }

    Line& v = line(set, victim);
    if (v.valid) {
      out.evicted_valid = true;
      out.evicted_line = (v.tag << ilog2_exact(geo_.sets())) | set;
      out.evicted_owner = v.owner;
      if (v.owner == core)
        ++cs.self_evictions;
      else
        ++cs.cross_evictions;
      if (enforcement_ == cache::EnforcementMode::kOwnerCounters)
        --owner_count(set, v.owner);
    }

    v.tag = tag;
    v.owner = core;
    v.valid = true;
    if (enforcement_ == cache::EnforcementMode::kOwnerCounters)
      ++owner_count(set, core);

    policy_->on_fill(set, victim, policy_scope);
    out.hit = false;
    out.way = victim;
    return out;
  }

  [[nodiscard]] cache::AccessOutcome probe(cache::Addr addr) const {
    const cache::Addr la = geo_.line_addr(addr);
    const std::uint64_t set = geo_.set_index(la);
    const std::uint64_t tag = geo_.tag(la);
    cache::AccessOutcome out;
    for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
      const Line& l = line(set, w);
      if (l.valid && l.tag == tag) {
        out.hit = true;
        out.way = w;
        return out;
      }
    }
    return out;
  }

  bool invalidate(cache::Addr addr) {
    const cache::Addr la = geo_.line_addr(addr);
    const std::uint64_t set = geo_.set_index(la);
    const std::uint64_t tag = geo_.tag(la);
    for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
      Line& l = line(set, w);
      if (l.valid && l.tag == tag) {
        l.valid = false;
        if (enforcement_ == cache::EnforcementMode::kOwnerCounters)
          --owner_count(set, l.owner);
        return true;
      }
    }
    return false;
  }

  void set_way_mask(cache::CoreId core, WayMask mask) {
    mask &= full_way_mask(geo_.associativity);
    masks_[core] = mask;
  }
  void set_way_quota(cache::CoreId core, std::uint32_t ways) { quotas_[core] = ways; }

  [[nodiscard]] std::uint32_t owned_in_set(std::uint64_t set, cache::CoreId core) const {
    if (enforcement_ == cache::EnforcementMode::kOwnerCounters)
      return owner_count(set, core);
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
      const Line& l = line(set, w);
      if (l.valid && l.owner == core) ++n;
    }
    return n;
  }

  void reset() {
    for (auto& l : lines_) l = Line{};
    for (auto& c : owner_counts_) c = 0;
    policy_->reset();
    stats_.reset();
  }

  [[nodiscard]] const cache::CacheStatsBundle& stats() const noexcept { return stats_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    cache::CoreId owner = 0;
    bool valid = false;
  };

  [[nodiscard]] Line& line(std::uint64_t set, std::uint32_t way) {
    return lines_[set * geo_.associativity + way];
  }
  [[nodiscard]] const Line& line(std::uint64_t set, std::uint32_t way) const {
    return lines_[set * geo_.associativity + way];
  }

  [[nodiscard]] WayMask eviction_mask(std::uint64_t set, cache::CoreId core) const {
    const WayMask all = full_way_mask(geo_.associativity);
    switch (enforcement_) {
      case cache::EnforcementMode::kNone:
        return all;
      case cache::EnforcementMode::kWayMasks:
        return masks_[core];
      case cache::EnforcementMode::kOwnerCounters: {
        WayMask own = 0;
        WayMask others = 0;
        for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
          const Line& l = line(set, w);
          if (!l.valid) continue;
          if (l.owner == core)
            own |= (WayMask{1} << w);
          else
            others |= (WayMask{1} << w);
        }
        const bool under_quota = owner_count(set, core) < quotas_[core];
        if (under_quota && others != 0) return others;
        if (own != 0) return own;
        return (own | others) != 0 ? (own | others) : all;
      }
    }
    return all;
  }

  [[nodiscard]] std::uint32_t& owner_count(std::uint64_t set, cache::CoreId core) {
    return owner_counts_[set * num_cores_ + core];
  }
  [[nodiscard]] std::uint32_t owner_count(std::uint64_t set, cache::CoreId core) const {
    return owner_counts_[set * num_cores_ + core];
  }

  cache::Geometry geo_;
  std::uint32_t num_cores_;
  cache::EnforcementMode enforcement_;
  std::unique_ptr<cache::ReplacementPolicy> policy_;
  std::vector<Line> lines_;
  std::vector<WayMask> masks_;
  std::vector<std::uint32_t> quotas_;
  std::vector<std::uint32_t> owner_counts_;
  cache::CacheStatsBundle stats_;
};

}  // namespace plrupart::testing
