#!/usr/bin/env python3
"""Regenerate the ChampSim converter fixtures.

Writes champsim_small.champsim (uncompressed ChampSim binary trace: 64-byte
little-endian input_instr records) and champsim_small.golden.v1.trace — the
plrupart-trace v1 file the converter must produce for it, derived here
INDEPENDENTLY of the C++ implementation so the golden test cross-checks the
conversion rules (loads before stores within an instruction, non-memory
instructions accumulating into the next op's gap, zero addresses skipped).

Both outputs are committed; rerun this script only when the fixture itself is
meant to change, and review the resulting diff.
"""
import struct
from pathlib import Path

HERE = Path(__file__).resolve().parent


def input_instr(ip, is_branch=0, taken=0, dest_mem=(), src_mem=()):
    """Pack one 64-byte ChampSim input_instr record (little-endian)."""
    dest_mem = list(dest_mem) + [0] * (2 - len(dest_mem))
    src_mem = list(src_mem) + [0] * (4 - len(src_mem))
    return struct.pack(
        "<QBB2B4B2Q4Q",
        ip, is_branch, taken,
        1, 0,            # destination_registers (don't-cares for conversion)
        2, 3, 0, 0,      # source_registers
        *dest_mem, *src_mem,
    )


# A tiny but representative instruction stream: plain ALU instructions (gap
# accumulation), loads, stores, a load+store instruction, a multi-load
# instruction, a branch, and addresses that revisit lines and span >32 bits.
RECORDS = [
    input_instr(0x400000),                                    # alu
    input_instr(0x400004),                                    # alu
    input_instr(0x400008, src_mem=[0x7F00_0000]),             # load, gap 2
    input_instr(0x40000C, dest_mem=[0x7F00_0040]),            # store, gap 0
    input_instr(0x400010),                                    # alu
    input_instr(0x400014, is_branch=1, taken=1),              # branch = alu here
    input_instr(0x400018, src_mem=[0x7F00_0000, 0x7F00_0080]),  # 2 loads, gap 2
    input_instr(0x40001C, src_mem=[0x12_3456_7890], dest_mem=[0x12_3456_78D0]),
    input_instr(0x400020),                                    # alu
    input_instr(0x400024, dest_mem=[0x7F00_0040, 0x7F00_00C0]),  # 2 stores, gap 1
    input_instr(0x400028, src_mem=[0x7F00_0100]),             # load, gap 0
    input_instr(0x40002C),                                    # alu
    input_instr(0x400030),                                    # alu
    # Four lines 16 KiB apart land in one set of a 32 KiB/2-way/128 B L1, so
    # looping replay keeps evicting into the L2 — the converted fixture must
    # produce L2 traffic for the pipeline gate to exercise the cache stack.
    input_instr(0x400034, src_mem=[0x7F01_0000]),             # load, gap 2
    input_instr(0x400038, src_mem=[0x7F01_4000]),
    input_instr(0x40003C, dest_mem=[0x7F01_8000]),
    input_instr(0x400040, src_mem=[0x7F01_C000]),
    input_instr(0x400044, src_mem=[0x7F01_0000]),             # revisit: evicted by now
    input_instr(0x400048, dest_mem=[0x7F01_4000]),
]


def convert(records):
    """Reference conversion: yield (gap, addr, 'R'|'W') per the documented rules."""
    gap = 0
    for rec in records:
        fields = struct.unpack("<QBB2B4B2Q4Q", rec)
        dest_mem, src_mem = fields[9:11], fields[11:15]
        emitted = False
        for addr in src_mem:
            if addr:
                yield gap, addr, "R"
                gap, emitted = 0, True
        for addr in dest_mem:
            if addr:
                yield gap, addr, "W"
                gap, emitted = 0, True
        if not emitted:
            gap += 1


def main():
    (HERE / "champsim_small.champsim").write_bytes(b"".join(RECORDS))
    lines = ["# plrupart-trace v1"]
    lines += [f"{gap} {addr:x} {rw}" for gap, addr, rw in convert(RECORDS)]
    (HERE / "champsim_small.golden.v1.trace").write_text("\n".join(lines) + "\n")
    print(f"wrote {len(RECORDS)} records, {len(lines) - 1} ops")


if __name__ == "__main__":
    main()
