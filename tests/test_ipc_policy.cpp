// IPC-objective partitioning (FlexDCP-style extension).
#include "plrupart/core/ipc_policy.hpp"

#include <gtest/gtest.h>

#include "plrupart/common/rng.hpp"

namespace plrupart::core {
namespace {

IpcModel chaser() {
  // Pointer chaser: fully exposed memory latency, low base IPC.
  return IpcModel{.instr_per_l2_access = 8.0,
                  .base_ipc = 1.2,
                  .l2_hit_penalty = 11,
                  .mem_penalty = 250,
                  .stall_fraction = 0.95};
}

IpcModel streamer() {
  // Streaming core: high MLP hides most of each miss.
  return IpcModel{.instr_per_l2_access = 8.0,
                  .base_ipc = 2.5,
                  .l2_hit_penalty = 11,
                  .mem_penalty = 250,
                  .stall_fraction = 0.2};
}

MissCurve linear_curve(double start, double end, std::uint32_t ways = 8) {
  std::vector<double> v(ways + 1);
  for (std::uint32_t w = 0; w <= ways; ++w) {
    v[w] = start + (end - start) * static_cast<double>(w) / ways;
  }
  return MissCurve(std::move(v));
}

TEST(IpcModel, MoreWaysNeverHurt) {
  const auto m = chaser();
  const auto c = linear_curve(1000, 0);
  for (std::uint32_t w = 1; w < 8; ++w) {
    EXPECT_LE(m.predicted_ipc(c, w), m.predicted_ipc(c, w + 1) + 1e-12);
  }
}

TEST(IpcModel, ZeroTrafficMeansBaseIpc) {
  Sdh empty(8);
  const auto curve = MissCurve::from_sdh(empty);
  EXPECT_DOUBLE_EQ(streamer().predicted_ipc(curve, 4), 2.5);
}

TEST(IpcModel, ExposedLatencyCostsMore) {
  const auto c = linear_curve(1000, 500);
  auto exposed = chaser();
  auto hidden = chaser();
  hidden.stall_fraction = 0.1;
  EXPECT_LT(exposed.predicted_ipc(c, 4), hidden.predicted_ipc(c, 4));
}

TEST(IpcModel, ValidationRejectsNonsense) {
  IpcModel m;
  m.instr_per_l2_access = 0.0;
  EXPECT_THROW(m.validate(), InvariantError);
  m = IpcModel{};
  m.stall_fraction = 2.0;
  EXPECT_THROW(m.validate(), InvariantError);
}

TEST(IpcPolicy, ThroughputFavorsTheLatencyTolerantThread) {
  // Identical miss curves, but thread 0 (chaser) pays full latency per miss
  // while thread 1 (streamer) hides it. Counter-intuitively, the throughput
  // objective gives the ways to the FAST thread: the chaser's IPC is so
  // latency-dominated that saved misses barely move it (dIPC = -I/cycles^2),
  // while the streamer converts the same savings into real retirement rate.
  // MinMisses, by construction, would see an exact tie here — this asymmetry
  // is precisely what the IPC objective adds.
  const auto c = linear_curve(1000, 0);
  IpcPolicy policy({chaser(), streamer()}, IpcObjective::kThroughput);
  const auto p = policy.decide({c, c}, 8);
  EXPECT_GT(p[1], p[0]);
  validate_partition(p, 8);
}

TEST(IpcPolicy, HarmonicObjectiveIsMoreEgalitarian) {
  // A thread with a flat curve gets nothing under throughput; the harmonic
  // objective must not allocate it fewer ways than throughput does.
  const auto steep = linear_curve(2000, 0);
  const auto flat = linear_curve(500, 450);
  IpcPolicy thr({chaser(), chaser()}, IpcObjective::kThroughput);
  IpcPolicy hm({chaser(), chaser()}, IpcObjective::kHarmonicMean);
  const auto p_thr = thr.decide({steep, flat}, 8);
  const auto p_hm = hm.decide({steep, flat}, 8);
  EXPECT_GE(p_hm[1], p_thr[1]);
}

TEST(IpcPolicy, IdenticalThreadsGetAnOptimumNoWorseThanEvenSplit) {
  // With identical threads the optimum need NOT be the even split: IPC as a
  // function of ways is convex for near-linear miss curves (cycles shrink
  // linearly, IPC = I/cycles), so the throughput sum can peak at an extreme
  // allocation. The DP must return something at least as good as both the
  // even split and its own mirror image.
  const auto c = linear_curve(1000, 0);
  IpcPolicy policy({chaser(), chaser()}, IpcObjective::kThroughput);
  const auto p = policy.decide({c, c}, 8);
  const auto total = [&](std::uint32_t w0, std::uint32_t w1) {
    return chaser().predicted_ipc(c, w0) + chaser().predicted_ipc(c, w1);
  };
  EXPECT_GE(total(p[0], p[1]), total(4, 4) - 1e-12);
  EXPECT_NEAR(total(p[0], p[1]), total(p[1], p[0]), 1e-12) << "objective is symmetric";
}

TEST(IpcPolicy, WeightedSpeedupShieldsSlowThreadsBetterThanThroughput) {
  // A raw-throughput objective starves the slow, latency-bound thread (see
  // ThroughputFavorsTheLatencyTolerantThread); normalizing by each thread's
  // full-cache IPC must not make its allocation any worse.
  const auto c = linear_curve(1000, 0);
  IpcPolicy thr({chaser(), streamer()}, IpcObjective::kThroughput);
  IpcPolicy wsp({chaser(), streamer()}, IpcObjective::kWeightedSpeedup);
  const auto p_thr = thr.decide({c, c}, 8);
  const auto p_wsp = wsp.decide({c, c}, 8);
  EXPECT_GE(p_wsp[0], p_thr[0]);
}

TEST(IpcPolicy, AllObjectivesProduceValidPartitionsOnRandomCurves) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<MissCurve> curves;
    std::vector<IpcModel> models;
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(4));
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<double> v(17);
      v[0] = 100 + rng.next_double() * 5000;
      for (std::uint32_t w = 1; w <= 16; ++w)
        v[w] = v[w - 1] * (0.6 + rng.next_double() * 0.4);
      curves.emplace_back(std::move(v));
      IpcModel m;
      m.stall_fraction = 0.2 + rng.next_double() * 0.7;
      m.base_ipc = 1.0 + rng.next_double() * 2.0;
      models.push_back(m);
    }
    for (const auto obj : {IpcObjective::kThroughput, IpcObjective::kWeightedSpeedup,
                           IpcObjective::kHarmonicMean}) {
      IpcPolicy policy(models, obj);
      validate_partition(policy.decide(curves, 16), 16);
    }
  }
}

TEST(IpcPolicy, ThroughputObjectiveIsDpOptimal) {
  // Exhaustive check on a small instance: the DP must find the partition
  // maximizing the predicted-IPC sum.
  const auto c0 = linear_curve(800, 100, 6);
  const auto c1 = linear_curve(400, 0, 6);
  const std::vector<IpcModel> models{chaser(), streamer()};
  IpcPolicy policy(models, IpcObjective::kThroughput);
  const auto p = policy.decide({c0, c1}, 6);
  double best = -1.0;
  Partition best_p;
  for (std::uint32_t w0 = 1; w0 <= 5; ++w0) {
    const double total = models[0].predicted_ipc(c0, w0) +
                         models[1].predicted_ipc(c1, 6 - w0);
    if (total > best) {
      best = total;
      best_p = {w0, 6 - w0};
    }
  }
  EXPECT_EQ(p, best_p);
}

TEST(IpcPolicy, RejectsMismatchedModelCount) {
  IpcPolicy policy({chaser()}, IpcObjective::kThroughput);
  const auto c = linear_curve(100, 0);
  EXPECT_THROW((void)policy.decide({c, c}, 8), InvariantError);
  EXPECT_THROW(IpcPolicy({}, IpcObjective::kThroughput), InvariantError);
}

TEST(IpcPolicy, NamesIncludeObjective) {
  EXPECT_EQ(IpcPolicy({chaser()}, IpcObjective::kThroughput).name(),
            "IPC(throughput)");
  EXPECT_EQ(IpcPolicy({chaser()}, IpcObjective::kHarmonicMean).name(),
            "IPC(harmonic-mean)");
}

}  // namespace
}  // namespace plrupart::core
