// Table I reproduction: these tests pin the paper's bracketed numbers
// (16-way 2MB L2, 128B lines, 2 cores, 47 tag bits).
#include "plrupart/power/complexity.hpp"

#include <gtest/gtest.h>

namespace plrupart::power {
namespace {

using cache::ReplacementKind;

ComplexityParams paper_params() {
  return ComplexityParams::from_geometry(cache::paper_l2_geometry(), 2, 47);
}

TEST(TableIa, LruStorageIs8KB) {
  const auto s = replacement_storage(ReplacementKind::kLru, paper_params(), false);
  EXPECT_EQ(s.per_set_bits, 16U * 4U);  // A log2(A) = 64 bits per set
  EXPECT_EQ(s.total_bits, 65536ULL);
  EXPECT_DOUBLE_EQ(s.total_kib(), 8.0);
}

TEST(TableIa, NruStorageIs2KBPlusPointer) {
  const auto s = replacement_storage(ReplacementKind::kNru, paper_params(), false);
  EXPECT_EQ(s.per_set_bits, 16ULL);  // A used bits
  EXPECT_EQ(s.global_bits, 4ULL);    // log2(A) replacement pointer
  EXPECT_EQ(s.total_bits, 16384ULL + 4ULL);
  EXPECT_NEAR(s.total_kib(), 2.0, 0.001);
}

TEST(TableIa, BtStorageIs1Point875KB) {
  const auto s = replacement_storage(ReplacementKind::kTreePlru, paper_params(), false);
  EXPECT_EQ(s.per_set_bits, 15ULL);  // A-1 tree bits
  EXPECT_EQ(s.total_bits, 15360ULL);
  EXPECT_DOUBLE_EQ(s.total_kib(), 1.875);
}

TEST(TableIa, PartitioningAddsOwnerMasks) {
  const auto p = paper_params();
  const auto lru = replacement_storage(ReplacementKind::kLru, p, true);
  EXPECT_EQ(lru.global_bits, 2ULL * 16);  // A x N owner mask bits
  const auto nru = replacement_storage(ReplacementKind::kNru, p, true);
  EXPECT_EQ(nru.global_bits, 4ULL + 2ULL * 16);  // pointer + masks
  // BT: up + down vectors of log2(A) bits per core — 8 bits per core, the
  // "slight increase" the paper reports.
  const auto bt = replacement_storage(ReplacementKind::kTreePlru, p, true);
  EXPECT_EQ(bt.global_bits, 2ULL * 2 * 4);
  EXPECT_EQ(partitioning_global_bits(ReplacementKind::kTreePlru, 16, 1), 8ULL);
}

TEST(TableIa, OwnerCounterSchemeBitsPerSet) {
  // Paper §II-B.1: A log2(N) owner bits + N log2(A) counter bits per set.
  EXPECT_EQ(owner_counter_bits_per_set(16, 2), 16ULL * 1 + 2ULL * 4);
  EXPECT_EQ(owner_counter_bits_per_set(16, 8), 16ULL * 3 + 8ULL * 4);
  EXPECT_EQ(owner_counter_bits_per_set(16, 1), 0ULL + 1ULL * 4);
}

TEST(TableIb, TagComparisonIs752Bits) {
  for (const auto kind :
       {ReplacementKind::kLru, ReplacementKind::kNru, ReplacementKind::kTreePlru}) {
    EXPECT_EQ(event_costs(kind, paper_params()).tag_comparison, 752ULL);
  }
}

TEST(TableIb, UpdateWithoutPartitioning) {
  const auto p = paper_params();
  EXPECT_EQ(event_costs(ReplacementKind::kLru, p).update_unpartitioned, 64ULL);
  // NRU: A-1 used bits (15) + log2(A) pointer bits (4).
  EXPECT_EQ(event_costs(ReplacementKind::kNru, p).update_unpartitioned, 19ULL);
  EXPECT_EQ(event_costs(ReplacementKind::kTreePlru, p).update_unpartitioned, 4ULL);
}

TEST(TableIb, PartitionedVictimSearch) {
  const auto p = paper_params();
  // Find owned lines: N x A = 32 bits for LRU and NRU; BT is solved by the
  // up/down vectors.
  EXPECT_EQ(event_costs(ReplacementKind::kLru, p).find_owned_lines, 32ULL);
  EXPECT_EQ(event_costs(ReplacementKind::kNru, p).find_owned_lines, 32ULL);
  EXPECT_EQ(event_costs(ReplacementKind::kTreePlru, p).find_owned_lines, 0ULL);

  // LRU victim among owned lines: (A-1) x log2(A). The paper's bracket says
  // 52; the formula it prints gives 60 — we implement the formula and record
  // the discrepancy in EXPERIMENTS.md.
  EXPECT_EQ(event_costs(ReplacementKind::kLru, p).find_victim_in_owned, 60ULL);
  EXPECT_EQ(event_costs(ReplacementKind::kNru, p).find_victim_in_owned, 19ULL);
  // BT: log2(A) BT bits + log2(A) up bits + log2(A) down bits.
  EXPECT_EQ(event_costs(ReplacementKind::kTreePlru, p).find_victim_in_owned, 12ULL);
}

TEST(TableIb, ProfilingReadCosts) {
  const auto p = paper_params();
  EXPECT_EQ(event_costs(ReplacementKind::kLru, p).profiling_read, 4ULL);
  EXPECT_EQ(event_costs(ReplacementKind::kNru, p).profiling_read, 16ULL);
  // XOR 2 log2(A) + SUB 2 log2(A).
  EXPECT_EQ(event_costs(ReplacementKind::kTreePlru, p).profiling_read, 16ULL);
}

TEST(TableIb, DataReadIsLineSize) {
  EXPECT_EQ(event_costs(ReplacementKind::kLru, paper_params()).data_read, 1024ULL);
}

TEST(AtdStorage, PaperFigures) {
  // 3.25KB per core: 32 sets x 16 ways x (47 tag + 1 valid + 4 LRU) bits.
  const auto bits = atd_storage_bits(ReplacementKind::kLru, paper_params(), 32);
  EXPECT_EQ(bits, 26624ULL);
  EXPECT_DOUBLE_EQ(static_cast<double>(bits) / 8 / 1024, 3.25);

  // The unsampled full ATD the paper calls prohibitive: 53,248 bytes for the
  // introduction's example corresponds to 8 such 6.5KB-per-1024-set slices;
  // our formula reproduces the per-core full-directory figure.
  const auto full = atd_storage_bits(ReplacementKind::kLru, paper_params(), 1);
  EXPECT_EQ(full, 26624ULL * 32);
}

TEST(AtdStorage, PseudoLruAtdsAreSmaller) {
  const auto p = paper_params();
  const auto lru = atd_storage_bits(ReplacementKind::kLru, p, 32);
  const auto nru = atd_storage_bits(ReplacementKind::kNru, p, 32);
  const auto bt = atd_storage_bits(ReplacementKind::kTreePlru, p, 32);
  EXPECT_LT(nru, lru);
  EXPECT_LT(bt, lru);
}

TEST(ComplexityParams, FromGeometry) {
  const auto p = paper_params();
  EXPECT_EQ(p.associativity, 16U);
  EXPECT_EQ(p.sets, 1024ULL);
  EXPECT_EQ(p.line_bytes, 128U);
  EXPECT_EQ(p.tag_bits, 47U);
}

TEST(Complexity, ScalesAcrossAssociativity) {
  // Sanity at other associativities: LRU grows superlinearly, BT stays A-1.
  EXPECT_EQ(replacement_bits_per_set(ReplacementKind::kLru, 4), 8ULL);
  EXPECT_EQ(replacement_bits_per_set(ReplacementKind::kLru, 64), 64ULL * 6);
  EXPECT_EQ(replacement_bits_per_set(ReplacementKind::kTreePlru, 64), 63ULL);
  EXPECT_EQ(replacement_bits_per_set(ReplacementKind::kNru, 64), 64ULL);
}

}  // namespace
}  // namespace plrupart::power
