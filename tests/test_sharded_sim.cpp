// Set-sharded execution mode (SimConfig::sim_threads): the whole point of the
// mode is that it is invisible — every CSV-visible field of SimResult must be
// bit-identical to the serial loop at any shard count, for every supported
// configuration, and configurations the mode cannot shard must silently run
// serial with the same results. This suite pins that contract at the
// simulator API level; tests/test_parallel_stress.cpp re-checks it under TSan
// through the sweep executor.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "plrupart/common/assert.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "sim/sharded_replay.hpp"

namespace plrupart::sim {
namespace {

using workloads::benchmark;
using workloads::make_trace;

/// 256 KB / 16-way / 128 B lines = 128 sets: room for 8 shards while keeping
/// runs fast. The short interval makes every run cross many controller
/// boundaries, so the barrier/merge path is exercised hard.
SimConfig small_config(const std::vector<std::string>& names, const char* acronym,
                       std::uint32_t sim_threads, std::uint64_t instr = 40'000,
                       std::uint64_t warmup = 10'000) {
  SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      acronym, static_cast<std::uint32_t>(names.size()),
      cache::Geometry{.size_bytes = 256 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.interval_cycles = 25'000;
  cfg.hierarchy.l2.sampling_ratio = 8;
  cfg.instr_limit = instr;
  cfg.warmup_instr = warmup;
  cfg.sim_threads = sim_threads;
  for (const auto& name : names) cfg.cores.push_back(benchmark(name).core);
  return cfg;
}

std::vector<std::unique_ptr<TraceSource>> traces_for(
    const std::vector<std::string>& names, std::uint64_t seed = 7) {
  std::vector<std::unique_ptr<TraceSource>> traces;
  for (std::uint32_t i = 0; i < names.size(); ++i)
    traces.push_back(make_trace(benchmark(names[i]), i, seed));
  return traces;
}

SimResult run_one(const std::vector<std::string>& names, const char* acronym,
                  std::uint32_t sim_threads) {
  CmpSimulator sim(small_config(names, acronym, sim_threads), traces_for(names));
  return sim.run();
}

/// Every CSV-visible field, compared exactly (doubles included: the sharded
/// replay executes the same float operations in the same order).
void expect_identical(const SimResult& serial, const SimResult& sharded,
                      const std::string& context) {
  ASSERT_EQ(serial.threads.size(), sharded.threads.size()) << context;
  for (std::size_t i = 0; i < serial.threads.size(); ++i) {
    const auto& a = serial.threads[i];
    const auto& b = sharded.threads[i];
    EXPECT_EQ(a.benchmark, b.benchmark) << context << " core " << i;
    EXPECT_EQ(a.instructions, b.instructions) << context << " core " << i;
    EXPECT_EQ(a.cycles, b.cycles) << context << " core " << i;
    EXPECT_EQ(a.ipc, b.ipc) << context << " core " << i;
    EXPECT_EQ(a.mem.l1_accesses, b.mem.l1_accesses) << context << " core " << i;
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses) << context << " core " << i;
    EXPECT_EQ(a.mem.l2_accesses, b.mem.l2_accesses) << context << " core " << i;
    EXPECT_EQ(a.mem.l2_misses, b.mem.l2_misses) << context << " core " << i;
  }
  EXPECT_EQ(serial.wall_cycles, sharded.wall_cycles) << context;
  EXPECT_EQ(serial.repartitions, sharded.repartitions) << context;
  EXPECT_EQ(serial.l2_config, sharded.l2_config) << context;
}

/// Every configuration acronym the shardability predicate accepts.
const std::vector<const char*>& shardable_configs() {
  static const std::vector<const char*> configs{
      "C-L", "M-L", "M-BT", "M-RRIP", "NOPART-L", "NOPART-BT", "NOPART-RRIP"};
  return configs;
}

TEST(ShardedSim, ByteIdenticalToSerialForEveryShardableConfig) {
  const std::vector<std::string> names{"twolf", "art"};
  for (const char* acronym : shardable_configs()) {
    const SimResult serial = run_one(names, acronym, 1);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      const SimResult sharded = run_one(names, acronym, shards);
      EXPECT_EQ(sharded.sim_shards, shards) << acronym;
      expect_identical(serial, sharded,
                       std::string(acronym) + " @" + std::to_string(shards));
    }
  }
}

TEST(ShardedSim, FourCoreRunMatchesSerial) {
  const std::vector<std::string> names{"twolf", "art", "mcf", "gzip"};
  const SimResult serial = run_one(names, "M-BT", 1);
  const SimResult sharded = run_one(names, "M-BT", 4);
  EXPECT_EQ(sharded.sim_shards, 4u);
  expect_identical(serial, sharded, "M-BT 4-core @4");
}

TEST(ShardedSim, UnshardableConfigsFallBackToSerialWithIdenticalResults) {
  // NRU carries one cache-wide rotating pointer and Random one shared RNG
  // stream; both must silently run the serial loop.
  const std::vector<std::string> names{"twolf", "art"};
  for (const char* acronym : {"M-0.75N", "NOPART-N", "NOPART-R"}) {
    const SimResult serial = run_one(names, acronym, 1);
    const SimResult sharded = run_one(names, acronym, 4);
    EXPECT_EQ(sharded.sim_shards, 1u) << acronym << " must fall back to serial";
    expect_identical(serial, sharded, std::string(acronym) + " fallback");
  }
}

TEST(ShardedSim, ShardabilityPredicateMatchesConfigState) {
  const auto geo =
      cache::Geometry{.size_bytes = 256 * 1024, .associativity = 16, .line_bytes = 128};
  for (const char* acronym : shardable_configs())
    EXPECT_TRUE(internal::set_sharding_supported(
        core::CpaConfig::from_acronym(acronym, 2, geo)))
        << acronym;
  for (const char* acronym : {"M-1.0N", "M-0.75N", "M-0.5N", "NOPART-N", "NOPART-R"})
    EXPECT_FALSE(internal::set_sharding_supported(
        core::CpaConfig::from_acronym(acronym, 2, geo)))
        << acronym;
}

TEST(ShardedSim, ResolveClampsToSetCountAndHonoursAuto) {
  // 16 KB / 16-way / 128 B lines = 8 sets: an absurd sim_threads request must
  // clamp to the set count, and 0 must resolve to hardware concurrency.
  SimConfig cfg = small_config({"twolf", "art"}, "NOPART-L", 64);
  cfg.hierarchy.l2.geometry =
      cache::Geometry{.size_bytes = 16 * 1024, .associativity = 16, .line_bytes = 128};
  EXPECT_EQ(internal::resolve_sim_shards(cfg), 8u);

  cfg.sim_threads = 0;
  const std::uint32_t hw = static_cast<std::uint32_t>(default_parallelism());
  EXPECT_EQ(internal::resolve_sim_shards(cfg), std::min(hw, 8u) <= 1 ? 1u
                                                   : std::min(hw, 8u));

  cfg.sim_threads = 1;
  EXPECT_EQ(internal::resolve_sim_shards(cfg), 1u);
}

TEST(ShardedSim, MergedProfilerHistogramsMatchSerial) {
  // After the final merge, the canonical profilers' SDH registers must equal
  // the serial run's bit for bit: the per-shard replicas partition exactly the
  // accesses the serial profiler saw, and uint64 register sums are exact.
  const std::vector<std::string> names{"twolf", "art"};
  CmpSimulator serial(small_config(names, "M-BT", 1), traces_for(names));
  CmpSimulator sharded(small_config(names, "M-BT", 4), traces_for(names));
  (void)serial.run();
  const SimResult r = sharded.run();
  ASSERT_EQ(r.sim_shards, 4u);
  for (std::uint32_t core = 0; core < names.size(); ++core) {
    const core::Sdh& a = serial.hierarchy().l2().profiler(core).sdh();
    const core::Sdh& b = sharded.hierarchy().l2().profiler(core).sdh();
    ASSERT_EQ(a.associativity(), b.associativity());
    for (std::uint32_t reg = 1; reg <= a.associativity() + 1; ++reg)
      EXPECT_EQ(a.reg(reg), b.reg(reg)) << "core " << core << " r" << reg;
  }
}

TEST(ShardedSim, SecondRunThrowsInvariantError) {
  // run() consumes the hierarchy (warm caches, controller history); calling
  // it again must fail loudly with InvariantError, not return warm garbage.
  const std::vector<std::string> names{"twolf"};
  CmpSimulator sim(small_config(names, "NOPART-L", 1, 5'000, 0), traces_for(names));
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), InvariantError);
}

TEST(ShardedSim, SecondRunThrowsInvariantErrorOnShardedPathToo) {
  const std::vector<std::string> names{"twolf", "art"};
  CmpSimulator sim(small_config(names, "M-BT", 2, 5'000, 0), traces_for(names));
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), InvariantError);
}

TEST(ShardedSim, ZeroWarmupAndSingleCoreWorkSharded) {
  // Degenerate corners of the replicated loop: no warmup baseline snapshot,
  // and a one-core "CMP" (argmin always picks core 0).
  const std::vector<std::string> names{"twolf"};
  SimConfig serial_cfg = small_config(names, "NOPART-BT", 1, 20'000, 0);
  SimConfig sharded_cfg = small_config(names, "NOPART-BT", 8, 20'000, 0);
  CmpSimulator a(std::move(serial_cfg), traces_for(names));
  CmpSimulator b(std::move(sharded_cfg), traces_for(names));
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  EXPECT_EQ(rb.sim_shards, 8u);
  expect_identical(ra, rb, "NOPART-BT 1-core warmup=0 @8");
}

}  // namespace
}  // namespace plrupart::sim
