#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hpp"
#include "common/csv.hpp"

namespace plrupart {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({"1", "2"});
  w.row_of(3.5, "x");
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.5,x\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os, {"v"});
  w.row({"has,comma"});
  w.row({"has\"quote"});
  EXPECT_EQ(os.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), InvariantError);
}

namespace {
Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(Cli, BooleanFlags) {
  const auto cli = make_cli({"--quick", "--n", "5"});
  EXPECT_TRUE(cli.has("--quick"));
  EXPECT_TRUE(cli.has("--n"));
  EXPECT_FALSE(cli.has("--missing"));
}

TEST(Cli, SpaceAndEqualsForms) {
  const auto cli = make_cli({"--a", "10", "--b=20"});
  EXPECT_EQ(cli.get_int("--a", 0), 10);
  EXPECT_EQ(cli.get_int("--b", 0), 20);
  EXPECT_EQ(cli.get_int("--c", 7), 7);
}

TEST(Cli, StringsAndDoubles) {
  const auto cli = make_cli({"--name=foo", "--scale", "0.75"});
  EXPECT_EQ(cli.get_string("--name", "bar"), "foo");
  EXPECT_DOUBLE_EQ(cli.get_double("--scale", 1.0), 0.75);
  EXPECT_EQ(cli.get_string("--other", "dflt"), "dflt");
}

TEST(Cli, BadIntegerThrows) {
  const auto cli = make_cli({"--n", "abc"});
  EXPECT_THROW((void)cli.get_int("--n", 0), InvariantError);
}

}  // namespace
}  // namespace plrupart
