// The sweep engine's contracts: canonical expansion order, position-derived
// per-job seeds, sharding invariants (disjoint, exhaustive, split-independent),
// thread-count-independent CSV output, shard-merge validation, and the same
// determinism guarantees for trace-backed (file-driven) workloads.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/sim/trace_file.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "plrupart/workloads/trace_workload.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart {
namespace {

/// A configs × workloads × sizes matrix small enough to simulate in tests.
runner::RunMatrix small_matrix() {
  runner::RunMatrix m;
  m.configs = {"NOPART-L", "M-0.75N"};
  const auto& all = workloads::workloads_2t();
  m.workloads = {all[0], all[1], all[2]};
  m.l2_kb = {128, 256};
  m.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  m.instr = 20'000;
  m.warmup = 5'000;
  m.interval_cycles = 40'000;
  m.sampling_ratio = 8;
  m.seed = 99;
  return m;
}

TEST(RunMatrix, ExpandsInCanonicalOrder) {
  const auto m = small_matrix();
  const auto jobs = m.expand();
  ASSERT_EQ(jobs.size(), m.size());
  ASSERT_EQ(jobs.size(), 2u * 3u * 2u);
  for (std::size_t wi = 0; wi < m.workloads.size(); ++wi)
    for (std::size_t ci = 0; ci < m.configs.size(); ++ci)
      for (std::size_t li = 0; li < m.l2_kb.size(); ++li) {
        const auto& job = jobs[m.index_of(wi, ci, li)];
        EXPECT_EQ(job.job_index, m.index_of(wi, ci, li));
        EXPECT_EQ(job.workload.id, m.workloads[wi].id);
        EXPECT_EQ(job.config, m.configs[ci]);
        EXPECT_EQ(job.l2.size_bytes, m.l2_kb[li] * 1024);
      }
  // The workload axis is outermost: job 0..3 all belong to the first workload.
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(jobs[k].workload.id, m.workloads[0].id);
}

TEST(RunMatrix, SeedsAreSharedPerWorkloadRowAndDistinctAcrossRows) {
  const auto m = small_matrix();
  const auto jobs = m.expand();
  for (std::size_t wi = 0; wi < m.workloads.size(); ++wi) {
    const auto row_seed = m.job_seed(wi);
    for (std::size_t ci = 0; ci < m.configs.size(); ++ci)
      for (std::size_t li = 0; li < m.l2_kb.size(); ++li)
        EXPECT_EQ(jobs[m.index_of(wi, ci, li)].seed, row_seed);
  }
  EXPECT_NE(m.job_seed(0), m.job_seed(1));
  EXPECT_NE(m.job_seed(1), m.job_seed(2));
}

TEST(RunMatrix, JobKeyNamesWorkloadConfigAndSize) {
  const auto jobs = small_matrix().expand();
  EXPECT_EQ(jobs[0].key(), jobs[0].workload.id + "|NOPART-L|128");
}

TEST(RunMatrix, ShardsArePairwiseDisjointAndExhaustive) {
  const auto m = small_matrix();
  const auto full = m.expand();
  for (const std::size_t n : {1u, 2u, 3u, 5u, 12u, 17u}) {
    std::set<std::uint64_t> seen;
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto slice = m.shard(i, n);
      total += slice.size();
      for (std::size_t k = 0; k < slice.size(); ++k) {
        const auto& job = slice[k];
        EXPECT_TRUE(seen.insert(job.job_index).second)
            << "job " << job.job_index << " appears in two shards of split n=" << n;
        if (k > 0) {
          EXPECT_LT(slice[k - 1].job_index, job.job_index);
        }
        // The spec — including its seed — is identical to the full matrix's:
        // seeds are independent of the shard split.
        const auto& ref = full[job.job_index];
        EXPECT_EQ(job.seed, ref.seed);
        EXPECT_EQ(job.config, ref.config);
        EXPECT_EQ(job.workload.id, ref.workload.id);
        EXPECT_EQ(job.l2.size_bytes, ref.l2.size_bytes);
      }
    }
    EXPECT_EQ(total, full.size()) << "shard union != full matrix for n=" << n;
    EXPECT_EQ(seen.size(), full.size());
  }
}

TEST(RunMatrix, ShardRejectsBadSplit) {
  const auto m = small_matrix();
  EXPECT_THROW((void)m.shard(2, 2), InvariantError);
  EXPECT_THROW((void)m.shard(0, 0), InvariantError);
}

TEST(RunMatrix, ValidateRejectsBadInput) {
  auto m = small_matrix();
  m.configs = {"NOT-A-CONFIG"};
  EXPECT_THROW(m.validate(), InvariantError);
  m = small_matrix();
  m.configs.clear();
  EXPECT_THROW(m.validate(), InvariantError);
  m = small_matrix();
  m.assoc = 1;  // 2-thread workloads cannot fit a 1-way L2
  EXPECT_THROW(m.validate(), InvariantError);
}

/// Full matrix -> CSV at a given thread count.
std::string csv_at_threads(const runner::RunMatrix& m, std::size_t threads) {
  runner::SweepOptions opts;
  opts.threads = threads;
  const auto results = runner::SweepExecutor(opts).run(m.expand());
  std::ostringstream os;
  runner::write_csv(os, results);
  return os.str();
}

TEST(SweepExecutor, CsvIsByteIdenticalAtAnyThreadCount) {
  const auto m = small_matrix();
  const auto serial = csv_at_threads(m, 1);
  const auto parallel4 = csv_at_threads(m, 4);
  EXPECT_EQ(serial, parallel4);
  EXPECT_NE(serial.find("\n0,"), std::string::npos) << "expected job-0 rows";
}

TEST(SweepExecutor, MergedShardCsvsEqualTheUnshardedRun) {
  const auto m = small_matrix();
  const auto unsharded = csv_at_threads(m, 1);

  std::vector<std::string> shard_csvs;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto results = runner::SweepExecutor({.threads = 2}).run(m.shard(i, 2));
    std::ostringstream os;
    runner::write_csv(os, results);
    shard_csvs.push_back(os.str());
  }

  std::istringstream s0(shard_csvs[0]), s1(shard_csvs[1]);
  std::ostringstream merged;
  runner::merge_csv_streams({&s1, &s0}, {"s1", "s0"}, merged);  // order-insensitive
  EXPECT_EQ(merged.str(), unsharded);
}

TEST(MergeCsv, RejectsDuplicateJobKeys) {
  const auto m = small_matrix();
  const auto results = runner::SweepExecutor({.threads = 2}).run(m.shard(0, 2));
  std::ostringstream os;
  runner::write_csv(os, results);
  std::istringstream a(os.str()), b(os.str());
  std::ostringstream merged;
  EXPECT_THROW(runner::merge_csv_streams({&a, &b}, {"a", "b"}, merged), InvariantError);
}

TEST(MergeCsv, RejectsDuplicatedPerCoreBlockWithinOneShard) {
  // A rerun appended to the same file (`plrupart ... >> shard.csv`) repeats a
  // job's whole core block; adjacent-pair checks alone would miss it because
  // consecutive cores still differ (0,1,0,1).
  const auto m = small_matrix();
  const auto results = runner::SweepExecutor({.threads = 1}).run(m.expand());
  std::ostringstream os;
  runner::write_csv(os, results);
  const auto csv = os.str();
  const auto header_end = csv.find('\n');
  const auto body = csv.substr(header_end + 1);
  std::istringstream doubled(csv + body);  // every job's block appears twice
  std::ostringstream merged;
  EXPECT_THROW(runner::merge_csv_streams({&doubled}, {"doubled"}, merged),
               InvariantError);
}

// ---------------------------------------------------------------------------
// Trace-backed workloads: captured files must compose with every sweep-engine
// contract exactly like catalog workloads.
// ---------------------------------------------------------------------------

class TraceBackedMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plrupart_runner_trace_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    // Two recorded benchmarks, one per core, deliberately in different
    // formats so the sweep exercises both decoders.
    record("gzip", 0, trace_a(), sim::TraceFormat::kTextV1);
    record("twolf", 1, trace_b(), sim::TraceFormat::kBinaryV2);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string trace_a() const { return (dir_ / "a.trace").string(); }
  [[nodiscard]] std::string trace_b() const { return (dir_ / "b.trace").string(); }

  void record(const char* bench, std::uint32_t core, const std::string& path,
              sim::TraceFormat format) const {
    const auto trace = workloads::make_trace(workloads::benchmark(bench), core, 5);
    sim::write_trace_file(path, sim::record_trace(*trace, 30'000), format);
  }

  /// A configs x one-trace-workload x sizes matrix, small enough for tests.
  [[nodiscard]] runner::RunMatrix trace_matrix() const {
    runner::RunMatrix m;
    m.configs = {"NOPART-L", "M-0.75N"};
    m.workloads = {workloads::workload_from_traces({trace_a(), trace_b()})};
    m.l2_kb = {128, 256};
    m.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
    m.instr = 20'000;
    m.warmup = 5'000;
    m.interval_cycles = 40'000;
    m.sampling_ratio = 8;
    m.seed = 99;
    return m;
  }

  std::filesystem::path dir_;
};

TEST_F(TraceBackedMatrixTest, CsvIsByteIdenticalAcrossThreadCountsAndShardMerges) {
  const auto m = trace_matrix();
  const auto serial = csv_at_threads(m, 1);
  EXPECT_EQ(serial, csv_at_threads(m, 4))
      << "trace-backed sweep must not depend on the worker count";
  EXPECT_NE(serial.find("trace:a.trace+b.trace"), std::string::npos)
      << "workload id should name the trace files";
  EXPECT_NE(serial.find("a.trace"), std::string::npos)
      << "per-core benchmark column should carry the trace basename";

  std::vector<std::string> shard_csvs;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto results = runner::SweepExecutor({.threads = 2}).run(m.shard(i, 2));
    std::ostringstream os;
    runner::write_csv(os, results);
    shard_csvs.push_back(os.str());
  }
  std::istringstream s0(shard_csvs[0]), s1(shard_csvs[1]);
  std::ostringstream merged;
  runner::merge_csv_streams({&s1, &s0}, {"s1", "s0"}, merged);
  EXPECT_EQ(merged.str(), serial)
      << "sharded trace-backed sweep must merge back to the unsharded CSV";
}

TEST_F(TraceBackedMatrixTest, TraceWorkloadsComposeWithCatalogWorkloadsInOneMatrix) {
  auto m = trace_matrix();
  m.workloads.push_back(workloads::workloads_2t()[0]);  // mixed axis
  const auto csv = csv_at_threads(m, 2);
  EXPECT_NE(csv.find("trace:a.trace+b.trace"), std::string::npos);
  EXPECT_NE(csv.find("2T_01"), std::string::npos);
  EXPECT_EQ(csv, csv_at_threads(m, 1));
}

TEST(TraceWorkload, DisambiguatesCollidingBasenamesAcrossDirectories) {
  // Different captures sharing a file name must stay distinguishable in the
  // CSV; co-running the same path keeps its plain name.
  const auto collide = workloads::workload_from_traces({"a/x.trace", "b/x.trace"});
  EXPECT_EQ(collide.benchmarks, (std::vector<std::string>{"x.trace@0", "x.trace@1"}));
  EXPECT_EQ(collide.id, "trace:x.trace@0+x.trace@1");
  const auto copies = workloads::workload_from_traces({"a/x.trace", "a/x.trace"});
  EXPECT_EQ(copies.benchmarks, (std::vector<std::string>{"x.trace", "x.trace"}));
}

TEST_F(TraceBackedMatrixTest, ValidateFailsFastOnBadTraceFiles) {
  auto m = trace_matrix();
  m.workloads = {workloads::workload_from_traces({(dir_ / "missing.trace").string()})};
  EXPECT_THROW(m.validate(), InvariantError);

  // Present but malformed: validate() must catch it before any job runs.
  const auto bad = (dir_ / "bad.trace").string();
  std::ofstream(bad) << "# plrupart-trace v1\nnot a record\n";
  m.workloads = {workloads::workload_from_traces({bad})};
  EXPECT_THROW(m.validate(), InvariantError);

  // Core-count mismatch between traces and benchmarks is rejected.
  auto w = workloads::workload_from_traces({trace_a()});
  w.benchmarks.push_back("phantom");
  m.workloads = {w};
  EXPECT_THROW(m.validate(), InvariantError);
}

TEST(MergeCsv, RejectsHeaderMismatchAndMissingShards) {
  std::istringstream bad_header("not,the,schema\n");
  std::ostringstream out;
  EXPECT_THROW(runner::merge_csv_streams({&bad_header}, {"bad"}, out), InvariantError);

  // A lone shard 1/2 is missing job 0 -> incomplete shard set.
  const auto m = small_matrix();
  const auto results = runner::SweepExecutor({.threads = 2}).run(m.shard(1, 2));
  std::ostringstream os;
  runner::write_csv(os, results);
  std::istringstream lonely(os.str());
  std::ostringstream merged;
  EXPECT_THROW(runner::merge_csv_streams({&lonely}, {"s1"}, merged), InvariantError);
}

}  // namespace
}  // namespace plrupart
