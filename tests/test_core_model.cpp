#include "plrupart/sim/core_model.hpp"

#include <gtest/gtest.h>

namespace plrupart::sim {
namespace {

TEST(CoreModel, GapInstructionsAtBaseIpc) {
  CoreModel m(CoreParams{.base_ipc = 2.0});
  m.commit_gap(100);
  EXPECT_DOUBLE_EQ(m.cycles(), 50.0);
  EXPECT_EQ(m.instructions(), 100ULL);
  EXPECT_DOUBLE_EQ(m.ipc(), 2.0);
}

TEST(CoreModel, L1HitCostsOnlyIssueSlot) {
  CoreModel m(CoreParams{.base_ipc = 1.0});
  m.commit_mem(AccessLevel::kL1);
  EXPECT_DOUBLE_EQ(m.cycles(), 1.0);
  EXPECT_EQ(m.instructions(), 1ULL);
}

TEST(CoreModel, MissPenaltiesScaledByStallFraction) {
  const CoreParams p{.base_ipc = 1.0,
                     .l2_hit_penalty = 11,
                     .mem_penalty = 250,
                     .stall_fraction = 0.5};
  CoreModel m(p);
  m.commit_mem(AccessLevel::kL2);
  EXPECT_DOUBLE_EQ(m.cycles(), 1.0 + 5.5);
  m.commit_mem(AccessLevel::kMemory);
  EXPECT_DOUBLE_EQ(m.cycles(), 1.0 + 5.5 + 1.0 + 125.0);
}

TEST(CoreModel, FullyOverlappedCoreIgnoresMisses) {
  CoreModel m(CoreParams{.base_ipc = 4.0, .stall_fraction = 0.0});
  for (int i = 0; i < 100; ++i) m.commit_mem(AccessLevel::kMemory);
  EXPECT_DOUBLE_EQ(m.ipc(), 4.0);
}

TEST(CoreModel, IpcDegradesWithMemoryBoundStreams) {
  CoreModel fast(CoreParams{.base_ipc = 2.0, .stall_fraction = 0.7});
  CoreModel slow(CoreParams{.base_ipc = 2.0, .stall_fraction = 0.7});
  for (int i = 0; i < 1000; ++i) {
    fast.commit_gap(3);
    fast.commit_mem(AccessLevel::kL1);
    slow.commit_gap(3);
    slow.commit_mem(AccessLevel::kMemory);
  }
  EXPECT_GT(fast.ipc(), 5.0 * slow.ipc()) << "250-cycle stalls dominate";
}

TEST(CoreModel, ResetZeroesState) {
  CoreModel m(CoreParams{});
  m.commit_gap(10);
  m.reset();
  EXPECT_DOUBLE_EQ(m.cycles(), 0.0);
  EXPECT_EQ(m.instructions(), 0ULL);
  EXPECT_DOUBLE_EQ(m.ipc(), 0.0);
}

TEST(CoreParams, ValidationRejectsNonsense) {
  EXPECT_THROW(CoreParams{.base_ipc = 0.0}.validate(), InvariantError);
  EXPECT_THROW(CoreParams{.stall_fraction = 1.5}.validate(), InvariantError);
  EXPECT_THROW(CoreParams{.mem_penalty = -1.0}.validate(), InvariantError);
}

}  // namespace
}  // namespace plrupart::sim
