// Throughput smoke gate for intra-run set-sharded parallelism.
//
// Replays one big two-core run twice — the serial loop, then the set-sharded
// engine at 4 workers — and requires the sharded replay to deliver at least
// 2x the serial accesses/second while producing identical results. The
// workload is L1-hostile (large footprints, streaming) so the run is
// dominated by the L2/profiler work the shards parallelize, not by the L1
// probes the demux thread serializes.
//
// The gate needs 5 free hardware threads (4 shard workers + the demux
// thread); on smaller hosts — including this repo's 1-core CI container tier
// — it reports a skip and exits 0, because a 4-way run timesliced onto fewer
// cores measures the scheduler, not the engine.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

using namespace plrupart;

namespace {

constexpr double kRequiredSpeedup = 2.0;
constexpr std::uint32_t kShards = 4;
constexpr std::uint64_t kInstr = 1'500'000;
constexpr std::uint64_t kWarmup = 200'000;

sim::SimConfig make_config(std::uint32_t sim_threads,
                           std::vector<std::unique_ptr<sim::TraceSource>>& traces) {
  const std::vector<std::string> names{"art", "mcf"};
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 8 * 1024, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      "M-BT", static_cast<std::uint32_t>(names.size()),
      cache::Geometry{.size_bytes = 1024 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.instr_limit = kInstr;
  cfg.warmup_instr = kWarmup;
  cfg.sim_threads = sim_threads;
  traces.clear();
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    const auto& prof = workloads::benchmark(names[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i, 11));
  }
  return cfg;
}

/// Wall seconds and the result, for one full run at the given worker count.
std::pair<double, sim::SimResult> timed_run(std::uint32_t sim_threads) {
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  sim::SimConfig cfg = make_config(sim_threads, traces);
  sim::CmpSimulator simulator(std::move(cfg), std::move(traces));
  const auto t0 = std::chrono::steady_clock::now();
  sim::SimResult r = simulator.run();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), std::move(r)};
}

std::uint64_t measured_accesses(const sim::SimResult& r) {
  std::uint64_t n = 0;
  for (const auto& th : r.threads) n += th.mem.l1_accesses;
  return n;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < kShards + 1) {
    std::printf("perf smoke (sharded) SKIPPED: %u hardware threads < %u needed "
                "(%u shard workers + demux); the gate runs on larger hosts\n",
                hw, kShards + 1, kShards);
    return 0;
  }

  // Best-of-two per side, serial first, to keep the ratio stable on busy
  // machines without stretching the gate past its timeout.
  double t_serial = 1e30;
  double t_sharded = 1e30;
  sim::SimResult serial;
  sim::SimResult sharded;
  for (int rep = 0; rep < 2; ++rep) {
    auto [ts, rs] = timed_run(1);
    if (ts < t_serial) t_serial = ts;
    serial = std::move(rs);
    auto [tp, rp] = timed_run(kShards);
    if (tp < t_sharded) t_sharded = tp;
    sharded = std::move(rp);
  }

  if (sharded.sim_shards != kShards) {
    std::printf("perf smoke (sharded) FAILED: expected %u shards, engine ran %u\n",
                kShards, sharded.sim_shards);
    return 1;
  }
  // The speedup is meaningless if the sharded run did different work.
  for (std::size_t i = 0; i < serial.threads.size(); ++i) {
    if (serial.threads[i].cycles != sharded.threads[i].cycles ||
        serial.threads[i].mem.l2_misses != sharded.threads[i].mem.l2_misses) {
      std::printf("perf smoke (sharded) FAILED: sharded results diverge from serial "
                  "on core %zu\n", i);
      return 1;
    }
  }

  const double acc = static_cast<double>(measured_accesses(serial));
  const double speedup = t_serial / t_sharded;
  const bool ok = speedup >= kRequiredSpeedup;
  std::printf("serial %7.2f M acc/s, %u-shard %7.2f M acc/s, speedup %.2fx "
              "(need >= %.2fx) %s\n",
              acc / t_serial / 1e6, kShards, acc / t_sharded / 1e6, speedup,
              kRequiredSpeedup, ok ? "OK" : "FAIL");
  if (!ok) {
    std::printf("perf smoke (sharded) FAILED: set-sharded replay lost its scaling\n");
    return 1;
  }
  std::printf("perf smoke (sharded) OK\n");
  return 0;
}
