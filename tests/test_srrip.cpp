// SRRIP extension: RRPV state machine, scoped aging, quartile estimates.
#include "plrupart/cache/srrip.hpp"

#include <gtest/gtest.h>

#include "plrupart/cache/cache.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/core/partitioned_cache.hpp"

namespace plrupart::cache {
namespace {

Geometry small_geo(std::uint32_t ways, std::uint64_t sets = 4) {
  return Geometry{.size_bytes = sets * ways * 64, .associativity = ways, .line_bytes = 64};
}

TEST(Srrip, ColdLinesLookDistant) {
  Srrip s(small_geo(8));
  for (std::uint32_t w = 0; w < 8; ++w) EXPECT_EQ(s.rrpv(0, w), Srrip::kMaxRrpv);
}

TEST(Srrip, FillInsertsLongHitPromotesNear) {
  Srrip s(small_geo(8));
  s.on_fill(0, 3, s.all_ways());
  EXPECT_EQ(s.rrpv(0, 3), Srrip::kInsertRrpv);
  s.on_hit(0, 3, s.all_ways());
  EXPECT_EQ(s.rrpv(0, 3), Srrip::kHitRrpv);
}

TEST(Srrip, VictimIsFirstDistantLine) {
  Srrip s(small_geo(4));
  // Promote ways 0 and 1; ways 2,3 stay at RRPV 3.
  s.on_hit(0, 0, s.all_ways());
  s.on_hit(0, 1, s.all_ways());
  EXPECT_EQ(s.choose_victim(0, s.all_ways()), 2U);
}

TEST(Srrip, AgingSweepWhenNothingDistant) {
  Srrip s(small_geo(4));
  for (std::uint32_t w = 0; w < 4; ++w) s.on_hit(0, w, s.all_ways());  // all RRPV 0
  const auto victim = s.choose_victim(0, s.all_ways());
  EXPECT_EQ(victim, 0U) << "three aging sweeps make everyone distant; lowest way wins";
  for (std::uint32_t w = 0; w < 4; ++w) EXPECT_EQ(s.rrpv(0, w), Srrip::kMaxRrpv);
}

TEST(Srrip, AgingIsScopedToTheVictimMask) {
  Srrip s(small_geo(4));
  for (std::uint32_t w = 0; w < 4; ++w) s.on_hit(0, w, s.all_ways());
  // Victim restricted to ways {2,3}: only their RRPVs may age.
  (void)s.choose_victim(0, 0b1100);
  EXPECT_EQ(s.rrpv(0, 0), Srrip::kHitRrpv);
  EXPECT_EQ(s.rrpv(0, 1), Srrip::kHitRrpv);
}

TEST(Srrip, QuartileEstimates) {
  Srrip s(small_geo(16));
  s.on_hit(0, 5, s.all_ways());   // RRPV 0 -> positions [1,4]
  s.on_fill(0, 9, s.all_ways());  // RRPV 2 -> positions [9,12]
  const auto near = s.estimate_position(0, 5);
  EXPECT_EQ(near.lo, 1U);
  EXPECT_EQ(near.hi, 4U);
  const auto longish = s.estimate_position(0, 9);
  EXPECT_EQ(longish.lo, 9U);
  EXPECT_EQ(longish.hi, 12U);
  const auto distant = s.estimate_position(0, 0);  // cold: RRPV 3
  EXPECT_EQ(distant.hi, 16U);
}

TEST(Srrip, ScanResistanceBeatsLruOnMixedStream) {
  // A hot set of 3 lines + an endless scan through a 4-way cache set: LRU
  // cycles the hot lines out; SRRIP's long insertion keeps them resident.
  const auto g = small_geo(4, 1);
  SetAssocCache lru(g, ReplacementKind::kLru, 1, EnforcementMode::kNone);
  SetAssocCache srrip(g, ReplacementKind::kSrrip, 1, EnforcementMode::kNone);
  Rng rng(3);
  std::uint64_t scan_tag = 100;
  for (int i = 0; i < 20000; ++i) {
    Addr a;
    if (rng.next_bool(0.6)) {
      a = rng.next_below(3) * g.line_bytes * g.sets();  // hot tags 0..2
    } else {
      a = (scan_tag++) * g.line_bytes * g.sets();  // one-shot scan line
    }
    lru.access(0, a, false);
    srrip.access(0, a, false);
  }
  EXPECT_LT(srrip.stats().per_core[0].misses, lru.stats().per_core[0].misses);
}

TEST(Srrip, WorksAsPartitionedL2Config) {
  auto cfg = core::CpaConfig::from_acronym(
      "M-RRIP", 2,
      Geometry{.size_bytes = 32768, .associativity = 8, .line_bytes = 64});
  EXPECT_EQ(cfg.acronym(), "M-RRIP");
  core::PartitionedCacheSystem sys(cfg);
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const auto core = static_cast<CoreId>(rng.next_below(2));
    sys.access(core, rng.next_below(1 << 22), false, static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(sys.profiler(0).sdh().total(), 0ULL);
  EXPECT_EQ(sys.profiler(0).name(), "eSDH-SRRIP");
}

}  // namespace
}  // namespace plrupart::cache
