// Fair, QoS and static partition policies.
#include <gtest/gtest.h>

#include "plrupart/core/fair.hpp"
#include "plrupart/core/qos.hpp"
#include "plrupart/core/static_policy.hpp"

namespace plrupart::core {
namespace {

TEST(StaticEven, SplitsEvenlyWithRemainderToLowIds) {
  EXPECT_EQ(StaticEvenPolicy::even_split(2, 16), (Partition{8, 8}));
  EXPECT_EQ(StaticEvenPolicy::even_split(3, 16), (Partition{6, 5, 5}));
  EXPECT_EQ(StaticEvenPolicy::even_split(5, 16), (Partition{4, 3, 3, 3, 3}));
  EXPECT_EQ(StaticEvenPolicy::even_split(16, 16), Partition(16, 1));
}

TEST(StaticEven, IgnoresCurves) {
  StaticEvenPolicy policy;
  const MissCurve steep({100, 50, 10, 5, 0});
  const MissCurve flat({100, 100, 100, 100, 100});
  EXPECT_EQ(policy.decide({steep, flat}, 4), (Partition{2, 2}));
}

TEST(Fair, EqualThreadsSplitEvenly) {
  FairPolicy policy;
  const MissCurve c({100, 80, 60, 40, 30, 20, 10, 5, 0});
  const auto p = policy.decide({c, c}, 8);
  EXPECT_EQ(p, (Partition{4, 4}));
}

TEST(Fair, SufferingThreadGetsRelief) {
  FairPolicy policy;
  // Thread 0 is devastated without ways (ratio misses(w)/misses(A) huge);
  // thread 1 barely cares.
  const MissCurve hurting({1000, 900, 700, 400, 200, 100, 40, 10, 9});
  const MissCurve content({100, 98, 97, 96, 95, 95, 95, 95, 95});
  const auto p = policy.decide({hurting, content}, 8);
  EXPECT_GT(p[0], p[1]);
  validate_partition(p, 8);
}

TEST(Fair, SlowdownProxyDefinition) {
  const MissCurve c({100, 50, 20, 10, 4});
  EXPECT_DOUBLE_EQ(FairPolicy::slowdown_proxy(c, 4), 1.0);
  EXPECT_DOUBLE_EQ(FairPolicy::slowdown_proxy(c, 1), 51.0 / 5.0);
}

TEST(Qos, ReservesMinimumWaysForTheTarget) {
  // Target thread reaches 1.1x its best miss count at 3 ways.
  const MissCurve target({1000, 500, 200, 105, 100});
  const MissCurve other({400, 300, 200, 100, 50});
  QosPolicy policy(QosTarget{.core = 0, .factor = 1.1});
  const auto p = policy.decide({target, other}, 4);
  EXPECT_EQ(p[0], 3U);
  EXPECT_EQ(p[1], 1U);
}

TEST(Qos, TargetCanBeAnyCore) {
  const MissCurve target({1000, 500, 200, 105, 100});
  const MissCurve other({400, 300, 200, 100, 50});
  QosPolicy policy(QosTarget{.core = 1, .factor = 1.1});
  const auto p = policy.decide({other, target}, 4);
  EXPECT_EQ(p[1], 3U);
}

TEST(Qos, CapLeavesOneWayPerOtherCore) {
  // Even an insatiable target cannot starve the others below 1 way each.
  const MissCurve insatiable({1000, 999, 998, 997, 996, 995, 994, 993, 992});
  const MissCurve other({10, 9, 8, 7, 6, 5, 4, 3, 2});
  QosPolicy policy(QosTarget{.core = 0, .factor = 1.0});
  const auto p = policy.decide({insatiable, other, other}, 8);
  EXPECT_EQ(p[0], 6U);
  EXPECT_GE(p[1], 1U);
  EXPECT_GE(p[2], 1U);
  validate_partition(p, 8);
}

TEST(Qos, RemainingWaysDistributedByMinMisses) {
  const MissCurve target({100, 10, 10, 10, 10, 10, 10, 10, 10});  // happy with 1 way
  const MissCurve steep({800, 700, 600, 500, 400, 300, 200, 100, 0});
  const MissCurve flat({800, 800, 800, 800, 800, 800, 800, 800, 800});
  QosPolicy policy(QosTarget{.core = 0, .factor = 1.0});
  const auto p = policy.decide({target, steep, flat}, 8);
  EXPECT_EQ(p[0], 1U);
  EXPECT_EQ(p[1], 6U) << "MinMisses gives the leftovers to the steep curve";
  EXPECT_EQ(p[2], 1U);
}

TEST(Qos, SingleThreadGetsEverything) {
  const MissCurve c({10, 8, 6, 4, 2});
  QosPolicy policy(QosTarget{.core = 0, .factor = 2.0});
  EXPECT_EQ(policy.decide({c}, 4), Partition{4});
}

TEST(Qos, RejectsFactorBelowOne) {
  EXPECT_THROW(QosPolicy(QosTarget{.core = 0, .factor = 0.5}), InvariantError);
}

TEST(Qos, WaysForBudgetMonotoneInFactor) {
  const MissCurve c({1000, 500, 200, 105, 100});
  const auto strict = QosPolicy::ways_for_budget(c, 1.0, 4);
  const auto loose = QosPolicy::ways_for_budget(c, 3.0, 4);
  EXPECT_GE(strict, loose);
}

}  // namespace
}  // namespace plrupart::core
