// End-to-end determinism across every shipped configuration: identical
// (config, seed) pairs must produce bit-identical results — the property all
// benchmark comparisons in this repo rest on. Also covers determinism of the
// cache's SoA state machine across reset() and invalidate().
#include <gtest/gtest.h>

#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

namespace plrupart {
namespace {

class ConfigDeterminism : public ::testing::TestWithParam<const char*> {};

sim::SimResult run_once(const std::string& acronym, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      acronym, 2,
      cache::Geometry{.size_bytes = 128 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.interval_cycles = 40'000;
  cfg.hierarchy.l2.seed = seed;
  cfg.instr_limit = 60'000;
  cfg.warmup_instr = 20'000;
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const auto& prof = workloads::benchmark(i == 0 ? "vpr" : "gap");
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i, seed));
  }
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

TEST_P(ConfigDeterminism, IdenticalRunsAreBitIdentical) {
  const auto a = run_once(GetParam(), 77);
  const auto b = run_once(GetParam(), 77);
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_EQ(a.threads[i].instructions, b.threads[i].instructions);
    EXPECT_DOUBLE_EQ(a.threads[i].cycles, b.threads[i].cycles);
    EXPECT_EQ(a.threads[i].mem.l1_misses, b.threads[i].mem.l1_misses);
    EXPECT_EQ(a.threads[i].mem.l2_accesses, b.threads[i].mem.l2_accesses);
    EXPECT_EQ(a.threads[i].mem.l2_misses, b.threads[i].mem.l2_misses);
  }
  EXPECT_DOUBLE_EQ(a.wall_cycles, b.wall_cycles);
  EXPECT_EQ(a.repartitions, b.repartitions);
}

TEST_P(ConfigDeterminism, DifferentSeedsDiverge) {
  const auto a = run_once(GetParam(), 1);
  const auto b = run_once(GetParam(), 2);
  // Some observable must differ (addresses, interleavings, random victims).
  const bool differs = a.threads[0].mem.l2_misses != b.threads[0].mem.l2_misses ||
                       a.threads[1].mem.l2_misses != b.threads[1].mem.l2_misses ||
                       a.wall_cycles != b.wall_cycles;
  EXPECT_TRUE(differs);
}

TEST_P(ConfigDeterminism, RunsProduceWork) {
  const auto r = run_once(GetParam(), 5);
  for (const auto& t : r.threads) {
    EXPECT_GE(t.instructions, 60'000ULL);
    EXPECT_GT(t.ipc, 0.0);
    EXPECT_GT(t.mem.l2_accesses, 0ULL) << "workload must exercise the L2";
  }
}

// --- SoA cache-state determinism across reset()/invalidate() ---------------

class CacheStateDeterminism
    : public ::testing::TestWithParam<cache::ReplacementKind> {};

std::vector<cache::AccessOutcome> replay(cache::SetAssocCache& c, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cache::AccessOutcome> outcomes;
  outcomes.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const auto core = static_cast<cache::CoreId>(rng.next_below(c.num_cores()));
    const cache::Addr addr =
        rng.next_below(8 * c.geometry().lines()) * c.geometry().line_bytes;
    outcomes.push_back(c.access(core, addr, rng.next_below(4) == 0));
  }
  return outcomes;
}

void expect_same_outcomes(const std::vector<cache::AccessOutcome>& a,
                          const std::vector<cache::AccessOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].hit, b[i].hit) << "access " << i;
    ASSERT_EQ(a[i].way, b[i].way) << "access " << i;
    ASSERT_EQ(a[i].evicted_valid, b[i].evicted_valid) << "access " << i;
    ASSERT_EQ(a[i].evicted_line, b[i].evicted_line) << "access " << i;
    ASSERT_EQ(a[i].evicted_owner, b[i].evicted_owner) << "access " << i;
  }
}

TEST_P(CacheStateDeterminism, ResetRestoresTheColdSoAState) {
  const cache::Geometry geo{.size_bytes = 64 * 1024, .associativity = 16,
                            .line_bytes = 128};
  cache::SetAssocCache c(geo, GetParam(), 2, cache::EnforcementMode::kNone, 99);
  const auto first = replay(c, 7);
  c.reset();
  // After reset every tag array, partial-tag filter word, valid bitmask and
  // ownership bitmask must be back to the post-construction state: the same
  // trace replays with identical hits, ways, and evictions.
  const auto second = replay(c, 7);
  expect_same_outcomes(first, second);
  for (std::uint64_t set = 0; set < geo.sets(); ++set)
    for (cache::CoreId core = 0; core < 2; ++core)
      EXPECT_LE(c.owned_in_set(set, core), geo.associativity);
}

TEST_P(CacheStateDeterminism, InvalidateDropsExactlyTheLine) {
  const cache::Geometry geo{.size_bytes = 64 * 1024, .associativity = 16,
                            .line_bytes = 128};
  cache::SetAssocCache c(geo, GetParam(), 2, cache::EnforcementMode::kNone, 99);
  Rng rng(13);
  std::vector<cache::Addr> resident;
  for (int i = 0; i < 10'000; ++i) {
    const cache::Addr addr = rng.next_below(4 * geo.lines()) * geo.line_bytes;
    c.access(static_cast<cache::CoreId>(rng.next_below(2)), addr);
    if (resident.size() < 64) resident.push_back(addr);
  }
  for (const auto addr : resident) {
    const auto before = c.probe(addr);
    if (!before.hit) {
      EXPECT_FALSE(c.invalidate(addr));
      continue;
    }
    const std::uint64_t set = geo.set_index(geo.line_addr(addr));
    const std::uint32_t owned_before =
        c.owned_in_set(set, 0) + c.owned_in_set(set, 1);
    ASSERT_TRUE(c.invalidate(addr));
    // The line is gone, exactly one ownership bit was released, and a repeated
    // invalidate is a no-op.
    EXPECT_FALSE(c.probe(addr).hit);
    EXPECT_EQ(c.owned_in_set(set, 0) + c.owned_in_set(set, 1), owned_before - 1);
    EXPECT_FALSE(c.invalidate(addr));
    // The next access to that address must miss and refill an invalid way.
    const auto refill = c.access(0, addr);
    EXPECT_FALSE(refill.hit);
    EXPECT_FALSE(refill.evicted_valid) << "refill must use the invalidated way";
    EXPECT_TRUE(c.probe(addr).hit);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheStateDeterminism,
                         ::testing::Values(cache::ReplacementKind::kLru,
                                           cache::ReplacementKind::kNru,
                                           cache::ReplacementKind::kTreePlru,
                                           cache::ReplacementKind::kRandom,
                                           cache::ReplacementKind::kSrrip),
                         [](const auto& param_info) { return to_string(param_info.param); });

std::string config_name(const ::testing::TestParamInfo<const char*>& param_info) {
  std::string s = param_info.param;
  for (auto& c : s) {
    if (c == '-' || c == '.') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigDeterminism,
                         ::testing::Values("C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N",
                                           "M-BT", "M-RRIP", "NOPART-L", "NOPART-N",
                                           "NOPART-BT", "NOPART-R", "NOPART-RRIP"),
                         config_name);

}  // namespace
}  // namespace plrupart
