// End-to-end determinism across every shipped configuration: identical
// (config, seed) pairs must produce bit-identical results — the property all
// benchmark comparisons in this repo rest on.
#include <gtest/gtest.h>

#include "sim/cmp_simulator.hpp"
#include "workloads/catalog.hpp"
#include "workloads/generators.hpp"

namespace plrupart {
namespace {

class ConfigDeterminism : public ::testing::TestWithParam<const char*> {};

sim::SimResult run_once(const std::string& acronym, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      acronym, 2,
      cache::Geometry{.size_bytes = 128 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.interval_cycles = 40'000;
  cfg.hierarchy.l2.seed = seed;
  cfg.instr_limit = 60'000;
  cfg.warmup_instr = 20'000;
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const auto& prof = workloads::benchmark(i == 0 ? "vpr" : "gap");
    cfg.cores.push_back(prof.core);
    traces.push_back(workloads::make_trace(prof, i, seed));
  }
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

TEST_P(ConfigDeterminism, IdenticalRunsAreBitIdentical) {
  const auto a = run_once(GetParam(), 77);
  const auto b = run_once(GetParam(), 77);
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_EQ(a.threads[i].instructions, b.threads[i].instructions);
    EXPECT_DOUBLE_EQ(a.threads[i].cycles, b.threads[i].cycles);
    EXPECT_EQ(a.threads[i].mem.l1_misses, b.threads[i].mem.l1_misses);
    EXPECT_EQ(a.threads[i].mem.l2_accesses, b.threads[i].mem.l2_accesses);
    EXPECT_EQ(a.threads[i].mem.l2_misses, b.threads[i].mem.l2_misses);
  }
  EXPECT_DOUBLE_EQ(a.wall_cycles, b.wall_cycles);
  EXPECT_EQ(a.repartitions, b.repartitions);
}

TEST_P(ConfigDeterminism, DifferentSeedsDiverge) {
  const auto a = run_once(GetParam(), 1);
  const auto b = run_once(GetParam(), 2);
  // Some observable must differ (addresses, interleavings, random victims).
  const bool differs = a.threads[0].mem.l2_misses != b.threads[0].mem.l2_misses ||
                       a.threads[1].mem.l2_misses != b.threads[1].mem.l2_misses ||
                       a.wall_cycles != b.wall_cycles;
  EXPECT_TRUE(differs);
}

TEST_P(ConfigDeterminism, RunsProduceWork) {
  const auto r = run_once(GetParam(), 5);
  for (const auto& t : r.threads) {
    EXPECT_GE(t.instructions, 60'000ULL);
    EXPECT_GT(t.ipc, 0.0);
    EXPECT_GT(t.mem.l2_accesses, 0ULL) << "workload must exercise the L2";
  }
}

std::string config_name(const ::testing::TestParamInfo<const char*>& param_info) {
  std::string s = param_info.param;
  for (auto& c : s) {
    if (c == '-' || c == '.') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigDeterminism,
                         ::testing::Values("C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N",
                                           "M-BT", "M-RRIP", "NOPART-L", "NOPART-N",
                                           "NOPART-BT", "NOPART-R", "NOPART-RRIP"),
                         config_name);

}  // namespace
}  // namespace plrupart
