// Trace file I/O: format round trips, playback semantics, error handling.
#include "sim/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "workloads/catalog.hpp"
#include "workloads/generators.hpp"

namespace plrupart::sim {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plrupart_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TraceFileTest, RoundTripPreservesEveryField) {
  const std::vector<MemOp> ops{
      {.addr = 0x1000, .write = false, .gap_instrs = 3},
      {.addr = 0xdeadbeef, .write = true, .gap_instrs = 0},
      {.addr = 0xffffffffffff, .write = false, .gap_instrs = 1000},
  };
  write_trace_file(path("t.trace"), ops);
  FileTraceSource src(path("t.trace"));
  ASSERT_EQ(src.size(), ops.size());
  for (const auto& expected : ops) {
    const auto got = src.next();
    EXPECT_EQ(got.addr, expected.addr);
    EXPECT_EQ(got.write, expected.write);
    EXPECT_EQ(got.gap_instrs, expected.gap_instrs);
  }
}

TEST_F(TraceFileTest, LoopsAtEndOfTrace) {
  write_trace_file(path("loop.trace"), {{.addr = 0x40, .write = false, .gap_instrs = 1},
                                        {.addr = 0x80, .write = true, .gap_instrs = 2}});
  FileTraceSource src(path("loop.trace"));
  EXPECT_EQ(src.next().addr, 0x40ULL);
  EXPECT_EQ(src.next().addr, 0x80ULL);
  EXPECT_EQ(src.next().addr, 0x40ULL) << "source must wrap";
}

TEST_F(TraceFileTest, ResetRestarts) {
  write_trace_file(path("r.trace"), {{.addr = 0x40, .write = false, .gap_instrs = 1},
                                     {.addr = 0x80, .write = false, .gap_instrs = 1}});
  FileTraceSource src(path("r.trace"));
  (void)src.next();
  src.reset();
  EXPECT_EQ(src.next().addr, 0x40ULL);
}

TEST_F(TraceFileTest, RecordedSyntheticTraceReplaysIdentically) {
  const auto& profile = workloads::benchmark("gzip");
  const auto original = workloads::make_trace(profile, 0, 7);
  const auto ops = record_trace(*original, 5000);
  write_trace_file(path("gzip.trace"), ops);

  original->reset();
  FileTraceSource replay(path("gzip.trace"));
  for (int i = 0; i < 5000; ++i) {
    const auto a = original->next();
    const auto b = replay.next();
    ASSERT_EQ(a.addr, b.addr) << "op " << i;
    ASSERT_EQ(a.write, b.write) << "op " << i;
    ASSERT_EQ(a.gap_instrs, b.gap_instrs) << "op " << i;
  }
}

TEST_F(TraceFileTest, CommentsAndBlankLinesIgnored) {
  std::ofstream out(path("c.trace"));
  out << "# plrupart-trace v1\n\n# a comment\n5 1a2b R\n\n";
  out.close();
  FileTraceSource src(path("c.trace"));
  EXPECT_EQ(src.size(), 1U);
  EXPECT_EQ(src.next().addr, 0x1a2bULL);
}

TEST_F(TraceFileTest, RejectsMissingHeader) {
  std::ofstream out(path("bad.trace"));
  out << "5 1a2b R\n";
  out.close();
  EXPECT_THROW(FileTraceSource{path("bad.trace")}, InvariantError);
}

TEST_F(TraceFileTest, RejectsMalformedRecords) {
  for (const char* body : {"xyz 1a2b R", "5 zz R", "5 1a2b X", "5"}) {
    std::ofstream out(path("bad.trace"));
    out << "# plrupart-trace v1\n" << body << "\n";
    out.close();
    EXPECT_THROW(FileTraceSource{path("bad.trace")}, InvariantError) << body;
  }
}

TEST_F(TraceFileTest, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(FileTraceSource{path("nope.trace")}, InvariantError);
  std::ofstream out(path("empty.trace"));
  out << "# plrupart-trace v1\n";
  out.close();
  EXPECT_THROW(FileTraceSource{path("empty.trace")}, InvariantError);
  EXPECT_THROW(write_trace_file(path("w.trace"), {}), InvariantError);
}

}  // namespace
}  // namespace plrupart::sim
