// Trace file I/O: format round trips, looping playback semantics, error
// handling. FileTraceSource STREAMS (O(buffer) memory, no size() — a
// streaming source cannot know its length without a full pass); deep
// malformed-input and large-file coverage lives in test_trace_stream.cpp.
#include "plrupart/sim/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

namespace plrupart::sim {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plrupart_trace_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TraceFileTest, RoundTripPreservesEveryFieldInBothFormats) {
  const std::vector<MemOp> ops{
      {.addr = 0x1000, .write = false, .gap_instrs = 3},
      {.addr = 0xdeadbeef, .write = true, .gap_instrs = 0},
      {.addr = 0xffffffffffff, .write = false, .gap_instrs = 1000},
  };
  for (const auto format : {TraceFormat::kTextV1, TraceFormat::kBinaryV2}) {
    const auto p = path(format == TraceFormat::kTextV1 ? "t.v1.trace" : "t.v2.trace");
    write_trace_file(p, ops, format);
    FileTraceSource src(p);
    EXPECT_EQ(src.format(), format);
    for (const auto& expected : ops) {
      const auto got = src.next();
      EXPECT_EQ(got.addr, expected.addr);
      EXPECT_EQ(got.write, expected.write);
      EXPECT_EQ(got.gap_instrs, expected.gap_instrs);
    }
    // One full pass delivered; the next op wraps back to the first record.
    EXPECT_EQ(src.next().addr, ops[0].addr);
    EXPECT_EQ(src.loops_completed(), 1u);
    EXPECT_EQ(src.ops_delivered(), ops.size() + 1);
  }
}

TEST_F(TraceFileTest, LoopsAtEndOfTrace) {
  write_trace_file(path("loop.trace"), {{.addr = 0x40, .write = false, .gap_instrs = 1},
                                        {.addr = 0x80, .write = true, .gap_instrs = 2}});
  FileTraceSource src(path("loop.trace"));
  EXPECT_EQ(src.next().addr, 0x40ULL);
  EXPECT_EQ(src.next().addr, 0x80ULL);
  EXPECT_EQ(src.next().addr, 0x40ULL) << "source must wrap";
}

TEST_F(TraceFileTest, ResetRestarts) {
  for (const auto format : {TraceFormat::kTextV1, TraceFormat::kBinaryV2}) {
    const auto p = path("r.trace");
    write_trace_file(p, {{.addr = 0x40, .write = false, .gap_instrs = 1},
                         {.addr = 0x80, .write = false, .gap_instrs = 1}},
                     format);
    FileTraceSource src(p);
    (void)src.next();
    src.reset();
    EXPECT_EQ(src.next().addr, 0x40ULL);
  }
}

TEST_F(TraceFileTest, RecordedSyntheticTraceReplaysIdentically) {
  const auto& profile = workloads::benchmark("gzip");
  const auto original = workloads::make_trace(profile, 0, 7);
  const auto ops = record_trace(*original, 5000);
  write_trace_file(path("gzip.trace"), ops, TraceFormat::kBinaryV2);

  original->reset();
  FileTraceSource replay(path("gzip.trace"));
  for (int i = 0; i < 5000; ++i) {
    const auto a = original->next();
    const auto b = replay.next();
    ASSERT_EQ(a.addr, b.addr) << "op " << i;
    ASSERT_EQ(a.write, b.write) << "op " << i;
    ASSERT_EQ(a.gap_instrs, b.gap_instrs) << "op " << i;
  }
}

TEST_F(TraceFileTest, CommentsAndBlankLinesIgnored) {
  std::ofstream out(path("c.trace"));
  out << "# plrupart-trace v1\n\n# a comment\n5 1a2b R\n\n";
  out.close();
  FileTraceSource src(path("c.trace"));
  EXPECT_EQ(src.next().addr, 0x1a2bULL);
  EXPECT_EQ(src.next().addr, 0x1a2bULL) << "the only record wraps onto itself";
  EXPECT_EQ(src.loops_completed(), 1u);
}

TEST_F(TraceFileTest, ProbeReportsFormatAndValidatesEagerly) {
  write_trace_file(path("p1.trace"), {{.addr = 0x40}}, TraceFormat::kTextV1);
  write_trace_file(path("p2.trace"), {{.addr = 0x40}}, TraceFormat::kBinaryV2);
  EXPECT_EQ(probe_trace_file(path("p1.trace")), TraceFormat::kTextV1);
  EXPECT_EQ(probe_trace_file(path("p2.trace")), TraceFormat::kBinaryV2);
  EXPECT_THROW(probe_trace_file(path("nope.trace")), TraceError);
}

TEST_F(TraceFileTest, RejectsMissingHeader) {
  std::ofstream out(path("bad.trace"));
  out << "5 1a2b R\n";
  out.close();
  EXPECT_THROW(FileTraceSource{path("bad.trace")}, InvariantError);
}

TEST_F(TraceFileTest, RejectsMalformedRecords) {
  for (const char* body : {"xyz 1a2b R", "5 zz R", "5 1a2b X", "5", "-1 1a2b R"}) {
    std::ofstream out(path("bad.trace"));
    out << "# plrupart-trace v1\n" << body << "\n";
    out.close();
    EXPECT_THROW(FileTraceSource{path("bad.trace")}, InvariantError) << body;
  }
}

TEST_F(TraceFileTest, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(FileTraceSource{path("nope.trace")}, InvariantError);
  std::ofstream out(path("empty.trace"));
  out << "# plrupart-trace v1\n";
  out.close();
  EXPECT_THROW(FileTraceSource{path("empty.trace")}, InvariantError);
  EXPECT_THROW(write_trace_file(path("w.trace"), {}), InvariantError);
}

TEST_F(TraceFileTest, TraceWriterStreamsAndChecksOnClose) {
  const auto p = path("w.trace");
  TraceWriter writer(p, TraceFormat::kBinaryV2);
  for (std::uint32_t i = 0; i < 100'000; ++i)  // several flush chunks
    writer.append(MemOp{.addr = 0x1000 + 64ull * i, .write = false, .gap_instrs = i & 1});
  EXPECT_EQ(writer.ops_written(), 100'000u);
  writer.close();
  TraceReader reader(p);
  std::uint64_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 100'000u);

  // close() on an empty writer refuses to produce an unreadable file.
  TraceWriter empty(path("e.trace"), TraceFormat::kTextV1);
  EXPECT_THROW(empty.close(), TraceError);
}

}  // namespace
}  // namespace plrupart::sim
