// Auxiliary Tag Directory: set sampling, hit/miss semantics, pre-update
// estimates, storage accounting.
#include "plrupart/core/atd.hpp"

#include <gtest/gtest.h>

#include "plrupart/common/rng.hpp"

namespace plrupart::core {
namespace {

cache::Geometry l2_16sets() {
  // 16 sets x 4 ways x 64B.
  return cache::Geometry{.size_bytes = 4096, .associativity = 4, .line_bytes = 64};
}

cache::Addr line_in_set(const cache::Geometry& g, std::uint64_t set, std::uint64_t tag) {
  return (tag << ilog2_exact(g.sets())) | set;
}

TEST(Atd, SamplesEveryRatiothSet) {
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, /*sampling_ratio=*/4);
  EXPECT_EQ(atd.sets(), 4ULL);
  int sampled = 0;
  for (std::uint64_t s = 0; s < g.sets(); ++s) {
    if (atd.is_sampled(line_in_set(g, s, 1))) {
      ++sampled;
      EXPECT_EQ(s % 4, 0ULL);
    }
  }
  EXPECT_EQ(sampled, 4);
}

TEST(Atd, UnsampledAccessReturnsNothing) {
  Atd atd(l2_16sets(), cache::ReplacementKind::kLru, 4);
  EXPECT_FALSE(atd.access(line_in_set(l2_16sets(), 1, 5)).has_value());
  EXPECT_TRUE(atd.access(line_in_set(l2_16sets(), 4, 5)).has_value());
}

TEST(Atd, SamplingRatioOneProfilesEverything) {
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, 1);
  for (std::uint64_t s = 0; s < g.sets(); ++s) {
    EXPECT_TRUE(atd.access(line_in_set(g, s, 1)).has_value());
  }
}

TEST(Atd, MissThenHitSemantics) {
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, 4);
  const auto first = atd.access(line_in_set(g, 0, 9));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->hit);
  const auto second = atd.access(line_in_set(g, 0, 9));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(second->estimate.point, 1U) << "immediate re-reference is MRU";
}

TEST(Atd, EstimateIsPreUpdate) {
  // Access X, then Y, then X again: under LRU the second X access must see
  // stack distance 2 (one line referenced since), not 1.
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, 4);
  atd.access(line_in_set(g, 0, 1));
  atd.access(line_in_set(g, 0, 2));
  const auto obs = atd.access(line_in_set(g, 0, 1));
  ASSERT_TRUE(obs.has_value());
  ASSERT_TRUE(obs->hit);
  EXPECT_EQ(obs->estimate.point, 2U);
}

TEST(Atd, CapacityMissAfterAssociativityDistinctLines) {
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, 4);
  for (std::uint64_t t = 0; t < 4; ++t) atd.access(line_in_set(g, 0, t));
  // Tag 0 is LRU: a fifth line evicts it.
  atd.access(line_in_set(g, 0, 99));
  const auto obs = atd.access(line_in_set(g, 0, 0));
  ASSERT_TRUE(obs.has_value());
  EXPECT_FALSE(obs->hit) << "the thread would miss even with full associativity";
}

TEST(Atd, DifferentTagsSameAtdSetConflictCorrectly) {
  // Two L2 sets 4 apart map to the same ATD set only if ratio folds them —
  // they must NOT: sampling selects sets, it does not fold them.
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, 4);
  atd.access(line_in_set(g, 0, 1));
  const auto obs = atd.access(line_in_set(g, 4, 1));
  ASSERT_TRUE(obs.has_value());
  EXPECT_FALSE(obs->hit) << "set 4 is a different sampled set than set 0";
}

TEST(Atd, NruAtdReportsIntervalEstimates) {
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kNru, 4);
  atd.access(line_in_set(g, 0, 1));
  const auto obs = atd.access(line_in_set(g, 0, 1));
  ASSERT_TRUE(obs.has_value());
  ASSERT_TRUE(obs->hit);
  EXPECT_EQ(obs->estimate.lo, 1U);
  EXPECT_GE(obs->estimate.hi, 1U);
}

TEST(Atd, RejectsBadSamplingRatio) {
  EXPECT_THROW(Atd(l2_16sets(), cache::ReplacementKind::kLru, 3), InvariantError);
  EXPECT_THROW(Atd(l2_16sets(), cache::ReplacementKind::kLru, 32), InvariantError);
}

TEST(Atd, PaperStorageFigure) {
  // Paper §III: 3.25KB per core for a 2MB 16-way L2 with 47 tag bits and 1/32
  // sampling (LRU ATD): 32 sets x 16 ways x (47+1+4) bits.
  Atd atd(cache::paper_l2_geometry(), cache::ReplacementKind::kLru, 32);
  const auto bits = atd.storage_bits(47);
  EXPECT_EQ(bits, 26624ULL);
  EXPECT_DOUBLE_EQ(static_cast<double>(bits) / 8.0 / 1024.0, 3.25);
}

TEST(Atd, ResetForgetsContents) {
  const auto g = l2_16sets();
  Atd atd(g, cache::ReplacementKind::kLru, 4);
  atd.access(line_in_set(g, 0, 1));
  atd.reset();
  const auto obs = atd.access(line_in_set(g, 0, 1));
  ASSERT_TRUE(obs.has_value());
  EXPECT_FALSE(obs->hit);
}

}  // namespace
}  // namespace plrupart::core
