// Synthetic trace generation: determinism, address-space discipline, pacing,
// pattern semantics, phase behavior.
#include "plrupart/workloads/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace plrupart::workloads {
namespace {

BenchmarkProfile tiny_profile() {
  BenchmarkProfile p;
  p.name = "test";
  p.mem_fraction = 0.25;
  p.write_fraction = 0.3;
  p.components = {ComponentSpec{.kind = PatternKind::kRandomRegion,
                                .region_bytes = 64 * 1024,
                                .stride_bytes = 128,
                                .weight = 1.0}};
  return p;
}

TEST(SyntheticTrace, DeterministicPerSeed) {
  SyntheticTrace a(tiny_profile(), 0, 42), b(tiny_profile(), 0, 42), c(tiny_profile(), 0, 43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const auto oa = a.next();
    const auto ob = b.next();
    EXPECT_EQ(oa.addr, ob.addr);
    EXPECT_EQ(oa.write, ob.write);
    EXPECT_EQ(oa.gap_instrs, ob.gap_instrs);
    if (oa.addr != c.next().addr) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(SyntheticTrace, ResetReplaysExactly) {
  SyntheticTrace t(tiny_profile(), 0, 7);
  std::vector<cache::Addr> first;
  for (int i = 0; i < 500; ++i) first.push_back(t.next().addr);
  t.reset();
  for (int i = 0; i < 500; ++i) EXPECT_EQ(t.next().addr, first[static_cast<std::size_t>(i)]);
}

TEST(SyntheticTrace, AddressesStayInsideRegions) {
  auto profile = tiny_profile();
  profile.components.push_back(ComponentSpec{.kind = PatternKind::kSequentialStream,
                                             .region_bytes = 32 * 1024,
                                             .stride_bytes = 128,
                                             .weight = 0.5});
  const std::uint64_t base = 1ULL << 40;
  SyntheticTrace t(profile, base, 9);
  const std::uint64_t span = 64 * 1024 + 32 * 1024;
  for (int i = 0; i < 20000; ++i) {
    const auto a = t.next().addr;
    ASSERT_GE(a, base);
    ASSERT_LT(a, base + span);
  }
}

TEST(SyntheticTrace, GapPacingMatchesMemFraction) {
  SyntheticTrace t(tiny_profile(), 0, 3);  // mem_fraction 0.25 -> mean gap 3
  std::uint64_t gaps = 0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) gaps += t.next().gap_instrs;
  const double instr_per_op = 1.0 + static_cast<double>(gaps) / n;
  EXPECT_NEAR(1.0 / instr_per_op, 0.25, 0.01) << "memory ops per instruction";
}

TEST(SyntheticTrace, WriteFractionRespected) {
  SyntheticTrace t(tiny_profile(), 0, 5);
  int writes = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) writes += t.next().write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.02);
}

TEST(SyntheticTrace, SequentialStreamWrapsInOrder) {
  BenchmarkProfile p = tiny_profile();
  p.components = {ComponentSpec{.kind = PatternKind::kSequentialStream,
                                .region_bytes = 1024,  // 8 lines of 128B
                                .stride_bytes = 128,
                                .weight = 1.0}};
  SyntheticTrace t(p, 0, 1);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t l = 0; l < 8; ++l) {
      EXPECT_EQ(t.next().addr, l * 128) << "round " << round;
    }
  }
}

TEST(SyntheticTrace, StridedLoopVisitsStridedLines) {
  BenchmarkProfile p = tiny_profile();
  p.components = {ComponentSpec{.kind = PatternKind::kStridedLoop,
                                .region_bytes = 2048,  // 16 lines
                                .stride_bytes = 512,   // 4 lines
                                .weight = 1.0}};
  SyntheticTrace t(p, 0, 1);
  EXPECT_EQ(t.next().addr, 0ULL);
  EXPECT_EQ(t.next().addr, 512ULL);
  EXPECT_EQ(t.next().addr, 1024ULL);
  EXPECT_EQ(t.next().addr, 1536ULL);
  EXPECT_EQ(t.next().addr, 0ULL) << "wraps at the region";
}

TEST(SyntheticTrace, RandomRegionCoversItsLines) {
  BenchmarkProfile p = tiny_profile();
  p.components[0].region_bytes = 1024;  // 8 lines
  SyntheticTrace t(p, 0, 17);
  std::set<cache::Addr> seen;
  for (int i = 0; i < 500; ++i) seen.insert(t.next().addr / 128);
  EXPECT_EQ(seen.size(), 8U);
}

TEST(SyntheticTrace, PhaseRotationShiftsDominantComponent) {
  BenchmarkProfile p = tiny_profile();
  p.components = {ComponentSpec{.kind = PatternKind::kRandomRegion,
                                .region_bytes = 1024,
                                .stride_bytes = 128,
                                .weight = 0.95},
                  ComponentSpec{.kind = PatternKind::kRandomRegion,
                                .region_bytes = 1024,
                                .stride_bytes = 128,
                                .weight = 0.05}};
  p.phase_period_ops = 1000;
  SyntheticTrace t(p, 0, 23);
  // Phase 0: component 0 (region [0,1024)) dominates.
  int low = 0;
  for (int i = 0; i < 1000; ++i) low += (t.next().addr < 1024) ? 1 : 0;
  EXPECT_GT(low, 800);
  EXPECT_EQ(t.phase(), 1ULL);
  // Phase 1: weights rotate; component 1 (region [1024, 2048)) dominates.
  int high = 0;
  for (int i = 0; i < 1000; ++i) high += (t.next().addr >= 1024) ? 1 : 0;
  EXPECT_GT(high, 800);
}

TEST(SyntheticTrace, MakeTraceSeparatesCores) {
  const auto t0 = make_trace(tiny_profile(), 0, 9);
  const auto t1 = make_trace(tiny_profile(), 1, 9);
  for (int i = 0; i < 100; ++i) {
    const auto a0 = t0->next().addr;
    const auto a1 = t1->next().addr;
    EXPECT_LT(a0, 2ULL << 40);
    EXPECT_GE(a1, 2ULL << 40);
  }
}

TEST(SyntheticTrace, RejectsDegenerateProfiles) {
  BenchmarkProfile p = tiny_profile();
  p.components.clear();
  EXPECT_THROW(SyntheticTrace(p, 0, 1), InvariantError);
  p = tiny_profile();
  p.mem_fraction = 0.0;
  EXPECT_THROW(SyntheticTrace(p, 0, 1), InvariantError);
  p = tiny_profile();
  p.components[0].region_bytes = 32;  // below one line
  EXPECT_THROW(SyntheticTrace(p, 0, 1), InvariantError);
}

}  // namespace
}  // namespace plrupart::workloads
