// CmpSimulator: determinism, instruction quotas, isolation equivalence,
// dynamic repartitioning in the loop.
#include "plrupart/sim/cmp_simulator.hpp"

#include <gtest/gtest.h>

#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

namespace plrupart::sim {
namespace {

using workloads::benchmark;
using workloads::make_trace;

HierarchyConfig small_hierarchy(std::uint32_t cores, const char* acronym) {
  HierarchyConfig cfg;
  cfg.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.l2 = core::CpaConfig::from_acronym(
      acronym, cores,
      cache::Geometry{.size_bytes = 256 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.l2.interval_cycles = 50'000;
  return cfg;
}

SimResult run_workload(const std::vector<std::string>& names, const char* acronym,
                       std::uint64_t instr_limit, std::uint64_t seed = 99) {
  SimConfig cfg;
  cfg.hierarchy = small_hierarchy(static_cast<std::uint32_t>(names.size()), acronym);
  cfg.instr_limit = instr_limit;
  std::vector<std::unique_ptr<TraceSource>> traces;
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    const auto& prof = benchmark(names[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(make_trace(prof, i, seed));
  }
  CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

TEST(CmpSimulator, RespectsInstructionQuota) {
  const auto r = run_workload({"gzip", "twolf"}, "NOPART-L", 50'000);
  ASSERT_EQ(r.threads.size(), 2U);
  for (const auto& t : r.threads) {
    EXPECT_GE(t.instructions, 50'000ULL);
    EXPECT_LT(t.instructions, 51'000ULL) << "quota overshoot is at most one op";
    EXPECT_GT(t.cycles, 0.0);
    EXPECT_GT(t.ipc, 0.0);
  }
}

TEST(CmpSimulator, DeterministicAcrossRuns) {
  const auto a = run_workload({"mcf", "crafty"}, "M-L", 30'000);
  const auto b = run_workload({"mcf", "crafty"}, "M-L", 30'000);
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.threads[i].ipc, b.threads[i].ipc);
    EXPECT_EQ(a.threads[i].mem.l2_misses, b.threads[i].mem.l2_misses);
  }
  EXPECT_EQ(a.repartitions, b.repartitions);
}

TEST(CmpSimulator, SeedChangesResults) {
  const auto a = run_workload({"mcf", "crafty"}, "NOPART-L", 30'000, 1);
  const auto b = run_workload({"mcf", "crafty"}, "NOPART-L", 30'000, 2);
  EXPECT_NE(a.threads[0].mem.l2_misses, b.threads[0].mem.l2_misses);
}

TEST(CmpSimulator, SingleCoreCmpEqualsIsolation) {
  // A one-core "CMP" must behave exactly like the isolation run used for
  // weighted-speedup baselines.
  const auto a = run_workload({"twolf"}, "NOPART-L", 40'000);
  const auto b = run_workload({"twolf"}, "NOPART-L", 40'000);
  EXPECT_DOUBLE_EQ(a.threads[0].ipc, b.threads[0].ipc);
  EXPECT_EQ(a.threads[0].mem.l2_misses, b.threads[0].mem.l2_misses);
}

TEST(CmpSimulator, ContentionHurtsSharedCache) {
  const auto alone = run_workload({"twolf"}, "NOPART-L", 40'000);
  const auto shared = run_workload({"twolf", "art"}, "NOPART-L", 40'000);
  EXPECT_LT(shared.threads[0].ipc, alone.threads[0].ipc)
      << "a streaming co-runner must cost the reuse-heavy thread performance";
}

TEST(CmpSimulator, DynamicCpaRepartitions) {
  const auto r = run_workload({"twolf", "art"}, "M-L", 60'000);
  EXPECT_GT(r.repartitions, 0ULL);
  EXPECT_EQ(r.l2_config, "M-L");
}

TEST(CmpSimulator, ThroughputIsSumOfIpcs) {
  const auto r = run_workload({"gzip", "crafty"}, "NOPART-L", 30'000);
  EXPECT_DOUBLE_EQ(r.throughput(), r.threads[0].ipc + r.threads[1].ipc);
}

TEST(CmpSimulator, WallCyclesIsTheLastFinisher) {
  const auto r = run_workload({"mcf", "eon"}, "NOPART-L", 30'000);
  EXPECT_DOUBLE_EQ(r.wall_cycles,
                   std::max(r.threads[0].cycles, r.threads[1].cycles));
  // mcf (memory-bound) must take longer than eon for the same quota.
  EXPECT_GT(r.threads[0].cycles, r.threads[1].cycles);
}

TEST(CmpSimulator, WarmupExcludesColdMisses) {
  // A cache-resident benchmark: with warmup its measured window shows almost
  // no L2 misses (the cold fills land in the unmeasured prefix).
  auto mk = [&](std::uint64_t warmup) {
    SimConfig cfg;
    cfg.hierarchy = small_hierarchy(1, "NOPART-L");
    cfg.cores.push_back(benchmark("crafty").core);
    cfg.instr_limit = 50'000;
    cfg.warmup_instr = warmup;
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(make_trace(benchmark("crafty"), 0, 5));
    CmpSimulator sim(std::move(cfg), std::move(traces));
    return sim.run();
  };
  const auto cold = mk(0);
  const auto warm = mk(200'000);
  EXPECT_LT(warm.threads[0].mem.l2_misses, cold.threads[0].mem.l2_misses / 2);
  EXPECT_GT(warm.threads[0].ipc, cold.threads[0].ipc);
}

TEST(CmpSimulator, WarmupWindowSizesAreHonored) {
  SimConfig cfg;
  cfg.hierarchy = small_hierarchy(1, "NOPART-L");
  cfg.cores.push_back(benchmark("gzip").core);
  cfg.instr_limit = 30'000;
  cfg.warmup_instr = 20'000;
  std::vector<std::unique_ptr<TraceSource>> traces;
  traces.push_back(make_trace(benchmark("gzip"), 0, 5));
  CmpSimulator sim(std::move(cfg), std::move(traces));
  const auto r = sim.run();
  EXPECT_GE(r.threads[0].instructions, 30'000ULL);
  EXPECT_LT(r.threads[0].instructions, 31'000ULL);
}

TEST(CmpSimulator, MismatchedTraceCountRejected) {
  SimConfig cfg;
  cfg.hierarchy = small_hierarchy(2, "NOPART-L");
  cfg.cores.push_back(CoreParams{});
  std::vector<std::unique_ptr<TraceSource>> traces;
  traces.push_back(make_trace(benchmark("gzip"), 0, 1));
  EXPECT_THROW(CmpSimulator(std::move(cfg), std::move(traces)), InvariantError);
}

TEST(CmpSimulator, RunIsSingleShot) {
  SimConfig cfg;
  cfg.hierarchy = small_hierarchy(1, "NOPART-L");
  cfg.cores.push_back(benchmark("gzip").core);
  cfg.instr_limit = 10'000;
  std::vector<std::unique_ptr<TraceSource>> traces;
  traces.push_back(make_trace(benchmark("gzip"), 0, 1));
  CmpSimulator sim(std::move(cfg), std::move(traces));
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), InvariantError);
}

}  // namespace
}  // namespace plrupart::sim
