# Tier-1 trace-ingestion pipeline check, run as a CTest test (see src/tools/).
# The trace-backed sibling of shard_roundtrip.cmake.
#
# Converts the checked-in ChampSim fixture to native v2 AND v1 (same basename,
# different directories), then runs the same --trace + --l2-kb-sweep matrix
# four ways — v2 single-threaded, v2 all-threads, v2 as --shard 0/2 + 1/2
# merged via --merge-csv, and v1 all-threads — and requires every CSV to be
# byte-identical: thread counts, shard splits, and the on-disk trace encoding
# must all be invisible in the results.
#
# Usage: cmake -DPLRUPART_CLI=<plrupart> -DPLRUPART_CONVERT=<plrupart-trace-convert>
#              -DFIXTURE=<champsim_small.champsim> -DWORK_DIR=<scratch>
#              -P trace_pipeline.cmake
if(NOT PLRUPART_CLI OR NOT PLRUPART_CONVERT OR NOT FIXTURE OR NOT WORK_DIR)
  message(FATAL_ERROR "PLRUPART_CLI, PLRUPART_CONVERT, FIXTURE and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY ${WORK_DIR}/v1 ${WORK_DIR}/v2)

function(run out_var)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${ARGN} failed (rc=${rc}):\n${stderr}")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} differs from ${b}")
  endif()
endfunction()

# 1. Ingest the ChampSim fixture into both native encodings.
run(_ ${PLRUPART_CONVERT} --in ${FIXTURE} --from champsim --to v2
    --out ${WORK_DIR}/v2/fix.trace)
run(_ ${PLRUPART_CONVERT} --in ${FIXTURE} --from champsim --to v1
    --out ${WORK_DIR}/v1/fix.trace)

# 2. The same sweep matrix over the converted trace. The fixture is tiny and
#    loops; determinism is what is under test, not the numbers.
set(MATRIX_FLAGS
  --configs NOPART-L,M-0.75N
  --l2-kb-sweep 128,256
  --instr 20000 --interval 40000 --sampling 8 --seed 7)

run(_ ${PLRUPART_CLI} --trace ${WORK_DIR}/v2/fix.trace ${MATRIX_FLAGS}
    --threads 1 --csv ${WORK_DIR}/full.csv)
run(_ ${PLRUPART_CLI} --trace ${WORK_DIR}/v2/fix.trace ${MATRIX_FLAGS}
    --threads 0 --csv ${WORK_DIR}/threads.csv)
require_identical(${WORK_DIR}/full.csv ${WORK_DIR}/threads.csv
  "trace-backed sweep CSV depends on the thread count")

run(_ ${PLRUPART_CLI} --trace ${WORK_DIR}/v2/fix.trace ${MATRIX_FLAGS}
    --threads 0 --shard 0/2 --csv ${WORK_DIR}/shard0.csv)
run(_ ${PLRUPART_CLI} --trace ${WORK_DIR}/v2/fix.trace ${MATRIX_FLAGS}
    --threads 0 --shard 1/2 --csv ${WORK_DIR}/shard1.csv)
run(_ ${PLRUPART_CLI} --merge-csv ${WORK_DIR}/shard1.csv,${WORK_DIR}/shard0.csv
    --csv ${WORK_DIR}/merged.csv)
require_identical(${WORK_DIR}/full.csv ${WORK_DIR}/merged.csv
  "sharded+merged trace-backed sweep differs from the unsharded run")

# 3. Encoding-invariance: the v1 conversion of the same capture (same
#    basename, so workload ids match) must reproduce the v2 CSV exactly.
run(_ ${PLRUPART_CLI} --trace ${WORK_DIR}/v1/fix.trace ${MATRIX_FLAGS}
    --threads 0 --csv ${WORK_DIR}/from_v1.csv)
require_identical(${WORK_DIR}/full.csv ${WORK_DIR}/from_v1.csv
  "v1- and v2-encoded copies of one capture produced different results")

# 4. A bad trace path must fail before any CSV is produced.
execute_process(
  COMMAND ${PLRUPART_CLI} --trace ${WORK_DIR}/does_not_exist.trace ${MATRIX_FLAGS}
          --csv ${WORK_DIR}/never.csv
  RESULT_VARIABLE bad_rc
  OUTPUT_QUIET ERROR_QUIET)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR "--trace accepted a nonexistent trace file")
endif()

message(STATUS "trace pipeline OK: convert -> --trace sweep is byte-stable across "
               "threads, shards, and encodings")
