#include "plrupart/common/bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace plrupart {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0U);
  EXPECT_EQ(ilog2(2), 1U);
  EXPECT_EQ(ilog2(3), 1U);
  EXPECT_EQ(ilog2(16), 4U);
  EXPECT_EQ(ilog2(17), 4U);
  EXPECT_EQ(ilog2(1ULL << 40), 40U);
}

TEST(Bits, Ilog2ExactRejectsNonPow2) {
  EXPECT_EQ(ilog2_exact(16), 4U);
  EXPECT_THROW((void)ilog2_exact(17), InvariantError);
  EXPECT_THROW((void)ilog2(0), InvariantError);
}

TEST(Bits, CeilFloorPow2) {
  EXPECT_EQ(ceil_pow2(1), 1ULL);
  EXPECT_EQ(ceil_pow2(3), 4ULL);
  EXPECT_EQ(ceil_pow2(4), 4ULL);
  EXPECT_EQ(floor_pow2(5), 4ULL);
  EXPECT_EQ(floor_pow2(4), 4ULL);
  EXPECT_EQ(floor_pow2(1), 1ULL);
}

TEST(Bits, FullWayMask) {
  EXPECT_EQ(full_way_mask(1), 0b1ULL);
  EXPECT_EQ(full_way_mask(4), 0b1111ULL);
  EXPECT_EQ(full_way_mask(16), 0xFFFFULL);
  EXPECT_EQ(full_way_mask(64), ~0ULL);
  EXPECT_THROW((void)full_way_mask(0), InvariantError);
  EXPECT_THROW((void)full_way_mask(65), InvariantError);
}

TEST(Bits, WayRangeMask) {
  EXPECT_EQ(way_range_mask(0, 4), 0b1111ULL);
  EXPECT_EQ(way_range_mask(4, 4), 0b11110000ULL);
  EXPECT_EQ(way_range_mask(2, 0), 0ULL);
  EXPECT_EQ(way_range_mask(15, 1), 1ULL << 15);
}

TEST(Bits, MaskQueries) {
  const WayMask m = 0b101100;
  EXPECT_TRUE(mask_test(m, 2));
  EXPECT_FALSE(mask_test(m, 4));
  EXPECT_EQ(mask_count(m), 3U);
  EXPECT_EQ(mask_first(m), 2U);
}

TEST(Bits, MaskNextCircularForward) {
  // Ways {1, 4, 6} of an 8-way set.
  const WayMask m = 0b01010010;
  EXPECT_EQ(mask_next_circular(m, 0, 8), 1U);
  EXPECT_EQ(mask_next_circular(m, 1, 8), 1U);  // at-or-after includes start
  EXPECT_EQ(mask_next_circular(m, 2, 8), 4U);
  EXPECT_EQ(mask_next_circular(m, 5, 8), 6U);
}

TEST(Bits, MaskNextCircularWrapsAround) {
  const WayMask m = 0b00000110;
  EXPECT_EQ(mask_next_circular(m, 3, 8), 1U);  // wraps past way 7
  EXPECT_EQ(mask_next_circular(m, 7, 8), 1U);
}

TEST(Bits, MaskNextCircularIgnoresBitsBeyondWays) {
  // Bits above the associativity must not be picked: from start 3 in a 4-way
  // set the scan wraps to way 1 instead of reaching phantom way 9.
  const WayMask m = (1ULL << 9) | 0b10;
  EXPECT_EQ(mask_next_circular(m, 3, 4), 1U);
  EXPECT_THROW((void)mask_next_circular(m, 9, 4), InvariantError) << "start beyond ways";
}

TEST(Bits, MaskNextCircularEmptyThrows) {
  EXPECT_THROW((void)mask_next_circular(0, 0, 8), InvariantError);
  EXPECT_THROW((void)mask_next_circular(1ULL << 10, 0, 8), InvariantError);
}

TEST(Bits, TagMatchMaskFindsEveryMatch) {
  const std::uint64_t tags[7] = {5, 9, 5, 0, 42, 5, 9};
  EXPECT_EQ(tag_match_mask(tags, 7, std::uint64_t{5}), 0b0100101ULL);
  EXPECT_EQ(tag_match_mask(tags, 7, std::uint64_t{9}), 0b1000010ULL);
  EXPECT_EQ(tag_match_mask(tags, 7, std::uint64_t{0}), 0b0001000ULL);
  EXPECT_EQ(tag_match_mask(tags, 7, std::uint64_t{7}), 0ULL);
  // Sub-chunk tail (ways not a multiple of 4) and single-way scans.
  EXPECT_EQ(tag_match_mask(tags, 2, std::uint64_t{5}), 0b01ULL);
  EXPECT_EQ(tag_match_mask(tags, 1, std::uint64_t{9}), 0ULL);
}

TEST(Bits, TagMatchMaskIgnoresWaysBeyondCount) {
  const std::uint64_t tags[8] = {1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_EQ(tag_match_mask(tags, 5, std::uint64_t{1}), 0b11111ULL);
  // The byte-wide instantiation the SRRIP victim scan uses.
  const std::uint8_t rrpv[6] = {3, 0, 3, 2, 3, 1};
  EXPECT_EQ(tag_match_mask(rrpv, 6, std::uint8_t{3}), 0b010101ULL);
  EXPECT_EQ(tag_match_mask(rrpv, 4, std::uint8_t{3}), 0b000101ULL);
}

// Shift/width boundary audit (see the contract note on tag_match_mask): the
// chunked loop must produce a correct mask at the widths where its shift
// arithmetic is most exposed -- below one chunk (1, 3), exactly one chunk
// (4), and at the top of the WayMask (63, 64) where `<< w` runs to 59..63
// and a lane flag promoted to int before widening would be UB.
TEST(Bits, TagMatchMaskBoundaryWidths) {
  for (const std::uint32_t ways : {1U, 3U, 4U, 63U, 64U}) {
    std::vector<std::uint64_t> tags(ways, 7);
    // Needle planted at every position, one at a time: every chunk lane and
    // every tail lane produces its own bit, including bit 63.
    for (std::uint32_t pos = 0; pos < ways; ++pos) {
      tags[pos] = 42;
      EXPECT_EQ(tag_match_mask(tags.data(), ways, std::uint64_t{42}),
                WayMask{1} << pos)
          << "ways=" << ways << " pos=" << pos;
      tags[pos] = 7;
    }
    // All-match: the accumulated mask must be exactly the full way mask (a
    // lost or sign-extended high bit shows up here immediately).
    EXPECT_EQ(tag_match_mask(tags.data(), ways, std::uint64_t{7}),
              full_way_mask(ways))
        << "ways=" << ways;
    EXPECT_EQ(tag_match_mask(tags.data(), ways, std::uint64_t{8}), 0ULL);
  }
}

// Collisions in every position of every 4-wide chunk simultaneously, at the
// same boundary widths, cross-checked against a bit-by-bit oracle.
TEST(Bits, TagMatchMaskChunkCollisions) {
  for (const std::uint32_t ways : {1U, 3U, 4U, 63U, 64U}) {
    std::vector<std::uint8_t> v(ways);
    for (std::uint32_t i = 0; i < ways; ++i)
      v[i] = static_cast<std::uint8_t>(i % 3);  // period-3 vs chunk width 4:
                                                // the collision pattern drifts
                                                // through every chunk lane
    for (std::uint8_t needle = 0; needle < 3; ++needle) {
      WayMask expect = 0;
      for (std::uint32_t i = 0; i < ways; ++i)
        if (v[i] == needle) expect |= WayMask{1} << i;
      EXPECT_EQ(tag_match_mask(v.data(), ways, needle), expect)
          << "ways=" << ways << " needle=" << unsigned{needle};
    }
  }
}

// ways > kMaxAssociativity would shift past the WayMask width; the contract
// is asserted in every build type.
TEST(Bits, TagMatchMaskRejectsOverwideScan) {
  const std::vector<std::uint64_t> tags(65, 1);
  EXPECT_THROW((void)tag_match_mask(tags.data(), 65, std::uint64_t{1}),
               InvariantError);
}

}  // namespace
}  // namespace plrupart
