#include "plrupart/cache/geometry.hpp"

#include <gtest/gtest.h>

namespace plrupart::cache {
namespace {

TEST(Geometry, PaperBaselineShape) {
  const Geometry g = paper_l2_geometry();
  g.validate();
  EXPECT_EQ(g.size_bytes, 2ULL * 1024 * 1024);
  EXPECT_EQ(g.associativity, 16U);
  EXPECT_EQ(g.line_bytes, 128U);
  EXPECT_EQ(g.sets(), 1024ULL);
  EXPECT_EQ(g.lines(), 16384ULL);
}

TEST(Geometry, AddressDecomposition) {
  const Geometry g{.size_bytes = 64 * 1024, .associativity = 4, .line_bytes = 64};
  g.validate();
  EXPECT_EQ(g.sets(), 256ULL);
  const Addr byte_addr = 0x12345678;
  const Addr line = g.line_addr(byte_addr);
  EXPECT_EQ(line, byte_addr / 64);
  EXPECT_EQ(g.set_index(line), line % 256);
  EXPECT_EQ(g.tag(line), line / 256);
  // Reconstructing (tag, set) must identify the line uniquely.
  EXPECT_EQ((g.tag(line) << 8) | g.set_index(line), line);
}

TEST(Geometry, SameSetDifferentTagConflict) {
  const Geometry g{.size_bytes = 8 * 1024, .associativity = 2, .line_bytes = 64};
  const Addr a = 0;
  const Addr b = g.sets() * g.line_bytes;  // one full set stride later
  EXPECT_EQ(g.set_index(g.line_addr(a)), g.set_index(g.line_addr(b)));
  EXPECT_NE(g.tag(g.line_addr(a)), g.tag(g.line_addr(b)));
}

TEST(Geometry, ValidationRejectsBadShapes) {
  Geometry g{.size_bytes = 3 * 1024, .associativity = 4, .line_bytes = 64};
  EXPECT_THROW(g.validate(), InvariantError);
  g = Geometry{.size_bytes = 4 * 1024, .associativity = 3, .line_bytes = 64};
  EXPECT_THROW(g.validate(), InvariantError);
  g = Geometry{.size_bytes = 4 * 1024, .associativity = 4, .line_bytes = 96};
  EXPECT_THROW(g.validate(), InvariantError);
  g = Geometry{.size_bytes = 128, .associativity = 4, .line_bytes = 64};
  EXPECT_THROW(g.validate(), InvariantError);  // smaller than one set
}

TEST(Geometry, SingleSetCacheIsValid) {
  const Geometry g{.size_bytes = 512, .associativity = 8, .line_bytes = 64};
  g.validate();
  EXPECT_EQ(g.sets(), 1ULL);
  EXPECT_EQ(g.set_index(g.line_addr(0xABCDEF)), 0ULL);
}

}  // namespace
}  // namespace plrupart::cache
