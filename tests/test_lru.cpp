// TrueLru is property-tested against an explicit recency-list reference model.
#include "plrupart/cache/lru.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "plrupart/common/rng.hpp"

namespace plrupart::cache {
namespace {

Geometry small_geo(std::uint32_t ways, std::uint64_t sets = 4) {
  return Geometry{.size_bytes = sets * ways * 64, .associativity = ways, .line_bytes = 64};
}

/// Reference: per-set list of ways, front = MRU.
class RecencyListModel {
 public:
  RecencyListModel(std::uint64_t sets, std::uint32_t ways) : sets_(sets) {
    for (std::uint64_t s = 0; s < sets; ++s) {
      std::list<std::uint32_t> l;
      for (std::uint32_t w = 0; w < ways; ++w) l.push_back(w);
      lists_.push_back(std::move(l));
    }
  }

  void touch(std::uint64_t set, std::uint32_t way) {
    auto& l = lists_[set];
    l.remove(way);
    l.push_front(way);
  }

  [[nodiscard]] std::uint32_t position(std::uint64_t set, std::uint32_t way) const {
    std::uint32_t pos = 0;
    for (const auto w : lists_[set]) {
      if (w == way) return pos;
      ++pos;
    }
    ADD_FAILURE() << "way not in model list";
    return pos;
  }

  [[nodiscard]] std::uint32_t lru_in(std::uint64_t set, WayMask allowed) const {
    for (auto it = lists_[set].rbegin(); it != lists_[set].rend(); ++it) {
      if (mask_test(allowed, *it)) return *it;
    }
    ADD_FAILURE() << "empty allowed mask";
    return 0;
  }

 private:
  std::uint64_t sets_;
  std::vector<std::list<std::uint32_t>> lists_;
};

TEST(TrueLru, InitialStackMatchesWayOrder) {
  TrueLru lru(small_geo(4));
  for (std::uint32_t w = 0; w < 4; ++w) EXPECT_EQ(lru.stack_position(0, w), w);
}

TEST(TrueLru, HitPromotesToMru) {
  TrueLru lru(small_geo(4));
  lru.on_hit(0, 2, lru.all_ways());
  EXPECT_EQ(lru.stack_position(0, 2), 0U);
  EXPECT_EQ(lru.stack_position(0, 0), 1U);  // shifted down
  EXPECT_EQ(lru.stack_position(0, 1), 2U);
  EXPECT_EQ(lru.stack_position(0, 3), 3U);  // deeper lines unaffected
}

TEST(TrueLru, PaperFigure2Example) {
  // 4-way set holding {A,B,C,D} with A=MRU..D=LRU; after accesses C, D the
  // stack is D,C,A,B and a re-access to D has stack distance 1.
  TrueLru lru(small_geo(4));
  // Build the initial A,B,C,D recency (way0=A .. way3=D).
  for (std::uint32_t w = 4; w-- > 0;) lru.on_hit(0, w, lru.all_ways());
  EXPECT_EQ(lru.stack_position(0, 0), 0U);
  lru.on_hit(0, 2, lru.all_ways());  // C
  lru.on_hit(0, 3, lru.all_ways());  // D
  const auto est = lru.estimate_position(0, 3);
  EXPECT_EQ(est.point, 1U);
  EXPECT_EQ(est.lo, est.hi);
  // B (way 1) was degraded to the LRU position.
  EXPECT_EQ(lru.stack_position(0, 1), 3U);
}

TEST(TrueLru, VictimIsDeepestInAllowedMask) {
  TrueLru lru(small_geo(8));
  // Touch ways 0..7 in order: way 0 oldest.
  for (std::uint32_t w = 0; w < 8; ++w) lru.on_hit(0, w, lru.all_ways());
  EXPECT_EQ(lru.choose_victim(0, full_way_mask(8)), 0U);
  EXPECT_EQ(lru.choose_victim(0, 0b10000010), 1U);  // way 1 older than way 7
  EXPECT_EQ(lru.choose_victim(0, 0b10000000), 7U);  // singleton mask
}

TEST(TrueLru, MatchesRecencyListModelUnderRandomOps) {
  const auto geo = small_geo(8, 8);
  TrueLru lru(geo);
  RecencyListModel model(geo.sets(), geo.associativity);
  Rng rng(2024);

  for (int step = 0; step < 20000; ++step) {
    const auto set = rng.next_below(geo.sets());
    if (rng.next_bool(0.7)) {
      const auto way = static_cast<std::uint32_t>(rng.next_below(geo.associativity));
      lru.on_hit(set, way, lru.all_ways());
      model.touch(set, way);
    } else {
      // Random non-empty allowed mask.
      WayMask allowed = rng.next_below(full_way_mask(geo.associativity)) + 1;
      const auto victim = lru.choose_victim(set, allowed);
      EXPECT_EQ(victim, model.lru_in(set, allowed));
      lru.on_fill(set, victim, lru.all_ways());
      model.touch(set, victim);
    }
    // Spot-check full stack agreement.
    if (step % 500 == 0) {
      for (std::uint32_t w = 0; w < geo.associativity; ++w) {
        ASSERT_EQ(lru.stack_position(set, w), model.position(set, w));
      }
    }
  }
}

TEST(TrueLru, EstimateIsExactOneBased) {
  TrueLru lru(small_geo(4));
  for (std::uint32_t w = 0; w < 4; ++w) {
    const auto est = lru.estimate_position(0, w);
    EXPECT_EQ(est.lo, est.hi);
    EXPECT_EQ(est.point, lru.stack_position(0, w) + 1);
  }
}

TEST(TrueLru, ResetRestoresInitialState) {
  TrueLru lru(small_geo(4));
  lru.on_hit(0, 3, lru.all_ways());
  lru.reset();
  for (std::uint32_t w = 0; w < 4; ++w) EXPECT_EQ(lru.stack_position(0, w), w);
}

TEST(TrueLru, SetsAreIndependent) {
  TrueLru lru(small_geo(4, 4));
  lru.on_hit(1, 3, lru.all_ways());
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(lru.stack_position(0, w), w);
    EXPECT_EQ(lru.stack_position(2, w), w);
  }
}

}  // namespace
}  // namespace plrupart::cache
