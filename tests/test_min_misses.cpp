// MinMisses solvers: the DP is exact (checked against brute force), greedy
// matches it on convex curves, lookahead repairs greedy's non-convex failure.
#include "plrupart/core/min_misses.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "plrupart/common/rng.hpp"

namespace plrupart::core {
namespace {

MissCurve random_curve(Rng& rng, std::uint32_t ways, double start) {
  std::vector<double> v(ways + 1);
  v[0] = start;
  for (std::uint32_t w = 1; w <= ways; ++w) {
    v[w] = v[w - 1] - rng.next_double() * (v[w - 1] / 4.0);
  }
  return MissCurve(std::move(v));
}

/// Exhaustive minimum over all valid partitions.
double brute_force_cost(const std::vector<MissCurve>& curves, std::uint32_t total) {
  double best = std::numeric_limits<double>::infinity();
  Partition p(curves.size(), 1);
  std::function<void(std::size_t, std::uint32_t)> rec = [&](std::size_t i,
                                                            std::uint32_t left) {
    if (i + 1 == curves.size()) {
      p[i] = left;
      best = std::min(best, partition_cost(curves, p));
      return;
    }
    const auto remaining_cores = static_cast<std::uint32_t>(curves.size() - i - 1);
    for (std::uint32_t w = 1; w + remaining_cores <= left; ++w) {
      p[i] = w;
      rec(i + 1, left - w);
    }
  };
  rec(0, total);
  return best;
}

TEST(MinMissesOptimal, MatchesBruteForceOnRandomCurves) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(3));  // 2..4
    const std::uint32_t ways = 8;
    std::vector<MissCurve> curves;
    curves.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      curves.push_back(random_curve(rng, ways, 1000.0 + rng.next_double() * 9000.0));
    const auto p = min_misses_optimal(curves, ways);
    validate_partition(p, ways);
    EXPECT_NEAR(partition_cost(curves, p), brute_force_cost(curves, ways), 1e-6)
        << "trial " << trial;
  }
}

TEST(MinMissesOptimal, SensitiveThreadGetsTheWays) {
  // Thread 0's curve is steep (each way saves 100 misses); thread 1 is a
  // thrasher whose curve is flat.
  const MissCurve steep({800, 700, 600, 500, 400, 300, 200, 100, 0});
  const MissCurve flat({800, 800, 800, 800, 800, 800, 800, 800, 800});
  const auto p = min_misses_optimal({steep, flat}, 8);
  EXPECT_EQ(p[0], 7U);
  EXPECT_EQ(p[1], 1U);
}

TEST(MinMissesOptimal, SingleThreadTakesAll) {
  const auto p = min_misses_optimal({MissCurve({10, 5, 2, 1, 0})}, 4);
  ASSERT_EQ(p.size(), 1U);
  EXPECT_EQ(p[0], 4U);
}

TEST(MinMissesOptimal, MoreCoresThanWaysRejected) {
  const MissCurve c({4, 3, 2, 1, 1});
  EXPECT_THROW((void)min_misses_optimal({c, c, c, c, c}, 4), InvariantError);
}

TEST(MinMissesGreedy, EqualsOptimalOnConvexCurves) {
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<MissCurve> curves;
    for (int i = 0; i < 3; ++i) {
      // Convex by construction: marginal gains shrink monotonically.
      std::vector<double> v(9);
      double gain = 100.0 + rng.next_double() * 100.0;
      v[0] = 2000.0;
      for (std::uint32_t w = 1; w <= 8; ++w) {
        v[w] = v[w - 1] - gain;
        gain *= 0.5 + rng.next_double() * 0.4;  // decreasing
      }
      curves.emplace_back(std::move(v));
      ASSERT_TRUE(curves.back().is_convex());
    }
    const auto pg = min_misses_greedy(curves, 8);
    const auto po = min_misses_optimal(curves, 8);
    EXPECT_NEAR(partition_cost(curves, pg), partition_cost(curves, po), 1e-9);
  }
}

TEST(MinMissesLookahead, BeatsGreedyOnKneeCurves) {
  // Thread 0 gains nothing until it owns 4 ways, then everything (a knee):
  // plain greedy never sees the cliff; lookahead's average utility does.
  const MissCurve knee({1000, 1000, 1000, 1000, 0, 0, 0, 0, 0});
  const MissCurve gentle({400, 350, 300, 250, 200, 150, 100, 50, 0});
  const auto pl = min_misses_lookahead({knee, gentle}, 8);
  const auto pg = min_misses_greedy({knee, gentle}, 8);
  EXPECT_LE(partition_cost({knee, gentle}, pl), partition_cost({knee, gentle}, pg));
  EXPECT_GE(pl[0], 4U) << "lookahead must discover the knee";
}

TEST(MinMissesLookahead, ValidOnRandomCurves) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<MissCurve> curves;
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(5));
    for (std::uint32_t i = 0; i < n; ++i) curves.push_back(random_curve(rng, 16, 5000));
    const auto p = min_misses_lookahead(curves, 16);
    validate_partition(p, 16);
    // Never worse than the all-equal static split.
    const Partition even(n, 16 / n);
    if (16 % n == 0) {
      EXPECT_LE(partition_cost(curves, p), partition_cost(curves, even) + 1e-9);
    }
  }
}

TEST(MinMissesPolicy, DispatchesAndNames) {
  const MissCurve c({10, 5, 2, 1, 0});
  MinMissesPolicy opt(MinMissesAlgorithm::kOptimal);
  MinMissesPolicy greedy(MinMissesAlgorithm::kGreedy);
  MinMissesPolicy look(MinMissesAlgorithm::kLookahead);
  EXPECT_EQ(opt.name(), "MinMisses(optimal)");
  EXPECT_EQ(greedy.name(), "MinMisses(greedy)");
  EXPECT_EQ(look.name(), "MinMisses(lookahead)");
  for (auto* p : {&opt, &greedy, &look}) {
    const auto part = p->decide({c, c}, 4);
    validate_partition(part, 4);
  }
}

TEST(PartitionHelpers, ContiguousMasksTile) {
  const auto masks = contiguous_masks({3, 1, 4});
  EXPECT_EQ(masks[0], way_range_mask(0, 3));
  EXPECT_EQ(masks[1], way_range_mask(3, 1));
  EXPECT_EQ(masks[2], way_range_mask(4, 4));
  WayMask all = 0;
  for (const auto m : masks) {
    EXPECT_EQ(all & m, 0ULL) << "masks must be disjoint";
    all |= m;
  }
  EXPECT_EQ(all, full_way_mask(8));
}

TEST(PartitionHelpers, ValidationCatchesBadPartitions) {
  EXPECT_THROW(validate_partition({}, 4), InvariantError);
  EXPECT_THROW(validate_partition({0, 4}, 4), InvariantError);
  EXPECT_THROW(validate_partition({2, 3}, 4), InvariantError);
  validate_partition({1, 3}, 4);  // fine
}

}  // namespace
}  // namespace plrupart::core
