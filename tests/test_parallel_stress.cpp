// TSan-facing stress suite: hammers the two places std::thread concurrency
// lives today — common/parallel.hpp and runner::SweepExecutor — so the
// ThreadSanitizer tier (PLRUPART_SANITIZE=thread) has real contention to bite
// on. This is the race-clean baseline the intra-run (set-sharded) parallelism
// work must keep green: any new cross-thread sharing that reaches these paths
// shows up here first.
//
// The suite is deliberately repetition-heavy (many rounds x many thread
// counts): TSan finds races by observing conflicting access pairs, so one
// quiet fan-out proves much less than fifty contended ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "plrupart/cache/geometry.hpp"
#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart {
namespace {

/// The thread counts the issue contract names: serial fallback, minimal
/// contention, oversubscribed (8 >> this container's cores), and whatever the
/// host really has.
std::vector<std::size_t> stress_thread_counts() {
  return {1, 2, 8, default_parallelism()};
}

TEST(ParallelStress, RepeatedFanOutCoversEveryIndexAtEveryThreadCount) {
  constexpr std::size_t kItems = 256;
  constexpr int kRounds = 25;
  for (const std::size_t threads : stress_thread_counts()) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::atomic<int>> hits(kItems);
      parallel_for(
          kItems, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
          threads);
      for (std::size_t i = 0; i < kItems; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " round=" << round
                                     << " index=" << i;
    }
  }
}

TEST(ParallelStress, UnevenWorkWritesToDisjointSlotsWithoutRaces) {
  // Each body writes plain (non-atomic) memory, but only its own slot; the
  // work per item varies wildly so the dynamic queue actually rebalances.
  // Under TSan this certifies the fork-join edges of parallel_for: the final
  // reads on the calling thread must happen-after every worker write.
  constexpr std::size_t kItems = 192;
  for (const std::size_t threads : stress_thread_counts()) {
    std::vector<std::uint64_t> out(kItems, 0);
    parallel_for(
        kItems,
        [&](std::size_t i) {
          std::uint64_t acc = 0;
          const std::uint64_t spin = 1 + (i % 31) * 97;
          for (std::uint64_t k = 0; k < spin * 50; ++k) acc += k * k + i;
          out[i] = acc;
        },
        threads);
    for (std::size_t i = 0; i < kItems; ++i)
      ASSERT_NE(out[i], 0u) << "threads=" << threads << " index=" << i;
  }
}

TEST(ParallelStress, SharedAtomicAccumulationUnderContention) {
  constexpr std::size_t kItems = 10'000;
  for (const std::size_t threads : stress_thread_counts()) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(
        kItems, [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
        threads);
    EXPECT_EQ(sum.load(), kItems * (kItems - 1) / 2) << "threads=" << threads;
  }
}

TEST(ParallelStress, EveryWorkerThrowingPropagatesExactlyOneException) {
  // All bodies throw concurrently: the first-error latch in parallel_for is
  // itself shared mutable state worth hammering. Whatever wins the race must
  // be one of the thrown values, and the pool must still join cleanly.
  constexpr std::size_t kItems = 64;
  for (const std::size_t threads : stress_thread_counts()) {
    for (int round = 0; round < 10; ++round) {
      bool caught = false;
      try {
        parallel_for(
            kItems,
            [](std::size_t i) { throw std::runtime_error("w" + std::to_string(i)); },
            threads);
      } catch (const std::runtime_error& e) {
        caught = true;
        const std::string msg = e.what();
        ASSERT_EQ(msg.front(), 'w');
        const std::size_t idx = std::stoul(msg.substr(1));
        ASSERT_LT(idx, kItems);
      }
      ASSERT_TRUE(caught) << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ParallelStress, ExceptionAmidHealthyWorkersStillJoins) {
  constexpr std::size_t kItems = 512;
  for (const std::size_t threads : stress_thread_counts()) {
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(
        parallel_for(
            kItems,
            [&](std::size_t i) {
              if (i == kItems / 2) throw std::logic_error("mid-flight failure");
              ran.fetch_add(1, std::memory_order_relaxed);
            },
            threads),
        std::logic_error);
    // Everything that did run completed before the join; no lost updates.
    EXPECT_LE(ran.load(), kItems - 1);
  }
}

TEST(ParallelStress, NestedFanOutDoesNotDeadlockOrRace) {
  // Inner fan-outs spawn their own pools; nothing in parallel_for is global,
  // so nesting must compose. Kept small: this multiplies threads.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(
      8,
      [&](std::size_t outer) {
        parallel_for(
            8,
            [&](std::size_t inner) {
              hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
            },
            /*threads=*/2);
      },
      /*threads=*/4);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// --- SweepExecutor under contention -----------------------------------------

/// Small but real matrix: every job simulates, so worker threads spend real
/// time inside the cache/ATD core while others fan out around them.
runner::RunMatrix stress_matrix() {
  runner::RunMatrix m;
  m.configs = {"NOPART-L", "M-0.75N"};
  const auto& all = workloads::workloads_2t();
  m.workloads = {all[0], all[1], all[2]};
  m.l2_kb = {128, 256};
  m.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  m.instr = 6'000;
  m.warmup = 1'500;
  m.interval_cycles = 20'000;
  m.sampling_ratio = 8;
  m.seed = 1234;
  return m;
}

std::string csv_of(const std::vector<runner::JobResult>& results) {
  std::ostringstream os;
  runner::write_csv(os, results);
  return os.str();
}

TEST(SweepExecutorStress, CsvByteIdenticalAcrossAllThreadCounts) {
  const auto jobs = stress_matrix().expand();
  std::string reference;
  for (const std::size_t threads : stress_thread_counts()) {
    const runner::SweepExecutor ex({.threads = threads, .progress = false});
    const std::string csv = csv_of(ex.run(jobs));
    if (reference.empty()) {
      reference = csv;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

TEST(SweepExecutorStress, ProgressLinesStayWholeUnderOversubscription) {
  // --progress writes one fprintf per finished job from whichever worker
  // finished it. Each line must come out whole (glibc locks the FILE* per
  // call) and the completion counters must be a permutation of 1..N even
  // though completion order is nondeterministic.
  const auto jobs = stress_matrix().expand();
  const std::size_t total = jobs.size();
  const runner::SweepExecutor ex({.threads = 8, .progress = true});
  ::testing::internal::CaptureStderr();
  const auto results = ex.run(jobs);
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(results.size(), total);

  std::istringstream is(err);
  std::string line;
  std::multiset<std::size_t> counters;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    ASSERT_TRUE(line.starts_with("plrupart: [")) << "mangled line: " << line;
    ASSERT_NE(line.find("] "), std::string::npos) << line;
    ASSERT_NE(line.find(" done ("), std::string::npos) << "interleaved line: " << line;
    ASSERT_EQ(line.substr(line.size() - std::string("M acc/s)").size()), "M acc/s)")
        << "truncated line: " << line;
    const std::size_t open = line.find('[');
    const std::size_t slash = line.find('/', open);
    counters.insert(std::stoul(line.substr(open + 1, slash - open - 1)));
  }
  EXPECT_EQ(lines, total);
  std::multiset<std::size_t> expected;
  for (std::size_t n = 1; n <= total; ++n) expected.insert(n);
  EXPECT_EQ(counters, expected) << "stderr was:\n" << err;
}

TEST(SweepExecutorStress, ShardRunsMergeToUnshardedBytesAtAnyThreadCount) {
  const auto m = stress_matrix();
  const runner::SweepExecutor serial({.threads = 1});
  const std::string full = csv_of(serial.run(m.expand()));

  for (const std::size_t n_shards : {2u, 3u}) {
    // Each shard simulated with its own contended pool, as a fleet would.
    std::vector<std::string> shard_csvs(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
      const runner::SweepExecutor ex({.threads = 8});
      shard_csvs[s] = csv_of(ex.run(m.shard(s, n_shards)));
    }
    std::vector<std::istringstream> streams(shard_csvs.begin(), shard_csvs.end());
    std::vector<std::istream*> ptrs;
    std::vector<std::string> names;
    for (std::size_t s = 0; s < n_shards; ++s) {
      ptrs.push_back(&streams[s]);
      names.push_back("shard" + std::to_string(s));
    }
    std::ostringstream merged;
    runner::merge_csv_streams(ptrs, names, merged);
    EXPECT_EQ(merged.str(), full) << "n_shards=" << n_shards;
  }
}

TEST(SweepExecutorStress, EmptyJobListIsANoop) {
  const runner::SweepExecutor ex({.threads = 8, .progress = true});
  EXPECT_TRUE(ex.run({}).empty());
}

}  // namespace
}  // namespace plrupart
