// TSan-facing stress suite: hammers the two places std::thread concurrency
// lives today — common/parallel.hpp and runner::SweepExecutor — so the
// ThreadSanitizer tier (PLRUPART_SANITIZE=thread) has real contention to bite
// on. This is the race-clean baseline the intra-run (set-sharded) parallelism
// work must keep green: any new cross-thread sharing that reaches these paths
// shows up here first.
//
// The suite is deliberately repetition-heavy (many rounds x many thread
// counts): TSan finds races by observing conflicting access pairs, so one
// quiet fan-out proves much less than fifty contended ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "plrupart/cache/geometry.hpp"
#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "plrupart/workloads/workload_table.hpp"
#include "sim/sharded_replay.hpp"

namespace plrupart {
namespace {

/// The thread counts the issue contract names: serial fallback, minimal
/// contention, oversubscribed (8 >> this container's cores), and whatever the
/// host really has.
std::vector<std::size_t> stress_thread_counts() {
  return {1, 2, 8, default_parallelism()};
}

TEST(ParallelStress, RepeatedFanOutCoversEveryIndexAtEveryThreadCount) {
  constexpr std::size_t kItems = 256;
  constexpr int kRounds = 25;
  for (const std::size_t threads : stress_thread_counts()) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::atomic<int>> hits(kItems);
      parallel_for(
          kItems, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
          threads);
      for (std::size_t i = 0; i < kItems; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " round=" << round
                                     << " index=" << i;
    }
  }
}

TEST(ParallelStress, UnevenWorkWritesToDisjointSlotsWithoutRaces) {
  // Each body writes plain (non-atomic) memory, but only its own slot; the
  // work per item varies wildly so the dynamic queue actually rebalances.
  // Under TSan this certifies the fork-join edges of parallel_for: the final
  // reads on the calling thread must happen-after every worker write.
  constexpr std::size_t kItems = 192;
  for (const std::size_t threads : stress_thread_counts()) {
    std::vector<std::uint64_t> out(kItems, 0);
    parallel_for(
        kItems,
        [&](std::size_t i) {
          std::uint64_t acc = 0;
          const std::uint64_t spin = 1 + (i % 31) * 97;
          for (std::uint64_t k = 0; k < spin * 50; ++k) acc += k * k + i;
          out[i] = acc;
        },
        threads);
    for (std::size_t i = 0; i < kItems; ++i)
      ASSERT_NE(out[i], 0u) << "threads=" << threads << " index=" << i;
  }
}

TEST(ParallelStress, SharedAtomicAccumulationUnderContention) {
  constexpr std::size_t kItems = 10'000;
  for (const std::size_t threads : stress_thread_counts()) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(
        kItems, [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
        threads);
    EXPECT_EQ(sum.load(), kItems * (kItems - 1) / 2) << "threads=" << threads;
  }
}

TEST(ParallelStress, EveryWorkerThrowingPropagatesExactlyOneException) {
  // All bodies throw concurrently: the first-error latch in parallel_for is
  // itself shared mutable state worth hammering. Whatever wins the race must
  // be one of the thrown values, and the pool must still join cleanly.
  constexpr std::size_t kItems = 64;
  for (const std::size_t threads : stress_thread_counts()) {
    for (int round = 0; round < 10; ++round) {
      bool caught = false;
      try {
        parallel_for(
            kItems,
            [](std::size_t i) { throw std::runtime_error("w" + std::to_string(i)); },
            threads);
      } catch (const std::runtime_error& e) {
        caught = true;
        const std::string msg = e.what();
        ASSERT_EQ(msg.front(), 'w');
        const std::size_t idx = std::stoul(msg.substr(1));
        ASSERT_LT(idx, kItems);
      }
      ASSERT_TRUE(caught) << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ParallelStress, ExceptionAmidHealthyWorkersStillJoins) {
  constexpr std::size_t kItems = 512;
  for (const std::size_t threads : stress_thread_counts()) {
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(
        parallel_for(
            kItems,
            [&](std::size_t i) {
              if (i == kItems / 2) throw std::logic_error("mid-flight failure");
              ran.fetch_add(1, std::memory_order_relaxed);
            },
            threads),
        std::logic_error);
    // Everything that did run completed before the join; no lost updates.
    EXPECT_LE(ran.load(), kItems - 1);
  }
}

TEST(ParallelStress, NestedFanOutDoesNotDeadlockOrRace) {
  // Inner fan-outs spawn their own pools; nothing in parallel_for is global,
  // so nesting must compose. Kept small: this multiplies threads.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(
      8,
      [&](std::size_t outer) {
        parallel_for(
            8,
            [&](std::size_t inner) {
              hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
            },
            /*threads=*/2);
      },
      /*threads=*/4);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// --- SweepExecutor under contention -----------------------------------------

/// Small but real matrix: every job simulates, so worker threads spend real
/// time inside the cache/ATD core while others fan out around them.
runner::RunMatrix stress_matrix() {
  runner::RunMatrix m;
  m.configs = {"NOPART-L", "M-0.75N"};
  const auto& all = workloads::workloads_2t();
  m.workloads = {all[0], all[1], all[2]};
  m.l2_kb = {128, 256};
  m.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  m.instr = 6'000;
  m.warmup = 1'500;
  m.interval_cycles = 20'000;
  m.sampling_ratio = 8;
  m.seed = 1234;
  return m;
}

std::string csv_of(const std::vector<runner::JobResult>& results) {
  std::ostringstream os;
  runner::write_csv(os, results);
  return os.str();
}

TEST(SweepExecutorStress, CsvByteIdenticalAcrossAllThreadCounts) {
  const auto jobs = stress_matrix().expand();
  std::string reference;
  for (const std::size_t threads : stress_thread_counts()) {
    const runner::SweepExecutor ex({.threads = threads, .progress = false});
    const std::string csv = csv_of(ex.run(jobs));
    if (reference.empty()) {
      reference = csv;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

TEST(SweepExecutorStress, ProgressLinesStayWholeUnderOversubscription) {
  // --progress writes one fprintf per finished job from whichever worker
  // finished it. Each line must come out whole (glibc locks the FILE* per
  // call) and the completion counters must be a permutation of 1..N even
  // though completion order is nondeterministic.
  const auto jobs = stress_matrix().expand();
  const std::size_t total = jobs.size();
  const runner::SweepExecutor ex({.threads = 8, .progress = true});
  ::testing::internal::CaptureStderr();
  const auto results = ex.run(jobs);
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(results.size(), total);

  std::istringstream is(err);
  std::string line;
  std::multiset<std::size_t> counters;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    ASSERT_TRUE(line.starts_with("plrupart: [")) << "mangled line: " << line;
    ASSERT_NE(line.find("] "), std::string::npos) << line;
    ASSERT_NE(line.find(" done ("), std::string::npos) << "interleaved line: " << line;
    // Serial jobs end "...M acc/s)", intra-run-sharded jobs "...M acc/s, K shards)".
    ASSERT_TRUE(line.ends_with("M acc/s)") || line.ends_with("shards)"))
        << "truncated line: " << line;
    const std::size_t open = line.find('[');
    const std::size_t slash = line.find('/', open);
    counters.insert(std::stoul(line.substr(open + 1, slash - open - 1)));
  }
  EXPECT_EQ(lines, total);
  std::multiset<std::size_t> expected;
  for (std::size_t n = 1; n <= total; ++n) expected.insert(n);
  EXPECT_EQ(counters, expected) << "stderr was:\n" << err;
}

TEST(SweepExecutorStress, ShardRunsMergeToUnshardedBytesAtAnyThreadCount) {
  const auto m = stress_matrix();
  const runner::SweepExecutor serial({.threads = 1});
  const std::string full = csv_of(serial.run(m.expand()));

  for (const std::size_t n_shards : {2u, 3u}) {
    // Each shard simulated with its own contended pool, as a fleet would.
    std::vector<std::string> shard_csvs(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
      const runner::SweepExecutor ex({.threads = 8});
      shard_csvs[s] = csv_of(ex.run(m.shard(s, n_shards)));
    }
    std::vector<std::istringstream> streams(shard_csvs.begin(), shard_csvs.end());
    std::vector<std::istream*> ptrs;
    std::vector<std::string> names;
    for (std::size_t s = 0; s < n_shards; ++s) {
      ptrs.push_back(&streams[s]);
      names.push_back("shard" + std::to_string(s));
    }
    std::ostringstream merged;
    runner::merge_csv_streams(ptrs, names, merged);
    EXPECT_EQ(merged.str(), full) << "n_shards=" << n_shards;
  }
}

TEST(SweepExecutorStress, EmptyJobListIsANoop) {
  const runner::SweepExecutor ex({.threads = 8, .progress = true});
  EXPECT_TRUE(ex.run({}).empty());
}

TEST(SweepExecutorStress, TimedProgressLinesReportSimulatedCycleRate) {
  // Timed jobs are much slower per access than functional ones, so an
  // acc/s-only progress line would read as a regression; the line must carry
  // the simulated cycle rate alongside.
  runner::RunMatrix m = stress_matrix();
  m.configs = {"M-0.75N"};
  m.workloads.resize(1);
  m.l2_kb = {128};
  m.timing = sim::TimingMode::kTimed;
  const auto jobs = m.expand();
  const runner::SweepExecutor ex({.threads = 1, .progress = true});
  ::testing::internal::CaptureStderr();
  const auto results = ex.run(jobs);
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(results.size(), jobs.size());

  std::istringstream is(err);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    ASSERT_TRUE(line.starts_with("plrupart: [")) << "mangled line: " << line;
    EXPECT_NE(line.find("M acc/s, "), std::string::npos) << "line: " << line;
    EXPECT_TRUE(line.ends_with("M cyc/s)")) << "line: " << line;
  }
  EXPECT_EQ(lines, jobs.size());
}

// --- Intra-run set-sharded parallelism under contention ---------------------

/// Like stress_matrix(), but with a pseudo-LRU partitioned config (the
/// paper's centre of mass) alongside the NRU one, so both the set-sharded
/// path and its silent serial fallback run in every round.
runner::RunMatrix sharded_stress_matrix() {
  runner::RunMatrix m = stress_matrix();
  m.configs = {"M-BT", "NOPART-L", "M-0.75N"};
  m.workloads.resize(2);
  return m;
}

TEST(ShardedSimStress, CsvByteIdenticalAcrossSimThreadCounts) {
  // The issue contract: {1, 2, 8, hardware} intra-run workers, CSV bytes
  // identical at every count — here with the sweep pool (2 jobs at a time)
  // layered on top, so demux/worker threads of different jobs contend.
  runner::RunMatrix m = sharded_stress_matrix();
  std::string reference;
  for (const std::size_t sim_threads : stress_thread_counts()) {
    m.sim_threads = static_cast<std::uint32_t>(sim_threads);
    const runner::SweepExecutor ex({.threads = 2, .progress = false});
    const std::string csv = csv_of(ex.run(m.expand()));
    if (reference.empty()) {
      reference = csv;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(csv, reference) << "sim_threads=" << sim_threads;
    }
  }
}

TEST(ShardedSimStress, RepeatedShardedRunsAreStable) {
  // Many short sharded runs back to back: thread creation/join churn is where
  // lost-wakeup and reuse-after-join bugs live, and TSan needs the repetition
  // to observe conflicting pairs.
  runner::RunMatrix m = sharded_stress_matrix();
  m.configs = {"M-BT"};
  m.sim_threads = 4;
  const auto jobs = m.expand();
  const runner::SweepExecutor ex({.threads = 1, .progress = false});
  const std::string reference = csv_of(ex.run(jobs));
  for (int round = 0; round < 5; ++round)
    EXPECT_EQ(csv_of(ex.run(jobs)), reference) << "round=" << round;
}

TEST(ShardedSimStress, ProgressLinesReportAggregateShardCount)
{
  runner::RunMatrix m = sharded_stress_matrix();
  m.configs = {"M-BT"};  // every job shardable
  m.sim_threads = 2;
  const auto jobs = m.expand();
  const runner::SweepExecutor ex({.threads = 2, .progress = true});
  ::testing::internal::CaptureStderr();
  const auto results = ex.run(jobs);
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& jr : results) EXPECT_EQ(jr.result.sim_shards, 2u);

  std::istringstream is(err);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    // The rate is the aggregate across the job's shard workers; the line must
    // say how many shards produced it.
    EXPECT_TRUE(line.ends_with("M acc/s, 2 shards)")) << "line: " << line;
  }
  EXPECT_EQ(lines, jobs.size());
}

/// Plumbing for driving the internal engine directly (exception injection
/// needs ShardedTestHooks, which CmpSimulator does not expose).
struct ShardedRunParts {
  sim::SimConfig config;
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  std::unique_ptr<sim::MemoryHierarchy> hierarchy;
};

ShardedRunParts make_sharded_parts() {
  ShardedRunParts p;
  p.config.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  p.config.hierarchy.l2 = core::CpaConfig::from_acronym(
      "M-BT", 2,
      cache::Geometry{.size_bytes = 128 * 1024, .associativity = 16, .line_bytes = 128});
  p.config.hierarchy.l2.interval_cycles = 20'000;
  p.config.hierarchy.l2.sampling_ratio = 8;
  p.config.instr_limit = 8'000;
  p.config.warmup_instr = 2'000;
  const char* names[] = {"twolf", "art"};
  for (std::uint32_t i = 0; i < 2; ++i) {
    const auto& prof = workloads::benchmark(names[i]);
    p.config.cores.push_back(prof.core);
    p.traces.push_back(workloads::make_trace(prof, i, 55));
  }
  p.hierarchy = std::make_unique<sim::MemoryHierarchy>(p.config.hierarchy);
  return p;
}

TEST(ShardedSimStress, ExceptionInOneShardWorkerJoinsCleanlyAndPropagates) {
  // One worker throws mid-run while the demux thread and the other workers
  // are blocked in ring/barrier waits; everything must unwind and join, and
  // the original exception must surface. Repeated: the abort latch and the
  // join ordering are themselves shared state worth hammering.
  for (int round = 0; round < 8; ++round) {
    ShardedRunParts p = make_sharded_parts();
    std::atomic<int> owned{0};
    sim::internal::ShardedTestHooks hooks;
    hooks.on_owned_access = [&](std::uint32_t shard) {
      // Let the run reach steady state first, then fail from one shard only.
      if (shard == 1 && owned.fetch_add(1, std::memory_order_relaxed) > 200)
        throw std::runtime_error("injected shard failure");
    };
    try {
      (void)sim::internal::run_set_sharded(p.config, p.traces, *p.hierarchy, 4, &hooks);
      FAIL() << "round " << round << ": injected exception did not propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "injected shard failure") << "round=" << round;
    }
  }
}

TEST(ShardedSimStress, HookSeesOnlyOwnedShardIndices) {
  // Sanity on the instrumentation point itself: each worker reports only its
  // own shard index, and all shards end up owning work.
  ShardedRunParts p = make_sharded_parts();
  constexpr std::uint32_t kShards = 4;
  std::array<std::atomic<std::uint64_t>, kShards> per_shard{};
  sim::internal::ShardedTestHooks hooks;
  hooks.on_owned_access = [&](std::uint32_t shard) {
    ASSERT_LT(shard, kShards);
    per_shard[shard].fetch_add(1, std::memory_order_relaxed);
  };
  const auto r =
      sim::internal::run_set_sharded(p.config, p.traces, *p.hierarchy, kShards, &hooks);
  EXPECT_EQ(r.sim_shards, kShards);
  std::uint64_t total = 0;
  for (const auto& c : per_shard) {
    EXPECT_GT(c.load(), 0u) << "a shard owned no L2 accesses";
    total += c.load();
  }
  // Every post-L1-miss access is owned by exactly one shard.
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace plrupart
