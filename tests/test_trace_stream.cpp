// The streaming trace path under stress: malformed inputs of every kind must
// fail with a clear TraceError (never UB — this suite runs under the
// PLRUPART_SANITIZE job), random op streams must round-trip byte-exactly
// through both formats at any buffer size (including buffers smaller than one
// record), and a >=100 MB trace must stream with O(buffer) resident memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <unistd.h>
#include <vector>

#include "plrupart/common/rng.hpp"
#include "plrupart/sim/trace_codec.hpp"
#include "plrupart/sim/trace_file.hpp"

namespace plrupart::sim {
namespace {

class TraceStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plrupart_stream_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const { return (dir_ / name).string(); }

  /// Write raw bytes verbatim (no header is added).
  [[nodiscard]] std::string raw_file(const char* name, const std::string& bytes) const {
    const auto p = path(name);
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  /// Stream every record of `p`; malformed input throws out of here.
  static std::vector<MemOp> drain(const std::string& p, std::size_t buffer = 4096) {
    TraceReader reader(p, buffer);
    std::vector<MemOp> ops;
    while (auto op = reader.next()) ops.push_back(*op);
    return ops;
  }

  /// EXPECT that draining `bytes` throws a TraceError mentioning `what`.
  void expect_rejects(const std::string& bytes, const std::string& what) {
    const auto p = raw_file("bad.trace", bytes);
    try {
      (void)drain(p);
      FAIL() << "expected TraceError mentioning '" << what << "' for: " << bytes;
    } catch (const TraceError& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "error message '" << e.what() << "' does not mention '" << what << "'";
    }
  }

  std::filesystem::path dir_;
};

constexpr const char* kV1 = "# plrupart-trace v1\n";
constexpr const char* kV2 = "# plrupart-trace v2\n";

// ---------------------------------------------------------------------------
// Malformed input: every defect fails loudly with the defect spelled out.
// ---------------------------------------------------------------------------

TEST_F(TraceStreamTest, RejectsTruncatedHeader) {
  expect_rejects("# plrupart-tr", "truncated header");
  expect_rejects("", "truncated header");
  expect_rejects("# plrupart-trace v1", "truncated header");  // no newline
}

TEST_F(TraceStreamTest, RejectsUnknownHeader) {
  expect_rejects("# plrupart-trace v9\n1 a R\n", "missing plrupart-trace header");
  expect_rejects("5 1a2b R\n", "missing plrupart-trace header");
}

TEST_F(TraceStreamTest, RejectsCrlfHeader) {
  expect_rejects("# plrupart-trace v1\r\n1 a R\n", "CRLF");
}

TEST_F(TraceStreamTest, RejectsMixedLineEndings) {
  // First record clean, second carries a CRLF ending: the error must name the
  // line ending, not mis-parse the record.
  expect_rejects(std::string(kV1) + "1 a R\n2 b W\r\n", "CRLF");
}

TEST_F(TraceStreamTest, RejectsNegativeGap) {
  expect_rejects(std::string(kV1) + "-5 1a2b R\n", "negative gap");
}

TEST_F(TraceStreamTest, RejectsGapOutOfRange) {
  expect_rejects(std::string(kV1) + "4294967296 1a2b R\n", "gap out of range");
}

TEST_F(TraceStreamTest, RejectsBadHexAddress) {
  expect_rejects(std::string(kV1) + "5 zz R\n", "bad address");
  expect_rejects(std::string(kV1) + "5 1a2bg R\n", "malformed record");  // g ends the hex run
  expect_rejects(std::string(kV1) + "5 11112222333344445 R\n", "more than 16 hex digits");
}

TEST_F(TraceStreamTest, RejectsMidRecordEofInText) {
  expect_rejects(std::string(kV1) + "5", "truncated record");
  expect_rejects(std::string(kV1) + "5 ", "truncated record");
  expect_rejects(std::string(kV1) + "5 1a2b", "truncated record");
  expect_rejects(std::string(kV1) + "5 1a2b ", "truncated record");
}

TEST_F(TraceStreamTest, RejectsBadFlagAndTrailingJunk) {
  expect_rejects(std::string(kV1) + "5 1a2b X\n", "bad R/W flag");
  expect_rejects(std::string(kV1) + "5 1a2b R junk\n", "trailing characters");
}

TEST_F(TraceStreamTest, RejectsMidRecordEofInBinary) {
  // A lone continuation byte: EOF inside the first varint.
  expect_rejects(std::string(kV2) + std::string(1, '\x80'), "EOF inside a varint");
  // A complete meta varint but no address delta: EOF between the varints of
  // one record is still mid-record.
  expect_rejects(std::string(kV2) + std::string(1, '\x04'), "truncated record");
}

TEST_F(TraceStreamTest, RejectsVarintOverflow) {
  // 9 continuation bytes then a 10th byte with more than bit 63 set.
  expect_rejects(std::string(kV2) + std::string(9, '\x80') + '\x02', "varint overflow");
  // 10 continuation bytes: the varint never terminates within the cap.
  expect_rejects(std::string(kV2) + std::string(10, '\x80'), "varint overflow");
}

TEST_F(TraceStreamTest, RejectsBinaryGapOutOfRange) {
  // meta = 2^33 encodes gap = 2^32, one past the uint32 ceiling.
  std::string bytes(kV2);
  append_varint(bytes, std::uint64_t{1} << 33);
  append_varint(bytes, 0);
  expect_rejects(bytes, "gap out of range");
}

TEST_F(TraceStreamTest, EmptyTraceFailsAtConstruction) {
  EXPECT_THROW(FileTraceSource{raw_file("e1.trace", kV1)}, TraceError);
  EXPECT_THROW(FileTraceSource{raw_file("e2.trace", kV2)}, TraceError);
  // Comments and blank lines only: still no records.
  EXPECT_THROW(FileTraceSource{raw_file("e3.trace", std::string(kV1) + "\n# note\n\n")},
               TraceError);
  EXPECT_THROW(probe_trace_file(raw_file("e4.trace", kV1)), TraceError);
}

TEST_F(TraceStreamTest, MalformedFirstRecordFailsAtConstruction) {
  // FileTraceSource probes the first record up front, so a sweep over a bad
  // trace dies before simulation, not mid-run.
  EXPECT_THROW(FileTraceSource{raw_file("b.trace", std::string(kV1) + "bogus\n")},
               TraceError);
}

// ---------------------------------------------------------------------------
// Round-trip properties: random streams, both formats, any buffer size.
// ---------------------------------------------------------------------------

/// Random ops exercising the codec's edges: small v2 deltas, sign-flipping
/// huge deltas, zero and max addresses, zero and max gaps.
std::vector<MemOp> random_ops(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MemOp> ops;
  ops.reserve(n);
  cache::Addr prev = 0x4000'0000;
  for (std::size_t i = 0; i < n; ++i) {
    MemOp op;
    switch (rng.next_below(4)) {
      case 0: op.addr = prev + 64 * rng.next_below(32); break;        // small +delta
      case 1: op.addr = prev - 64 * rng.next_below(32); break;        // small -delta
      case 2: op.addr = rng.next_u64() & 0xffff'ffff'ffff; break;     // 48-bit jump
      default: op.addr = rng.next_u64(); break;                       // full 64-bit
    }
    prev = op.addr;
    op.write = rng.next_bool(0.3);
    const auto kind = rng.next_below(8);
    op.gap_instrs = kind == 0   ? 0
                    : kind == 1 ? std::numeric_limits<std::uint32_t>::max()
                                : static_cast<std::uint32_t>(rng.next_below(2000));
    ops.push_back(op);
  }
  // Pin the absolute extremes regardless of what the Rng produced.
  ops[0].addr = 0;
  ops[n / 2].addr = ~cache::Addr{0};
  return ops;
}

TEST_F(TraceStreamTest, RoundTripsBothFormatsAtAnyBufferSize) {
  const auto ops = random_ops(3000, 1234);
  for (const auto format : {TraceFormat::kTextV1, TraceFormat::kBinaryV2}) {
    const auto p = path(format == TraceFormat::kTextV1 ? "rt.v1.trace" : "rt.v2.trace");
    write_trace_file(p, ops, format);
    // Buffer sizes below one record force records to straddle refills; 1 is
    // the degenerate byte-at-a-time case.
    for (const std::size_t buffer : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                     std::size_t{64}, std::size_t{4096},
                                     std::size_t{1} << 20}) {
      const auto got = drain(p, buffer);
      ASSERT_EQ(got.size(), ops.size()) << "buffer " << buffer;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        ASSERT_EQ(got[i].addr, ops[i].addr) << "op " << i << " buffer " << buffer;
        ASSERT_EQ(got[i].write, ops[i].write) << "op " << i << " buffer " << buffer;
        ASSERT_EQ(got[i].gap_instrs, ops[i].gap_instrs)
            << "op " << i << " buffer " << buffer;
      }
    }
  }
}

TEST_F(TraceStreamTest, LoopingReplayIsIdenticalEveryLap) {
  const auto ops = random_ops(257, 77);
  const auto p = path("loop.v2.trace");
  write_trace_file(p, ops, TraceFormat::kBinaryV2);
  FileTraceSource src(p, 128);  // refills many times per lap
  for (int lap = 0; lap < 3; ++lap) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto got = src.next();
      ASSERT_EQ(got.addr, ops[i].addr) << "lap " << lap << " op " << i;
      ASSERT_EQ(got.gap_instrs, ops[i].gap_instrs) << "lap " << lap << " op " << i;
    }
  }
  EXPECT_EQ(src.loops_completed(), 2u);
  EXPECT_EQ(src.ops_delivered(), 3 * ops.size());
  src.reset();
  EXPECT_EQ(src.next().addr, ops[0].addr) << "reset() must restart the stream";
}

TEST_F(TraceStreamTest, V2IsSubstantiallySmallerThanV1) {
  // The point of v2: sequential/strided traces (the common capture shape)
  // cost a few bytes per record instead of a text line.
  std::vector<MemOp> ops;
  ops.reserve(10'000);
  for (std::size_t i = 0; i < 10'000; ++i)
    ops.push_back(MemOp{.addr = 0x1000'0000 + 64 * i, .write = (i & 3) == 0,
                        .gap_instrs = static_cast<std::uint32_t>(i % 7)});
  write_trace_file(path("s.v1.trace"), ops, TraceFormat::kTextV1);
  write_trace_file(path("s.v2.trace"), ops, TraceFormat::kBinaryV2);
  const auto v1 = std::filesystem::file_size(path("s.v1.trace"));
  const auto v2 = std::filesystem::file_size(path("s.v2.trace"));
  EXPECT_LT(v2 * 3, v1) << "v2 should be <1/3 the size of v1 on strided traces";
}

// ---------------------------------------------------------------------------
// O(buffer) memory on a >=100 MB trace.
// ---------------------------------------------------------------------------

/// Peak resident set (VmHWM) in KiB, or -1 when /proc is unavailable.
long vm_hwm_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.starts_with("VmHWM:")) return std::stol(line.substr(6));
  }
  return -1;
}

TEST_F(TraceStreamTest, StreamsHundredMegabyteTraceWithSmallBuffer) {
  // Write ~105 MB of v1 text one record at a time (the writer streams too),
  // then replay it through a 256 KiB buffer and require the peak RSS not to
  // grow by more than a slack factor over that buffer — the old
  // load-everything reader would add >300 MB here (6-byte MemOp vector plus
  // parse-time strings).
  constexpr std::uint64_t kRecords = 7'000'000;
  constexpr std::size_t kBuffer = 256 * 1024;
  const auto p = path("big.v1.trace");
  std::uint64_t expected_sum = 0;
  MemOp first{};
  {
    TraceWriter writer(p, TraceFormat::kTextV1);
    Rng rng(4242);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      MemOp op;
      // Bit 39 pins every address at 10 hex digits -> ~15 bytes per line.
      op.addr = (rng.next_u64() & 0xff'ffff'ffff) | (cache::Addr{1} << 39);
      op.write = (i & 7) == 0;
      op.gap_instrs = static_cast<std::uint32_t>(i & 7);
      if (i == 0) first = op;
      expected_sum += op.addr;
      writer.append(op);
    }
    writer.close();
  }
  ASSERT_GE(std::filesystem::file_size(p), std::uint64_t{100} * 1024 * 1024)
      << "fixture must exceed 100 MB for the O(buffer) claim to mean anything";

  const long hwm_before = vm_hwm_kib();
  FileTraceSource src(p, kBuffer);
  EXPECT_LE(src.buffer_capacity(), kBuffer);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kRecords; ++i) sum += src.next().addr;
  EXPECT_EQ(sum, expected_sum) << "streamed records must match what was written";
  const auto wrapped = src.next();  // one lap more: rewind still works at scale
  EXPECT_EQ(wrapped.addr, first.addr);
  EXPECT_EQ(src.loops_completed(), 1u);

  const long hwm_after = vm_hwm_kib();
  if (hwm_before > 0 && hwm_after > 0) {
    // 32 MiB of slack absorbs allocator/sanitizer noise while still being
    // ~10x below what materializing the 7M-record trace would cost.
    EXPECT_LE(hwm_after - hwm_before, 32 * 1024)
        << "streaming a " << std::filesystem::file_size(p) / (1024 * 1024)
        << " MB trace grew peak RSS from " << hwm_before << " KiB to " << hwm_after
        << " KiB — reader memory is not O(buffer)";
  }
}

}  // namespace
}  // namespace plrupart::sim
