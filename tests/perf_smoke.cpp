// Tier-1 throughput smoke gate for the L2 access hot path.
//
// Replays identical pre-generated streams through the optimized
// SetAssocCache and the frozen pre-refactor ReferenceCache (virtual dispatch
// + AoS lines, tests/support/reference_cache.hpp) in the same process, and
// requires the optimized path to keep a comfortable lead for the two
// pseudo-LRU policies the paper centres on, at 16 and 32 ways.
//
// The measured refactor advantage is ~2-3x; the gate only demands 1.25x, so
// ordinary machine noise passes but reintroducing per-access virtual calls,
// per-miss mask rebuilds, or per-access divisions fails tier-1 instead of
// waiting for a human to rerun the benchmarks. Both sides run interleaved
// (best-of-three) under the same load, which keeps the ratio stable even on
// busy CI machines.
#include <chrono>
#include <cstdio>
#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/common/rng.hpp"
#include "support/reference_cache.hpp"

using namespace plrupart;

namespace {

constexpr double kRequiredSpeedup = 1.25;
constexpr std::size_t kStream = 1 << 16;
constexpr int kPasses = 6;  // per timed sample: ~400k accesses
constexpr int kReps = 3;    // best-of

struct Stream {
  std::vector<cache::Addr> addr;
  std::vector<cache::CoreId> core;
};

Stream make_stream(const cache::Geometry& geo) {
  Stream s;
  s.addr.resize(kStream);
  s.core.resize(kStream);
  Rng rng(3);
  for (std::size_t i = 0; i < kStream; ++i) {
    s.addr[i] = rng.next_below(32 * geo.lines()) * geo.line_bytes;
    s.core[i] = static_cast<cache::CoreId>(i & 1);
  }
  return s;
}

template <class Cache>
double measure_seconds(Cache& c, const Stream& s) {
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (std::size_t i = 0; i < kStream; ++i) {
      sink += c.access(s.core[i], s.addr[i], false).way;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Keep the accumulated way sum observable so the loop cannot be elided.
  if (sink == 0xdeadbeef) std::printf("(unreachable %llu)\n",
                                      static_cast<unsigned long long>(sink));
  return std::chrono::duration<double>(t1 - t0).count();
}

bool check(cache::ReplacementKind kind, std::uint32_t ways) {
  const cache::Geometry geo{.size_bytes = 1024ULL * ways * 128,
                            .associativity = ways, .line_bytes = 128};
  const Stream s = make_stream(geo);

  double best_opt = 1e30;
  double best_ref = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    cache::SetAssocCache opt(geo, kind, 2, cache::EnforcementMode::kWayMasks);
    opt.set_way_mask(0, way_range_mask(0, ways / 2));
    opt.set_way_mask(1, way_range_mask(ways / 2, ways / 2));
    testing::ReferenceCache ref(geo, kind, 2, cache::EnforcementMode::kWayMasks);
    ref.set_way_mask(0, way_range_mask(0, ways / 2));
    ref.set_way_mask(1, way_range_mask(ways / 2, ways / 2));
    const double t_ref = measure_seconds(ref, s);
    const double t_opt = measure_seconds(opt, s);
    if (t_opt < best_opt) best_opt = t_opt;
    if (t_ref < best_ref) best_ref = t_ref;
  }

  const double accesses = static_cast<double>(kStream) * kPasses;
  const double speedup = best_ref / best_opt;
  const bool ok = speedup >= kRequiredSpeedup;
  std::printf("%-6s %2u-way: optimized %7.2f M acc/s, reference %7.2f M acc/s, "
              "speedup %.2fx (need >= %.2fx) %s\n",
              to_string(kind).c_str(), ways, accesses / best_opt / 1e6,
              accesses / best_ref / 1e6, speedup, kRequiredSpeedup,
              ok ? "OK" : "FAIL");
  return ok;
}

}  // namespace

int main() {
  bool ok = true;
  for (const auto kind : {cache::ReplacementKind::kNru, cache::ReplacementKind::kTreePlru}) {
    for (const std::uint32_t ways : {16U, 32U}) ok &= check(kind, ways);
  }
  if (!ok) {
    std::printf("perf smoke gate FAILED: the optimized access path lost its lead "
                "over the reference implementation\n");
    return 1;
  }
  std::printf("perf smoke gate OK\n");
  return 0;
}
