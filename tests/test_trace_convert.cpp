// Trace ingestion: the ChampSim fixture must convert byte-for-byte to its
// committed golden file (the golden is derived independently by
// tests/support/make_champsim_fixture.py), PIN text must parse, and v1<->v2
// re-encoding must be lossless.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "plrupart/common/rng.hpp"
#include "plrupart/sim/trace_convert.hpp"
#include "plrupart/sim/trace_file.hpp"

namespace plrupart::sim {
namespace {

[[nodiscard]] std::string support_path(const char* name) {
  return std::string(PLRUPART_TEST_SUPPORT_DIR) + "/" + name;
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TraceConvertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plrupart_convert_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const { return (dir_ / name).string(); }

  [[nodiscard]] std::string raw_file(const char* name, const std::string& bytes) const {
    const auto p = path(name);
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  std::filesystem::path dir_;
};

TEST_F(TraceConvertTest, ChampSimFixtureMatchesCommittedGolden) {
  const auto out = path("champsim.v1.trace");
  const auto stats = convert_trace(support_path("champsim_small.champsim"), out,
                                   ExternalTraceKind::kChampSim, TraceFormat::kTextV1);
  EXPECT_EQ(stats.records_in, 19u) << "fixture holds 19 input_instr records";
  EXPECT_EQ(stats.ops_out, 15u);
  EXPECT_EQ(slurp(out), slurp(support_path("champsim_small.golden.v1.trace")))
      << "conversion diverged from the independently derived golden file";
}

TEST_F(TraceConvertTest, ChampSimThroughV2IsLossless) {
  // champsim -> v2 -> v1 must land on the exact same golden bytes: the binary
  // format adds nothing and loses nothing.
  const auto v2 = path("champsim.v2.trace");
  (void)convert_trace(support_path("champsim_small.champsim"), v2,
                      ExternalTraceKind::kChampSim, TraceFormat::kBinaryV2);
  EXPECT_EQ(probe_trace_file(v2), TraceFormat::kBinaryV2);
  const auto v1 = path("champsim.v2.v1.trace");
  const auto stats =
      convert_trace(v2, v1, ExternalTraceKind::kAuto, TraceFormat::kTextV1);
  EXPECT_EQ(stats.kind, ExternalTraceKind::kNative) << "auto must detect native v2";
  EXPECT_EQ(slurp(v1), slurp(support_path("champsim_small.golden.v1.trace")));
}

TEST_F(TraceConvertTest, MaxOpsCutsAPrefix) {
  const auto out = path("champsim.head.trace");
  const auto stats = convert_trace(support_path("champsim_small.champsim"), out,
                                   ExternalTraceKind::kChampSim, TraceFormat::kTextV1,
                                   /*max_ops=*/4);
  EXPECT_EQ(stats.ops_out, 4u);
  // The output must be exactly the first 4 records of the golden.
  std::istringstream golden(slurp(support_path("champsim_small.golden.v1.trace")));
  std::string expected, line;
  for (int i = 0; i < 5 && std::getline(golden, line); ++i) expected += line + "\n";
  EXPECT_EQ(slurp(out), expected);
}

TEST_F(TraceConvertTest, RejectsTruncatedChampSimRecord) {
  const auto full = slurp(support_path("champsim_small.champsim"));
  const auto cut = raw_file("cut.champsim", full.substr(0, full.size() - 10));
  EXPECT_THROW(convert_trace(cut, path("out.trace"), ExternalTraceKind::kChampSim,
                             TraceFormat::kBinaryV2),
               TraceError);
  // A failed conversion must not leave a valid-looking partial trace behind:
  // v2 has no trailer, so a truncated output would be undetectable downstream.
  EXPECT_FALSE(std::filesystem::exists(path("out.trace")));
}

TEST_F(TraceConvertTest, RejectsChampSimWithNoMemoryOps) {
  // Two pure-ALU records: 64 zero bytes each (ip 0 is irrelevant).
  const auto p = raw_file("alu.champsim", std::string(128, '\0'));
  EXPECT_THROW(convert_trace(p, path("out.trace"), ExternalTraceKind::kChampSim,
                             TraceFormat::kBinaryV2),
               TraceError);
}

TEST_F(TraceConvertTest, ConvertsPinStyleText) {
  const auto pin = raw_file("pinatrace.out",
                            "0x7f06ea8910a3: R 0x7ffd6dcd6e08\n"
                            "0x7f06ea8910b0: W 0x7ffd6dcd6e10\r\n"  // CRLF tolerated
                            "\n"
                            "7f06ea8910c2: R 1000\n"  // 0x prefix optional
                            "#eof\n");
  const auto out = path("pin.v2.trace");
  const auto stats =
      convert_trace(pin, out, ExternalTraceKind::kPin, TraceFormat::kBinaryV2);
  EXPECT_EQ(stats.records_in, 3u);
  EXPECT_EQ(stats.ops_out, 3u);
  TraceReader reader(out);
  const auto a = reader.next(), b = reader.next(), c = reader.next();
  ASSERT_TRUE(a && b && c);
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(a->addr, 0x7ffd6dcd6e08u);
  EXPECT_FALSE(a->write);
  EXPECT_EQ(a->gap_instrs, 0u) << "PIN traces carry no instruction counts";
  EXPECT_EQ(b->addr, 0x7ffd6dcd6e10u);
  EXPECT_TRUE(b->write);
  EXPECT_EQ(c->addr, 0x1000u);
}

TEST_F(TraceConvertTest, RejectsMalformedPinLines) {
  for (const char* body : {"not a trace\n", "0x10: X 0x20\n", "0x10: R 0xzz\n",
                           "0x10 R\n"}) {
    const auto p = raw_file("bad.pin", body);
    EXPECT_THROW(convert_trace(p, path("out.trace"), ExternalTraceKind::kPin,
                               TraceFormat::kTextV1),
                 TraceError)
        << body;
  }
}

TEST_F(TraceConvertTest, RefusesInPlaceConversionWithoutTouchingTheInput) {
  const auto p = path("keep.v1.trace");
  write_trace_file(p, {{.addr = 0x40, .write = false, .gap_instrs = 1}});
  const auto before = slurp(p);
  EXPECT_THROW(convert_trace(p, p, ExternalTraceKind::kNative, TraceFormat::kBinaryV2),
               TraceError);
  // Relative alias of the same file must be caught too.
  const auto alias = (dir_ / "." / "keep.v1.trace").string();
  EXPECT_THROW(
      convert_trace(p, alias, ExternalTraceKind::kNative, TraceFormat::kBinaryV2),
      TraceError);
  EXPECT_EQ(slurp(p), before) << "the input must survive a refused in-place convert";
}

TEST_F(TraceConvertTest, AutoDetectRefusesHeaderlessInput) {
  const auto p = raw_file("mystery.bin", "no header here\n");
  EXPECT_THROW(convert_trace(p, path("out.trace"), ExternalTraceKind::kAuto,
                             TraceFormat::kBinaryV2),
               TraceError);
}

TEST_F(TraceConvertTest, V1ToV2ToV1IsByteLossless) {
  Rng rng(99);
  std::vector<MemOp> ops;
  ops.reserve(2000);
  for (std::size_t i = 0; i < 2000; ++i)
    ops.push_back(MemOp{.addr = rng.next_u64() & 0xffff'ffff'ffffu,
                        .write = rng.next_bool(0.4),
                        .gap_instrs = static_cast<std::uint32_t>(rng.next_below(500))});
  const auto v1a = path("a.v1.trace");
  write_trace_file(v1a, ops, TraceFormat::kTextV1);
  const auto v2 = path("a.v2.trace");
  (void)convert_trace(v1a, v2, ExternalTraceKind::kNative, TraceFormat::kBinaryV2);
  const auto v1b = path("b.v1.trace");
  (void)convert_trace(v2, v1b, ExternalTraceKind::kNative, TraceFormat::kTextV1);
  EXPECT_EQ(slurp(v1a), slurp(v1b)) << "v1 -> v2 -> v1 must be byte-identical";
  EXPECT_LT(std::filesystem::file_size(v2), std::filesystem::file_size(v1a));
}

TEST_F(TraceConvertTest, NameParsersRejectUnknownValues) {
  EXPECT_EQ(trace_kind_from_name("champsim"), ExternalTraceKind::kChampSim);
  EXPECT_EQ(trace_format_from_name("v2"), TraceFormat::kBinaryV2);
  EXPECT_THROW((void)trace_kind_from_name("gem5"), TraceError);
  EXPECT_THROW((void)trace_format_from_name("v3"), TraceError);
}

}  // namespace
}  // namespace plrupart::sim
