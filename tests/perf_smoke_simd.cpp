// Throughput smoke gate for the SIMD dispatch tiers (cache/dispatch.hpp).
//
// Replays identical streams through the serial SWAR access path and the
// batched best-tier path (SetAssocCache::access_batch under the runtime-
// selected AVX tier) at 32 ways, for every policy x enforcement combo.
//
// What vectorization buys here is concentrated where a wide scan sits on the
// hot path: the SRRIP victim scan re-runs a whole-set RRPV compare up to
// kMaxRrpv times per miss, and measures ~1.5x. The other policies' combos
// are filter-bound for at most one 32-byte compare per access and measure
// parity (~0.9-1.15x) on a miss-dominated stream -- the SWAR baseline
// already harvested most of the filter win. The gate encodes exactly that
// shape so a regression in either direction fails tier-1:
//   - SRRIP subset (3 enforcement modes): geo-mean >= 1.3x
//   - every other combo: >= kParityFloor (catches an AVX path going off a
//     cliff -- e.g. a dispatch bug routing per-access work through a slow
//     fallback -- while tolerating machine noise)
//
// Skips (exit 0, like perf_smoke_shard) when the build or host has no AVX2
// tier; debug/sanitizer builds never register it (tests/CMakeLists.txt).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/cache/dispatch.hpp"
#include "plrupart/common/rng.hpp"

using namespace plrupart;

namespace {

constexpr double kRequiredSrripGeoMean = 1.3;
constexpr double kParityFloor = 0.70;
constexpr std::uint32_t kWays = 32;
constexpr std::size_t kStream = 1 << 16;
constexpr int kPasses = 6;  // per timed sample: ~400k accesses
constexpr int kReps = 5;    // best-of; generous because the gated margin is
                            // narrower than perf_smoke's 2-3x cushion

std::unique_ptr<cache::SetAssocCache> make_cache(const cache::Geometry& geo,
                                                 cache::ReplacementKind kind,
                                                 cache::EnforcementMode enf,
                                                 cache::DispatchTier tier) {
  // Instances sample the process-wide tier at construction; force it just
  // around the constructor so the two sides of the comparison coexist.
  const auto prev = cache::active_dispatch_tier();
  cache::set_active_dispatch_tier(tier);
  auto c = std::make_unique<cache::SetAssocCache>(geo, kind, 2, enf);
  cache::set_active_dispatch_tier(prev);
  if (enf == cache::EnforcementMode::kWayMasks) {
    c->set_way_mask(0, way_range_mask(0, kWays / 2));
    c->set_way_mask(1, way_range_mask(kWays / 2, kWays / 2));
  } else if (enf == cache::EnforcementMode::kOwnerCounters) {
    c->set_way_quota(0, kWays / 2);
    c->set_way_quota(1, kWays / 2);
  }
  return c;
}

double measure_serial(cache::SetAssocCache& c,
                      const std::vector<cache::SetAssocCache::BatchOp>& ops) {
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const auto& op : ops) sink += c.access(op.core, op.addr, op.write).way;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink == 0xdeadbeef) std::printf("(unreachable %llu)\n",
                                      static_cast<unsigned long long>(sink));
  return std::chrono::duration<double>(t1 - t0).count();
}

double measure_batch(cache::SetAssocCache& c,
                     const std::vector<cache::SetAssocCache::BatchOp>& ops,
                     std::vector<cache::AccessOutcome>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    c.access_batch(ops.data(), ops.size(), out.data());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto best = cache::best_dispatch_tier();
  if (best < cache::DispatchTier::kAvx2) {
    std::printf("perf smoke (simd) SKIPPED: best dispatch tier is %s; the gate "
                "needs an AVX2-capable build and host\n",
                to_string(best).c_str());
    return 0;
  }

  const cache::Geometry geo{.size_bytes = 1024ULL * kWays * 128,
                            .associativity = kWays, .line_bytes = 128};
  std::vector<cache::SetAssocCache::BatchOp> ops(kStream);
  Rng rng(3);
  for (std::size_t i = 0; i < kStream; ++i) {
    ops[i].addr = rng.next_below(32 * geo.lines()) * geo.line_bytes;
    ops[i].core = static_cast<cache::CoreId>(i & 1);
  }
  std::vector<cache::AccessOutcome> out(kStream);
  const double accesses = static_cast<double>(kStream) * kPasses;

  bool ok = true;
  double srrip_ln_sum = 0.0;
  int srrip_n = 0;
  for (const auto kind :
       {cache::ReplacementKind::kLru, cache::ReplacementKind::kNru,
        cache::ReplacementKind::kTreePlru, cache::ReplacementKind::kRandom,
        cache::ReplacementKind::kSrrip}) {
    for (const auto enf :
         {cache::EnforcementMode::kNone, cache::EnforcementMode::kWayMasks,
          cache::EnforcementMode::kOwnerCounters}) {
      double best_swar = 1e30;
      double best_simd = 1e30;
      // Interleaved best-of: both sides see the same machine load.
      for (int rep = 0; rep < kReps; ++rep) {
        auto swar = make_cache(geo, kind, enf, cache::DispatchTier::kSwar);
        const double ts = measure_serial(*swar, ops);
        if (ts < best_swar) best_swar = ts;
        auto simd = make_cache(geo, kind, enf, best);
        const double tb = measure_batch(*simd, ops, out);
        if (tb < best_simd) best_simd = tb;
      }
      const double speedup = best_swar / best_simd;
      const bool srrip = kind == cache::ReplacementKind::kSrrip;
      bool combo_ok = true;
      if (srrip) {
        srrip_ln_sum += std::log(speedup);
        ++srrip_n;
      } else {
        combo_ok = speedup >= kParityFloor;
      }
      std::printf("%-6s %-14s: swar-serial %7.2f M acc/s, %s-batch %7.2f "
                  "M acc/s, speedup %.2fx%s %s\n",
                  to_string(kind).c_str(), to_string(enf).c_str(),
                  accesses / best_swar / 1e6, to_string(best).c_str(),
                  accesses / best_simd / 1e6, speedup,
                  srrip ? " (geo-mean gated)"
                        : (combo_ok ? "" : " (below parity floor)"),
                  combo_ok ? "OK" : "FAIL");
      ok &= combo_ok;
    }
  }

  const double srrip_geo = std::exp(srrip_ln_sum / srrip_n);
  const bool srrip_ok = srrip_geo >= kRequiredSrripGeoMean;
  std::printf("SRRIP %u-way geo-mean %.2fx (need >= %.2fx) %s\n", kWays,
              srrip_geo, kRequiredSrripGeoMean, srrip_ok ? "OK" : "FAIL");
  ok &= srrip_ok;

  if (!ok) {
    std::printf("perf smoke (simd) gate FAILED: the %s batched path lost its "
                "measured shape vs the serial SWAR baseline\n",
                to_string(best).c_str());
    return 1;
  }
  std::printf("perf smoke (simd) gate OK\n");
  return 0;
}
