// Golden-equivalence replay: the statically-dispatched SoA access path must be
// bit-indistinguishable from the frozen pre-refactor reference model for every
// ReplacementKind × EnforcementMode × DispatchTier combination, across hits,
// misses, evictions, probes, invalidations, partition updates and mid-trace
// resets. The tier axis is the bit-identity proof for the SIMD kernels
// (src/cache/simd): each combo runs the SUT under one forced tier against the
// tier-less reference model; tiers the build/host cannot run are skipped.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "plrupart/cache/cache.hpp"
#include "plrupart/cache/dispatch.hpp"
#include "plrupart/common/rng.hpp"
#include "support/reference_cache.hpp"

namespace plrupart {
namespace {

using cache::DispatchTier;
using cache::EnforcementMode;
using cache::ReplacementKind;

struct Combo {
  ReplacementKind kind;
  EnforcementMode enforcement;
  DispatchTier tier;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s = to_string(info.param.kind) + "_" + to_string(info.param.enforcement) +
                  "_" + to_string(info.param.tier);
  for (auto& c : s) {
    if (c == '-' || c == '.') c = '_';
  }
  return s;
}

/// Forces the process-wide dispatch tier for the lifetime of one test, so the
/// SUT constructed inside samples the combo's tier.
class ScopedDispatchTier {
 public:
  explicit ScopedDispatchTier(DispatchTier tier)
      : prev_(cache::active_dispatch_tier()) {
    cache::set_active_dispatch_tier(tier);
  }
  ~ScopedDispatchTier() { cache::set_active_dispatch_tier(prev_); }
  ScopedDispatchTier(const ScopedDispatchTier&) = delete;
  ScopedDispatchTier& operator=(const ScopedDispatchTier&) = delete;

 private:
  DispatchTier prev_;
};

class GoldenEquivalence : public ::testing::TestWithParam<Combo> {};

void expect_same_stats(const cache::CacheStatsBundle& a, const cache::CacheStatsBundle& b) {
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t c = 0; c < a.per_core.size(); ++c) {
    EXPECT_EQ(a.per_core[c].accesses, b.per_core[c].accesses) << "core " << c;
    EXPECT_EQ(a.per_core[c].hits, b.per_core[c].hits) << "core " << c;
    EXPECT_EQ(a.per_core[c].misses, b.per_core[c].misses) << "core " << c;
    EXPECT_EQ(a.per_core[c].writes, b.per_core[c].writes) << "core " << c;
    EXPECT_EQ(a.per_core[c].self_evictions, b.per_core[c].self_evictions) << "core " << c;
    EXPECT_EQ(a.per_core[c].cross_evictions, b.per_core[c].cross_evictions) << "core " << c;
  }
}

TEST_P(GoldenEquivalence, RandomTraceReplaysIdentically) {
  const auto [kind, enforcement, tier] = GetParam();
  if (!cache::dispatch_tier_available(tier)) {
    GTEST_SKIP() << to_string(tier) << " tier not available on this build/host";
  }
  const cache::Geometry geo{.size_bytes = 64 * 8 * 128, .associativity = 8,
                            .line_bytes = 128};
  constexpr std::uint32_t kCores = 3;
  constexpr std::uint64_t kSeed = 0xc0ffee;

  const ScopedDispatchTier forced(tier);
  cache::SetAssocCache sut(geo, kind, kCores, enforcement, kSeed);
  ASSERT_EQ(sut.dispatch_tier(), tier);
  testing::ReferenceCache ref(geo, kind, kCores, enforcement, kSeed);

  Rng rng(42);
  std::vector<cache::Addr> history;
  for (int step = 0; step < 60'000; ++step) {
    // Occasionally reshape the partition, mirroring the interval controller.
    if (step % 4096 == 1000 && enforcement == EnforcementMode::kWayMasks) {
      // Three contiguous non-empty blocks over 8 ways.
      const auto cut1 = static_cast<std::uint32_t>(rng.next_in(1, 6));
      const auto cut2 = static_cast<std::uint32_t>(rng.next_in(cut1 + 1, 7));
      const WayMask m0 = way_range_mask(0, cut1);
      const WayMask m1 = way_range_mask(cut1, cut2 - cut1);
      const WayMask m2 = way_range_mask(cut2, 8 - cut2);
      sut.set_way_mask(0, m0);
      sut.set_way_mask(1, m1);
      sut.set_way_mask(2, m2);
      ref.set_way_mask(0, m0);
      ref.set_way_mask(1, m1);
      ref.set_way_mask(2, m2);
    }
    if (step % 4096 == 2000 && enforcement == EnforcementMode::kOwnerCounters) {
      const auto q0 = static_cast<std::uint32_t>(rng.next_in(1, 6));
      const auto q1 = static_cast<std::uint32_t>(rng.next_in(1, 7 - q0));
      const std::uint32_t q2 = 8 - q0 - q1;
      sut.set_way_quota(0, q0);
      sut.set_way_quota(1, q1);
      sut.set_way_quota(2, q2 > 0 ? q2 : 1);
      ref.set_way_quota(0, q0);
      ref.set_way_quota(1, q1);
      ref.set_way_quota(2, q2 > 0 ? q2 : 1);
    }

    if (step == 17'000 || step == 39'000) {
      // Mid-trace reset: both models must return to the same cold state.
      sut.reset();
      ref.reset();
      history.clear();
    }

    const auto op = rng.next_below(100);
    if (op < 4 && !history.empty()) {
      // Invalidate a recently-touched address (often still resident).
      const cache::Addr addr = history[rng.next_below(history.size())];
      EXPECT_EQ(sut.invalidate(addr), ref.invalidate(addr)) << "step " << step;
      continue;
    }
    if (op < 8 && !history.empty()) {
      const cache::Addr addr = history[rng.next_below(history.size())];
      const auto ps = sut.probe(addr);
      const auto pr = ref.probe(addr);
      EXPECT_EQ(ps.hit, pr.hit) << "step " << step;
      EXPECT_EQ(ps.way, pr.way) << "step " << step;
      continue;
    }
    const auto core = static_cast<cache::CoreId>(rng.next_below(kCores));
    // Mix of reuse (history) and fresh addresses spanning 16x the cache.
    cache::Addr addr;
    if (!history.empty() && rng.next_below(100) < 40) {
      addr = history[rng.next_below(history.size())];
    } else {
      addr = rng.next_below(16 * geo.lines()) * geo.line_bytes;
    }
    if (history.size() < 512)
      history.push_back(addr);
    else
      history[rng.next_below(history.size())] = addr;
    const bool write = rng.next_below(4) == 0;

    const auto a = sut.access(core, addr, write);
    const auto b = ref.access(core, addr, write);
    ASSERT_EQ(a.hit, b.hit) << "step " << step;
    ASSERT_EQ(a.way, b.way) << "step " << step;
    ASSERT_EQ(a.evicted_valid, b.evicted_valid) << "step " << step;
    ASSERT_EQ(a.evicted_line, b.evicted_line) << "step " << step;
    ASSERT_EQ(a.evicted_owner, b.evicted_owner) << "step " << step;

    if (step % 1024 == 0) {
      for (std::uint64_t set = 0; set < geo.sets(); set += 7) {
        for (cache::CoreId c = 0; c < kCores; ++c) {
          ASSERT_EQ(sut.owned_in_set(set, c), ref.owned_in_set(set, c))
              << "step " << step << " set " << set << " core " << c;
        }
      }
    }
  }

  expect_same_stats(sut.stats(), ref.stats());
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (const auto kind : {ReplacementKind::kLru, ReplacementKind::kNru,
                          ReplacementKind::kTreePlru, ReplacementKind::kRandom,
                          ReplacementKind::kSrrip}) {
    for (const auto enf : {EnforcementMode::kNone, EnforcementMode::kWayMasks,
                           EnforcementMode::kOwnerCounters}) {
      for (const auto tier : {DispatchTier::kScalar, DispatchTier::kSwar,
                              DispatchTier::kAvx2, DispatchTier::kAvx512}) {
        combos.push_back({kind, enf, tier});
      }
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GoldenEquivalence, ::testing::ValuesIn(all_combos()),
                         combo_name);

}  // namespace
}  // namespace plrupart
