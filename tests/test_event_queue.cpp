// EventQueue: the timed mode's spine. Determinism hinges on two properties —
// pops come out in strictly ascending (tick, seq) order regardless of the
// schedule order, and events sharing a tick pop in exactly their schedule
// order (FIFO tie-break via seq, never heap layout). The monotone floor turns
// scheduling into the popped past from a silent corruption into a loud error.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "plrupart/common/assert.hpp"
#include "plrupart/sim/event_queue.hpp"

namespace plrupart::sim {
namespace {

TEST(EventQueue, PopsInAscendingTickOrder) {
  EventQueue q;
  const std::vector<std::uint64_t> ticks{50, 3, 17, 3, 99, 0, 42};
  for (const auto t : ticks) q.schedule(t, EventKind::kUser, 0, t);
  ASSERT_EQ(q.size(), ticks.size());

  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const TimedEvent ev = q.pop();
    EXPECT_GE(ev.tick, prev);
    EXPECT_EQ(ev.payload, ev.tick);  // payload rides along untouched
    prev = ev.tick;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 99u);
}

TEST(EventQueue, SameTickEventsPopInScheduleOrder) {
  // 64 events on one tick: a heap with no tie-break would pop these in an
  // arbitrary (layout-dependent) order. The seq tie-break must return the
  // exact schedule order.
  EventQueue q;
  for (std::uint32_t i = 0; i < 64; ++i) q.schedule(7, EventKind::kUser, i);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const TimedEvent ev = q.pop();
    EXPECT_EQ(ev.tick, 7u);
    EXPECT_EQ(ev.lane, i) << "FIFO tie-break violated at position " << i;
  }
}

TEST(EventQueue, InterleavedScheduleAndPopKeepsFifoWithinTick) {
  // Schedule/pop interleaving must not disturb the within-tick order: events
  // added to a tick after some of that tick's events already popped still come
  // out after everything scheduled earlier.
  EventQueue q;
  q.schedule(5, EventKind::kUser, 0);
  q.schedule(5, EventKind::kUser, 1);
  EXPECT_EQ(q.pop().lane, 0u);
  q.schedule(5, EventKind::kUser, 2);  // same tick, scheduled after a pop
  q.schedule(6, EventKind::kUser, 3);
  EXPECT_EQ(q.pop().lane, 1u);
  EXPECT_EQ(q.pop().lane, 2u);
  EXPECT_EQ(q.pop().lane, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SchedulingBehindTheMonotoneFloorThrows) {
  EventQueue q;
  q.schedule(10, EventKind::kUser, 0);
  (void)q.pop();  // floor is now 10
  EXPECT_THROW(q.schedule(9, EventKind::kUser, 0), InvariantError);
  q.schedule(10, EventKind::kUser, 1);  // the floor itself stays legal
  EXPECT_EQ(q.pop().lane, 1u);
}

TEST(EventQueue, PeekAndPopOnEmptyThrow) {
  EventQueue q;
  EXPECT_THROW((void)q.peek(), InvariantError);
  EXPECT_THROW((void)q.pop(), InvariantError);
}

TEST(EventQueue, ScheduledCountsLifetimeEvents) {
  EventQueue q;
  EXPECT_EQ(q.scheduled(), 0u);
  q.schedule(1, EventKind::kUser, 0);
  q.schedule(2, EventKind::kUser, 0);
  (void)q.pop();
  q.schedule(3, EventKind::kUser, 0);
  EXPECT_EQ(q.scheduled(), 3u);  // lifetime count, not current size
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, PeekMatchesNextPop) {
  EventQueue q;
  q.schedule(20, EventKind::kBankService, 4, 99);
  q.schedule(10, EventKind::kMshrComplete, 2, 11);
  const TimedEvent& head = q.peek();
  EXPECT_EQ(head.tick, 10u);
  EXPECT_EQ(head.lane, 2u);
  const TimedEvent ev = q.pop();
  EXPECT_EQ(ev.tick, 10u);
  EXPECT_EQ(ev.kind, EventKind::kMshrComplete);
  EXPECT_EQ(ev.payload, 11u);
}

}  // namespace
}  // namespace plrupart::sim
