#include "plrupart/power/power_model.hpp"

#include <gtest/gtest.h>

namespace plrupart::power {
namespace {

ActivityCounters baseline_activity() {
  ActivityCounters a;
  a.instructions = 10'000'000;
  a.l2_accesses = 500'000;
  a.l2_misses = 50'000;
  a.wall_cycles = 8'000'000.0;
  a.cores = 2;
  a.atds = 2;
  a.sampling_ratio = 32;
  return a;
}

PowerModel paper_model(cache::ReplacementKind kind = cache::ReplacementKind::kLru,
                       bool partitioned = true) {
  return PowerModel(PowerParams{}, cache::paper_l2_geometry(), kind, partitioned, 2);
}

TEST(PowerModel, AllComponentsPositive) {
  const auto p = paper_model().evaluate(baseline_activity());
  EXPECT_GT(p.cores_w, 0.0);
  EXPECT_GT(p.l2_w, 0.0);
  EXPECT_GT(p.replacement_w, 0.0);
  EXPECT_GT(p.profiling_w, 0.0);
  EXPECT_GT(p.memory_w, 0.0);
  EXPECT_DOUBLE_EQ(p.total_w(),
                   p.cores_w + p.l2_w + p.replacement_w + p.profiling_w + p.memory_w);
}

TEST(PowerModel, MoreMissesMoreMemoryPower) {
  const auto model = paper_model();
  auto low = baseline_activity();
  auto high = baseline_activity();
  high.l2_misses *= 4;
  EXPECT_GT(model.evaluate(high).memory_w, model.evaluate(low).memory_w);
  EXPECT_GT(model.evaluate(high).total_w(), model.evaluate(low).total_w());
}

TEST(PowerModel, MemoryAccessIs150xL2Access) {
  // With equal access counts, memory dynamic power must be 150x the L2
  // dynamic share attributable to those accesses.
  PowerParams params;
  PowerModel model(params, cache::paper_l2_geometry(), cache::ReplacementKind::kLru,
                   false, 1);
  auto a = baseline_activity();
  a.atds = 0;
  a.l2_misses = a.l2_accesses;  // every access goes to memory
  const auto p = model.evaluate(a);
  const double l2_mib = 2.0;
  const double l2_dynamic = p.l2_w - l2_mib * params.l2_leakage_w_per_mib;
  EXPECT_NEAR(p.memory_w / l2_dynamic, 150.0, 1e-6);
}

TEST(PowerModel, ProfilingPowerIsNegligible) {
  // Paper §V-C: the profiling logic always stays below 0.3% of total power.
  const auto p = paper_model().evaluate(baseline_activity());
  EXPECT_LT(p.profiling_w / p.total_w(), 0.003);
}

TEST(PowerModel, UnpartitionedHasNoProfilingPower) {
  auto a = baseline_activity();
  a.atds = 0;
  const auto p = paper_model(cache::ReplacementKind::kLru, false).evaluate(a);
  EXPECT_DOUBLE_EQ(p.profiling_w, 0.0);
}

TEST(PowerModel, LruReplacementLeaksMoreThanPseudoLru) {
  const auto a = baseline_activity();
  const auto lru = paper_model(cache::ReplacementKind::kLru).evaluate(a);
  const auto nru = paper_model(cache::ReplacementKind::kNru).evaluate(a);
  const auto bt = paper_model(cache::ReplacementKind::kTreePlru).evaluate(a);
  EXPECT_GT(lru.replacement_w, nru.replacement_w);
  EXPECT_GT(nru.replacement_w, bt.replacement_w);
}

TEST(PowerModel, AggregateCpiDefinition) {
  auto a = baseline_activity();
  a.cores = 2;
  a.instructions = 4'000'000;
  a.wall_cycles = 6'000'000.0;
  EXPECT_DOUBLE_EQ(PowerModel::aggregate_cpi(a), 3.0);
}

TEST(PowerModel, EnergyMetricIsCpiTimesPower) {
  const auto p = paper_model().evaluate(baseline_activity());
  const double cpi = PowerModel::aggregate_cpi(baseline_activity());
  EXPECT_DOUBLE_EQ(p.energy_metric(cpi), cpi * p.total_w());
}

TEST(PowerModel, FasterRunBurnsHigherPowerSameEnergy) {
  // Halving wall cycles with identical event counts doubles dynamic power
  // contributions: energy per work is what stays comparable.
  const auto model = paper_model();
  auto slow = baseline_activity();
  auto fast = baseline_activity();
  fast.wall_cycles /= 2;
  EXPECT_GT(model.evaluate(fast).memory_w, model.evaluate(slow).memory_w);
}

}  // namespace
}  // namespace plrupart::power
