# CTest script: assert a tool's --version output.
#
# Usage (see src/tools/CMakeLists.txt):
#   cmake -DTOOL=<binary> -DTOOL_NAME=<installed name>
#         -DCONFIG_VERSION_FILE=<build>/cmake/plrupartConfigVersion.cmake
#         -P version_check.cmake
#
# The output must be exactly "<name> <semver> (git <describe>)" and <semver>
# must equal the PACKAGE_VERSION the generated plrupartConfigVersion.cmake
# advertises to find_package() — both sides derive from cmake/version.cmake,
# and this gate keeps it that way.
cmake_minimum_required(VERSION 3.20)

foreach(var TOOL TOOL_NAME CONFIG_VERSION_FILE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "version_check.cmake: missing -D${var}=")
  endif()
endforeach()

if(NOT EXISTS "${CONFIG_VERSION_FILE}")
  message(FATAL_ERROR "missing generated package version file: ${CONFIG_VERSION_FILE}")
endif()
# Sourcing the file sets PACKAGE_VERSION (the find_package() protocol).
include("${CONFIG_VERSION_FILE}")
if(NOT PACKAGE_VERSION MATCHES "^[0-9]+\\.[0-9]+\\.[0-9]+$")
  message(FATAL_ERROR "plrupartConfigVersion.cmake advertises a malformed "
                      "PACKAGE_VERSION: '${PACKAGE_VERSION}'")
endif()

execute_process(COMMAND "${TOOL}" --version
                OUTPUT_VARIABLE out
                RESULT_VARIABLE rc
                OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "'${TOOL} --version' exited with ${rc}")
endif()

if(NOT out MATCHES "^${TOOL_NAME} ([0-9]+\\.[0-9]+\\.[0-9]+) \\(git [^)]+\\)$")
  message(FATAL_ERROR "unexpected --version line from ${TOOL_NAME}: '${out}' "
                      "(want '${TOOL_NAME} <semver> (git <describe>)')")
endif()
set(tool_version "${CMAKE_MATCH_1}")

if(NOT tool_version STREQUAL PACKAGE_VERSION)
  message(FATAL_ERROR "${TOOL_NAME} --version says '${tool_version}' but "
                      "plrupartConfigVersion.cmake advertises '${PACKAGE_VERSION}'")
endif()
message(STATUS "${TOOL_NAME} --version == ${PACKAGE_VERSION} (ok)")
