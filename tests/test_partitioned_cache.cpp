// PartitionedCacheSystem facade: configuration acronyms, wiring, partition
// application across enforcement modes.
#include "plrupart/core/partitioned_cache.hpp"

#include <gtest/gtest.h>

#include "plrupart/common/rng.hpp"

namespace plrupart::core {
namespace {

cache::Geometry small_l2() {
  // 64 sets x 8 ways x 64B = 32KB.
  return cache::Geometry{.size_bytes = 32768, .associativity = 8, .line_bytes = 64};
}

TEST(CpaConfig, AcronymRoundTrip) {
  // Iterating known_acronyms() (rather than a literal list) keeps the
  // advertised set and the from_acronym parser from drifting apart.
  EXPECT_EQ(CpaConfig::known_acronyms().size(), 12U);
  for (const auto& name : CpaConfig::known_acronyms()) {
    const auto cfg = CpaConfig::from_acronym(name, 2, small_l2());
    EXPECT_EQ(cfg.acronym(), name);
  }
  EXPECT_THROW((void)CpaConfig::from_acronym("X-77", 2, small_l2()), InvariantError);
}

TEST(CpaConfig, AcronymSemantics) {
  const auto cl = CpaConfig::from_acronym("C-L", 4, small_l2());
  EXPECT_EQ(cl.enforcement, cache::EnforcementMode::kOwnerCounters);
  EXPECT_EQ(cl.replacement, cache::ReplacementKind::kLru);
  EXPECT_TRUE(cl.partitioned());

  const auto mn = CpaConfig::from_acronym("M-0.75N", 4, small_l2());
  EXPECT_EQ(mn.enforcement, cache::EnforcementMode::kWayMasks);
  EXPECT_EQ(mn.replacement, cache::ReplacementKind::kNru);
  EXPECT_DOUBLE_EQ(mn.esdh_scale, 0.75);

  const auto np = CpaConfig::from_acronym("NOPART-BT", 4, small_l2());
  EXPECT_FALSE(np.partitioned());
}

TEST(PartitionedCache, UnpartitionedHasNoProfilersOrController) {
  auto cfg = CpaConfig::from_acronym("NOPART-L", 2, small_l2());
  PartitionedCacheSystem sys(cfg);
  EXPECT_EQ(sys.controller(), nullptr);
  EXPECT_EQ(sys.current_partition(), (Partition{8, 8})) << "everyone sees all ways";
  EXPECT_THROW((void)sys.profiler(0), InvariantError);
  const auto out = sys.access(0, 0x1000, false, 0);
  EXPECT_FALSE(out.hit);
}

TEST(PartitionedCache, InitialEvenMasksApplied) {
  auto cfg = CpaConfig::from_acronym("M-L", 2, small_l2());
  PartitionedCacheSystem sys(cfg);
  EXPECT_EQ(sys.l2().way_mask(0), way_range_mask(0, 4));
  EXPECT_EQ(sys.l2().way_mask(1), way_range_mask(4, 4));
}

TEST(PartitionedCache, RepartitionUpdatesMasksFromProfiles) {
  auto cfg = CpaConfig::from_acronym("M-L", 2, small_l2());
  cfg.interval_cycles = 1000;
  cfg.sampling_ratio = 1;  // profile everything: deterministic curves
  PartitionedCacheSystem sys(cfg);
  const auto g = cfg.geometry;
  // Core 0 loops over 6 lines of one set (needs 6 ways); core 1 streams.
  std::uint64_t t1 = 1000;
  for (int round = 0; round < 300; ++round) {
    for (std::uint64_t t = 0; t < 6; ++t)
      sys.access(0, ((t << ilog2_exact(g.sets())) | 3) * g.line_bytes, false, 10);
    sys.access(1, ((t1++ << ilog2_exact(g.sets())) | 3) * g.line_bytes, false, 10);
  }
  // Cross the boundary.
  sys.access(0, 0, false, 2000);
  const auto part = sys.current_partition();
  EXPECT_GE(part[0], 6U) << "the loop thread earns its working set";
  EXPECT_EQ(sys.l2().way_mask(0), way_range_mask(0, part[0]));
  EXPECT_EQ(sys.l2().way_mask(1), way_range_mask(part[0], part[1]));
  EXPECT_FALSE(sys.controller()->history().empty());
}

TEST(PartitionedCache, OwnerCounterModeAppliesQuotas) {
  auto cfg = CpaConfig::from_acronym("C-L", 2, small_l2());
  PartitionedCacheSystem sys(cfg);
  EXPECT_EQ(sys.l2().way_quota(0), 4U);
  EXPECT_EQ(sys.l2().way_quota(1), 4U);
}

TEST(PartitionedCache, BtStrictModeProducesPow2AlignedMasks) {
  auto cfg = CpaConfig::from_acronym("M-BT", 3, small_l2());
  cfg.bt_strict_pow2 = true;
  cfg.interval_cycles = 500;
  PartitionedCacheSystem sys(cfg);
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const auto core = static_cast<cache::CoreId>(rng.next_below(3));
    sys.access(core, rng.next_below(1 << 22), false, static_cast<std::uint64_t>(i));
  }
  WayMask all = 0;
  for (cache::CoreId c = 0; c < 3; ++c) {
    const WayMask m = sys.l2().way_mask(c);
    const auto count = mask_count(m);
    EXPECT_TRUE(is_pow2(count));
    EXPECT_EQ(m, way_range_mask(mask_first(m), count)) << "contiguous block";
    EXPECT_EQ(mask_first(m) % count, 0U) << "aligned block";
    EXPECT_EQ(all & m, 0ULL);
    all |= m;
  }
  EXPECT_EQ(all, full_way_mask(8));
}

TEST(PartitionedCache, AccessesFlowIntoProfilers) {
  auto cfg = CpaConfig::from_acronym("M-0.75N", 2, small_l2());
  cfg.sampling_ratio = 1;
  PartitionedCacheSystem sys(cfg);
  for (int i = 0; i < 100; ++i) sys.access(0, 0x40, false, 0);
  EXPECT_GT(sys.profiler(0).sdh().total(), 0ULL);
  EXPECT_EQ(sys.profiler(1).sdh().total(), 0ULL);
}

TEST(PartitionedCache, SamplingRatioLimitsProfiledShare) {
  auto cfg = CpaConfig::from_acronym("M-L", 2, small_l2());
  cfg.sampling_ratio = 32;
  PartitionedCacheSystem sys(cfg);
  Rng rng(8);
  for (int i = 0; i < 32000; ++i) {
    sys.access(0, rng.next_below(1 << 24), false, 0);
  }
  const double share = static_cast<double>(sys.profiler(0).sdh().total()) / 32000.0;
  EXPECT_NEAR(share, 1.0 / 32.0, 0.01);
}

TEST(PartitionedCache, RejectsMoreCoresThanWays) {
  auto cfg = CpaConfig::from_acronym("M-L", 9, small_l2());  // 8 ways only
  EXPECT_THROW(PartitionedCacheSystem{cfg}, InvariantError);
}

TEST(PartitionedCache, ProfilingStorageAccounted) {
  auto cfg = CpaConfig::from_acronym("M-L", 2, cache::paper_l2_geometry());
  PartitionedCacheSystem sys(cfg);
  // Two LRU ATDs at 3.25KB plus two SDHs (17 x 32-bit registers).
  const auto bits = sys.profiling_storage_bits(47);
  EXPECT_EQ(bits, 2ULL * 26624 + 2ULL * 17 * 32);
}

}  // namespace
}  // namespace plrupart::core
