#include "plrupart/metrics/metrics.hpp"

#include <gtest/gtest.h>

namespace plrupart::metrics {
namespace {

TEST(Metrics, ThroughputIsTheSum) {
  EXPECT_DOUBLE_EQ(throughput({1.5, 2.5, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(throughput({}), 0.0);
}

TEST(Metrics, WeightedSpeedupHandComputed) {
  // IPCs 1.0 and 2.0 against isolation 2.0 and 2.0: 0.5 + 1.0.
  EXPECT_DOUBLE_EQ(weighted_speedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
}

TEST(Metrics, HarmonicMeanHandComputed) {
  // Relative IPCs 0.5 and 1.0: 2 / (2 + 1) = 2/3.
  EXPECT_NEAR(harmonic_mean_speedup({1.0, 2.0}, {2.0, 2.0}), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, NoSlowdownGivesIdentity) {
  const std::vector<double> ipcs{1.2, 0.8, 2.0};
  EXPECT_DOUBLE_EQ(weighted_speedup(ipcs, ipcs), 3.0);
  EXPECT_DOUBLE_EQ(harmonic_mean_speedup(ipcs, ipcs), 1.0);
}

TEST(Metrics, HarmonicNeverExceedsArithmeticMeanOfSpeedups) {
  const std::vector<double> ipcs{0.9, 1.4, 0.3, 2.0};
  const std::vector<double> iso{1.0, 2.0, 0.5, 2.5};
  const double hm = harmonic_mean_speedup(ipcs, iso);
  const double am = weighted_speedup(ipcs, iso) / 4.0;
  EXPECT_LE(hm, am + 1e-12);
}

TEST(Metrics, ComputeBundlesAllThree) {
  const auto m = compute({1.0, 1.0}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(m.throughput, 2.0);
  EXPECT_DOUBLE_EQ(m.weighted_speedup, 1.5);
  EXPECT_NEAR(m.harmonic_mean, 2.0 / 3.0, 1e-12);
}

TEST(Metrics, SizeMismatchRejected) {
  EXPECT_THROW((void)weighted_speedup({1.0}, {1.0, 2.0}), InvariantError);
  EXPECT_THROW((void)harmonic_mean_speedup({}, {}), InvariantError);
  EXPECT_THROW((void)weighted_speedup({1.0}, {0.0}), InvariantError);
}

}  // namespace
}  // namespace plrupart::metrics
