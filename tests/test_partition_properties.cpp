// Property sweeps across (core count, associativity) for every partition
// policy: structural invariants that must hold at any hardware shape.
#include <gtest/gtest.h>

#include <tuple>

#include "plrupart/common/rng.hpp"
#include "plrupart/core/fair.hpp"
#include "plrupart/core/min_misses.hpp"
#include "plrupart/core/qos.hpp"
#include "plrupart/core/static_policy.hpp"
#include "plrupart/core/tree_rounding.hpp"

namespace plrupart::core {
namespace {

using Shape = std::tuple<std::uint32_t /*cores*/, std::uint32_t /*ways*/>;

class PartitionProperties : public ::testing::TestWithParam<Shape> {
 protected:
  [[nodiscard]] std::uint32_t cores() const { return std::get<0>(GetParam()); }
  [[nodiscard]] std::uint32_t ways() const { return std::get<1>(GetParam()); }

  [[nodiscard]] std::vector<MissCurve> random_curves(Rng& rng) const {
    std::vector<MissCurve> curves;
    for (std::uint32_t i = 0; i < cores(); ++i) {
      std::vector<double> v(ways() + 1);
      v[0] = 100.0 + rng.next_double() * 10000.0;
      for (std::uint32_t w = 1; w <= ways(); ++w)
        v[w] = v[w - 1] * (0.5 + rng.next_double() * 0.5);
      curves.emplace_back(std::move(v));
    }
    return curves;
  }
};

TEST_P(PartitionProperties, AllSolversProduceValidPartitions) {
  Rng rng(1000 + cores() * 100 + ways());
  for (int trial = 0; trial < 50; ++trial) {
    const auto curves = random_curves(rng);
    for (const auto& p :
         {min_misses_optimal(curves, ways()), min_misses_greedy(curves, ways()),
          min_misses_lookahead(curves, ways()), min_misses_tree(curves, ways())}) {
      validate_partition(p, ways());
    }
  }
}

TEST_P(PartitionProperties, OptimalNeverLosesToOtherSolvers) {
  Rng rng(2000 + cores() * 100 + ways());
  for (int trial = 0; trial < 50; ++trial) {
    const auto curves = random_curves(rng);
    const double best = partition_cost(curves, min_misses_optimal(curves, ways()));
    EXPECT_LE(best,
              partition_cost(curves, min_misses_greedy(curves, ways())) + 1e-9);
    EXPECT_LE(best,
              partition_cost(curves, min_misses_lookahead(curves, ways())) + 1e-9);
    EXPECT_LE(best, partition_cost(curves, min_misses_tree(curves, ways())) + 1e-9);
  }
}

TEST_P(PartitionProperties, FairAndQosAreValidEverywhere) {
  Rng rng(3000 + cores() * 100 + ways());
  FairPolicy fair;
  QosPolicy qos(QosTarget{.core = 0, .factor = 1.25});
  for (int trial = 0; trial < 50; ++trial) {
    const auto curves = random_curves(rng);
    validate_partition(fair.decide(curves, ways()), ways());
    validate_partition(qos.decide(curves, ways()), ways());
  }
}

TEST_P(PartitionProperties, ContiguousMasksAlwaysTile) {
  Rng rng(4000 + cores() * 100 + ways());
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = min_misses_optimal(random_curves(rng), ways());
    const auto masks = contiguous_masks(p);
    WayMask all = 0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      ASSERT_EQ(mask_count(masks[i]), p[i]);
      ASSERT_EQ(all & masks[i], 0ULL);
      all |= masks[i];
    }
    ASSERT_EQ(all, full_way_mask(ways()));
  }
}

TEST_P(PartitionProperties, TreeRoundingIsVectorExpressible) {
  Rng rng(5000 + cores() * 100 + ways());
  const cache::Geometry geo{.size_bytes = 4ULL * ways() * 64,
                            .associativity = ways(),
                            .line_bytes = 64};
  cache::TreePlru tree(geo);
  for (int trial = 0; trial < 50; ++trial) {
    const auto ideal = min_misses_optimal(random_curves(rng), ways());
    const auto rounded = round_to_pow2_partition(ideal, ways());
    const auto enf = make_tree_enforcement(tree, rounded, ways());
    for (std::size_t i = 0; i < enf.masks.size(); ++i) {
      ASSERT_EQ(tree.reachable_ways(enf.vectors[i]), enf.masks[i]);
    }
  }
}

TEST_P(PartitionProperties, MoreTotalWaysNeverIncreasesOptimalCost) {
  // Monotonicity: the optimum with a bigger cache is at least as good. Needs
  // curves defined past `ways()`, so extend to 2x.
  if (ways() > 32) GTEST_SKIP();
  Rng rng(6000 + cores() * 100 + ways());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<MissCurve> curves;
    for (std::uint32_t i = 0; i < cores(); ++i) {
      std::vector<double> v(2 * ways() + 1);
      v[0] = 100.0 + rng.next_double() * 10000.0;
      for (std::uint32_t w = 1; w <= 2 * ways(); ++w)
        v[w] = v[w - 1] * (0.5 + rng.next_double() * 0.5);
      curves.emplace_back(std::move(v));
    }
    const double small = partition_cost(curves, min_misses_optimal(curves, ways()));
    const double big = partition_cost(curves, min_misses_optimal(curves, 2 * ways()));
    EXPECT_LE(big, small + 1e-9);
  }
}

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_w" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionProperties,
    ::testing::Values(Shape{2, 4}, Shape{2, 16}, Shape{3, 8}, Shape{4, 16},
                      Shape{8, 16}, Shape{7, 32}, Shape{16, 64}),
    shape_name);

}  // namespace
}  // namespace plrupart::core
