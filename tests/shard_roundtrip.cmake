# Tier-1 shard-correctness check, run as a CTest test (see src/tools/).
#
# Runs a tiny configs × workloads × L2-size sweep three ways — unsharded
# single-threaded, and as --shard 0/2 + --shard 1/2 (multi-threaded) merged
# via --merge-csv — and requires the merged CSV to be byte-identical to the
# unsharded one.
#
# Usage: cmake -DPLRUPART_CLI=<binary> -DWORK_DIR=<scratch dir> -P shard_roundtrip.cmake
if(NOT PLRUPART_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "PLRUPART_CLI and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

set(MATRIX_FLAGS
  --workload 2T_01,2T_02,2T_03
  --configs NOPART-L,M-0.75N
  --l2-kb-sweep 128,256
  --instr 20000 --interval 40000 --sampling 8 --seed 7)

function(run_cli out_var)
  execute_process(
    COMMAND ${PLRUPART_CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "plrupart ${ARGN} failed (rc=${rc}):\n${stderr}")
  endif()
endfunction()

run_cli(_ ${MATRIX_FLAGS} --threads 1 --csv ${WORK_DIR}/full.csv)
run_cli(_ ${MATRIX_FLAGS} --threads 0 --shard 0/2 --csv ${WORK_DIR}/shard0.csv)
run_cli(_ ${MATRIX_FLAGS} --threads 0 --shard 1/2 --csv ${WORK_DIR}/shard1.csv)
run_cli(_ --merge-csv ${WORK_DIR}/shard1.csv,${WORK_DIR}/shard0.csv
        --csv ${WORK_DIR}/merged.csv)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORK_DIR}/full.csv ${WORK_DIR}/merged.csv
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "sharded+merged sweep CSV differs from the unsharded single-threaded run "
    "(${WORK_DIR}/full.csv vs ${WORK_DIR}/merged.csv)")
endif()
message(STATUS "shard round-trip OK: merged CSV is byte-identical to the unsharded run")

# --merge-csv must refuse to truncate one of its own inputs.
execute_process(
  COMMAND ${PLRUPART_CLI} --merge-csv ${WORK_DIR}/shard0.csv,${WORK_DIR}/shard1.csv
          --csv ${WORK_DIR}/shard0.csv
  RESULT_VARIABLE overwrite_rc
  OUTPUT_QUIET ERROR_QUIET)
if(overwrite_rc EQUAL 0)
  message(FATAL_ERROR "--merge-csv overwrote one of its own input shards")
endif()
file(SIZE ${WORK_DIR}/shard0.csv shard0_size)
if(shard0_size EQUAL 0)
  message(FATAL_ERROR "--merge-csv truncated input shard0.csv before refusing")
endif()
message(STATUS "merge refused to overwrite an input shard (rc=${overwrite_rc}), data intact")
