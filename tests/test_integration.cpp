// End-to-end behavioral checks: the qualitative effects the paper's
// evaluation is built on must emerge from the full stack.
#include <gtest/gtest.h>

#include "plrupart/sim/cmp_simulator.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"

namespace plrupart {
namespace {

using sim::CmpSimulator;
using sim::SimConfig;
using sim::SimResult;
using sim::TraceSource;
using workloads::benchmark;
using workloads::make_trace;

SimResult run(const std::vector<std::string>& names, const char* acronym,
              std::uint64_t l2_bytes, std::uint64_t instr = 80'000,
              std::uint64_t seed = 7) {
  SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      acronym, static_cast<std::uint32_t>(names.size()),
      cache::Geometry{.size_bytes = l2_bytes, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.interval_cycles = 100'000;
  cfg.instr_limit = instr;
  std::vector<std::unique_ptr<TraceSource>> traces;
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    const auto& prof = benchmark(names[i]);
    cfg.cores.push_back(prof.core);
    traces.push_back(make_trace(prof, i, seed));
  }
  CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

TEST(Integration, PartitioningProtectsReuseFromStreaming) {
  // twolf (cache-sensitive) + art (streaming thrasher) on a small L2: the
  // MinMisses CPA must recover throughput vs. the unpartitioned LRU cache —
  // the core claim behind the paper's Fig. 8 at 512KB.
  const auto unpart = run({"twolf", "art"}, "NOPART-L", 256 * 1024);
  const auto part = run({"twolf", "art"}, "M-L", 256 * 1024);
  EXPECT_GT(part.throughput(), unpart.throughput() * 0.999);
  // The sensitive thread specifically must be no worse off.
  EXPECT_GE(part.threads[0].ipc, unpart.threads[0].ipc * 0.98);
}

TEST(Integration, PartitioningGainsShrinkWithCacheSize) {
  // Fig. 8 trend: relative improvement at a small cache exceeds the one at a
  // big cache, where both threads fit.
  const double small_gain = run({"twolf", "art"}, "M-L", 128 * 1024).throughput() /
                            run({"twolf", "art"}, "NOPART-L", 128 * 1024).throughput();
  const double big_gain = run({"twolf", "art"}, "M-L", 2 * 1024 * 1024).throughput() /
                          run({"twolf", "art"}, "NOPART-L", 2 * 1024 * 1024).throughput();
  EXPECT_GT(small_gain, big_gain - 0.02);
}

TEST(Integration, NruBehavesLikeRandomReplacement) {
  // Paper §V-A: the shared replacement pointer makes NRU behave like random
  // replacement. Their throughputs must track within a few percent.
  const auto nru = run({"twolf", "gzip"}, "NOPART-N", 256 * 1024);
  const auto rnd = run({"twolf", "gzip"}, "NOPART-R", 256 * 1024);
  EXPECT_NEAR(nru.throughput() / rnd.throughput(), 1.0, 0.05);
}

TEST(Integration, TrueLruBeatsPseudoLruOnReuse) {
  // On reuse-heavy workloads LRU should not lose to its approximations.
  const auto lru = run({"twolf", "vpr"}, "NOPART-L", 256 * 1024);
  const auto nru = run({"twolf", "vpr"}, "NOPART-N", 256 * 1024);
  const auto bt = run({"twolf", "vpr"}, "NOPART-BT", 256 * 1024);
  EXPECT_GE(lru.throughput(), nru.throughput() * 0.98);
  EXPECT_GE(lru.throughput(), bt.throughput() * 0.98);
}

TEST(Integration, PseudoLruCpaTracksLruCpa) {
  // The headline result: CPAs on NRU/BT lose only a little against the
  // C-L baseline (paper: 0.3%..9.7% depending on core count).
  const auto cl = run({"twolf", "art"}, "C-L", 256 * 1024);
  const auto nru = run({"twolf", "art"}, "M-0.75N", 256 * 1024);
  const auto bt = run({"twolf", "art"}, "M-BT", 256 * 1024);
  EXPECT_GT(nru.throughput(), cl.throughput() * 0.85);
  EXPECT_GT(bt.throughput(), cl.throughput() * 0.85);
}

TEST(Integration, OwnerCountersAndMasksAgreeClosely) {
  // Paper §V-B: C-L vs M-L differ by under ~0.5% at any core count. Allow a
  // wider band at our trace lengths, but they must track.
  const auto cl = run({"parser", "gzip"}, "C-L", 512 * 1024);
  const auto ml = run({"parser", "gzip"}, "M-L", 512 * 1024);
  EXPECT_NEAR(ml.throughput() / cl.throughput(), 1.0, 0.05);
}

TEST(Integration, FourCoreWorkloadRuns) {
  const auto r =
      run({"apsi", "bzip2", "mcf", "parser"}, "M-0.75N", 1024 * 1024, 40'000);
  EXPECT_EQ(r.threads.size(), 4U);
  EXPECT_GT(r.repartitions, 0ULL);
  for (const auto& t : r.threads) EXPECT_GT(t.ipc, 0.0);
}

TEST(Integration, EightCoreWorkloadRuns) {
  const auto r = run({"apsi", "bzip2", "mcf", "parser", "twolf", "swim", "vpr", "art"},
                     "M-BT", 1024 * 1024, 25'000);
  EXPECT_EQ(r.threads.size(), 8U);
  for (const auto& t : r.threads) EXPECT_GT(t.ipc, 0.0);
}

TEST(Integration, QosPolicyProtectsItsTarget) {
  auto mk = [&](core::PolicyKind policy) {
    SimConfig cfg;
    cfg.hierarchy.l1d =
        cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
    cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
        "M-L", 2,
        cache::Geometry{.size_bytes = 256 * 1024, .associativity = 16, .line_bytes = 128});
    cfg.hierarchy.l2.policy = policy;
    cfg.hierarchy.l2.qos = core::QosTarget{.core = 0, .factor = 1.05};
    cfg.hierarchy.l2.interval_cycles = 100'000;
    cfg.instr_limit = 80'000;
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (std::uint32_t i = 0; i < 2; ++i) {
      const auto& prof = benchmark(i == 0 ? "twolf" : "art");
      cfg.cores.push_back(prof.core);
      traces.push_back(make_trace(prof, i, 7));
    }
    CmpSimulator sim(std::move(cfg), std::move(traces));
    return sim.run();
  };
  const auto qos = mk(core::PolicyKind::kQos);
  const auto even = mk(core::PolicyKind::kStaticEven);
  EXPECT_GE(qos.threads[0].ipc, even.threads[0].ipc * 0.98)
      << "QoS must not do worse for its target than a static even split";
}

TEST(Integration, MissCurveFromRealRunPredictsWaySensitivity) {
  // Extract the twolf profile from a live run: it must want multiple ways
  // (steep early curve), unlike art whose curve is flat beyond a way or two.
  SimConfig cfg;
  cfg.hierarchy.l1d =
      cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      "M-L", 2,
      cache::Geometry{.size_bytes = 512 * 1024, .associativity = 16, .line_bytes = 128});
  cfg.hierarchy.l2.sampling_ratio = 1;
  cfg.instr_limit = 150'000;
  cfg.cores = {benchmark("twolf").core, benchmark("art").core};
  std::vector<std::unique_ptr<TraceSource>> traces;
  traces.push_back(make_trace(benchmark("twolf"), 0, 3));
  traces.push_back(make_trace(benchmark("art"), 1, 3));
  CmpSimulator sim(std::move(cfg), std::move(traces));
  (void)sim.run();
  const auto twolf_curve = sim.hierarchy().l2().profiler(0).curve();
  const auto art_curve = sim.hierarchy().l2().profiler(1).curve();
  // Beyond a few ways (past art's small hot head), twolf keeps converting
  // ways into hits — its ~540KB working set exceeds this 512KB L2 — while
  // art's 4MB stream gains nothing.
  const double twolf_tail = twolf_curve.misses(4) - twolf_curve.misses(16);
  const double art_tail = art_curve.misses(4) - art_curve.misses(16);
  EXPECT_GT(twolf_tail / (twolf_curve.accesses() + 1.0),
            art_tail / (art_curve.accesses() + 1.0))
      << "twolf must look way-sensitive relative to art";
}

}  // namespace
}  // namespace plrupart
