#include "plrupart/core/miss_curve.hpp"

#include <gtest/gtest.h>

namespace plrupart::core {
namespace {

TEST(MissCurve, FromSdhMatchesRegisters) {
  Sdh sdh(4);
  sdh.record_hit(1);
  sdh.record_hit(1);
  sdh.record_hit(3);
  sdh.record_miss();
  const auto c = MissCurve::from_sdh(sdh);
  EXPECT_EQ(c.max_ways(), 4U);
  EXPECT_DOUBLE_EQ(c.misses(0), 4.0);
  EXPECT_DOUBLE_EQ(c.misses(1), 2.0);
  EXPECT_DOUBLE_EQ(c.misses(2), 2.0);
  EXPECT_DOUBLE_EQ(c.misses(3), 1.0);
  EXPECT_DOUBLE_EQ(c.misses(4), 1.0);
  EXPECT_DOUBLE_EQ(c.accesses(), 4.0);
}

TEST(MissCurve, SamplingScaleMultiplies) {
  Sdh sdh(2);
  sdh.record_hit(1);
  sdh.record_miss();
  const auto c = MissCurve::from_sdh(sdh, 32.0);
  EXPECT_DOUBLE_EQ(c.misses(0), 64.0);
  EXPECT_DOUBLE_EQ(c.misses(2), 32.0);
}

TEST(MissCurve, MarginalGain) {
  const MissCurve c({10.0, 6.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(c.marginal_gain(0), 4.0);
  EXPECT_DOUBLE_EQ(c.marginal_gain(1), 3.0);
  EXPECT_DOUBLE_EQ(c.marginal_gain(2), 0.0);
}

TEST(MissCurve, ConvexityDetection) {
  EXPECT_TRUE(MissCurve({10, 6, 3, 1, 0}).is_convex());
  EXPECT_FALSE(MissCurve({10, 9, 2, 1, 1}).is_convex());  // big gain appears late
}

TEST(MissCurve, RejectsIncreasingOrNegative) {
  EXPECT_THROW(MissCurve({5.0, 6.0}), InvariantError);
  EXPECT_THROW(MissCurve({5.0}), InvariantError);  // needs at least ways 0..1
  EXPECT_THROW(MissCurve({-1.0, -2.0}), InvariantError);
}

}  // namespace
}  // namespace plrupart::core
