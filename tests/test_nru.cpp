// NRU semantics: used bits, saturation reset, the cache-global replacement
// pointer, and the paper's Fig. 3 profiling scenarios.
#include "plrupart/cache/nru.hpp"

#include <gtest/gtest.h>

#include "plrupart/common/rng.hpp"

namespace plrupart::cache {
namespace {

Geometry small_geo(std::uint32_t ways, std::uint64_t sets = 4) {
  return Geometry{.size_bytes = sets * ways * 64, .associativity = ways, .line_bytes = 64};
}

TEST(Nru, AccessSetsUsedBit) {
  Nru nru(small_geo(4));
  EXPECT_EQ(nru.used_count(0), 0U);
  nru.on_fill(0, 1, nru.all_ways());
  EXPECT_TRUE(nru.used_bit(0, 1));
  nru.on_hit(0, 3, nru.all_ways());
  EXPECT_EQ(nru.used_count(0), 2U);
}

TEST(Nru, SaturationResetsAllButAccessed) {
  Nru nru(small_geo(4));
  for (std::uint32_t w = 0; w < 3; ++w) nru.on_hit(0, w, nru.all_ways());
  EXPECT_EQ(nru.used_count(0), 3U);
  // The fourth access would saturate: everything resets except it.
  nru.on_hit(0, 3, nru.all_ways());
  EXPECT_EQ(nru.used_count(0), 1U);
  EXPECT_TRUE(nru.used_bit(0, 3));
}

TEST(Nru, BaseInvariantNeverAllUsed) {
  Nru nru(small_geo(8, 2));
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto set = rng.next_below(2);
    const auto way = static_cast<std::uint32_t>(rng.next_below(8));
    nru.on_hit(set, way, nru.all_ways());
    ASSERT_LT(nru.used_count(set), 8U);
  }
}

TEST(Nru, VictimHasClearUsedBitAndPointerAdvances) {
  Nru nru(small_geo(4));
  nru.on_hit(0, 0, nru.all_ways());
  nru.on_hit(0, 1, nru.all_ways());
  // Pointer starts at 0; ways 0,1 are used; first clear way at/after 0 is 2.
  const auto victim = nru.choose_victim(0, nru.all_ways());
  EXPECT_EQ(victim, 2U);
  EXPECT_EQ(nru.replacement_pointer(), 3U);
}

TEST(Nru, PointerWrapsCircularly) {
  Nru nru(small_geo(4));
  // Consume victims to rotate the pointer near the end.
  EXPECT_EQ(nru.choose_victim(0, nru.all_ways()), 0U);
  EXPECT_EQ(nru.choose_victim(0, nru.all_ways()), 1U);
  EXPECT_EQ(nru.choose_victim(0, nru.all_ways()), 2U);
  EXPECT_EQ(nru.choose_victim(0, nru.all_ways()), 3U);
  // Pointer is back at 0.
  EXPECT_EQ(nru.replacement_pointer(), 0U);
  EXPECT_EQ(nru.choose_victim(0, nru.all_ways()), 0U);
}

TEST(Nru, PointerIsGlobalAcrossSets) {
  Nru nru(small_geo(4, 4));
  EXPECT_EQ(nru.choose_victim(0, nru.all_ways()), 0U);
  // A different set starts scanning from the shared pointer (1), not from 0.
  EXPECT_EQ(nru.choose_victim(2, nru.all_ways()), 1U);
}

TEST(Nru, VictimRespectsAllowedMask) {
  Nru nru(small_geo(8));
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const WayMask allowed = rng.next_below(full_way_mask(8)) + 1;
    const auto victim = nru.choose_victim(0, allowed);
    ASSERT_TRUE(mask_test(allowed, victim));
    if (rng.next_bool(0.5)) nru.on_fill(0, victim, allowed);
  }
}

TEST(Nru, AllAllowedUsedTriggersScopedReset) {
  Nru nru(small_geo(4));
  const WayMask partition = 0b0011;  // core owns ways 0,1
  nru.on_hit(0, 0, partition);
  nru.on_hit(0, 1, partition);  // scope {0,1} saturates: resets except way 1
  EXPECT_FALSE(nru.used_bit(0, 0));
  EXPECT_TRUE(nru.used_bit(0, 1));
  // Make both used via a larger scope, then ask for a victim inside the
  // partition: the policy must reset the scope and still return a legal way.
  nru.on_hit(0, 0, nru.all_ways());
  const auto victim = nru.choose_victim(0, partition);
  EXPECT_TRUE(mask_test(partition, victim));
}

TEST(Nru, SaturationScopeLeavesOtherPartitionAlone) {
  Nru nru(small_geo(4));
  nru.on_hit(0, 2, nru.all_ways());  // another core's line
  const WayMask partition = 0b0011;
  nru.on_hit(0, 0, partition);
  nru.on_hit(0, 1, partition);  // saturates scope {0,1}
  EXPECT_TRUE(nru.used_bit(0, 2)) << "reset must not clear bits outside the scope";
}

// --- Paper Fig. 3: profiling estimates -------------------------------------

TEST(Nru, Fig3aUsedBitSetEstimate) {
  // Set holds {A,B,C,D}; after accesses C, D both their used bits are 1.
  // Accessing D again: U = 2, estimate within [1, 2], point = U = 2.
  Nru nru(small_geo(4));
  nru.on_hit(0, 2, nru.all_ways());  // C
  nru.on_hit(0, 3, nru.all_ways());  // D
  const auto est = nru.estimate_position(0, 3);
  EXPECT_EQ(est.lo, 1U);
  EXPECT_EQ(est.hi, 2U);
  EXPECT_EQ(est.point, 2U);
}

TEST(Nru, Fig3bUsedBitClearEstimate) {
  // Accesses A, B set their bits; C's bit is 0: estimate within [U+1, A] =
  // [3, 4], point = A = 4.
  Nru nru(small_geo(4));
  nru.on_hit(0, 0, nru.all_ways());  // A
  nru.on_hit(0, 1, nru.all_ways());  // B
  const auto est = nru.estimate_position(0, 2);  // C
  EXPECT_EQ(est.lo, 3U);
  EXPECT_EQ(est.hi, 4U);
  EXPECT_EQ(est.point, 4U);
}

TEST(Nru, EstimateBoundsAlwaysSane) {
  Nru nru(small_geo(8, 2));
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const auto set = rng.next_below(2);
    const auto way = static_cast<std::uint32_t>(rng.next_below(8));
    const auto est = nru.estimate_position(set, way);
    ASSERT_GE(est.lo, 1U);
    ASSERT_LE(est.hi, 8U);
    ASSERT_LE(est.lo, est.hi);
    ASSERT_GE(est.point, est.lo);
    ASSERT_LE(est.point, est.hi);
    nru.on_hit(set, way, nru.all_ways());
  }
}

TEST(Nru, ResetClearsState) {
  Nru nru(small_geo(4));
  nru.on_hit(0, 1, nru.all_ways());
  (void)nru.choose_victim(0, nru.all_ways());
  nru.reset();
  EXPECT_EQ(nru.used_count(0), 0U);
  EXPECT_EQ(nru.replacement_pointer(), 0U);
}

}  // namespace
}  // namespace plrupart::cache
