#include <gtest/gtest.h>

#include "plrupart/common/histogram.hpp"
#include "common/stats.hpp"

namespace plrupart {
namespace {

TEST(Histogram, RecordAndCount) {
  Histogram h(5);
  h.record(0);
  h.record(2, 3);
  h.record(4);
  EXPECT_EQ(h.count(0), 1ULL);
  EXPECT_EQ(h.count(1), 0ULL);
  EXPECT_EQ(h.count(2), 3ULL);
  EXPECT_EQ(h.total(), 5ULL);
}

TEST(Histogram, OutOfRangeThrows) {
  Histogram h(3);
  EXPECT_THROW(h.record(3), InvariantError);
  EXPECT_THROW((void)h.count(3), InvariantError);
  EXPECT_THROW(Histogram(0), InvariantError);
}

TEST(Histogram, TailSum) {
  Histogram h(4);
  h.record(0, 1);
  h.record(1, 2);
  h.record(2, 3);
  h.record(3, 4);
  EXPECT_EQ(h.tail_sum(0), 10ULL);
  EXPECT_EQ(h.tail_sum(2), 7ULL);
  EXPECT_EQ(h.tail_sum(4), 0ULL);
}

TEST(Histogram, DecayHalvesEveryCounter) {
  Histogram h(3);
  h.record(0, 7);
  h.record(1, 1);
  h.record(2, 8);
  h.decay_halve();
  EXPECT_EQ(h.count(0), 3ULL);  // integer shift, like the hardware registers
  EXPECT_EQ(h.count(1), 0ULL);
  EXPECT_EQ(h.count(2), 4ULL);
}

TEST(Histogram, Clear) {
  Histogram h(2);
  h.record(1, 5);
  h.clear();
  EXPECT_EQ(h.total(), 0ULL);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8ULL);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0ULL);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(GeoMean, MatchesClosedForm) {
  GeoMean g;
  g.add(2.0);
  g.add(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  EXPECT_THROW(g.add(0.0), InvariantError);
}

TEST(GeoMean, EmptyIsZero) {
  GeoMean g;
  EXPECT_EQ(g.value(), 0.0);
}

}  // namespace
}  // namespace plrupart
