// The DispatchTier seam (plrupart/cache/dispatch.hpp) and the SIMD kernels
// behind it (src/cache/simd/simd_kernels.hpp).
//
// Kernel-level proof: every available tier's byte/u64 equality scan computes
// exactly tag_match_mask() -- fuzzed over widths 1..64, planted needles at
// every position (including every position inside each 4-wide SWAR chunk and
// each 32/64-byte vector block), and buffers padded per the padded-buffer
// contract with poison bytes past the end that must never leak into a result.
//
// Cache-level proof: access_batch() is bit-identical to the serial access
// loop under every tier, for every policy x enforcement combo, including
// chunked/uneven/zero-length batches. (Tier-vs-reference identity is the
// GoldenEquivalence matrix's job.)
//
// The PLRUPART_SIMD_AVX* macros are mirrored onto this test target by
// tests/CMakeLists.txt so the runtime-dispatch helpers route identically to
// the library's own TUs; tiers the build or host cannot run are skipped via
// dispatch_tier_available().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "cache/simd/simd_kernels.hpp"
#include "plrupart/cache/cache.hpp"
#include "plrupart/cache/dispatch.hpp"
#include "plrupart/common/bits.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/core/atd.hpp"

namespace plrupart {
namespace {

using cache::DispatchTier;
using cache::EnforcementMode;
using cache::ReplacementKind;

constexpr DispatchTier kAllTiers[] = {DispatchTier::kScalar, DispatchTier::kSwar,
                                      DispatchTier::kAvx2, DispatchTier::kAvx512};

std::vector<DispatchTier> available_tiers() {
  std::vector<DispatchTier> tiers;
  for (const auto t : kAllTiers) {
    if (cache::dispatch_tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

/// A scan buffer satisfying the padded-buffer contract, with the pad filled
/// with the needle value itself: the nastiest poison, since any kernel that
/// forgets to mask its whole-block compare down to [0, count) will report
/// phantom matches in the pad.
template <class T>
std::vector<T> padded(const std::vector<T>& values, T poison) {
  std::vector<T> buf(values);
  buf.resize(values.size() + cache::simd::kSimdPadBytes / sizeof(T), poison);
  return buf;
}

TEST(SimdKernels, ByteMatchEveryTierEveryWidthEveryPosition) {
  for (const auto tier : available_tiers()) {
    for (std::uint32_t ways = 1; ways <= kMaxAssociativity; ++ways) {
      for (std::uint32_t pos = 0; pos < ways; ++pos) {
        std::vector<std::uint8_t> v(ways, 0x11);
        v[pos] = 0xab;
        const auto buf = padded<std::uint8_t>(v, 0xab);
        EXPECT_EQ(cache::simd::byte_match(tier, buf.data(), ways, 0xab),
                  WayMask{1} << pos)
            << to_string(tier) << " ways=" << ways << " pos=" << pos;
        // Absent needle: nothing may match, least of all the poisoned pad.
        EXPECT_EQ(cache::simd::byte_match(tier, buf.data(), ways, 0xcd), 0U)
            << to_string(tier) << " ways=" << ways;
      }
    }
  }
}

TEST(SimdKernels, ByteMatchFuzzAgainstTagMatchMask) {
  Rng rng(0x51);
  for (const auto tier : available_tiers()) {
    for (int iter = 0; iter < 2000; ++iter) {
      const auto ways = static_cast<std::uint32_t>(rng.next_in(1, kMaxAssociativity));
      std::vector<std::uint8_t> v(ways);
      // 4-value alphabet: dense collisions in every chunk position.
      for (auto& x : v) x = static_cast<std::uint8_t>(rng.next_below(4));
      const auto needle = static_cast<std::uint8_t>(rng.next_below(4));
      const auto buf = padded<std::uint8_t>(v, needle);
      EXPECT_EQ(cache::simd::byte_match(tier, buf.data(), ways, needle),
                tag_match_mask(v.data(), ways, needle))
          << to_string(tier) << " ways=" << ways << " iter=" << iter;
    }
  }
}

TEST(SimdKernels, U64MatchFuzzAgainstTagMatchMask) {
  Rng rng(0x52);
  for (const auto tier : available_tiers()) {
    for (int iter = 0; iter < 2000; ++iter) {
      const auto ways = static_cast<std::uint32_t>(rng.next_in(1, kMaxAssociativity));
      std::vector<std::uint64_t> v(ways);
      for (auto& x : v) x = rng.next_below(4) * 0x0123456789abcdefULL;
      const std::uint64_t needle = rng.next_below(4) * 0x0123456789abcdefULL;
      const auto buf = padded<std::uint64_t>(v, needle);
      EXPECT_EQ(cache::simd::u64_match(tier, buf.data(), ways, needle),
                tag_match_mask(v.data(), ways, needle))
          << to_string(tier) << " ways=" << ways << " iter=" << iter;
    }
  }
}

TEST(DispatchTierApi, ToStringParseRoundTrip) {
  for (const auto t : kAllTiers) {
    const auto parsed = cache::parse_dispatch_tier(to_string(t));
    ASSERT_TRUE(parsed.has_value()) << to_string(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(cache::parse_dispatch_tier("").has_value());
  EXPECT_FALSE(cache::parse_dispatch_tier("avx").has_value());
  EXPECT_FALSE(cache::parse_dispatch_tier("AVX2").has_value());
  EXPECT_FALSE(cache::parse_dispatch_tier("native").has_value());
}

TEST(DispatchTierApi, PortableTiersAlwaysAvailableAndBestIsAvailable) {
  EXPECT_TRUE(cache::dispatch_tier_available(DispatchTier::kScalar));
  EXPECT_TRUE(cache::dispatch_tier_available(DispatchTier::kSwar));
  const auto best = cache::best_dispatch_tier();
  EXPECT_TRUE(cache::dispatch_tier_available(best));
  EXPECT_GE(best, DispatchTier::kSwar);
}

TEST(DispatchTierApi, InstancesSampleActiveTierAtConstruction) {
  const auto prev = cache::active_dispatch_tier();
  const cache::Geometry geo{.size_bytes = 16 * 4 * 64, .associativity = 4,
                            .line_bytes = 64};
  cache::set_active_dispatch_tier(DispatchTier::kScalar);
  const cache::SetAssocCache scalar_cache(geo, ReplacementKind::kNru, 1,
                                          EnforcementMode::kNone);
  cache::set_active_dispatch_tier(DispatchTier::kSwar);
  const cache::SetAssocCache swar_cache(geo, ReplacementKind::kNru, 1,
                                        EnforcementMode::kNone);
  cache::set_active_dispatch_tier(prev);
  EXPECT_EQ(scalar_cache.dispatch_tier(), DispatchTier::kScalar);
  EXPECT_EQ(swar_cache.dispatch_tier(), DispatchTier::kSwar);
  EXPECT_EQ(cache::active_dispatch_tier(), prev);
}

TEST(DispatchTierApi, ForcingUnavailableTierThrows) {
  bool all_available = true;
  for (const auto t : kAllTiers) all_available &= cache::dispatch_tier_available(t);
  if (all_available) {
    GTEST_SKIP() << "every tier is available on this build/host";
  }
  for (const auto t : kAllTiers) {
    if (!cache::dispatch_tier_available(t)) {
      EXPECT_THROW(cache::set_active_dispatch_tier(t), InvariantError) << to_string(t);
    }
  }
}

/// access_batch vs the serial loop: same ops, same seed, bit-identical
/// outcomes and stats, across every tier and every policy/enforcement combo.
/// The batch is fed in deliberately awkward chunk sizes (0, 1, sub-window,
/// exactly the prefetch window, and a large remainder).
TEST(AccessBatch, BitIdenticalToSerialAccessOnEveryTier) {
  const cache::Geometry geo{.size_bytes = 32 * 8 * 128, .associativity = 8,
                            .line_bytes = 128};
  constexpr std::uint32_t kCores = 2;
  constexpr std::uint64_t kSeed = 0xfeed;
  constexpr std::size_t kOps = 8192;

  std::vector<cache::SetAssocCache::BatchOp> ops(kOps);
  Rng rng(9);
  for (auto& op : ops) {
    op.addr = rng.next_below(8 * geo.lines()) * geo.line_bytes;
    op.core = static_cast<cache::CoreId>(rng.next_below(kCores));
    op.write = rng.next_below(4) == 0;
  }

  const auto prev = cache::active_dispatch_tier();
  for (const auto tier : available_tiers()) {
    for (const auto kind : {ReplacementKind::kLru, ReplacementKind::kNru,
                            ReplacementKind::kTreePlru, ReplacementKind::kRandom,
                            ReplacementKind::kSrrip}) {
      for (const auto enf : {EnforcementMode::kNone, EnforcementMode::kWayMasks,
                             EnforcementMode::kOwnerCounters}) {
        cache::set_active_dispatch_tier(tier);
        cache::SetAssocCache serial(geo, kind, kCores, enf, kSeed);
        cache::SetAssocCache batched(geo, kind, kCores, enf, kSeed);
        cache::set_active_dispatch_tier(prev);
        if (enf == EnforcementMode::kWayMasks) {
          for (auto* c : {&serial, &batched}) {
            c->set_way_mask(0, way_range_mask(0, 4));
            c->set_way_mask(1, way_range_mask(4, 4));
          }
        } else if (enf == EnforcementMode::kOwnerCounters) {
          for (auto* c : {&serial, &batched}) {
            c->set_way_quota(0, 4);
            c->set_way_quota(1, 4);
          }
        }

        std::vector<cache::AccessOutcome> serial_out(kOps);
        for (std::size_t i = 0; i < kOps; ++i) {
          serial_out[i] = serial.access(ops[i].core, ops[i].addr, ops[i].write);
        }

        std::vector<cache::AccessOutcome> batch_out(kOps);
        constexpr std::size_t kChunks[] = {0, 1, 3, 8, 61, 4096};
        std::size_t done = 0;
        std::size_t ci = 0;
        while (done < kOps) {
          const std::size_t n =
              std::min(kChunks[ci % std::size(kChunks)], kOps - done);
          batched.access_batch(ops.data() + done, n, batch_out.data() + done);
          done += n;
          ++ci;
        }

        for (std::size_t i = 0; i < kOps; ++i) {
          ASSERT_EQ(serial_out[i].hit, batch_out[i].hit)
              << to_string(tier) << " " << to_string(kind) << " " << to_string(enf)
              << " op " << i;
          ASSERT_EQ(serial_out[i].way, batch_out[i].way) << "op " << i;
          ASSERT_EQ(serial_out[i].evicted_valid, batch_out[i].evicted_valid)
              << "op " << i;
          ASSERT_EQ(serial_out[i].evicted_line, batch_out[i].evicted_line)
              << "op " << i;
          ASSERT_EQ(serial_out[i].evicted_owner, batch_out[i].evicted_owner)
              << "op " << i;
        }

        const auto& sa = serial.stats().per_core;
        const auto& sb = batched.stats().per_core;
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t c = 0; c < sa.size(); ++c) {
          EXPECT_EQ(sa[c].accesses, sb[c].accesses);
          EXPECT_EQ(sa[c].hits, sb[c].hits);
          EXPECT_EQ(sa[c].misses, sb[c].misses);
          EXPECT_EQ(sa[c].writes, sb[c].writes);
          EXPECT_EQ(sa[c].self_evictions, sb[c].self_evictions);
          EXPECT_EQ(sa[c].cross_evictions, sb[c].cross_evictions);
        }
      }
    }
  }
}

/// The ATD's u64 tag scan is tier-dispatched too: identical observation
/// streams under every tier.
TEST(AtdDispatch, ObservationsTierInvariant) {
  const cache::Geometry l2{.size_bytes = 256 * 16 * 64, .associativity = 16,
                           .line_bytes = 64};
  constexpr std::uint32_t kSampling = 8;
  std::vector<cache::Addr> lines(20000);
  Rng rng(0x77);
  for (auto& a : lines) a = rng.next_below(64 * l2.lines());

  const auto prev = cache::active_dispatch_tier();
  std::vector<std::unique_ptr<core::Atd>> atds;
  for (const auto tier : available_tiers()) {
    cache::set_active_dispatch_tier(tier);
    atds.push_back(std::make_unique<core::Atd>(l2, ReplacementKind::kLru, kSampling));
  }
  cache::set_active_dispatch_tier(prev);

  for (const auto a : lines) {
    const auto base = atds.front()->access(a);
    for (std::size_t i = 1; i < atds.size(); ++i) {
      const auto obs = atds[i]->access(a);
      ASSERT_EQ(base.has_value(), obs.has_value()) << "addr " << a;
      if (base) {
        ASSERT_EQ(base->hit, obs->hit) << "addr " << a;
        ASSERT_EQ(base->way, obs->way) << "addr " << a;
        ASSERT_EQ(base->estimate.lo, obs->estimate.lo) << "addr " << a;
        ASSERT_EQ(base->estimate.hi, obs->estimate.hi) << "addr " << a;
        ASSERT_EQ(base->estimate.point, obs->estimate.point) << "addr " << a;
      }
    }
  }
}

}  // namespace
}  // namespace plrupart
