// Tree-feasible partitions: power-of-two rounding (Kraft equality), buddy
// placement, and the tree-restricted MinMisses DP.
#include "plrupart/core/tree_rounding.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "plrupart/common/rng.hpp"
#include "plrupart/core/min_misses.hpp"

namespace plrupart::core {
namespace {

Partition random_partition(Rng& rng, std::uint32_t n, std::uint32_t total) {
  Partition p(n, 1);
  for (std::uint32_t k = 0; k < total - n; ++k) {
    ++p[rng.next_below(n)];
  }
  return p;
}

TEST(TreeRounding, Pow2PartitionProperties) {
  Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint32_t total = 16;
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.next_below(8));
    const auto ideal = random_partition(rng, n, total);
    const auto rounded = round_to_pow2_partition(ideal, total);
    validate_partition(rounded, total);
    for (std::size_t i = 0; i < rounded.size(); ++i) {
      ASSERT_TRUE(is_pow2(rounded[i]));
      ASSERT_GE(rounded[i], 1U);
    }
    ASSERT_EQ(std::accumulate(rounded.begin(), rounded.end(), 0U), total);
  }
}

TEST(TreeRounding, ExactPow2PartitionIsUntouched) {
  EXPECT_EQ(round_to_pow2_partition({8, 8}, 16), (Partition{8, 8}));
  EXPECT_EQ(round_to_pow2_partition({8, 4, 2, 2}, 16), (Partition{8, 4, 2, 2}));
  EXPECT_EQ(round_to_pow2_partition({16}, 16), Partition{16});
}

TEST(TreeRounding, DoublingRespectsTheBudgetGap) {
  // Ideal 12/4 floors to 8/4 (sum 12, gap 4). Core 0 cannot double (8 > gap),
  // so core 1 takes the remaining quarter: 8/8.
  EXPECT_EQ(round_to_pow2_partition({12, 4}, 16), (Partition{8, 8}));
  // Ideal 9/7 floors to 8/4: same mechanics.
  EXPECT_EQ(round_to_pow2_partition({9, 7}, 16), (Partition{8, 8}));
}

TEST(TreePlacement, BlocksAreDisjointAlignedAndCover) {
  Rng rng(55);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t total = 16;
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.next_below(8));
    const auto sizes = round_to_pow2_partition(random_partition(rng, n, total), total);
    const auto masks = place_pow2_blocks(sizes, total);
    WayMask all = 0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      ASSERT_EQ(mask_count(masks[i]), sizes[i]);
      const auto first = mask_first(masks[i]);
      ASSERT_EQ(masks[i], way_range_mask(first, sizes[i])) << "contiguous";
      ASSERT_EQ(first % sizes[i], 0U) << "aligned";
      ASSERT_EQ(all & masks[i], 0ULL) << "disjoint";
      all |= masks[i];
    }
    ASSERT_EQ(all, full_way_mask(total)) << "covering";
  }
}

TEST(TreePlacement, MasksReturnInCoreOrder) {
  const auto masks = place_pow2_blocks({2, 8, 2, 4}, 16);
  EXPECT_EQ(mask_count(masks[0]), 2U);
  EXPECT_EQ(mask_count(masks[1]), 8U);
  EXPECT_EQ(mask_count(masks[2]), 2U);
  EXPECT_EQ(mask_count(masks[3]), 4U);
}

TEST(MinMissesTree, NeverBeatsUnrestrictedAndAlwaysFeasible) {
  Rng rng(808);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<MissCurve> curves;
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<double> v(17);
      v[0] = 1000.0 + rng.next_double() * 5000.0;
      for (std::uint32_t w = 1; w <= 16; ++w)
        v[w] = v[w - 1] * (0.7 + rng.next_double() * 0.3);
      curves.emplace_back(std::move(v));
    }
    const auto tree = min_misses_tree(curves, 16);
    validate_partition(tree, 16);
    for (const auto w : tree) ASSERT_TRUE(is_pow2(w));

    const auto unrestricted = min_misses_optimal(curves, 16);
    EXPECT_GE(partition_cost(curves, tree) + 1e-9, partition_cost(curves, unrestricted));

    // The tree DP is optimal within the power-of-two class: rounding the
    // unrestricted optimum cannot do better.
    const auto rounded = round_to_pow2_partition(unrestricted, 16);
    EXPECT_LE(partition_cost(curves, tree), partition_cost(curves, rounded) + 1e-9);
  }
}

TEST(MakeTreeEnforcement, VectorsMatchMasks) {
  const cache::Geometry g{.size_bytes = 16 * 16 * 64, .associativity = 16, .line_bytes = 64};
  cache::TreePlru tree(g);
  const Partition sizes{8, 4, 2, 2};
  const auto enf = make_tree_enforcement(tree, sizes, 16);
  ASSERT_EQ(enf.masks.size(), 4U);
  ASSERT_EQ(enf.vectors.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.reachable_ways(enf.vectors[i]), enf.masks[i]);
  }
}

}  // namespace
}  // namespace plrupart::core
