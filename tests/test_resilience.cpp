// The resilience layer's contracts: deterministic fault injection (spec
// grammar, pure-function plans, site instrumentation), crash-safe file
// publication (AtomicFile), the run journal behind --journal/--resume
// (validation, corruption rejection, byte-identical reassembly), per-job
// retry/timeout supervision, and the ByteReader EINTR/short-read regression.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <pthread.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "plrupart/common/error.hpp"
#include "plrupart/common/fault_inject.hpp"
#include "plrupart/runner/journal.hpp"
#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/sim/trace_codec.hpp"
#include "plrupart/sim/trace_file.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "plrupart/workloads/trace_workload.hpp"
#include "plrupart/workloads/workload_table.hpp"

namespace plrupart {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on teardown.
class ScratchDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("plrupart_resilience_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// A 2-job matrix cheap enough to actually simulate in supervision tests.
runner::RunMatrix tiny_matrix() {
  runner::RunMatrix m;
  m.configs = {"NOPART-L", "M-0.75N"};
  m.workloads = {workloads::workloads_2t()[0]};
  m.l2_kb = {128};
  m.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
  m.instr = 20'000;
  m.warmup = 5'000;
  m.interval_cycles = 40'000;
  m.sampling_ratio = 8;
  m.seed = 99;
  return m;
}

std::string run_csv(const runner::RunMatrix& m, const runner::SweepOptions& opts) {
  std::ostringstream os;
  runner::SweepExecutor(opts).run_csv(m.expand(), os);
  return os.str();
}

runner::SweepOptions serial_opts() {
  runner::SweepOptions opts;
  opts.threads = 1;
  return opts;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// FaultSpec / FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesSitesAndProbabilities) {
  const auto s = FaultSpec::parse("read:0.25,worker:1");
  EXPECT_DOUBLE_EQ(s.of(FaultSite::kRead), 0.25);
  EXPECT_DOUBLE_EQ(s.of(FaultSite::kWrite), 0.0);
  EXPECT_DOUBLE_EQ(s.of(FaultSite::kWorker), 1.0);
  EXPECT_TRUE(s.any());
  EXPECT_FALSE(FaultSpec{}.any());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "read", "read:", "read:abc", "read:1.5", "read:-0.1",
                          "frobnicate:0.5", "read:0.1,read:0.2", "read:0.1,,write:0.1"}) {
    EXPECT_THROW((void)FaultSpec::parse(bad), InvariantError) << "spec: '" << bad << "'";
  }
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedSiteLaneCounter) {
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kRead)] = 0.5;
  const FaultPlan plan(spec, 7);
  std::vector<bool> first, second, other_seed, other_lane;
  const FaultPlan plan8(spec, 8);
  for (std::uint64_t c = 0; c < 512; ++c) {
    first.push_back(plan.should_fire(FaultSite::kRead, c));
    second.push_back(plan.should_fire(FaultSite::kRead, c));
    other_seed.push_back(plan8.should_fire(FaultSite::kRead, c));
    other_lane.push_back(plan.should_fire(FaultSite::kRead, c, 1));
  }
  EXPECT_EQ(first, second) << "replaying the same plan must give the same decisions";
  EXPECT_NE(first, other_seed) << "a different seed must give a different sequence";
  EXPECT_NE(first, other_lane) << "lanes must be decorrelated";
}

TEST(FaultPlan, ExtremeProbabilitiesAndApproximateRate) {
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kWrite)] = 1.0;
  spec.probability[static_cast<std::size_t>(FaultSite::kWorker)] = 0.25;
  const FaultPlan plan(spec, 3);
  std::size_t fires = 0;
  for (std::uint64_t c = 0; c < 4096; ++c) {
    EXPECT_TRUE(plan.should_fire(FaultSite::kWrite, c));
    EXPECT_FALSE(plan.should_fire(FaultSite::kRead, c)) << "p=0 must never fire";
    if (plan.should_fire(FaultSite::kWorker, c)) ++fires;
  }
  EXPECT_GT(fires, 4096 * 0.18);
  EXPECT_LT(fires, 4096 * 0.32);
}

TEST(FaultPlan, MaybeThrowNamesSiteContextAndCoordinates) {
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kWorker)] = 1.0;
  const FaultPlan plan(spec, 11);
  try {
    plan.maybe_throw(FaultSite::kWorker, 5, 2, "shard worker 2/4");
    FAIL() << "p=1 plan must fire";
  } catch (const InjectedFault& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("injected worker fault"), std::string::npos) << msg;
    EXPECT_NE(msg.find("shard worker 2/4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("opportunity 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lane 2"), std::string::npos) << msg;
  }
  // InjectedFault must be retryable by construction.
  EXPECT_THROW(plan.maybe_throw(FaultSite::kWorker, 0, 0, "x"), TransientError);
}

// ---------------------------------------------------------------------------
// AtomicFile
// ---------------------------------------------------------------------------

class AtomicFileTest : public ScratchDirTest {};

TEST_F(AtomicFileTest, NothingOnDiskBeforeCommitEverythingAfter) {
  const fs::path target = dir_ / "out.csv";
  AtomicFile f(target);
  f.stream() << "a,b\n1,2\n";
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(f.committed());
  f.commit();
  EXPECT_TRUE(f.committed());
  EXPECT_EQ(slurp(target), "a,b\n1,2\n");
}

TEST_F(AtomicFileTest, InjectedWriteFaultLeavesDirectoryUntouched) {
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kWrite)] = 1.0;
  const FaultPlan plan(spec, 1);
  AtomicFile f(dir_ / "out.csv");
  f.arm_fault(&plan, 0);
  f.stream() << "doomed";
  EXPECT_THROW(f.commit(), InjectedFault);
  EXPECT_FALSE(f.committed());
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 0u) << "a failed commit must publish nothing, not even a tmp";
}

TEST_F(AtomicFileTest, OverwriteReplacesWholeContent) {
  const fs::path target = dir_ / "out.csv";
  AtomicFile::write_file(target, "the first, longer content\n");
  AtomicFile::write_file(target, "short\n");
  EXPECT_EQ(slurp(target), "short\n");
}

TEST_F(AtomicFileTest, ProbeWritableFailsFastAndLeavesNoResidue) {
  EXPECT_NO_THROW(AtomicFile::probe_writable(dir_ / "ok.csv"));
  EXPECT_TRUE(fs::is_empty(dir_)) << "the probe must clean up its tmp";
  try {
    AtomicFile::probe_writable(dir_ / "no_such_subdir" / "out.csv");
    FAIL() << "unwritable target must throw";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos) << e.what();
  }
}

TEST_F(AtomicFileTest, RemoveFileIgnoresMissingTargets) {
  EXPECT_NO_THROW(AtomicFile::remove_file(dir_ / "never_existed"));
  const fs::path target = dir_ / "x";
  AtomicFile::write_file(target, "x");
  AtomicFile::remove_file(target);
  EXPECT_FALSE(fs::exists(target));
}

// ---------------------------------------------------------------------------
// ByteReader: injected read faults, real I/O errors, EINTR/short reads
// ---------------------------------------------------------------------------

class ByteReaderResilienceTest : public ScratchDirTest {};

TEST_F(ByteReaderResilienceTest, InjectedReadFaultThrowsWithLaneAndContext) {
  const fs::path file = dir_ / "bytes";
  AtomicFile::write_file(file, std::string(256, 'x'));
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kRead)] = 1.0;
  sim::ByteReader in(file.string(), 64);
  in.set_fault_plan(std::make_shared<FaultPlan>(spec, 5), 3);
  try {
    (void)in.get();
    FAIL() << "p=1 read plan must fire on the first refill";
  } catch (const InjectedFault& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("injected read fault"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lane 3"), std::string::npos) << msg;
  }
}

TEST_F(ByteReaderResilienceTest, MidStreamIoErrorThrowsTraceIoError) {
  // fopen(dir, "rb") succeeds on Linux; the first fread fails with EISDIR --
  // exactly the mid-stream failure shape the TransientError taxonomy is for.
  sim::ByteReader in(dir_.string(), 64);
  try {
    (void)in.get();
    FAIL() << "reading a directory must fail";
  } catch (const sim::TraceIoError& e) {
    EXPECT_NE(std::string(e.what()).find("I/O error reading"), std::string::npos)
        << e.what();
  }
  // TraceIoError is transient: --job-retries treats it like an injected fault.
  EXPECT_TRUE((std::is_base_of_v<TransientError, sim::TraceIoError>));
}

std::atomic<int> g_eintr_signals{0};
void eintr_probe_handler(int) { g_eintr_signals.fetch_add(1, std::memory_order_relaxed); }

TEST_F(ByteReaderResilienceTest, SurvivesEintrAndShortReadsOnAFifo) {
  const fs::path fifo = dir_ / "pipe";
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  // Install a no-SA_RESTART handler so blocked reads really return EINTR.
  struct sigaction sa {};
  sa.sa_handler = eintr_probe_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  std::string payload;
  payload.reserve(64 * 1024);
  for (std::size_t i = 0; payload.size() < 64 * 1024; ++i)
    payload.push_back(static_cast<char>('A' + (i * 31) % 23));

  const pthread_t reader_thread = ::pthread_self();
  std::atomic<bool> done{false};

  // Writer: dribble the payload through the FIFO in odd-sized chunks with
  // pauses, so the reader sees short reads and blocks mid-stream.
  std::thread writer([&] {
    const int fd = ::open(fifo.c_str(), O_WRONLY);  // rendezvous with the reader
    if (fd < 0) return;
    const char* p = payload.data();
    std::size_t left = payload.size();
    std::size_t chunk_no = 0;
    while (left > 0) {
      const std::size_t chunk = std::min<std::size_t>(997, left);
      std::size_t off = 0;
      while (off < chunk) {
        const ::ssize_t n = ::write(fd, p + off, chunk - off);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        off += static_cast<std::size_t>(n);
      }
      p += chunk;
      left -= chunk;
      if (++chunk_no % 8 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ::close(fd);
  });

  // Pinger: pepper the reading thread with signals for the whole read.
  std::thread pinger([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::string got;
  got.reserve(payload.size());
  {
    sim::ByteReader in(fifo.string(), 4096);
    for (int c = in.get(); c != sim::ByteReader::kEof; c = in.get())
      got.push_back(static_cast<char>(c));
  }
  done.store(true, std::memory_order_relaxed);
  pinger.join();
  writer.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload) << "EINTR or a short read dropped or duplicated bytes";
  EXPECT_GT(g_eintr_signals.load(), 0) << "the test never actually delivered a signal";
}

// ---------------------------------------------------------------------------
// RunJournal
// ---------------------------------------------------------------------------

class JournalTest : public ScratchDirTest {
 protected:
  std::vector<runner::RunSpec> jobs_ = tiny_matrix().expand();
};

TEST_F(JournalTest, RecordsRoundTripAndAssembleTheFinalCsv) {
  runner::RunJournal j(dir_, jobs_, /*resume=*/false);
  ASSERT_EQ(j.size(), jobs_.size());
  EXPECT_EQ(j.num_complete(), 0u);
  std::string expected_body;
  for (std::size_t pos = 0; pos < j.size(); ++pos) {
    const std::string rows = "row-" + std::to_string(pos) + "\n";
    j.record(pos, rows);
    EXPECT_TRUE(j.complete(pos));
    EXPECT_EQ(j.rows(pos), rows) << "record must validate and round-trip";
    expected_body += rows;
  }
  EXPECT_EQ(j.num_complete(), jobs_.size());
  std::ostringstream os;
  j.write_final_csv(os);
  const auto& header = runner::sweep_csv_header();
  std::string expected = header[0];
  for (std::size_t i = 1; i < header.size(); ++i) expected += "," + header[i];
  expected += "\n" + expected_body;
  EXPECT_EQ(os.str(), expected);
}

TEST_F(JournalTest, ResumeMarksOnlyDurablyRecordedJobsComplete) {
  {
    runner::RunJournal j(dir_, jobs_, false);
    j.record(0, "only-job-zero\n");
  }
  // A stray in-flight tmp (what a SIGKILL leaves behind) must be ignored.
  std::ofstream(dir_ / "job-1.rec.tmp.12345") << "torn write";
  runner::RunJournal r(dir_, jobs_, /*resume=*/true);
  EXPECT_TRUE(r.complete(0));
  EXPECT_FALSE(r.complete(1));
  EXPECT_EQ(r.num_complete(), 1u);
  EXPECT_EQ(r.rows(0), "only-job-zero\n");
}

TEST_F(JournalTest, FreshModeRefusesAnExistingJournal) {
  runner::RunJournal first(dir_, jobs_, false);
  try {
    runner::RunJournal second(dir_, jobs_, false);
    FAIL() << "silently reusing a journal directory would clobber progress";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos) << e.what();
  }
}

TEST_F(JournalTest, ResumeWithoutAManifestFailsActionably) {
  try {
    runner::RunJournal j(dir_, jobs_, true);
    FAIL() << "resume of a never-started sweep must fail";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("start the sweep once"), std::string::npos)
        << e.what();
  }
}

TEST_F(JournalTest, ResumeRejectsAJournalFromADifferentSweep) {
  { runner::RunJournal j(dir_, jobs_, false); }
  auto other = tiny_matrix();
  other.seed = 100;  // different seed => different jobs => different fingerprint
  try {
    runner::RunJournal j(dir_, other.expand(), true);
    FAIL() << "a stale journal must not silently poison a new sweep";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("different sweep"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fingerprint"), std::string::npos) << msg;
  }
}

TEST_F(JournalTest, CorruptRecordsAreRejectedWithTheFileNamed) {
  fs::path record0;
  {
    runner::RunJournal j(dir_, jobs_, false);
    j.record(0, "good rows\n");
    record0 = j.record_path(0);
  }
  std::ofstream(record0, std::ios::binary | std::ios::app) << "trailing garbage";
  try {
    runner::RunJournal j(dir_, jobs_, true);
    FAIL() << "a corrupt record must fail validation on resume";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(record0.filename().string()), std::string::npos) << msg;
    EXPECT_NE(msg.find("remove it to re-run that job"), std::string::npos) << msg;
  }
}

TEST(JobsFingerprint, CoversIdentityButNotPerformanceKnobs) {
  const auto jobs = tiny_matrix().expand();
  auto resharded = jobs;
  for (auto& j : resharded) j.sim_threads = 8;
  EXPECT_EQ(runner::jobs_fingerprint(jobs), runner::jobs_fingerprint(resharded))
      << "sim_threads is a performance knob, not job identity";
  auto reseeded = jobs;
  reseeded[0].seed ^= 1;
  EXPECT_NE(runner::jobs_fingerprint(jobs), runner::jobs_fingerprint(reseeded));
}

// ---------------------------------------------------------------------------
// Supervision: retries, timeouts, and end-to-end byte identity under faults
// ---------------------------------------------------------------------------

class SupervisionTest : public ScratchDirTest {};

TEST_F(SupervisionTest, InjectedWriteFaultsPlusRetriesYieldByteIdenticalCsv) {
  const auto m = tiny_matrix();
  const std::string baseline = run_csv(m, serial_opts());

  runner::SweepOptions opts;
  opts.threads = 1;
  opts.job_retries = 8;
  opts.retry_backoff_ms = 0;
  opts.journal_dir = (dir_ / "journal").string();
  opts.faults = FaultSpec::parse("write:0.5");
  opts.fault_seed = m.seed;
  EXPECT_EQ(run_csv(m, opts), baseline)
      << "recovered runs must not change a single output byte";
}

TEST_F(SupervisionTest, ExhaustedRetryBudgetSurfacesTheLastError) {
  const auto m = tiny_matrix();
  runner::SweepOptions opts;
  opts.threads = 1;
  opts.job_retries = 2;
  opts.retry_backoff_ms = 0;
  opts.journal_dir = (dir_ / "journal").string();
  opts.faults = FaultSpec::parse("write:1");  // every attempt's commit fails
  std::ostringstream os;
  try {
    runner::SweepExecutor(opts).run_csv(m.expand(), os);
    FAIL() << "a p=1 write fault must exhaust the budget";
  } catch (const TransientError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("failed after 3 attempt(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("injected write fault"), std::string::npos) << msg;
  }
}

TEST_F(SupervisionTest, ResumeAfterLostRecordsIsByteIdentical) {
  const auto m = tiny_matrix();
  const std::string baseline = run_csv(m, serial_opts());
  const std::string journal = (dir_ / "journal").string();

  runner::SweepOptions first;
  first.threads = 1;
  first.journal_dir = journal;
  ASSERT_EQ(run_csv(m, first), baseline);

  // Lose one record (as if the process died before it committed), then resume.
  runner::RunJournal j(journal, m.expand(), /*resume=*/true);
  AtomicFile::remove_file(j.record_path(0));

  runner::SweepOptions second;
  second.threads = 1;
  second.journal_dir = journal;
  second.resume = true;
  EXPECT_EQ(run_csv(m, second), baseline)
      << "a resumed sweep must reproduce the uninterrupted CSV byte-for-byte";
}

TEST_F(SupervisionTest, SerialWatchdogThrowsTimeoutError) {
  const auto jobs = tiny_matrix().expand();
  runner::ExecuteControls controls;
  controls.timeout_s = 1e-6;
  try {
    (void)runner::execute(jobs[0], controls);
    FAIL() << "a microsecond deadline must trip on a 25k-op job";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("serial"), std::string::npos) << e.what();
  }
}

TEST_F(SupervisionTest, ShardedWatchdogAbortsAndJoinsWorkersCleanly) {
  auto jobs = tiny_matrix().expand();
  jobs[0].sim_threads = 3;  // under TSan this also proves a race-free abort path
  runner::ExecuteControls controls;
  controls.timeout_s = 1e-6;
  try {
    (void)runner::execute(jobs[0], controls);
    FAIL() << "the sharded watchdog must trip";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("set-sharded"), std::string::npos) << e.what();
  }
}

TEST_F(SupervisionTest, TimeoutsAreNotRetried) {
  const auto m = tiny_matrix();
  runner::SweepOptions opts;
  opts.threads = 1;
  opts.job_retries = 5;  // must NOT be spent on a deliberate deadline
  opts.retry_backoff_ms = 0;
  opts.job_timeout_s = 1e-6;
  EXPECT_THROW((void)runner::SweepExecutor(opts).run(m.expand()), TimeoutError);
}

TEST_F(SupervisionTest, WorkerFaultsFireInsideShardedRuns) {
  auto jobs = tiny_matrix().expand();
  jobs[0].sim_threads = 2;
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kWorker)] = 1.0;
  runner::ExecuteControls controls;
  controls.faults = std::make_shared<FaultPlan>(spec, 17);
  try {
    (void)runner::execute(jobs[0], controls);
    FAIL() << "a p=1 worker plan must kill the first owned access";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("injected worker fault"), std::string::npos)
        << e.what();
  }
}

class TraceFaultTest : public ScratchDirTest {
 protected:
  [[nodiscard]] runner::RunMatrix trace_matrix() const {
    const auto trace_path = (dir_ / "a.trace").string();
    const auto trace = workloads::make_trace(workloads::benchmark("gzip"), 0, 5);
    sim::write_trace_file(trace_path, sim::record_trace(*trace, 30'000),
                          sim::TraceFormat::kBinaryV2);
    runner::RunMatrix m;
    m.configs = {"NOPART-L"};
    m.workloads = {workloads::workload_from_traces({trace_path})};
    m.l2_kb = {128};
    m.l1d = cache::Geometry{.size_bytes = 4096, .associativity = 2, .line_bytes = 128};
    m.instr = 20'000;
    m.warmup = 5'000;
    m.interval_cycles = 40'000;
    m.sampling_ratio = 8;
    m.seed = 99;
    return m;
  }
};

TEST_F(TraceFaultTest, ReadFaultsReachTheTraceStream) {
  const auto jobs = trace_matrix().expand();
  FaultSpec spec;
  spec.probability[static_cast<std::size_t>(FaultSite::kRead)] = 1.0;
  runner::ExecuteControls controls;
  controls.faults = std::make_shared<FaultPlan>(spec, 23);
  EXPECT_THROW((void)runner::execute(jobs[0], controls), InjectedFault);
}

TEST_F(TraceFaultTest, ReadFaultsPlusRetriesYieldByteIdenticalCsv) {
  const auto m = trace_matrix();
  const std::string baseline = run_csv(m, serial_opts());
  runner::SweepOptions opts;
  opts.threads = 1;
  opts.job_retries = 15;
  opts.retry_backoff_ms = 0;
  opts.faults = FaultSpec::parse("read:0.05");
  opts.fault_seed = m.seed;
  EXPECT_EQ(run_csv(m, opts), baseline);
}

}  // namespace
}  // namespace plrupart
