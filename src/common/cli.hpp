// Tiny command-line flag parser for benches and examples.
//
// Supported forms: --flag (boolean), --key value, --key=value.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "plrupart/common/assert.hpp"

namespace plrupart {

class Cli {
 public:
  Cli(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True if --name appears (either bare or with a value).
  [[nodiscard]] bool has(std::string_view name) const {
    for (const auto& a : args_) {
      if (a == name) return true;
      if (a.size() > name.size() && a.compare(0, name.size(), name) == 0 &&
          a[name.size()] == '=')
        return true;
    }
    return false;
  }

  /// Raw string value of --name, if present.
  [[nodiscard]] std::optional<std::string> value(std::string_view name) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const auto& a = args_[i];
      if (a == name) {
        if (i + 1 < args_.size()) return args_[i + 1];
        return std::nullopt;
      }
      if (a.size() > name.size() && a.compare(0, name.size(), name) == 0 &&
          a[name.size()] == '=')
        return a.substr(name.size() + 1);
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string get_string(std::string_view name, std::string def) const {
    auto v = value(name);
    return v ? *v : std::move(def);
  }

  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t def) const {
    auto v = value(name);
    if (!v) return def;
    std::int64_t out{};
    const auto* begin = v->data();
    const auto* end = begin + v->size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    PLRUPART_ASSERT_MSG(ec == std::errc{} && ptr == end,
                        "bad integer for flag " + std::string(name));
    return out;
  }

  [[nodiscard]] double get_double(std::string_view name, double def) const {
    auto v = value(name);
    if (!v) return def;
    return std::stod(*v);
  }

 private:
  std::vector<std::string> args_;
};

/// Whole-string unsigned parse that names the offending context on failure
/// ("bad <what>: '<text>'"). Rejects empty strings, signs, and trailing junk.
[[nodiscard]] inline std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value{};
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  PLRUPART_ASSERT_MSG(!text.empty() && ec == std::errc{} && ptr == end,
                      "bad " + std::string(what) + ": '" + std::string(text) + "'");
  return value;
}

/// Split a comma-separated list, dropping empty items ("a,,b" -> {a, b}).
[[nodiscard]] inline std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace plrupart
