// Crash-safe file publication: the one blessed place in the tree that is
// allowed to create/rename/delete files on the output path.
//
// AtomicFile buffers everything written to stream() in memory, and commit()
// publishes it in one durable step: write to `<target>.tmp.<pid>` with
// EINTR-safe full writes, fsync the file, rename(2) over the target, fsync
// the containing directory. Readers therefore see either the old complete
// file or the new complete file — never a truncated hybrid — and a SIGKILL
// at any instant leaves at worst a stray .tmp that the next run ignores.
// Nothing touches the filesystem before commit(), so an AtomicFile destroyed
// uncommitted publishes nothing.
//
// All I/O failures throw TransientError (they are exactly what --job-retries
// exists for), and arm_fault() lets a FaultPlan fail the commit on demand so
// tests can prove the recovery story.
//
// The determinism lint (tools/lint/check_determinism.py, rule "atomic-file")
// bans raw std::rename/std::remove/fopen-for-write everywhere else, which is
// what keeps this the single audited crash-consistency point.
#pragma once

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <string_view>

#include "plrupart/common/fault_inject.hpp"

namespace plrupart {

class AtomicFile {
 public:
  /// Targets `target`; nothing touches the filesystem until commit().
  explicit AtomicFile(std::filesystem::path target);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Buffered output stream; bytes only reach disk on commit().
  [[nodiscard]] std::ostream& stream() noexcept { return buf_; }

  /// Route this file's commit through a fault plan: the FaultSite::kWrite
  /// decision for (counter, lane) is consulted right before the tmp write.
  void arm_fault(const FaultPlan* plan, std::uint64_t counter, std::uint64_t lane = 0) noexcept {
    fault_plan_ = plan;
    fault_counter_ = counter;
    fault_lane_ = lane;
  }

  /// Durably publish the buffered bytes at the target path. Throws
  /// TransientError (with errno detail) on any I/O failure, InjectedFault if
  /// the armed plan fires; either way the target is untouched.
  void commit();

  [[nodiscard]] bool committed() const noexcept { return committed_; }
  [[nodiscard]] const std::filesystem::path& target() const noexcept { return target_; }

  /// One-shot convenience: buffer `bytes` and commit.
  static void write_file(const std::filesystem::path& target, std::string_view bytes,
                         const FaultPlan* plan = nullptr, std::uint64_t counter = 0,
                         std::uint64_t lane = 0);

  /// Remove a file if present (e.g. a stale journal record or partial
  /// output), ignoring "does not exist". Throws TransientError on other
  /// failures. Kept here so deletion stays inside the blessed utility.
  static void remove_file(const std::filesystem::path& path);

  /// Fail-fast probe: prove `target` is writable (create + unlink its tmp
  /// sibling) without touching the target itself. Run before long work whose
  /// output lands at `target`, so an unwritable path fails in milliseconds
  /// instead of after hours.
  static void probe_writable(const std::filesystem::path& target);

 private:
  std::filesystem::path target_;
  std::ostringstream buf_;
  const FaultPlan* fault_plan_ = nullptr;
  std::uint64_t fault_counter_ = 0;
  std::uint64_t fault_lane_ = 0;
  bool committed_ = false;
};

}  // namespace plrupart
