// Streaming statistics helpers (Welford accumulation) for benchmark reporting.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// Numerically stable running mean / variance / min / max.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean accumulator (relative-performance aggregation).
class GeoMean {
 public:
  void add(double x) {
    PLRUPART_ASSERT_MSG(x > 0.0, "geometric mean requires positive samples");
    log_sum_ += std::log(x);
    ++n_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double value() const noexcept {
    return n_ ? std::exp(log_sum_ / static_cast<double>(n_)) : 0.0;
  }

 private:
  double log_sum_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace plrupart
