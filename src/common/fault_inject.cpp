#include "plrupart/common/fault_inject.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

namespace plrupart {
namespace {

[[noreturn]] void spec_error(const std::string& text, const std::string& why) {
  throw InvariantError("bad --fault-inject spec \"" + text + "\": " + why +
                       " (expected comma-separated <site>:<probability> with site in "
                       "{read, write, worker} and probability in [0, 1])");
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::array<bool, 3> seen{};
  std::istringstream in(text);
  std::string item;
  bool got_any = false;
  while (std::getline(in, item, ',')) {
    got_any = true;
    const auto colon = item.find(':');
    if (colon == std::string::npos) spec_error(text, "item \"" + item + "\" has no ':'");
    const std::string_view site_name(item.data(), colon);
    FaultSite site{};
    if (site_name == "read") {
      site = FaultSite::kRead;
    } else if (site_name == "write") {
      site = FaultSite::kWrite;
    } else if (site_name == "worker") {
      site = FaultSite::kWorker;
    } else {
      spec_error(text, "unknown site \"" + std::string(site_name) + "\"");
    }
    const auto idx = static_cast<std::size_t>(site);
    if (seen[idx]) spec_error(text, "site \"" + std::string(site_name) + "\" repeated");
    seen[idx] = true;

    const std::string prob_text = item.substr(colon + 1);
    char* end = nullptr;
    const double p = std::strtod(prob_text.c_str(), &end);
    if (prob_text.empty() || end != prob_text.c_str() + prob_text.size())
      spec_error(text, "probability \"" + prob_text + "\" is not a number");
    if (!(p >= 0.0 && p <= 1.0))
      spec_error(text, "probability " + prob_text + " outside [0, 1]");
    spec.probability[idx] = p;
  }
  if (!got_any) spec_error(text, "empty spec");
  return spec;
}

void FaultPlan::maybe_throw(FaultSite site, std::uint64_t counter, std::uint64_t lane,
                            const std::string& context) const {
  if (!should_fire(site, counter, lane)) return;
  std::ostringstream os;
  os << "injected " << fault_site_name(site) << " fault at " << context << " (opportunity "
     << counter << ", lane " << lane << ", plan seed " << seed_ << ')';
  throw InjectedFault(os.str());
}

}  // namespace plrupart
