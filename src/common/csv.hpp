// CSV emission for benchmark harness output (one file per figure/table).
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// Streams rows of a fixed-width CSV table. Values containing commas or quotes
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> header) : os_(os), width_(header.size()) {
    PLRUPART_ASSERT(width_ > 0);
    write_row_impl(header);
  }

  /// Headerless writer of `width` columns: for emitters that produce row
  /// fragments (e.g. one job's rows for a journal record) to be concatenated
  /// under a header written elsewhere. Byte-compatible with the headered
  /// writer's rows by construction — same row path.
  struct NoHeader {};
  CsvWriter(std::ostream& os, std::size_t width, NoHeader) : os_(os), width_(width) {
    PLRUPART_ASSERT(width_ > 0);
  }

  void row(const std::vector<std::string>& values) {
    PLRUPART_ASSERT_MSG(values.size() == width_, "CSV row width mismatch");
    write_row_impl(values);
  }

  /// Convenience: stringify arbitrary streamable values into one row.
  template <typename... Ts>
  void row_of(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(to_cell(vals)), ...);
    row(cells);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream ss;
    ss << v;
    return ss.str();
  }

  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  }

  void write_row_impl(const std::vector<std::string>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) os_ << ',';
      os_ << escape(values[i]);
    }
    os_ << '\n';
  }

  std::ostream& os_;
  std::size_t width_;
};

}  // namespace plrupart
