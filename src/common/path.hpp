// Tiny path helpers shared across subsystems.
#pragma once

#include <string>

namespace plrupart {

/// Final component of a '/'-separated path ("dir/a.trace" -> "a.trace").
/// Both FileTraceSource::name() and trace-workload display names derive from
/// this, so the CSV benchmark column and the source name always agree.
[[nodiscard]] inline std::string path_basename(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace plrupart
