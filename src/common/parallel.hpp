// Minimal fork-join parallelism for running independent simulations.
//
// Each simulation is single-threaded and deterministic; the sweep engine and
// benchmark harnesses parallelize *across* (workload, configuration) pairs.
// Scheduling is a dynamic work queue — workers pull the next unclaimed index
// off an atomic ticket counter — so the assignment of indices to threads (and
// the completion order) is nondeterministic. Callers that need deterministic
// output must key results by index, never by completion order; parallel_map
// and the sweep executor do exactly that.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "plrupart/common/assert.hpp"

namespace plrupart {

/// Number of worker threads to use by default (hardware concurrency, >= 1).
[[nodiscard]] inline std::size_t default_parallelism() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/// Run body(i) for i in [0, n) across up to `threads` workers. The first
/// exception thrown by any body is rethrown on the calling thread after all
/// workers join. body must be safe to call concurrently for distinct i.
///
/// Templated on the callable so the per-index dispatch on the hot fan-out
/// path is a direct (inlinable) call, not a std::function indirection.
template <typename F, typename = std::enable_if_t<std::is_invocable_v<F&, std::size_t>>>
inline void parallel_for(std::size_t n, F&& body, std::size_t threads = 0) {
  if (n == 0) return;
  if (threads == 0) threads = default_parallelism();
  if (threads > n) threads = n;

  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Type-erased overload for callers that already hold a std::function (the
/// template above is preferred for lambdas — overload resolution picks it
/// automatically because no conversion is needed).
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                         std::size_t threads = 0) {
  parallel_for(
      n, [&body](std::size_t i) { body(i); }, threads);
}

/// Map f over [0, n) into a pre-sized result vector, in parallel.
template <typename T, typename F>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, F&& f, std::size_t threads = 0) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = f(i); }, threads);
  return out;
}

}  // namespace plrupart
