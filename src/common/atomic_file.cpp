#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "plrupart/common/error.hpp"

namespace plrupart {
namespace {

[[noreturn]] void io_error(const std::string& what, const std::filesystem::path& path, int err) {
  throw TransientError(what + " " + path.string() + ": " + std::strerror(err));
}

/// open(2) with EINTR retry.
int open_retry(const char* path, int flags, mode_t mode) {
  for (;;) {
    const int fd = ::open(path, flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// Write the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ::ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void close_quiet(int fd) noexcept {
  // POSIX leaves fd state unspecified after EINTR from close; retrying risks
  // closing a recycled descriptor, so a single call is the correct move.
  ::close(fd);
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return;  // best effort: some filesystems refuse O_DIRECTORY opens
  while (::fsync(fd) < 0 && errno == EINTR) {
  }
  close_quiet(fd);
}

}  // namespace

AtomicFile::AtomicFile(std::filesystem::path target) : target_(std::move(target)) {}

AtomicFile::~AtomicFile() = default;  // nothing on disk until commit()

void AtomicFile::commit() {
  PLRUPART_ASSERT_MSG(!committed_, "AtomicFile::commit called twice");
  if (fault_plan_ != nullptr) {
    fault_plan_->maybe_throw(FaultSite::kWrite, fault_counter_, fault_lane_,
                             "atomic write of " + target_.string());
  }
  const std::string bytes = buf_.str();
  std::filesystem::path tmp = target_;
  tmp += ".tmp." + std::to_string(::getpid());

  const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_error("cannot create temp file", tmp, errno);
  if (!write_all(fd, bytes.data(), bytes.size())) {
    const int err = errno;
    close_quiet(fd);
    ::unlink(tmp.c_str());
    io_error("cannot write", tmp, err);
  }
  int rc = 0;
  while ((rc = ::fsync(fd)) < 0 && errno == EINTR) {
  }
  if (rc < 0) {
    const int err = errno;
    close_quiet(fd);
    ::unlink(tmp.c_str());
    io_error("cannot fsync", tmp, err);
  }
  close_quiet(fd);

  if (::rename(tmp.c_str(), target_.c_str()) < 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    io_error("cannot rename into", target_, err);
  }
  sync_parent_dir(target_);
  committed_ = true;
}

void AtomicFile::write_file(const std::filesystem::path& target, std::string_view bytes,
                            const FaultPlan* plan, std::uint64_t counter, std::uint64_t lane) {
  AtomicFile f(target);
  f.arm_fault(plan, counter, lane);
  f.stream().write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.commit();
}

void AtomicFile::probe_writable(const std::filesystem::path& target) {
  std::filesystem::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid());
  const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw TransientError("cannot open '" + target.string() +
                         "' for writing: " + std::strerror(errno));
  }
  close_quiet(fd);
  ::unlink(tmp.c_str());
}

void AtomicFile::remove_file(const std::filesystem::path& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return;
  io_error("cannot remove", path, errno);
}

}  // namespace plrupart
