// SPEC CPU 2000 benchmark catalog (synthetic substitutes).
//
// 25 profiles covering every benchmark named in the paper's Table II. The
// parameters are not measurements; they encode each benchmark's published
// qualitative cache personality (working-set size, streaming vs. reuse,
// latency sensitivity) so that partitioning decisions face the same kinds of
// miss curves the paper's traces produced. See DESIGN.md "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "workloads/generators.hpp"

namespace plrupart::workloads {

/// All catalog entries, alphabetical by name.
[[nodiscard]] const std::vector<BenchmarkProfile>& catalog();

/// Look up one benchmark by Table II name ("perl" aliases "perlbmk").
/// Throws InvariantError for unknown names.
[[nodiscard]] const BenchmarkProfile& benchmark(const std::string& name);

[[nodiscard]] bool has_benchmark(const std::string& name);

}  // namespace plrupart::workloads
