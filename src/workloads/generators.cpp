#include "plrupart/workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace plrupart::workloads {

namespace {
constexpr std::uint64_t kLineBytes = 128;  // matches the paper's line size

[[nodiscard]] std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

SyntheticTrace::SyntheticTrace(BenchmarkProfile profile, std::uint64_t base_addr,
                               std::uint64_t seed)
    : profile_(std::move(profile)), base_addr_(base_addr), seed_(seed), rng_(seed) {
  PLRUPART_ASSERT_MSG(!profile_.components.empty(), "profile needs >= 1 component");
  PLRUPART_ASSERT(profile_.mem_fraction > 0.0 && profile_.mem_fraction <= 1.0);
  PLRUPART_ASSERT(profile_.write_fraction >= 0.0 && profile_.write_fraction <= 1.0);
  profile_.core.validate();

  PLRUPART_ASSERT(profile_.l1_fraction >= 0.0 && profile_.l1_fraction < 1.0);

  // Carve disjoint, line-aligned sub-regions: the L1 scratch region first,
  // then the components.
  std::uint64_t offset = 0;
  if (profile_.l1_fraction > 0.0) {
    PLRUPART_ASSERT(profile_.l1_region_bytes >= kLineBytes);
    offset = align_up(profile_.l1_region_bytes, kLineBytes);
  }
  for (const auto& c : profile_.components) {
    PLRUPART_ASSERT_MSG(c.region_bytes >= kLineBytes, "component region below one line");
    PLRUPART_ASSERT(c.weight > 0.0);
    bases_.push_back(base_addr_ + offset);
    offset += align_up(c.region_bytes, kLineBytes);
    total_weight_ += c.weight;
  }
  cursors_.assign(profile_.components.size(), 0);
}

void SyntheticTrace::reset() {
  rng_ = Rng(seed_);
  for (auto& c : cursors_) c = 0;
  ops_ = 0;
  gap_carry_ = 0.0;
}

std::size_t SyntheticTrace::pick_component() {
  const std::size_t n = profile_.components.size();
  if (n == 1) return 0;
  // Phase behavior: rotate which component each weight applies to, so the
  // dominant working set changes across phases.
  const std::size_t rot = static_cast<std::size_t>(phase()) % n;
  double r = rng_.next_double() * total_weight_;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = profile_.components[(i + rot) % n].weight;
    if (r < w) return i;
    r -= w;
  }
  return n - 1;
}

cache::Addr SyntheticTrace::component_address(std::size_t idx) {
  const ComponentSpec& c = profile_.components[idx];
  const std::uint64_t lines = c.region_bytes / kLineBytes;
  std::uint64_t line_off = 0;
  switch (c.kind) {
    case PatternKind::kSequentialStream: {
      line_off = cursors_[idx] % lines;
      cursors_[idx] += 1;
      break;
    }
    case PatternKind::kStridedLoop: {
      const std::uint64_t stride_lines =
          std::max<std::uint64_t>(1, c.stride_bytes / kLineBytes);
      line_off = (cursors_[idx] * stride_lines) % lines;
      cursors_[idx] += 1;
      break;
    }
    case PatternKind::kRandomRegion:
    case PatternKind::kPointerChase: {
      if (c.skew == 1.0) {
        line_off = rng_.next_below(lines);
      } else {
        const double u = rng_.next_double();
        line_off = static_cast<std::uint64_t>(static_cast<double>(lines) *
                                              std::pow(u, c.skew));
        if (line_off >= lines) line_off = lines - 1;
      }
      break;
    }
  }
  return bases_[idx] + line_off * kLineBytes;
}

sim::MemOp SyntheticTrace::next() {
  sim::MemOp op;
  // Deterministic fractional pacing of non-memory instructions: on average
  // (1 - f) / f gap instructions per memory op.
  const double mean_gap = (1.0 - profile_.mem_fraction) / profile_.mem_fraction;
  gap_carry_ += mean_gap;
  op.gap_instrs = static_cast<std::uint32_t>(gap_carry_);
  gap_carry_ -= op.gap_instrs;

  if (profile_.l1_fraction > 0.0 && rng_.next_bool(profile_.l1_fraction)) {
    const std::uint64_t lines = profile_.l1_region_bytes / kLineBytes;
    op.addr = base_addr_ + rng_.next_below(lines) * kLineBytes;
  } else {
    const std::size_t idx = pick_component();
    op.addr = component_address(idx);
  }
  op.write = rng_.next_bool(profile_.write_fraction);
  ++ops_;
  return op;
}

std::unique_ptr<SyntheticTrace> make_trace(const BenchmarkProfile& profile,
                                           std::uint32_t core_id, std::uint64_t seed) {
  // 1 TiB per thread keeps address spaces disjoint at any modeled cache size.
  const std::uint64_t base = (static_cast<std::uint64_t>(core_id) + 1) << 40;
  return std::make_unique<SyntheticTrace>(profile, base, derive_seed(seed, core_id));
}

}  // namespace plrupart::workloads
