#include "plrupart/workloads/workload_table.hpp"

#include "plrupart/common/assert.hpp"
#include "plrupart/workloads/catalog.hpp"

namespace plrupart::workloads {

namespace {
[[nodiscard]] std::vector<Workload> validated(std::vector<Workload> v) {
  for (const auto& w : v)
    for (const auto& b : w.benchmarks)
      PLRUPART_ASSERT_MSG(has_benchmark(b), "Table II references unknown benchmark " + b);
  return v;
}
}  // namespace

const std::vector<Workload>& workloads_2t() {
  static const std::vector<Workload> v = validated({
      {"2T_01", {"apsi", "bzip2"}},
      {"2T_02", {"mcf", "parser"}},
      {"2T_03", {"twolf", "vortex"}},
      {"2T_04", {"vpr", "art"}},
      {"2T_05", {"apsi", "crafty"}},
      {"2T_06", {"bzip2", "eon"}},
      {"2T_07", {"mcf", "gcc"}},
      {"2T_08", {"parser", "gzip"}},
      {"2T_09", {"applu", "gap"}},
      {"2T_10", {"lucas", "sixtrack"}},
      {"2T_11", {"facerec", "wupwise"}},
      {"2T_12", {"galgel", "facerec"}},
      {"2T_13", {"applu", "apsi"}},
      {"2T_14", {"gap", "bzip2"}},
      {"2T_15", {"lucas", "mcf"}},
      {"2T_16", {"sixtrack", "parser"}},
      {"2T_17", {"applu", "crafty"}},
      {"2T_18", {"gap", "eon"}},
      {"2T_19", {"lucas", "gcc"}},
      {"2T_20", {"sixtrack", "gzip"}},
      {"2T_21", {"crafty", "eon"}},
      {"2T_22", {"gcc", "gzip"}},
      {"2T_23", {"mesa", "perlbmk"}},
      {"2T_24", {"equake", "mgrid"}},
  });
  return v;
}

const std::vector<Workload>& workloads_4t() {
  static const std::vector<Workload> v = validated({
      {"4T_01", {"apsi", "bzip2", "mcf", "parser"}},
      {"4T_02", {"parser", "twolf", "vortex", "vpr"}},
      {"4T_03", {"apsi", "crafty", "bzip2", "eon"}},
      {"4T_04", {"mcf", "gcc", "parser", "gzip"}},
      {"4T_05", {"applu", "gap", "lucas", "sixtrack"}},
      {"4T_06", {"lucas", "galgel", "facerec", "wupwise"}},
      {"4T_07", {"applu", "apsi", "gap", "bzip2"}},
      {"4T_08", {"lucas", "mcf", "sixtrack", "parser"}},
      {"4T_09", {"vpr", "wupwise", "gzip", "crafty"}},
      {"4T_10", {"fma3d", "swim", "mcf", "applu"}},
      {"4T_11", {"applu", "crafty", "gap", "eon"}},
      {"4T_12", {"lucas", "gcc", "sixtrack", "gzip"}},
      {"4T_13", {"crafty", "eon", "gcc", "gzip"}},
      {"4T_14", {"mesa", "perl", "equake", "mgrid"}},
  });
  return v;
}

const std::vector<Workload>& workloads_8t() {
  static const std::vector<Workload> v = validated({
      {"8T_01", {"apsi", "bzip2", "mcf", "parser", "twolf", "swim", "vpr", "art"}},
      {"8T_02", {"apsi", "crafty", "bzip2", "eon", "mcf", "gcc", "parser", "gzip"}},
      {"8T_03", {"twolf", "mesa", "vortex", "perl", "vpr", "equake", "art", "mgrid"}},
      {"8T_04",
       {"applu", "gap", "lucas", "sixtrack", "facerec", "wupwise", "galgel", "facerec"}},
      {"8T_05", {"applu", "apsi", "gap", "bzip2", "lucas", "mcf", "sixtrack", "parser"}},
      {"8T_06", {"lucas", "mcf", "sixtrack", "parser", "facerec", "twolf", "wupwise", "art"}},
      {"8T_07", {"galgel", "vpr", "twolf", "apsi", "art", "swim", "parser", "wupwise"}},
      {"8T_08", {"gzip", "crafty", "fma3d", "mcf", "applu", "gap", "mesa", "perlbmk"}},
      {"8T_09", {"applu", "crafty", "gap", "eon", "lucas", "gcc", "sixtrack", "gzip"}},
      {"8T_10",
       {"wupwise", "mesa", "facerec", "perl", "galgel", "equake", "facerec", "mgrid"}},
      {"8T_11", {"crafty", "eon", "gcc", "gzip", "mesa", "perl", "equake", "mgrid"}},
  });
  return v;
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> v = [] {
    std::vector<Workload> all;
    for (const auto& w : workloads_2t()) all.push_back(w);
    for (const auto& w : workloads_4t()) all.push_back(w);
    for (const auto& w : workloads_8t()) all.push_back(w);
    PLRUPART_ASSERT_MSG(all.size() == 49, "Table II lists 49 workloads");
    return all;
  }();
  return v;
}

std::vector<Workload> workloads_for_threads(std::uint32_t threads) {
  if (threads == 1) {
    std::vector<Workload> singles;
    for (const auto& b : catalog()) singles.push_back({"1T_" + b.name, {b.name}});
    return singles;
  }
  std::vector<Workload> out;
  for (const auto& w : all_workloads()) {
    if (w.threads() == threads) out.push_back(w);
  }
  PLRUPART_ASSERT_MSG(!out.empty(), "no Table II workloads with that thread count");
  return out;
}

}  // namespace plrupart::workloads
