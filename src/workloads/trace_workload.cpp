#include "plrupart/workloads/trace_workload.hpp"

#include "plrupart/common/assert.hpp"
#include "common/path.hpp"

namespace plrupart::workloads {

sim::CoreParams trace_core_params() noexcept { return sim::CoreParams{}; }

Workload workload_from_traces(const std::vector<std::string>& paths) {
  PLRUPART_ASSERT_MSG(!paths.empty(), "a trace workload needs at least one trace file");
  Workload w;
  w.id = "trace:";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto base = path_basename(paths[i]);
    PLRUPART_ASSERT_MSG(!base.empty(), "bad trace path '" + paths[i] + "'");
    // Same basename from a DIFFERENT path is a different capture (per-bench
    // directories with a fixed file name); suffix the core index so the CSV
    // can tell the cores apart. The same path repeated (co-running copies of
    // one capture) legitimately shares its name.
    for (std::size_t j = 0; j < paths.size(); ++j) {
      if (j != i && paths[j] != paths[i] && path_basename(paths[j]) == base) {
        base += '@' + std::to_string(i);
        break;
      }
    }
    if (i > 0) w.id += '+';
    w.id += base;
    w.benchmarks.push_back(base);
    w.traces.push_back(paths[i]);
  }
  return w;
}

}  // namespace plrupart::workloads
