#include "plrupart/workloads/catalog.hpp"

#include <algorithm>

namespace plrupart::workloads {

namespace {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

[[nodiscard]] sim::CoreParams core_of(double ipc, double stall) {
  sim::CoreParams p;
  p.base_ipc = ipc;
  p.stall_fraction = stall;
  return p;
}

[[nodiscard]] ComponentSpec stream(std::uint64_t bytes, double w) {
  return ComponentSpec{.kind = PatternKind::kSequentialStream,
                       .region_bytes = bytes,
                       .stride_bytes = 128,
                       .weight = w};
}
[[nodiscard]] ComponentSpec strided(std::uint64_t bytes, std::uint32_t stride, double w) {
  return ComponentSpec{.kind = PatternKind::kStridedLoop,
                       .region_bytes = bytes,
                       .stride_bytes = stride,
                       .weight = w};
}
[[nodiscard]] ComponentSpec hot(std::uint64_t bytes, double w) {
  // Skewed reuse (head of the region much hotter than the tail) mirrors real
  // program footprints and produces the smooth, convex miss curves the
  // MinMisses literature assumes.
  return ComponentSpec{.kind = PatternKind::kRandomRegion,
                       .region_bytes = bytes,
                       .stride_bytes = 128,
                       .weight = w,
                       .skew = 4.0};
}
[[nodiscard]] ComponentSpec chase(std::uint64_t bytes, double w) {
  // Pointer chases stay uniform: dependent walks have no head bias.
  return ComponentSpec{.kind = PatternKind::kPointerChase,
                       .region_bytes = bytes,
                       .stride_bytes = 128,
                       .weight = w,
                       .skew = 1.0};
}

[[nodiscard]] std::vector<BenchmarkProfile> build_catalog() {
  std::vector<BenchmarkProfile> v;

  // --- Memory hogs / streaming thrashers: little to gain from extra ways.
  v.push_back({.name = "mcf",
               .mem_fraction = 0.35,
               .write_fraction = 0.25,
               .core = core_of(1.2, 0.95),
               .components = {chase(6 * MiB, 0.7), hot(256 * KiB, 0.3)},
               .l1_fraction = 0.55});
  v.push_back({.name = "art",
               .mem_fraction = 0.35,
               .write_fraction = 0.2,
               .core = core_of(1.8, 0.6),
               .components = {stream(4 * MiB, 0.8), hot(128 * KiB, 0.2)},
               .l1_fraction = 0.5});
  v.push_back({.name = "swim",
               .mem_fraction = 0.30,
               .write_fraction = 0.35,
               .core = core_of(2.2, 0.5),
               .components = {stream(8 * MiB, 0.9), hot(128 * KiB, 0.1)},
               .l1_fraction = 0.5});
  v.push_back({.name = "applu",
               .mem_fraction = 0.28,
               .write_fraction = 0.35,
               .core = core_of(2.2, 0.5),
               .components = {stream(4 * MiB, 0.6), strided(1 * MiB, 512, 0.4)},
               .l1_fraction = 0.55});
  v.push_back({.name = "lucas",
               .mem_fraction = 0.30,
               .write_fraction = 0.3,
               .core = core_of(2.0, 0.6),
               .components = {strided(4 * MiB, 512, 0.8), hot(192 * KiB, 0.2)},
               .l1_fraction = 0.55});
  v.push_back({.name = "mgrid",
               .mem_fraction = 0.32,
               .write_fraction = 0.3,
               .core = core_of(2.3, 0.45),
               .components = {stream(6 * MiB, 0.75), hot(256 * KiB, 0.25)},
               .l1_fraction = 0.55});

  // --- Large-footprint mixed: some reuse worth protecting.
  v.push_back({.name = "equake",
               .mem_fraction = 0.30,
               .write_fraction = 0.25,
               .core = core_of(1.8, 0.7),
               .components = {hot(1536 * KiB, 0.5), stream(6 * MiB, 0.5)},
               .l1_fraction = 0.6});
  v.push_back({.name = "fma3d",
               .mem_fraction = 0.28,
               .write_fraction = 0.3,
               .core = core_of(2.0, 0.6),
               .components = {hot(1 * MiB, 0.5), stream(6 * MiB, 0.5)},
               .l1_fraction = 0.6});

  // --- Cache-sensitive mid working sets: miss curves fall steeply with ways.
  v.push_back({.name = "twolf",
               .mem_fraction = 0.30,
               .write_fraction = 0.2,
               .core = core_of(1.8, 0.8),
               .components = {hot(448 * KiB, 0.85), hot(64 * KiB, 0.15)},
               .l1_fraction = 0.8});
  v.push_back({.name = "vpr",
               .mem_fraction = 0.28,
               .write_fraction = 0.2,
               .core = core_of(1.9, 0.75),
               .components = {hot(512 * KiB, 0.8), hot(96 * KiB, 0.2)},
               .l1_fraction = 0.8});
  v.push_back({.name = "parser",
               .mem_fraction = 0.30,
               .write_fraction = 0.25,
               .core = core_of(1.7, 0.8),
               .components = {hot(896 * KiB, 0.7), hot(128 * KiB, 0.3)},
               .l1_fraction = 0.78});
  v.push_back({.name = "vortex",
               .mem_fraction = 0.27,
               .write_fraction = 0.3,
               .core = core_of(2.0, 0.7),
               .components = {hot(1280 * KiB, 0.6), hot(256 * KiB, 0.4)},
               .phase_period_ops = 3'000'000,
               .l1_fraction = 0.75});
  v.push_back({.name = "gap",
               .mem_fraction = 0.26,
               .write_fraction = 0.3,
               .core = core_of(2.2, 0.6),
               .components = {hot(640 * KiB, 0.6), hot(1 * MiB, 0.4)},
               .l1_fraction = 0.78});
  v.push_back({.name = "galgel",
               .mem_fraction = 0.30,
               .write_fraction = 0.25,
               .core = core_of(2.4, 0.5),
               .components = {hot(512 * KiB, 0.7), stream(4 * MiB, 0.3)},
               .l1_fraction = 0.75});
  v.push_back({.name = "facerec",
               .mem_fraction = 0.28,
               .write_fraction = 0.2,
               .core = core_of(2.3, 0.5),
               .components = {stream(5 * MiB, 0.5), hot(384 * KiB, 0.5)},
               .l1_fraction = 0.7});
  v.push_back({.name = "wupwise",
               .mem_fraction = 0.25,
               .write_fraction = 0.3,
               .core = core_of(2.5, 0.5),
               .components = {hot(768 * KiB, 0.65), stream(4 * MiB, 0.35)},
               .l1_fraction = 0.75});
  v.push_back({.name = "apsi",
               .mem_fraction = 0.27,
               .write_fraction = 0.3,
               .core = core_of(2.3, 0.55),
               .components = {hot(640 * KiB, 0.7), hot(1 * MiB, 0.3)},
               .l1_fraction = 0.75});
  v.push_back({.name = "gcc",
               .mem_fraction = 0.28,
               .write_fraction = 0.3,
               .core = core_of(2.0, 0.7),
               .components = {hot(1536 * KiB, 0.55), hot(192 * KiB, 0.45)},
               .phase_period_ops = 2'500'000,
               .l1_fraction = 0.75});
  v.push_back({.name = "bzip2",
               .mem_fraction = 0.26,
               .write_fraction = 0.35,
               .core = core_of(2.2, 0.6),
               .components = {hot(768 * KiB, 0.6), hot(1 * MiB, 0.4)},
               .phase_period_ops = 2'000'000,
               .l1_fraction = 0.78});

  // --- Small working sets: mostly L1/L2-light, cache-insensitive.
  v.push_back({.name = "gzip",
               .mem_fraction = 0.24,
               .write_fraction = 0.3,
               .core = core_of(2.6, 0.5),
               .components = {hot(256 * KiB, 0.75), hot(512 * KiB, 0.25)},
               .l1_fraction = 0.85});
  v.push_back({.name = "crafty",
               .mem_fraction = 0.25,
               .write_fraction = 0.2,
               .core = core_of(2.8, 0.5),
               .components = {hot(160 * KiB, 0.9), hot(512 * KiB, 0.1)},
               .l1_fraction = 0.88});
  v.push_back({.name = "eon",
               .mem_fraction = 0.20,
               .write_fraction = 0.25,
               .core = core_of(3.2, 0.35),
               .components = {hot(64 * KiB, 0.95), hot(256 * KiB, 0.05)},
               .l1_fraction = 0.92});
  v.push_back({.name = "sixtrack",
               .mem_fraction = 0.22,
               .write_fraction = 0.25,
               .core = core_of(3.0, 0.4),
               .components = {hot(96 * KiB, 0.9), hot(512 * KiB, 0.1)},
               .l1_fraction = 0.88});
  v.push_back({.name = "mesa",
               .mem_fraction = 0.22,
               .write_fraction = 0.3,
               .core = core_of(2.8, 0.4),
               .components = {hot(192 * KiB, 0.8), hot(256 * KiB, 0.2)},
               .l1_fraction = 0.88});
  v.push_back({.name = "perlbmk",
               .mem_fraction = 0.26,
               .write_fraction = 0.3,
               .core = core_of(2.5, 0.5),
               .components = {hot(320 * KiB, 0.7), hot(96 * KiB, 0.3)},
               .phase_period_ops = 1'500'000,
               .l1_fraction = 0.85});

  std::sort(v.begin(), v.end(),
            [](const BenchmarkProfile& a, const BenchmarkProfile& b) { return a.name < b.name; });
  return v;
}

}  // namespace

const std::vector<BenchmarkProfile>& catalog() {
  static const std::vector<BenchmarkProfile> entries = build_catalog();
  return entries;
}

bool has_benchmark(const std::string& name) {
  const std::string key = (name == "perl") ? "perlbmk" : name;
  for (const auto& b : catalog()) {
    if (b.name == key) return true;
  }
  return false;
}

const BenchmarkProfile& benchmark(const std::string& name) {
  const std::string key = (name == "perl") ? "perlbmk" : name;
  for (const auto& b : catalog()) {
    if (b.name == key) return b;
  }
  PLRUPART_ASSERT_MSG(false, "unknown benchmark: " + name);
  return catalog().front();  // unreachable
}

}  // namespace plrupart::workloads
