#include "plrupart/runner/journal.hpp"

#include <fstream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/atomic_file.hpp"
#include "plrupart/common/bits.hpp"
#include "plrupart/runner/sweep_executor.hpp"

namespace plrupart::runner {
namespace {

constexpr std::string_view kManifestMagic = "plrupart-journal v1";
constexpr std::string_view kRecordMagic = "plrupart-record v1";

std::string to_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Read "<label> <value>" from the next line; the journal format is rigid
/// enough that anything else is corruption.
std::string expect_field(std::istream& in, std::string_view label,
                         const std::filesystem::path& file) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(label, 0) != 0 ||
      line.size() < label.size() + 2 || line[label.size()] != ' ') {
    throw InvariantError("journal file " + file.string() + " is corrupt: expected a '" +
                         std::string(label) + " ...' line; remove the file (or the "
                         "whole journal directory) and re-run");
  }
  return line.substr(label.size() + 1);
}

std::uint64_t parse_hex(const std::string& text, const std::filesystem::path& file) {
  if (text.size() != 16)
    throw InvariantError("journal file " + file.string() + " is corrupt: bad hex field '" +
                         text + "'");
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      throw InvariantError("journal file " + file.string() +
                           " is corrupt: bad hex field '" + text + "'");
  }
  return v;
}

}  // namespace

RunJournal::RunJournal(std::filesystem::path dir, const std::vector<RunSpec>& jobs,
                       bool resume)
    : dir_(std::move(dir)), fingerprint_(jobs_fingerprint(jobs)) {
  PLRUPART_ASSERT_MSG(!jobs.empty(), "journal needs a non-empty job list");
  timing_ = jobs.front().timing;
  for (const auto& j : jobs) {
    PLRUPART_ASSERT_MSG(j.timing == timing_,
                        "journaled job list mixes timing modes (one CSV schema per "
                        "sweep)");
  }
  job_indices_.reserve(jobs.size());
  keys_.reserve(jobs.size());
  for (const auto& j : jobs) {
    job_indices_.push_back(j.job_index);
    keys_.push_back(j.key());
  }
  complete_.assign(jobs.size(), false);

  std::filesystem::create_directories(dir_);
  const bool have_manifest = std::filesystem::exists(dir_ / "MANIFEST");
  if (!resume) {
    if (have_manifest) {
      throw InvariantError(
          "journal directory " + dir_.string() + " already contains a journal; pass "
          "--resume to continue that sweep, or remove the directory for a fresh run");
    }
    write_manifest(jobs.size());
    return;
  }

  if (!have_manifest) {
    throw InvariantError("--resume: no journal found at " + dir_.string() +
                         " (missing MANIFEST); start the sweep once with --journal " +
                         dir_.string() + " before resuming it");
  }
  load_manifest_or_fail(jobs.size());

  // Mark every durably-recorded job complete; validate as we go so a corrupt
  // or foreign record fails NOW with a name, not mid-assembly later.
  for (std::size_t pos = 0; pos < complete_.size(); ++pos) {
    if (!std::filesystem::exists(record_path(pos))) continue;
    (void)read_record_or_fail(pos);
    complete_[pos] = true;
  }
}

std::size_t RunJournal::num_complete() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const bool c : complete_)
    if (c) ++n;
  return n;
}

std::filesystem::path RunJournal::record_path(std::size_t pos) const {
  return dir_ / ("job-" + std::to_string(job_indices_.at(pos)) + ".rec");
}

void RunJournal::write_manifest(std::size_t num_jobs) const {
  AtomicFile f(dir_ / "MANIFEST");
  f.stream() << kManifestMagic << '\n'
             << "fingerprint " << to_hex(fingerprint_) << '\n'
             << "jobs " << num_jobs << '\n';
  f.commit();
}

void RunJournal::load_manifest_or_fail(std::size_t num_jobs) const {
  const std::filesystem::path path = dir_ / "MANIFEST";
  std::ifstream in(path, std::ios::binary);
  PLRUPART_ASSERT_MSG(static_cast<bool>(in), "cannot open " + path.string());
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    throw InvariantError("--resume: " + path.string() + " is not a plrupart journal "
                         "manifest; remove the directory and start fresh");
  }
  const std::uint64_t fp = parse_hex(expect_field(in, "fingerprint", path), path);
  if (fp != fingerprint_) {
    throw InvariantError(
        "--resume: the journal at " + dir_.string() + " was recorded for a different "
        "sweep (its fingerprint " + to_hex(fp) + " != this run's " + to_hex(fingerprint_) +
        "). The run matrix — configs, workloads, L2 sizes, quotas, and seed — must match "
        "the original run exactly; fix the flags, or remove the directory to start over");
  }
  const std::string jobs_text = expect_field(in, "jobs", path);
  if (jobs_text != std::to_string(num_jobs)) {
    throw InvariantError("--resume: journal manifest " + path.string() + " lists " +
                         jobs_text + " jobs but this run has " + std::to_string(num_jobs) +
                         "; the job list must match the original run exactly");
  }
}

void RunJournal::record(std::size_t pos, const std::string& rows,
                        const FaultPlan* write_faults) {
  AtomicFile f(record_path(pos));
  if (write_faults != nullptr) f.arm_fault(write_faults, job_indices_.at(pos));
  f.stream() << kRecordMagic << '\n'
             << "fingerprint " << to_hex(fingerprint_) << '\n'
             << "job " << job_indices_.at(pos) << '\n'
             << "key " << keys_.at(pos) << '\n'
             << "bytes " << rows.size() << '\n'
             << "crc " << to_hex(fnv1a64(rows)) << '\n';
  f.stream() << rows;
  f.commit();
  const std::lock_guard<std::mutex> lock(mutex_);
  complete_[pos] = true;
}

std::string RunJournal::read_record_or_fail(std::size_t pos) const {
  const std::filesystem::path path = record_path(pos);
  std::ifstream in(path, std::ios::binary);
  PLRUPART_ASSERT_MSG(static_cast<bool>(in), "cannot open journal record " + path.string());
  std::string line;
  if (!std::getline(in, line) || line != kRecordMagic) {
    throw InvariantError("journal record " + path.string() + " is corrupt (bad magic); "
                         "remove it to re-run that job, or remove the directory to start "
                         "over");
  }
  const std::uint64_t fp = parse_hex(expect_field(in, "fingerprint", path), path);
  if (fp != fingerprint_) {
    throw InvariantError("journal record " + path.string() + " belongs to a different "
                         "sweep (fingerprint " + to_hex(fp) + " != " + to_hex(fingerprint_) +
                         "); remove it, or remove the directory to start over");
  }
  const std::string job_text = expect_field(in, "job", path);
  if (job_text != std::to_string(job_indices_.at(pos))) {
    throw InvariantError("journal record " + path.string() + " claims job index " +
                         job_text + ", expected " + std::to_string(job_indices_.at(pos)) +
                         "; remove it to re-run that job");
  }
  const std::string key_text = expect_field(in, "key", path);
  if (key_text != keys_.at(pos)) {
    throw InvariantError("journal record " + path.string() + " claims key '" + key_text +
                         "', expected '" + keys_.at(pos) + "'; remove it to re-run that "
                         "job");
  }
  const std::string bytes_text = expect_field(in, "bytes", path);
  const std::uint64_t crc = parse_hex(expect_field(in, "crc", path), path);
  std::string rows(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  if (bytes_text != std::to_string(rows.size())) {
    throw InvariantError("journal record " + path.string() + " is truncated: header "
                         "promises " + bytes_text + " payload bytes, file holds " +
                         std::to_string(rows.size()) + "; remove it to re-run that job");
  }
  if (fnv1a64(rows) != crc) {
    throw InvariantError("journal record " + path.string() + " fails its checksum; "
                         "remove it to re-run that job");
  }
  return rows;
}

std::string RunJournal::rows(std::size_t pos) const { return read_record_or_fail(pos); }

void RunJournal::write_final_csv(std::ostream& os) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t pos = 0; pos < complete_.size(); ++pos) {
      PLRUPART_ASSERT_MSG(complete_[pos], "job " + keys_[pos] + " (index " +
                                              std::to_string(job_indices_[pos]) +
                                              ") has no journal record");
    }
  }
  const auto& header = sweep_csv_header(timing_);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) os << ',';
    os << header[i];
  }
  os << '\n';
  for (std::size_t pos = 0; pos < complete_.size(); ++pos) os << read_record_or_fail(pos);
}

}  // namespace plrupart::runner
