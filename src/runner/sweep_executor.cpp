#include "plrupart/runner/sweep_executor.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/runner/journal.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"

namespace plrupart::runner {

namespace {

/// Per-job throughput line on stderr ([n/total] <key> done ...).
void log_progress(const JobResult& jr, std::size_t n, std::size_t total, double secs) {
  // Simulated memory accesses per wall second for this job (counted
  // over the measured window), so sweep throughput — the quantity the
  // hot-path work optimizes — is visible in the field.
  std::uint64_t accesses = 0;
  for (const auto& th : jr.result.threads) accesses += th.mem.l1_accesses;
  const double rate = secs > 0.0 ? static_cast<double>(accesses) / secs : 0.0;
  if (jr.result.timing == sim::TimingMode::kTimed) {
    // Timed runs report simulated cycle throughput too — acc/s alone would
    // misleadingly undersell the (slower, event-driven) timed path.
    const double cyc_rate = secs > 0.0 ? jr.result.wall_cycles / secs : 0.0;
    std::fprintf(stderr, "plrupart: [%zu/%zu] %s done (%.1fM acc/s, %.1fM cyc/s)\n", n,
                 total, jr.spec.key().c_str(), rate / 1e6, cyc_rate / 1e6);
  } else if (jr.result.sim_shards > 1) {
    // Rate is the aggregate across the job's intra-run shard workers;
    // surface the shard count so scaling is visible in the field.
    std::fprintf(stderr, "plrupart: [%zu/%zu] %s done (%.1fM acc/s, %u shards)\n", n,
                 total, jr.spec.key().c_str(), rate / 1e6, jr.result.sim_shards);
  } else {
    std::fprintf(stderr, "plrupart: [%zu/%zu] %s done (%.1fM acc/s)\n", n, total,
                 jr.spec.key().c_str(), rate / 1e6);
  }
}

}  // namespace

sim::SimResult SweepExecutor::run_supervised(const RunSpec& spec, RunJournal* journal,
                                             std::size_t pos) const {
  const std::uint32_t attempts = opts_.job_retries + 1;
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      ExecuteControls controls;
      controls.timeout_s = opts_.job_timeout_s;
      std::shared_ptr<const FaultPlan> plan;
      if (opts_.faults.any()) {
        // One plan per (job, attempt): replayable — the same root seed
        // reproduces the same faults — yet salted by attempt, so a retry is
        // not doomed to replay the exact failure it is recovering from.
        plan = std::make_shared<FaultPlan>(
            opts_.faults, derive_seed(derive_seed(opts_.fault_seed, spec.job_index),
                                      attempt));
        controls.faults = plan;
      }
      sim::SimResult result = execute(spec, controls);
      if (journal != nullptr) {
        JobResult jr;
        jr.spec = spec;
        jr.result = result;
        journal->record(pos, sweep_csv_rows(jr), plan.get());
      }
      return result;
    } catch (const TransientError& e) {
      if (attempt + 1 >= attempts) {
        throw TransientError("job " + spec.key() + " failed after " +
                             std::to_string(attempts) + " attempt(s); last error: " +
                             e.what());
      }
      if (opts_.progress) {
        std::fprintf(stderr, "plrupart: job %s attempt %u/%u failed (%s); retrying\n",
                     spec.key().c_str(), attempt + 1, attempts, e.what());
      }
      if (opts_.retry_backoff_ms > 0) {
        // Capped exponential backoff: transient conditions (shared-FS blips,
        // overloaded hosts) need breathing room, but a cap keeps the worst
        // case bounded at 32x the base.
        const std::uint32_t shift = std::min<std::uint32_t>(attempt, 5);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::uint64_t{opts_.retry_backoff_ms} << shift));
      }
    }
  }
}

std::vector<JobResult> SweepExecutor::run(std::vector<RunSpec> jobs) const {
  const std::size_t total = jobs.size();
  std::vector<JobResult> out(total);
  std::atomic<std::size_t> done{0};
  parallel_for(
      total,
      [&](std::size_t i) {
        out[i].spec = std::move(jobs[i]);
        const auto t0 = std::chrono::steady_clock::now();
        out[i].result = run_supervised(out[i].spec, nullptr, i);
        if (opts_.progress) {
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
          log_progress(out[i], done.fetch_add(1, std::memory_order_relaxed) + 1, total,
                       secs);
        }
      },
      opts_.threads);
  return out;
}

void SweepExecutor::run_csv(std::vector<RunSpec> jobs, std::ostream& os) const {
  if (opts_.journal_dir.empty()) {
    PLRUPART_ASSERT_MSG(!opts_.resume, "--resume requires --journal <dir>");
    const std::vector<JobResult> results = run(std::move(jobs));
    write_csv(os, results);
    return;
  }

  RunJournal journal(opts_.journal_dir, jobs, opts_.resume);
  std::vector<std::size_t> todo;
  todo.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!journal.complete(i)) todo.push_back(i);
  }
  if (opts_.progress && todo.size() < jobs.size()) {
    std::fprintf(stderr, "plrupart: resuming: %zu/%zu jobs already journaled\n",
                 jobs.size() - todo.size(), jobs.size());
  }
  std::atomic<std::size_t> done{0};
  parallel_for(
      todo.size(),
      [&](std::size_t k) {
        const std::size_t i = todo[k];
        JobResult jr;
        jr.spec = jobs[i];
        const auto t0 = std::chrono::steady_clock::now();
        jr.result = run_supervised(jr.spec, &journal, i);
        if (opts_.progress) {
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
          log_progress(jr, done.fetch_add(1, std::memory_order_relaxed) + 1, todo.size(),
                       secs);
        }
      },
      opts_.threads);
  journal.write_final_csv(os);
}

const std::vector<std::string>& sweep_csv_header() {
  static const std::vector<std::string> header{
      "job",         "workload",  "config",      "l2_kb",     "seed",
      "core",        "benchmark", "instructions", "cycles",    "ipc",
      "l1_accesses", "l1_misses", "l2_accesses", "l2_misses", "l2_miss_rate",
      "throughput",  "wall_cycles", "repartitions"};
  return header;
}

const std::vector<std::string>& sweep_csv_header(sim::TimingMode mode) {
  if (mode == sim::TimingMode::kFunctional) return sweep_csv_header();
  static const std::vector<std::string> timed_header = [] {
    std::vector<std::string> h = sweep_csv_header();
    h.insert(h.end(), {"dram_reads", "dram_writebacks", "row_hits", "row_misses",
                       "bank_conflicts", "mshr_coalesced", "mshr_full_stalls",
                       "wb_full_stalls", "mshr_peak", "dram_bytes", "dram_bw"});
    return h;
  }();
  return timed_header;
}

namespace {

/// The single row-formatting path: write_csv and the journal both emit
/// through here, which is what makes a journal-assembled CSV byte-identical
/// to a directly-written one.
void append_job_rows(CsvWriter& csv, const JobResult& jr) {
  const auto& s = jr.spec;
  const auto& r = jr.result;
  for (std::size_t core = 0; core < r.threads.size(); ++core) {
    const auto& th = r.threads[core];
    const double miss_rate =
        th.mem.l2_accesses ? static_cast<double>(th.mem.l2_misses) /
                                 static_cast<double>(th.mem.l2_accesses)
                           : 0.0;
    if (r.timing == sim::TimingMode::kTimed) {
      // Timed schema: classic columns plus the overlay counters (job-global,
      // repeated on each core row so every row is self-contained).
      const auto& ts = r.timed;
      const double bw = r.wall_cycles > 0.0
                            ? static_cast<double>(ts.dram_bytes) / r.wall_cycles
                            : 0.0;
      csv.row_of(s.job_index, s.workload.id, s.config, s.l2.size_bytes / 1024, s.seed,
                 core, th.benchmark, th.instructions, th.cycles, th.ipc,
                 th.mem.l1_accesses, th.mem.l1_misses, th.mem.l2_accesses,
                 th.mem.l2_misses, miss_rate, r.throughput(), r.wall_cycles,
                 r.repartitions, ts.dram_reads, ts.dram_writebacks, ts.row_hits,
                 ts.row_misses, ts.bank_conflicts, ts.mshr_coalesced,
                 ts.mshr_full_stalls, ts.wb_full_stalls, ts.mshr_peak, ts.dram_bytes,
                 bw);
    } else {
      csv.row_of(s.job_index, s.workload.id, s.config, s.l2.size_bytes / 1024, s.seed,
                 core, th.benchmark, th.instructions, th.cycles, th.ipc,
                 th.mem.l1_accesses, th.mem.l1_misses, th.mem.l2_accesses,
                 th.mem.l2_misses, miss_rate, r.throughput(), r.wall_cycles,
                 r.repartitions);
    }
  }
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<JobResult>& results) {
  // One header per file: the mode is uniform across a sweep (RunMatrix carries
  // one timing field). A mixed list would trip CsvWriter's width check.
  const sim::TimingMode mode =
      results.empty() ? sim::TimingMode::kFunctional : results.front().result.timing;
  CsvWriter csv(os, sweep_csv_header(mode));
  for (const auto& jr : results) append_job_rows(csv, jr);
}

std::string sweep_csv_rows(const JobResult& result) {
  std::ostringstream ss;
  CsvWriter csv(ss, sweep_csv_header(result.result.timing).size(), CsvWriter::NoHeader{});
  append_job_rows(csv, result);
  return ss.str();
}

namespace {

/// CSV header line of the sweep schema ("job,workload,...").
std::string header_line(sim::TimingMode mode = sim::TimingMode::kFunctional) {
  std::string line;
  for (const auto& col : sweep_csv_header(mode)) {
    if (!line.empty()) line += ',';
    line += col;
  }
  return line;
}

/// Leading "job" field of a data row, or the field at `index` (0-based).
/// Sweep rows never quote these fields, so a plain comma walk suffices.
std::string_view field_at(std::string_view row, std::size_t index) {
  std::size_t begin = 0;
  for (std::size_t f = 0; f < index; ++f) {
    const auto comma = row.find(',', begin);
    PLRUPART_ASSERT_MSG(comma != std::string_view::npos, "malformed CSV row: " +
                                                             std::string(row));
    begin = comma + 1;
  }
  const auto end = row.find(',', begin);
  return row.substr(begin, end == std::string_view::npos ? end : end - begin);
}

struct ParsedRow {
  std::uint64_t job = 0;
  std::uint64_t core = 0;
  std::size_t shard = 0;  ///< which input stream the row came from
  std::string text;       ///< verbatim row, re-emitted untouched
};

}  // namespace

void merge_csv_streams(const std::vector<std::istream*>& shards,
                       const std::vector<std::string>& names, std::ostream& os) {
  PLRUPART_ASSERT_MSG(!shards.empty(), "merge needs at least one shard CSV");
  PLRUPART_ASSERT(shards.size() == names.size());
  // Either schema merges — functional or timed — but never a mix: the first
  // shard's header picks the schema and every other shard must match it.
  std::string expected_header;

  std::vector<ParsedRow> rows;
  for (std::size_t si = 0; si < shards.size(); ++si) {
    std::istream& in = *shards[si];
    std::string line;
    PLRUPART_ASSERT_MSG(static_cast<bool>(std::getline(in, line)),
                        "shard '" + names[si] + "' is empty");
    if (si == 0) {
      PLRUPART_ASSERT_MSG(line == header_line() ||
                              line == header_line(sim::TimingMode::kTimed),
                          "shard '" + names[si] + "' header does not match the sweep "
                          "schema: got '" + line + "'");
      expected_header = line;
    }
    PLRUPART_ASSERT_MSG(line == expected_header,
                        "shard '" + names[si] + "' header does not match the sweep "
                        "schema: got '" + line + "'");
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ParsedRow row;
      row.job = parse_u64(field_at(line, 0), "job index in CSV row");
      row.core = parse_u64(field_at(line, 5), "core index in CSV row");
      row.shard = si;
      row.text = std::move(line);
      rows.push_back(std::move(row));
    }
  }

  // Canonical order: ascending job index; a job's per-core rows keep their
  // in-file order (cores are already ascending within a job).
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ParsedRow& a, const ParsedRow& b) { return a.job < b.job; });

  // Validate: a job key must come from exactly one shard, its per-core rows
  // must be strictly ascending (write_csv emits cores 0..n-1, so anything
  // else means duplicated or reordered rows — e.g. a rerun appended with
  // `>>`), and the merged key set must be gapless from 0 — a gap means a
  // shard is missing or truncated.
  std::uint64_t next_expected = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (i > 0 && rows[i - 1].job == r.job) {
      const auto& prev = rows[i - 1];
      PLRUPART_ASSERT_MSG(prev.shard == r.shard,
                          "duplicate job key " + std::to_string(r.job) + " in shards '" +
                              names[prev.shard] + "' and '" + names[r.shard] + "'");
      PLRUPART_ASSERT_MSG(prev.core < r.core,
                          "rows for job " + std::to_string(r.job) + " in shard '" +
                              names[r.shard] +
                              "' are duplicated or out of core order");
    }
    if (i == 0 || rows[i - 1].job != r.job) {
      PLRUPART_ASSERT_MSG(r.job == next_expected,
                          "merged shards are missing job " +
                              std::to_string(next_expected) +
                              " (incomplete shard set?)");
      ++next_expected;
    }
  }

  os << expected_header << '\n';
  for (const auto& r : rows) os << r.text << '\n';
}

void merge_csv(const std::vector<std::string>& shard_paths, std::ostream& os) {
  std::vector<std::ifstream> files;
  files.reserve(shard_paths.size());
  std::vector<std::istream*> streams;
  for (const auto& path : shard_paths) {
    auto& f = files.emplace_back(path);
    PLRUPART_ASSERT_MSG(static_cast<bool>(f), "cannot open shard CSV '" + path + "'");
    streams.push_back(&f);
  }
  merge_csv_streams(streams, shard_paths, os);
}

}  // namespace plrupart::runner
