#include "plrupart/runner/run_spec.hpp"

#include <memory>
#include <string>
#include <utility>

#include "plrupart/common/assert.hpp"
#include "plrupart/common/bits.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/core/partitioned_cache.hpp"
#include "plrupart/sim/trace_file.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/generators.hpp"
#include "plrupart/workloads/trace_workload.hpp"

namespace plrupart::runner {

std::string RunSpec::key() const {
  return workload.id + "|" + config + "|" + std::to_string(l2.size_bytes / 1024);
}

sim::SimResult execute(const RunSpec& spec) { return execute(spec, ExecuteControls{}); }

sim::SimResult execute(const RunSpec& spec, const ExecuteControls& controls) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d = spec.l1d;
  cfg.hierarchy.l2 =
      core::CpaConfig::from_acronym(spec.config, spec.workload.threads(), spec.l2);
  cfg.hierarchy.l2.interval_cycles = spec.interval_cycles;
  cfg.hierarchy.l2.sampling_ratio = spec.sampling_ratio;
  cfg.hierarchy.l2.seed = spec.seed;
  cfg.instr_limit = spec.instr;
  cfg.warmup_instr = spec.warmup;
  cfg.sim_threads = spec.sim_threads;
  cfg.timing_mode = spec.timing;
  cfg.timeout_s = controls.timeout_s;
  cfg.faults = controls.faults;

  // Trace-backed workloads stream their recorded file per core (the seed
  // still feeds the L2's RNG); synthetic ones generate seeded streams.
  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t core = 0; core < spec.workload.threads(); ++core) {
    if (spec.workload.trace_backed()) {
      cfg.cores.push_back(workloads::trace_core_params());
      auto src = std::make_unique<sim::FileTraceSource>(spec.workload.traces[core]);
      if (controls.faults != nullptr && controls.faults->armed(FaultSite::kRead))
        src->set_fault_plan(controls.faults, core);
      traces.push_back(std::move(src));
    } else {
      const auto& profile = workloads::benchmark(spec.workload.benchmarks[core]);
      cfg.cores.push_back(profile.core);
      traces.push_back(workloads::make_trace(profile, core, spec.seed));
    }
  }
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

std::uint64_t jobs_fingerprint(const std::vector<RunSpec>& jobs) {
  // Textual fold: every identity field serialized into one byte stream, then
  // FNV-1a'd. Text (not memcpy of structs) keeps the value independent of
  // padding, endianness, and struct layout across platforms.
  std::string acc;
  acc.reserve(256);
  std::uint64_t h = fnv1a64("plrupart-jobs-v1");
  for (const auto& s : jobs) {
    acc.clear();
    acc += std::to_string(s.job_index);
    acc += '|';
    acc += s.config;
    acc += '|';
    acc += s.workload.id;
    for (const auto& b : s.workload.benchmarks) {
      acc += ';';
      acc += b;
    }
    for (const auto& t : s.workload.traces) {
      acc += '&';
      acc += t;
    }
    acc += '|';
    acc += std::to_string(s.l1d.size_bytes) + ',' + std::to_string(s.l1d.associativity) +
           ',' + std::to_string(s.l1d.line_bytes);
    acc += '|';
    acc += std::to_string(s.l2.size_bytes) + ',' + std::to_string(s.l2.associativity) +
           ',' + std::to_string(s.l2.line_bytes);
    acc += '|';
    acc += std::to_string(s.instr) + ',' + std::to_string(s.warmup) + ',' +
           std::to_string(s.interval_cycles) + ',' + std::to_string(s.sampling_ratio) +
           ',' + std::to_string(s.seed);
    // Timed-only marker: functional jobs serialize exactly as before this
    // field existed, so every pre-timed journal fingerprint stays valid.
    if (s.timing == sim::TimingMode::kTimed) acc += "|timed";
    acc += '\n';
    h = fnv1a64(acc, h);
  }
  return h;
}

std::uint64_t RunMatrix::job_seed(std::size_t wi) const noexcept {
  return derive_seed(seed, wi);
}

std::vector<RunSpec> RunMatrix::expand() const {
  validate();
  std::vector<RunSpec> jobs;
  jobs.reserve(size());
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const std::uint64_t row_seed = job_seed(wi);
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      for (std::size_t li = 0; li < l2_kb.size(); ++li) {
        RunSpec s;
        s.job_index = index_of(wi, ci, li);
        s.config = configs[ci];
        s.workload = workloads[wi];
        s.l1d = l1d;
        s.l2 = cache::Geometry{
            .size_bytes = l2_kb[li] * 1024, .associativity = assoc, .line_bytes = line};
        s.instr = instr;
        s.warmup = warmup;
        s.interval_cycles = interval_cycles;
        s.sampling_ratio = sampling_ratio;
        s.seed = row_seed;
        s.sim_threads = sim_threads;
        s.timing = timing;
        PLRUPART_ASSERT(s.job_index == jobs.size());
        jobs.push_back(std::move(s));
      }
    }
  }
  return jobs;
}

std::vector<RunSpec> RunMatrix::shard(std::size_t i, std::size_t n) const {
  PLRUPART_ASSERT_MSG(n >= 1, "shard count must be >= 1");
  PLRUPART_ASSERT_MSG(i < n, "shard index " + std::to_string(i) +
                                 " out of range for " + std::to_string(n) + " shards");
  auto all = expand();
  std::vector<RunSpec> slice;
  slice.reserve(all.size() / n + 1);
  for (std::size_t k = i; k < all.size(); k += n) slice.push_back(std::move(all[k]));
  return slice;
}

void RunMatrix::validate() const {
  PLRUPART_ASSERT_MSG(!configs.empty(), "run matrix has no configurations");
  PLRUPART_ASSERT_MSG(!workloads.empty(), "run matrix has no workloads");
  PLRUPART_ASSERT_MSG(!l2_kb.empty(), "run matrix has no L2 sizes");
  l1d.validate();
  // Fail fast on unreadable/malformed trace files — before any sweep work,
  // per workload rather than per (workload, config, size) cell.
  for (const auto& w : workloads) {
    if (!w.trace_backed()) continue;
    PLRUPART_ASSERT_MSG(w.traces.size() == w.benchmarks.size(),
                        "trace workload " + w.id + " has " +
                            std::to_string(w.traces.size()) + " trace files for " +
                            std::to_string(w.benchmarks.size()) + " cores");
    for (const auto& path : w.traces) (void)sim::probe_trace_file(path);
  }
  for (const auto kb : l2_kb) {
    const cache::Geometry g{
        .size_bytes = kb * 1024, .associativity = assoc, .line_bytes = line};
    g.validate();
    for (const auto& w : workloads) {
      PLRUPART_ASSERT_MSG(w.threads() >= 1, "workload " + w.id + " has no benchmarks");
      PLRUPART_ASSERT_MSG(w.threads() <= assoc,
                          "workload " + w.id + " has " + std::to_string(w.threads()) +
                              " threads but the L2 has only " + std::to_string(assoc) +
                              " ways");
      for (const auto& c : configs)
        (void)core::CpaConfig::from_acronym(c, w.threads(), g);
    }
  }
}

}  // namespace plrupart::runner
