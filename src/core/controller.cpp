#include "plrupart/core/controller.hpp"

#include "plrupart/core/static_policy.hpp"

namespace plrupart::core {

IntervalController::IntervalController(std::uint64_t interval_cycles,
                                       std::uint32_t total_ways,
                                       std::unique_ptr<PartitionPolicy> policy,
                                       std::vector<Profiler*> profilers, ApplyFn apply,
                                       double hysteresis)
    : interval_(interval_cycles),
      total_ways_(total_ways),
      policy_(std::move(policy)),
      profilers_(std::move(profilers)),
      apply_(std::move(apply)),
      hysteresis_(hysteresis),
      next_boundary_(interval_cycles) {
  PLRUPART_ASSERT(interval_ > 0);
  PLRUPART_ASSERT(policy_ != nullptr);
  PLRUPART_ASSERT(!profilers_.empty());
  PLRUPART_ASSERT(apply_ != nullptr);
  PLRUPART_ASSERT(hysteresis_ >= 0.0 && hysteresis_ < 1.0);
  // Until the first interval completes there is no profile; start even.
  current_ = StaticEvenPolicy::even_split(static_cast<std::uint32_t>(profilers_.size()),
                                          total_ways_);
  apply_(current_);
}

bool IntervalController::tick(std::uint64_t now_cycles) {
  if (now_cycles < next_boundary_) return false;
  repartition_now(now_cycles);
  // Re-arm relative to the boundary grid, skipping intervals the simulator
  // jumped over (a long stall can cross several boundaries at once).
  while (next_boundary_ <= now_cycles) next_boundary_ += interval_;
  return true;
}

void IntervalController::repartition_now(std::uint64_t now_cycles) {
  std::vector<MissCurve> curves;
  curves.reserve(profilers_.size());
  for (const Profiler* p : profilers_) curves.push_back(p->curve());

  Partition candidate = policy_->decide(curves, total_ways_);
  validate_partition(candidate, total_ways_);
  if (hysteresis_ > 0.0 && candidate != current_) {
    // Keep the standing partition unless the candidate's predicted misses
    // undercut it decisively (see constructor comment).
    const double old_cost = partition_cost(curves, current_);
    const double new_cost = partition_cost(curves, candidate);
    if (new_cost >= old_cost * (1.0 - hysteresis_)) candidate = current_;
  }
  current_ = std::move(candidate);
  apply_(current_);
  history_.push_back(RepartitionEvent{.cycle = now_cycles, .partition = current_});

  for (Profiler* p : profilers_) p->decay();
}

}  // namespace plrupart::core
