#include "core/atd.hpp"

#include "common/bits.hpp"

namespace plrupart::core {

namespace {
[[nodiscard]] cache::Geometry sampled_geometry(const cache::Geometry& l2,
                                               std::uint32_t ratio) {
  PLRUPART_ASSERT_MSG(is_pow2(ratio), "sampling ratio must be a power of two");
  PLRUPART_ASSERT_MSG(l2.sets() % ratio == 0, "sampling ratio exceeds set count");
  cache::Geometry g = l2;
  g.size_bytes = l2.size_bytes / ratio;
  g.validate();
  return g;
}
}  // namespace

Atd::Atd(const cache::Geometry& l2_geometry, cache::ReplacementKind replacement,
         std::uint32_t sampling_ratio, std::uint64_t seed)
    : l2_geo_(l2_geometry),
      atd_geo_(sampled_geometry(l2_geometry, sampling_ratio)),
      sampling_ratio_(sampling_ratio),
      policy_(cache::make_policy(replacement, atd_geo_, seed)),
      entries_(atd_geo_.sets() * atd_geo_.associativity) {}

void Atd::reset() {
  for (auto& e : entries_) e = Entry{};
  policy_->reset();
}

bool Atd::is_sampled(cache::Addr line_addr) const {
  // Sample every `ratio`-th L2 set. Keeping the decision on the L2 set index
  // (not a separate hash) mirrors the hardware wiring in [22].
  return (l2_geo_.set_index(line_addr) & (sampling_ratio_ - 1)) == 0;
}

std::optional<AtdObservation> Atd::access(cache::Addr line_addr) {
  if (!is_sampled(line_addr)) return std::nullopt;
  const std::uint64_t l2_set = l2_geo_.set_index(line_addr);
  const std::uint64_t set = l2_set / sampling_ratio_;
  // Tag must disambiguate everything above the ATD's own index bits; reuse the
  // line address above the L2 set index plus the sampled set remainder, which
  // is constant per ATD set, so the plain L2 tag suffices.
  const std::uint64_t tag = l2_geo_.tag(line_addr);

  AtdObservation obs;

  const std::uint32_t ways = atd_geo_.associativity;
  for (std::uint32_t w = 0; w < ways; ++w) {
    Entry& e = entry(set, w);
    if (e.valid && e.tag == tag) {
      obs.hit = true;
      obs.way = w;
      obs.estimate = policy_->estimate_position(set, w);
      policy_->on_hit(set, w, policy_->all_ways());
      return obs;
    }
  }

  // ATD miss: the thread would miss even owning the full associativity.
  obs.hit = false;
  std::uint32_t victim = ways;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (!entry(set, w).valid) {
      victim = w;
      break;
    }
  }
  if (victim == ways) victim = policy_->choose_victim(set, policy_->all_ways());
  Entry& v = entry(set, victim);
  v.tag = tag;
  v.valid = true;
  policy_->on_fill(set, victim, policy_->all_ways());
  obs.way = victim;
  return obs;
}

std::uint64_t Atd::storage_bits(std::uint32_t tag_bits) const {
  // Tag + valid bit per entry, plus the replacement metadata of the ATD's own
  // policy. For the paper's LRU ATD this reproduces the 3.25KB figure:
  // 32 sets x 16 ways x (47 tag + 1 valid + 4 LRU) bits = 26,624 bits.
  const std::uint64_t entries = atd_geo_.sets() * atd_geo_.associativity;
  std::uint64_t per_entry = tag_bits + 1;
  std::uint64_t per_set_extra = 0;
  const std::uint32_t a = atd_geo_.associativity;
  switch (policy_->kind()) {
    case cache::ReplacementKind::kLru:
      per_entry += ilog2_exact(a);
      break;
    case cache::ReplacementKind::kNru:
      per_entry += 1;  // used bit; the global pointer is log2(A) bits overall
      break;
    case cache::ReplacementKind::kTreePlru:
      per_set_extra = a - 1;
      break;
    case cache::ReplacementKind::kRandom:
      break;
    case cache::ReplacementKind::kSrrip:
      per_entry += 2;  // 2-bit RRPV
      break;
  }
  return entries * per_entry + atd_geo_.sets() * per_set_extra +
         (policy_->kind() == cache::ReplacementKind::kNru ? ilog2_exact(a) : 0);
}

}  // namespace plrupart::core
