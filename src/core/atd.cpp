#include "plrupart/core/atd.hpp"

#include <algorithm>

#include "cache/policy_visit.hpp"
#include "cache/simd/simd_kernels.hpp"
#include "plrupart/common/bits.hpp"

namespace plrupart::core {

namespace {
[[nodiscard]] cache::Geometry sampled_geometry(const cache::Geometry& l2,
                                               std::uint32_t ratio) {
  PLRUPART_ASSERT_MSG(is_pow2(ratio), "sampling ratio must be a power of two");
  PLRUPART_ASSERT_MSG(l2.sets() % ratio == 0, "sampling ratio exceeds set count");
  cache::Geometry g = l2;
  g.size_bytes = l2.size_bytes / ratio;
  g.validate();
  return g;
}
}  // namespace

Atd::Atd(const cache::Geometry& l2_geometry, cache::ReplacementKind replacement,
         std::uint32_t sampling_ratio, std::uint64_t seed)
    : l2_geo_(l2_geometry),
      atd_geo_(sampled_geometry(l2_geometry, sampling_ratio)),
      sampling_ratio_(sampling_ratio),
      dispatch_(cache::active_dispatch_tier()),
      kind_(replacement),
      policy_(cache::make_policy(replacement, atd_geo_, seed)) {
  PLRUPART_ASSERT(kind_ == policy_->kind());
  ways_ = atd_geo_.associativity;
  sample_shift_ = ilog2_exact(sampling_ratio_);
  l2_tag_shift_ = ilog2_exact(l2_geo_.sets());
  l2_set_mask_ = l2_geo_.sets() - 1;
  all_ways_ = full_way_mask(ways_);
  // +8 tag words = 64 bytes: padding for the AVX kernels' whole-block loads
  // (the padded-buffer contract of src/cache/simd).
  tags_.assign(atd_geo_.sets() * ways_ + 8, 0);
  valid_.assign(atd_geo_.sets(), 0);
}

std::uint32_t Atd::find_way(std::uint64_t set, std::uint64_t tag) const {
  const WayMask match =
      cache::simd::u64_match(dispatch_, tags_.data() + set * ways_, ways_, tag) &
      valid_[set];
  return match != 0 ? mask_first(match) : kNoWay;
}

void Atd::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  policy_->reset();
}

template <class Policy>
AtdObservation Atd::access_impl(Policy& pol, std::uint64_t set, std::uint64_t tag) {
  AtdObservation obs;

  if (const std::uint32_t w = find_way(set, tag); w != kNoWay) {
    obs.hit = true;
    obs.way = w;
    obs.estimate = pol.estimate_position(set, w);
    pol.on_hit(set, w, all_ways_);
    return obs;
  }

  // ATD miss: the thread would miss even owning the full associativity.
  obs.hit = false;
  std::uint32_t victim;
  if (const WayMask invalid = all_ways_ & ~valid_[set]; invalid != 0) {
    victim = mask_first(invalid);
  } else {
    victim = pol.choose_victim(set, all_ways_);
  }
  tags_[set * ways_ + victim] = tag;
  valid_[set] |= WayMask{1} << victim;
  pol.on_fill(set, victim, all_ways_);
  obs.way = victim;
  return obs;
}

std::optional<AtdObservation> Atd::access(cache::Addr line_addr) {
  if (!is_sampled(line_addr)) return std::nullopt;
  const std::uint64_t l2_set = line_addr & l2_set_mask_;
  const std::uint64_t set = l2_set >> sample_shift_;
  // Tag must disambiguate everything above the ATD's own index bits; reuse the
  // line address above the L2 set index plus the sampled set remainder, which
  // is constant per ATD set, so the plain L2 tag suffices.
  const std::uint64_t tag = line_addr >> l2_tag_shift_;
  return cache::visit_policy(kind_, *policy_, [&](auto& pol) {
    return access_impl(pol, set, tag);
  });
}

std::uint64_t Atd::storage_bits(std::uint32_t tag_bits) const {
  // Tag + valid bit per entry, plus the replacement metadata of the ATD's own
  // policy. For the paper's LRU ATD this reproduces the 3.25KB figure:
  // 32 sets x 16 ways x (47 tag + 1 valid + 4 LRU) bits = 26,624 bits.
  const std::uint64_t entries = atd_geo_.sets() * atd_geo_.associativity;
  std::uint64_t per_entry = tag_bits + 1;
  std::uint64_t per_set_extra = 0;
  const std::uint32_t a = atd_geo_.associativity;
  switch (kind_) {
    case cache::ReplacementKind::kLru:
      per_entry += ilog2_exact(a);
      break;
    case cache::ReplacementKind::kNru:
      per_entry += 1;  // used bit; the global pointer is log2(A) bits overall
      break;
    case cache::ReplacementKind::kTreePlru:
      per_set_extra = a - 1;
      break;
    case cache::ReplacementKind::kRandom:
      break;
    case cache::ReplacementKind::kSrrip:
      per_entry += 2;  // 2-bit RRPV
      break;
  }
  return entries * per_entry + atd_geo_.sets() * per_set_extra +
         (kind_ == cache::ReplacementKind::kNru ? ilog2_exact(a) : 0);
}

}  // namespace plrupart::core
