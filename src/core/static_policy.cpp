#include "plrupart/core/static_policy.hpp"

namespace plrupart::core {

Partition StaticEvenPolicy::even_split(std::uint32_t n, std::uint32_t total_ways) {
  PLRUPART_ASSERT(n >= 1 && n <= total_ways);
  Partition p(n, total_ways / n);
  for (std::uint32_t i = 0; i < total_ways % n; ++i) ++p[i];
  validate_partition(p, total_ways);
  return p;
}

Partition StaticEvenPolicy::decide(const std::vector<MissCurve>& curves,
                                   std::uint32_t total_ways) {
  return even_split(static_cast<std::uint32_t>(curves.size()), total_ways);
}

}  // namespace plrupart::core
