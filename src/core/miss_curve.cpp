#include "plrupart/core/miss_curve.hpp"

namespace plrupart::core {

MissCurve::MissCurve(std::vector<double> misses_by_ways) : curve_(std::move(misses_by_ways)) {
  PLRUPART_ASSERT_MSG(curve_.size() >= 2, "curve needs at least ways 0 and 1");
  for (std::size_t w = 1; w < curve_.size(); ++w) {
    PLRUPART_ASSERT_MSG(curve_[w] <= curve_[w - 1] + 1e-9,
                        "miss curve must be non-increasing in ways");
    PLRUPART_ASSERT(curve_[w] >= 0.0);
  }
}

MissCurve MissCurve::from_sdh(const Sdh& sdh, double scale) {
  PLRUPART_ASSERT(scale > 0.0);
  const std::uint32_t assoc = sdh.associativity();
  std::vector<double> misses(assoc + 1);
  for (std::uint32_t w = 0; w <= assoc; ++w) {
    misses[w] = static_cast<double>(sdh.misses_with_ways(w)) * scale;
  }
  return MissCurve(std::move(misses));
}

bool MissCurve::is_convex() const {
  for (std::uint32_t w = 0; w + 2 < curve_.size(); ++w) {
    if (marginal_gain(w) + 1e-9 < marginal_gain(w + 1)) return false;
  }
  return true;
}

}  // namespace plrupart::core
