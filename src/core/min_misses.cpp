#include "plrupart/core/min_misses.hpp"

#include <limits>

namespace plrupart::core {

namespace {
void check_inputs(const std::vector<MissCurve>& curves, std::uint32_t total_ways) {
  PLRUPART_ASSERT(!curves.empty());
  PLRUPART_ASSERT_MSG(curves.size() <= total_ways,
                      "more cores than ways: cannot give each a way");
  for (const auto& c : curves) PLRUPART_ASSERT(c.max_ways() >= total_ways);
}
}  // namespace

Partition min_misses_optimal(const std::vector<MissCurve>& curves,
                             std::uint32_t total_ways) {
  check_inputs(curves, total_ways);
  const auto n = static_cast<std::uint32_t>(curves.size());
  const std::uint32_t budget = total_ways;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // f[i][b] = min misses for cores [i, n) sharing exactly b ways.
  // choice[i][b] = the (smallest optimal) allocation of core i.
  std::vector<std::vector<double>> f(n + 1, std::vector<double>(budget + 1, kInf));
  std::vector<std::vector<std::uint32_t>> choice(n, std::vector<std::uint32_t>(budget + 1, 0));
  f[n][0] = 0.0;

  for (std::uint32_t i = n; i-- > 0;) {
    const std::uint32_t remaining_cores = n - i - 1;
    for (std::uint32_t b = remaining_cores + 1; b <= budget; ++b) {
      const std::uint32_t w_max = b - remaining_cores;
      for (std::uint32_t w = 1; w <= w_max; ++w) {
        const double cost = curves[i].misses(w) + f[i + 1][b - w];
        if (cost < f[i][b]) {
          f[i][b] = cost;
          choice[i][b] = w;
        }
      }
    }
  }

  Partition p(n);
  std::uint32_t b = budget;
  for (std::uint32_t i = 0; i < n; ++i) {
    p[i] = choice[i][b];
    b -= p[i];
  }
  validate_partition(p, total_ways);
  return p;
}

Partition min_misses_greedy(const std::vector<MissCurve>& curves,
                            std::uint32_t total_ways) {
  check_inputs(curves, total_ways);
  const auto n = static_cast<std::uint32_t>(curves.size());
  Partition p(n, 1);
  std::uint32_t remaining = total_ways - n;
  while (remaining > 0) {
    std::uint32_t best = 0;
    double best_gain = -1.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (p[i] >= total_ways) continue;
      const double gain = curves[i].marginal_gain(p[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    ++p[best];
    --remaining;
  }
  validate_partition(p, total_ways);
  return p;
}

Partition min_misses_lookahead(const std::vector<MissCurve>& curves,
                               std::uint32_t total_ways) {
  check_inputs(curves, total_ways);
  const auto n = static_cast<std::uint32_t>(curves.size());
  Partition p(n, 1);
  std::uint32_t remaining = total_ways - n;
  while (remaining > 0) {
    // For each core, the block size k maximizing average utility
    // (misses(w) - misses(w+k)) / k over k <= remaining.
    std::uint32_t best_core = 0;
    std::uint32_t best_k = 1;
    double best_mu = -1.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t k = 1; k <= remaining && p[i] + k <= total_ways; ++k) {
        const double mu =
            (curves[i].misses(p[i]) - curves[i].misses(p[i] + k)) / static_cast<double>(k);
        if (mu > best_mu) {
          best_mu = mu;
          best_core = i;
          best_k = k;
        }
      }
    }
    p[best_core] += best_k;
    remaining -= best_k;
  }
  validate_partition(p, total_ways);
  return p;
}

Partition MinMissesPolicy::decide(const std::vector<MissCurve>& curves,
                                  std::uint32_t total_ways) {
  switch (algo_) {
    case MinMissesAlgorithm::kOptimal:
      return min_misses_optimal(curves, total_ways);
    case MinMissesAlgorithm::kGreedy:
      return min_misses_greedy(curves, total_ways);
    case MinMissesAlgorithm::kLookahead:
      return min_misses_lookahead(curves, total_ways);
  }
  PLRUPART_ASSERT_MSG(false, "unknown MinMisses algorithm");
  return {};
}

std::string MinMissesPolicy::name() const {
  switch (algo_) {
    case MinMissesAlgorithm::kOptimal:
      return "MinMisses(optimal)";
    case MinMissesAlgorithm::kGreedy:
      return "MinMisses(greedy)";
    case MinMissesAlgorithm::kLookahead:
      return "MinMisses(lookahead)";
  }
  return "?";
}

}  // namespace plrupart::core
