#include "plrupart/core/fair.hpp"

namespace plrupart::core {

Partition FairPolicy::decide(const std::vector<MissCurve>& curves,
                             std::uint32_t total_ways) {
  PLRUPART_ASSERT(!curves.empty());
  PLRUPART_ASSERT(curves.size() <= total_ways);
  const auto n = static_cast<std::uint32_t>(curves.size());
  Partition p(n, 1);
  std::uint32_t remaining = total_ways - n;
  while (remaining > 0) {
    std::uint32_t worst = 0;
    double worst_ratio = -1.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      // A thread whose curve is already flat gains nothing from more ways;
      // skip it unless everyone is flat.
      const double ratio = slowdown_proxy(curves[i], p[i]);
      const bool can_improve = curves[i].marginal_gain(p[i]) > 0.0;
      const double keyed = can_improve ? ratio : ratio - 1e9;
      if (keyed > worst_ratio) {
        worst_ratio = keyed;
        worst = i;
      }
    }
    ++p[worst];
    --remaining;
  }
  validate_partition(p, total_ways);
  return p;
}

}  // namespace plrupart::core
