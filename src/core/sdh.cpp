// Sdh is header-only; this translation unit anchors the module in the build
// and holds its static checks.
#include "plrupart/core/sdh.hpp"

namespace plrupart::core {

static_assert(sizeof(Sdh) > 0);

}  // namespace plrupart::core
