#include "plrupart/core/ipc_policy.hpp"

#include <limits>

namespace plrupart::core {

void IpcModel::validate() const {
  PLRUPART_ASSERT(instr_per_l2_access > 0.0);
  PLRUPART_ASSERT(base_ipc > 0.0);
  PLRUPART_ASSERT(l2_hit_penalty >= 0.0 && mem_penalty >= 0.0);
  PLRUPART_ASSERT(stall_fraction >= 0.0 && stall_fraction <= 1.0);
}

double IpcModel::predicted_ipc(const MissCurve& curve, std::uint32_t ways) const {
  const double accesses = curve.accesses();
  if (accesses <= 0.0) return base_ipc;  // no L2 traffic observed: core-bound
  const double misses = curve.misses(ways);
  const double hits = accesses - misses;
  const double instructions = accesses * instr_per_l2_access;
  // Same accounting as sim::CoreModel: issue cycles plus the exposed slice of
  // each L2-hit / memory penalty.
  const double cycles = instructions / base_ipc +
                        hits * l2_hit_penalty * stall_fraction +
                        misses * mem_penalty * stall_fraction;
  return instructions / cycles;
}

std::string to_string(IpcObjective o) {
  switch (o) {
    case IpcObjective::kThroughput:
      return "throughput";
    case IpcObjective::kWeightedSpeedup:
      return "weighted-speedup";
    case IpcObjective::kHarmonicMean:
      return "harmonic-mean";
  }
  return "?";
}

IpcPolicy::IpcPolicy(std::vector<IpcModel> models, IpcObjective objective)
    : models_(std::move(models)), objective_(objective) {
  PLRUPART_ASSERT_MSG(!models_.empty(), "IpcPolicy needs one model per core");
  for (const auto& m : models_) m.validate();
}

double IpcPolicy::cost(std::size_t core, const MissCurve& curve,
                       std::uint32_t ways) const {
  const IpcModel& m = models_[core];
  const double ipc = m.predicted_ipc(curve, ways);
  switch (objective_) {
    case IpcObjective::kThroughput:
      return -ipc;
    case IpcObjective::kWeightedSpeedup:
      return -ipc / m.predicted_ipc(curve, curve.max_ways());
    case IpcObjective::kHarmonicMean:
      // Maximizing N / sum(iso/ipc) == minimizing sum(iso/ipc).
      return m.predicted_ipc(curve, curve.max_ways()) / ipc;
  }
  return 0.0;
}

Partition IpcPolicy::decide(const std::vector<MissCurve>& curves,
                            std::uint32_t total_ways) {
  PLRUPART_ASSERT_MSG(curves.size() == models_.size(),
                      "curve count must match the registered IPC models");
  PLRUPART_ASSERT(curves.size() <= total_ways);
  const auto n = static_cast<std::uint32_t>(curves.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Exact DP over the separable per-thread costs (cf. min_misses_optimal).
  std::vector<std::vector<double>> f(n + 1, std::vector<double>(total_ways + 1, kInf));
  std::vector<std::vector<std::uint32_t>> choice(n,
                                                 std::vector<std::uint32_t>(total_ways + 1, 0));
  f[n][0] = 0.0;
  for (std::uint32_t i = n; i-- > 0;) {
    const std::uint32_t remaining_cores = n - i - 1;
    for (std::uint32_t b = remaining_cores + 1; b <= total_ways; ++b) {
      const std::uint32_t w_max = b - remaining_cores;
      for (std::uint32_t w = 1; w <= w_max; ++w) {
        const double c = cost(i, curves[i], w) + f[i + 1][b - w];
        if (c < f[i][b]) {
          f[i][b] = c;
          choice[i][b] = w;
        }
      }
    }
  }

  Partition p(n);
  std::uint32_t b = total_ways;
  for (std::uint32_t i = 0; i < n; ++i) {
    p[i] = choice[i][b];
    b -= p[i];
  }
  validate_partition(p, total_ways);
  return p;
}

std::string IpcPolicy::name() const { return "IPC(" + to_string(objective_) + ")"; }

}  // namespace plrupart::core
