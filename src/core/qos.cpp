#include "plrupart/core/qos.hpp"

#include "plrupart/core/min_misses.hpp"

namespace plrupart::core {

std::uint32_t QosPolicy::ways_for_budget(const MissCurve& c, double factor,
                                         std::uint32_t cap) {
  const double budget = factor * c.misses(c.max_ways());
  for (std::uint32_t w = 1; w <= cap; ++w) {
    if (c.misses(w) <= budget) return w;
  }
  return cap;
}

Partition QosPolicy::decide(const std::vector<MissCurve>& curves,
                            std::uint32_t total_ways) {
  PLRUPART_ASSERT(!curves.empty());
  PLRUPART_ASSERT(curves.size() <= total_ways);
  PLRUPART_ASSERT(target_.core < curves.size());
  const auto n = static_cast<std::uint32_t>(curves.size());

  if (n == 1) return Partition{total_ways};

  const std::uint32_t others = n - 1;
  const std::uint32_t cap = total_ways - others;  // leave one way per other core
  const std::uint32_t reserved =
      ways_for_budget(curves[target_.core], target_.factor, cap);

  // MinMisses over the remaining threads and ways.
  std::vector<MissCurve> rest;
  rest.reserve(others);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i != target_.core) rest.push_back(curves[i]);
  }
  const Partition rest_part = min_misses_optimal(rest, total_ways - reserved);

  Partition p(n);
  std::uint32_t j = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    p[i] = (i == target_.core) ? reserved : rest_part[j++];
  }
  validate_partition(p, total_ways);
  return p;
}

}  // namespace plrupart::core
