#include <cmath>
#include <sstream>

#include "plrupart/core/profiler.hpp"

namespace plrupart::core {

NruProfiler::NruProfiler(const cache::Geometry& geo, std::uint32_t sampling_ratio,
                         double scale, NruUpdateMode mode, std::uint64_t seed)
    : Profiler(geo, cache::ReplacementKind::kNru, sampling_ratio, seed),
      scale_(scale),
      mode_(mode),
      smear_(mode == NruUpdateMode::kSmear ? geo.associativity + 1 : 0, 0.0) {
  PLRUPART_ASSERT_MSG(scale > 0.0 && scale <= 1.0, "eSDH scale must be in (0, 1]");
}

std::string NruProfiler::name() const {
  std::ostringstream os;
  os << "eSDH-NRU(S=" << scale_ << ')';
  return os.str();
}

void NruProfiler::on_atd_hit(const cache::StackEstimate& est) {
  const std::uint32_t assoc = sdh_.associativity();
  if (est.lo == 1) {
    // Used bit was 1: distance within [1, U]. The scaled endpoint is
    // ceil(S*U) (paper §III-A: if S*U is not an integer, select the closest
    // upper one).
    const std::uint32_t u = est.hi;
    if (mode_ == NruUpdateMode::kSmear) {
      const double w = 1.0 / static_cast<double>(u);
      for (std::uint32_t d = 1; d <= u; ++d) smear_[d - 1] += w;
      return;
    }
    auto top = static_cast<std::uint32_t>(std::ceil(scale_ * static_cast<double>(u)));
    if (top < 1) top = 1;
    if (top > assoc) top = assoc;
    if (mode_ == NruUpdateMode::kPoint) {
      sdh_.record_hit(top);
    } else {
      // kRange / kPointRecordUnused: "we increase both SDH registers r1 and
      // r2" — every register up to the scaled endpoint.
      for (std::uint32_t d = 1; d <= top; ++d) sdh_.record_hit(d);
    }
    return;
  }
  // Used bit was 0: distance within [U+1, A]. The paper records nothing —
  // incrementing every register shifts the whole curve without changing its
  // shape. kPointRecordUnused measures what recording A instead would do.
  if (mode_ == NruUpdateMode::kPointRecordUnused) {
    sdh_.record_hit(assoc);
  } else if (mode_ == NruUpdateMode::kSmear) {
    const std::uint32_t lo = est.lo;
    const double w = 1.0 / static_cast<double>(assoc - lo + 1);
    for (std::uint32_t d = lo; d <= assoc; ++d) smear_[d - 1] += w;
  }
}

MissCurve NruProfiler::smear_curve() const {
  PLRUPART_ASSERT_MSG(mode_ == NruUpdateMode::kSmear, "smear_curve needs kSmear mode");
  const std::uint32_t assoc = sdh_.associativity();
  // Fractional hit registers plus the integer miss register.
  std::vector<double> misses(assoc + 1);
  double tail = static_cast<double>(sdh_.reg(assoc + 1));
  misses[assoc] = tail;
  for (std::uint32_t w = assoc; w >= 1; --w) {
    tail += smear_[w - 1];
    misses[w - 1] = tail;
  }
  return MissCurve(std::move(misses));
}

void NruProfiler::decay() {
  Profiler::decay();
  for (auto& v : smear_) v *= 0.5;
}

void NruProfiler::reset() {
  Profiler::reset();
  for (auto& v : smear_) v = 0.0;
}

}  // namespace plrupart::core
