// LruProfiler and the profiler factory.
#include "plrupart/core/profiler.hpp"

namespace plrupart::core {

std::unique_ptr<Profiler> make_profiler(ProfilerKind kind,
                                        cache::ReplacementKind l2_replacement,
                                        const cache::Geometry& geo,
                                        std::uint32_t sampling_ratio, double esdh_scale,
                                        NruUpdateMode nru_mode, std::uint64_t seed) {
  if (kind == ProfilerKind::kAuto) {
    switch (l2_replacement) {
      case cache::ReplacementKind::kLru:
        kind = ProfilerKind::kLruExact;
        break;
      case cache::ReplacementKind::kNru:
        kind = ProfilerKind::kNru;
        break;
      case cache::ReplacementKind::kTreePlru:
        kind = ProfilerKind::kBt;
        break;
      case cache::ReplacementKind::kRandom:
        // Random replacement keeps no recency state to profile; the closest
        // meaningful profile is an idealized LRU ATD.
        kind = ProfilerKind::kLruExact;
        break;
      case cache::ReplacementKind::kSrrip:
        kind = ProfilerKind::kSrrip;
        break;
    }
  }
  switch (kind) {
    case ProfilerKind::kLruExact:
      return std::make_unique<LruProfiler>(geo, sampling_ratio, seed);
    case ProfilerKind::kNru:
      return std::make_unique<NruProfiler>(geo, sampling_ratio, esdh_scale, nru_mode, seed);
    case ProfilerKind::kBt:
      return std::make_unique<BtProfiler>(geo, sampling_ratio, seed);
    case ProfilerKind::kSrrip:
      return std::make_unique<SrripProfiler>(geo, sampling_ratio, seed);
    case ProfilerKind::kAuto:
      break;  // resolved above
  }
  PLRUPART_ASSERT_MSG(false, "unreachable profiler kind");
  return nullptr;
}

}  // namespace plrupart::core
