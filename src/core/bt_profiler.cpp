// BtProfiler is fully defined in profiler.hpp; this translation unit anchors
// it in the build (the estimate itself is produced by
// cache::TreePlru::estimate_position — the ID decoder + XOR + SUB datapath of
// paper Fig. 4(b,c)).
#include "plrupart/core/profiler.hpp"

namespace plrupart::core {

static_assert(sizeof(BtProfiler) > 0);

}  // namespace plrupart::core
