#include "plrupart/core/partitioned_cache.hpp"

#include <sstream>

#include "plrupart/cache/tree_plru.hpp"
#include "plrupart/common/rng.hpp"
#include "plrupart/core/fair.hpp"
#include "plrupart/core/static_policy.hpp"
#include "plrupart/core/tree_rounding.hpp"

namespace plrupart::core {

CpaConfig CpaConfig::from_acronym(const std::string& name, std::uint32_t num_cores,
                                  cache::Geometry geometry) {
  CpaConfig c;
  c.geometry = geometry;
  c.num_cores = num_cores;
  if (name == "C-L") {
    c.replacement = cache::ReplacementKind::kLru;
    c.enforcement = cache::EnforcementMode::kOwnerCounters;
  } else if (name == "M-L") {
    c.replacement = cache::ReplacementKind::kLru;
    c.enforcement = cache::EnforcementMode::kWayMasks;
  } else if (name == "M-1.0N" || name == "M-0.75N" || name == "M-0.5N") {
    c.replacement = cache::ReplacementKind::kNru;
    c.enforcement = cache::EnforcementMode::kWayMasks;
    c.esdh_scale = name == "M-1.0N" ? 1.0 : (name == "M-0.75N" ? 0.75 : 0.5);
  } else if (name == "M-BT") {
    c.replacement = cache::ReplacementKind::kTreePlru;
    c.enforcement = cache::EnforcementMode::kWayMasks;
  } else if (name == "M-RRIP") {
    c.replacement = cache::ReplacementKind::kSrrip;
    c.enforcement = cache::EnforcementMode::kWayMasks;
  } else if (name == "NOPART-RRIP") {
    c.replacement = cache::ReplacementKind::kSrrip;
    c.enforcement = cache::EnforcementMode::kNone;
  } else if (name == "NOPART-L") {
    c.replacement = cache::ReplacementKind::kLru;
    c.enforcement = cache::EnforcementMode::kNone;
  } else if (name == "NOPART-N") {
    c.replacement = cache::ReplacementKind::kNru;
    c.enforcement = cache::EnforcementMode::kNone;
  } else if (name == "NOPART-BT") {
    c.replacement = cache::ReplacementKind::kTreePlru;
    c.enforcement = cache::EnforcementMode::kNone;
  } else if (name == "NOPART-R") {
    c.replacement = cache::ReplacementKind::kRandom;
    c.enforcement = cache::EnforcementMode::kNone;
  } else {
    PLRUPART_ASSERT_MSG(false, "unknown configuration acronym: " + name);
  }
  return c;
}

const std::vector<std::string>& CpaConfig::known_acronyms() {
  static const std::vector<std::string> names = {
      "C-L",      "M-L",      "M-1.0N",    "M-0.75N",  "M-0.5N",      "M-BT",
      "M-RRIP",   "NOPART-L", "NOPART-N",  "NOPART-BT", "NOPART-R",   "NOPART-RRIP"};
  return names;
}

std::string CpaConfig::acronym() const {
  if (!partitioned()) {
    switch (replacement) {
      case cache::ReplacementKind::kLru:
        return "NOPART-L";
      case cache::ReplacementKind::kNru:
        return "NOPART-N";
      case cache::ReplacementKind::kTreePlru:
        return "NOPART-BT";
      case cache::ReplacementKind::kRandom:
        return "NOPART-R";
      case cache::ReplacementKind::kSrrip:
        return "NOPART-RRIP";
    }
  }
  std::ostringstream os;
  os << (enforcement == cache::EnforcementMode::kOwnerCounters ? 'C' : 'M') << '-';
  switch (replacement) {
    case cache::ReplacementKind::kLru:
      os << 'L';
      break;
    case cache::ReplacementKind::kNru: {
      std::ostringstream scale;
      scale << esdh_scale;
      std::string s = scale.str();
      if (s.find('.') == std::string::npos) s += ".0";  // "1" -> "1.0"
      os << s << 'N';
      break;
    }
    case cache::ReplacementKind::kTreePlru:
      os << "BT";
      break;
    case cache::ReplacementKind::kRandom:
      os << 'R';
      break;
    case cache::ReplacementKind::kSrrip:
      os << "RRIP";
      break;
  }
  return os.str();
}

PartitionedCacheSystem::PartitionedCacheSystem(CpaConfig config)
    : config_(std::move(config)) {
  config_.geometry.validate();
  PLRUPART_ASSERT(config_.num_cores >= 1);
  PLRUPART_ASSERT_MSG(config_.num_cores <= config_.geometry.associativity,
                      "cannot give every core a way");

  l2_ = std::make_unique<cache::SetAssocCache>(config_.geometry, config_.replacement,
                                               config_.num_cores, config_.enforcement,
                                               config_.seed);

  if (!config_.partitioned()) return;

  profilers_.reserve(config_.num_cores);
  std::vector<Profiler*> raw;
  for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
    profilers_.push_back(make_profiler(config_.profiler, config_.replacement,
                                       config_.geometry, config_.sampling_ratio,
                                       config_.esdh_scale, config_.nru_update,
                                       derive_seed(config_.seed, i)));
    raw.push_back(profilers_.back().get());
  }

  controller_ = std::make_unique<IntervalController>(
      config_.interval_cycles, config_.geometry.associativity, make_partition_policy(),
      std::move(raw), [this](const Partition& p) { apply_partition(p); },
      config_.repartition_hysteresis);
}

std::unique_ptr<PartitionPolicy> PartitionedCacheSystem::make_partition_policy() const {
  switch (config_.policy) {
    case PolicyKind::kMinMissesOptimal:
      return std::make_unique<MinMissesPolicy>(MinMissesAlgorithm::kOptimal);
    case PolicyKind::kMinMissesGreedy:
      return std::make_unique<MinMissesPolicy>(MinMissesAlgorithm::kGreedy);
    case PolicyKind::kMinMissesLookahead:
      return std::make_unique<MinMissesPolicy>(MinMissesAlgorithm::kLookahead);
    case PolicyKind::kMinMissesTree:
      return std::make_unique<TreeMinMissesPolicy>();
    case PolicyKind::kFair:
      return std::make_unique<FairPolicy>();
    case PolicyKind::kQos:
      PLRUPART_ASSERT_MSG(config_.qos.has_value(), "QoS policy needs a QosTarget");
      return std::make_unique<QosPolicy>(*config_.qos);
    case PolicyKind::kIpc:
      PLRUPART_ASSERT_MSG(config_.ipc_models.size() == config_.num_cores,
                          "IPC policy needs one IpcModel per core");
      return std::make_unique<IpcPolicy>(config_.ipc_models, config_.ipc_objective);
    case PolicyKind::kStaticEven:
      return std::make_unique<StaticEvenPolicy>();
  }
  PLRUPART_ASSERT_MSG(false, "unknown policy kind");
  return nullptr;
}

void PartitionedCacheSystem::apply_partition(const Partition& p) {
  switch (config_.enforcement) {
    case cache::EnforcementMode::kNone:
      return;
    case cache::EnforcementMode::kOwnerCounters:
      for (std::uint32_t i = 0; i < config_.num_cores; ++i)
        l2_->set_way_quota(i, p[i]);
      return;
    case cache::EnforcementMode::kWayMasks: {
      if (config_.replacement == cache::ReplacementKind::kTreePlru &&
          config_.bt_strict_pow2) {
        // Strict hardware mode: snap to power-of-two blocks a force-vector
        // pair can express.
        auto& tree = dynamic_cast<cache::TreePlru&>(l2_->policy());
        const Partition rounded =
            round_to_pow2_partition(p, config_.geometry.associativity);
        const TreeEnforcement enf =
            make_tree_enforcement(tree, rounded, config_.geometry.associativity);
        for (std::uint32_t i = 0; i < config_.num_cores; ++i)
          l2_->set_way_mask(i, enf.masks[i]);
        return;
      }
      const auto masks = contiguous_masks(p);
      for (std::uint32_t i = 0; i < config_.num_cores; ++i)
        l2_->set_way_mask(i, masks[i]);
      return;
    }
  }
}

cache::AccessOutcome PartitionedCacheSystem::access(cache::CoreId core, cache::Addr addr,
                                                    bool write, std::uint64_t now_cycles) {
  PLRUPART_ASSERT(core < config_.num_cores);
  if (config_.partitioned()) {
    profilers_[core]->record_access(config_.geometry.line_addr(addr));
    controller_->tick(now_cycles);
  }
  return l2_->access(core, addr, write);
}

const Profiler& PartitionedCacheSystem::profiler(cache::CoreId core) const {
  PLRUPART_ASSERT(config_.partitioned());
  PLRUPART_ASSERT(core < profilers_.size());
  return *profilers_[core];
}

Profiler& PartitionedCacheSystem::profiler_mut(cache::CoreId core) {
  PLRUPART_ASSERT(config_.partitioned());
  PLRUPART_ASSERT(core < profilers_.size());
  return *profilers_[core];
}

Partition PartitionedCacheSystem::current_partition() const {
  if (controller_) return controller_->current();
  // Unpartitioned: every core can use the whole cache.
  return Partition(config_.num_cores, config_.geometry.associativity);
}

std::uint64_t PartitionedCacheSystem::profiling_storage_bits(std::uint32_t tag_bits) const {
  std::uint64_t bits = 0;
  for (const auto& p : profilers_) {
    bits += p->atd().storage_bits(tag_bits);
    // SDH registers: A+1 counters; 32 bits each is the sizing used in [22].
    bits += static_cast<std::uint64_t>(config_.geometry.associativity + 1) * 32;
  }
  return bits;
}

void PartitionedCacheSystem::reset() {
  l2_->reset();
  for (auto& p : profilers_) p->reset();
}

}  // namespace plrupart::core
