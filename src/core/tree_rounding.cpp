#include "plrupart/core/tree_rounding.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace plrupart::core {

Partition round_to_pow2_partition(const Partition& ideal, std::uint32_t total_ways) {
  validate_partition(ideal, total_ways);
  PLRUPART_ASSERT(is_pow2(total_ways));
  const auto n = ideal.size();

  // Floor every allocation to a power of two. Since 2^floor(log2(w)) <= w the
  // running sum stays <= total_ways.
  Partition p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint32_t>(floor_pow2(ideal[i]));
  std::uint32_t sum = std::accumulate(p.begin(), p.end(), 0U);

  // Grow until the budget is exactly consumed. At every step some block of
  // size <= total_ways - sum exists (all quantities are powers of two and sum
  // is a multiple of the smallest block; see DESIGN.md), so doubling the
  // most-deprived eligible core always makes progress.
  while (sum < total_ways) {
    const std::uint32_t gap = total_ways - sum;
    std::size_t best = n;
    double best_deficit = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] > gap) continue;  // doubling would overshoot
      const double deficit =
          static_cast<double>(ideal[i]) / static_cast<double>(p[i]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = i;
      }
    }
    PLRUPART_ASSERT_MSG(best < n, "no doubling candidate: Kraft argument violated");
    sum += p[best];
    p[best] *= 2;
  }
  validate_partition(p, total_ways);
  return p;
}

std::vector<WayMask> place_pow2_blocks(const Partition& pow2_sizes,
                                       std::uint32_t total_ways) {
  validate_partition(pow2_sizes, total_ways);
  for (const auto s : pow2_sizes) PLRUPART_ASSERT_MSG(is_pow2(s), "block not a power of two");

  // Largest-first placement at the lowest free aligned offset. With Kraft
  // equality this always tiles exactly (buddy allocation with no frees).
  std::vector<std::size_t> order(pow2_sizes.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pow2_sizes[a] > pow2_sizes[b];
  });

  std::vector<WayMask> masks(pow2_sizes.size(), 0);
  std::uint32_t cursor = 0;
  for (const std::size_t i : order) {
    const std::uint32_t size = pow2_sizes[i];
    PLRUPART_ASSERT_MSG(cursor % size == 0, "buddy placement lost alignment");
    masks[i] = way_range_mask(cursor, size);
    cursor += size;
  }
  PLRUPART_ASSERT(cursor == total_ways);
  return masks;
}

Partition min_misses_tree(const std::vector<MissCurve>& curves,
                          std::uint32_t total_ways) {
  PLRUPART_ASSERT(!curves.empty());
  PLRUPART_ASSERT(curves.size() <= total_ways);
  PLRUPART_ASSERT(is_pow2(total_ways));
  const auto n = static_cast<std::uint32_t>(curves.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Same DP as min_misses_optimal, with allocations restricted to powers of
  // two. Kraft equality (exact budget) is enforced by the DP itself; any such
  // multiset is placeable as aligned blocks (place_pow2_blocks).
  std::vector<std::vector<double>> f(n + 1, std::vector<double>(total_ways + 1, kInf));
  std::vector<std::vector<std::uint32_t>> choice(n,
                                                 std::vector<std::uint32_t>(total_ways + 1, 0));
  f[n][0] = 0.0;
  for (std::uint32_t i = n; i-- > 0;) {
    for (std::uint32_t b = 1; b <= total_ways; ++b) {
      for (std::uint32_t w = 1; w <= b; w *= 2) {
        if (f[i + 1][b - w] == kInf) continue;
        const double cost = curves[i].misses(w) + f[i + 1][b - w];
        if (cost < f[i][b]) {
          f[i][b] = cost;
          choice[i][b] = w;
        }
      }
    }
  }
  PLRUPART_ASSERT_MSG(f[0][total_ways] < kInf, "no tree-feasible partition found");

  Partition p(n);
  std::uint32_t b = total_ways;
  for (std::uint32_t i = 0; i < n; ++i) {
    p[i] = choice[i][b];
    b -= p[i];
  }
  validate_partition(p, total_ways);
  return p;
}

TreeEnforcement make_tree_enforcement(const cache::TreePlru& tree,
                                      const Partition& pow2_sizes,
                                      std::uint32_t total_ways) {
  TreeEnforcement out;
  out.masks = place_pow2_blocks(pow2_sizes, total_ways);
  out.vectors.reserve(out.masks.size());
  for (const WayMask m : out.masks) {
    const auto fv = tree.derive_force_vectors(m);
    PLRUPART_ASSERT_MSG(fv.has_value(), "pow2 block must be vector-expressible");
    out.vectors.push_back(*fv);
  }
  return out;
}

}  // namespace plrupart::core
