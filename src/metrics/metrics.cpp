#include "plrupart/metrics/metrics.hpp"

namespace plrupart::metrics {

double throughput(const std::vector<double>& ipcs) {
  double t = 0.0;
  for (const double v : ipcs) {
    PLRUPART_ASSERT(v >= 0.0);
    t += v;
  }
  return t;
}

double weighted_speedup(const std::vector<double>& ipcs,
                        const std::vector<double>& isolation_ipcs) {
  PLRUPART_ASSERT(ipcs.size() == isolation_ipcs.size());
  PLRUPART_ASSERT(!ipcs.empty());
  double ws = 0.0;
  for (std::size_t i = 0; i < ipcs.size(); ++i) {
    PLRUPART_ASSERT(isolation_ipcs[i] > 0.0);
    ws += ipcs[i] / isolation_ipcs[i];
  }
  return ws;
}

double harmonic_mean_speedup(const std::vector<double>& ipcs,
                             const std::vector<double>& isolation_ipcs) {
  PLRUPART_ASSERT(ipcs.size() == isolation_ipcs.size());
  PLRUPART_ASSERT(!ipcs.empty());
  double denom = 0.0;
  for (std::size_t i = 0; i < ipcs.size(); ++i) {
    PLRUPART_ASSERT(ipcs[i] > 0.0);
    denom += isolation_ipcs[i] / ipcs[i];
  }
  return static_cast<double>(ipcs.size()) / denom;
}

PerfMetrics compute(const std::vector<double>& ipcs,
                    const std::vector<double>& isolation_ipcs) {
  return PerfMetrics{.throughput = throughput(ipcs),
                     .weighted_speedup = weighted_speedup(ipcs, isolation_ipcs),
                     .harmonic_mean = harmonic_mean_speedup(ipcs, isolation_ipcs)};
}

}  // namespace plrupart::metrics
