// Tolerance-aware CSV comparison for the benchmark baseline gate.
//
//   csv_compare <expected.csv> <actual.csv> [rel_tol]
//
// Headers must match exactly; every data cell must either match as a string
// or parse as two numbers within `rel_tol` (default 0.02) relative tolerance:
//   |a - b| <= abs_tol + rel_tol * max(|a|, |b|)
// The simulation itself is bit-deterministic, so the tolerance only absorbs
// floating-point summary arithmetic (ratios, geomeans, power sums) differing
// across compilers/libms — an accuracy regression in the simulated metrics is
// far outside it. Exits 0 on match, 1 with a per-cell report otherwise.
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "tool_version.hpp"

namespace {

constexpr double kAbsTol = 1e-9;

std::optional<double> parse_double(const std::string& s) {
  double v = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  for (;;) {
    const auto comma = line.find(',', begin);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(begin));
      return fields;
    }
    fields.push_back(line.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

std::vector<std::string> read_lines(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "csv_compare: cannot open '%s'\n", path);
    std::exit(2);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
    plrupart::tools::print_version("plrupart-csv-compare");
    return 0;
  }
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: plrupart-csv-compare <expected.csv> <actual.csv> [rel_tol]\n");
    return 2;
  }
  double rel_tol = 0.02;
  if (argc == 4) {
    const auto parsed = parse_double(argv[3]);
    if (!parsed) {
      std::fprintf(stderr, "csv_compare: rel_tol '%s' is not a number\n", argv[3]);
      return 2;
    }
    rel_tol = *parsed;
  }

  const auto expected = read_lines(argv[1]);
  const auto actual = read_lines(argv[2]);
  if (expected.empty()) {
    std::fprintf(stderr, "csv_compare: baseline '%s' is empty\n", argv[1]);
    return 2;
  }
  int failures = 0;
  if (expected.size() != actual.size()) {
    std::fprintf(stderr, "csv_compare: row count differs: expected %zu, got %zu\n",
                 expected.size(), actual.size());
    ++failures;
  }
  if (!expected.empty() && !actual.empty() && expected[0] != actual[0]) {
    std::fprintf(stderr, "csv_compare: header differs:\n  expected: %s\n  actual:   %s\n",
                 expected[0].c_str(), actual[0].c_str());
    return 1;
  }

  const std::size_t rows = std::min(expected.size(), actual.size());
  for (std::size_t r = 1; r < rows; ++r) {
    const auto e = split_row(expected[r]);
    const auto a = split_row(actual[r]);
    if (e.size() != a.size()) {
      std::fprintf(stderr, "csv_compare: row %zu field count differs (%zu vs %zu)\n", r,
                   e.size(), a.size());
      ++failures;
      continue;
    }
    for (std::size_t f = 0; f < e.size(); ++f) {
      if (e[f] == a[f]) continue;
      const auto ev = parse_double(e[f]);
      const auto av = parse_double(a[f]);
      if (ev && av) {
        const double diff = std::fabs(*ev - *av);
        const double bound = kAbsTol + rel_tol * std::max(std::fabs(*ev), std::fabs(*av));
        if (diff <= bound) continue;
        std::fprintf(stderr,
                     "csv_compare: row %zu field %zu: %.9g vs %.9g "
                     "(diff %.3g > tol %.3g)\n",
                     r, f, *ev, *av, diff, bound);
      } else {
        std::fprintf(stderr, "csv_compare: row %zu field %zu: '%s' vs '%s'\n", r, f,
                     e[f].c_str(), a[f].c_str());
      }
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "csv_compare: %d mismatching cell(s) between %s and %s\n",
                 failures, argv[1], argv[2]);
    return 1;
  }
  return 0;
}
