// Shared --version output for the installed tools.
//
// The semver comes from the generated plrupart/version.hpp (single-sourced in
// cmake/version.cmake), so the printed string always matches what
// plrupartConfigVersion.cmake and plrupart.pc advertise; the git describe
// suffix pins the exact tree the binary was built from ("unknown" for
// tarball builds).
#pragma once

#include <cstdio>

#include "plrupart/version.hpp"

#ifndef PLRUPART_GIT_DESCRIBE
#define PLRUPART_GIT_DESCRIBE "unknown"
#endif

namespace plrupart::tools {

inline void print_version(const char* tool_name) {
  std::printf("%s %s (git %s)\n", tool_name, kVersionString, PLRUPART_GIT_DESCRIBE);
}

}  // namespace plrupart::tools
