// plrupart-trace-convert: bring external traces into the native formats.
//
//   plrupart-trace-convert --in champsim.trace --from champsim --out gzip.v2.trace
//   plrupart-trace-convert --in pinatrace.out --from pin --out app.v2.trace
//   plrupart-trace-convert --in old.v1.trace --out old.v2.trace          # v1 -> v2
//   plrupart-trace-convert --in big.v2.trace --to v1 --out big.v1.trace  # v2 -> v1
//
// Flags:
//   --in PATH      input trace (required)
//   --out PATH     output trace (required)
//   --from KIND    auto | native | champsim | pin            [auto]
//                  (auto only recognizes native headers — name captured
//                  formats explicitly)
//   --to FMT       v1 (text) | v2 (compact binary)           [v2]
//   --max-ops N    stop after N memory operations (0 = all)  [0]
//
// Conversion streams in O(buffer) memory at both ends, so multi-GB captures
// convert without loading anything whole. The result drives simulations via
// `plrupart --trace <file>` (one file per core).
#include <algorithm>
#include <cstdio>
#include <string_view>

#include "common/cli.hpp"
#include "plrupart/sim/trace_convert.hpp"
#include "tool_version.hpp"

using namespace plrupart;

namespace {

void print_usage() {
  std::printf(
      "plrupart-trace-convert: convert ChampSim/PIN/native traces to plrupart-trace\n"
      "\n"
      "  plrupart-trace-convert --in IN --out OUT [--from auto|native|champsim|pin]\n"
      "                         [--to v1|v2] [--max-ops N]\n"
      "\n"
      "  --from champsim   64-byte binary input_instr records (decompress .xz first)\n"
      "  --from pin        '<ip>: <R|W> <addr>' text lines (pinatrace)\n"
      "  --from native     plrupart-trace v1/v2 (re-encode; also what auto detects)\n"
      "  --to v2           compact binary (varint gap + delta addresses), the default\n"
      "  --to v1           line-oriented text, human-readable\n"
      "  --version         print packaged version + git describe\n");
}

bool check_args(int argc, char** argv) {
  static constexpr std::string_view kValueFlags[] = {"--in", "--out", "--from", "--to",
                                                     "--max-ops"};
  static constexpr std::string_view kBoolFlags[] = {"--help", "-h", "--version"};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto name = arg.substr(0, arg.find('='));
    if (std::find(std::begin(kBoolFlags), std::end(kBoolFlags), name) !=
        std::end(kBoolFlags))
      continue;
    if (std::find(std::begin(kValueFlags), std::end(kValueFlags), name) !=
        std::end(kValueFlags)) {
      if (arg.find('=') == std::string_view::npos) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "plrupart-trace-convert: flag '%s' requires a value\n",
                       argv[i]);
          return false;
        }
        ++i;
      }
      continue;
    }
    std::fprintf(stderr, "plrupart-trace-convert: unknown argument '%s' (see --help)\n",
                 argv[i]);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (!check_args(argc, argv)) return 1;
    if (cli.has("--version")) {
      tools::print_version("plrupart-trace-convert");
      return 0;
    }
    if (cli.has("--help") || cli.has("-h") || argc == 1) {
      print_usage();
      return 0;
    }
    const auto in = cli.get_string("--in", "");
    const auto out = cli.get_string("--out", "");
    if (in.empty() || out.empty()) {
      std::fprintf(stderr, "plrupart-trace-convert: --in and --out are required\n");
      return 1;
    }
    const auto kind = sim::trace_kind_from_name(cli.get_string("--from", "auto"));
    const auto format = sim::trace_format_from_name(cli.get_string("--to", "v2"));
    const auto max_ops = parse_u64(cli.get_string("--max-ops", "0"), "value for --max-ops");

    const auto stats = sim::convert_trace(in, out, kind, format, max_ops);
    std::fprintf(stderr,
                 "plrupart-trace-convert: wrote %llu ops (%s) to '%s' from %llu input "
                 "records of '%s'\n",
                 static_cast<unsigned long long>(stats.ops_out),
                 std::string(sim::trace_format_name(stats.out_format)).c_str(),
                 out.c_str(), static_cast<unsigned long long>(stats.records_in),
                 in.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plrupart-trace-convert: %s\n", e.what());
    return 1;
  }
}
