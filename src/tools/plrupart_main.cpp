// plrupart: the unified simulation driver.
//
// The one entry point for running named policy/partitioning configurations
// over the paper's workloads and getting machine-readable results out. The
// driver only parses flags into a runner::RunMatrix; expansion, sharding,
// parallel execution, and CSV emission all live in src/runner/.
//
//   plrupart --list-workloads            enumerate catalog benchmarks + Table II mixes
//   plrupart --list-configs              enumerate the paper's configuration acronyms
//   plrupart --workload 2T_04 [...]      run one or more Table II workloads
//   plrupart --benchmarks twolf,art [..] run an ad-hoc benchmark mix
//   plrupart --trace a.trace,b.trace     run captured trace files (one per core)
//   plrupart --merge-csv a.csv,b.csv     merge + validate shard outputs
//
// Matrix axes (cartesian product, canonical order = workload > config > size):
//   --configs A,B,...  L2 configuration acronyms      [M-0.75N]
//   --l2-kb-sweep LIST shared L2 sizes in KB          [1024]
// (--config and --l2-kb remain as single-value spellings of the same axes.)
//
// Common run flags:
//   --instr N          per-thread measured instructions   [1000000]
//   --warmup N         warmup instructions                [instr/2]
//   --assoc N          L2 associativity                   [16]
//   --line N           line size in bytes                 [128]
//   --interval N       repartition interval in cycles     [1000000]
//   --sampling N       set sampling ratio (1 in N)        [32]
//   --seed N           root seed (per-job seeds derive from it)  [1]
//   --csv PATH         write CSV to PATH instead of stdout
//
// Scale-out flags:
//   --threads N        worker threads; 0 = one per hardware thread  [0]
//   --shard i/n        run slice i of an n-way split of the matrix
//   --sim-threads K    intra-run set-shard workers per job; 0 = hardware  [1]
//   --progress         per-job completion lines on stderr
//
// Timing flags:
//   --timing MODE      functional (default) or timed: the event-driven
//                      MSHR/banked-DRAM overlay; partition decisions are
//                      identical in both modes, timed adds CSV columns
//
// Resilience flags:
//   --journal DIR      durable per-job journal; crash-safe atomic records
//   --resume           skip jobs already journaled in --journal DIR
//   --job-retries N    extra attempts for transient per-job failures  [0]
//   --retry-backoff-ms B  base of the capped exponential backoff      [100]
//   --job-timeout S    per-job watchdog deadline in seconds; 0 = none [0]
//   --fault-inject SPEC  deterministic fault injection, e.g. read:0.01
//                      (also via the PLRUPART_FAULT_INJECT environment
//                      variable; the flag wins)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cli.hpp"
#include "plrupart/common/assert.hpp"
#include "plrupart/core/partitioned_cache.hpp"
#include "tool_version.hpp"
#include "plrupart/runner/run_spec.hpp"
#include "plrupart/runner/sweep_executor.hpp"
#include "plrupart/workloads/catalog.hpp"
#include "plrupart/workloads/trace_workload.hpp"
#include "plrupart/workloads/workload_table.hpp"

using namespace plrupart;

namespace {

/// Human descriptions for --list-configs; the authoritative name list is
/// core::CpaConfig::known_acronyms() so new acronyms can't silently drift.
std::string describe_config(const std::string& acronym) {
  if (acronym == "C-L") return "owner counters + LRU (the paper's baseline CPA)";
  if (acronym == "M-L") return "way masks + LRU";
  if (acronym == "M-1.0N") return "way masks + NRU, eSDH scale 1.0";
  if (acronym == "M-0.75N") return "way masks + NRU, eSDH scale 0.75";
  if (acronym == "M-0.5N") return "way masks + NRU, eSDH scale 0.5";
  if (acronym == "M-BT") return "way masks + binary-tree pseudo-LRU (ID-decoder profiling)";
  if (acronym == "M-RRIP") return "way masks + SRRIP (extension)";
  if (acronym == "NOPART-L") return "unpartitioned LRU";
  if (acronym == "NOPART-N") return "unpartitioned NRU";
  if (acronym == "NOPART-BT") return "unpartitioned binary-tree pseudo-LRU";
  if (acronym == "NOPART-R") return "unpartitioned random replacement";
  if (acronym == "NOPART-RRIP") return "unpartitioned SRRIP (extension)";
  return "";
}

void print_usage() {
  std::printf(
      "plrupart: cache-partitioning simulation driver\n"
      "\n"
      "  plrupart --list-workloads             list catalog benchmarks and Table II mixes\n"
      "  plrupart --list-configs               list L2 configuration acronyms\n"
      "  plrupart --workload ID[,ID...]        run Table II workloads (or 'all')\n"
      "  plrupart --benchmarks NAME[,NAME...]  run an ad-hoc benchmark mix\n"
      "  plrupart --trace FILE[,FILE...]       run captured traces, one file per core\n"
      "                                        (v1/v2 auto-detected; see\n"
      "                                        plrupart-trace-convert for ChampSim/PIN)\n"
      "  plrupart --merge-csv A.csv,B.csv,...  merge + validate shard CSVs\n"
      "\n"
      "matrix axes: --configs ACRO[,ACRO...] [M-0.75N]   --l2-kb-sweep KB[,KB...] [1024]\n"
      "             (--config / --l2-kb are the single-value spellings)\n"
      "run flags:   --instr N [1000000]  --warmup N [instr/2]  --assoc N [16]\n"
      "             --line N [128]  --interval N [1000000]  --sampling N [32]\n"
      "             --seed N [1]  --csv PATH (default: stdout)\n"
      "scale-out:   --threads N [0 = all hardware threads]  --shard i/n  --progress\n"
      "             --sim-threads K [1]  intra-run set-shard workers per job\n"
      "                                  (0 = all hardware threads; results are\n"
      "                                  byte-identical to serial at any K)\n"
      "timing:      --timing MODE [functional]  functional | timed; timed runs the\n"
      "                             event-driven MSHR/banked-DRAM overlay (same\n"
      "                             partition decisions, extra CSV columns)\n"
      "resilience:  --journal DIR   crash-safe per-job journal (atomic records)\n"
      "             --resume        continue a journaled sweep, skipping done jobs\n"
      "             --job-retries N [0]  extra attempts for transient failures\n"
      "             --retry-backoff-ms B [100]  backoff base between attempts\n"
      "             --job-timeout S [0 = none]  per-job watchdog in seconds\n"
      "             --fault-inject SITE:P[,SITE:P...]  deterministic fault\n"
      "                             injection; sites read, write, worker (also\n"
      "                             via PLRUPART_FAULT_INJECT; the flag wins)\n"
      "other:       --version  print packaged version + git describe\n");
}

void list_workloads() {
  std::printf("catalog benchmarks (%zu):\n", workloads::catalog().size());
  for (const auto& p : workloads::catalog()) std::printf("  %s\n", p.name.c_str());
  std::printf("\nTable II workloads (%zu):\n", workloads::all_workloads().size());
  for (const auto& w : workloads::all_workloads()) {
    std::printf("  %-6s ", w.id.c_str());
    for (std::size_t i = 0; i < w.benchmarks.size(); ++i)
      std::printf("%s%s", i ? "," : "", w.benchmarks[i].c_str());
    std::printf("\n");
  }
}

void list_configs() {
  for (const auto& name : core::CpaConfig::known_acronyms())
    std::printf("  %-12s %s\n", name.c_str(), describe_config(name).c_str());
}

/// Integer flag with bounds, so typos like `--instr -1` (or an --assoc past
/// 2^32) fail loudly instead of wrapping or truncating.
std::uint64_t get_count(const Cli& cli, std::string_view name, std::uint64_t def,
                        std::int64_t min,
                        std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
  const auto v = cli.get_int(name, static_cast<std::int64_t>(def));
  PLRUPART_ASSERT_MSG(v >= min && v <= max,
                      "flag " + std::string(name) + " must be in [" + std::to_string(min) +
                          ", " + std::to_string(max) + "], got " + std::to_string(v));
  return static_cast<std::uint64_t>(v);
}

/// "i/n" -> (i, n) with i < n. Anything else fails loudly.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& text) {
  const auto slash = text.find('/');
  PLRUPART_ASSERT_MSG(slash != std::string::npos && slash > 0 && slash + 1 < text.size(),
                      "--shard expects i/n (e.g. 0/4), got '" + text + "'");
  const auto i = static_cast<std::size_t>(
      parse_u64(std::string_view(text).substr(0, slash), "value for --shard"));
  const auto n = static_cast<std::size_t>(
      parse_u64(std::string_view(text).substr(slash + 1), "value for --shard"));
  PLRUPART_ASSERT_MSG(n >= 1 && i < n, "--shard index must satisfy i < n, got '" + text + "'");
  return {i, n};
}

/// Parse all matrix-shaping flags. The workload axis is filled by run().
runner::RunMatrix parse_matrix(const Cli& cli) {
  runner::RunMatrix m;

  PLRUPART_ASSERT_MSG(!(cli.has("--config") && cli.has("--configs")),
                      "--config and --configs are mutually exclusive");
  m.configs = cli.has("--configs") ? split_list(cli.get_string("--configs", ""))
                                   : std::vector<std::string>{cli.get_string(
                                         "--config", "M-0.75N")};
  PLRUPART_ASSERT_MSG(!m.configs.empty(), "--configs needs at least one acronym");

  PLRUPART_ASSERT_MSG(!(cli.has("--l2-kb") && cli.has("--l2-kb-sweep")),
                      "--l2-kb and --l2-kb-sweep are mutually exclusive");
  if (cli.has("--l2-kb-sweep")) {
    m.l2_kb.clear();
    for (const auto& kb : split_list(cli.get_string("--l2-kb-sweep", "")))
      m.l2_kb.push_back(parse_u64(kb, "value for --l2-kb-sweep"));
    PLRUPART_ASSERT_MSG(!m.l2_kb.empty(), "--l2-kb-sweep needs at least one size");
  } else {
    m.l2_kb = {get_count(cli, "--l2-kb", 1024, 1)};
  }

  constexpr auto kU32Max = std::numeric_limits<std::uint32_t>::max();
  m.assoc = static_cast<std::uint32_t>(get_count(cli, "--assoc", 16, 1, kU32Max));
  m.line = static_cast<std::uint32_t>(get_count(cli, "--line", 128, 1, kU32Max));
  // The paper's fixed private-L1D geometry; the line size tracks --line so L1
  // and L2 stay coherent.
  m.l1d = cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = m.line};
  m.instr = get_count(cli, "--instr", 1'000'000, 1);
  m.warmup = get_count(cli, "--warmup", m.instr / 2, 0);
  m.interval_cycles = get_count(cli, "--interval", 1'000'000, 1);
  m.sampling_ratio =
      static_cast<std::uint32_t>(get_count(cli, "--sampling", 32, 1, kU32Max));
  m.seed = get_count(cli, "--seed", 1, 0);
  m.sim_threads = static_cast<std::uint32_t>(
      get_count(cli, "--sim-threads", 1, 0, kU32Max));
  m.timing = sim::timing_mode_from_string(cli.get_string("--timing", "functional"));
  return m;
}

/// --csv output with crash-safe publication. The writability of the path is
/// probed up front, BEFORE any simulation work: an unwritable path must fail
/// in milliseconds, not after a multi-hour sweep has produced results with
/// nowhere to go. Rows are buffered and published atomically (tmp + fsync +
/// rename) on finish(), so a crash mid-sweep can never leave a truncated,
/// plausible-looking CSV — the old file (if any) survives intact instead.
class CsvOutput {
 public:
  explicit CsvOutput(const Cli& cli) : path_(cli.get_string("--csv", "-")) {
    if (!to_stdout()) AtomicFile::probe_writable(path_);
  }
  [[nodiscard]] std::ostream& stream() {
    return to_stdout() ? static_cast<std::ostream&>(std::cout) : buf_;
  }
  void finish() {
    if (!to_stdout()) AtomicFile::write_file(path_, buf_.str());
  }

 private:
  [[nodiscard]] bool to_stdout() const noexcept { return path_ == "-"; }
  std::string path_;
  std::ostringstream buf_;
};

int merge(const Cli& cli) {
  const auto paths = split_list(cli.get_string("--merge-csv", ""));
  PLRUPART_ASSERT_MSG(!paths.empty(), "--merge-csv needs at least one input CSV");
  // Opening the output truncates it — make sure that never destroys an input
  // shard. Compare resolved paths so `./shard0.csv` vs `shard0.csv` is caught.
  const auto out_path = cli.get_string("--csv", "-");
  if (out_path != "-") {
    std::error_code ec;
    const auto out_canon = std::filesystem::weakly_canonical(out_path, ec);
    for (const auto& in : paths) {
      std::error_code in_ec;
      const auto in_canon = std::filesystem::weakly_canonical(in, in_ec);
      PLRUPART_ASSERT_MSG(in != out_path && (ec || in_ec || in_canon != out_canon),
                          "--csv output '" + out_path +
                              "' is also a --merge-csv input; refusing to overwrite "
                              "shard data");
    }
  }
  CsvOutput out(cli);
  runner::merge_csv(paths, out.stream());
  out.finish();
  return 0;
}

/// Fault spec from --fault-inject or the PLRUPART_FAULT_INJECT environment
/// variable (the flag wins); all-zero when neither is set.
FaultSpec parse_faults(const Cli& cli) {
  std::string text = cli.get_string("--fault-inject", "");
  if (text.empty()) {
    if (const char* env = std::getenv("PLRUPART_FAULT_INJECT")) text = env;
  }
  if (text.empty()) return FaultSpec{};
  return FaultSpec::parse(text);
}

int run(const Cli& cli) {
  if (cli.has("--merge-csv")) {
    PLRUPART_ASSERT_MSG(!cli.has("--workload") && !cli.has("--benchmarks") &&
                            !cli.has("--trace"),
                        "--merge-csv cannot be combined with a simulation run");
    return merge(cli);
  }

  runner::RunMatrix matrix = parse_matrix(cli);

  // Resolve the workload axis: named Table II workloads, one ad-hoc mix, or
  // one trace-backed workload (captured trace files, one per core).
  const int sources = (cli.has("--workload") ? 1 : 0) + (cli.has("--benchmarks") ? 1 : 0) +
                      (cli.has("--trace") ? 1 : 0);
  if (sources > 1) {
    std::fprintf(stderr,
                 "plrupart: --workload, --benchmarks, and --trace are mutually exclusive\n");
    return 1;
  }
  if (cli.has("--trace")) {
    const auto paths = split_list(cli.get_string("--trace", ""));
    if (paths.empty()) {
      std::fprintf(stderr, "plrupart: --trace needs at least one trace file\n");
      return 1;
    }
    matrix.workloads.push_back(workloads::workload_from_traces(paths));
  } else if (auto ids = cli.value("--workload")) {
    if (*ids == "all") {
      matrix.workloads = workloads::all_workloads();
    } else {
      for (const auto& id : split_list(*ids)) {
        bool found = false;
        for (const auto& w : workloads::all_workloads()) {
          if (w.id == id) {
            matrix.workloads.push_back(w);
            found = true;
            break;
          }
        }
        if (!found) {
          std::fprintf(stderr, "plrupart: unknown workload id '%s' (see --list-workloads)\n",
                       id.c_str());
          return 1;
        }
      }
    }
  } else {
    workloads::Workload w;
    w.id = "adhoc";
    w.benchmarks = split_list(cli.get_string("--benchmarks", ""));
    if (w.benchmarks.empty()) {
      print_usage();
      return 1;
    }
    for (const auto& name : w.benchmarks) {
      if (!workloads::has_benchmark(name)) {
        std::fprintf(stderr, "plrupart: unknown benchmark '%s' (see --list-workloads)\n",
                     name.c_str());
        return 1;
      }
    }
    matrix.workloads.push_back(w);
  }

  // Validate the whole matrix before any output, so a bad --config/geometry/
  // thread-count fails cleanly instead of after the CSV header (or earlier
  // rows of the sweep) has been emitted.
  matrix.validate();

  // Expand, optionally slice, and fan out. Jobs land in canonical order, so
  // the CSV is byte-identical at any --threads value, and shard outputs merge
  // back (via --merge-csv) into exactly the unsharded file.
  std::vector<runner::RunSpec> jobs;
  if (const auto shard = cli.value("--shard")) {
    const auto [i, n] = parse_shard(*shard);
    jobs = matrix.shard(i, n);
  } else {
    jobs = matrix.expand();
  }

  constexpr auto kU32Max = std::numeric_limits<std::uint32_t>::max();
  runner::SweepOptions opts;
  opts.threads = static_cast<std::size_t>(get_count(cli, "--threads", 0, 0, kU32Max));
  opts.progress = cli.has("--progress");
  opts.job_retries =
      static_cast<std::uint32_t>(get_count(cli, "--job-retries", 0, 0, 1000));
  opts.retry_backoff_ms =
      static_cast<std::uint32_t>(get_count(cli, "--retry-backoff-ms", 100, 0, kU32Max));
  opts.job_timeout_s = cli.get_double("--job-timeout", 0.0);
  PLRUPART_ASSERT_MSG(opts.job_timeout_s >= 0.0, "--job-timeout must be >= 0");
  opts.journal_dir = cli.get_string("--journal", "");
  opts.resume = cli.has("--resume");
  PLRUPART_ASSERT_MSG(!opts.resume || !opts.journal_dir.empty(),
                      "--resume requires --journal <dir>");
  opts.faults = parse_faults(cli);
  opts.fault_seed = matrix.seed;  // fault plans replay from the root seed

  CsvOutput out(cli);  // fail on a bad --csv path before simulating
  runner::SweepExecutor(opts).run_csv(std::move(jobs), out.stream());
  out.finish();
  return 0;
}

/// Reject misspelled flags and stray positionals: a silently ignored
/// `--asoc 99` would otherwise produce normal-looking CSV for the wrong
/// configuration. Returns false (after printing the offender) on error.
bool check_args(int argc, char** argv) {
  static constexpr std::string_view kValueFlags[] = {
      "--workload", "--benchmarks", "--config",   "--configs",  "--instr",
      "--warmup",   "--l2-kb",      "--l2-kb-sweep", "--assoc", "--line",
      "--interval", "--sampling",   "--seed",     "--csv",      "--threads",
      "--shard",    "--merge-csv",  "--trace",    "--sim-threads", "--timing",
      "--journal",  "--job-retries", "--retry-backoff-ms", "--job-timeout",
      "--fault-inject"};
  static constexpr std::string_view kBoolFlags[] = {"--help",         "-h",
                                                    "--version",      "--list-workloads",
                                                    "--list-configs", "--progress",
                                                    "--resume"};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto name = arg.substr(0, arg.find('='));
    if (std::find(std::begin(kBoolFlags), std::end(kBoolFlags), name) !=
        std::end(kBoolFlags))
      continue;
    if (std::find(std::begin(kValueFlags), std::end(kValueFlags), name) !=
        std::end(kValueFlags)) {
      if (arg.find('=') == std::string_view::npos) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "plrupart: flag '%s' requires a value\n", argv[i]);
          return false;
        }
        ++i;  // consume the value token
      }
      continue;
    }
    std::fprintf(stderr, "plrupart: unknown argument '%s' (see --help)\n", argv[i]);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (!check_args(argc, argv)) return 1;
    if (cli.has("--version")) {
      tools::print_version("plrupart");
      return 0;
    }
    if (cli.has("--help") || cli.has("-h") || argc == 1) {
      print_usage();
      return 0;
    }
    if (cli.has("--list-workloads")) {
      list_workloads();
      return 0;
    }
    if (cli.has("--list-configs")) {
      list_configs();
      return 0;
    }
    return run(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plrupart: %s\n", e.what());
    return 1;
  }
}
