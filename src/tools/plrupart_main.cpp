// plrupart: the unified simulation driver.
//
// The one entry point for running named policy/partitioning configurations
// over the paper's workloads and getting machine-readable results out. Later
// PRs extend this binary for sharded/batched large-scale runs; keep new
// functionality flag-driven and CSV-emitting.
//
//   plrupart --list-workloads            enumerate catalog benchmarks + Table II mixes
//   plrupart --list-configs              enumerate the paper's configuration acronyms
//   plrupart --workload 2T_04 [...]      run one or more Table II workloads
//   plrupart --benchmarks twolf,art [..] run an ad-hoc benchmark mix
//
// Common run flags:
//   --config M-0.75N   L2 configuration acronym (see --list-configs)
//   --instr N          per-thread measured instructions   [1000000]
//   --warmup N         warmup instructions                [instr/2]
//   --l2-kb N          shared L2 size in KB               [1024]
//   --assoc N          L2 associativity                   [16]
//   --line N           line size in bytes                 [128]
//   --interval N       repartition interval in cycles     [1000000]
//   --sampling N       set sampling ratio (1 in N)        [32]
//   --seed N           trace generation seed              [1]
//   --csv PATH         write CSV to PATH instead of stdout
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "sim/cmp_simulator.hpp"
#include "workloads/catalog.hpp"
#include "workloads/generators.hpp"
#include "workloads/workload_table.hpp"

using namespace plrupart;

namespace {

/// Human descriptions for --list-configs; the authoritative name list is
/// core::CpaConfig::known_acronyms() so new acronyms can't silently drift.
std::string describe_config(const std::string& acronym) {
  if (acronym == "C-L") return "owner counters + LRU (the paper's baseline CPA)";
  if (acronym == "M-L") return "way masks + LRU";
  if (acronym == "M-1.0N") return "way masks + NRU, eSDH scale 1.0";
  if (acronym == "M-0.75N") return "way masks + NRU, eSDH scale 0.75";
  if (acronym == "M-0.5N") return "way masks + NRU, eSDH scale 0.5";
  if (acronym == "M-BT") return "way masks + binary-tree pseudo-LRU (ID-decoder profiling)";
  if (acronym == "M-RRIP") return "way masks + SRRIP (extension)";
  if (acronym == "NOPART-L") return "unpartitioned LRU";
  if (acronym == "NOPART-N") return "unpartitioned NRU";
  if (acronym == "NOPART-BT") return "unpartitioned binary-tree pseudo-LRU";
  if (acronym == "NOPART-R") return "unpartitioned random replacement";
  if (acronym == "NOPART-RRIP") return "unpartitioned SRRIP (extension)";
  return "";
}

void print_usage() {
  std::printf(
      "plrupart: cache-partitioning simulation driver\n"
      "\n"
      "  plrupart --list-workloads             list catalog benchmarks and Table II mixes\n"
      "  plrupart --list-configs               list L2 configuration acronyms\n"
      "  plrupart --workload ID[,ID...]        run Table II workloads (or 'all')\n"
      "  plrupart --benchmarks NAME[,NAME...]  run an ad-hoc benchmark mix\n"
      "\n"
      "run flags: --config ACRO [M-0.75N]  --instr N [1000000]  --warmup N [instr/2]\n"
      "           --l2-kb N [1024]  --assoc N [16]  --line N [128]\n"
      "           --interval N [1000000]  --sampling N [32]  --seed N [1]\n"
      "           --csv PATH (default: stdout)\n");
}

void list_workloads() {
  std::printf("catalog benchmarks (%zu):\n", workloads::catalog().size());
  for (const auto& p : workloads::catalog()) std::printf("  %s\n", p.name.c_str());
  std::printf("\nTable II workloads (%zu):\n", workloads::all_workloads().size());
  for (const auto& w : workloads::all_workloads()) {
    std::printf("  %-6s ", w.id.c_str());
    for (std::size_t i = 0; i < w.benchmarks.size(); ++i)
      std::printf("%s%s", i ? "," : "", w.benchmarks[i].c_str());
    std::printf("\n");
  }
}

void list_configs() {
  for (const auto& name : core::CpaConfig::known_acronyms())
    std::printf("  %-12s %s\n", name.c_str(), describe_config(name).c_str());
}

struct RunOptions {
  std::string config = "M-0.75N";
  std::uint64_t instr = 1'000'000;
  std::uint64_t warmup = 0;  // 0 -> instr/2
  std::uint64_t l2_kb = 1024;
  std::uint32_t assoc = 16;
  std::uint32_t line = 128;
  std::uint64_t interval = 1'000'000;
  std::uint32_t sampling = 32;
  std::uint64_t seed = 1;
};

/// Integer flag with bounds, so typos like `--instr -1` (or an --assoc past
/// 2^32) fail loudly instead of wrapping or truncating.
std::uint64_t get_count(const Cli& cli, std::string_view name, std::uint64_t def,
                        std::int64_t min,
                        std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
  const auto v = cli.get_int(name, static_cast<std::int64_t>(def));
  PLRUPART_ASSERT_MSG(v >= min && v <= max,
                      "flag " + std::string(name) + " must be in [" + std::to_string(min) +
                          ", " + std::to_string(max) + "], got " + std::to_string(v));
  return static_cast<std::uint64_t>(v);
}

RunOptions parse_run_options(const Cli& cli) {
  RunOptions o;
  o.config = cli.get_string("--config", o.config);
  o.instr = get_count(cli, "--instr", o.instr, 1);
  o.warmup = get_count(cli, "--warmup", o.instr / 2, 0);
  o.l2_kb = get_count(cli, "--l2-kb", o.l2_kb, 1);
  constexpr auto kU32Max = std::numeric_limits<std::uint32_t>::max();
  o.assoc = static_cast<std::uint32_t>(get_count(cli, "--assoc", o.assoc, 1, kU32Max));
  o.line = static_cast<std::uint32_t>(get_count(cli, "--line", o.line, 1, kU32Max));
  o.interval = get_count(cli, "--interval", o.interval, 1);
  o.sampling = static_cast<std::uint32_t>(get_count(cli, "--sampling", o.sampling, 1, kU32Max));
  o.seed = get_count(cli, "--seed", o.seed, 0);
  return o;
}

/// The paper's fixed private-L1D geometry (size/assoc); the line size tracks
/// the --line flag so L1 and L2 stay coherent.
cache::Geometry l1_geometry(const RunOptions& o) {
  return cache::Geometry{.size_bytes = 32 * 1024, .associativity = 2, .line_bytes = o.line};
}

cache::Geometry l2_geometry(const RunOptions& o) {
  return cache::Geometry{
      .size_bytes = o.l2_kb * 1024, .associativity = o.assoc, .line_bytes = o.line};
}

sim::SimResult simulate(const std::vector<std::string>& benchmarks, const RunOptions& o) {
  sim::SimConfig cfg;
  cfg.hierarchy.l1d = l1_geometry(o);
  cfg.hierarchy.l2 = core::CpaConfig::from_acronym(
      o.config, static_cast<std::uint32_t>(benchmarks.size()), l2_geometry(o));
  cfg.hierarchy.l2.interval_cycles = o.interval;
  cfg.hierarchy.l2.sampling_ratio = o.sampling;
  cfg.instr_limit = o.instr;
  cfg.warmup_instr = o.warmup;

  std::vector<std::unique_ptr<sim::TraceSource>> traces;
  for (std::uint32_t core = 0; core < benchmarks.size(); ++core) {
    const auto& profile = workloads::benchmark(benchmarks[core]);
    cfg.cores.push_back(profile.core);
    traces.push_back(workloads::make_trace(profile, core, o.seed));
  }
  sim::CmpSimulator sim(std::move(cfg), std::move(traces));
  return sim.run();
}

void emit(CsvWriter& csv, const std::string& workload_id, const sim::SimResult& r) {
  for (std::size_t core = 0; core < r.threads.size(); ++core) {
    const auto& th = r.threads[core];
    const double miss_rate =
        th.mem.l2_accesses ? static_cast<double>(th.mem.l2_misses) /
                                 static_cast<double>(th.mem.l2_accesses)
                           : 0.0;
    csv.row_of(workload_id, r.l2_config, core, th.benchmark, th.instructions, th.cycles,
               th.ipc, th.mem.l1_accesses, th.mem.l1_misses, th.mem.l2_accesses,
               th.mem.l2_misses, miss_rate, r.throughput(), r.wall_cycles, r.repartitions);
  }
}

int run(const Cli& cli) {
  const RunOptions opts = parse_run_options(cli);

  // Resolve the work list: named Table II workloads or one ad-hoc mix.
  if (cli.has("--workload") && cli.has("--benchmarks")) {
    std::fprintf(stderr, "plrupart: --workload and --benchmarks are mutually exclusive\n");
    return 1;
  }
  std::vector<workloads::Workload> jobs;
  if (auto ids = cli.value("--workload")) {
    if (*ids == "all") {
      jobs = workloads::all_workloads();
    } else {
      for (const auto& id : split_list(*ids)) {
        bool found = false;
        for (const auto& w : workloads::all_workloads()) {
          if (w.id == id) {
            jobs.push_back(w);
            found = true;
            break;
          }
        }
        if (!found) {
          std::fprintf(stderr, "plrupart: unknown workload id '%s' (see --list-workloads)\n",
                       id.c_str());
          return 1;
        }
      }
    }
  } else {
    workloads::Workload w;
    w.id = "adhoc";
    w.benchmarks = split_list(cli.get_string("--benchmarks", ""));
    if (w.benchmarks.empty()) {
      print_usage();
      return 1;
    }
    for (const auto& name : w.benchmarks) {
      if (!workloads::has_benchmark(name)) {
        std::fprintf(stderr, "plrupart: unknown benchmark '%s' (see --list-workloads)\n",
                     name.c_str());
        return 1;
      }
    }
    jobs.push_back(w);
  }

  // Validate the full configuration for every job before any output, so a bad
  // --config/geometry/thread-count fails cleanly instead of after the CSV
  // header (or earlier rows, under a multi-workload run) has been emitted.
  const cache::Geometry l2 = l2_geometry(opts);
  l2.validate();
  l1_geometry(opts).validate();
  for (const auto& w : jobs) {
    (void)core::CpaConfig::from_acronym(opts.config, w.threads(), l2);
    PLRUPART_ASSERT_MSG(w.threads() <= opts.assoc,
                        "workload " + w.id + " has " + std::to_string(w.threads()) +
                            " threads but the L2 has only " + std::to_string(opts.assoc) +
                            " ways");
  }

  std::ofstream file;
  const auto csv_path = cli.get_string("--csv", "-");
  if (csv_path != "-") {
    file.open(csv_path);
    if (!file) {
      std::fprintf(stderr, "plrupart: cannot open '%s' for writing\n", csv_path.c_str());
      return 1;
    }
  }
  std::ostream& os = csv_path == "-" ? std::cout : file;

  CsvWriter csv(os, {"workload", "config", "core", "benchmark", "instructions", "cycles",
                     "ipc", "l1_accesses", "l1_misses", "l2_accesses", "l2_misses",
                     "l2_miss_rate", "throughput", "wall_cycles", "repartitions"});
  for (const auto& w : jobs) emit(csv, w.id, simulate(w.benchmarks, opts));
  return 0;
}

/// Reject misspelled flags and stray positionals: a silently ignored
/// `--asoc 99` would otherwise produce normal-looking CSV for the wrong
/// configuration. Returns false (after printing the offender) on error.
bool check_args(int argc, char** argv) {
  static constexpr std::string_view kValueFlags[] = {
      "--workload", "--benchmarks", "--config",   "--instr", "--warmup", "--l2-kb",
      "--assoc",    "--line",       "--interval", "--sampling", "--seed", "--csv"};
  static constexpr std::string_view kBoolFlags[] = {"--help", "-h", "--list-workloads",
                                                    "--list-configs"};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto name = arg.substr(0, arg.find('='));
    if (std::find(std::begin(kBoolFlags), std::end(kBoolFlags), name) !=
        std::end(kBoolFlags))
      continue;
    if (std::find(std::begin(kValueFlags), std::end(kValueFlags), name) !=
        std::end(kValueFlags)) {
      if (arg.find('=') == std::string_view::npos) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "plrupart: flag '%s' requires a value\n", argv[i]);
          return false;
        }
        ++i;  // consume the value token
      }
      continue;
    }
    std::fprintf(stderr, "plrupart: unknown argument '%s' (see --help)\n", argv[i]);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (!check_args(argc, argv)) return 1;
    if (cli.has("--help") || cli.has("-h") || argc == 1) {
      print_usage();
      return 0;
    }
    if (cli.has("--list-workloads")) {
      list_workloads();
      return 0;
    }
    if (cli.has("--list-configs")) {
      list_configs();
      return 0;
    }
    return run(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plrupart: %s\n", e.what());
    return 1;
  }
}
