#include "plrupart/power/complexity.hpp"

#include "plrupart/common/bits.hpp"

namespace plrupart::power {

namespace {
[[nodiscard]] std::uint64_t log2u(std::uint32_t v) { return ilog2_exact(v); }
}  // namespace

ComplexityParams ComplexityParams::from_geometry(const cache::Geometry& g,
                                                 std::uint32_t cores,
                                                 std::uint32_t tag_bits) {
  g.validate();
  return ComplexityParams{.associativity = g.associativity,
                          .sets = g.sets(),
                          .cores = cores,
                          .tag_bits = tag_bits,
                          .line_bytes = g.line_bytes};
}

std::uint64_t replacement_bits_per_set(cache::ReplacementKind kind,
                                       std::uint32_t a) {
  switch (kind) {
    case cache::ReplacementKind::kLru:
      return static_cast<std::uint64_t>(a) * log2u(a);  // A log2(A)
    case cache::ReplacementKind::kNru:
      return a;  // one used bit per line
    case cache::ReplacementKind::kTreePlru:
      return a - 1;  // tree bits
    case cache::ReplacementKind::kRandom:
      return 0;
    case cache::ReplacementKind::kSrrip:
      return 2ULL * a;  // 2-bit RRPV per line
  }
  return 0;
}

std::uint64_t replacement_global_bits(cache::ReplacementKind kind, std::uint32_t a) {
  // Only NRU keeps cache-global replacement state: the shared pointer.
  return kind == cache::ReplacementKind::kNru ? log2u(a) : 0;
}

std::uint64_t partitioning_global_bits(cache::ReplacementKind kind, std::uint32_t a,
                                       std::uint32_t n) {
  switch (kind) {
    case cache::ReplacementKind::kLru:
    case cache::ReplacementKind::kNru:
      // A-bit owner mask per core.
      return static_cast<std::uint64_t>(a) * n;
    case cache::ReplacementKind::kTreePlru:
      // log2(A)-bit up and down vectors per core (no owner masks needed).
      return 2ULL * log2u(a) * n;
    case cache::ReplacementKind::kRandom:
    case cache::ReplacementKind::kSrrip:
      return static_cast<std::uint64_t>(a) * n;
  }
  return 0;
}

std::uint64_t owner_counter_bits_per_set(std::uint32_t a, std::uint32_t n) {
  // A·log2(N) owner-core bits + N counters of log2(A) bits each. With one
  // core log2(1) = 0: no owner tracking is needed.
  const std::uint64_t owner_bits = n > 1 ? static_cast<std::uint64_t>(a) * log2u(n) : 0;
  return owner_bits + static_cast<std::uint64_t>(n) * log2u(a);
}

StorageBreakdown replacement_storage(cache::ReplacementKind kind,
                                     const ComplexityParams& p, bool with_partitioning) {
  StorageBreakdown s;
  s.per_set_bits = replacement_bits_per_set(kind, p.associativity);
  s.global_bits = replacement_global_bits(kind, p.associativity);
  if (with_partitioning)
    s.global_bits += partitioning_global_bits(kind, p.associativity, p.cores);
  s.total_bits = s.per_set_bits * p.sets + s.global_bits;
  return s;
}

EventCosts event_costs(cache::ReplacementKind kind, const ComplexityParams& p) {
  const std::uint32_t a = p.associativity;
  const std::uint64_t lg = log2u(a);
  EventCosts e;
  e.tag_comparison = static_cast<std::uint64_t>(a) * p.tag_bits;
  e.data_read = static_cast<std::uint64_t>(p.line_bytes) * 8;
  switch (kind) {
    case cache::ReplacementKind::kLru:
      // Hit in the LRU position: every line's position shifts.
      e.update_unpartitioned = static_cast<std::uint64_t>(a) * lg;
      e.find_owned_lines = static_cast<std::uint64_t>(p.cores) * a;
      // Scan the other lines' LRU bits: (A-1)·log2(A). The paper prints 52
      // for A=16; the formula gives 60 (see header).
      e.find_victim_in_owned = static_cast<std::uint64_t>(a - 1) * lg;
      e.profiling_read = lg;  // read the line's LRU bits
      break;
    case cache::ReplacementKind::kNru:
      // All used bits reset except the accessed one, plus the pointer.
      e.update_unpartitioned = (a - 1) + lg;
      e.find_owned_lines = static_cast<std::uint64_t>(p.cores) * a;
      e.find_victim_in_owned = (a - 1) + lg;  // used bits + pointer
      e.profiling_read = a;                   // count the used bits
      break;
    case cache::ReplacementKind::kTreePlru:
      // One path of the tree.
      e.update_unpartitioned = lg;
      e.find_owned_lines = 0;  // solved by the up/down vectors
      e.find_victim_in_owned = lg + lg + lg;  // BT bits + up + down vectors
      e.profiling_read = 2 * lg + 2 * lg;     // XOR 2·log2(A) + SUB 2·log2(A)
      break;
    case cache::ReplacementKind::kRandom:
      e.update_unpartitioned = 0;
      e.find_owned_lines = static_cast<std::uint64_t>(p.cores) * a;
      e.find_victim_in_owned = 0;
      e.profiling_read = 0;
      break;
    case cache::ReplacementKind::kSrrip:
      // Worst case: an aging sweep rewrites every scoped RRPV (2 bits each).
      e.update_unpartitioned = 2ULL * a;
      e.find_owned_lines = static_cast<std::uint64_t>(p.cores) * a;
      e.find_victim_in_owned = 2ULL * a;
      e.profiling_read = 2;  // read the line's RRPV
      break;
  }
  return e;
}

std::uint64_t atd_storage_bits(cache::ReplacementKind kind, const ComplexityParams& p,
                               std::uint32_t sampling_ratio) {
  PLRUPART_ASSERT(sampling_ratio >= 1);
  PLRUPART_ASSERT(p.sets % sampling_ratio == 0);
  const std::uint64_t sets = p.sets / sampling_ratio;
  const std::uint64_t entries = sets * p.associativity;
  // Tag + valid per entry plus the replacement metadata of the ATD itself.
  std::uint64_t per_entry = p.tag_bits + 1;
  std::uint64_t per_set = 0;
  std::uint64_t global = 0;
  switch (kind) {
    case cache::ReplacementKind::kLru:
      per_entry += log2u(p.associativity);
      break;
    case cache::ReplacementKind::kNru:
      per_entry += 1;
      global = log2u(p.associativity);
      break;
    case cache::ReplacementKind::kTreePlru:
      per_set = p.associativity - 1;
      break;
    case cache::ReplacementKind::kRandom:
      break;
    case cache::ReplacementKind::kSrrip:
      per_entry += 2;
      break;
  }
  return entries * per_entry + sets * per_set + global;
}

}  // namespace plrupart::power
