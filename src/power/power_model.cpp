#include "plrupart/power/power_model.hpp"

#include "plrupart/common/assert.hpp"

namespace plrupart::power {

PowerModel::PowerModel(PowerParams params, cache::Geometry l2_geometry,
                       cache::ReplacementKind replacement, bool partitioned,
                       std::uint32_t cores)
    : params_(params),
      geo_(l2_geometry),
      replacement_(replacement),
      partitioned_(partitioned),
      cores_(cores) {
  geo_.validate();
  PLRUPART_ASSERT(cores_ >= 1);
  const auto cp = ComplexityParams::from_geometry(geo_, cores_);
  repl_storage_ = replacement_storage(replacement_, cp, partitioned_);
  event_costs_ = event_costs(replacement_, cp);
}

double PowerModel::aggregate_cpi(const ActivityCounters& a) {
  PLRUPART_ASSERT(a.instructions > 0);
  return a.wall_cycles * static_cast<double>(a.cores) /
         static_cast<double>(a.instructions);
}

PowerBreakdown PowerModel::evaluate(const ActivityCounters& a) const {
  PLRUPART_ASSERT(a.wall_cycles > 0.0);
  const double seconds = a.wall_cycles / (params_.clock_ghz * 1e9);

  PowerBreakdown p;

  // Cores: leakage + dynamic energy per committed instruction.
  const double core_dyn_j = static_cast<double>(a.instructions) * params_.core_epi_nj * 1e-9;
  p.cores_w = static_cast<double>(a.cores) * params_.core_leakage_w + core_dyn_j / seconds;

  // L2 array: leakage by capacity + dynamic per access.
  const double l2_mib = static_cast<double>(geo_.size_bytes) / (1024.0 * 1024.0);
  const double l2_dyn_j =
      static_cast<double>(a.l2_accesses) * params_.l2_access_energy_nj * 1e-9;
  p.l2_w = l2_mib * params_.l2_leakage_w_per_mib + l2_dyn_j / seconds;

  // Replacement + partitioning logic: leakage on its storage bits plus the
  // worst-case update energy per access (Table I(b)).
  const double upd_bits = static_cast<double>(
      partitioned_ ? event_costs_.find_owned_lines + event_costs_.find_victim_in_owned
                   : event_costs_.update_unpartitioned);
  const double repl_dyn_j = static_cast<double>(a.l2_accesses) * upd_bits *
                            params_.repl_update_energy_pj_per_bit * 1e-12;
  p.replacement_w = static_cast<double>(repl_storage_.total_bits) *
                        params_.repl_leakage_w_per_bit +
                    repl_dyn_j / seconds;

  // Profiling logic: ATD leakage + probe/update dynamic. Probes happen on the
  // sampled fraction of accesses only.
  if (a.atds > 0) {
    const auto cp = ComplexityParams::from_geometry(geo_, cores_);
    const std::uint64_t atd_bits =
        atd_storage_bits(replacement_, cp, a.sampling_ratio) * a.atds;
    const double sampled =
        static_cast<double>(a.l2_accesses) / static_cast<double>(a.sampling_ratio);
    const double prof_dyn_j =
        sampled * (params_.atd_probe_energy_nj * 1e-9 +
                   static_cast<double>(event_costs_.profiling_read) *
                       params_.repl_update_energy_pj_per_bit * 1e-12 +
                   params_.sdh_update_energy_pj * 1e-12);
    p.profiling_w = static_cast<double>(atd_bits) * params_.repl_leakage_w_per_bit +
                    prof_dyn_j / seconds;
  }

  // Main memory: dynamic cost of off-chip accesses (the 150x factor).
  const double mem_dyn_j = static_cast<double>(a.l2_misses) * params_.mem_energy_factor *
                           params_.l2_access_energy_nj * 1e-9;
  p.memory_w = mem_dyn_j / seconds;

  return p;
}

}  // namespace plrupart::power
