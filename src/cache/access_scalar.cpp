// The kScalar access path. The byte-loop reference tier exists for
// bit-identity proofs, not throughput, so its access_impl matrix is
// instantiated here — its own TU, like the AVX tiers — rather than inside
// cache.cpp / cache_batch.cpp / cache_shard_access.cpp: a second full
// instantiation in those TUs pushes the policy-visit switch past the
// inliner's budget and measurably regresses BM_CacheAccess on the tier that
// matters (see access_impl.ipp).
#include "plrupart/cache/cache.hpp"

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

AccessOutcome SetAssocCache::access_scalar(CoreId core, Addr addr, bool write,
                                           CacheStatsBundle& stats) {
  return access_host<DispatchTier::kScalar>(core, addr, write, stats);
}

void SetAssocCache::access_batch_scalar(const BatchOp* ops, std::size_t n,
                                        AccessOutcome* out,
                                        CacheStatsBundle& stats) {
  access_batch_host<DispatchTier::kScalar>(ops, n, out, stats);
}

}  // namespace plrupart::cache
