// Uniform-random replacement: the reference point the paper compares NRU's
// pointer-driven behavior against ("guarantees a random-like replacement").
#pragma once

#include <cstdint>

#include "cache/replacement.hpp"
#include "common/rng.hpp"

namespace plrupart::cache {

class RandomRepl final : public ReplacementPolicy {
 public:
  RandomRepl(const Geometry& geo, std::uint64_t seed);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kRandom;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override;
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override;
  void reset() override;

 private:
  Rng rng_;
  std::uint64_t seed_;
};

}  // namespace plrupart::cache
