// Static dispatch over the closed set of replacement policies.
//
// The virtual ReplacementPolicy interface stays the stable public seam for
// tests, tools and profilers, but paying a virtual call (and losing inlining)
// for every on_hit/on_fill/choose_victim/estimate_position on the simulation
// hot path is the single largest per-access cost. Every shipped policy is
// `final`, so downcasting once per access and calling through the concrete
// type devirtualizes and inlines the whole policy update into the caller —
// `visit_policy` is the one place that downcast lives.
//
// The kind is passed in by the caller (caches cache it at construction)
// instead of read from the virtual `kind()` so the dispatch itself is a plain
// switch on a register value.
#pragma once

#include "plrupart/cache/lru.hpp"
#include "plrupart/cache/nru.hpp"
#include "plrupart/cache/random_repl.hpp"
#include "plrupart/cache/replacement.hpp"
#include "plrupart/cache/srrip.hpp"
#include "plrupart/cache/tree_plru.hpp"

namespace plrupart::cache {

/// Invoke `fn` with `policy` downcast to its concrete type. `kind` must match
/// the policy's actual kind — callers assert that once at construction, not
/// per access; all branches must return the same type.
template <class Fn>
decltype(auto) visit_policy(ReplacementKind kind, ReplacementPolicy& policy, Fn&& fn) {
  switch (kind) {
    case ReplacementKind::kLru:
      return fn(static_cast<TrueLru&>(policy));
    case ReplacementKind::kNru:
      return fn(static_cast<Nru&>(policy));
    case ReplacementKind::kTreePlru:
      return fn(static_cast<TreePlru&>(policy));
    case ReplacementKind::kRandom:
      return fn(static_cast<RandomRepl&>(policy));
    case ReplacementKind::kSrrip:
      return fn(static_cast<Srrip&>(policy));
  }
  PLRUPART_ASSERT_MSG(false, "unknown replacement kind");
  return fn(static_cast<TrueLru&>(policy));  // unreachable; keeps the compiler happy
}

}  // namespace plrupart::cache
