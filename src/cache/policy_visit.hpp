// Static dispatch over the closed set of replacement policies.
//
// The virtual ReplacementPolicy interface stays the stable public seam for
// tests, tools and profilers, but paying a virtual call (and losing inlining)
// for every on_hit/on_fill/choose_victim/estimate_position on the simulation
// hot path is the single largest per-access cost. Every shipped policy is
// `final`, so downcasting once per access and calling through the concrete
// type devirtualizes and inlines the whole policy update into the caller —
// `visit_policy` is the one place that downcast lives.
//
// The kind is passed in by the caller (caches cache it at construction)
// instead of read from the virtual `kind()` so the dispatch itself is a plain
// switch on a register value.
#pragma once

#include <cstdint>
#include <type_traits>

#include "cache/simd/simd_kernels.hpp"
#include "plrupart/cache/dispatch.hpp"
#include "plrupart/cache/lru.hpp"
#include "plrupart/cache/nru.hpp"
#include "plrupart/cache/random_repl.hpp"
#include "plrupart/cache/replacement.hpp"
#include "plrupart/cache/srrip.hpp"
#include "plrupart/cache/tree_plru.hpp"

namespace plrupart::cache {

/// Victim selection pinned to SIMD dispatch tier `D`: policies whose victim
/// scan has a vector kernel (SRRIP's distant-line byte scan) route it through
/// the tier's kernel via Srrip::choose_victim_scan; everything else — and the
/// portable kSwar tier — takes the policy's plain choose_victim, unchanged.
/// Bit-identical across tiers: the scan kernels compute the same match mask,
/// so the same victim is picked (asserted by the GoldenEquivalence matrix).
/// The kAvx* branches hold intrinsics and may only be instantiated from TUs
/// compiled with the matching target flags (src/cache/simd/access_*.cpp).
template <DispatchTier D, class Policy>
std::uint32_t choose_victim_dispatch(Policy& pol, std::uint64_t set, WayMask allowed) {
  if constexpr (std::is_same_v<Policy, Srrip>) {
    if constexpr (D == DispatchTier::kScalar) {
      return pol.choose_victim_scan(
          set, allowed, [](const std::uint8_t* v, std::uint32_t n, std::uint8_t needle) {
            return simd::match_scalar(v, n, needle);
          });
    }
#if defined(__AVX2__)
    if constexpr (D == DispatchTier::kAvx2) {
      return pol.choose_victim_scan(
          set, allowed, [](const std::uint8_t* v, std::uint32_t n, std::uint8_t needle) {
            return simd::byte_match_avx2_impl(v, n, needle);
          });
    }
#endif
#if defined(__AVX512BW__)
    if constexpr (D == DispatchTier::kAvx512) {
      return pol.choose_victim_scan(
          set, allowed, [](const std::uint8_t* v, std::uint32_t n, std::uint8_t needle) {
            return simd::byte_match_avx512_impl(v, n, needle);
          });
    }
#endif
  }
  return pol.choose_victim(set, allowed);
}

/// Invoke `fn` with `policy` downcast to its concrete type. `kind` must match
/// the policy's actual kind — callers assert that once at construction, not
/// per access; all branches must return the same type.
template <class Fn>
decltype(auto) visit_policy(ReplacementKind kind, ReplacementPolicy& policy, Fn&& fn) {
  switch (kind) {
    case ReplacementKind::kLru:
      return fn(static_cast<TrueLru&>(policy));
    case ReplacementKind::kNru:
      return fn(static_cast<Nru&>(policy));
    case ReplacementKind::kTreePlru:
      return fn(static_cast<TreePlru&>(policy));
    case ReplacementKind::kRandom:
      return fn(static_cast<RandomRepl&>(policy));
    case ReplacementKind::kSrrip:
      return fn(static_cast<Srrip&>(policy));
  }
  PLRUPART_ASSERT_MSG(false, "unknown replacement kind");
  return fn(static_cast<TrueLru&>(policy));  // unreachable; keeps the compiler happy
}

}  // namespace plrupart::cache
