// True LRU replacement: each line carries an exact stack position
// (A * log2(A) bits per set in hardware; see power/complexity.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"

namespace plrupart::cache {

class TrueLru final : public ReplacementPolicy {
 public:
  explicit TrueLru(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kLru;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override;
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override;
  void reset() override;

  /// Exact 0-based stack position (0 = MRU, A-1 = LRU) — test/profiler hook.
  [[nodiscard]] std::uint32_t stack_position(std::uint64_t set, std::uint32_t way) const;

 private:
  void promote(std::uint64_t set, std::uint32_t way);
  [[nodiscard]] std::uint8_t& pos(std::uint64_t set, std::uint32_t way) {
    return pos_[set * ways_ + way];
  }
  [[nodiscard]] std::uint8_t pos(std::uint64_t set, std::uint32_t way) const {
    return pos_[set * ways_ + way];
  }

  // pos_[set*A + way] = 0-based recency (0 = MRU). Initialized so that way i
  // starts at position i, matching hardware reset of the LRU bits.
  std::vector<std::uint8_t> pos_;
};

}  // namespace plrupart::cache
