#include "cache/random_repl.hpp"

namespace plrupart::cache {

RandomRepl::RandomRepl(const Geometry& geo, std::uint64_t seed)
    : ReplacementPolicy(geo), rng_(seed), seed_(seed) {}

void RandomRepl::reset() { rng_ = Rng(seed_); }

void RandomRepl::on_hit(std::uint64_t, std::uint32_t, WayMask) {}
void RandomRepl::on_fill(std::uint64_t, std::uint32_t, WayMask) {}

std::uint32_t RandomRepl::choose_victim(std::uint64_t /*set*/, WayMask allowed) {
  allowed &= all_ways();
  PLRUPART_ASSERT(allowed != 0);
  const std::uint32_t n = mask_count(allowed);
  std::uint32_t k = static_cast<std::uint32_t>(rng_.next_below(n));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!mask_test(allowed, w)) continue;
    if (k == 0) return w;
    --k;
  }
  PLRUPART_ASSERT_MSG(false, "unreachable: mask emptied mid-scan");
  return 0;
}

StackEstimate RandomRepl::estimate_position(std::uint64_t, std::uint32_t) const {
  // Random replacement keeps no recency state: the profiling logic can bound
  // the position only by the full stack.
  return StackEstimate{.lo = 1, .hi = ways_, .point = ways_};
}

}  // namespace plrupart::cache
