#include "plrupart/cache/random_repl.hpp"

namespace plrupart::cache {

RandomRepl::RandomRepl(const Geometry& geo, std::uint64_t seed)
    : ReplacementPolicy(geo), rng_(seed), seed_(seed) {}

void RandomRepl::reset() { rng_ = Rng(seed_); }

}  // namespace plrupart::cache
