// Batched access entry points (see SetAssocCache::access_batch). The portable
// tiers' batch drivers are instantiated here — their own TU, like the shard
// access path, so the serial per-op hot path's codegen (cache.cpp) stays
// untouched; the AVX batch drivers live in src/cache/simd/access_*.cpp.
#include "plrupart/cache/cache.hpp"

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

void SetAssocCache::access_batch(const BatchOp* ops, std::size_t n,
                                 AccessOutcome* out) {
  access_batch(ops, n, out, stats_);
}

void SetAssocCache::access_batch(const BatchOp* ops, std::size_t n,
                                 AccessOutcome* out, CacheStatsBundle& stats) {
  switch (dispatch_) {
#if defined(PLRUPART_SIMD_AVX2)
    case DispatchTier::kAvx2:
      return access_batch_avx2(ops, n, out, stats);
#endif
#if defined(PLRUPART_SIMD_AVX512)
    case DispatchTier::kAvx512:
      return access_batch_avx512(ops, n, out, stats);
#endif
    case DispatchTier::kScalar:
      return access_batch_scalar(ops, n, out, stats);
    default:
      return access_batch_host<DispatchTier::kSwar>(ops, n, out, stats);
  }
}

}  // namespace plrupart::cache
