#include "plrupart/cache/cache.hpp"

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

// Externalized-stats access used by the set-sharded replay engine: identical
// to the 3-arg overload except the caller supplies the stats bundle, so shard
// workers can count into private replicas and merge at interval barriers.
// Lives in its own TU so the serial hot path's codegen (cache.cpp) is
// untouched by these extra access_impl instantiations — see access_impl.ipp.
AccessOutcome SetAssocCache::access(CoreId core, Addr addr, bool write,
                                    CacheStatsBundle& stats) {
  switch (dispatch_) {
#if defined(PLRUPART_SIMD_AVX2)
    case DispatchTier::kAvx2:
      return access_avx2(core, addr, write, stats);
#endif
#if defined(PLRUPART_SIMD_AVX512)
    case DispatchTier::kAvx512:
      return access_avx512(core, addr, write, stats);
#endif
    case DispatchTier::kScalar:
      return access_scalar(core, addr, write, stats);
    default:
      return access_host<DispatchTier::kSwar>(core, addr, write, stats);
  }
}

}  // namespace plrupart::cache
