#include "plrupart/cache/cache.hpp"

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

// Externalized-stats access used by the set-sharded replay engine: identical
// to the 3-arg overload except the caller supplies the stats bundle, so shard
// workers can count into private replicas and merge at interval barriers.
// Lives in its own TU so the serial hot path's codegen (cache.cpp) is
// untouched by these extra access_impl instantiations — see access_impl.ipp.
AccessOutcome SetAssocCache::access(CoreId core, Addr addr, bool write,
                                    CacheStatsBundle& stats) {
  return visit_policy(kind_, *policy_, [&](auto& pol) {
    switch (enforcement_) {
      case EnforcementMode::kWayMasks:
        return access_impl<EnforcementMode::kWayMasks>(pol, core, addr, write, stats);
      case EnforcementMode::kOwnerCounters:
        return access_impl<EnforcementMode::kOwnerCounters>(pol, core, addr, write,
                                                            stats);
      case EnforcementMode::kNone:
        break;
    }
    return access_impl<EnforcementMode::kNone>(pol, core, addr, write, stats);
  });
}

}  // namespace plrupart::cache
