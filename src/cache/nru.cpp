#include "cache/nru.hpp"

namespace plrupart::cache {

Nru::Nru(const Geometry& geo) : ReplacementPolicy(geo) {
  used_.resize(sets_, 0);
}

void Nru::reset() {
  for (auto& u : used_) u = 0;
  pointer_ = 0;
}

void Nru::mark_used(std::uint64_t set, std::uint32_t way, WayMask allowed) {
  WayMask& used = used_[set];
  const WayMask line = WayMask{1} << way;
  // The saturation scope: the accessing core's ways plus the line it touched
  // (hits are allowed to land outside the core's partition).
  const WayMask scope = (allowed | line) & all_ways();
  used |= line;
  if ((used & scope) == scope) {
    used &= ~scope;
    used |= line;
  }
}

void Nru::on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) {
  mark_used(set, way, allowed);
}

void Nru::on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) {
  mark_used(set, way, allowed);
}

std::uint32_t Nru::choose_victim(std::uint64_t set, WayMask allowed) {
  allowed &= all_ways();
  PLRUPART_ASSERT(allowed != 0);
  WayMask& used = used_[set];

  WayMask candidates = allowed & ~used;
  if (candidates == 0) {
    // Every allowed line is marked used: reset the allowed scope and retry.
    // The base (unpartitioned) policy never reaches this state because the
    // access-side saturation reset guarantees at least one clear bit, but a
    // partition-restricted scan can.
    used &= ~allowed;
    candidates = allowed;
  }

  const std::uint32_t victim = mask_next_circular(candidates, pointer_, ways_);
  pointer_ = (victim + 1) % ways_;
  return victim;
}

StackEstimate Nru::estimate_position(std::uint64_t set, std::uint32_t way) const {
  const WayMask used = used_[set] & all_ways();
  const std::uint32_t u = mask_count(used);
  if (mask_test(used, way)) {
    // Accessed line recently used: somewhere within the U most-recent lines.
    return StackEstimate{.lo = 1, .hi = u, .point = u};
  }
  // Not recently used: deeper than every used line.
  return StackEstimate{.lo = u + 1, .hi = ways_, .point = ways_};
}

bool Nru::used_bit(std::uint64_t set, std::uint32_t way) const {
  return mask_test(used_[set], way);
}

std::uint32_t Nru::used_count(std::uint64_t set) const {
  return mask_count(used_[set] & all_ways());
}

}  // namespace plrupart::cache
