#include "plrupart/cache/nru.hpp"

namespace plrupart::cache {

Nru::Nru(const Geometry& geo) : ReplacementPolicy(geo) {
  used_.resize(sets_, 0);
}

void Nru::reset() {
  for (auto& u : used_) u = 0;
  pointer_ = 0;
}

bool Nru::used_bit(std::uint64_t set, std::uint32_t way) const {
  return mask_test(used_[set], way);
}

std::uint32_t Nru::used_count(std::uint64_t set) const {
  return mask_count(used_[set] & all_ways());
}

}  // namespace plrupart::cache
