// The kAvx2 access path. This TU is compiled with -mavx2 and is the only
// place access_impl is instantiated with D = kAvx2, so the vpcmpeqb+movemask
// branches of find_way_dispatch / choose_victim_dispatch inline right here
// while every other TU stays baseline x86-64 — the per-TU analog of how
// cache_shard_access.cpp shields the serial TU's codegen.
#include "plrupart/cache/cache.hpp"

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

AccessOutcome SetAssocCache::access_avx2(CoreId core, Addr addr, bool write,
                                         CacheStatsBundle& stats) {
  return access_host<DispatchTier::kAvx2>(core, addr, write, stats);
}

void SetAssocCache::access_batch_avx2(const BatchOp* ops, std::size_t n,
                                      AccessOutcome* out, CacheStatsBundle& stats) {
  access_batch_host<DispatchTier::kAvx2>(ops, n, out, stats);
}

}  // namespace plrupart::cache
