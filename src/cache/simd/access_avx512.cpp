// The kAvx512 access path: the only TU instantiating access_impl with
// D = kAvx512, compiled with -mavx512f -mavx512bw (see access_avx2.cpp for
// the per-TU isolation rationale).
#include "plrupart/cache/cache.hpp"

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

AccessOutcome SetAssocCache::access_avx512(CoreId core, Addr addr, bool write,
                                           CacheStatsBundle& stats) {
  return access_host<DispatchTier::kAvx512>(core, addr, write, stats);
}

void SetAssocCache::access_batch_avx512(const BatchOp* ops, std::size_t n,
                                        AccessOutcome* out, CacheStatsBundle& stats) {
  access_batch_host<DispatchTier::kAvx512>(ops, n, out, stats);
}

}  // namespace plrupart::cache
