// Internal SIMD equality-scan kernels behind the DispatchTier seam.
//
// Every kernel computes exactly the function of the portable
// `tag_match_mask` template in plrupart/common/bits.hpp: the bitmask of
// positions in values[0..count) equal to `needle`, with bits >= count
// cleared. The tiers differ only in how many lanes one instruction compares
// (see plrupart/cache/dispatch.hpp); bit-identity across tiers is asserted by
// tests/test_simd_dispatch.cpp and the GoldenEquivalence replay matrix.
//
// PADDED-BUFFER CONTRACT: the vector kernels load whole 32/64-byte blocks and
// mask afterwards, so callers must guarantee that at least kSimdPadBytes past
// `values + count * sizeof(T)` are readable (same allocation). Every caller
// in the library over-allocates its scanned arrays accordingly (SetAssocCache
// set metadata, Atd tags, Srrip RRPV array). This header is internal
// precisely because the contract cannot be imposed on external buffers.
//
// The *_avx2/*_avx512 inline definitions are guarded by the compiler's target
// macros: they exist only in translation units compiled with the matching
// -m flags (src/cache/simd/*.cpp and the per-tier access TUs). Out-of-line
// wrappers (byte_match / u64_match) give runtime-dispatched callers (Atd,
// Srrip's virtual victim scan) access to the same kernels from plain TUs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "plrupart/cache/dispatch.hpp"
#include "plrupart/common/bits.hpp"

#if defined(__AVX2__) || defined(__AVX512BW__)
#include <immintrin.h>
#endif

namespace plrupart::cache::simd {

/// Bytes the vector kernels may read past the end of the scanned range.
inline constexpr std::size_t kSimdPadBytes = 64;

/// Reference semantics: the plain per-element loop (kScalar tier).
template <class T>
[[nodiscard]] inline WayMask match_scalar(const T* values, std::uint32_t count,
                                          T needle) noexcept {
  WayMask m = 0;
  for (std::uint32_t i = 0; i < count; ++i)
    m |= static_cast<WayMask>(values[i] == needle ? 1U : 0U) << i;
  return m;
}

#if defined(__AVX2__)

/// 32 byte lanes per compare; count in [1, 64].
[[nodiscard]] inline WayMask byte_match_avx2_impl(const std::uint8_t* values,
                                                  std::uint32_t count,
                                                  std::uint8_t needle) noexcept {
  const __m256i n = _mm256_set1_epi8(static_cast<char>(needle));
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
  WayMask m = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, n)));
  if (count > 32) {
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + 32));
    m |= static_cast<WayMask>(static_cast<std::uint32_t>(
             _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, n))))
         << 32;
  }
  return m & full_way_mask(count);
}

/// 4 uint64 lanes per compare; count in [1, 64].
[[nodiscard]] inline WayMask u64_match_avx2_impl(const std::uint64_t* values,
                                                 std::uint32_t count,
                                                 std::uint64_t needle) noexcept {
  const __m256i n = _mm256_set1_epi64x(static_cast<long long>(needle));
  WayMask m = 0;
  for (std::uint32_t i = 0; i < count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const auto lanes = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, n))));
    m |= static_cast<WayMask>(lanes) << i;
  }
  return m & full_way_mask(count);
}

#endif  // __AVX2__

#if defined(__AVX512BW__)

/// 64 byte lanes in one compare, k-mask result; count in [1, 64].
[[nodiscard]] inline WayMask byte_match_avx512_impl(const std::uint8_t* values,
                                                    std::uint32_t count,
                                                    std::uint8_t needle) noexcept {
  const __m512i v = _mm512_loadu_si512(values);
  const __mmask64 k =
      _mm512_cmpeq_epi8_mask(v, _mm512_set1_epi8(static_cast<char>(needle)));
  return static_cast<WayMask>(k) & full_way_mask(count);
}

/// 8 uint64 lanes per compare, k-mask result; count in [1, 64].
[[nodiscard]] inline WayMask u64_match_avx512_impl(const std::uint64_t* values,
                                                   std::uint32_t count,
                                                   std::uint64_t needle) noexcept {
  WayMask m = 0;
  for (std::uint32_t i = 0; i < count; i += 8) {
    const __m512i v = _mm512_loadu_si512(values + i);
    const __mmask8 k = _mm512_cmpeq_epi64_mask(v, _mm512_set1_epi64(
                                                      static_cast<long long>(needle)));
    m |= static_cast<WayMask>(k) << i;
  }
  return m & full_way_mask(count);
}

#endif  // __AVX512BW__

// Out-of-line kernels (kernels_avx2.cpp / kernels_avx512.cpp, compiled with
// the matching -m flags) for runtime-dispatched callers in plain TUs. Only
// call when dispatch_tier_available() says so.
[[nodiscard]] WayMask byte_match_avx2(const std::uint8_t* values, std::uint32_t count,
                                      std::uint8_t needle) noexcept;
[[nodiscard]] WayMask u64_match_avx2(const std::uint64_t* values, std::uint32_t count,
                                     std::uint64_t needle) noexcept;
[[nodiscard]] WayMask byte_match_avx512(const std::uint8_t* values, std::uint32_t count,
                                        std::uint8_t needle) noexcept;
[[nodiscard]] WayMask u64_match_avx512(const std::uint64_t* values, std::uint32_t count,
                                       std::uint64_t needle) noexcept;

/// Runtime-dispatched byte scan (padded-buffer contract for the AVX tiers).
/// kSwar routes through the portable tag_match_mask template.
[[nodiscard]] inline WayMask byte_match(DispatchTier t, const std::uint8_t* values,
                                        std::uint32_t count, std::uint8_t needle) {
  switch (t) {
    case DispatchTier::kScalar:
      return match_scalar(values, count, needle);
#if defined(PLRUPART_SIMD_AVX2)
    case DispatchTier::kAvx2:
      return byte_match_avx2(values, count, needle);
#endif
#if defined(PLRUPART_SIMD_AVX512)
    case DispatchTier::kAvx512:
      return byte_match_avx512(values, count, needle);
#endif
    default:
      return tag_match_mask(values, count, needle);
  }
}

/// Runtime-dispatched uint64 scan (padded-buffer contract for the AVX tiers).
[[nodiscard]] inline WayMask u64_match(DispatchTier t, const std::uint64_t* values,
                                       std::uint32_t count, std::uint64_t needle) {
  switch (t) {
    case DispatchTier::kScalar:
      return match_scalar(values, count, needle);
#if defined(PLRUPART_SIMD_AVX2)
    case DispatchTier::kAvx2:
      return u64_match_avx2(values, count, needle);
#endif
#if defined(PLRUPART_SIMD_AVX512)
    case DispatchTier::kAvx512:
      return u64_match_avx512(values, count, needle);
#endif
    default:
      return tag_match_mask(values, count, needle);
  }
}

}  // namespace plrupart::cache::simd
