// Out-of-line AVX-512BW kernels for runtime-dispatched callers in plain TUs.
// This TU is compiled with -mavx512f -mavx512bw; call only when
// dispatch_tier_available(kAvx512) holds.
#include "cache/simd/simd_kernels.hpp"

namespace plrupart::cache::simd {

WayMask byte_match_avx512(const std::uint8_t* values, std::uint32_t count,
                          std::uint8_t needle) noexcept {
  return byte_match_avx512_impl(values, count, needle);
}

WayMask u64_match_avx512(const std::uint64_t* values, std::uint32_t count,
                         std::uint64_t needle) noexcept {
  return u64_match_avx512_impl(values, count, needle);
}

}  // namespace plrupart::cache::simd
