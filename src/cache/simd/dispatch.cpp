// Runtime dispatch-tier selection (see plrupart/cache/dispatch.hpp).
//
// Availability is the AND of two gates: the build carries the tier's kernels
// (PLRUPART_SIMD_AVX2 / PLRUPART_SIMD_AVX512, defined by CMake only when the
// PLRUPART_SIMD option is on, the target is x86-64, and the compiler takes
// the -m flags) and the running CPU reports the feature (cpuid via
// __builtin_cpu_supports). The active tier is process-wide, initialized once
// on first use from PLRUPART_FORCE_DISPATCH or best_dispatch_tier().
#include "plrupart/cache/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "plrupart/common/assert.hpp"

namespace plrupart::cache {

std::string to_string(DispatchTier t) {
  switch (t) {
    case DispatchTier::kScalar:
      return "scalar";
    case DispatchTier::kSwar:
      return "swar";
    case DispatchTier::kAvx2:
      return "avx2";
    case DispatchTier::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<DispatchTier> parse_dispatch_tier(std::string_view name) {
  if (name == "scalar") return DispatchTier::kScalar;
  if (name == "swar") return DispatchTier::kSwar;
  if (name == "avx2") return DispatchTier::kAvx2;
  if (name == "avx512") return DispatchTier::kAvx512;
  return std::nullopt;
}

bool dispatch_tier_available(DispatchTier t) noexcept {
  switch (t) {
    case DispatchTier::kScalar:
    case DispatchTier::kSwar:
      return true;
    case DispatchTier::kAvx2:
#if defined(PLRUPART_SIMD_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case DispatchTier::kAvx512:
#if defined(PLRUPART_SIMD_AVX512)
      return __builtin_cpu_supports("avx512bw") != 0;
#else
      return false;
#endif
  }
  return false;
}

DispatchTier best_dispatch_tier() noexcept {
  // AVX2 before AVX-512 on purpose: see the declaration's comment. Every
  // AVX-512BW machine also runs the AVX2 kernels, so the order is a
  // preference, not a capability question.
  if (dispatch_tier_available(DispatchTier::kAvx2)) return DispatchTier::kAvx2;
  if (dispatch_tier_available(DispatchTier::kAvx512)) return DispatchTier::kAvx512;
  return DispatchTier::kSwar;
}

namespace {

DispatchTier initial_tier() {
  const char* env = std::getenv("PLRUPART_FORCE_DISPATCH");
  if (env != nullptr && *env != '\0') {
    const auto forced = parse_dispatch_tier(env);
    PLRUPART_ASSERT_MSG(forced.has_value(),
                        std::string("PLRUPART_FORCE_DISPATCH: unknown tier '") + env +
                            "' (want scalar|swar|avx2|avx512)");
    PLRUPART_ASSERT_MSG(dispatch_tier_available(*forced),
                        "PLRUPART_FORCE_DISPATCH: tier '" + to_string(*forced) +
                            "' is not available in this build / on this CPU");
    return *forced;
  }
  return best_dispatch_tier();
}

std::atomic<DispatchTier>& active_tier_storage() {
  // Magic static: first caller pays the env/cpuid probe; a bad forced tier
  // throws out of that first call (and out of every later one — the static
  // is only considered initialized once initial_tier() returns).
  static std::atomic<DispatchTier> tier{initial_tier()};
  return tier;
}

}  // namespace

DispatchTier active_dispatch_tier() {
  return active_tier_storage().load(std::memory_order_relaxed);
}

void set_active_dispatch_tier(DispatchTier t) {
  PLRUPART_ASSERT_MSG(dispatch_tier_available(t),
                      "dispatch tier '" + to_string(t) +
                          "' is not available in this build / on this CPU");
  active_tier_storage().store(t, std::memory_order_relaxed);
}

}  // namespace plrupart::cache
