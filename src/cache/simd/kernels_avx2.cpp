// Out-of-line AVX2 kernels for runtime-dispatched callers in plain TUs
// (Atd::find_way, Srrip's virtual choose_victim). This TU is compiled with
// -mavx2; call only when dispatch_tier_available(kAvx2) holds.
#include "cache/simd/simd_kernels.hpp"

namespace plrupart::cache::simd {

WayMask byte_match_avx2(const std::uint8_t* values, std::uint32_t count,
                        std::uint8_t needle) noexcept {
  return byte_match_avx2_impl(values, count, needle);
}

WayMask u64_match_avx2(const std::uint64_t* values, std::uint32_t count,
                       std::uint64_t needle) noexcept {
  return u64_match_avx2_impl(values, count, needle);
}

}  // namespace plrupart::cache::simd
