#include "cache/tree_plru.hpp"

namespace plrupart::cache {

TreePlru::TreePlru(const Geometry& geo)
    : ReplacementPolicy(geo), levels_(ilog2_exact(geo.associativity)) {
  PLRUPART_ASSERT_MSG(ways_ >= 2, "tree PLRU needs associativity >= 2");
  tree_.resize(sets_, 0);
}

void TreePlru::reset() {
  for (auto& t : tree_) t = 0;
}

// Direction of `way` at tree level l (0 = root): 0 = upper child, 1 = lower.
// Way indices are consumed MSB-first along the path.
namespace {
[[nodiscard]] inline std::uint32_t direction_bit(std::uint32_t way, std::uint32_t level,
                                                 std::uint32_t levels) {
  return (way >> (levels - 1 - level)) & 1U;
}
}  // namespace

void TreePlru::promote(std::uint64_t set, std::uint32_t way) {
  std::uint32_t node = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t dir = direction_bit(way, level, levels_);
    // Point victim search *away* from this line: traversal follows bit==0 to
    // the upper child, so a line in the upper subtree sets the bit to 1.
    set_node_bit(set, node, dir == 0);
    node = 2 * node + 1 + dir;
  }
}

void TreePlru::on_hit(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) {
  promote(set, way);
}

void TreePlru::on_fill(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) {
  promote(set, way);
}

std::uint32_t TreePlru::choose_victim(std::uint64_t set, WayMask allowed) {
  allowed &= all_ways();
  PLRUPART_ASSERT(allowed != 0);
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t span = ways_;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t half = span / 2;
    const WayMask upper = way_range_mask(lo, half) & allowed;
    const WayMask lower = way_range_mask(lo + half, half) & allowed;
    std::uint32_t dir;
    if (upper == 0) {
      dir = 1;  // nothing allowed above: forced down
    } else if (lower == 0) {
      dir = 0;  // forced up
    } else {
      dir = node_bit(set, node) ? 1U : 0U;
    }
    node = 2 * node + 1 + dir;
    lo += dir * half;
    span = half;
  }
  PLRUPART_ASSERT(mask_test(allowed, lo));
  return lo;
}

std::uint32_t TreePlru::choose_victim_with_vectors(std::uint64_t set,
                                                   const ForceVectors& force) {
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t span = ways_;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    PLRUPART_ASSERT_MSG(!(force.forces_up(level) && force.forces_down(level)),
                        "up and down forced at the same tree level");
    const std::uint32_t half = span / 2;
    std::uint32_t dir;
    if (force.forces_up(level)) {
      dir = 0;  // overwrite the BT bit with 0: search the upper subtree
    } else if (force.forces_down(level)) {
      dir = 1;  // overwrite with 1: search the lower subtree
    } else {
      dir = node_bit(set, node) ? 1U : 0U;
    }
    node = 2 * node + 1 + dir;
    lo += dir * half;
    span = half;
  }
  return lo;
}

StackEstimate TreePlru::estimate_position(std::uint64_t set, std::uint32_t way) const {
  const std::uint32_t x = id_bits(way) ^ path_bits(set, way);
  const std::uint32_t est = ways_ - x;  // 1 = MRU .. A = pseudo-LRU victim
  return StackEstimate{.lo = est, .hi = est, .point = est};
}

std::uint32_t TreePlru::id_bits(std::uint32_t way) const {
  // The bit values that would make `way` the victim: traversal follows bit==0
  // upward and bit==1 downward, so the required bit at each level is exactly
  // the way's direction bit. Packed root-first means this is just the way
  // number itself — the decoder of Fig. 4(c).
  PLRUPART_ASSERT(way < ways_);
  return way;
}

std::uint32_t TreePlru::path_bits(std::uint64_t set, std::uint32_t way) const {
  PLRUPART_ASSERT(way < ways_);
  std::uint32_t bits = 0;
  std::uint32_t node = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    bits = (bits << 1) | (node_bit(set, node) ? 1U : 0U);
    const std::uint32_t dir = direction_bit(way, level, levels_);
    node = 2 * node + 1 + dir;
  }
  return bits;
}

std::optional<ForceVectors> TreePlru::derive_force_vectors(WayMask mask) const {
  mask &= all_ways();
  if (mask == 0) return std::nullopt;
  const std::uint32_t count = mask_count(mask);
  const std::uint32_t first = mask_first(mask);
  if (!is_pow2(count)) return std::nullopt;
  if (mask != way_range_mask(first, count)) return std::nullopt;  // not contiguous
  if (first % count != 0) return std::nullopt;                    // not aligned
  const std::uint32_t forced_levels = levels_ - ilog2_exact(count);
  const std::uint32_t prefix = first / count;  // block address, MSB-first path
  ForceVectors fv;
  for (std::uint32_t level = 0; level < forced_levels; ++level) {
    const std::uint32_t dir = (prefix >> (forced_levels - 1 - level)) & 1U;
    if (dir == 0)
      fv.up |= (1U << level);
    else
      fv.down |= (1U << level);
  }
  return fv;
}

WayMask TreePlru::reachable_ways(const ForceVectors& force) const {
  std::uint32_t lo = 0;
  std::uint32_t span = ways_;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t half = span / 2;
    if (force.forces_up(level)) {
      span = half;
    } else if (force.forces_down(level)) {
      lo += half;
      span = half;
    } else {
      // An unforced level below a forced one widens the reachable set to the
      // whole remaining subtree; deeper force bits would only matter if every
      // level above were forced too. The paper's partitions force a prefix.
      break;
    }
  }
  return way_range_mask(lo, span);
}

}  // namespace plrupart::cache
