#include "plrupart/cache/tree_plru.hpp"

namespace plrupart::cache {

TreePlru::TreePlru(const Geometry& geo)
    : ReplacementPolicy(geo), levels_(ilog2_exact(geo.associativity)) {
  PLRUPART_ASSERT_MSG(ways_ >= 2, "tree PLRU needs associativity >= 2");
  tree_.resize(sets_, 0);
  path_node_mask_.resize(ways_, 0);
  path_node_value_.resize(ways_, 0);
  for (std::uint32_t way = 0; way < ways_; ++way) {
    std::uint32_t node = 0;
    for (std::uint32_t level = 0; level < levels_; ++level) {
      const std::uint32_t dir = direction_bit(way, level);
      path_node_mask_[way] |= std::uint64_t{1} << node;
      if (dir == 0) path_node_value_[way] |= std::uint64_t{1} << node;
      node = 2 * node + 1 + dir;
    }
  }
}

void TreePlru::reset() {
  for (auto& t : tree_) t = 0;
}

std::uint32_t TreePlru::choose_victim_with_vectors(std::uint64_t set,
                                                   const ForceVectors& force) {
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t span = ways_;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    PLRUPART_ASSERT_MSG(!(force.forces_up(level) && force.forces_down(level)),
                        "up and down forced at the same tree level");
    const std::uint32_t half = span / 2;
    std::uint32_t dir;
    if (force.forces_up(level)) {
      dir = 0;  // overwrite the BT bit with 0: search the upper subtree
    } else if (force.forces_down(level)) {
      dir = 1;  // overwrite with 1: search the lower subtree
    } else {
      dir = node_bit(set, node) ? 1U : 0U;
    }
    node = 2 * node + 1 + dir;
    lo += dir * half;
    span = half;
  }
  return lo;
}

std::optional<ForceVectors> TreePlru::derive_force_vectors(WayMask mask) const {
  mask &= all_ways();
  if (mask == 0) return std::nullopt;
  const std::uint32_t count = mask_count(mask);
  const std::uint32_t first = mask_first(mask);
  if (!is_pow2(count)) return std::nullopt;
  if (mask != way_range_mask(first, count)) return std::nullopt;  // not contiguous
  if (first % count != 0) return std::nullopt;                    // not aligned
  const std::uint32_t forced_levels = levels_ - ilog2_exact(count);
  const std::uint32_t prefix = first / count;  // block address, MSB-first path
  ForceVectors fv;
  for (std::uint32_t level = 0; level < forced_levels; ++level) {
    const std::uint32_t dir = (prefix >> (forced_levels - 1 - level)) & 1U;
    if (dir == 0)
      fv.up |= (1U << level);
    else
      fv.down |= (1U << level);
  }
  return fv;
}

WayMask TreePlru::reachable_ways(const ForceVectors& force) const {
  std::uint32_t lo = 0;
  std::uint32_t span = ways_;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t half = span / 2;
    if (force.forces_up(level)) {
      span = half;
    } else if (force.forces_down(level)) {
      lo += half;
      span = half;
    } else {
      // An unforced level below a forced one widens the reachable set to the
      // whole remaining subtree; deeper force bits would only matter if every
      // level above were forced too. The paper's partitions force a prefix.
      break;
    }
  }
  return way_range_mask(lo, span);
}

}  // namespace plrupart::cache
