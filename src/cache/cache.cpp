#include "plrupart/cache/cache.hpp"

#include <algorithm>

#include "cache/policy_visit.hpp"

#include "cache/access_impl.ipp"

namespace plrupart::cache {

std::string to_string(EnforcementMode m) {
  switch (m) {
    case EnforcementMode::kNone:
      return "none";
    case EnforcementMode::kWayMasks:
      return "way-masks";
    case EnforcementMode::kOwnerCounters:
      return "owner-counters";
  }
  return "?";
}

SetAssocCache::SetAssocCache(const Geometry& geo, ReplacementKind repl,
                             std::uint32_t num_cores, EnforcementMode enforcement,
                             std::uint64_t seed)
    : geo_(geo),
      num_cores_(num_cores),
      enforcement_(enforcement),
      dispatch_(active_dispatch_tier()),
      kind_(repl),
      policy_(make_policy(repl, geo, seed)),
      masks_(num_cores, full_way_mask(geo.associativity)),
      quotas_(num_cores, geo.associativity),
      stats_(num_cores) {
  PLRUPART_ASSERT(num_cores >= 1);
  geo_.validate();
  PLRUPART_ASSERT(kind_ == policy_->kind());
  ways_ = geo_.associativity;
  line_shift_ = ilog2_exact(geo_.line_bytes);
  tag_shift_ = ilog2_exact(geo_.sets());
  set_mask_ = geo_.sets() - 1;
  all_ways_ = full_way_mask(ways_);
  partial_words_ = (ways_ + 7) / 8;
  partial_off_ = num_cores_ + 1;
  meta_stride_ = partial_off_ + partial_words_;
  // +8 words = 64 bytes of padding on each array: the AVX dispatch tiers'
  // kernels load whole 32/64-byte blocks past the scanned range and mask the
  // overhang (the padded-buffer contract of src/cache/simd).
  tags_.assign(geo_.sets() * ways_ + 8, 0);
  set_meta_.assign(geo_.sets() * meta_stride_ + 8, 0);
}

void SetAssocCache::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(set_meta_.begin(), set_meta_.end(), 0);
  policy_->reset();
  stats_.reset();
}

WayMask SetAssocCache::eviction_mask(std::uint64_t set, CoreId core) const {
  // Under quota: steal from other cores' lines; at/over quota: evict own.
  // The per-core ownership bitmasks are maintained incrementally, so this
  // is O(1) in the associativity (the pre-SoA layout rescanned every way).
  const WayMask valid = valid_mask(set);
  const WayMask own = owner_ways(set, core);
  const WayMask others = valid & ~own;
  const bool under_quota = mask_count(own) < quotas_[core];
  if (under_quota && others != 0) return others;
  if (own != 0) return own;
  // Degenerate set states (core owns everything, or owns nothing while at
  // quota zero lines): fall back to any valid line.
  return valid != 0 ? valid : all_ways_;
}

// The serial hot path. The externalized-stats 4-arg overload lives in
// cache_shard_access.cpp so its access_impl instantiations cannot perturb
// this TU's codegen, and the AVX tiers live in src/cache/simd/access_*.cpp
// (the only TUs built with the matching -m flags) — see access_impl.ipp.
AccessOutcome SetAssocCache::access(CoreId core, Addr addr, bool write) {
  switch (dispatch_) {
#if defined(PLRUPART_SIMD_AVX2)
    case DispatchTier::kAvx2:
      return access_avx2(core, addr, write, stats_);
#endif
#if defined(PLRUPART_SIMD_AVX512)
    case DispatchTier::kAvx512:
      return access_avx512(core, addr, write, stats_);
#endif
    case DispatchTier::kScalar:
      return access_scalar(core, addr, write, stats_);
    default:
      return access_host<DispatchTier::kSwar>(core, addr, write, stats_);
  }
}

AccessOutcome SetAssocCache::probe(Addr addr) const {
  const Addr la = addr >> line_shift_;
  const std::uint64_t set = la & set_mask_;
  const std::uint64_t tag = la >> tag_shift_;
  AccessOutcome out;
  if (const std::uint32_t w = find_way(set, tag); w != kNoWay) {
    out.hit = true;
    out.way = w;
  }
  return out;
}

bool SetAssocCache::invalidate(Addr addr) {
  const Addr la = addr >> line_shift_;
  const std::uint64_t set = la & set_mask_;
  const std::uint64_t tag = la >> tag_shift_;
  const std::uint32_t w = find_way(set, tag);
  if (w == kNoWay) return false;
  const WayMask bit = WayMask{1} << w;
  owner_ways(set, owner_of(set, w)) &= ~bit;
  valid_mask(set) &= ~bit;
  return true;
}

void SetAssocCache::set_way_mask(CoreId core, WayMask mask) {
  PLRUPART_ASSERT(core < num_cores_);
  PLRUPART_ASSERT_MSG(enforcement_ == EnforcementMode::kWayMasks,
                      "way masks only apply in kWayMasks mode");
  mask &= all_ways_;
  PLRUPART_ASSERT_MSG(mask != 0, "a core needs at least one way");
  masks_[core] = mask;
}

WayMask SetAssocCache::way_mask(CoreId core) const {
  PLRUPART_ASSERT(core < num_cores_);
  return masks_[core];
}

void SetAssocCache::set_way_quota(CoreId core, std::uint32_t ways) {
  PLRUPART_ASSERT(core < num_cores_);
  PLRUPART_ASSERT_MSG(enforcement_ == EnforcementMode::kOwnerCounters,
                      "quotas only apply in kOwnerCounters mode");
  PLRUPART_ASSERT(ways >= 1 && ways <= ways_);
  quotas_[core] = ways;
}

std::uint32_t SetAssocCache::way_quota(CoreId core) const {
  PLRUPART_ASSERT(core < num_cores_);
  return quotas_[core];
}

std::uint32_t SetAssocCache::owned_in_set(std::uint64_t set, CoreId core) const {
  PLRUPART_ASSERT(core < num_cores_);
  return mask_count(owner_ways(set, core));
}

}  // namespace plrupart::cache
