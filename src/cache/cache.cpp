#include "cache/cache.hpp"

namespace plrupart::cache {

std::string to_string(EnforcementMode m) {
  switch (m) {
    case EnforcementMode::kNone:
      return "none";
    case EnforcementMode::kWayMasks:
      return "way-masks";
    case EnforcementMode::kOwnerCounters:
      return "owner-counters";
  }
  return "?";
}

SetAssocCache::SetAssocCache(const Geometry& geo, ReplacementKind repl,
                             std::uint32_t num_cores, EnforcementMode enforcement,
                             std::uint64_t seed)
    : geo_(geo),
      num_cores_(num_cores),
      enforcement_(enforcement),
      policy_(make_policy(repl, geo, seed)),
      lines_(geo.sets() * geo.associativity),
      masks_(num_cores, full_way_mask(geo.associativity)),
      quotas_(num_cores, geo.associativity),
      owner_counts_(enforcement == EnforcementMode::kOwnerCounters
                        ? geo.sets() * num_cores
                        : 0,
                    0),
      stats_(num_cores) {
  PLRUPART_ASSERT(num_cores >= 1);
  geo_.validate();
}

void SetAssocCache::reset() {
  for (auto& l : lines_) l = Line{};
  for (auto& c : owner_counts_) c = 0;
  policy_->reset();
  stats_.reset();
}

WayMask SetAssocCache::eviction_mask(std::uint64_t set, CoreId core) const {
  const WayMask all = full_way_mask(geo_.associativity);
  switch (enforcement_) {
    case EnforcementMode::kNone:
      return all;
    case EnforcementMode::kWayMasks:
      return masks_[core];
    case EnforcementMode::kOwnerCounters: {
      // Under quota: steal from other cores' lines; at/over quota: evict own.
      WayMask own = 0;
      WayMask others = 0;
      for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
        const Line& l = line(set, w);
        if (!l.valid) continue;  // invalid ways are filled before eviction
        if (l.owner == core)
          own |= (WayMask{1} << w);
        else
          others |= (WayMask{1} << w);
      }
      const bool under_quota = owner_count(set, core) < quotas_[core];
      if (under_quota && others != 0) return others;
      if (own != 0) return own;
      // Degenerate set states (core owns everything, or owns nothing while at
      // quota zero lines): fall back to any valid line.
      return (own | others) != 0 ? (own | others) : all;
    }
  }
  return all;
}

AccessOutcome SetAssocCache::access(CoreId core, Addr addr, bool write) {
  PLRUPART_ASSERT(core < num_cores_);
  const Addr la = geo_.line_addr(addr);
  const std::uint64_t set = geo_.set_index(la);
  const std::uint64_t tag = geo_.tag(la);

  CoreCacheStats& cs = stats_.per_core[core];
  ++cs.accesses;
  if (write) ++cs.writes;

  // The scope the replacement policy sees (NRU saturation resets, fills): the
  // core's way mask under mask enforcement, the whole set otherwise. Owner
  // counters derive their victim scope from line ownership, not from here.
  const WayMask policy_scope = enforcement_ == EnforcementMode::kWayMasks
                                   ? masks_[core]
                                   : full_way_mask(geo_.associativity);
  AccessOutcome out;

  // Hit path: a core may hit in any way, regardless of partitioning.
  for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
    Line& l = line(set, w);
    if (l.valid && l.tag == tag) {
      ++cs.hits;
      policy_->on_hit(set, w, policy_scope);
      out.hit = true;
      out.way = w;
      return out;
    }
  }

  // Miss path.
  ++cs.misses;

  // Fill an invalid way first. Invalid lines belong to nobody, so the scan is
  // scoped by the way mask (mask enforcement confines a core's fills) but not
  // by ownership quotas.
  std::uint32_t victim = geo_.associativity;  // sentinel
  for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
    if (mask_test(policy_scope, w) && !line(set, w).valid) {
      victim = w;
      break;
    }
  }
  if (victim == geo_.associativity) {
    const WayMask victim_scope = enforcement_ == EnforcementMode::kOwnerCounters
                                     ? eviction_mask(set, core)
                                     : policy_scope;
    victim = policy_->choose_victim(set, victim_scope);
    PLRUPART_ASSERT_MSG(mask_test(victim_scope, victim),
                        "victim escaped the enforcement mask");
  }

  Line& v = line(set, victim);
  if (v.valid) {
    out.evicted_valid = true;
    out.evicted_line = (v.tag << ilog2_exact(geo_.sets())) | set;
    out.evicted_owner = v.owner;
    if (v.owner == core)
      ++cs.self_evictions;
    else
      ++cs.cross_evictions;
    if (enforcement_ == EnforcementMode::kOwnerCounters) {
      PLRUPART_ASSERT(owner_count(set, v.owner) > 0);
      --owner_count(set, v.owner);
    }
  }

  v.tag = tag;
  v.owner = core;
  v.valid = true;
  if (enforcement_ == EnforcementMode::kOwnerCounters) ++owner_count(set, core);

  policy_->on_fill(set, victim, policy_scope);
  out.hit = false;
  out.way = victim;
  return out;
}

AccessOutcome SetAssocCache::probe(Addr addr) const {
  const Addr la = geo_.line_addr(addr);
  const std::uint64_t set = geo_.set_index(la);
  const std::uint64_t tag = geo_.tag(la);
  AccessOutcome out;
  for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
    const Line& l = line(set, w);
    if (l.valid && l.tag == tag) {
      out.hit = true;
      out.way = w;
      return out;
    }
  }
  return out;
}

bool SetAssocCache::invalidate(Addr addr) {
  const Addr la = geo_.line_addr(addr);
  const std::uint64_t set = geo_.set_index(la);
  const std::uint64_t tag = geo_.tag(la);
  for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
    Line& l = line(set, w);
    if (l.valid && l.tag == tag) {
      l.valid = false;
      if (enforcement_ == EnforcementMode::kOwnerCounters) {
        PLRUPART_ASSERT(owner_count(set, l.owner) > 0);
        --owner_count(set, l.owner);
      }
      return true;
    }
  }
  return false;
}

void SetAssocCache::set_way_mask(CoreId core, WayMask mask) {
  PLRUPART_ASSERT(core < num_cores_);
  PLRUPART_ASSERT_MSG(enforcement_ == EnforcementMode::kWayMasks,
                      "way masks only apply in kWayMasks mode");
  mask &= full_way_mask(geo_.associativity);
  PLRUPART_ASSERT_MSG(mask != 0, "a core needs at least one way");
  masks_[core] = mask;
}

WayMask SetAssocCache::way_mask(CoreId core) const {
  PLRUPART_ASSERT(core < num_cores_);
  return masks_[core];
}

void SetAssocCache::set_way_quota(CoreId core, std::uint32_t ways) {
  PLRUPART_ASSERT(core < num_cores_);
  PLRUPART_ASSERT_MSG(enforcement_ == EnforcementMode::kOwnerCounters,
                      "quotas only apply in kOwnerCounters mode");
  PLRUPART_ASSERT(ways >= 1 && ways <= geo_.associativity);
  quotas_[core] = ways;
}

std::uint32_t SetAssocCache::way_quota(CoreId core) const {
  PLRUPART_ASSERT(core < num_cores_);
  return quotas_[core];
}

std::uint32_t SetAssocCache::owned_in_set(std::uint64_t set, CoreId core) const {
  PLRUPART_ASSERT(core < num_cores_);
  if (enforcement_ == EnforcementMode::kOwnerCounters) return owner_count(set, core);
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < geo_.associativity; ++w) {
    const Line& l = line(set, w);
    if (l.valid && l.owner == core) ++n;
  }
  return n;
}

}  // namespace plrupart::cache
