// Binary-Tree pseudo-LRU (the IBM scheme of the paper / US patent 7,069,390).
//
// Each set carries A-1 tree bits laid out as an implicit heap: node 0 is the
// root, node i has children 2i+1 ("upper" subtree = lower way indices) and
// 2i+2 ("lower" subtree = higher way indices). A node bit of 1 means the MRU
// line is in the upper subtree, so victim search descends toward the *other*
// side: bit 0 -> upper child, bit 1 -> lower child.
//
// Partition enforcement (paper Fig. 5) adds per-core up/down force vectors of
// log2(A) bits each: at tree level l, up[l] overrides the node bit with 0
// (search the upper subtree), down[l] overrides it with 1. A force-vector pair
// confines a core to one aligned power-of-two block of ways. The library also
// provides mask-guided traversal — at each node, if only one subtree
// intersects the allowed mask, descend there — which is equivalent to the
// vectors whenever the mask is an aligned power-of-two block (tested), and
// generalizes them to arbitrary contiguous masks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/replacement.hpp"

namespace plrupart::cache {

/// Per-core force vectors for BT partition enforcement. Bit l (from the root,
/// l = 0) of `up`/`down` forces traversal at level l. up and down must never
/// both be set at a level.
struct ForceVectors {
  std::uint32_t up = 0;
  std::uint32_t down = 0;

  [[nodiscard]] bool forces_up(std::uint32_t level) const noexcept {
    return (up >> level) & 1U;
  }
  [[nodiscard]] bool forces_down(std::uint32_t level) const noexcept {
    return (down >> level) & 1U;
  }

  friend constexpr bool operator==(const ForceVectors&, const ForceVectors&) = default;
};

class TreePlru final : public ReplacementPolicy {
 public:
  explicit TreePlru(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kTreePlru;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) override;

  /// Mask-guided traversal (see file comment).
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override;

  /// Faithful paper enforcement: traversal steered only by the force vectors.
  [[nodiscard]] std::uint32_t choose_victim_with_vectors(std::uint64_t set,
                                                         const ForceVectors& force);

  /// Paper §III-B profiling: estimated stack position
  ///   A − numeric_value(ID(way) XOR path-bits(way)),
  /// where ID(way) is produced by the way-number decoder (way bits MSB-first).
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override;
  void reset() override;

  /// The decoder of paper Fig. 4(c): ID bits for `way`, packed with the root
  /// level in the most significant of log2(A) bits.
  [[nodiscard]] std::uint32_t id_bits(std::uint32_t way) const;

  /// Current tree-path bits of `way`, packed root-first (test/profiler hook).
  [[nodiscard]] std::uint32_t path_bits(std::uint64_t set, std::uint32_t way) const;

  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }

  /// Force vectors confining a core to `mask`, when expressible: the mask must
  /// be one aligned power-of-two block of ways. Returns nullopt otherwise.
  [[nodiscard]] std::optional<ForceVectors> derive_force_vectors(WayMask mask) const;

  /// The set of ways reachable by vector-steered traversal (the core's block).
  [[nodiscard]] WayMask reachable_ways(const ForceVectors& force) const;

 private:
  void promote(std::uint64_t set, std::uint32_t way);
  [[nodiscard]] bool node_bit(std::uint64_t set, std::uint32_t node) const {
    return (tree_[set] >> node) & 1ULL;
  }
  void set_node_bit(std::uint64_t set, std::uint32_t node, bool v) {
    if (v)
      tree_[set] |= (1ULL << node);
    else
      tree_[set] &= ~(1ULL << node);
  }

  std::vector<std::uint64_t> tree_;  // A-1 node bits per set
  std::uint32_t levels_;
};

}  // namespace plrupart::cache
