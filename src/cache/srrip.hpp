// Static RRIP (SRRIP, Jaleel et al., ISCA 2010) — an extension beyond the
// paper: a third pseudo-LRU-class policy to demonstrate that the library's
// partitioning/profiling framework generalizes past NRU and BT.
//
// Each line carries a 2-bit re-reference prediction value (RRPV). Fills
// insert at RRPV 2 ("long"), hits promote to 0 ("near-immediate"), victims
// are lines with RRPV 3 ("distant"); when none exists within the victim scope
// every scoped RRPV ages by one and the scan retries. The RRPV quartile also
// yields a natural eSDH estimate for the profiling logic.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"

namespace plrupart::cache {

class Srrip final : public ReplacementPolicy {
 public:
  static constexpr std::uint8_t kMaxRrpv = 3;       ///< 2-bit RRPV
  static constexpr std::uint8_t kInsertRrpv = 2;    ///< SRRIP "long" insertion
  static constexpr std::uint8_t kHitRrpv = 0;

  explicit Srrip(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kSrrip;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override;

  /// RRPV quartile estimate: RRPV r maps to stack positions
  /// [r*A/4 + 1, (r+1)*A/4], recorded at the quartile's far edge — the same
  /// "upper bound" convention the paper's NRU estimator uses.
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override;
  void reset() override;

  [[nodiscard]] std::uint8_t rrpv(std::uint64_t set, std::uint32_t way) const {
    return rrpv_[set * ways_ + way];
  }

 private:
  std::vector<std::uint8_t> rrpv_;
};

}  // namespace plrupart::cache
