#include "plrupart/cache/lru.hpp"

namespace plrupart::cache {

TrueLru::TrueLru(const Geometry& geo) : ReplacementPolicy(geo) {
  pos_.resize(sets_ * ways_);
  reset();
}

void TrueLru::reset() {
  for (std::uint64_t s = 0; s < sets_; ++s)
    for (std::uint32_t w = 0; w < ways_; ++w) pos(s, w) = static_cast<std::uint8_t>(w);
}

std::uint32_t TrueLru::stack_position(std::uint64_t set, std::uint32_t way) const {
  return pos(set, way);
}

}  // namespace plrupart::cache
