#include "cache/lru.hpp"

namespace plrupart::cache {

TrueLru::TrueLru(const Geometry& geo) : ReplacementPolicy(geo) {
  pos_.resize(sets_ * ways_);
  reset();
}

void TrueLru::reset() {
  for (std::uint64_t s = 0; s < sets_; ++s)
    for (std::uint32_t w = 0; w < ways_; ++w) pos(s, w) = static_cast<std::uint8_t>(w);
}

void TrueLru::promote(std::uint64_t set, std::uint32_t way) {
  const std::uint8_t old = pos(set, way);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (pos(set, w) < old) ++pos(set, w);
  }
  pos(set, way) = 0;
}

void TrueLru::on_hit(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) {
  promote(set, way);
}

void TrueLru::on_fill(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) {
  promote(set, way);
}

std::uint32_t TrueLru::choose_victim(std::uint64_t set, WayMask allowed) {
  PLRUPART_ASSERT((allowed & all_ways()) != 0);
  std::uint32_t victim = 0;
  std::uint8_t deepest = 0;
  bool found = false;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!mask_test(allowed, w)) continue;
    if (!found || pos(set, w) > deepest) {
      victim = w;
      deepest = pos(set, w);
      found = true;
    }
  }
  return victim;
}

StackEstimate TrueLru::estimate_position(std::uint64_t set, std::uint32_t way) const {
  const auto p = static_cast<std::uint32_t>(pos(set, way)) + 1;  // 1-based
  return StackEstimate{.lo = p, .hi = p, .point = p};
}

std::uint32_t TrueLru::stack_position(std::uint64_t set, std::uint32_t way) const {
  return pos(set, way);
}

}  // namespace plrupart::cache
