#include "cache/srrip.hpp"

namespace plrupart::cache {

Srrip::Srrip(const Geometry& geo) : ReplacementPolicy(geo) {
  rrpv_.resize(sets_ * ways_, kMaxRrpv);  // cold lines look distant
}

void Srrip::reset() {
  for (auto& r : rrpv_) r = kMaxRrpv;
}

void Srrip::on_hit(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) {
  rrpv_[set * ways_ + way] = kHitRrpv;
}

void Srrip::on_fill(std::uint64_t set, std::uint32_t way, WayMask /*allowed*/) {
  rrpv_[set * ways_ + way] = kInsertRrpv;
}

std::uint32_t Srrip::choose_victim(std::uint64_t set, WayMask allowed) {
  allowed &= all_ways();
  PLRUPART_ASSERT(allowed != 0);
  for (;;) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (mask_test(allowed, w) && rrpv_[set * ways_ + w] == kMaxRrpv) return w;
    }
    // Age only the victim scope: lines of other partitions keep their RRPVs,
    // mirroring how the paper scopes the NRU used-bit reset.
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (mask_test(allowed, w)) ++rrpv_[set * ways_ + w];
    }
  }
}

StackEstimate Srrip::estimate_position(std::uint64_t set, std::uint32_t way) const {
  const std::uint32_t r = rrpv(set, way);
  // Quartile width; associativities below 4 collapse to coarse buckets.
  const std::uint32_t span = ways_ >= 4 ? ways_ / 4 : 1;
  std::uint32_t lo = r * span + 1;
  std::uint32_t hi = (r + 1) * span;
  if (lo > ways_) lo = ways_;
  if (hi > ways_) hi = ways_;
  if (r == kMaxRrpv) hi = ways_;  // the distant quartile always reaches A
  return StackEstimate{.lo = lo, .hi = hi, .point = hi};
}

}  // namespace plrupart::cache
