#include "plrupart/cache/srrip.hpp"

namespace plrupart::cache {

Srrip::Srrip(const Geometry& geo) : ReplacementPolicy(geo) {
  // Cold lines look distant. The extra 64 bytes are the padded-buffer
  // contract of the SIMD dispatch tiers (src/cache/simd): their whole-block
  // loads may read past the last set's RRPVs; the overhang is masked away.
  rrpv_.resize(sets_ * ways_ + 64, kMaxRrpv);
}

void Srrip::reset() {
  for (auto& r : rrpv_) r = kMaxRrpv;
}

}  // namespace plrupart::cache
