#include "plrupart/cache/srrip.hpp"

namespace plrupart::cache {

Srrip::Srrip(const Geometry& geo) : ReplacementPolicy(geo) {
  rrpv_.resize(sets_ * ways_, kMaxRrpv);  // cold lines look distant
}

void Srrip::reset() {
  for (auto& r : rrpv_) r = kMaxRrpv;
}

}  // namespace plrupart::cache
