// Not-Recently-Used replacement as implemented in the Sun UltraSPARC T2 L2:
// one used bit per line, plus a single replacement pointer shared by every set
// of the cache (which is what makes victim choice behave randomly — the pointer
// position is uncorrelated with any particular set's history).
//
// Semantics (paper §III-A):
//  * On any access (hit or fill) the line's used bit is set. If that would make
//    every used bit in the access scope 1, all other scope bits reset to 0.
//  * On a miss, scan ways circularly from the replacement pointer for a line
//    with used bit 0, restricted to the enforcement mask; afterwards the
//    pointer advances one way past the victim.
//  * Partitioned operation scopes the saturation reset to the accessing core's
//    allowed ways (∪ the accessed line), which reduces to the base rule when
//    the mask is full (see DESIGN.md "Interpretation decisions").
#pragma once

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"

namespace plrupart::cache {

class Nru final : public ReplacementPolicy {
 public:
  explicit Nru(const Geometry& geo);

  [[nodiscard]] ReplacementKind kind() const noexcept override {
    return ReplacementKind::kNru;
  }

  void on_hit(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  void on_fill(std::uint64_t set, std::uint32_t way, WayMask allowed) override;
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set, WayMask allowed) override;
  [[nodiscard]] StackEstimate estimate_position(std::uint64_t set,
                                                std::uint32_t way) const override;
  void reset() override;

  /// Test/profiler hooks.
  [[nodiscard]] bool used_bit(std::uint64_t set, std::uint32_t way) const;
  [[nodiscard]] std::uint32_t used_count(std::uint64_t set) const;
  [[nodiscard]] std::uint32_t replacement_pointer() const noexcept { return pointer_; }

 private:
  void mark_used(std::uint64_t set, std::uint32_t way, WayMask allowed);

  std::vector<WayMask> used_;   // one used-bit vector per set
  std::uint32_t pointer_ = 0;   // cache-global replacement pointer
};

}  // namespace plrupart::cache
