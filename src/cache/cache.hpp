// Set-associative cache with pluggable replacement policy and the three
// partition-enforcement mechanisms discussed in the paper:
//
//  * kNone          — no partitioning; every core may evict anywhere.
//  * kWayMasks      — global per-core replacement masks (paper §II-B.2): a core
//                     hits anywhere but selects victims only inside its mask.
//                     This mode also carries the BT up/down-vector enforcement,
//                     whose vector-steered traversal is equivalent to
//                     mask-guided traversal on the masks the partitioner emits
//                     (see TreePlru and core/tree_rounding).
//  * kOwnerCounters — per-set owner counters (paper §II-B.1, Qureshi-style):
//                     each line is tagged with its owner core; a core under its
//                     quota steals the victim from other cores' lines, a core
//                     at/over quota evicts among its own.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_stats.hpp"
#include "cache/geometry.hpp"
#include "cache/replacement.hpp"

namespace plrupart::cache {

enum class EnforcementMode : std::uint8_t {
  kNone,
  kWayMasks,
  kOwnerCounters,
};

[[nodiscard]] std::string to_string(EnforcementMode m);

/// Result of one cache access, including eviction information the simulator
/// and the tests use (a writeback model would hook evicted lines here too).
struct AccessOutcome {
  bool hit = false;
  std::uint32_t way = 0;
  bool evicted_valid = false;
  Addr evicted_line = 0;
  CoreId evicted_owner = 0;
};

class SetAssocCache {
 public:
  SetAssocCache(const Geometry& geo, ReplacementKind repl, std::uint32_t num_cores,
                EnforcementMode enforcement, std::uint64_t seed = 0x5eed);

  /// Perform one access for `core` at byte address `addr`. Misses allocate.
  AccessOutcome access(CoreId core, Addr addr, bool write = false);

  /// Non-mutating lookup: would this access hit, and in which way?
  [[nodiscard]] AccessOutcome probe(Addr addr) const;

  /// Drop a line if present (no replacement-state update; mirrors an external
  /// invalidation message).
  bool invalidate(Addr addr);

  // --- Partition control -------------------------------------------------
  /// kWayMasks: set the ways `core` may search for victims (non-empty).
  void set_way_mask(CoreId core, WayMask mask);
  [[nodiscard]] WayMask way_mask(CoreId core) const;

  /// kOwnerCounters: set the number of ways `core` is entitled to.
  void set_way_quota(CoreId core, std::uint32_t ways);
  [[nodiscard]] std::uint32_t way_quota(CoreId core) const;

  /// Number of lines `core` currently holds in `set` (owner-counter state).
  [[nodiscard]] std::uint32_t owned_in_set(std::uint64_t set, CoreId core) const;

  // --- Introspection ------------------------------------------------------
  [[nodiscard]] const Geometry& geometry() const noexcept { return geo_; }
  [[nodiscard]] EnforcementMode enforcement() const noexcept { return enforcement_; }
  [[nodiscard]] std::uint32_t num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] ReplacementPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const ReplacementPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const CacheStatsBundle& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Clear all contents, replacement state and statistics.
  void reset();

 private:
  struct Line {
    std::uint64_t tag = 0;
    CoreId owner = 0;
    bool valid = false;
  };

  [[nodiscard]] Line& line(std::uint64_t set, std::uint32_t way) {
    return lines_[set * geo_.associativity + way];
  }
  [[nodiscard]] const Line& line(std::uint64_t set, std::uint32_t way) const {
    return lines_[set * geo_.associativity + way];
  }

  /// The ways `core` may search for a victim in `set` under the active
  /// enforcement mode (always non-empty).
  [[nodiscard]] WayMask eviction_mask(std::uint64_t set, CoreId core) const;

  [[nodiscard]] std::uint32_t& owner_count(std::uint64_t set, CoreId core) {
    return owner_counts_[set * num_cores_ + core];
  }
  [[nodiscard]] std::uint32_t owner_count(std::uint64_t set, CoreId core) const {
    return owner_counts_[set * num_cores_ + core];
  }

  Geometry geo_;
  std::uint32_t num_cores_;
  EnforcementMode enforcement_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Line> lines_;
  std::vector<WayMask> masks_;          // kWayMasks: per-core eviction masks
  std::vector<std::uint32_t> quotas_;   // kOwnerCounters: per-core way quotas
  std::vector<std::uint32_t> owner_counts_;  // kOwnerCounters: per set x core
  CacheStatsBundle stats_;
};

}  // namespace plrupart::cache
