#include "plrupart/cache/replacement.hpp"

#include "plrupart/cache/lru.hpp"
#include "plrupart/cache/nru.hpp"
#include "plrupart/cache/random_repl.hpp"
#include "plrupart/cache/srrip.hpp"
#include "plrupart/cache/tree_plru.hpp"

namespace plrupart::cache {

std::string to_string(ReplacementKind k) {
  switch (k) {
    case ReplacementKind::kLru:
      return "LRU";
    case ReplacementKind::kNru:
      return "NRU";
    case ReplacementKind::kTreePlru:
      return "BT";
    case ReplacementKind::kRandom:
      return "RANDOM";
    case ReplacementKind::kSrrip:
      return "SRRIP";
  }
  return "?";
}

std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind, const Geometry& geo,
                                               std::uint64_t seed) {
  geo.validate();
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<TrueLru>(geo);
    case ReplacementKind::kNru:
      return std::make_unique<Nru>(geo);
    case ReplacementKind::kTreePlru:
      return std::make_unique<TreePlru>(geo);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomRepl>(geo, seed);
    case ReplacementKind::kSrrip:
      return std::make_unique<Srrip>(geo);
  }
  PLRUPART_ASSERT_MSG(false, "unknown replacement kind");
  return nullptr;
}

}  // namespace plrupart::cache
