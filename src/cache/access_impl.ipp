// Definition of SetAssocCache::access_impl, shared by the two dispatch TUs.
//
// The serial hot path (3-arg access, cache.cpp) and the externalized-stats
// path used by the set-sharded replay engine (4-arg access,
// cache_shard_access.cpp) each instantiate the full policy x enforcement
// matrix of this template. Keeping them in separate translation units keeps
// the serial TU's generated code — and therefore its inlining and icache
// behaviour — identical to when the 3-arg overload was the only caller;
// folding both overloads into one TU measurably regressed BM_CacheAccess.
//
// Include only from those two TUs, after cache/policy_visit.hpp.

namespace plrupart::cache {

template <EnforcementMode E, class Policy>
AccessOutcome SetAssocCache::access_impl(Policy& pol, CoreId core, Addr addr,
                                         bool write, CacheStatsBundle& stats) {
  PLRUPART_ASSERT(core < num_cores_);
  const Addr la = addr >> line_shift_;
  const std::uint64_t set = la & set_mask_;
  const std::uint64_t tag = la >> tag_shift_;

  CoreCacheStats& cs = stats.per_core[core];
  ++cs.accesses;
  cs.writes += static_cast<std::uint64_t>(write);

  // The scope the replacement policy sees (NRU saturation resets, fills): the
  // core's way mask under mask enforcement, the whole set otherwise. Owner
  // counters derive their victim scope from line ownership, not from here.
  const WayMask policy_scope =
      E == EnforcementMode::kWayMasks ? masks_[core] : all_ways_;

  // Hit path: a core may hit in any way, regardless of partitioning.
  if (const std::uint32_t w = find_way(set, tag); w != kNoWay) {
    ++cs.hits;
    pol.on_hit(set, w, policy_scope);
    AccessOutcome out;
    out.hit = true;
    out.way = w;
    return out;
  }

  // Miss path.
  ++cs.misses;

  // Fill an invalid way first. Invalid lines belong to nobody, so the scan is
  // scoped by the way mask (mask enforcement confines a core's fills) but not
  // by ownership quotas.
  std::uint32_t victim;
  if (const WayMask invalid = policy_scope & ~valid_mask(set); invalid != 0) {
    victim = mask_first(invalid);
  } else {
    const WayMask victim_scope = E == EnforcementMode::kOwnerCounters
                                     ? eviction_mask(set, core)
                                     : policy_scope;
    victim = pol.choose_victim(set, victim_scope);
    PLRUPART_ASSERT_MSG(mask_test(victim_scope, victim),
                        "victim escaped the enforcement mask");
  }

  AccessOutcome out;
  const std::uint64_t idx = set * ways_ + victim;
  const WayMask victim_bit = WayMask{1} << victim;
  if ((valid_mask(set) & victim_bit) != 0) {
    const CoreId prev_owner = owner_of(set, victim);
    out.evicted_valid = true;
    out.evicted_line = (tags_[idx] << tag_shift_) | set;
    out.evicted_owner = prev_owner;
    if (prev_owner == core)
      ++cs.self_evictions;
    else
      ++cs.cross_evictions;
    owner_ways(set, prev_owner) &= ~victim_bit;
  }

  tags_[idx] = tag;
  set_partial(set, victim, tag);
  valid_mask(set) |= victim_bit;
  owner_ways(set, core) |= victim_bit;

  pol.on_fill(set, victim, policy_scope);
  out.hit = false;
  out.way = victim;
  return out;
}

}  // namespace plrupart::cache
