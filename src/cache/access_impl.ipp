// Definition of SetAssocCache::access_impl and the tier-pinned drivers built
// on it, shared by the per-tier dispatch TUs.
//
// The serial hot path (3-arg access, cache.cpp) and the externalized-stats
// path used by the set-sharded replay engine (4-arg access,
// cache_shard_access.cpp) each instantiate the full policy x enforcement
// matrix of this template for D = kSwar ONLY. Keeping them in separate
// translation units — and keeping every other tier's instantiation out of
// them — keeps each TU's generated code, and therefore its inlining and
// icache behaviour, identical to when that overload was the TU's only
// content: one extra tier instantiated alongside kSwar pushes visit_policy
// past gcc's inlining budget and costs ~10% on 16-way BM_CacheAccess.
// kScalar lives in src/cache/access_scalar.cpp; the AVX tiers live in
// src/cache/simd/access_avx2.cpp and access_avx512.cpp, which are also the
// only TUs compiled with the matching -m target flags (what makes the
// intrinsics in the kAvx* branches of find_way_dispatch legal to emit).
//
// Include only from those TUs, after cache/policy_visit.hpp.

#include "cache/simd/simd_kernels.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define PLRUPART_PREFETCH(p) __builtin_prefetch(p)
#else
#define PLRUPART_PREFETCH(p) ((void)(p))
#endif

namespace plrupart::cache {

// The tag-filter scan of tier D. Every tier returns the lowest valid way
// whose full tag matches, or kNoWay: kScalar compares full tags directly;
// kSwar and the AVX tiers first filter the packed 1-byte partial tags (SWAR
// word tricks vs vpcmpeqb+movemask) and verify only the nominated ways, so
// all tiers agree bit-for-bit. The partial-byte reinterpretation relies on
// the little-endian byte order of every supported x86 target (byte w of the
// filter block is way w's partial tag).
template <DispatchTier D>
std::uint32_t SetAssocCache::find_way_dispatch(std::uint64_t set,
                                               std::uint64_t tag) const {
  if constexpr (D == DispatchTier::kScalar) {
    const WayMask valid = valid_mask(set);
    const std::uint64_t* tags = tags_.data() + set * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (mask_test(valid, w) && tags[w] == tag) return w;
    }
    return kNoWay;
  } else if constexpr (D == DispatchTier::kSwar) {
    return find_way(set, tag);
  } else {
    const auto* partial = reinterpret_cast<const std::uint8_t*>(
        set_meta_.data() + set * meta_stride_ + partial_off_);
    WayMask candidates = 0;
#if defined(__AVX2__)
    if constexpr (D == DispatchTier::kAvx2)
      candidates = simd::byte_match_avx2_impl(partial, ways_,
                                              static_cast<std::uint8_t>(tag & 0xff));
#endif
#if defined(__AVX512BW__)
    if constexpr (D == DispatchTier::kAvx512)
      candidates = simd::byte_match_avx512_impl(partial, ways_,
                                                static_cast<std::uint8_t>(tag & 0xff));
#endif
    candidates &= valid_mask(set);
    const std::uint64_t* tags = tags_.data() + set * ways_;
    while (candidates != 0) {
      const std::uint32_t w = mask_first(candidates);
      if (tags[w] == tag) return w;
      candidates &= candidates - 1;
    }
    return kNoWay;
  }
}

template <EnforcementMode E, DispatchTier D, class Policy>
AccessOutcome SetAssocCache::access_impl(Policy& pol, CoreId core, Addr addr,
                                         bool write, CacheStatsBundle& stats) {
  PLRUPART_ASSERT(core < num_cores_);
  const Addr la = addr >> line_shift_;
  const std::uint64_t set = la & set_mask_;
  const std::uint64_t tag = la >> tag_shift_;

  CoreCacheStats& cs = stats.per_core[core];
  ++cs.accesses;
  cs.writes += static_cast<std::uint64_t>(write);

  // The scope the replacement policy sees (NRU saturation resets, fills): the
  // core's way mask under mask enforcement, the whole set otherwise. Owner
  // counters derive their victim scope from line ownership, not from here.
  const WayMask policy_scope =
      E == EnforcementMode::kWayMasks ? masks_[core] : all_ways_;

  // Hit path: a core may hit in any way, regardless of partitioning.
  if (const std::uint32_t w = find_way_dispatch<D>(set, tag); w != kNoWay) {
    ++cs.hits;
    pol.on_hit(set, w, policy_scope);
    AccessOutcome out;
    out.hit = true;
    out.way = w;
    return out;
  }

  // Miss path.
  ++cs.misses;

  // Fill an invalid way first. Invalid lines belong to nobody, so the scan is
  // scoped by the way mask (mask enforcement confines a core's fills) but not
  // by ownership quotas.
  std::uint32_t victim;
  if (const WayMask invalid = policy_scope & ~valid_mask(set); invalid != 0) {
    victim = mask_first(invalid);
  } else {
    const WayMask victim_scope = E == EnforcementMode::kOwnerCounters
                                     ? eviction_mask(set, core)
                                     : policy_scope;
    victim = choose_victim_dispatch<D>(pol, set, victim_scope);
    PLRUPART_ASSERT_MSG(mask_test(victim_scope, victim),
                        "victim escaped the enforcement mask");
  }

  AccessOutcome out;
  const std::uint64_t idx = set * ways_ + victim;
  const WayMask victim_bit = WayMask{1} << victim;
  if ((valid_mask(set) & victim_bit) != 0) {
    const CoreId prev_owner = owner_of(set, victim);
    out.evicted_valid = true;
    out.evicted_line = (tags_[idx] << tag_shift_) | set;
    out.evicted_owner = prev_owner;
    if (prev_owner == core)
      ++cs.self_evictions;
    else
      ++cs.cross_evictions;
    owner_ways(set, prev_owner) &= ~victim_bit;
  }

  tags_[idx] = tag;
  set_partial(set, victim, tag);
  valid_mask(set) |= victim_bit;
  owner_ways(set, core) |= victim_bit;

  pol.on_fill(set, victim, policy_scope);
  out.hit = false;
  out.way = victim;
  return out;
}

template <DispatchTier D>
AccessOutcome SetAssocCache::access_host(CoreId core, Addr addr, bool write,
                                         CacheStatsBundle& stats) {
  return visit_policy(kind_, *policy_, [&](auto& pol) {
    switch (enforcement_) {
      case EnforcementMode::kWayMasks:
        return access_impl<EnforcementMode::kWayMasks, D>(pol, core, addr, write,
                                                          stats);
      case EnforcementMode::kOwnerCounters:
        return access_impl<EnforcementMode::kOwnerCounters, D>(pol, core, addr,
                                                               write, stats);
      case EnforcementMode::kNone:
        break;
    }
    return access_impl<EnforcementMode::kNone, D>(pol, core, addr, write, stats);
  });
}

// Batched replay: op k runs exactly the serial access_impl after op k-1, so
// outcomes and statistics are identical to n separate access() calls; the
// win is the prefetch window issuing the set-metadata loads of upcoming ops
// while the current op's dependent chain (set decode -> filter load ->
// verify -> policy update) drains.
template <EnforcementMode E, DispatchTier D, class Policy>
void SetAssocCache::access_batch_impl(Policy& pol, const BatchOp* ops,
                                      std::size_t n, AccessOutcome* out,
                                      CacheStatsBundle& stats) {
  constexpr std::size_t kWindow = 8;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = i + kWindow < n ? i + kWindow : n;
    for (std::size_t k = i; k < end; ++k) {
      const std::uint64_t set = (ops[k].addr >> line_shift_) & set_mask_;
      PLRUPART_PREFETCH(set_meta_.data() + set * meta_stride_);
      PLRUPART_PREFETCH(tags_.data() + set * ways_);
    }
    for (std::size_t k = i; k < end; ++k) {
      out[k] =
          access_impl<E, D>(pol, ops[k].core, ops[k].addr, ops[k].write, stats);
    }
    i = end;
  }
}

template <DispatchTier D>
void SetAssocCache::access_batch_host(const BatchOp* ops, std::size_t n,
                                      AccessOutcome* out, CacheStatsBundle& stats) {
  visit_policy(kind_, *policy_, [&](auto& pol) {
    switch (enforcement_) {
      case EnforcementMode::kWayMasks:
        access_batch_impl<EnforcementMode::kWayMasks, D>(pol, ops, n, out, stats);
        return;
      case EnforcementMode::kOwnerCounters:
        access_batch_impl<EnforcementMode::kOwnerCounters, D>(pol, ops, n, out,
                                                              stats);
        return;
      case EnforcementMode::kNone:
        break;
    }
    access_batch_impl<EnforcementMode::kNone, D>(pol, ops, n, out, stats);
  });
}

}  // namespace plrupart::cache

#undef PLRUPART_PREFETCH
