#include "plrupart/sim/memory_hierarchy.hpp"

#include "plrupart/common/rng.hpp"

namespace plrupart::sim {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config) : config_(std::move(config)) {
  config_.validate();
  const std::uint32_t cores = config_.l2.num_cores;
  PLRUPART_ASSERT(cores >= 1);
  l1d_.reserve(cores);
  for (std::uint32_t i = 0; i < cores; ++i) {
    l1d_.push_back(std::make_unique<cache::SetAssocCache>(
        config_.l1d, cache::ReplacementKind::kLru, /*num_cores=*/1,
        cache::EnforcementMode::kNone, derive_seed(config_.l2.seed, 1000 + i)));
  }
  l2_ = std::make_unique<core::PartitionedCacheSystem>(config_.l2);
  counters_.resize(cores);
}

AccessLevel MemoryHierarchy::access(cache::CoreId core, cache::Addr addr, bool write,
                                    std::uint64_t now_cycles) {
  L2Echo echo;
  return access(core, addr, write, now_cycles, echo);
}

AccessLevel MemoryHierarchy::access(cache::CoreId core, cache::Addr addr, bool write,
                                    std::uint64_t now_cycles, L2Echo& echo) {
  PLRUPART_ASSERT(core < l1d_.size());
  HierarchyCounters& ctr = counters_[core];
  echo = L2Echo{};

  ++ctr.l1_accesses;
  const auto l1 = l1d_[core]->access(0, addr, write);
  if (l1.hit) return AccessLevel::kL1;

  ++ctr.l1_misses;
  ++ctr.l2_accesses;
  const auto l2 = l2_->access(core, addr, write, now_cycles);
  echo.reached_l2 = true;
  echo.hit = l2.hit;
  echo.way = l2.way;
  echo.evicted_valid = l2.evicted_valid;
  echo.evicted_line = l2.evicted_line;
  if (l2.hit) return AccessLevel::kL2;

  ++ctr.l2_misses;
  return AccessLevel::kMemory;
}

const cache::SetAssocCache& MemoryHierarchy::l1d(cache::CoreId core) const {
  PLRUPART_ASSERT(core < l1d_.size());
  return *l1d_[core];
}

const HierarchyCounters& MemoryHierarchy::counters(cache::CoreId core) const {
  PLRUPART_ASSERT(core < counters_.size());
  return counters_[core];
}

cache::SetAssocCache& MemoryHierarchy::l1d_mut(cache::CoreId core) {
  PLRUPART_ASSERT(core < l1d_.size());
  return *l1d_[core];
}

void MemoryHierarchy::set_counters(cache::CoreId core, const HierarchyCounters& ctr) {
  PLRUPART_ASSERT(core < counters_.size());
  counters_[core] = ctr;
}

void MemoryHierarchy::reset() {
  for (auto& l1 : l1d_) l1->reset();
  l2_->reset();
  for (auto& c : counters_) c = HierarchyCounters{};
}

}  // namespace plrupart::sim
