#include "plrupart/sim/cmp_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "plrupart/common/error.hpp"
#include "sim/sharded_replay.hpp"

namespace plrupart::sim {

CmpSimulator::CmpSimulator(SimConfig config, std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(std::move(config)), traces_(std::move(traces)) {
  const std::uint32_t cores = config_.hierarchy.l2.num_cores;
  PLRUPART_ASSERT_MSG(traces_.size() == cores, "one trace per core required");
  PLRUPART_ASSERT(config_.instr_limit > 0);
  if (config_.cores.size() == 1 && cores > 1) {
    config_.cores.assign(cores, config_.cores.front());
  }
  PLRUPART_ASSERT_MSG(config_.cores.size() == cores, "one CoreParams per core required");
  hierarchy_ = std::make_unique<MemoryHierarchy>(config_.hierarchy);
}

SimResult CmpSimulator::run() {
  // Explicit call-once contract: the hierarchy (caches, profilers, the
  // controller's partition history) is consumed by the first run, so a second
  // run would silently produce warm-state garbage. Fail loudly instead.
  if (ran_) {
    throw InvariantError(
        "CmpSimulator::run may be called once; construct a fresh simulator "
        "for another run");
  }
  ran_ = true;

  if (config_.timing_mode == TimingMode::kTimed) return run_timed();

  const std::uint32_t shards = internal::resolve_sim_shards(config_);
  if (shards > 1) {
    return internal::run_set_sharded(config_, traces_, *hierarchy_, shards);
  }
  return run_serial();
}

SimResult CmpSimulator::run_serial() {
  const std::uint32_t n = hierarchy_->num_cores();
  std::vector<CoreModel> models;
  models.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) models.emplace_back(config_.cores[i]);

  struct Baseline {
    std::uint64_t instructions = 0;
    double cycles = 0.0;
    HierarchyCounters mem;
  };
  std::vector<Baseline> baselines(n);
  bool windows_open = config_.warmup_instr == 0;

  std::vector<bool> frozen(n, false);
  std::vector<ThreadResult> results(n);
  std::uint32_t remaining = n;

  // Watchdog: wall time is only ever compared against the deadline — it
  // decides whether the run dies, never what the run computes.
  const bool has_deadline = config_.timeout_s > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? config_.timeout_s : 0.0));
  std::uint64_t ops_since_poll = 0;

  while (remaining > 0) {
    if (has_deadline && (++ops_since_poll & 0xfffU) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      throw TimeoutError("simulation exceeded watchdog deadline of " +
                         std::to_string(config_.timeout_s) + " s (serial run)");
    }
    // Advance the core with the smallest local clock (finished cores keep
    // running to preserve contention, with frozen statistics).
    std::uint32_t core = 0;
    double min_cycles = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (models[i].cycles() < min_cycles) {
        min_cycles = models[i].cycles();
        core = i;
      }
    }

    const MemOp op = traces_[core]->next();
    models[core].commit_gap(op.gap_instrs);
    const auto now = static_cast<std::uint64_t>(models[core].cycles());
    const AccessLevel level = hierarchy_->access(core, op.addr, op.write, now);
    models[core].commit_mem(level);

    if (!windows_open) {
      // Windows open for everyone at once, when the slowest core has warmed.
      std::uint64_t min_instr = models[0].instructions();
      for (std::uint32_t i = 1; i < n; ++i)
        min_instr = std::min(min_instr, models[i].instructions());
      if (min_instr >= config_.warmup_instr) {
        windows_open = true;
        for (std::uint32_t i = 0; i < n; ++i) {
          baselines[i].instructions = models[i].instructions();
          baselines[i].cycles = models[i].cycles();
          baselines[i].mem = hierarchy_->counters(i);
        }
      }
      continue;
    }

    if (!frozen[core] &&
        models[core].instructions() >= baselines[core].instructions + config_.instr_limit) {
      frozen[core] = true;
      --remaining;
      const Baseline& base = baselines[core];
      ThreadResult& r = results[core];
      r.benchmark = traces_[core]->name();
      r.instructions = models[core].instructions() - base.instructions;
      r.cycles = models[core].cycles() - base.cycles;
      r.ipc = r.cycles > 0.0 ? static_cast<double>(r.instructions) / r.cycles : 0.0;
      const HierarchyCounters& now_mem = hierarchy_->counters(core);
      r.mem.l1_accesses = now_mem.l1_accesses - base.mem.l1_accesses;
      r.mem.l1_misses = now_mem.l1_misses - base.mem.l1_misses;
      r.mem.l2_accesses = now_mem.l2_accesses - base.mem.l2_accesses;
      r.mem.l2_misses = now_mem.l2_misses - base.mem.l2_misses;
    }
  }

  SimResult out;
  out.threads = std::move(results);
  for (const auto& t : out.threads) out.wall_cycles = std::max(out.wall_cycles, t.cycles);
  const auto* ctrl = hierarchy_->l2().controller();
  out.repartitions = ctrl ? ctrl->history().size() : 0;
  out.l2_config = hierarchy_->l2().config().acronym();
  return out;
}

}  // namespace plrupart::sim
