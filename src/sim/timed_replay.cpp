// Timed-mode replay loop (CmpSimulator::run_timed).
//
// Decision-match by construction: the interleave (argmin over FUNCTIONAL core
// clocks), the trace consumption, and the `now` stamps handed to the L2 are
// copied verbatim from run_serial — so the shared L2 observes the exact same
// access stream in both modes, the profilers gather the same histograms, and
// the interval controller takes the exact same partition decisions at the
// exact same access positions. The timed overlay runs beside that stream: a
// second per-core clock charges memory latency from the event-driven
// MSHR/writeback/banked-DRAM model (TimedMemory) instead of the fixed
// penalties, and those clocks are what the SimResult reports.
//
// A core keeps at most one L2 transaction in flight (its `outstanding`
// ticket). L1 hits retire under it — hit-under-miss — and the fill is awaited
// lazily at the core's next L2-reaching access, charging only the exposed
// fraction of whatever latency is still uncovered at that point. Cross-core
// concurrency is real: many cores' fills occupy MSHRs and DRAM banks at once,
// which is where queueing, coalescing, and bank conflicts come from.
#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "plrupart/common/error.hpp"
#include "plrupart/sim/cmp_simulator.hpp"

namespace plrupart::sim {

SimResult CmpSimulator::run_timed() {
  const std::uint32_t n = hierarchy_->num_cores();
  const cache::Geometry& l2geo = config_.hierarchy.l2.geometry;
  std::vector<CoreModel> models;  // functional clocks: drive the interleave
  models.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) models.emplace_back(config_.cores[i]);

  TimedMemory memory(config_.timed, l2geo);

  struct TimedCore {
    double cycles = 0.0;  ///< the timed clock (what this mode reports)
    TimedMemory::Ticket outstanding{};
    bool has_outstanding = false;
  };
  std::vector<TimedCore> tcores(n);

  // Await core's in-flight L2 transaction and charge the exposed remainder.
  auto charge_retire = [&](std::uint32_t core) {
    TimedCore& tc = tcores[core];
    if (!tc.has_outstanding) return;
    const auto done = static_cast<double>(memory.retire(tc.outstanding));
    tc.has_outstanding = false;
    if (done > tc.cycles) {
      tc.cycles += (done - tc.cycles) * config_.cores[core].stall_fraction;
    }
  };

  struct Baseline {
    std::uint64_t instructions = 0;
    double cycles = 0.0;
    HierarchyCounters mem;
  };
  std::vector<Baseline> baselines(n);
  bool windows_open = config_.warmup_instr == 0;
  TimedStats stats_base;  // snapshot of the overlay counters at window open

  std::vector<bool> frozen(n, false);
  std::vector<ThreadResult> results(n);
  std::uint32_t remaining = n;

  const bool has_deadline = config_.timeout_s > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? config_.timeout_s : 0.0));
  std::uint64_t ops_since_poll = 0;

  while (remaining > 0) {
    if (has_deadline && (++ops_since_poll & 0xfffU) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      throw TimeoutError("simulation exceeded watchdog deadline of " +
                         std::to_string(config_.timeout_s) + " s (timed run)");
    }
    // Identical to run_serial: smallest FUNCTIONAL clock goes next.
    std::uint32_t core = 0;
    double min_cycles = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (models[i].cycles() < min_cycles) {
        min_cycles = models[i].cycles();
        core = i;
      }
    }

    const MemOp op = traces_[core]->next();
    models[core].commit_gap(op.gap_instrs);
    const auto now = static_cast<std::uint64_t>(models[core].cycles());
    L2Echo echo;
    const AccessLevel level = hierarchy_->access(core, op.addr, op.write, now, echo);
    models[core].commit_mem(level);

    // The timed overlay: same committed instructions, latency from the model.
    TimedCore& tc = tcores[core];
    const CoreParams& cp = config_.cores[core];
    tc.cycles += (static_cast<double>(op.gap_instrs) + 1.0) / cp.base_ipc;
    if (echo.reached_l2) {
      // One demand transaction in flight per core: the previous one must
      // retire before the next issues (L1 hits in between already proceeded).
      charge_retire(core);
      const auto t_issue = static_cast<std::uint64_t>(tc.cycles);
      const cache::Addr line = l2geo.line_addr(op.addr);
      if (echo.hit) {
        const auto tk = memory.hit(t_issue, line, echo.way, op.write);
        if (tk.valid) {
          // Fill still in flight: this "hit" waits on the fill, not the array.
          tc.outstanding = tk;
          tc.has_outstanding = true;
        } else {
          tc.cycles += static_cast<double>(config_.timed.l2_hit_cycles) * cp.stall_fraction;
        }
      } else {
        tc.outstanding = memory.miss(t_issue, line, echo.way, op.write, echo.evicted_valid,
                                     echo.evicted_line);
        tc.has_outstanding = true;
      }
    }

    if (!windows_open) {
      std::uint64_t min_instr = models[0].instructions();
      for (std::uint32_t i = 1; i < n; ++i)
        min_instr = std::min(min_instr, models[i].instructions());
      if (min_instr >= config_.warmup_instr) {
        windows_open = true;
        // Settle every in-flight transaction so the measured window starts
        // from a clean overlay, then restart peak tracking.
        for (std::uint32_t i = 0; i < n; ++i) charge_retire(i);
        for (std::uint32_t i = 0; i < n; ++i) {
          baselines[i].instructions = models[i].instructions();
          baselines[i].cycles = tcores[i].cycles;
          baselines[i].mem = hierarchy_->counters(i);
        }
        memory.mark();
        stats_base = memory.stats();
      }
      continue;
    }

    if (!frozen[core] &&
        models[core].instructions() >= baselines[core].instructions + config_.instr_limit) {
      frozen[core] = true;
      --remaining;
      charge_retire(core);  // the quota's last miss belongs to the window
      const Baseline& base = baselines[core];
      ThreadResult& r = results[core];
      r.benchmark = traces_[core]->name();
      r.instructions = models[core].instructions() - base.instructions;
      r.cycles = tc.cycles - base.cycles;
      r.ipc = r.cycles > 0.0 ? static_cast<double>(r.instructions) / r.cycles : 0.0;
      const HierarchyCounters& now_mem = hierarchy_->counters(core);
      r.mem.l1_accesses = now_mem.l1_accesses - base.mem.l1_accesses;
      r.mem.l1_misses = now_mem.l1_misses - base.mem.l1_misses;
      r.mem.l2_accesses = now_mem.l2_accesses - base.mem.l2_accesses;
      r.mem.l2_misses = now_mem.l2_misses - base.mem.l2_misses;
    }
  }

  SimResult out;
  out.threads = std::move(results);
  for (const auto& t : out.threads) out.wall_cycles = std::max(out.wall_cycles, t.cycles);
  const auto* ctrl = hierarchy_->l2().controller();
  out.repartitions = ctrl ? ctrl->history().size() : 0;
  out.l2_config = hierarchy_->l2().config().acronym();
  out.timing = TimingMode::kTimed;
  out.timed = memory.stats().delta_since(stats_base);
  return out;
}

}  // namespace plrupart::sim
