// Set-sharded replay engine: one run, K shard workers + 1 demux thread,
// byte-identical to CmpSimulator's serial loop.
//
// Why this parallelizes at all: within a controller interval, every piece of
// per-access L2 state (tags, per-set replacement metadata, owner masks, ATD
// sets) is indexed by the L2 set, and the set spaces of different accesses
// never interact. Partition decisions — the only cross-set coupling — happen
// at interval boundaries. So the set space is cut into K contiguous ranges
// and only boundary crossings synchronize.
//
// Why it is *bit-identical* and not merely statistically equivalent: the
// serial loop's timing feedback (core clocks depend on L2 hit/miss outcomes,
// and the interleave order depends on the clocks) is replicated, not
// approximated. Every worker replays the full global merge loop — core
// models, counters, warmup/freeze bookkeeping, the argmin scheduler — over
// the same per-core op streams, so every worker derives the same interleave,
// the same `now` timestamps, and the same boundary ops as the serial path.
// What is *partitioned* is only the expensive part: the owner of an access's
// set performs the real L2 access (stats externalized to a per-shard bundle)
// and broadcasts the hit/miss bit; everyone else consumes the bit. Per-core
// L1s are program-order-deterministic, so the demux thread drives them while
// decoding traces and ships (addr, gap, write, l1_hit) records downstream.
//
// Profiling merges exactly: each (shard, core) keeps a full Profiler replica
// seeded like the canonical one. Only sampled sets touch an ATD, every ATD
// set is fed by exactly one L2 set, and ATD replacement state is per-set, so
// replicas over disjoint set ranges observe precisely the serial per-set
// streams. SDH registers are uint64 sums of per-set contributions; at each
// boundary the barrier's critical section folds them into the canonical
// profilers and runs the real IntervalController::tick — decision, cost
// model, hysteresis, decay, history, enforcement callback all included.
//
// Residual divergences, all invisible to SimResult/CSV: canonical ATD
// contents stay cold (estimates live in the replicas), and the demux thread
// runs the L1s ahead of the merge loop by up to the ring capacity, so final
// L1 contents/stats differ from serial. HierarchyCounters are replicated and
// installed from worker 0; L2 stats deltas are absorbed in shard order
// (integer sums, order-independent).
#include "sim/sharded_replay.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "common/parallel.hpp"
#include "plrupart/common/bits.hpp"
#include "plrupart/common/rng.hpp"
#include "sim/shard_sync.hpp"

namespace plrupart::sim::internal {

namespace {

/// What the demux thread ships per memory operation: the trace record plus
/// the (core-local, deterministic) L1 outcome.
struct OpRecord {
  cache::Addr addr = 0;
  std::uint32_t gap_instrs = 0;
  std::uint8_t write = 0;
  std::uint8_t l1_hit = 0;
};

constexpr std::size_t kOpRingSlots = std::size_t{1} << 12;       // per core
constexpr std::size_t kOutcomeRingSlots = std::size_t{1} << 15;  // per shard

struct WorkerOut {
  std::vector<ThreadResult> threads;
  std::vector<HierarchyCounters> counters;
};

}  // namespace

bool set_sharding_supported(const core::CpaConfig& l2) {
  switch (l2.replacement) {
    case cache::ReplacementKind::kLru:
    case cache::ReplacementKind::kTreePlru:
    case cache::ReplacementKind::kSrrip:
      break;
    case cache::ReplacementKind::kNru:     // cache-global rotating pointer
    case cache::ReplacementKind::kRandom:  // one shared RNG stream
      return false;
  }
  if (!l2.partitioned()) return true;
  // kAuto never resolves to the NRU profiler for the replacements admitted
  // above, so only an explicit NRU eSDH request blocks sharding.
  return l2.profiler != core::ProfilerKind::kNru;
}

std::uint32_t resolve_sim_shards(const SimConfig& config) {
  // The timed overlay's MSHR/DRAM state is cache-global (one event queue, one
  // bank file), so timed runs are always serial.
  if (config.timing_mode == TimingMode::kTimed) return 1;
  const std::uint64_t want = config.sim_threads == 0
                                 ? static_cast<std::uint64_t>(default_parallelism())
                                 : config.sim_threads;
  if (want <= 1) return 1;
  if (!set_sharding_supported(config.hierarchy.l2)) return 1;
  return static_cast<std::uint32_t>(
      std::min(want, config.hierarchy.l2.geometry.sets()));
}

SimResult run_set_sharded(const SimConfig& config,
                          const std::vector<std::unique_ptr<TraceSource>>& traces,
                          MemoryHierarchy& hierarchy, std::uint32_t shards,
                          const ShardedTestHooks* hooks) {
  const std::uint32_t n = hierarchy.num_cores();
  const core::CpaConfig& l2cfg = config.hierarchy.l2;
  const cache::Geometry& geo = l2cfg.geometry;
  const bool partitioned = l2cfg.partitioned();
  const std::uint32_t set_bits = ilog2_exact(geo.sets());
  PLRUPART_ASSERT(shards >= 2 && shards <= geo.sets());
  PLRUPART_ASSERT(config.cores.size() == n && traces.size() == n);

  AbortFlag abort;
  ShardBarrier barrier(shards);
  std::atomic<bool> stop{false};
  if (config.timeout_s > 0.0) {
    abort.arm_deadline(
        std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(config.timeout_s)),
        "simulation exceeded watchdog deadline of " + std::to_string(config.timeout_s) +
            " s (set-sharded run, " + std::to_string(shards) + " shards)");
  }
  const FaultPlan* worker_faults =
      config.faults != nullptr && config.faults->armed(FaultSite::kWorker)
          ? config.faults.get()
          : nullptr;

  std::vector<std::unique_ptr<BroadcastRing<OpRecord>>> op_rings;
  op_rings.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c)
    op_rings.push_back(std::make_unique<BroadcastRing<OpRecord>>(kOpRingSlots, shards));

  // Outcome rings register all K workers as consumers; the owning worker
  // publishes and self-skips so its own cursor never gates the ring.
  std::vector<std::unique_ptr<BroadcastRing<std::uint8_t>>> outcome_rings;
  outcome_rings.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s)
    outcome_rings.push_back(
        std::make_unique<BroadcastRing<std::uint8_t>>(kOutcomeRingSlots, shards));

  // Per-(shard, core) profiler replicas, seeded exactly like the canonical
  // profilers so replica ATDs reproduce the serial per-set observations.
  std::vector<std::vector<std::unique_ptr<core::Profiler>>> replicas(shards);
  if (partitioned) {
    for (std::uint32_t s = 0; s < shards; ++s) {
      replicas[s].reserve(n);
      for (std::uint32_t c = 0; c < n; ++c) {
        replicas[s].push_back(core::make_profiler(
            l2cfg.profiler, l2cfg.replacement, geo, l2cfg.sampling_ratio,
            l2cfg.esdh_scale, l2cfg.nru_update, derive_seed(l2cfg.seed, c)));
      }
    }
  }

  std::vector<cache::CacheStatsBundle> shard_stats(shards, cache::CacheStatsBundle(n));
  std::vector<WorkerOut> outs(shards);
  for (auto& o : outs) {
    o.threads.resize(n);
    o.counters.resize(n);
  }
  std::vector<std::string> names(n);
  for (std::uint32_t c = 0; c < n; ++c) names[c] = traces[c]->name();

  // Demux: decode each core's trace in program order, drive its private L1
  // (whose outcome depends only on that core's address sequence), broadcast
  // the op. Round-robin over non-full rings so one lagging ring never blocks
  // records another worker is waiting for; push() below therefore never has
  // to wait, which also makes the stop flag sufficient for shutdown.
  auto producer_body = [&] {
    std::uint32_t spins = 0;
    while (!stop.load(std::memory_order_acquire) && !abort.aborted()) {
      // The demux doubles as the watchdog's last line of defense: if every
      // worker is wedged outside a blocking loop, this poll still expires the
      // deadline (check() throws ShardAbort, caught by the thread wrapper).
      abort.check();
      bool produced = false;
      for (std::uint32_t c = 0; c < n; ++c) {
        if (!op_rings[c]->can_push()) continue;
        const MemOp op = traces[c]->next();
        const auto l1 = hierarchy.l1d_mut(c).access(0, op.addr, op.write);
        OpRecord rec;
        rec.addr = op.addr;
        rec.gap_instrs = op.gap_instrs;
        rec.write = op.write ? 1 : 0;
        rec.l1_hit = l1.hit ? 1 : 0;
        op_rings[c]->push(rec, abort);
        produced = true;
      }
      if (!produced) shard_relax(spins);
    }
  };

  // Shard worker: replays the serial merge loop verbatim (same statements in
  // the same order on the same values — see cmp_simulator.cpp run()), owning
  // the L2 work for sets in [w*S/K, (w+1)*S/K).
  auto worker_body = [&](std::uint32_t w) {
    std::vector<CoreModel> models;
    models.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) models.emplace_back(config.cores[i]);

    struct Baseline {
      std::uint64_t instructions = 0;
      double cycles = 0.0;
      HierarchyCounters mem;
    };
    std::vector<Baseline> baselines(n);
    std::vector<HierarchyCounters> counters(n);
    bool windows_open = config.warmup_instr == 0;
    std::vector<bool> frozen(n, false);
    std::vector<ThreadResult>& results = outs[w].threads;
    std::uint32_t remaining = n;

    const std::uint64_t interval = l2cfg.interval_cycles;
    std::uint64_t next_boundary = interval;  // mirrors IntervalController
    std::uint64_t owned_ops = 0;  // this worker's kWorker fault-opportunity counter
    cache::SetAssocCache& l2cache = hierarchy.l2().l2();
    cache::CacheStatsBundle& my_stats = shard_stats[w];

    while (remaining > 0) {
      std::uint32_t core = 0;
      double min_cycles = std::numeric_limits<double>::infinity();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (models[i].cycles() < min_cycles) {
          min_cycles = models[i].cycles();
          core = i;
        }
      }

      const OpRecord op = op_rings[core]->pop(w, abort);
      models[core].commit_gap(op.gap_instrs);
      const auto now = static_cast<std::uint64_t>(models[core].cycles());

      AccessLevel level = AccessLevel::kL1;
      ++counters[core].l1_accesses;
      if (op.l1_hit == 0) {
        ++counters[core].l1_misses;
        ++counters[core].l2_accesses;
        const cache::Addr line = geo.line_addr(op.addr);
        const std::uint64_t set = geo.set_index(line);
        const auto shard = static_cast<std::uint32_t>((set * shards) >> set_bits);

        if (partitioned) {
          // Same per-op order as the serial PartitionedCacheSystem::access:
          // profile, then boundary check, then the cache access (which runs
          // under the freshly-applied partition on a boundary op).
          if (shard == w) replicas[w][core]->record_access(line);
          if (now >= next_boundary) {
            barrier.arrive_and_wait(abort, [&] {
              for (std::uint32_t c = 0; c < n; ++c) {
                core::Profiler& canonical = hierarchy.l2().profiler_mut(c);
                for (std::uint32_t s = 0; s < shards; ++s)
                  canonical.absorb_shard(*replicas[s][c]);
              }
              hierarchy.l2().controller_mut()->tick(now);
            });
            while (next_boundary <= now) next_boundary += interval;
          }
        }

        bool l2_hit;
        if (shard == w) {
          if (worker_faults != nullptr) {
            worker_faults->maybe_throw(FaultSite::kWorker, owned_ops++, w,
                                       "shard worker " + std::to_string(w) + '/' +
                                           std::to_string(shards));
          }
          if (hooks != nullptr && hooks->on_owned_access) hooks->on_owned_access(w);
          l2_hit = l2cache.access(core, op.addr, op.write != 0, my_stats).hit;
          outcome_rings[w]->push(l2_hit ? 1 : 0, abort);
          outcome_rings[w]->skip(w);
        } else {
          l2_hit = outcome_rings[shard]->pop(w, abort) != 0;
        }
        if (l2_hit) {
          level = AccessLevel::kL2;
        } else {
          ++counters[core].l2_misses;
          level = AccessLevel::kMemory;
        }
      }
      models[core].commit_mem(level);

      if (!windows_open) {
        std::uint64_t min_instr = models[0].instructions();
        for (std::uint32_t i = 1; i < n; ++i)
          min_instr = std::min(min_instr, models[i].instructions());
        if (min_instr >= config.warmup_instr) {
          windows_open = true;
          for (std::uint32_t i = 0; i < n; ++i) {
            baselines[i].instructions = models[i].instructions();
            baselines[i].cycles = models[i].cycles();
            baselines[i].mem = counters[i];
          }
        }
        continue;
      }

      if (!frozen[core] && models[core].instructions() >=
                               baselines[core].instructions + config.instr_limit) {
        frozen[core] = true;
        --remaining;
        const Baseline& base = baselines[core];
        ThreadResult& r = results[core];
        r.benchmark = names[core];
        r.instructions = models[core].instructions() - base.instructions;
        r.cycles = models[core].cycles() - base.cycles;
        r.ipc = r.cycles > 0.0 ? static_cast<double>(r.instructions) / r.cycles : 0.0;
        const HierarchyCounters& now_mem = counters[core];
        r.mem.l1_accesses = now_mem.l1_accesses - base.mem.l1_accesses;
        r.mem.l1_misses = now_mem.l1_misses - base.mem.l1_misses;
        r.mem.l2_accesses = now_mem.l2_accesses - base.mem.l2_accesses;
        r.mem.l2_misses = now_mem.l2_misses - base.mem.l2_misses;
      }
    }
    outs[w].counters = std::move(counters);
  };

  std::vector<std::thread> threads;
  threads.reserve(shards + 1);
  threads.emplace_back([&] {
    try {
      producer_body();
    } catch (const ShardAbort&) {
    } catch (...) {
      abort.raise(std::current_exception());
    }
  });
  for (std::uint32_t w = 0; w < shards; ++w) {
    threads.emplace_back([&, w] {
      try {
        worker_body(w);
      } catch (const ShardAbort&) {
      } catch (...) {
        abort.raise(std::current_exception());
      }
    });
  }
  for (std::size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads[0].join();
  abort.rethrow_if_error();

  // Fold the partitioned-off state back so post-run introspection matches
  // serial: tail-interval SDH records, L2 stat deltas, replicated counters.
  if (partitioned) {
    for (std::uint32_t c = 0; c < n; ++c) {
      core::Profiler& canonical = hierarchy.l2().profiler_mut(c);
      for (std::uint32_t s = 0; s < shards; ++s)
        canonical.absorb_shard(*replicas[s][c]);
    }
  }
  for (std::uint32_t s = 0; s < shards; ++s)
    hierarchy.l2().l2().absorb_stats(shard_stats[s]);
  for (std::uint32_t c = 0; c < n; ++c)
    hierarchy.set_counters(c, outs[0].counters[c]);

  SimResult out;
  out.threads = std::move(outs[0].threads);
  for (const auto& t : out.threads) out.wall_cycles = std::max(out.wall_cycles, t.cycles);
  const auto* ctrl = hierarchy.l2().controller();
  out.repartitions = ctrl ? ctrl->history().size() : 0;
  out.l2_config = hierarchy.l2().config().acronym();
  out.sim_shards = shards;
  return out;
}

}  // namespace plrupart::sim::internal
