// Trace file I/O: record simulator-ready traces and play them back.
//
// This is the bridge to real workloads: anything that can emit
// (gap-instructions, address, read/write) tuples — a PIN tool, a ChampSim
// trace converter, another simulator — can drive this library.
//
// Format (text, line oriented):
//   # plrupart-trace v1          <- required header
//   <gap> <addr-hex> <R|W>       <- one record per line
// Blank lines and further '#' comments are ignored.
#pragma once

#include <string>
#include <vector>

#include "sim/mem_op.hpp"

namespace plrupart::sim {

/// Plays a recorded trace. The whole file is loaded up front (traces at this
/// repo's scale are small); the source loops at end-of-trace so the simulator
/// can run past the recorded length, matching SyntheticTrace semantics.
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(const std::string& path);

  MemOp next() override;
  void reset() override { cursor_ = 0; }
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

 private:
  std::string name_;
  std::vector<MemOp> ops_;
  std::size_t cursor_ = 0;
};

/// Write `ops` to `path` in the v1 text format.
void write_trace_file(const std::string& path, const std::vector<MemOp>& ops);

/// Capture the first `count` operations of any source into a vector (the
/// source is advanced; reset it afterwards if order matters).
[[nodiscard]] std::vector<MemOp> record_trace(TraceSource& source, std::size_t count);

}  // namespace plrupart::sim
